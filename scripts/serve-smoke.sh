#!/bin/sh
# End-to-end smoke test for the bigmap-serve control plane, driven entirely
# through the public HTTP API the way an operator would drive it with curl:
#
#   1. start the daemon (chaos mode on, tiny checkpoint cadence)
#   2. submit a campaign, watch it make progress
#   3. pause, resume, and verify the state machine answers
#   4. chaos-kill the owning worker mid-run and assert auto-recovery
#      (restart counted, campaign running again, rounds still advancing)
#   5. submit-and-cancel a second campaign
#   6. SIGTERM the daemon and assert a graceful drain (exit 0)
#   7. restart over the same state dir and assert the first campaign came
#      back paused with its checkpoint intact, then resume it
#
# Requires: go, curl, jq.
set -eu

ADDR="${ADDR:-127.0.0.1:8799}"
BASE="http://$ADDR"
DIR="$(mktemp -d)"
BIN="$DIR/bigmap-serve"
LOG="$DIR/serve.log"
PID=""

cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

die() {
    echo "FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

start_daemon() {
    "$BIN" -addr "$ADDR" -dir "$DIR/state" -chaos \
        -workers 2 -checkpoint-every 2 -quantum 2 -restart-backoff 5ms \
        >>"$LOG" 2>&1 &
    PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
        kill -0 "$PID" 2>/dev/null || die "daemon died during startup"
        sleep 0.1
    done
    die "daemon never became healthy"
}

# poll <jq-expr> <want> <url>: wait until the expression evaluates to want.
poll() {
    expr="$1" want="$2" url="$3"
    for _ in $(seq 1 200); do
        got=$(curl -fsS "$url" | jq -r "$expr") || got=""
        [ "$got" = "$want" ] && return 0
        sleep 0.1
    done
    die "timeout waiting for $expr == $want at $url (last: ${got:-?})"
}

echo "=== build"
go build -o "$BIN" ./cmd/bigmap-serve

echo "=== start daemon"
start_daemon

echo "=== submit campaign"
ID=$(curl -fsS -X POST "$BASE/campaigns" -d '{
    "tenant": "smoke",
    "spec": {"bench": "zlib", "scale": 0.02, "map_size": 4096,
             "sync_every": 200, "seed_corpus": 4, "rounds": 1048576}
}' | jq -r .id)
[ -n "$ID" ] && [ "$ID" != null ] || die "submit returned no campaign id"
echo "    id=$ID"

echo "=== wait for progress"
poll '.rounds > 0' true "$BASE/campaigns/$ID/stats"

echo "=== pause / resume"
curl -fsS -X POST "$BASE/campaigns/$ID/pause" | jq -e '.state == "paused"' >/dev/null \
    || die "pause not acknowledged"
curl -fsS -X POST "$BASE/campaigns/$ID/resume" >/dev/null
poll '.state == "running" or .state == "queued"' true "$BASE/campaigns/$ID"

echo "=== chaos-kill the worker mid-run"
poll '.state == "running"' true "$BASE/campaigns/$ID"
ROUNDS_BEFORE=$(curl -fsS "$BASE/campaigns/$ID" | jq -r .checkpoint_rounds)
curl -fsS -X POST "$BASE/campaigns/$ID/kill" >/dev/null || die "chaos kill rejected"

echo "=== assert auto-recovery"
poll '.restarts >= 1' true "$BASE/campaigns/$ID"
poll '.state == "running"' true "$BASE/campaigns/$ID"
poll ".rounds > $ROUNDS_BEFORE" true "$BASE/campaigns/$ID"
echo "    recovered: $(curl -fsS "$BASE/campaigns/$ID" | jq -c '{state, rounds, restarts}')"

echo "=== submit + cancel a second campaign"
ID2=$(curl -fsS -X POST "$BASE/campaigns" -d '{
    "tenant": "smoke2",
    "spec": {"bench": "zlib", "scale": 0.02, "map_size": 4096,
             "sync_every": 200, "seed_corpus": 4, "rounds": 1048576}
}' | jq -r .id)
curl -fsS -X POST "$BASE/campaigns/$ID2/cancel" | jq -e '.state == "cancelled"' >/dev/null \
    || die "cancel not acknowledged"

echo "=== graceful drain on SIGTERM"
kill -TERM "$PID"
n=0
while kill -0 "$PID" 2>/dev/null; do
    n=$((n + 1))
    [ "$n" -gt 300 ] && die "daemon did not exit within 30s of SIGTERM"
    sleep 0.1
done
wait "$PID" 2>/dev/null && RC=0 || RC=$?
PID=""
[ "$RC" -eq 0 ] || die "daemon exited $RC on SIGTERM, want 0"
ls "$DIR/state/campaigns/$ID/" | grep -q '^chk-' || die "no checkpoint on disk after drain"

echo "=== restart over the same state dir"
start_daemon
curl -fsS "$BASE/campaigns/$ID" | jq -e '.state == "paused"' >/dev/null \
    || die "drained campaign did not come back paused"
curl -fsS "$BASE/campaigns/$ID2" | jq -e '.state == "cancelled"' >/dev/null \
    || die "cancelled campaign lost its terminal state"
curl -fsS -X POST "$BASE/campaigns/$ID/resume" >/dev/null
poll '.state == "running" or .state == "queued"' true "$BASE/campaigns/$ID"

kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "PASS: serve smoke"
