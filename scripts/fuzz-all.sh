#!/bin/sh
# Run every native fuzz target, one short -fuzz session each. Go allows only
# one -fuzz pattern per invocation, so this discovers the targets
# (go test -list) and loops. FUZZTIME controls the per-target budget.
# With package arguments, only those packages are scanned (CI shards on this).
#
#   FUZZTIME=20s ./scripts/fuzz-all.sh [./internal/selffuzz ...]
set -eu

FUZZTIME="${FUZZTIME:-30s}"
failed=0

pkgs="$*"
[ -z "$pkgs" ] && pkgs=$(go list ./...)

for pkg in $pkgs; do
    targets=$(go test -list '^Fuzz' "$pkg" 2>/dev/null | grep '^Fuzz' || true)
    [ -z "$targets" ] && continue
    for t in $targets; do
        echo "=== fuzz $pkg $t (${FUZZTIME})"
        if ! go test -run '^$' -fuzz "^${t}\$" -fuzztime "$FUZZTIME" "$pkg"; then
            echo "FAIL: $pkg $t" >&2
            failed=1
        fi
    done
done

exit "$failed"
