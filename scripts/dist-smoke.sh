#!/bin/sh
# End-to-end smoke test for the distributed campaign layer, driven through
# the real binaries the way an operator would run them:
#
#   1. start bigmap-corpusd with a persistent state dir
#   2. join two bigmap-fuzz workers to one campaign and let them sync
#   3. assert the service saw both workers, deduplicated overlapping
#      inputs and accepted virgin-map deltas (dedup + delta counters)
#   4. kill one worker mid-sync, assert nothing already deduplicated was
#      lost, then rejoin it under the same name and assert it resumes its
#      sequence chain and the campaign keeps growing
#   5. verify the hash-chain ledger endpoint answers and is non-trivial
#   6. restart the daemon over the same state dir and assert ledger-replay
#      recovery reproduces the exact same stats
#
# Requires: go, curl, jq.
set -eu

ADDR="${ADDR:-127.0.0.1:8798}"
BASE="http://$ADDR"
DIR="$(mktemp -d)"
CORPUSD="$DIR/bigmap-corpusd"
FUZZ="$DIR/bigmap-fuzz"
LOG="$DIR/corpusd.log"
PID=""
WPID=""

cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    [ -n "$WPID" ] && kill -9 "$WPID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

die() {
    echo "FAIL: $*" >&2
    echo "--- corpusd log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

start_daemon() {
    "$CORPUSD" -addr "$ADDR" -dir "$DIR/state" >>"$LOG" 2>&1 &
    PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
        kill -0 "$PID" 2>/dev/null || die "corpusd died during startup"
        sleep 0.1
    done
    die "corpusd never became healthy"
}

stat_of() {
    curl -fsS "$BASE/v1/campaigns/smoke" | jq -r ".$1"
}

# Same tiny campaign for every worker: identical bench, map and seeds, so the
# workers' synthesized seed corpora overlap and the dedup counters must move.
# WORKER_FLAGS is spelled out (not a function) so the kill-mid-sync step can
# background the binary itself — backgrounding a function would fork a
# subshell, and kill -9 on the subshell PID leaves the binary running.
WORKER_FLAGS="-bench zlib -scale 0.02 -map 4k -seed 9 -sync-every 2000"

run_worker() {
    name="$1" execs="$2"
    # shellcheck disable=SC2086
    "$FUZZ" $WORKER_FLAGS -execs "$execs" \
        -join "$BASE" -campaign smoke -worker "$name"
}

echo "=== build"
go build -o "$CORPUSD" ./cmd/bigmap-corpusd
go build -o "$FUZZ" ./cmd/bigmap-fuzz

echo "=== start corpusd"
start_daemon

echo "=== join two workers, let them sync to completion"
run_worker w1 20000 >"$DIR/w1.log" 2>&1 || die "worker w1 failed (see $DIR/w1.log)"
run_worker w2 20000 >"$DIR/w2.log" 2>&1 || die "worker w2 failed (see $DIR/w2.log)"

echo "=== assert dedup + delta counters"
[ "$(stat_of workers)" -eq 2 ] || die "workers = $(stat_of workers), want 2"
[ "$(stat_of inputs)" -gt 0 ] || die "no inputs stored"
[ "$(stat_of batches)" -ge 2 ] || die "batches = $(stat_of batches), want >= 2"
[ "$(stat_of dedup_hits)" -gt 0 ] || die "dedup_hits = 0: overlapping seeds were not deduplicated"
[ "$(stat_of delta_words)" -gt 0 ] || die "delta_words = 0: no coverage deltas accepted"
[ "$(stat_of union_edges)" -gt 0 ] || die "union_edges = 0: no campaign-wide coverage"
echo "    $(curl -fsS "$BASE/v1/campaigns/smoke" | jq -c '{workers, inputs, batches, dedup_hits, delta_words, union_edges}')"

echo "=== kill worker w3 mid-sync"
INPUTS_BEFORE=$(stat_of inputs)
UNION_BEFORE=$(stat_of union_edges)
# shellcheck disable=SC2086
"$FUZZ" $WORKER_FLAGS -execs 2000000 \
    -join "$BASE" -campaign smoke -worker w3 >"$DIR/w3.log" 2>&1 &
WPID=$!
# Wait until w3's batches start landing, then kill it uncleanly.
for _ in $(seq 1 300); do
    [ "$(stat_of workers)" -eq 3 ] && [ "$(stat_of batches)" -ge 4 ] && break
    kill -0 "$WPID" 2>/dev/null || die "worker w3 exited before it could be killed"
    sleep 0.1
done
[ "$(stat_of workers)" -eq 3 ] || die "w3 never joined"
kill -9 "$WPID" 2>/dev/null || true
wait "$WPID" 2>/dev/null || true
WPID=""

echo "=== assert nothing deduplicated was lost"
[ "$(stat_of inputs)" -ge "$INPUTS_BEFORE" ] || die "inputs shrank after worker death"
[ "$(stat_of union_edges)" -ge "$UNION_BEFORE" ] || die "union shrank after worker death"

echo "=== rejoin w3 under the same name, assert sequence-chain resume"
BATCHES_BEFORE=$(stat_of batches)
run_worker w3 20000 >"$DIR/w3b.log" 2>&1 || die "rejoined worker w3 failed (see $DIR/w3b.log)"
[ "$(stat_of workers)" -eq 3 ] || die "rejoin created a new worker instead of resuming"
[ "$(stat_of batches)" -gt "$BATCHES_BEFORE" ] || die "rejoined worker pushed no batches"
echo "    $(curl -fsS "$BASE/v1/campaigns/smoke" | jq -c '{workers, inputs, batches, union_edges}')"

echo "=== verify the hash-chain ledger"
LEDGER_LEN=$(curl -fsS "$BASE/v1/campaigns/smoke/ledger" | jq 'length')
[ "$LEDGER_LEN" -ge "$(stat_of batches)" ] || die "ledger has $LEDGER_LEN records, fewer than accepted batches"

echo "=== restart corpusd, assert ledger-replay recovery"
STATS_BEFORE=$(curl -fsS "$BASE/v1/campaigns/smoke")
kill -TERM "$PID"
n=0
while kill -0 "$PID" 2>/dev/null; do
    n=$((n + 1))
    [ "$n" -gt 100 ] && die "corpusd did not exit within 10s of SIGTERM"
    sleep 0.1
done
wait "$PID" 2>/dev/null && RC=0 || RC=$?
PID=""
[ "$RC" -eq 0 ] || die "corpusd exited $RC on SIGTERM, want 0"
start_daemon
STATS_AFTER=$(curl -fsS "$BASE/v1/campaigns/smoke")
[ "$STATS_BEFORE" = "$STATS_AFTER" ] || die "recovery drifted: before=$STATS_BEFORE after=$STATS_AFTER"
echo "    recovered: $(echo "$STATS_AFTER" | jq -c '{workers, inputs, batches, union_edges}')"

kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "PASS: dist smoke"
