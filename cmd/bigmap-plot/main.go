// Command bigmap-plot renders a saved session's plot_data time series as
// ASCII charts in the terminal — a quick look at how paths, coverage and
// crashes grew over a campaign without leaving the shell.
//
// Usage:
//
//	bigmap-fuzz -bench sqlite3 -execs 500000 -o out
//	bigmap-plot -data out/plot_data
//	bigmap-plot -data out/plot_data -series edges -width 100 -height 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bigmap-plot:", err)
		os.Exit(1)
	}
}

// sample is one plot_data row.
type sample struct {
	time    float64
	execs   float64
	paths   float64
	edges   float64
	crashes float64
	hangs   float64
}

// series maps a -series name to its column accessor.
var series = map[string]func(sample) float64{
	"execs":   func(s sample) float64 { return s.execs },
	"paths":   func(s sample) float64 { return s.paths },
	"edges":   func(s sample) float64 { return s.edges },
	"crashes": func(s sample) float64 { return s.crashes },
	"hangs":   func(s sample) float64 { return s.hangs },
}

func run(args []string) error {
	fs := flag.NewFlagSet("bigmap-plot", flag.ContinueOnError)
	dataPath := fs.String("data", "", "path to a session's plot_data file")
	which := fs.String("series", "edges,paths,crashes", "comma-separated series to render")
	width := fs.Int("width", 72, "chart width in characters")
	height := fs.Int("height", 12, "chart height in rows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" {
		return fmt.Errorf("need -data <plot_data file>")
	}
	if *width < 8 || *height < 2 {
		return fmt.Errorf("chart too small: need width >= 8 and height >= 2")
	}

	samples, err := load(*dataPath)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("no samples in %s", *dataPath)
	}

	for _, name := range strings.Split(*which, ",") {
		name = strings.TrimSpace(name)
		get, ok := series[name]
		if !ok {
			return fmt.Errorf("unknown series %q (have execs, paths, edges, crashes, hangs)", name)
		}
		fmt.Println(render(name, samples, get, *width, *height))
	}
	return nil
}

// load parses plot_data.
func load(path string) ([]sample, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []sample
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 6 {
			return nil, fmt.Errorf("line %d: want 6 fields, got %d", lineNo+1, len(fields))
		}
		var vals [6]float64
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			vals[i] = v
		}
		out = append(out, sample{
			time: vals[0], execs: vals[1], paths: vals[2],
			edges: vals[3], crashes: vals[4], hangs: vals[5],
		})
	}
	return out, nil
}

// render draws one series as an ASCII chart.
func render(name string, samples []sample, get func(sample) float64, width, height int) string {
	lo, hi := get(samples[0]), get(samples[0])
	t0 := samples[0].time
	t1 := samples[len(samples)-1].time
	for _, s := range samples {
		v := get(s)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}

	// Resample onto the chart grid, carrying the last value forward.
	cols := make([]float64, width)
	idx := 0
	for c := 0; c < width; c++ {
		frac := float64(c) / float64(width-1)
		t := t0 + frac*(t1-t0)
		for idx+1 < len(samples) && samples[idx+1].time <= t {
			idx++
		}
		cols[c] = get(samples[idx])
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c, v := range cols {
		r := int((v - lo) / (hi - lo) * float64(height-1))
		row := height - 1 - r
		grid[row][c] = '*'
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s over %.0fs  [min %.0f, max %.0f]\n", name, t1-t0, lo, hi)
	for r, row := range grid {
		label := " "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.0f |", hi)
		case height - 1:
			label = fmt.Sprintf("%8.0f |", lo)
		default:
			label = "         |"
		}
		b.WriteString(label)
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("          +" + strings.Repeat("-", width) + "\n")
	return b.String()
}
