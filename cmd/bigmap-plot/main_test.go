package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writePlot(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plot_data")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const demoPlot = `# relative_time,execs,paths,edges,crashes_unique,hangs
0.0,0,4,100,0,0
1.0,1000,8,150,0,0
2.0,2000,12,200,1,0
3.0,3000,14,230,2,0
`

func TestRunRendersSeries(t *testing.T) {
	path := writePlot(t, demoPlot)
	if err := run([]string{"-data", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", path, "-series", "execs", "-width", "40", "-height", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -data accepted")
	}
	path := writePlot(t, demoPlot)
	if err := run([]string{"-data", path, "-series", "nope"}); err == nil {
		t.Error("unknown series accepted")
	}
	if err := run([]string{"-data", path, "-width", "2"}); err == nil {
		t.Error("tiny chart accepted")
	}
	empty := writePlot(t, "# header only\n")
	if err := run([]string{"-data", empty}); err == nil {
		t.Error("empty plot accepted")
	}
	malformed := writePlot(t, "1,2,3\n")
	if err := run([]string{"-data", malformed}); err == nil {
		t.Error("malformed plot accepted")
	}
}

func TestRenderShape(t *testing.T) {
	samples := []sample{
		{time: 0, edges: 0},
		{time: 1, edges: 50},
		{time: 2, edges: 100},
	}
	out := render("edges", samples, func(s sample) float64 { return s.edges }, 20, 5)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 5 rows + axis
	if len(lines) != 7 {
		t.Fatalf("rendered %d lines, want 7:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "min 0") || !strings.Contains(lines[0], "max 100") {
		t.Errorf("header missing range: %s", lines[0])
	}
	if !strings.Contains(out, "*") {
		t.Error("no data points rendered")
	}
}

func TestRenderFlatSeries(t *testing.T) {
	samples := []sample{{time: 0, edges: 7}, {time: 5, edges: 7}}
	out := render("edges", samples, func(s sample) float64 { return s.edges }, 16, 4)
	if !strings.Contains(out, "*") {
		t.Error("flat series rendered nothing")
	}
}

func TestLoadCarriesAllColumns(t *testing.T) {
	path := writePlot(t, demoPlot)
	samples, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("loaded %d samples", len(samples))
	}
	last := samples[3]
	if last.time != 3 || last.execs != 3000 || last.paths != 14 || last.edges != 230 || last.crashes != 2 {
		t.Errorf("last sample wrong: %+v", last)
	}
}
