// Command bigmap-serve runs the fuzzing-as-a-service control plane: an HTTP
// daemon that accepts campaign submissions, schedules them fairly across a
// bounded worker pool, checkpoints them on a cadence, and survives worker
// crashes and its own untimely death.
//
//	bigmap-serve -addr :8765 -dir /var/lib/bigmap
//
// SIGTERM and SIGINT drain gracefully: the daemon stops accepting work,
// pauses every campaign at its next round boundary with a last-gasp
// checkpoint, and exits 0. A subsequent start with the same -dir offers the
// paused campaigns for resumption; campaigns that were queued or running
// when the process was killed outright are requeued automatically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/bigmap/bigmap/internal/serve"
	"github.com/bigmap/bigmap/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bigmap-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bigmap-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8765", "HTTP listen address")
	dir := fs.String("dir", "", "state directory (campaign metadata and checkpoints; required)")
	workers := fs.Int("workers", 2, "worker pool size")
	quantum := fs.Int("quantum", 4, "rounds a worker runs a campaign for before rescheduling")
	chkEvery := fs.Int("checkpoint-every", 8, "checkpoint cadence in completed rounds")
	maxActive := fs.Int("max-active", 64, "global bound on non-terminal campaigns")
	tenantQuota := fs.Int("tenant-quota", 8, "per-tenant bound on non-terminal campaigns")
	maxRestarts := fs.Int("max-restarts", 3, "worker crashes tolerated per campaign before it fails")
	restartBackoff := fs.Duration("restart-backoff", 50*time.Millisecond, "base requeue backoff after a worker crash (doubles per restart, jittered)")
	retryAfter := fs.Duration("retry-after", 2*time.Second, "Retry-After hint on shed submissions")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request context deadline")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "how long a SIGTERM drain may take before giving up")
	chaos := fs.Bool("chaos", false, "enable POST /campaigns/{id}/kill fault injection")
	jitterSeed := fs.Uint64("jitter-seed", 1, "seed for the restart-jitter stream")
	corpus := fs.String("corpus", "", "bigmap-corpusd base URL; campaigns share corpora through it (empty = local-only sync)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("-dir is required")
	}

	d, err := serve.Open(serve.Config{
		Dir:             *dir,
		Workers:         *workers,
		QuantumRounds:   *quantum,
		CheckpointEvery: *chkEvery,
		MaxActive:       *maxActive,
		TenantQuota:     *tenantQuota,
		MaxRestarts:     *maxRestarts,
		RestartBackoff:  *restartBackoff,
		RetryAfter:      *retryAfter,
		RequestTimeout:  *reqTimeout,
		Chaos:           *chaos,
		JitterSeed:      *jitterSeed,
		CorpusURL:       *corpus,
		Telemetry:       telemetry.New(),
	})
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           d.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "bigmap-serve: listening on %s, state in %s\n", *addr, *dir)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	select {
	case err := <-serveErr:
		// The listener died under us; checkpoint what we can on the way out.
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		_ = d.Drain(drainCtx)
		_ = d.Close()
		return fmt.Errorf("http server: %w", err)
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "bigmap-serve: %v, draining\n", sig)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := d.Drain(drainCtx); err != nil {
		// A second signal or an expired drain window: exit dirty rather than
		// hang — recovery handles the rest on the next start.
		fmt.Fprintf(os.Stderr, "bigmap-serve: drain incomplete: %v\n", err)
		_ = d.Close()
		_ = srv.Close()
		return err
	}
	_ = d.Close()
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = srv.Shutdown(shutCtx)
	fmt.Fprintln(os.Stderr, "bigmap-serve: drained, all campaigns checkpointed and paused")
	return nil
}
