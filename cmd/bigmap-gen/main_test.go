package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -bench accepted")
	}
	if err := run([]string{"-bench", "nope"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunInspectsBenchmark(t *testing.T) {
	if err := run([]string{"-bench", "libpng", "-scale", "0.05", "-laf", "-dict"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSynthesizesWitnesses(t *testing.T) {
	if err := run([]string{"-bench", "gvn", "-scale", "0.02", "-witnesses", "2"}); err != nil {
		t.Fatal(err)
	}
}
