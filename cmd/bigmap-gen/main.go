// Command bigmap-gen generates and inspects synthetic targets: CFG
// statistics, laf-intel amplification, collision projections, extractable
// dictionary tokens, and crash-site reachability — the "what am I fuzzing"
// view a real campaign gets from binary analysis.
//
// Usage:
//
//	bigmap-gen -bench sqlite3 -scale 0.1
//	bigmap-gen -bench instcombine -scale 0.05 -laf -dict -witnesses 5
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bigmap/bigmap"
	"github.com/bigmap/bigmap/internal/dictionary"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bigmap-gen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bigmap-gen", flag.ContinueOnError)
	benchName := fs.String("bench", "", "benchmark profile to generate")
	scale := fs.Float64("scale", 0.1, "scale relative to the paper's static edges")
	seed := fs.Uint64("seed", 1, "generation seed (for -laf and -witnesses)")
	laf := fs.Bool("laf", false, "also report the laf-intel transformation")
	dict := fs.Bool("dict", false, "print the extractable dictionary (AFL -x format)")
	witnesses := fs.Int("witnesses", 0, "synthesize up to this many crash witnesses")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchName == "" {
		return fmt.Errorf("need -bench (a Table II or Table III profile name)")
	}

	profile, ok := bigmap.ProfileByName(*benchName)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", *benchName)
	}
	prog, err := bigmap.Generate(profile.Spec(*scale))
	if err != nil {
		return err
	}

	fmt.Printf("benchmark : %s %s (scale %g)\n", profile.Name, profile.Version, *scale)
	fmt.Printf("functions : %d\n", len(prog.Funcs))
	fmt.Printf("blocks    : %d\n", prog.NumBlocks())
	fmt.Printf("static edges: %d (paper full-scale: %d)\n", prog.StaticEdges(), profile.PaperStaticEdges)
	fmt.Printf("crash sites : %d\n", len(prog.CrashSites()))
	fmt.Printf("input length: %d bytes\n", prog.InputLen)

	kindCounts(prog)

	for _, h := range []int{64 << 10, 2 << 20, 8 << 20} {
		rate, err := bigmap.CollisionRate(h, maxInt(prog.StaticEdges(), 1))
		if err == nil {
			fmt.Printf("collision projection @%7d slots (all static edges hit): %.2f%%\n", h, rate*100)
		}
	}

	if *laf {
		lafProg, stats := bigmap.LafIntel(prog, *seed)
		fmt.Printf("\nlaf-intel: %d compares + %d switches split, %d blocks added\n",
			stats.SplitCompares, stats.SplitSwitches, stats.AddedBlocks)
		fmt.Printf("  static edges %d -> %d (%.2fx)\n",
			stats.StaticEdgesBefore, stats.StaticEdgesAfter,
			float64(stats.StaticEdgesAfter)/float64(maxInt(stats.StaticEdgesBefore, 1)))
		_ = lafProg
	}

	if *dict {
		tokens := dictionary.Extract(prog)
		fmt.Printf("\n# %d extractable tokens (AFL -x format)\n", len(tokens))
		fmt.Print(dictionary.Format(tokens))
	}

	if *witnesses > 0 {
		src := rng.New(*seed ^ 0x717335)
		ip := target.NewInterp(prog)
		found := 0
		fmt.Println()
		for attempt := 0; attempt < *witnesses*50 && found < *witnesses; attempt++ {
			w, ok := prog.SynthesizeCrashWitness(src)
			if !ok {
				continue
			}
			res := ip.Run(w, target.NopTracer{}, 1<<22)
			if res.Status != target.StatusCrash {
				continue
			}
			found++
			fmt.Printf("crash witness %d: site=%d stack-depth=%d input=%dB\n",
				found, res.CrashSite, len(res.Stack), len(w))
		}
		if found == 0 {
			fmt.Println("no crash witnesses found (target may have no reachable crash sites)")
		}
	}
	return nil
}

// kindCounts prints the block-kind census.
func kindCounts(prog *bigmap.Program) {
	counts := map[target.NodeKind]int{}
	for fi := range prog.Funcs {
		for bi := range prog.Funcs[fi].Blocks {
			counts[prog.Funcs[fi].Blocks[bi].Node.Kind]++
		}
	}
	names := []struct {
		k target.NodeKind
		n string
	}{
		{target.KindJump, "jumps"},
		{target.KindCompareByte, "byte compares"},
		{target.KindCompareWord, "word compares"},
		{target.KindSwitch, "switches"},
		{target.KindSelfLoop, "loops"},
		{target.KindCall, "calls"},
		{target.KindCrash, "crash blocks"},
		{target.KindHang, "hang blocks"},
		{target.KindReturn, "returns"},
	}
	fmt.Println("block census:")
	for _, e := range names {
		if counts[e.k] > 0 {
			fmt.Printf("  %-14s %d\n", e.n, counts[e.k])
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
