// Command bigmap-cov replays saved corpora under the bias-free exact
// coverage build (§V-A3) and optionally diffs two corpora — the
// methodology the paper uses to compare configurations whose own coverage
// counters are incomparable.
//
// Usage:
//
//	bigmap-cov -bench sqlite3 -scale 0.05 -i out-a/queue
//	bigmap-cov -bench sqlite3 -scale 0.05 -i out-a/queue -diff out-b/queue
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bigmap/bigmap"
	"github.com/bigmap/bigmap/internal/covreport"
	"github.com/bigmap/bigmap/internal/output"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bigmap-cov:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bigmap-cov", flag.ContinueOnError)
	benchName := fs.String("bench", "", "benchmark profile the corpus was fuzzed against")
	scale := fs.Float64("scale", 0.1, "benchmark scale used by the session")
	laf := fs.Bool("laf", false, "session used the laf-intel transformation")
	seed := fs.Uint64("seed", 1, "campaign seed used by the session")
	inDir := fs.String("i", "", "corpus directory to measure")
	diffDir := fs.String("diff", "", "second corpus to diff against (optional)")
	verbose := fs.Bool("v", false, "list the edges unique to each corpus")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchName == "" || *inDir == "" {
		return fmt.Errorf("need -bench and -i")
	}

	profile, ok := bigmap.ProfileByName(*benchName)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", *benchName)
	}
	prog, err := bigmap.Generate(profile.Spec(*scale))
	if err != nil {
		return err
	}
	if *laf {
		prog, _ = bigmap.LafIntel(prog, *seed)
	}

	measure := func(dir string) (*covreport.Report, error) {
		corpus, err := output.LoadCorpus(dir)
		if err != nil {
			return nil, err
		}
		rep := covreport.New(prog, 0)
		rep.AddCorpus(corpus)
		total, crashes, hangs := rep.Inputs()
		fmt.Printf("%s: %d inputs (%d crash, %d hang), %d exact edges, %d blocks\n",
			dir, total, crashes, hangs, rep.Edges(), rep.Blocks())
		return rep, nil
	}

	a, err := measure(*inDir)
	if err != nil {
		return err
	}
	if *diffDir == "" {
		return nil
	}
	b, err := measure(*diffDir)
	if err != nil {
		return err
	}

	onlyA := a.Diff(b)
	onlyB := b.Diff(a)
	fmt.Printf("\nedges only in %s: %d\n", *inDir, len(onlyA))
	fmt.Printf("edges only in %s: %d\n", *diffDir, len(onlyB))
	if *verbose {
		for _, e := range onlyA {
			fmt.Printf("  A %d -> %d\n", e.From, e.To)
		}
		for _, e := range onlyB {
			fmt.Printf("  B %d -> %d\n", e.From, e.To)
		}
	}
	return nil
}
