package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeCorpus(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-bench", "nope", "-i", t.TempDir()}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunMeasuresCorpus(t *testing.T) {
	dir := writeCorpus(t, map[string]string{"a": "aaaa", "b": "bbbbbbbb"})
	if err := run([]string{"-bench", "zlib", "-scale", "0.05", "-i", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDiffsCorpora(t *testing.T) {
	a := writeCorpus(t, map[string]string{"a": "aaaa"})
	b := writeCorpus(t, map[string]string{"b": "bbbbbbbb", "c": "cccc"})
	if err := run([]string{"-bench", "zlib", "-scale", "0.05", "-i", a, "-diff", b, "-v"}); err != nil {
		t.Fatal(err)
	}
}
