// Command bigmap-triage replays the crashes of a saved fuzzing session
// (bigmap-fuzz -o <dir>), deduplicates them Crashwalk-style, and minimizes
// one witness per bucket — the afl-tmin + crashwalk step of a real triage
// workflow.
//
// Usage:
//
//	bigmap-fuzz -bench gvn -map 2M -execs 300000 -scale 0.05 -o out
//	bigmap-triage -bench gvn -scale 0.05 -crashes out/crashes
//
// The -bench and -scale flags must match the fuzzing run so the same target
// program is regenerated.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/bigmap/bigmap"
	"github.com/bigmap/bigmap/internal/crash"
	"github.com/bigmap/bigmap/internal/output"
	"github.com/bigmap/bigmap/internal/tmin"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bigmap-triage:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bigmap-triage", flag.ContinueOnError)
	benchName := fs.String("bench", "", "benchmark profile the session fuzzed")
	scale := fs.Float64("scale", 0.1, "benchmark scale used by the session")
	laf := fs.Bool("laf", false, "session used the laf-intel transformation")
	seed := fs.Uint64("seed", 1, "campaign seed used by the session")
	crashDir := fs.String("crashes", "", "crashes directory of the saved session")
	minimize := fs.Bool("min", true, "minimize one witness per bucket")
	outDir := fs.String("o", "", "write minimized witnesses here (optional)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchName == "" || *crashDir == "" {
		return fmt.Errorf("need -bench and -crashes")
	}

	profile, ok := bigmap.ProfileByName(*benchName)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", *benchName)
	}
	prog, err := bigmap.Generate(profile.Spec(*scale))
	if err != nil {
		return err
	}
	if *laf {
		prog, _ = bigmap.LafIntel(prog, *seed)
	}

	inputs, err := output.LoadCorpus(*crashDir)
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		fmt.Println("no crashes to triage")
		return nil
	}

	// Replay and bucket.
	interp := bigmap.NewInterp(prog)
	dedup := crash.NewDeduper()
	nonCrashing := 0
	for _, in := range inputs {
		res := interp.Run(in, nopTracer{}, 1<<22)
		if res.Status != bigmap.StatusCrash {
			nonCrashing++
			continue
		}
		dedup.Observe(res.CrashSite, res.Stack, in)
	}
	fmt.Printf("replayed %d inputs: %d crash buckets, %d did not reproduce\n",
		len(inputs), dedup.Unique(), nonCrashing)

	minimizer := tmin.New(prog, 0, 0)
	for i, rec := range dedup.Records() {
		fmt.Printf("\nbucket %016x  site=%d  stack-depth=%d  hits=%d\n",
			rec.Key, rec.Site, rec.StackDepth, rec.Count)
		if !*minimize {
			continue
		}
		witness, stats, err := minimizer.Minimize(rec.Input)
		if err != nil {
			fmt.Printf("  minimize: %v\n", err)
			continue
		}
		fmt.Printf("  minimized: %d -> %d bytes (%d normalized, %d execs)\n",
			stats.InLen, stats.OutLen, stats.NormalizedBytes, stats.Execs)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			name := fmt.Sprintf("min:%06d,sig:%016x", i, rec.Key)
			if err := os.WriteFile(filepath.Join(*outDir, name), witness, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// nopTracer discards instrumentation events during replay.
type nopTracer struct{}

func (nopTracer) Visit(uint32)     {}
func (nopTracer) EnterCall(uint32) {}
func (nopTracer) LeaveCall()       {}
