package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-bench", "nope", "-crashes", t.TempDir()}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunEmptyCrashDir(t *testing.T) {
	if err := run([]string{"-bench", "zlib", "-scale", "0.05", "-crashes", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTriagesSessionCrashes(t *testing.T) {
	// Synthesize crash inputs for the gvn benchmark directly: fuzz briefly
	// with a crash-rich profile, save the session, then triage it.
	dir := t.TempDir()
	crashDir := filepath.Join(dir, "crashes")
	if err := os.MkdirAll(crashDir, 0o755); err != nil {
		t.Fatal(err)
	}

	// Build a fake "session" by writing inputs that we know crash: replay
	// is tolerant of non-reproducing inputs, so include junk too.
	if err := os.WriteFile(filepath.Join(crashDir, "id:000000"), make([]byte, 64), 0o644); err != nil {
		t.Fatal(err)
	}

	outDir := filepath.Join(dir, "min")
	err := run([]string{
		"-bench", "gvn", "-scale", "0.02", "-crashes", crashDir, "-o", outDir,
	})
	if err != nil {
		t.Fatal(err)
	}
}
