package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-bench", "nope", "-i", "x", "-o", "y"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	empty := t.TempDir()
	if err := run([]string{"-bench", "zlib", "-scale", "0.05", "-i", empty, "-o", t.TempDir()}); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestRunMinimizesCorpus(t *testing.T) {
	in := t.TempDir()
	out := filepath.Join(t.TempDir(), "min")
	// A redundant corpus: several identical files plus a couple distinct.
	for i, content := range []string{"aaaa", "aaaa", "aaaa", "bbbbbbbb", "cc"} {
		name := filepath.Join(in, "id:"+string(rune('0'+i)))
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := run([]string{"-bench", "zlib", "-scale", "0.05", "-i", in, "-o", out}); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 || len(files) >= 5 {
		t.Errorf("minimized corpus has %d files, want 1..4", len(files))
	}
}
