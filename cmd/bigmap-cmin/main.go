// Command bigmap-cmin minimizes a saved corpus to a coverage-preserving
// subset (the afl-cmin role): fewer files, identical exact edge coverage.
//
// Usage:
//
//	bigmap-fuzz -bench sqlite3 -execs 300000 -scale 0.05 -o out
//	bigmap-cmin -bench sqlite3 -scale 0.05 -i out/queue -o out/queue.min
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/bigmap/bigmap"
	"github.com/bigmap/bigmap/internal/cmin"
	"github.com/bigmap/bigmap/internal/output"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bigmap-cmin:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bigmap-cmin", flag.ContinueOnError)
	benchName := fs.String("bench", "", "benchmark profile the corpus was fuzzed against")
	scale := fs.Float64("scale", 0.1, "benchmark scale used by the session")
	laf := fs.Bool("laf", false, "session used the laf-intel transformation")
	seed := fs.Uint64("seed", 1, "campaign seed used by the session")
	inDir := fs.String("i", "", "input corpus directory")
	outDir := fs.String("o", "", "output directory for the minimized corpus")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchName == "" || *inDir == "" || *outDir == "" {
		return fmt.Errorf("need -bench, -i and -o")
	}

	profile, ok := bigmap.ProfileByName(*benchName)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", *benchName)
	}
	prog, err := bigmap.Generate(profile.Spec(*scale))
	if err != nil {
		return err
	}
	if *laf {
		prog, _ = bigmap.LafIntel(prog, *seed)
	}

	corpus, err := output.LoadCorpus(*inDir)
	if err != nil {
		return err
	}
	if len(corpus) == 0 {
		return fmt.Errorf("no inputs in %s", *inDir)
	}

	res := cmin.Minimize(prog, corpus, 0)
	fmt.Printf("corpus: %d -> %d inputs, %d exact edges preserved\n",
		len(corpus), len(res.Kept), res.EdgesAfter)

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for i, k := range res.Kept {
		name := fmt.Sprintf("id:%06d,orig:%06d", i, k)
		if err := os.WriteFile(filepath.Join(*outDir, name), corpus[k], 0o644); err != nil {
			return err
		}
	}
	return nil
}
