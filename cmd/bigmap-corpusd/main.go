// Command bigmap-corpusd runs the content-addressed corpus service: an HTTP
// daemon that lets fuzzing workers in different processes — or on different
// machines — share one campaign's corpus, crash buckets and coverage.
// Inputs are stored once per content hash, coverage travels as virgin-map
// deltas (only the words that changed), and every accepted batch is sealed
// into a hash-chained ledger, so the whole campaign history is verifiable
// and survives daemon restarts.
//
//	bigmap-corpusd -addr :8766 -dir /var/lib/bigmap-corpus
//
// Workers attach with bigmap-fuzz -join http://host:8766 (see
// docs/DISTRIBUTED.md for the wire protocol and a two-terminal quickstart).
// Without -dir the store is memory-only: useful for tests and throwaway
// campaigns, nothing survives the process.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/bigmap/bigmap/internal/corpusd"
	"github.com/bigmap/bigmap/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bigmap-corpusd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bigmap-corpusd", flag.ContinueOnError)
	addr := fs.String("addr", ":8766", "HTTP listen address")
	dir := fs.String("dir", "", "state directory (content store + ledgers; empty = memory-only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	store, err := corpusd.New(*dir, telemetry.New())
	if err != nil {
		return err
	}
	defer store.Close()
	if *dir != "" {
		if names := store.Campaigns(); len(names) > 0 {
			fmt.Fprintf(os.Stderr, "bigmap-corpusd: recovered %d campaign(s): %v\n", len(names), names)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           store.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	where := *dir
	if where == "" {
		where = "memory (nothing persists)"
	}
	fmt.Fprintf(os.Stderr, "bigmap-corpusd: listening on %s, state in %s\n", *addr, where)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	select {
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "bigmap-corpusd: %v, shutting down\n", sig)
	}

	// Every mutation is durable before its response is sent (content files,
	// then the fsynced ledger append), so shutdown only needs to stop taking
	// requests — there is no state to flush.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	return nil
}
