package main

import "testing"

func TestParseSize(t *testing.T) {
	tests := []struct {
		in   string
		want int
		ok   bool
	}{
		{"64k", 64 << 10, true},
		{"64K", 64 << 10, true},
		{"2M", 2 << 20, true},
		{"2m", 2 << 20, true},
		{"65536", 65536, true},
		{"garbage", 0, false},
		{"", 0, false},
	}
	for _, tt := range tests {
		got, err := parseSize(tt.in)
		if tt.ok && (err != nil || got != tt.want) {
			t.Errorf("parseSize(%q) = %d, %v; want %d", tt.in, got, err, tt.want)
		}
		if !tt.ok && err == nil {
			t.Errorf("parseSize(%q) succeeded", tt.in)
		}
	}
}

func TestRunModes(t *testing.T) {
	// Equation 1 mode.
	if err := run([]string{"-map", "64k", "-keys", "1000"}); err != nil {
		t.Errorf("eq1 mode: %v", err)
	}
	// Birthday mode.
	if err := run([]string{"-map", "64k", "-p", "0.5"}); err != nil {
		t.Errorf("birthday mode: %v", err)
	}
	// Missing mode flag.
	if err := run([]string{"-map", "64k"}); err == nil {
		t.Error("missing -keys/-p accepted")
	}
	// Figure 2 table mode.
	if err := run(nil); err != nil {
		t.Errorf("table mode: %v", err)
	}
}
