// Command bigmap-collide is a collision-rate calculator for coverage
// bitmaps, implementing the paper's Equation 1 and the birthday bound of
// §III.
//
// Usage:
//
//	bigmap-collide                        # print the Figure 2 table
//	bigmap-collide -map 64k -keys 40948   # one Equation 1 evaluation
//	bigmap-collide -map 64k -p 0.5        # keys needed for 50% birthday odds
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/bigmap/bigmap/internal/bench"
	"github.com/bigmap/bigmap/internal/collision"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bigmap-collide:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bigmap-collide", flag.ContinueOnError)
	mapSize := fs.String("map", "", "bitmap size (e.g. 64k, 2M, 65536)")
	keys := fs.Int("keys", 0, "number of keys drawn (Equation 1 mode)")
	prob := fs.Float64("p", 0, "target collision probability (birthday mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *mapSize == "" {
		tbl, err := bench.Fig2()
		if err != nil {
			return err
		}
		return tbl.Render(os.Stdout)
	}

	h, err := parseSize(*mapSize)
	if err != nil {
		return err
	}
	switch {
	case *keys > 0:
		rate, err := collision.Rate(h, *keys)
		if err != nil {
			return err
		}
		birthday, err := collision.BirthdayProbability(h, *keys)
		if err != nil {
			return err
		}
		fmt.Printf("map size      : %d slots\n", h)
		fmt.Printf("keys drawn    : %d\n", *keys)
		fmt.Printf("collision rate: %.4f%% (Equation 1)\n", rate*100)
		fmt.Printf("P(>=1 clash)  : %.4f (birthday bound)\n", birthday)
		return nil
	case *prob > 0:
		n, err := collision.KeysForProbability(h, *prob)
		if err != nil {
			return err
		}
		fmt.Printf("%d keys reach a %.0f%% collision probability in a %d-slot map\n",
			n, *prob*100, h)
		return nil
	default:
		return errors.New("need -keys or -p alongside -map")
	}
}

// parseSize accepts 64k/2M style suffixes or plain integers.
func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult = 1 << 20
		s = s[:len(s)-1]
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return v * mult, nil
}
