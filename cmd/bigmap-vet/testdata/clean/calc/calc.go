// Package calc is integration-test fixture code with nothing to report.
package calc

// Double doubles.
func Double(x int) int { return 2 * x }
