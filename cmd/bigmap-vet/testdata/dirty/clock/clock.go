// Package clock is integration-test fixture code with known determinism
// violations: one live, one suppressed.
package clock

import "time"

// Stamp reads the wall clock with no audit annotation.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Audited reads the wall clock at an annotated site.
func Audited() int64 {
	return time.Now().UnixNano() //bigmap:nondeterministic-ok fixture: audited wall-clock read
}
