// Command bigmap-vet runs the repository's invariant analyzers (determinism,
// kernelparity, codecsymmetry, lockcheck, errdrop, allocfree) over the
// module, multichecker style. It is wired into `make vet` and CI next to
// `go vet`.
//
// Usage:
//
//	bigmap-vet [flags] [packages]
//
// Packages are directories or "dir/..." patterns (default ./...). By default
// each analyzer runs only on the packages whose invariants it enforces (see
// -list); -run=name1,name2 instead forces the named analyzers onto every
// loaded package, which is how the analyzers are pointed at external trees
// and test fixtures.
//
// -json replaces the text diagnostics with one machine-readable report
// (schema analysis.ReportVersion) on stdout, audited (suppressed) sites
// included; CI archives it as an artifact. The exit code is unchanged:
// only unsuppressed findings fail the run.
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/bigmap/bigmap/internal/analysis"
	"github.com/bigmap/bigmap/internal/analysis/allocfree"
	"github.com/bigmap/bigmap/internal/analysis/codecsymmetry"
	"github.com/bigmap/bigmap/internal/analysis/determinism"
	"github.com/bigmap/bigmap/internal/analysis/errdrop"
	"github.com/bigmap/bigmap/internal/analysis/kernelparity"
	"github.com/bigmap/bigmap/internal/analysis/lockcheck"
)

// scoped pairs an analyzer with the package scopes it applies to by default.
// A scope is a module-relative path prefix pattern ("internal/..." covers
// the whole subtree) or a plain path suffix ("internal/core"). An empty
// scope list means "never by default" (only via -run).
type scoped struct {
	analyzer *analysis.Analyzer
	scope    []string
}

// analyzers is the bigmap-vet suite. The tree-wide analyzers (determinism,
// lockcheck, allocfree) cover everything they could possibly apply to, so
// new packages are in scope the day they are created; the remaining scopes
// name the packages whose contracts the analyzer encodes — running
// codecsymmetry outside the checkpoint codec would only produce noise.
var analyzers = []scoped{
	{determinism.Analyzer, []string{"internal/...", "cmd/..."}},
	{kernelparity.Analyzer, []string{"internal/core"}},
	{codecsymmetry.Analyzer, []string{"internal/checkpoint"}},
	{lockcheck.Analyzer, []string{"internal/..."}},
	{errdrop.Analyzer, []string{"internal/checkpoint", "internal/serve", "internal/dist", "internal/corpusd"}},
	{allocfree.Analyzer, []string{"internal/...", "cmd/..."}},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("bigmap-vet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list analyzers and their default package scopes, then exit")
	only := flags.String("run", "", "comma-separated analyzer names to run on every loaded package (overrides default scoping)")
	jsonOut := flags.Bool("json", false, "emit one JSON diagnostics report on stdout instead of text lines")
	summarize := flags.String("summarize", "", "validate a previously emitted -json report `file` and print its counts, then exit")
	verbose := flags.Bool("v", false, "report per-package progress and suppressed-diagnostic counts")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	if *summarize != "" {
		return summarizeReport(*summarize, stdout, stderr)
	}

	if *list {
		for _, s := range analyzers {
			scope := "(via -run only)"
			if len(s.scope) > 0 {
				scope = strings.Join(s.scope, ", ")
			}
			fmt.Fprintf(stdout, "%-14s %s\n    default scope: %s\n", s.analyzer.Name, s.analyzer.Doc, scope)
		}
		return 0
	}

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	forced := *only != ""

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rootHint := patterns[0]
	if i := strings.Index(rootHint, "..."); i >= 0 {
		rootHint = rootHint[:i]
	}
	if rootHint == "" {
		rootHint = "."
	}
	if strings.HasSuffix(rootHint, "/") {
		rootHint = strings.TrimSuffix(rootHint, "/")
	}
	root, err := analysis.FindModuleRoot(rootHint)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	dirs, err := analysis.ExpandPatterns(root, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var all []analysis.Diagnostic

	// Per-package analyzers, with in-package test files included.
	for _, dir := range dirs {
		var todo []*analysis.Analyzer
		for _, s := range selected {
			if s.analyzer.Run != nil && (forced || inScope(s.scope, dir)) {
				todo = append(todo, s.analyzer)
			}
		}
		if len(todo) == 0 {
			continue
		}
		pkg, err := mod.LoadDir(dir, true)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		for _, a := range todo {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			all = append(all, diags...)
			if *verbose {
				fmt.Fprintf(stderr, "bigmap-vet: %s: %s: %d diagnostics\n", pkg.Path, a.Name, len(diags))
			}
		}
	}

	// Module (interprocedural) analyzers see their whole scope at once,
	// loaded without test files so cross-package object identities agree.
	for _, s := range selected {
		if s.analyzer.RunModule == nil {
			continue
		}
		var pkgs []*analysis.Package
		for _, dir := range dirs {
			if !forced && !inScope(s.scope, dir) {
				continue
			}
			pkg, err := mod.LoadDir(dir, false)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
		if len(pkgs) == 0 {
			continue
		}
		diags, err := analysis.RunModule(s.analyzer, pkgs)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		all = append(all, diags...)
		if *verbose {
			fmt.Fprintf(stderr, "bigmap-vet: %s: %d packages, %d diagnostics\n", s.analyzer.Name, len(pkgs), len(diags))
		}
	}

	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})

	unsuppressed := 0
	for _, d := range all {
		if !d.Suppressed {
			unsuppressed++
		}
	}

	if *jsonOut {
		names := make([]string, 0, len(selected))
		for _, s := range selected {
			names = append(names, s.analyzer.Name)
		}
		report := analysis.NewReport(mod.Path, root, names, all)
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range all {
			if d.Suppressed {
				continue
			}
			rel, relErr := filepath.Rel(root, d.Pos.Filename)
			if relErr != nil {
				rel = d.Pos.Filename
			}
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if *verbose {
		fmt.Fprintf(stderr, "bigmap-vet: %d findings, %d audited (suppressed)\n", unsuppressed, len(all)-unsuppressed)
	}
	if unsuppressed > 0 {
		return 1
	}
	return 0
}

// summarizeReport decodes and schema-validates a -json report file, prints
// one line per unsuppressed finding plus the totals, and exits with the same
// convention as an analysis run: 0 clean, 1 findings, 2 unreadable/invalid.
// CI uses it to turn the archived artifact back into log output.
func summarizeReport(path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "bigmap-vet: %v\n", err)
		return 2
	}
	report, err := analysis.DecodeReport(data)
	if err != nil {
		fmt.Fprintf(stderr, "bigmap-vet: %s: %v\n", path, err)
		return 2
	}
	if err := report.Validate(); err != nil {
		fmt.Fprintf(stderr, "bigmap-vet: %s: %v\n", path, err)
		return 2
	}
	for _, d := range report.Diagnostics {
		if d.Suppressed {
			continue
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Column, d.Analyzer, d.Message)
	}
	fmt.Fprintf(stdout, "bigmap-vet: %s: %d findings, %d audited (suppressed) across %s\n",
		report.Module, report.Unsuppressed, report.Suppressed, strings.Join(report.Analyzers, ", "))
	if report.Unsuppressed > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers parses the -run list; empty means all (scoped).
func selectAnalyzers(only string) ([]scoped, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, s := range analyzers {
		byName[s.analyzer.Name] = s.analyzer
	}
	var out []scoped
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("bigmap-vet: unknown analyzer %q (see -list)", name)
		}
		out = append(out, scoped{analyzer: a})
	}
	return out, nil
}

// inScope reports whether a module-relative package directory falls under
// one of the scope patterns: "prefix/..." covers the subtree rooted at
// prefix, a plain path matches as before by exact value or suffix.
func inScope(scope []string, dir string) bool {
	for _, pat := range scope {
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if dir == prefix || strings.HasPrefix(dir, prefix+"/") {
				return true
			}
			continue
		}
		if dir == pat || strings.HasSuffix(dir, "/"+pat) {
			return true
		}
	}
	return false
}
