// Command bigmap-vet runs the repository's invariant analyzers (determinism,
// kernelparity, codecsymmetry, lockcheck) over the module, multichecker
// style. It is wired into `make vet` and CI next to `go vet`.
//
// Usage:
//
//	bigmap-vet [flags] [packages]
//
// Packages are directories or "dir/..." patterns (default ./...). By default
// each analyzer runs only on the packages whose invariants it enforces (see
// -list); -run=name1,name2 instead forces the named analyzers onto every
// loaded package, which is how the analyzers are pointed at external trees
// and test fixtures.
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/bigmap/bigmap/internal/analysis"
	"github.com/bigmap/bigmap/internal/analysis/codecsymmetry"
	"github.com/bigmap/bigmap/internal/analysis/determinism"
	"github.com/bigmap/bigmap/internal/analysis/kernelparity"
	"github.com/bigmap/bigmap/internal/analysis/lockcheck"
)

// scoped pairs an analyzer with the package-path suffixes it applies to by
// default. An empty scope list means "never by default" (only via -run).
type scoped struct {
	analyzer *analysis.Analyzer
	scope    []string
}

// analyzers is the bigmap-vet suite. Scopes name the packages whose
// contracts each analyzer encodes; running them elsewhere would only produce
// noise (e.g. wall-clock reads are fine in the CLI layer).
var analyzers = []scoped{
	{determinism.Analyzer, []string{
		"internal/fuzzer", "internal/checkpoint", "internal/core",
		"internal/parallel", "internal/mutation", "internal/target",
		"internal/ensemble", "internal/bench", "internal/telemetry",
		"internal/serve",
	}},
	{kernelparity.Analyzer, []string{"internal/core"}},
	{codecsymmetry.Analyzer, []string{"internal/checkpoint"}},
	{lockcheck.Analyzer, []string{"internal/parallel", "internal/serve"}},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("bigmap-vet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list analyzers and their default package scopes, then exit")
	only := flags.String("run", "", "comma-separated analyzer names to run on every loaded package (overrides default scoping)")
	verbose := flags.Bool("v", false, "report per-package progress and suppressed-diagnostic counts")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, s := range analyzers {
			scope := "(via -run only)"
			if len(s.scope) > 0 {
				scope = strings.Join(s.scope, ", ")
			}
			fmt.Fprintf(stdout, "%-14s %s\n    default scope: %s\n", s.analyzer.Name, s.analyzer.Doc, scope)
		}
		return 0
	}

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rootHint := patterns[0]
	if i := strings.Index(rootHint, "..."); i >= 0 {
		rootHint = rootHint[:i]
	}
	if rootHint == "" {
		rootHint = "."
	}
	if strings.HasSuffix(rootHint, "/") {
		rootHint = strings.TrimSuffix(rootHint, "/")
	}
	root, err := analysis.FindModuleRoot(rootHint)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	dirs, err := analysis.ExpandPatterns(root, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	exit := 0
	for _, dir := range dirs {
		todo := analyzersFor(selected, dir, *only != "")
		if len(todo) == 0 {
			continue
		}
		pkg, err := mod.LoadDir(dir, true)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		for _, a := range todo {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			for _, d := range diags {
				rel, relErr := filepath.Rel(root, d.Pos.Filename)
				if relErr != nil {
					rel = d.Pos.Filename
				}
				fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
				exit = 1
			}
			if *verbose {
				fmt.Fprintf(stderr, "bigmap-vet: %s: %s: %d diagnostics\n", pkg.Path, a.Name, len(diags))
			}
		}
	}
	return exit
}

// selectAnalyzers parses the -run list; empty means all (scoped).
func selectAnalyzers(only string) ([]scoped, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, s := range analyzers {
		byName[s.analyzer.Name] = s.analyzer
	}
	var out []scoped
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("bigmap-vet: unknown analyzer %q (see -list)", name)
		}
		out = append(out, scoped{analyzer: a})
	}
	return out, nil
}

// analyzersFor picks the analyzers that apply to a module-relative package
// directory: every selected one when -run forced the set, otherwise those
// whose scope suffix-matches the directory.
func analyzersFor(selected []scoped, dir string, forced bool) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, s := range selected {
		if forced {
			out = append(out, s.analyzer)
			continue
		}
		for _, suffix := range s.scope {
			if dir == suffix || strings.HasSuffix(dir, "/"+suffix) {
				out = append(out, s.analyzer)
				break
			}
		}
	}
	return out
}
