package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"strings"
	"testing"

	"github.com/bigmap/bigmap/internal/analysis"
)

// vet invokes the driver in-process and returns (exit code, stdout, stderr).
func vet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestDirtyModuleExitsOne(t *testing.T) {
	// Deliberately a relative pattern: the fixture is its own module, so
	// this pins that patterns resolve against the working directory, not
	// against the module root discovered from the pattern (which would
	// double the path).
	code, stdout, stderr := vet(t, "-run", "determinism", "testdata/dirty/...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stdout %q, stderr %q)", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "time.Now reads the wall clock") {
		t.Errorf("diagnostics missing the time.Now finding:\n%s", stdout)
	}
	if !strings.Contains(stdout, "[determinism]") {
		t.Errorf("diagnostics missing the analyzer tag:\n%s", stdout)
	}
	// The suppressed site (Audited) must not be reported: exactly one
	// diagnostic line.
	if n := strings.Count(strings.TrimSpace(stdout), "\n") + 1; n != 1 {
		t.Errorf("want exactly 1 diagnostic line, got %d:\n%s", n, stdout)
	}
}

func TestCleanModuleExitsZero(t *testing.T) {
	dir, err := filepath.Abs("testdata/clean")
	if err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := vet(t, "-run", "determinism,codecsymmetry,kernelparity,lockcheck", dir+"/...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stdout %q, stderr %q)", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no diagnostics, got:\n%s", stdout)
	}
}

func TestMissingDirExitsTwo(t *testing.T) {
	code, _, stderr := vet(t, filepath.Join("testdata", "no-such-dir"))
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr %q)", code, stderr)
	}
	if stderr == "" {
		t.Error("expected a load error on stderr")
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	code, _, stderr := vet(t, "-run", "nope", "testdata/clean/...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer error", stderr)
	}
}

func TestListExitsZero(t *testing.T) {
	code, stdout, _ := vet(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "kernelparity", "codecsymmetry", "lockcheck"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

// TestRepoTreeIsClean is the acceptance gate: the default scoped run over
// the whole repository must report nothing. Skipped in -short mode — it
// type-checks the full module.
func TestRepoTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module vet run skipped in -short mode")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := vet(t, root+"/...")
	if code != 0 {
		t.Fatalf("bigmap-vet over the repo tree: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

// TestJSONReportRoundTrips pins the -json contract: the emitted bytes decode
// through analysis.DecodeReport (which rejects unknown fields), validate
// against the schema, and carry both the live and the audited finding of the
// dirty fixture — suppressed sites are part of the artifact, only the exit
// code ignores them.
func TestJSONReportRoundTrips(t *testing.T) {
	code, stdout, stderr := vet(t, "-json", "-run", "determinism", "testdata/dirty/...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr %q)", code, stderr)
	}
	report, err := analysis.DecodeReport([]byte(stdout))
	if err != nil {
		t.Fatalf("DecodeReport: %v\noutput:\n%s", err, stdout)
	}
	if err := report.Validate(); err != nil {
		t.Fatalf("Validate: %v\noutput:\n%s", err, stdout)
	}
	if report.Module != "dirtymod" {
		t.Errorf("Module = %q, want the fixture module path", report.Module)
	}
	if got, want := report.Analyzers, []string{"determinism"}; !slices.Equal(got, want) {
		t.Errorf("Analyzers = %v, want %v", got, want)
	}
	if report.Unsuppressed != 1 || report.Suppressed != 1 {
		t.Errorf("counts = %d unsuppressed, %d suppressed; want 1 and 1\noutput:\n%s",
			report.Unsuppressed, report.Suppressed, stdout)
	}
	var live, audited *analysis.ReportDiagnostic
	for i := range report.Diagnostics {
		d := &report.Diagnostics[i]
		if d.Suppressed {
			audited = d
		} else {
			live = d
		}
	}
	if live == nil || audited == nil {
		t.Fatalf("want one live and one audited diagnostic, got %+v", report.Diagnostics)
	}
	if live.File != "clock/clock.go" {
		t.Errorf("live finding file = %q, want module-relative slash path", live.File)
	}
	if audited.Analyzer != "determinism" || !strings.Contains(audited.Message, "time.Now") {
		t.Errorf("audited finding = %+v, want a determinism time.Now diagnostic", audited)
	}

	// The report must round-trip: re-encoding and re-decoding preserves it.
	again, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	back, err := analysis.DecodeReport(again)
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if !reflect.DeepEqual(report, back) {
		t.Errorf("report did not survive a marshal/decode cycle:\nfirst:  %+v\nsecond: %+v", report, back)
	}
}

// TestSummarizeReportFile pins the artifact consumer: -summarize re-reads a
// -json report, prints the live findings plus totals, and reproduces the
// original exit code; a corrupted artifact exits 2.
func TestSummarizeReportFile(t *testing.T) {
	code, stdout, _ := vet(t, "-json", "-run", "determinism", "testdata/dirty/...")
	if code != 1 {
		t.Fatalf("producing the report: exit %d, want 1", code)
	}
	path := filepath.Join(t.TempDir(), "vet-report.json")
	if err := os.WriteFile(path, []byte(stdout), 0o644); err != nil {
		t.Fatal(err)
	}

	code, sum, stderr := vet(t, "-summarize", path)
	if code != 1 {
		t.Fatalf("-summarize exit = %d, want 1 (stderr %q)", code, stderr)
	}
	if !strings.Contains(sum, "clock/clock.go") || !strings.Contains(sum, "1 findings, 1 audited") {
		t.Errorf("summary output missing finding or counts:\n%s", sum)
	}

	if err := os.WriteFile(path, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := vet(t, "-summarize", path); code != 2 || !strings.Contains(stderr, "version") {
		t.Errorf("bad-version artifact: exit %d, stderr %q; want 2 and a schema error", code, stderr)
	}
}

// TestJSONCleanReportValidates covers the empty-diagnostics shape CI archives
// on a green run: diagnostics must be an empty array, not null, and the
// report must still validate.
func TestJSONCleanReportValidates(t *testing.T) {
	code, stdout, stderr := vet(t, "-json", "-run", "determinism", "testdata/clean/...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stdout, `"diagnostics": []`) {
		t.Errorf("clean report should encode diagnostics as an empty array:\n%s", stdout)
	}
	report, err := analysis.DecodeReport([]byte(stdout))
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Validate(); err != nil {
		t.Fatal(err)
	}
	if report.Unsuppressed != 0 || report.Suppressed != 0 || len(report.Diagnostics) != 0 {
		t.Errorf("clean run produced findings: %+v", report)
	}
}
