package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// vet invokes the driver in-process and returns (exit code, stdout, stderr).
func vet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestDirtyModuleExitsOne(t *testing.T) {
	// Deliberately a relative pattern: the fixture is its own module, so
	// this pins that patterns resolve against the working directory, not
	// against the module root discovered from the pattern (which would
	// double the path).
	code, stdout, stderr := vet(t, "-run", "determinism", "testdata/dirty/...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stdout %q, stderr %q)", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "time.Now reads the wall clock") {
		t.Errorf("diagnostics missing the time.Now finding:\n%s", stdout)
	}
	if !strings.Contains(stdout, "[determinism]") {
		t.Errorf("diagnostics missing the analyzer tag:\n%s", stdout)
	}
	// The suppressed site (Audited) must not be reported: exactly one
	// diagnostic line.
	if n := strings.Count(strings.TrimSpace(stdout), "\n") + 1; n != 1 {
		t.Errorf("want exactly 1 diagnostic line, got %d:\n%s", n, stdout)
	}
}

func TestCleanModuleExitsZero(t *testing.T) {
	dir, err := filepath.Abs("testdata/clean")
	if err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := vet(t, "-run", "determinism,codecsymmetry,kernelparity,lockcheck", dir+"/...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stdout %q, stderr %q)", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no diagnostics, got:\n%s", stdout)
	}
}

func TestMissingDirExitsTwo(t *testing.T) {
	code, _, stderr := vet(t, filepath.Join("testdata", "no-such-dir"))
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr %q)", code, stderr)
	}
	if stderr == "" {
		t.Error("expected a load error on stderr")
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	code, _, stderr := vet(t, "-run", "nope", "testdata/clean/...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer error", stderr)
	}
}

func TestListExitsZero(t *testing.T) {
	code, stdout, _ := vet(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "kernelparity", "codecsymmetry", "lockcheck"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

// TestRepoTreeIsClean is the acceptance gate: the default scoped run over
// the whole repository must report nothing. Skipped in -short mode — it
// type-checks the full module.
func TestRepoTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module vet run skipped in -short mode")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := vet(t, root+"/...")
	if code != 0 {
		t.Fatalf("bigmap-vet over the repo tree: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}
