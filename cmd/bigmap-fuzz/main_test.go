package main

import (
	"os"
	"testing"
)

func TestRunSmallCampaign(t *testing.T) {
	err := run([]string{
		"-bench", "zlib", "-scheme", "bigmap", "-map", "64k",
		"-execs", "2000", "-scale", "0.05", "-seeds", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithLafAndNGram(t *testing.T) {
	err := run([]string{
		"-bench", "libpng", "-scheme", "bigmap", "-map", "256k",
		"-execs", "1500", "-scale", "0.05", "-seeds", "4",
		"-laf", "-ngram", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownBenchmark(t *testing.T) {
	if err := run([]string{"-bench", "nope", "-execs", "10"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunRejectsMissingBudget(t *testing.T) {
	if err := run([]string{"-bench", "zlib", "-execs", "0", "-scale", "0.05"}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestRunRejectsBadMapSize(t *testing.T) {
	if err := run([]string{"-bench", "zlib", "-map", "xyz", "-execs", "10"}); err == nil {
		t.Error("bad map size accepted")
	}
}

func TestRunWithOutputDir(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-bench", "zlib", "-scheme", "bigmap", "-map", "64k",
		"-execs", "1500", "-scale", "0.05", "-seeds", "4", "-o", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The saved queue must round-trip as an input corpus.
	err = run([]string{
		"-bench", "zlib", "-scheme", "afl", "-map", "64k",
		"-execs", "1000", "-scale", "0.05", "-i", dir + "/queue",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithAutoDict(t *testing.T) {
	err := run([]string{
		"-bench", "libpng", "-scheme", "bigmap", "-map", "64k",
		"-execs", "1200", "-scale", "0.05", "-seeds", "4", "-autodict",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckpointAndResume(t *testing.T) {
	chk := t.TempDir() + "/campaign.bmcp"
	// First leg writes a final checkpoint...
	err := run([]string{
		"-bench", "zlib", "-scheme", "bigmap", "-map", "64k",
		"-execs", "1500", "-scale", "0.05", "-seeds", "4",
		"-checkpoint", chk, "-checkpoint-every", "500",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(chk); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	// ...and the second leg continues it to a larger total budget.
	err = run([]string{
		"-bench", "zlib", "-scheme", "bigmap", "-map", "64k",
		"-execs", "3000", "-scale", "0.05",
		"-checkpoint", chk, "-resume",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunResumeValidation(t *testing.T) {
	if err := run([]string{"-bench", "zlib", "-resume", "-execs", "10"}); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
	chk := t.TempDir() + "/missing.bmcp"
	if err := run([]string{
		"-bench", "zlib", "-scale", "0.05", "-execs", "10",
		"-checkpoint", chk, "-resume",
	}); err == nil {
		t.Error("resume from missing checkpoint accepted")
	}
}

func TestRunWithFaultInjection(t *testing.T) {
	err := run([]string{
		"-bench", "zlib", "-scheme", "bigmap", "-map", "64k",
		"-execs", "2000", "-scale", "0.05", "-seeds", "4",
		"-calibrate", "3", "-flaky-edges", "200", "-fault-drop", "300",
		"-spurious-crash", "10", "-spurious-hang", "10", "-cycle-jitter", "10",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithSlotCap(t *testing.T) {
	err := run([]string{
		"-bench", "zlib", "-scheme", "bigmap", "-map", "64k",
		"-execs", "1500", "-scale", "0.05", "-seeds", "4", "-slot-cap", "32",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithDictionaryFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/tokens.dict"
	if err := os.WriteFile(path, []byte("magic=\"\\x89PNG\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"-bench", "zlib", "-execs", "1000", "-scale", "0.05", "-seeds", "4", "-x", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", "zlib", "-execs", "10", "-x", dir + "/missing"}); err == nil {
		t.Error("missing dictionary accepted")
	}
}
