// Command bigmap-fuzz runs one fuzzing campaign against a synthetic
// benchmark, with the map scheme, map size and coverage metric on the
// command line — the interactive front door to the library.
//
// Usage:
//
//	bigmap-fuzz -bench sqlite3 -scheme bigmap -map 2M -execs 200000
//	bigmap-fuzz -bench gvn -scheme afl -map 64k -seconds 10
//	bigmap-fuzz -bench instcombine -laf -ngram 3 -map 2M -execs 100000
//
// Long campaigns survive interruption: with -checkpoint the campaign state
// is snapshotted atomically (periodically with -checkpoint-every, and as a
// last gasp on error or SIGINT/SIGTERM), and -resume continues an
// interrupted campaign exactly where it stopped — same target flags
// required, since the checkpoint stores state, not configuration.
//
// Live campaigns are observable: -http serves /metrics (Prometheus),
// /stats (JSON) and /debug/pprof/ while fuzzing, and -stats-every prints a
// one-line progress summary to stderr at that interval. Both wire the
// fuzzer into a telemetry registry; without them the campaign runs with
// telemetry fully off (zero overhead in the exec loop).
//
// Campaigns can span processes and machines: -join attaches this instance
// to a bigmap-corpusd corpus service, pushing new queue entries, crash
// buckets and virgin-map deltas every -sync-every execs and importing what
// the campaign's other workers published (see docs/DISTRIBUTED.md):
//
//	bigmap-fuzz -bench sqlite3 -execs 500000 -join http://localhost:8766 -worker w1
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/bigmap/bigmap"
	"github.com/bigmap/bigmap/internal/dictionary"
	"github.com/bigmap/bigmap/internal/dist"
	"github.com/bigmap/bigmap/internal/output"
	"github.com/bigmap/bigmap/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bigmap-fuzz:", err)
		os.Exit(1)
	}
}

// signalSliceExecs bounds one uninterruptible fuzzing slice so signals and
// periodic checkpoints are honoured within a bounded delay even when no
// -checkpoint-every is set.
const signalSliceExecs = 25000

func run(args []string) error {
	fs := flag.NewFlagSet("bigmap-fuzz", flag.ContinueOnError)
	benchName := fs.String("bench", "libpng", "benchmark profile (Table II / Table III name)")
	scheme := fs.String("scheme", "bigmap", "coverage map scheme: afl | bigmap")
	mapSize := fs.String("map", "64k", "coverage map size (64k, 256k, 2M, 8M)")
	execs := fs.Uint64("execs", 100000, "test case budget (0 = use -seconds)")
	seconds := fs.Float64("seconds", 0, "wall-clock budget in seconds (when -execs is 0)")
	scale := fs.Float64("scale", 0.1, "benchmark scale relative to the paper's static edges")
	seed := fs.Uint64("seed", 1, "campaign seed")
	seeds := fs.Int("seeds", 16, "synthesized seed corpus size")
	ngram := fs.Int("ngram", 0, "use N-gram coverage with this N (0 = edge coverage)")
	laf := fs.Bool("laf", false, "apply the laf-intel transformation")
	det := fs.Bool("det", false, "run AFL's deterministic stages")
	outDir := fs.String("o", "", "output directory (queue/, crashes/, fuzzer_stats, plot_data)")
	inDir := fs.String("i", "", "input corpus directory (replaces synthesized seeds)")
	dictFile := fs.String("x", "", "AFL-style dictionary file")
	autoDict := fs.Bool("autodict", false, "harvest comparison operands from the target as a dictionary")
	cmpLog := fs.Bool("cmplog", false, "enable RedQueen-style input-to-state mutation")
	schedule := fs.String("schedule", "", "power schedule: exploit|fast|explore|coe|lin|quad")
	calibrate := fs.Int("calibrate", 0, "re-execute new queue entries this many times to measure stability")
	slotCap := fs.Int("slot-cap", 0, "bound the BigMap dense-slot region (0 = full map)")
	selective := fs.Bool("selective", false, "skip classify-and-compare when a cheap prefilter proves no new coverage")
	batch := fs.Int("batch", 0, "run havoc mutants in batches of this size (amortizes per-exec overhead)")
	chkPath := fs.String("checkpoint", "", "checkpoint file (atomic snapshots; last-gasp on error/signal)")
	chkEvery := fs.Uint64("checkpoint-every", 0, "execs between periodic checkpoints (0 = final/last-gasp only)")
	resume := fs.Bool("resume", false, "resume the campaign from -checkpoint (same target flags required)")
	join := fs.String("join", "", "corpus service base URL (bigmap-corpusd) to sync this instance through")
	campaign := fs.String("campaign", "default", "corpus service campaign name (with -join)")
	worker := fs.String("worker", "", "worker name on the corpus service; unique per campaign, reuse only to resume (default w<pid>)")
	syncEvery := fs.Uint64("sync-every", 20000, "execs between corpus service sync boundaries (with -join)")
	httpAddr := fs.String("http", "", "serve /metrics, /stats and /debug/pprof/ on this address (e.g. :8080)")
	statsEvery := fs.Float64("stats-every", 0, "seconds between one-line progress reports on stderr (0 = off)")
	faultSeed := fs.Uint64("fault-seed", 1, "fault injector seed")
	flakyEdges := fs.Int("flaky-edges", 0, "per-mille of blocks whose edges flicker across runs")
	faultDrop := fs.Int("fault-drop", 0, "per-mille chance an exec drops its flaky edges")
	spuriousCrash := fs.Int("spurious-crash", 0, "per-mille chance a clean exec is misreported as a crash")
	spuriousHang := fs.Int("spurious-hang", 0, "per-mille chance a clean exec is misreported as a hang")
	cycleJitter := fs.Int("cycle-jitter", 0, "percent jitter injected into reported cycle counts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *chkPath == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}

	profile, ok := bigmap.ProfileByName(*benchName)
	if !ok {
		return fmt.Errorf("unknown benchmark %q (see DESIGN.md for the list)", *benchName)
	}
	size, err := parseSize(*mapSize)
	if err != nil {
		return err
	}

	fmt.Printf("generating %s at scale %g...\n", profile.Name, *scale)
	prog, err := bigmap.Generate(profile.Spec(*scale))
	if err != nil {
		return err
	}
	fmt.Printf("  %d blocks, %d static edges\n", prog.NumBlocks(), prog.StaticEdges())

	if *laf {
		var stats bigmap.LafIntelStats
		prog, stats = bigmap.LafIntel(prog, *seed)
		fmt.Printf("  laf-intel: %d compares + %d switches split, static edges %d -> %d\n",
			stats.SplitCompares, stats.SplitSwitches,
			stats.StaticEdgesBefore, stats.StaticEdgesAfter)
	}

	// Telemetry exists only when something consumes it; otherwise the
	// campaign runs with the registry nil and the exec loop telemetry-free.
	var reg *bigmap.TelemetryRegistry
	if *httpAddr != "" || *statsEvery > 0 {
		reg = bigmap.NewTelemetry()
		if reg == nil {
			fmt.Fprintln(os.Stderr, "  telemetry compiled out (bigmapnotel build); -http serves pprof only")
		}
	}
	if *httpAddr != "" {
		srv := &http.Server{Addr: *httpAddr, Handler: bigmap.TelemetryHandler(reg)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "bigmap-fuzz: http:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("  observability on http://%s/ (metrics, stats, pprof)\n", *httpAddr)
	}

	opts := []bigmap.Option{
		bigmap.WithScheme(bigmap.Scheme(*scheme)),
		bigmap.WithMapSize(size),
		bigmap.WithSeed(*seed),
	}
	if reg != nil {
		opts = append(opts, bigmap.WithTelemetry(reg))
	}
	if *ngram > 0 {
		opts = append(opts, bigmap.WithNGram(*ngram))
	}
	if *det {
		opts = append(opts, bigmap.WithDeterministicStages())
	}
	if *cmpLog {
		opts = append(opts, bigmap.WithCmpLog())
	}
	if *schedule != "" {
		opts = append(opts, bigmap.WithPowerSchedule(*schedule))
	}
	if *calibrate > 0 {
		opts = append(opts, bigmap.WithCalibration(*calibrate))
	}
	if *slotCap > 0 {
		opts = append(opts, bigmap.WithSlotCap(*slotCap))
	}
	if *selective {
		opts = append(opts, bigmap.WithSelectiveTracing())
	}
	if *batch > 1 {
		opts = append(opts, bigmap.WithBatchSize(*batch))
	}
	if *flakyEdges > 0 || *spuriousCrash > 0 || *spuriousHang > 0 || *cycleJitter > 0 {
		fp := bigmap.FaultProfile{
			Seed:              *faultSeed,
			FlakyEdgeFraction: *flakyEdges,
			DropRate:          *faultDrop,
			SpuriousCrashRate: *spuriousCrash,
			SpuriousHangRate:  *spuriousHang,
			CycleJitterPct:    *cycleJitter,
		}
		opts = append(opts, bigmap.WithFaultProfile(fp))
		fmt.Printf("  fault injection on (seed %d)\n", *faultSeed)
	}
	var dict [][]byte
	if *dictFile != "" {
		content, err := os.ReadFile(*dictFile)
		if err != nil {
			return err
		}
		tokens, err := dictionary.Parse(string(content), 1<<30)
		if err != nil {
			return err
		}
		dict = append(dict, dictionary.Data(tokens)...)
		fmt.Printf("  loaded %d dictionary tokens from %s\n", len(tokens), *dictFile)
	}
	if *autoDict {
		tokens := dictionary.Extract(prog)
		dict = append(dict, dictionary.Data(tokens)...)
		fmt.Printf("  harvested %d dictionary tokens from the target\n", len(tokens))
	}
	if len(dict) > 0 {
		opts = append(opts, bigmap.WithDictionary(dict))
	}

	var f *bigmap.Fuzzer
	if *resume {
		lh := reg.Histogram("checkpoint_load_ns")
		lt := lh.Start()
		st, err := bigmap.LoadFuzzerCheckpoint(*chkPath)
		lh.Done(lt)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		f, err = bigmap.ResumeFuzzer(prog, st, opts...)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		rs := f.Stats()
		fmt.Printf("  resumed from %s: %d execs, %d queue paths, %d edges, %d unique crashes, %d hangs\n",
			*chkPath, rs.Execs, rs.Paths, rs.EdgesDiscovered, rs.UniqueCrashes, rs.Hangs)
	} else {
		f, err = bigmap.NewFuzzer(prog, opts...)
		if err != nil {
			return err
		}
		var corpusIn [][]byte
		if *inDir != "" {
			var err error
			corpusIn, err = output.LoadCorpus(*inDir)
			if err != nil {
				return err
			}
			fmt.Printf("  loaded %d corpus inputs from %s\n", len(corpusIn), *inDir)
		} else {
			corpusIn = prog.SampleSeeds(rng.New(*seed^0x5eed), *seeds)
		}
		accepted := 0
		for _, s := range corpusIn {
			if err := f.AddSeed(s); err == nil {
				accepted++
			}
		}
		if accepted == 0 {
			return fmt.Errorf("all seeds crashed or hung")
		}
		fmt.Printf("  %d/%d seeds accepted\n", accepted, len(corpusIn))
	}

	var peer *dist.Worker
	if *join != "" {
		client, err := dist.NewClient(*join, *campaign)
		if err != nil {
			return err
		}
		if err := client.EnsureCampaign(size); err != nil {
			return fmt.Errorf("join %s: %w", *join, err)
		}
		name := *worker
		if name == "" {
			name = fmt.Sprintf("w%d", os.Getpid())
		}
		peer, err = dist.NewWorker(f, name, client, size)
		if err != nil {
			return fmt.Errorf("join %s: %w", *join, err)
		}
		fmt.Printf("  joined campaign %q at %s as worker %q (sync every %d execs)\n",
			*campaign, *join, name, *syncEvery)
	}

	var session *output.Session
	if *outDir != "" {
		var err error
		session, err = output.NewSession(*outDir)
		if err != nil {
			return err
		}
		defer session.Close()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	start := time.Now() //bigmap:nondeterministic-ok wall-clock campaign timing for the stats banner only
	runErr := fuzzLoop(f, peer, *execs, *seconds, *chkPath, *chkEvery, *syncEvery, *statsEvery, stop)
	elapsed := time.Since(start) //bigmap:nondeterministic-ok wall-clock campaign timing for the stats banner only

	if peer != nil {
		// Publish the final finds; a campaign's last slice is otherwise
		// invisible to its peers.
		if _, err := peer.Push(); err != nil {
			fmt.Fprintln(os.Stderr, "bigmap-fuzz: final sync:", err)
		} else if st, err := peer.Syncer().Stats(); err == nil {
			fmt.Printf("  campaign-wide: %d inputs, %d crash buckets, %d workers, %d union edges\n",
				st.Inputs, st.Crashes, st.Workers, st.UnionDiscovered)
		}
	}

	// Stats and the final checkpoint are flushed on the error path too — a
	// failed or interrupted campaign is exactly when the snapshot matters.
	printStats(f, *scheme, size, elapsed)
	if *chkPath != "" {
		if err := bigmap.SaveFuzzerCheckpoint(*chkPath, f); err != nil {
			runErr = errors.Join(runErr, err)
		} else {
			fmt.Printf("  checkpoint saved to %s\n", *chkPath)
		}
	}
	if session != nil {
		if err := session.SaveQueue(f.Queue().Entries()); err != nil {
			return errors.Join(runErr, err)
		}
		if err := session.SaveCrashes(f.Crashes().Records()); err != nil {
			return errors.Join(runErr, err)
		}
		if err := session.WriteStats(f.Stats(), *scheme, size); err != nil {
			return errors.Join(runErr, err)
		}
		if err := session.AppendPlot(f.Stats()); err != nil {
			return errors.Join(runErr, err)
		}
		fmt.Printf("  session saved to %s\n", session.Dir())
	}
	return runErr
}

// fuzzLoop drives the campaign in slices so signals are answered, periodic
// checkpoints written, corpus-service syncs run and progress lines printed
// between slices, never mid-round. The execs budget is the campaign total,
// so a resumed campaign finishes the original budget rather than starting a
// fresh one.
func fuzzLoop(f *bigmap.Fuzzer, peer *dist.Worker, execs uint64, seconds float64, chkPath string, chkEvery, syncEvery uint64, statsEvery float64, stop <-chan os.Signal) error {
	if execs == 0 && seconds <= 0 {
		return fmt.Errorf("need -execs or -seconds")
	}
	slice := uint64(signalSliceExecs)
	if chkEvery > 0 && chkEvery < slice {
		slice = chkEvery
	}
	if peer != nil && syncEvery > 0 && syncEvery < slice {
		slice = syncEvery
	}
	sinceChk := uint64(0)
	sinceSync := uint64(0)
	deadline := time.Time{}
	if execs == 0 {
		deadline = time.Now().Add(time.Duration(seconds * float64(time.Second))) //bigmap:nondeterministic-ok -seconds is a wall-clock budget by definition
	}
	loopStart := time.Now() //bigmap:nondeterministic-ok wall-clock base for periodic stats lines; never persisted
	var statsTick time.Duration
	if statsEvery > 0 {
		statsTick = time.Duration(statsEvery * float64(time.Second))
	}
	nextStats := loopStart.Add(statsTick)
	for {
		select {
		case sig := <-stop:
			return fmt.Errorf("interrupted by %v", sig)
		default:
		}
		if statsTick > 0 && !time.Now().Before(nextStats) { //bigmap:nondeterministic-ok stats cadence is wall-clock; fuzzing state never reads it
			st := f.Stats()
			el := time.Since(loopStart).Seconds() //bigmap:nondeterministic-ok elapsed seconds feed the printed execs/s rate only
			fmt.Fprintf(os.Stderr,
				"[stats] t=%.0fs execs=%d (%.0f/s) paths=%d edges=%d crashes=%d/%d hangs=%d\n",
				el, st.Execs, float64(st.Execs)/el, st.Paths, st.EdgesDiscovered,
				st.UniqueCrashes, st.Crashes, st.Hangs)
			nextStats = time.Now().Add(statsTick) //bigmap:nondeterministic-ok stats cadence is wall-clock; fuzzing state never reads it
		}
		var err error
		if execs > 0 {
			if f.Execs() >= execs {
				return nil
			}
			n := execs - f.Execs()
			if n > slice {
				n = slice
			}
			err = f.RunExecs(n)
		} else {
			remaining := time.Until(deadline) //bigmap:nondeterministic-ok -seconds deadline check; execution results do not depend on it
			if remaining <= 0 {
				return nil
			}
			if remaining > 500*time.Millisecond {
				remaining = 500 * time.Millisecond
			}
			err = f.RunFor(remaining)
		}
		if err != nil {
			return err
		}
		if chkPath != "" && chkEvery > 0 {
			sinceChk += slice
			if sinceChk >= chkEvery {
				sinceChk = 0
				if err := bigmap.SaveFuzzerCheckpoint(chkPath, f); err != nil {
					return err
				}
			}
		}
		if peer != nil && syncEvery > 0 {
			sinceSync += slice
			if sinceSync >= syncEvery {
				sinceSync = 0
				// A sync failure degrades to independent fuzzing; the
				// worker's pending batch is retried at the next boundary.
				if err := peer.Sync(); err != nil {
					fmt.Fprintln(os.Stderr, "bigmap-fuzz: sync:", err)
				}
			}
		}
	}
}

func printStats(f *bigmap.Fuzzer, scheme string, size int, elapsed time.Duration) {
	st := f.Stats()
	fmt.Printf("\ncampaign finished in %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  execs           : %d (%.0f/sec)\n", st.Execs,
		float64(st.Execs)/elapsed.Seconds())
	fmt.Printf("  queue paths     : %d\n", st.Paths)
	fmt.Printf("  edges discovered: %d\n", st.EdgesDiscovered)
	fmt.Printf("  used_key        : %d / %d map slots\n", st.UsedKeys, size)
	if st.MapSaturated {
		fmt.Printf("  map SATURATED   : %d keys dropped\n", st.DroppedKeys)
	}
	if st.CalibExecs > 0 {
		fmt.Printf("  stability       : %.2f%% (%d variable edges, %d calibration execs)\n",
			st.Stability, st.VariableEdges, st.CalibExecs)
	}
	if st.SpuriousCrashes > 0 || st.SpuriousHangs > 0 {
		fmt.Printf("  quarantined     : %d spurious crashes, %d spurious hangs\n",
			st.SpuriousCrashes, st.SpuriousHangs)
	}
	fmt.Printf("  crashes         : %d total, %d unique (crashwalk), %d unique (afl)\n",
		st.Crashes, st.UniqueCrashes, st.UniqueCrashesAFL)
	fmt.Printf("  hangs           : %d\n", st.Hangs)
	rate, err := bigmap.CollisionRate(size, maxInt(st.EdgesDiscovered, 1))
	if err == nil {
		fmt.Printf("  collision rate  : %.2f%% (Equation 1 at this map size)\n", rate*100)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult = 1 << 20
		s = s[:len(s)-1]
	}
	var v int
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return v * mult, nil
}
