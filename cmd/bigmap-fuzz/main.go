// Command bigmap-fuzz runs one fuzzing campaign against a synthetic
// benchmark, with the map scheme, map size and coverage metric on the
// command line — the interactive front door to the library.
//
// Usage:
//
//	bigmap-fuzz -bench sqlite3 -scheme bigmap -map 2M -execs 200000
//	bigmap-fuzz -bench gvn -scheme afl -map 64k -seconds 10
//	bigmap-fuzz -bench instcombine -laf -ngram 3 -map 2M -execs 100000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/bigmap/bigmap"
	"github.com/bigmap/bigmap/internal/dictionary"
	"github.com/bigmap/bigmap/internal/output"
	"github.com/bigmap/bigmap/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bigmap-fuzz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bigmap-fuzz", flag.ContinueOnError)
	benchName := fs.String("bench", "libpng", "benchmark profile (Table II / Table III name)")
	scheme := fs.String("scheme", "bigmap", "coverage map scheme: afl | bigmap")
	mapSize := fs.String("map", "64k", "coverage map size (64k, 256k, 2M, 8M)")
	execs := fs.Uint64("execs", 100000, "test case budget (0 = use -seconds)")
	seconds := fs.Float64("seconds", 0, "wall-clock budget in seconds (when -execs is 0)")
	scale := fs.Float64("scale", 0.1, "benchmark scale relative to the paper's static edges")
	seed := fs.Uint64("seed", 1, "campaign seed")
	seeds := fs.Int("seeds", 16, "synthesized seed corpus size")
	ngram := fs.Int("ngram", 0, "use N-gram coverage with this N (0 = edge coverage)")
	laf := fs.Bool("laf", false, "apply the laf-intel transformation")
	det := fs.Bool("det", false, "run AFL's deterministic stages")
	outDir := fs.String("o", "", "output directory (queue/, crashes/, fuzzer_stats, plot_data)")
	inDir := fs.String("i", "", "input corpus directory (replaces synthesized seeds)")
	dictFile := fs.String("x", "", "AFL-style dictionary file")
	autoDict := fs.Bool("autodict", false, "harvest comparison operands from the target as a dictionary")
	cmpLog := fs.Bool("cmplog", false, "enable RedQueen-style input-to-state mutation")
	schedule := fs.String("schedule", "", "power schedule: exploit|fast|explore|coe|lin|quad")
	if err := fs.Parse(args); err != nil {
		return err
	}

	profile, ok := bigmap.ProfileByName(*benchName)
	if !ok {
		return fmt.Errorf("unknown benchmark %q (see DESIGN.md for the list)", *benchName)
	}
	size, err := parseSize(*mapSize)
	if err != nil {
		return err
	}

	fmt.Printf("generating %s at scale %g...\n", profile.Name, *scale)
	prog, err := bigmap.Generate(profile.Spec(*scale))
	if err != nil {
		return err
	}
	fmt.Printf("  %d blocks, %d static edges\n", prog.NumBlocks(), prog.StaticEdges())

	if *laf {
		var stats bigmap.LafIntelStats
		prog, stats = bigmap.LafIntel(prog, *seed)
		fmt.Printf("  laf-intel: %d compares + %d switches split, static edges %d -> %d\n",
			stats.SplitCompares, stats.SplitSwitches,
			stats.StaticEdgesBefore, stats.StaticEdgesAfter)
	}

	opts := []bigmap.Option{
		bigmap.WithScheme(bigmap.Scheme(*scheme)),
		bigmap.WithMapSize(size),
		bigmap.WithSeed(*seed),
	}
	if *ngram > 0 {
		opts = append(opts, bigmap.WithNGram(*ngram))
	}
	if *det {
		opts = append(opts, bigmap.WithDeterministicStages())
	}
	if *cmpLog {
		opts = append(opts, bigmap.WithCmpLog())
	}
	if *schedule != "" {
		opts = append(opts, bigmap.WithPowerSchedule(*schedule))
	}
	var dict [][]byte
	if *dictFile != "" {
		content, err := os.ReadFile(*dictFile)
		if err != nil {
			return err
		}
		tokens, err := dictionary.Parse(string(content), 1<<30)
		if err != nil {
			return err
		}
		dict = append(dict, dictionary.Data(tokens)...)
		fmt.Printf("  loaded %d dictionary tokens from %s\n", len(tokens), *dictFile)
	}
	if *autoDict {
		tokens := dictionary.Extract(prog)
		dict = append(dict, dictionary.Data(tokens)...)
		fmt.Printf("  harvested %d dictionary tokens from the target\n", len(tokens))
	}
	if len(dict) > 0 {
		opts = append(opts, bigmap.WithDictionary(dict))
	}
	f, err := bigmap.NewFuzzer(prog, opts...)
	if err != nil {
		return err
	}

	var corpusIn [][]byte
	if *inDir != "" {
		var err error
		corpusIn, err = output.LoadCorpus(*inDir)
		if err != nil {
			return err
		}
		fmt.Printf("  loaded %d corpus inputs from %s\n", len(corpusIn), *inDir)
	} else {
		corpusIn = prog.SampleSeeds(rng.New(*seed^0x5eed), *seeds)
	}
	accepted := 0
	for _, s := range corpusIn {
		if err := f.AddSeed(s); err == nil {
			accepted++
		}
	}
	if accepted == 0 {
		return fmt.Errorf("all seeds crashed or hung")
	}
	fmt.Printf("  %d/%d seeds accepted\n", accepted, len(corpusIn))

	var session *output.Session
	if *outDir != "" {
		var err error
		session, err = output.NewSession(*outDir)
		if err != nil {
			return err
		}
		defer session.Close()
	}

	start := time.Now()
	if *execs > 0 {
		err = f.RunExecs(*execs)
	} else if *seconds > 0 {
		err = f.RunFor(time.Duration(*seconds * float64(time.Second)))
	} else {
		return fmt.Errorf("need -execs or -seconds")
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	st := f.Stats()
	fmt.Printf("\ncampaign finished in %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  execs           : %d (%.0f/sec)\n", st.Execs,
		float64(st.Execs)/elapsed.Seconds())
	fmt.Printf("  queue paths     : %d\n", st.Paths)
	fmt.Printf("  edges discovered: %d\n", st.EdgesDiscovered)
	fmt.Printf("  used_key        : %d / %d map slots\n", st.UsedKeys, size)
	fmt.Printf("  crashes         : %d total, %d unique (crashwalk), %d unique (afl)\n",
		st.Crashes, st.UniqueCrashes, st.UniqueCrashesAFL)
	fmt.Printf("  hangs           : %d\n", st.Hangs)
	rate, err := bigmap.CollisionRate(size, maxInt(st.EdgesDiscovered, 1))
	if err == nil {
		fmt.Printf("  collision rate  : %.2f%% (Equation 1 at this map size)\n", rate*100)
	}

	if session != nil {
		if err := session.SaveQueue(f.Queue().Entries()); err != nil {
			return err
		}
		if err := session.SaveCrashes(f.Crashes().Records()); err != nil {
			return err
		}
		if err := session.WriteStats(st, *scheme, size); err != nil {
			return err
		}
		if err := session.AppendPlot(st); err != nil {
			return err
		}
		fmt.Printf("  session saved to %s\n", session.Dir())
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult = 1 << 20
		s = s[:len(s)-1]
	}
	var v int
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return v * mult, nil
}
