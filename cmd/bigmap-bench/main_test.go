package main

import "testing"

func TestRunFig2(t *testing.T) {
	if err := run([]string{"fig2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig2CSV(t *testing.T) {
	if err := run([]string{"fig2", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	if err := run([]string{"fig99"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestRunMissingSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing subcommand accepted")
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run([]string{"table2", "-benchmarks", "nope", "-q"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunTinyTable2(t *testing.T) {
	err := run([]string{"table2", "-benchmarks", "zlib", "-execs", "1000", "-scale", "0.02", "-q"})
	if err != nil {
		t.Fatal(err)
	}
}
