// Command bigmap-bench regenerates the paper's evaluation artifacts: every
// table and figure of §V has a subcommand that reruns the experiment on the
// synthetic substrate and prints a paper-shaped table.
//
// Usage:
//
//	bigmap-bench fig2                        # collision-rate curves (Eq. 1)
//	bigmap-bench fig3  [flags]               # runtime composition
//	bigmap-bench table2 [flags]              # benchmark characteristics
//	bigmap-bench fig6|fig7|fig8 [flags]      # throughput / coverage / crashes grid
//	bigmap-bench fig7t [flags]               # fig7+fig8 under a TIME budget
//	bigmap-bench table3 [flags]              # laf-intel + N-gram composition
//	bigmap-bench fig9|fig10 [flags]          # parallel scaling
//	bigmap-bench ablation [flags]            # §IV-E design-choice ablations
//	bigmap-bench dedup [flags]               # §V-A3 dedup-bias demonstration
//	bigmap-bench roadblocks [flags]          # extension: dict vs laf vs cmplog
//	bigmap-bench collafl [flags]             # §VI related-work comparison
//	bigmap-bench metrics [flags]             # §VI metric map-pressure sweep
//	bigmap-bench ensemble [flags]            # §VI future work: ensemble vs stacking
//	bigmap-bench schedules [flags]           # AFLFast power schedules on BigMap
//	bigmap-bench all [flags]                 # everything above
//	bigmap-bench grid [-config f] [-out dir] # declarative reproducible grid -> results/
//	bigmap-bench benchjson [-o file]         # stdin: `go test -bench` text -> JSON report
//	bigmap-bench benchcmp old.json new.json  # no-regression gate over shared benchmarks
//
// Common flags:
//
//	-scale f     benchmark scale vs the paper's static edges (default 0.05)
//	-execs n     test-case budget per configuration (default 20000)
//	-seconds f   wall-clock budget per cell for time-budget experiments (default 2)
//	-benchmarks  comma-separated subset (default: experiment's own set)
//	-seed n      campaign seed (default 1)
//	-trials n    average grid cells over n runs (the paper averages 3)
//	-csv         emit CSV instead of an aligned table
//	-json        emit one JSON report (benchjson schema) instead of text tables
//	-q           suppress per-cell progress lines
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"github.com/bigmap/bigmap/internal/bench"
	"github.com/bigmap/bigmap/internal/benchjson"
	"github.com/bigmap/bigmap/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bigmap-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (fig2, fig3, table2, fig6, fig7, fig7t, fig8, table3, fig9, fig10, ablation, dedup, roadblocks, collafl, metrics, ensemble, schedules, selective, all)")
	}
	sub, rest := args[0], args[1:]

	if sub == "benchjson" {
		return runBenchJSON(rest)
	}
	if sub == "benchcmp" {
		return runBenchCmp(rest)
	}
	if sub == "grid" {
		return runGrid(rest)
	}

	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	scale := fs.Float64("scale", 0.05, "benchmark scale")
	execs := fs.Uint64("execs", 20000, "execs per configuration")
	seconds := fs.Float64("seconds", 2, "seconds per cell for time-budget experiments")
	benchmarks := fs.String("benchmarks", "", "comma-separated benchmark subset")
	seed := fs.Uint64("seed", 1, "campaign seed")
	trials := fs.Int("trials", 1, "average grid cells over this many runs (paper uses 3)")
	virginShards := fs.Int("virgin-shards", 0, "campaign virgin union shards for fig9/fig10 (0 = off, 1 = locked, >=2 lock-free)")
	csv := fs.Bool("csv", false, "emit CSV")
	jsonOut := fs.Bool("json", false, "emit one JSON report (benchjson schema) instead of text tables")
	quiet := fs.Bool("q", false, "suppress progress")
	httpAddr := fs.String("http", "", "serve /debug/pprof/ (and /metrics if a registry exists) on this address during the run")
	if err := fs.Parse(rest); err != nil {
		return err
	}

	if *httpAddr != "" {
		// Benchmarks measure the uninstrumented loop, so no registry is wired
		// into the experiments; the endpoint exists to profile them (pprof).
		go func() {
			if err := http.ListenAndServe(*httpAddr, telemetry.Handler(nil)); err != nil {
				fmt.Fprintln(os.Stderr, "bigmap-bench: http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "profiling endpoint on http://%s/debug/pprof/\n", *httpAddr)
	}

	opts := bench.Options{
		Scale:        *scale,
		ExecsPerRun:  *execs,
		Seed:         *seed,
		Trials:       *trials,
		VirginShards: *virginShards,
	}
	if *benchmarks != "" {
		opts.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	// With -json, tables are collected and written as one benchjson report
	// after the experiment finishes — the same schema `benchjson` produces
	// for `go test -bench` output, so both artifact paths diff identically.
	var collected []benchjson.TableJSON
	emit := func(tables ...*bench.Table) error {
		for _, t := range tables {
			if t == nil {
				continue
			}
			if *jsonOut {
				collected = append(collected, benchjson.FromTable(t.Title, t.Notes, t.Header, t.Rows))
				continue
			}
			var err error
			if *csv {
				err = t.RenderCSV(os.Stdout)
			} else {
				err = t.Render(os.Stdout)
			}
			if err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}

	if err := dispatch(sub, opts, *seconds, emit); err != nil {
		return err
	}
	if *jsonOut {
		rep := &benchjson.Report{Schema: benchjson.Schema, Tables: collected}
		return rep.Write(os.Stdout)
	}
	return nil
}

// dispatch runs one experiment subcommand through emit. Every per-figure
// subcommand resolves through the experiment registry, so the CLI, the `all`
// sweep and the grid runner cannot drift apart.
func dispatch(sub string, opts bench.Options, seconds float64, emit func(...*bench.Table) error) error {
	if sub == "all" {
		return runAll(opts, seconds, emit)
	}
	tables, err := bench.RunExperiment(sub, opts, seconds)
	if err != nil {
		return err
	}
	return emit(tables...)
}

// runGrid implements the grid subcommand: execute a declarative
// experiments.json and regenerate every artifact under the output directory.
func runGrid(args []string) error {
	fs := flag.NewFlagSet("grid", flag.ContinueOnError)
	config := fs.String("config", "experiments.json", "declarative experiment grid (schema bigmap-grid/v1)")
	out := fs.String("out", "results", "output directory for txt/csv/grid.json artifacts")
	quiet := fs.Bool("q", false, "suppress progress")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := bench.LoadGridConfig(*config)
	if err != nil {
		return err
	}
	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}
	res, err := bench.RunGridConfig(cfg, *out, progress)
	if err != nil {
		return err
	}
	for _, f := range res.Files {
		fmt.Println(filepath.Join(*out, f))
	}
	return nil
}

// runAll regenerates every artifact in paper order.
func runAll(opts bench.Options, seconds float64, emit func(...*bench.Table) error) error {
	fig2, err := bench.Fig2()
	if err != nil {
		return err
	}
	if err := emit(fig2); err != nil {
		return err
	}

	fig3, err := bench.Fig3(opts)
	if err != nil {
		return err
	}
	if err := emit(fig3); err != nil {
		return err
	}

	table2, err := bench.Table2(opts)
	if err != nil {
		return err
	}
	if err := emit(table2); err != nil {
		return err
	}

	grid, err := bench.RunFig678Grid(opts)
	if err != nil {
		return err
	}
	if err := emit(grid.Fig6(), grid.Fig7(), grid.Fig8()); err != nil {
		return err
	}

	table3, err := bench.Table3(opts)
	if err != nil {
		return err
	}
	if err := emit(table3); err != nil {
		return err
	}

	scaling, err := bench.RunScaling(opts, seconds)
	if err != nil {
		return err
	}
	if err := emit(scaling.Fig9a(), scaling.Fig9b(), scaling.Fig10()); err != nil {
		return err
	}

	ablation, err := bench.Ablation(opts)
	if err != nil {
		return err
	}
	if err := emit(ablation); err != nil {
		return err
	}

	dedup, err := bench.DedupBias(opts)
	if err != nil {
		return err
	}
	if err := emit(dedup); err != nil {
		return err
	}

	for _, extra := range []func(bench.Options) (*bench.Table, error){
		bench.CollAFL, bench.Metrics, bench.Roadblocks, bench.Schedules, bench.EnsembleVsStacking,
	} {
		t, err := extra(opts)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	return nil
}

// runBenchJSON implements the benchjson subcommand: parse `go test -bench
// -benchmem` text on stdin into the machine-readable report (BENCH_2.json).
func runBenchJSON(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "-", "output path (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := benchjson.ParseGoBench(os.Stdin)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rep.Write(w); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d records to %s\n", len(rep.Records), *out)
	}
	return nil
}

// runBenchCmp is the microbenchmark regression gate: it compares two
// benchjson reports generated on the same machine (the checked-in BENCH_N
// artifacts) over the benchmarks they share and fails when any shared
// name slowed down beyond the tolerance. Benchmarks only one side has are
// ignored — an older baseline cannot gate code it never measured.
func runBenchCmp(args []string) error {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	tolerance := fs.Float64("tolerance", 0.30, "allowed ns/op growth before a shared benchmark counts as regressed (0.30 = +30%)")
	quiet := fs.Bool("q", false, "print only regressions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("benchcmp needs exactly two report files (old new)")
	}
	load := func(path string) (*benchjson.Report, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rep, err := benchjson.ReadReport(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return rep, nil
	}
	oldRep, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	newRep, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	deltas := benchjson.Compare(oldRep, newRep, *tolerance)
	if len(deltas) == 0 {
		return fmt.Errorf("benchcmp: %s and %s share no benchmark names", fs.Arg(0), fs.Arg(1))
	}
	if !*quiet {
		fmt.Printf("%-60s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
		for _, d := range deltas {
			fmt.Println(benchjson.FormatDelta(d))
		}
	}
	if regs := benchjson.Regressions(deltas); len(regs) > 0 {
		for _, d := range regs {
			fmt.Fprintln(os.Stderr, "REGRESSED:", benchjson.FormatDelta(d))
		}
		return fmt.Errorf("benchcmp: %d of %d shared benchmarks regressed beyond +%.0f%%",
			len(regs), len(deltas), *tolerance*100)
	}
	fmt.Fprintf(os.Stderr, "benchcmp: %d shared benchmarks within +%.0f%%\n", len(deltas), *tolerance*100)
	return nil
}
