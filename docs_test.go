package bigmap_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns every markdown document the link checker guards: the
// repo-root documents plus everything under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, sub...)
	if len(files) == 0 {
		t.Fatal("no markdown files found; is the test running from the repo root?")
	}
	return files
}

// mdLink matches inline markdown links [text](target). Images and reference
// definitions are rare enough here that the inline form is the contract.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// slugify approximates GitHub's heading-anchor algorithm closely enough for
// the anchors these documents use: lowercase, punctuation dropped, spaces
// to hyphens.
func slugify(heading string) string {
	h := strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// headingAnchors collects the anchor slugs of every ATX heading in a
// markdown document.
func headingAnchors(content string) map[string]bool {
	anchors := make(map[string]bool)
	for _, line := range strings.Split(content, "\n") {
		if strings.HasPrefix(line, "#") {
			anchors[slugify(strings.TrimLeft(line, "# "))] = true
		}
	}
	return anchors
}

// TestDocsRelativeLinks fails on dead relative links in the repository's
// documentation: a renamed file or section silently orphaning README or
// DESIGN references is a CI failure, not a reader's surprise.
func TestDocsRelativeLinks(t *testing.T) {
	for _, file := range docFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		content := string(raw)
		anchors := headingAnchors(content)
		for _, m := range mdLink.FindAllStringSubmatch(content, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external; not this test's business
			case strings.HasPrefix(target, "#"):
				if !anchors[strings.TrimPrefix(target, "#")] {
					t.Errorf("%s: dead in-page anchor %q", file, target)
				}
			default:
				path := target
				if i := strings.IndexByte(path, '#'); i >= 0 {
					path = path[:i]
				}
				path = filepath.Join(filepath.Dir(file), path)
				if _, err := os.Stat(path); err != nil {
					t.Errorf("%s: dead relative link %q (%v)", file, target, err)
				}
			}
		}
	}
}
