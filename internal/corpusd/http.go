package corpusd

import (
	"encoding/json"
	"errors"
	"net/http"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/dist"
	"github.com/bigmap/bigmap/internal/telemetry"
)

// maxBodyBytes bounds sync request bodies. Batches carry raw inputs, so the
// limit is generous compared to serve's spec-sized bodies.
const maxBodyBytes = 256 << 20

// Handler returns the store's v1 HTTP API (the wire side of
// dist.Client; the protocol is specified in docs/DISTRIBUTED.md):
//
//	GET  /healthz                          liveness
//	GET  /stats                            all campaigns' stats
//	GET  /metrics                          Prometheus metrics
//	POST /v1/campaigns                     create-or-assert (CampaignRequest)
//	GET  /v1/campaigns                     list campaign names
//	GET  /v1/campaigns/{name}              one campaign's stats
//	POST /v1/campaigns/{name}/join         attach a worker (JoinRequest)
//	POST /v1/campaigns/{name}/push         submit a batch (PushRequest)
//	POST /v1/campaigns/{name}/pull         fetch peer inputs (PullRequest)
//	GET  /v1/campaigns/{name}/inputs/{hash} one input's raw bytes
//	GET  /v1/campaigns/{name}/crashes      deduplicated crash buckets
//	GET  /v1/campaigns/{name}/ledger       the verified hash-chain ledger
//
// Errors are dist.WireError JSON bodies: 400 malformed request or corrupt
// delta, 404 unknown campaign/input, 409 campaign size mismatch or
// sequence gap (code "seq_gap" — the client maps it to dist.ErrSeqGap).
func (s *Store) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /stats", s.handleAllStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/campaigns", s.handleCreate)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{name}", s.handleStats)
	mux.HandleFunc("POST /v1/campaigns/{name}/join", s.handleJoin)
	mux.HandleFunc("POST /v1/campaigns/{name}/push", s.handlePush)
	mux.HandleFunc("POST /v1/campaigns/{name}/pull", s.handlePull)
	mux.HandleFunc("GET /v1/campaigns/{name}/inputs/{hash}", s.handleInput)
	mux.HandleFunc("GET /v1/campaigns/{name}/crashes", s.handleCrashes)
	mux.HandleFunc("GET /v1/campaigns/{name}/ledger", s.handleLedger)
	return mux
}

func (s *Store) handleAllStats(w http.ResponseWriter, _ *http.Request) {
	all := make(map[string]dist.StatsResponse)
	for _, name := range s.Campaigns() {
		st, err := s.Stats(name)
		if err != nil {
			continue
		}
		all[name] = statsResponse(st)
	}
	writeJSON(w, http.StatusOK, all)
}

func (s *Store) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.reg == nil {
		http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.WritePrometheus(w, s.reg.Snapshot()) //bigmap:err-ok write error means the scraper hung up; nothing to do server-side
}

func (s *Store) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req dist.CampaignRequest
	if !decodeBody(w, r, &req) {
		return
	}
	created, err := s.CreateCampaign(req.Name, req.MapSize)
	if err != nil {
		writeErr(w, err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, dist.CampaignInfo{Name: req.Name, MapSize: req.MapSize, Created: created})
}

func (s *Store) handleList(w http.ResponseWriter, _ *http.Request) {
	names := s.Campaigns()
	infos := make([]dist.CampaignInfo, 0, len(names))
	for _, name := range names {
		size, err := s.MapSize(name)
		if err != nil {
			continue
		}
		infos = append(infos, dist.CampaignInfo{Name: name, MapSize: size})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Store) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.Stats(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, statsResponse(st))
}

func (s *Store) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req dist.JoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	info, err := s.Join(r.PathValue("name"), req.Worker)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, dist.JoinResponse{LastSeq: info.LastSeq, Cursor: info.Cursor})
}

func (s *Store) handlePush(w http.ResponseWriter, r *http.Request) {
	var req dist.PushRequest
	if !decodeBody(w, r, &req) {
		return
	}
	b := dist.Batch{Seq: req.Seq, Inputs: req.Inputs, Delta: req.Delta}
	for _, cr := range req.Crashes {
		b.Crashes = append(b.Crashes, dist.Crash{
			Key: cr.Key, Site: cr.Site, StackDepth: cr.StackDepth, Input: cr.Input,
		})
	}
	rcpt, err := s.Push(r.PathValue("name"), req.Worker, b)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, dist.PushResponse{
		Seq:             rcpt.Seq,
		NewInputs:       rcpt.NewInputs,
		DupInputs:       rcpt.DupInputs,
		NewCrashes:      rcpt.NewCrashes,
		DeltaWords:      rcpt.DeltaWords,
		UnionDiscovered: rcpt.UnionDiscovered,
	})
}

func (s *Store) handlePull(w http.ResponseWriter, r *http.Request) {
	var req dist.PullRequest
	if !decodeBody(w, r, &req) {
		return
	}
	pulled, err := s.Pull(r.PathValue("name"), req.Worker)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := dist.PullResponse{Inputs: make([]dist.WirePulled, 0, len(pulled))}
	for _, p := range pulled {
		resp.Inputs = append(resp.Inputs, dist.WirePulled{Hash: p.Hash, Input: p.Input})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Store) handleInput(w http.ResponseWriter, r *http.Request) {
	in, err := s.Input(r.PathValue("name"), r.PathValue("hash"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(in) //bigmap:err-ok write error means the client hung up; nothing to do server-side
}

func (s *Store) handleCrashes(w http.ResponseWriter, r *http.Request) {
	crashes, err := s.Crashes(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]dist.WireCrash, 0, len(crashes))
	for _, cr := range crashes {
		out = append(out, dist.WireCrash{
			Key: cr.Key, Site: cr.Site, StackDepth: cr.StackDepth, Input: cr.Input,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Store) handleLedger(w http.ResponseWriter, r *http.Request) {
	records, err := s.Ledger(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, records)
}

func statsResponse(st dist.Stats) dist.StatsResponse {
	return dist.StatsResponse{
		MapSize:         st.MapSize,
		Inputs:          st.Inputs,
		Crashes:         st.Crashes,
		Workers:         st.Workers,
		Batches:         st.Batches,
		DedupHits:       st.DedupHits,
		DeltaWords:      st.DeltaWords,
		UnionDiscovered: st.UnionDiscovered,
	}
}

// decodeBody parses a JSON request body, answering 400 on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, dist.WireError{Error: "decode request: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v) //bigmap:err-ok headers are already sent; an encode/write error means the client hung up
}

// writeErr maps a store error to its HTTP shape, carrying a stable code the
// dist.Client translates back into sentinel errors.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	wireCode := ""
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrCampaignMismatch):
		code = http.StatusConflict
		wireCode = dist.CodeSizeMismatch
	case errors.Is(err, dist.ErrUnknownWorker):
		code = http.StatusNotFound
		wireCode = dist.CodeUnknownWorker
	case errors.Is(err, dist.ErrSeqGap):
		code = http.StatusConflict
		wireCode = dist.CodeSeqGap
	case errors.Is(err, dist.ErrSizeMismatch):
		code = http.StatusConflict
		wireCode = dist.CodeSizeMismatch
	case errors.Is(err, core.ErrDeltaCorrupt), errors.Is(err, core.ErrDeltaVersion):
		code = http.StatusBadRequest
	}
	writeJSON(w, code, dist.WireError{Error: err.Error(), Code: wireCode})
}
