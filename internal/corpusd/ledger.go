package corpusd

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Record is one accepted batch in a campaign's hash-chained ledger. The
// ledger is the campaign's durable truth: replaying it (verifying the chain
// and every referenced input's content hash) reconstructs the store's full
// state, which is how a restarted corpusd recovers and how anyone holding
// the ledger can audit that no batch was dropped, reordered or rewritten.
type Record struct {
	// Seq is the global record number, 1-based and dense.
	Seq int `json:"seq"`
	// Worker and WorkerSeq identify the batch in the pusher's sequence
	// chain.
	Worker    string `json:"worker"`
	WorkerSeq uint64 `json:"worker_seq"`
	// Inputs lists the content hashes of inputs first seen in this batch,
	// in arrival order. Duplicates are counted in Dups, not listed.
	Inputs []string `json:"inputs,omitempty"`
	Dups   int      `json:"dups,omitempty"`
	// Crashes lists the dedup keys (hex) of crash buckets first seen in
	// this batch.
	Crashes []string `json:"crashes,omitempty"`
	// Delta is the batch's encoded virgin delta (base64 in JSON), empty
	// when the batch carried none.
	Delta []byte `json:"delta,omitempty"`
	// Prev is the previous record's Hash ("" for the first record); Hash
	// is this record's chain hash.
	Prev string `json:"prev"`
	Hash string `json:"hash"`
}

// ErrLedgerCorrupt wraps every ledger integrity failure: a broken hash
// chain, a record that does not hash to its own Hash field, undecodable
// JSON mid-file.
var ErrLedgerCorrupt = errors.New("corpusd: ledger corrupt")

// chainHash computes a record's chain hash: SHA-256 over the record's
// canonical JSON with the Hash field empty (Prev included, so each record
// commits to the entire prefix).
func chainHash(r Record) string {
	r.Hash = ""
	data, err := json.Marshal(r)
	if err != nil {
		// A struct of strings, ints and byte slices cannot fail to marshal.
		panic(fmt.Sprintf("corpusd: marshal ledger record: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// sealRecord fills in a record's Prev and Hash against the chain tail.
func sealRecord(r Record, prev string) Record {
	r.Prev = prev
	r.Hash = chainHash(r)
	return r
}

// VerifyChain checks that records form an unbroken, self-consistent hash
// chain starting at prev ("" for a full ledger). Returns the tail hash.
func VerifyChain(records []Record, prev string) (string, error) {
	for i, r := range records {
		if r.Seq != i+1 {
			return "", fmt.Errorf("%w: record %d has seq %d", ErrLedgerCorrupt, i+1, r.Seq)
		}
		if r.Prev != prev {
			return "", fmt.Errorf("%w: record %d prev hash mismatch", ErrLedgerCorrupt, r.Seq)
		}
		if got := chainHash(r); got != r.Hash {
			return "", fmt.Errorf("%w: record %d hash mismatch", ErrLedgerCorrupt, r.Seq)
		}
		prev = r.Hash
	}
	return prev, nil
}

// readLedger parses a ledger.jsonl stream, verifying the chain as it goes.
// A truncated or garbled final line — the signature of a crash mid-append —
// is tolerated and reported via truncated; corruption anywhere else is an
// error.
func readLedger(rd io.Reader) (records []Record, truncated bool, err error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 512<<20)
	var lines []string
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			lines = append(lines, line)
		}
	}
	if serr := sc.Err(); serr != nil {
		return nil, false, fmt.Errorf("corpusd: read ledger: %w", serr)
	}
	prev := ""
	for i, line := range lines {
		last := i == len(lines)-1
		var r Record
		if jerr := json.Unmarshal([]byte(line), &r); jerr != nil {
			if last {
				return records, true, nil
			}
			return nil, false, fmt.Errorf("%w: undecodable record %d mid-file: %v",
				ErrLedgerCorrupt, i+1, jerr)
		}
		if r.Seq != i+1 || r.Prev != prev || chainHash(r) != r.Hash {
			if last {
				return records, true, nil
			}
			return nil, false, fmt.Errorf("%w: chain break at record %d mid-file",
				ErrLedgerCorrupt, i+1)
		}
		prev = r.Hash
		records = append(records, r)
	}
	return records, false, nil
}
