package corpusd

import (
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/dist"
)

func testDelta(t *testing.T, size int, hits map[int]byte) []byte {
	t.Helper()
	cur := make([]byte, size)
	for i := range cur {
		cur[i] = 0xFF
	}
	for pos, b := range hits {
		cur[pos] &= b
	}
	return core.EncodeVirginDelta(core.DiffVirginBytes(nil, cur))
}

func TestCreateCampaignIdempotent(t *testing.T) {
	s, err := New(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	created, err := s.CreateCampaign("c1", 64)
	if err != nil || !created {
		t.Fatalf("create: %v created=%v", err, created)
	}
	created, err = s.CreateCampaign("c1", 64)
	if err != nil || created {
		t.Fatalf("re-create: %v created=%v", err, created)
	}
	if _, err := s.CreateCampaign("c1", 128); !errors.Is(err, ErrCampaignMismatch) {
		t.Fatalf("size mismatch: %v", err)
	}
	for _, bad := range []string{"", "..", "a/b", "x y", string(make([]byte, 200))} {
		if _, err := s.CreateCampaign(bad, 64); err == nil {
			t.Fatalf("name %q accepted", bad)
		}
	}
	if _, err := s.CreateCampaign("badsize", 63); err == nil {
		t.Fatal("invalid map size accepted")
	}
}

func pushBatches(t *testing.T, s *Store) {
	t.Helper()
	if _, err := s.CreateCampaign("c", 64); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"a", "b"} {
		if _, err := s.Join("c", w); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Push("c", "a", dist.Batch{
		Seq:     1,
		Inputs:  [][]byte{[]byte("one"), []byte("two")},
		Crashes: []dist.Crash{{Key: 7, Site: 3, StackDepth: 2, Input: []byte("boom")}},
		Delta:   testDelta(t, 64, map[int]byte{0: 0x7F, 5: 0x00}),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push("c", "b", dist.Batch{
		Seq:    1,
		Inputs: [][]byte{[]byte("two"), []byte("three")},
		Delta:  testDelta(t, 64, map[int]byte{5: 0x00, 9: 0xFE}),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreSemanticsMatchHub(t *testing.T) {
	// The persistent store and the in-memory hub implement the same
	// contract; drive both through an identical script and compare.
	s, err := New(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pushBatches(t, s)
	h, err := dist.NewHub(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"a", "b"} {
		if _, err := h.Join(w); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Push("a", dist.Batch{
		Seq:     1,
		Inputs:  [][]byte{[]byte("one"), []byte("two")},
		Crashes: []dist.Crash{{Key: 7, Site: 3, StackDepth: 2, Input: []byte("boom")}},
		Delta:   testDelta(t, 64, map[int]byte{0: 0x7F, 5: 0x00}),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Push("b", dist.Batch{
		Seq:    1,
		Inputs: [][]byte{[]byte("two"), []byte("three")},
		Delta:  testDelta(t, 64, map[int]byte{5: 0x00, 9: 0xFE}),
	}); err != nil {
		t.Fatal(err)
	}
	sst, err := s.Stats("c")
	if err != nil {
		t.Fatal(err)
	}
	hst, err := h.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sst != hst {
		t.Fatalf("store %+v != hub %+v", sst, hst)
	}
	sp, err := s.Pull("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	hp, err := h.Pull("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) != len(hp) || len(sp) != 1 || string(sp[0].Input) != string(hp[0].Input) {
		t.Fatalf("store pulled %+v, hub %+v", sp, hp)
	}
}

func TestStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	pushBatches(t, s)
	// a pulls before the restart so its cursor is non-zero on disk.
	if _, err := s.Pull("c", "a"); err != nil {
		t.Fatal(err)
	}
	before, err := s.Stats("c")
	if err != nil {
		t.Fatal(err)
	}
	unionBefore, err := s.UnionSnapshot("c")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	after, err := s2.Stats("c")
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("recovered stats %+v, want %+v", after, before)
	}
	unionAfter, err := s2.UnionSnapshot("c")
	if err != nil {
		t.Fatal(err)
	}
	if string(unionAfter) != string(unionBefore) {
		t.Fatal("recovered union diverged")
	}
	// Sequence chains resume: the next push for each worker is seq 2.
	info, err := s2.Join("c", "a")
	if err != nil || info.LastSeq != 1 {
		t.Fatalf("a rejoin: %+v, %v", info, err)
	}
	if info.Cursor == 0 {
		t.Fatal("a's pull cursor was not recovered")
	}
	if _, err := s2.Push("c", "a", dist.Batch{Seq: 2, Inputs: [][]byte{[]byte("four")}}); err != nil {
		t.Fatal(err)
	}
	// A replayed pre-restart sequence still answers idempotently.
	if _, err := s2.Push("c", "b", dist.Batch{Seq: 1}); err != nil {
		t.Fatalf("replay after recovery: %v", err)
	}
	crashes, err := s2.Crashes("c")
	if err != nil || len(crashes) != 1 || crashes[0].Key != 7 || string(crashes[0].Input) != "boom" {
		t.Fatalf("recovered crashes %+v, %v", crashes, err)
	}
}

func TestStoreRecoveryToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	pushBatches(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage half-line at the tail.
	lpath := filepath.Join(dir, "c", "ledger.jsonl")
	f, err := os.OpenFile(lpath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"worker":"a","trunc`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := New(dir, nil)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	defer s2.Close()
	st, err := s2.Stats("c")
	if err != nil || st.Batches != 2 || st.Inputs != 3 {
		t.Fatalf("recovered stats %+v, %v", st, err)
	}
	// The torn line was pruned; the chain continues cleanly.
	if _, err := s2.Push("c", "a", dist.Batch{Seq: 2, Inputs: [][]byte{[]byte("four")}}); err != nil {
		t.Fatal(err)
	}
	records, err := s2.Ledger("c")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("ledger has %d records, want 3", len(records))
	}
	if _, err := VerifyChain(records, ""); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRejectsMidFileTampering(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	pushBatches(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lpath := filepath.Join(dir, "c", "ledger.jsonl")
	data, err := os.ReadFile(lpath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the first record: the rewritten history must be
	// detected, not silently accepted.
	tampered := append([]byte(nil), data...)
	tampered[20] ^= 1
	if err := os.WriteFile(lpath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(dir, nil); !errors.Is(err, ErrLedgerCorrupt) {
		t.Fatalf("tampered ledger accepted: %v", err)
	}
	// Tampering with stored input bytes is caught by content-hash
	// verification.
	if err := os.WriteFile(lpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	hash := dist.HashInput([]byte("one"))
	if err := os.WriteFile(filepath.Join(dir, "c", "inputs", hash), []byte("evil"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(dir, nil); !errors.Is(err, ErrLedgerCorrupt) {
		t.Fatalf("tampered input accepted: %v", err)
	}
}

func TestMemoryOnlyStore(t *testing.T) {
	s, err := New("", nil)
	if err != nil {
		t.Fatal(err)
	}
	pushBatches(t, s)
	st, err := s.Stats("c")
	if err != nil || st.Inputs != 3 {
		t.Fatalf("stats %+v, %v", st, err)
	}
	records, err := s.Ledger("c")
	if err != nil || records != nil {
		t.Fatalf("memory-only ledger: %v, %v", records, err)
	}
}

// TestClientAgainstServer drives the dist.Client through the real handler:
// the wire implementation must satisfy the same contract the hub does,
// including sentinel-error mapping across the HTTP boundary.
func TestClientAgainstServer(t *testing.T) {
	s, err := New(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	cl, err := dist.NewClient(srv.URL, "wire")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.EnsureCampaign(64); err != nil {
		t.Fatal(err)
	}
	if err := cl.EnsureCampaign(64); err != nil {
		t.Fatal(err)
	}
	if err := cl.EnsureCampaign(128); err == nil {
		t.Fatal("size mismatch accepted over the wire")
	}
	if _, err := cl.Push("ghost", dist.Batch{Seq: 1}); !errors.Is(err, dist.ErrUnknownWorker) {
		t.Fatalf("unjoined push: %v", err)
	}
	info, err := cl.Join("w1")
	if err != nil || info.LastSeq != 0 {
		t.Fatalf("join: %+v, %v", info, err)
	}
	if _, err := cl.Join("w2"); err != nil {
		t.Fatal(err)
	}
	rcpt, err := cl.Push("w1", dist.Batch{
		Seq:     1,
		Inputs:  [][]byte{[]byte("alpha"), []byte("beta")},
		Crashes: []dist.Crash{{Key: 11, Site: 5, StackDepth: 3, Input: []byte("crash")}},
		Delta:   testDelta(t, 64, map[int]byte{2: 0x0F}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.NewInputs != 2 || rcpt.NewCrashes != 1 || rcpt.UnionDiscovered != 1 {
		t.Fatalf("receipt %+v", rcpt)
	}
	if _, err := cl.Push("w1", dist.Batch{Seq: 5}); !errors.Is(err, dist.ErrSeqGap) {
		t.Fatalf("gap over the wire: %v", err)
	}
	pulled, err := cl.Pull("w2")
	if err != nil {
		t.Fatal(err)
	}
	if len(pulled) != 2 || string(pulled[0].Input) != "alpha" || pulled[0].Hash != dist.HashInput([]byte("alpha")) {
		t.Fatalf("pulled %+v", pulled)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want := dist.Stats{MapSize: 64, Inputs: 2, Crashes: 1, Workers: 2,
		Batches: 1, DeltaWords: 1, UnionDiscovered: 1}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
	// Stats against an unknown campaign is a clean 404.
	cl2, err := dist.NewClient(srv.URL, "nope")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Stats(); err == nil {
		t.Fatal("unknown campaign accepted")
	}
}
