// Package corpusd is the content-addressed corpus service behind
// bigmap-corpusd: the wire-side implementation of the dist sync contract
// (internal/dist), with durability and tamper evidence on top.
//
// A Store hosts named campaigns. Each campaign keeps:
//
//   - inputs, content-addressed by hex SHA-256 and deduplicated — two
//     workers pushing the same bytes cost one stored copy and a dedup
//     counter bump;
//   - crash buckets, deduplicated by their Crashwalk key;
//   - the campaign-wide virgin union, maintained by AND-merging the
//     virgin-map deltas workers publish (core.VirginDelta — changed words
//     only, never whole maps);
//   - per-worker cursors (pull position, last accepted batch sequence), so
//     pushes are idempotent and a restarted worker resumes where its name
//     left off;
//   - a hash-chained ledger of accepted batches (ledger.go). Every record
//     commits to its predecessor, so the ledger prefix up to any point is
//     tamper-evident, and replaying it rebuilds the campaign bit for bit.
//
// On disk (when the Store has a directory) a campaign lives under
// <dir>/<name>/: campaign.json (geometry), inputs/<hash> and
// crashes/<key>.json (content files, written before the ledger record that
// references them), ledger.jsonl (fsynced append-only chain — the
// atomicity point; a crash mid-append leaves a truncated tail line that
// recovery tolerates, while orphaned content files are harmless), and
// workers.json (cursors; if lost, workers simply re-pull and re-push, which
// dedup absorbs). Open replays every campaign's ledger, verifying the
// chain and each input's content hash, and rebuilds the union from the
// recorded deltas — recovery IS verification.
package corpusd

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"github.com/bigmap/bigmap/internal/checkpoint"
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/dist"
	"github.com/bigmap/bigmap/internal/telemetry"
)

// Store hosts campaigns. Safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	dir       string               // "" = memory-only (tests)
	campaigns map[string]*campaign // guarded by mu
	reg       *telemetry.Registry

	telBatches *telemetry.Counter
	telDedup   *telemetry.Counter
	telWords   *telemetry.Counter
	telInputs  *telemetry.Gauge
	telSyncNS  *telemetry.Histogram
}

// campaign is one hosted campaign's full state.
type campaign struct {
	mu sync.Mutex

	name string
	size int
	dir  string // "" when the store is memory-only

	inputs     map[string][]byte            // guarded by mu; content hash -> bytes
	order      []orderEntry                 // guarded by mu; global arrival order
	crashes    map[uint64]dist.Crash        // guarded by mu
	union      []byte                       // guarded by mu; virgin bytes
	discovered int                          // guarded by mu
	workers    map[string]*workerCursor     // guarded by mu
	prevHash   string                       // guarded by mu; ledger chain tail
	records    int                          // guarded by mu; ledger length
	dedupHits  uint64                       // guarded by mu
	deltaWords uint64                       // guarded by mu
	ledgerF    *os.File                     // guarded by mu; append handle
}

type orderEntry struct {
	hash string
	src  string
}

type workerCursor struct {
	Cursor  int    `json:"cursor"`   // guarded by mu (campaign.mu)
	LastSeq uint64 `json:"last_seq"` // guarded by mu (campaign.mu)

	lastReceipt dist.Receipt // guarded by mu (campaign.mu); not persisted
}

// New creates a store. dir may be "" for a memory-only store (tests); a
// non-empty dir is created if needed and existing campaigns are recovered
// from it by ledger replay. reg may be nil.
func New(dir string, reg *telemetry.Registry) (*Store, error) {
	s := &Store{
		dir:        dir,
		campaigns:  make(map[string]*campaign),
		reg:        reg,
		telBatches: reg.Counter("corpusd_batches_total"),
		telDedup:   reg.Counter("corpusd_dedup_hits_total"),
		telWords:   reg.Counter("corpusd_delta_words_total"),
		telInputs:  reg.Gauge("corpusd_inputs"),
		telSyncNS:  reg.Histogram("corpusd_sync_ns"),
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpusd: create %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("corpusd: scan %s: %w", dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		c, err := newCampaignFromDisk(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("corpusd: recover campaign %s: %w", e.Name(), err)
		}
		s.campaigns[c.name] = c
		reg.Event("campaign_recovered", fmt.Sprintf("%s: %d inputs, %d ledger records, union %d",
			c.name, len(c.inputs), c.records, c.discovered))
	}
	return s, nil
}

// Close releases the campaigns' ledger file handles.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, c := range s.campaigns {
		c.mu.Lock()
		if c.ledgerF != nil {
			if err := c.ledgerF.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			c.ledgerF = nil
		}
		c.mu.Unlock()
	}
	return firstErr
}

// Telemetry returns the store's registry (nil when telemetry is off).
func (s *Store) Telemetry() *telemetry.Registry { return s.reg }

// Dir returns the store's state directory ("" when memory-only).
func (s *Store) Dir() string { return s.dir }

// validCampaignName keeps campaign names safe as directory components.
func validCampaignName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("corpusd: campaign name must be 1-128 characters")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("corpusd: campaign name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("corpusd: campaign name %q reserved", name)
	}
	return nil
}

// ErrCampaignMismatch is returned when an existing campaign is re-created
// with a different map size.
var ErrCampaignMismatch = errors.New("corpusd: campaign exists with different map size")

// CreateCampaign creates a campaign, idempotently: re-creating an existing
// name with the same map size succeeds (created=false); a size mismatch is
// ErrCampaignMismatch.
func (s *Store) CreateCampaign(name string, mapSize int) (created bool, err error) {
	if err := validCampaignName(name); err != nil {
		return false, err
	}
	if _, err := core.NewLockedVirginUnion(mapSize); err != nil {
		return false, fmt.Errorf("corpusd: campaign %s map size %d: %w", name, mapSize, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.campaigns[name]; c != nil {
		if c.size != mapSize {
			return false, fmt.Errorf("%w: %s has %d, requested %d", ErrCampaignMismatch, name, c.size, mapSize)
		}
		return false, nil
	}
	c := newCampaignState(name, mapSize, s.campaignDir(name))
	if c.dir != "" {
		if err := persistNewCampaign(c); err != nil {
			return false, err
		}
	}
	s.campaigns[name] = c
	s.reg.Event("campaign_created", fmt.Sprintf("%s: map size %d", name, mapSize))
	return true, nil
}

func (s *Store) campaignDir(name string) string {
	if s.dir == "" {
		return ""
	}
	return filepath.Join(s.dir, name)
}

func newCampaignState(name string, mapSize int, dir string) *campaign {
	union := make([]byte, mapSize)
	for i := range union {
		union[i] = 0xFF
	}
	return &campaign{
		name:    name,
		size:    mapSize,
		dir:     dir,
		inputs:  make(map[string][]byte),
		crashes: make(map[uint64]dist.Crash),
		union:   union,
		workers: make(map[string]*workerCursor),
	}
}

func (s *Store) campaign(name string) (*campaign, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.campaigns[name]
	if c == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return c, nil
}

// ErrNotFound is returned for operations on unknown campaigns.
var ErrNotFound = errors.New("corpusd: campaign not found")

// Campaigns lists campaign names, sorted.
func (s *Store) Campaigns() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.campaigns))
	//bigmap:nondeterministic-ok iteration feeds the sort below
	for name := range s.campaigns {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Join registers (or re-attaches) worker in the named campaign.
func (s *Store) Join(campaignName, worker string) (dist.JoinInfo, error) {
	if worker == "" || len(worker) > 128 {
		return dist.JoinInfo{}, fmt.Errorf("corpusd: worker name must be 1-128 characters")
	}
	c, err := s.campaign(campaignName)
	if err != nil {
		return dist.JoinInfo{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[worker]
	if w == nil {
		w = &workerCursor{}
		c.workers[worker] = w
		if err := c.saveWorkersLocked(); err != nil {
			delete(c.workers, worker)
			return dist.JoinInfo{}, err
		}
	}
	return dist.JoinInfo{LastSeq: w.LastSeq, Cursor: w.Cursor}, nil
}

// Push accepts one batch into the named campaign: dedups inputs and
// crashes, merges the virgin delta, persists content files then the ledger
// record, and returns the receipt. Replaying the last accepted sequence
// returns its stored receipt without re-applying anything.
func (s *Store) Push(campaignName, worker string, b dist.Batch) (dist.Receipt, error) {
	start := s.telSyncNS.Start()
	c, err := s.campaign(campaignName)
	if err != nil {
		return dist.Receipt{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[worker]
	if w == nil {
		return dist.Receipt{}, fmt.Errorf("%w: %q", dist.ErrUnknownWorker, worker)
	}
	if b.Seq == w.LastSeq && b.Seq != 0 {
		return w.lastReceipt, nil
	}
	if b.Seq != w.LastSeq+1 {
		return dist.Receipt{}, fmt.Errorf("%w: worker %q pushed seq %d, want %d",
			dist.ErrSeqGap, worker, b.Seq, w.LastSeq+1)
	}
	rcpt, err := c.applyLocked(worker, b)
	if err != nil {
		return dist.Receipt{}, err
	}
	w.LastSeq = b.Seq
	w.lastReceipt = rcpt
	if c.dir != "" {
		if err := c.saveWorkersLocked(); err != nil {
			return dist.Receipt{}, err
		}
	}
	s.telBatches.Inc()
	s.telDedup.Add(uint64(rcpt.DupInputs))
	s.telWords.Add(uint64(rcpt.DeltaWords))
	s.telInputs.Set(int64(len(c.inputs)))
	s.telSyncNS.Done(start)
	return rcpt, nil
}

// applyLocked folds a sequence-validated batch into the campaign,
// persisting content files before the ledger record that references them.
func (c *campaign) applyLocked(worker string, b dist.Batch) (dist.Receipt, error) {
	rcpt := dist.Receipt{Seq: b.Seq}
	var d core.VirginDelta
	if len(b.Delta) > 0 {
		var err error
		d, err = core.DecodeVirginDelta(b.Delta)
		if err != nil {
			return dist.Receipt{}, fmt.Errorf("corpusd: worker %q delta: %w", worker, err)
		}
		if d.Size != c.size {
			return dist.Receipt{}, fmt.Errorf("%w: delta for %d-key map, campaign has %d",
				dist.ErrSizeMismatch, d.Size, c.size)
		}
	}
	rec := Record{Seq: c.records + 1, Worker: worker, WorkerSeq: b.Seq, Delta: b.Delta}
	var newInputs []orderEntry
	for _, in := range b.Inputs {
		hash := dist.HashInput(in)
		if _, ok := c.inputs[hash]; ok {
			rcpt.DupInputs++
			continue
		}
		if c.dir != "" {
			if err := checkpoint.Save(filepath.Join(c.dir, "inputs", hash), in); err != nil {
				return dist.Receipt{}, fmt.Errorf("corpusd: store input: %w", err)
			}
		}
		c.inputs[hash] = append([]byte(nil), in...)
		newInputs = append(newInputs, orderEntry{hash: hash, src: worker})
		rec.Inputs = append(rec.Inputs, hash)
		rcpt.NewInputs++
	}
	for _, cr := range b.Crashes {
		if _, ok := c.crashes[cr.Key]; ok {
			continue
		}
		cr.Input = append([]byte(nil), cr.Input...)
		if c.dir != "" {
			if err := saveCrash(c.dir, cr); err != nil {
				return dist.Receipt{}, err
			}
		}
		c.crashes[cr.Key] = cr
		rec.Crashes = append(rec.Crashes, crashKeyHex(cr.Key))
		rcpt.NewCrashes++
	}
	rec.Dups = rcpt.DupInputs
	rec = sealRecord(rec, c.prevHash)
	if c.dir != "" {
		if err := c.appendLedgerLocked(rec); err != nil {
			return dist.Receipt{}, err
		}
	}
	// Past the ledger append (the durability point) nothing may fail: the
	// in-memory merge below mirrors what replay reconstructs.
	c.order = append(c.order, newInputs...)
	if len(d.Words) > 0 {
		disc, err := d.Apply(c.union)
		if err != nil {
			// Decoded deltas of the right size cannot fail to apply.
			panic(fmt.Sprintf("corpusd: apply delta: %v", err))
		}
		c.discovered += disc
		c.deltaWords += uint64(len(d.Words))
		rcpt.DeltaWords = len(d.Words)
	}
	c.prevHash = rec.Hash
	c.records++
	if rcpt.DupInputs > 0 {
		c.dedupHits += uint64(rcpt.DupInputs)
	}
	rcpt.UnionDiscovered = c.discovered
	return rcpt, nil
}

// Pull delivers every input pushed by other workers since this worker's
// last pull, in global arrival order, and advances (and persists) the
// cursor.
func (s *Store) Pull(campaignName, worker string) ([]dist.Pulled, error) {
	c, err := s.campaign(campaignName)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[worker]
	if w == nil {
		return nil, fmt.Errorf("%w: %q", dist.ErrUnknownWorker, worker)
	}
	var out []dist.Pulled
	for _, p := range c.order[w.Cursor:] {
		if p.src == worker {
			continue
		}
		out = append(out, dist.Pulled{
			Hash:  p.hash,
			Input: append([]byte(nil), c.inputs[p.hash]...),
		})
	}
	prev := w.Cursor
	w.Cursor = len(c.order)
	if c.dir != "" && w.Cursor != prev {
		if err := c.saveWorkersLocked(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Stats snapshots the named campaign.
func (s *Store) Stats(campaignName string) (dist.Stats, error) {
	c, err := s.campaign(campaignName)
	if err != nil {
		return dist.Stats{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return dist.Stats{
		MapSize:         c.size,
		Inputs:          len(c.inputs),
		Crashes:         len(c.crashes),
		Workers:         len(c.workers),
		Batches:         c.records,
		DedupHits:       c.dedupHits,
		DeltaWords:      c.deltaWords,
		UnionDiscovered: c.discovered,
	}, nil
}

// Input returns one stored input by content hash.
func (s *Store) Input(campaignName, hash string) ([]byte, error) {
	c, err := s.campaign(campaignName)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.inputs[hash]
	if !ok {
		return nil, fmt.Errorf("%w: input %s", ErrNotFound, hash)
	}
	return append([]byte(nil), in...), nil
}

// Crashes returns the campaign's deduplicated crash buckets sorted by key.
func (s *Store) Crashes(campaignName string) ([]dist.Crash, error) {
	c, err := s.campaign(campaignName)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]dist.Crash, 0, len(c.crashes))
	//bigmap:nondeterministic-ok iteration feeds the sort below
	for _, cr := range c.crashes {
		out = append(out, cr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Ledger re-reads the named campaign's ledger records from disk (memory-only
// stores return nil). The returned chain has already been verified.
func (s *Store) Ledger(campaignName string) ([]Record, error) {
	c, err := s.campaign(campaignName)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return nil, nil
	}
	f, err := os.Open(filepath.Join(dir, "ledger.jsonl"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("corpusd: open ledger: %w", err)
	}
	defer f.Close() //bigmap:err-ok read-only handle; close failure cannot lose data
	records, _, err := readLedger(f)
	return records, err
}

// MapSize returns the named campaign's coverage key space.
func (s *Store) MapSize(campaignName string) (int, error) {
	c, err := s.campaign(campaignName)
	if err != nil {
		return 0, err
	}
	return c.size, nil
}

// UnionSnapshot copies out the campaign union's virgin bytes.
func (s *Store) UnionSnapshot(campaignName string) ([]byte, error) {
	c, err := s.campaign(campaignName)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.union...), nil
}

func crashKeyHex(key uint64) string {
	return fmt.Sprintf("%016x", key)
}

func parseCrashKey(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("corpusd: crash key %q: %w", s, err)
	}
	return v, nil
}

// --- persistence ---

type campaignMeta struct {
	Name    string `json:"name"`
	MapSize int    `json:"map_size"`
}

func persistNewCampaign(c *campaign) error {
	for _, sub := range []string{"", "inputs", "crashes"} {
		if err := os.MkdirAll(filepath.Join(c.dir, sub), 0o755); err != nil {
			return fmt.Errorf("corpusd: create campaign dir: %w", err)
		}
	}
	data, err := json.MarshalIndent(campaignMeta{Name: c.name, MapSize: c.size}, "", "  ")
	if err != nil {
		return fmt.Errorf("corpusd: encode campaign meta: %w", err)
	}
	if err := checkpoint.Save(filepath.Join(c.dir, "campaign.json"), data); err != nil {
		return fmt.Errorf("corpusd: save campaign meta: %w", err)
	}
	return nil
}

// appendLedgerLocked appends one sealed record and fsyncs — the batch's
// durability point.
func (c *campaign) appendLedgerLocked(rec Record) error {
	if c.ledgerF == nil {
		f, err := os.OpenFile(filepath.Join(c.dir, "ledger.jsonl"),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("corpusd: open ledger: %w", err)
		}
		c.ledgerF = f
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("corpusd: encode ledger record: %w", err)
	}
	if _, err := c.ledgerF.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("corpusd: append ledger: %w", err)
	}
	if err := c.ledgerF.Sync(); err != nil {
		return fmt.Errorf("corpusd: sync ledger: %w", err)
	}
	return nil
}

// saveWorkersLocked atomically rewrites the cursor file. Losing it is
// recoverable (workers re-pull and re-push; dedup absorbs both), so it is
// persisted after the ledger, never as part of the chain.
func (c *campaign) saveWorkersLocked() error {
	if c.dir == "" {
		return nil
	}
	data, err := json.MarshalIndent(c.workers, "", "  ")
	if err != nil {
		return fmt.Errorf("corpusd: encode workers: %w", err)
	}
	if err := checkpoint.Save(filepath.Join(c.dir, "workers.json"), data); err != nil {
		return fmt.Errorf("corpusd: save workers: %w", err)
	}
	return nil
}

type crashFile struct {
	Key        string `json:"key"`
	Site       uint32 `json:"site"`
	StackDepth int    `json:"stack_depth"`
	Input      []byte `json:"input"`
}

func saveCrash(dir string, cr dist.Crash) error {
	data, err := json.MarshalIndent(crashFile{
		Key:        crashKeyHex(cr.Key),
		Site:       cr.Site,
		StackDepth: cr.StackDepth,
		Input:      cr.Input,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("corpusd: encode crash: %w", err)
	}
	path := filepath.Join(dir, "crashes", crashKeyHex(cr.Key)+".json")
	if err := checkpoint.Save(path, data); err != nil {
		return fmt.Errorf("corpusd: save crash: %w", err)
	}
	return nil
}

// newCampaignFromDisk reconstructs a campaign from its directory by replaying the
// ledger: the chain is verified, every referenced input is re-read and its
// content hash re-checked, deltas are re-applied to rebuild the union, and
// per-worker sequence tails are recovered from the records themselves.
// Cursors come from workers.json when present; a missing or stale cursor
// file only causes harmless re-pulls.
func newCampaignFromDisk(dir string) (*campaign, error) {
	data, err := os.ReadFile(filepath.Join(dir, "campaign.json"))
	if err != nil {
		return nil, fmt.Errorf("read campaign.json: %w", err)
	}
	var meta campaignMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("decode campaign.json: %w", err)
	}
	if meta.Name != filepath.Base(dir) {
		return nil, fmt.Errorf("campaign.json names %q, directory is %q", meta.Name, filepath.Base(dir))
	}
	if _, err := core.NewLockedVirginUnion(meta.MapSize); err != nil {
		return nil, fmt.Errorf("campaign.json map size %d: %w", meta.MapSize, err)
	}
	c := newCampaignState(meta.Name, meta.MapSize, dir)

	var records []Record
	lf, err := os.Open(filepath.Join(dir, "ledger.jsonl"))
	switch {
	case err == nil:
		var truncated bool
		records, truncated, err = readLedger(lf)
		lf.Close() //bigmap:err-ok read-only handle; close failure cannot lose data
		if err != nil {
			return nil, err
		}
		if truncated {
			// A crash mid-append left a torn tail line. The verified prefix
			// is the campaign; rewrite the file to exactly that prefix so
			// the next append continues a clean chain.
			if err := rewriteLedger(dir, records); err != nil {
				return nil, err
			}
		}
	case os.IsNotExist(err):
		// Campaign created but nothing pushed yet.
	default:
		return nil, fmt.Errorf("open ledger: %w", err)
	}

	for _, rec := range records {
		for _, hash := range rec.Inputs {
			in, err := os.ReadFile(filepath.Join(dir, "inputs", hash))
			if err != nil {
				return nil, fmt.Errorf("%w: ledger record %d references unreadable input %s: %v",
					ErrLedgerCorrupt, rec.Seq, hash, err)
			}
			if dist.HashInput(in) != hash {
				return nil, fmt.Errorf("%w: input %s content does not match its hash", ErrLedgerCorrupt, hash)
			}
			c.inputs[hash] = in
			c.order = append(c.order, orderEntry{hash: hash, src: rec.Worker})
		}
		for _, keyHex := range rec.Crashes {
			key, err := parseCrashKey(keyHex)
			if err != nil {
				return nil, fmt.Errorf("%w: record %d: %v", ErrLedgerCorrupt, rec.Seq, err)
			}
			cdata, err := os.ReadFile(filepath.Join(dir, "crashes", keyHex+".json"))
			if err != nil {
				return nil, fmt.Errorf("%w: ledger record %d references unreadable crash %s: %v",
					ErrLedgerCorrupt, rec.Seq, keyHex, err)
			}
			var cf crashFile
			if err := json.Unmarshal(cdata, &cf); err != nil {
				return nil, fmt.Errorf("%w: crash %s: %v", ErrLedgerCorrupt, keyHex, err)
			}
			c.crashes[key] = dist.Crash{Key: key, Site: cf.Site, StackDepth: cf.StackDepth, Input: cf.Input}
		}
		if len(rec.Delta) > 0 {
			d, err := core.DecodeVirginDelta(rec.Delta)
			if err != nil {
				return nil, fmt.Errorf("%w: record %d delta: %v", ErrLedgerCorrupt, rec.Seq, err)
			}
			if d.Size != c.size {
				return nil, fmt.Errorf("%w: record %d delta sized %d, campaign %d",
					ErrLedgerCorrupt, rec.Seq, d.Size, c.size)
			}
			disc, err := d.Apply(c.union)
			if err != nil {
				return nil, fmt.Errorf("%w: record %d delta: %v", ErrLedgerCorrupt, rec.Seq, err)
			}
			c.discovered += disc
			c.deltaWords += uint64(len(d.Words))
		}
		c.dedupHits += uint64(rec.Dups)
		if w := c.workers[rec.Worker]; w == nil {
			c.workers[rec.Worker] = &workerCursor{LastSeq: rec.WorkerSeq}
		} else if rec.WorkerSeq > w.LastSeq {
			w.LastSeq = rec.WorkerSeq
		}
		c.prevHash = rec.Hash
		c.records++
	}

	if wdata, err := os.ReadFile(filepath.Join(dir, "workers.json")); err == nil {
		var cursors map[string]*workerCursor
		if err := json.Unmarshal(wdata, &cursors); err == nil {
			for name, wc := range cursors {
				if wc == nil {
					continue
				}
				if wc.Cursor > len(c.order) {
					wc.Cursor = len(c.order)
				}
				if existing := c.workers[name]; existing != nil {
					// The ledger's sequence tail wins: workers.json may lag
					// (it is written after the ledger record).
					if wc.LastSeq < existing.LastSeq {
						wc.LastSeq = existing.LastSeq
					}
				}
				c.workers[name] = wc
			}
		}
	}
	return c, nil
}

// rewriteLedger replaces ledger.jsonl with exactly the verified records,
// atomically, after recovery tolerated a torn tail line.
func rewriteLedger(dir string, records []Record) error {
	var buf []byte
	for _, rec := range records {
		data, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("corpusd: encode ledger record: %w", err)
		}
		buf = append(buf, data...)
		buf = append(buf, '\n')
	}
	if err := checkpoint.Save(filepath.Join(dir, "ledger.jsonl"), buf); err != nil {
		return fmt.Errorf("corpusd: rewrite ledger: %w", err)
	}
	return nil
}

