package corpusd

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"github.com/bigmap/bigmap/internal/dist"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/parallel"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

// TestWireSyncMatchesParallelCampaign is the end-to-end differential the
// distributed layer is pinned by: two fuzzer instances in "separate
// processes" — each built standalone from parallel.InstanceConfig and synced
// only through a corpusd store over real HTTP — must reach the exact same
// campaign-wide union coverage, per-instance queues and crash buckets as the
// in-process parallel campaign running the same round schedule from the same
// seeds. Worker trajectories are identical because a pull delivers the same
// peer inputs in the same order as the legacy pairwise exchange, duplicate
// imports are coverage- and RNG-neutral, and the store's dedup only removes
// re-executions (so exec counts may shrink, never anything else).
func TestWireSyncMatchesParallelCampaign(t *testing.T) {
	prog, err := target.Generate(target.GenSpec{
		Name:              "wire-diff",
		Seed:              31,
		NumFuncs:          40,
		BlocksPerFunc:     24,
		InputLen:          128,
		BranchFraction:    0.7,
		MagicCompares:     10,
		MagicWidth:        2,
		BonusBlocks:       8,
		GatedCallFraction: 0.3,
		Switches:          6,
		SwitchFanout:      8,
		CrashSites:        2,
		CrashDepth:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	seeds := prog.SampleSeeds(rng.New(58), 4)
	const (
		instances = 2
		rounds    = 3
		size      = 64 << 10
	)
	base := parallel.Config{
		Instances:    instances,
		SyncEvery:    3000,
		Fuzzer:       fuzzer.Config{Seed: 11, Scheme: fuzzer.SchemeBigMap},
		VirginShards: 1,
	}

	// Reference: the in-process campaign with the legacy pairwise sync.
	legacy, err := parallel.NewCampaign(prog, base, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}
	lrep := legacy.Report()
	if lrep.UnionEdges == 0 {
		t.Fatal("legacy campaign discovered no union coverage")
	}

	// Wire side: a persistent store behind real HTTP, one standalone fuzzer
	// plus client per "process".
	s, err := New(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	fuzzers := make([]*fuzzer.Fuzzer, instances)
	workers := make([]*dist.Worker, instances)
	for i := range fuzzers {
		f, err := fuzzer.New(prog, parallel.InstanceConfig(base, i))
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range seeds {
			if err := f.AddSeed(seed); err != nil {
				t.Fatal(err)
			}
		}
		client, err := dist.NewClient(srv.URL, "diff")
		if err != nil {
			t.Fatal(err)
		}
		if err := client.EnsureCampaign(size); err != nil {
			t.Fatal(err)
		}
		w, err := dist.NewWorker(f, fmt.Sprintf("w%d", i), client, size)
		if err != nil {
			t.Fatal(err)
		}
		fuzzers[i], workers[i] = f, w
	}
	for r := 0; r < rounds; r++ {
		for _, f := range fuzzers {
			if err := f.RunExecs(base.SyncEvery); err != nil {
				t.Fatal(err)
			}
		}
		// All pushes land before any pull — the wire image of the legacy
		// snapshot-queues-then-import barrier.
		for _, w := range workers {
			if _, err := w.Push(); err != nil {
				t.Fatal(err)
			}
		}
		for _, w := range workers {
			if _, err := w.Pull(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Publish coverage found by the final pull's imports, mirroring
	// Report()'s bring-the-union-current merge.
	for _, w := range workers {
		if _, err := w.Push(); err != nil {
			t.Fatal(err)
		}
	}

	st, err := s.Stats("diff")
	if err != nil {
		t.Fatal(err)
	}
	if st.UnionDiscovered != lrep.UnionEdges {
		t.Errorf("wire union = %d edges, in-process campaign %d", st.UnionDiscovered, lrep.UnionEdges)
	}
	if st.Crashes != lrep.UniqueCrashes {
		t.Errorf("wire crash buckets = %d, in-process campaign %d", st.Crashes, lrep.UniqueCrashes)
	}
	var wireExecs uint64
	for i, f := range fuzzers {
		ls := lrep.PerInstance[i]
		fs := f.Stats()
		wireExecs += fs.Execs
		if fs.Execs > ls.Execs {
			t.Errorf("instance %d execs = %d, want <= in-process %d", i, fs.Execs, ls.Execs)
		}
		fs.Execs, ls.Execs = 0, 0
		if fs != ls {
			t.Errorf("instance %d stats diverge:\n wire       %+v\n in-process %+v", i, fs, ls)
		}
	}

	// Restart the store from disk: the recovered campaign must still hold
	// the full deduplicated corpus and the same union — the no-input-loss
	// half of the acceptance criteria, without a worker in flight.
	srv.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := New(s.Dir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s2.Stats("diff")
	if err != nil {
		t.Fatal(err)
	}
	if st2 != st {
		t.Errorf("recovered stats = %+v, want %+v", st2, st)
	}
}
