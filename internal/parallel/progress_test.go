package parallel

import (
	"sync"
	"testing"
	"time"

	"github.com/bigmap/bigmap/internal/fuzzer"
)

// TestProgressConcurrentWithRun hammers Progress from several goroutines
// while the campaign runs. Under `go test -race` this is the proof that the
// progressState mutex covers every cross-goroutine access — the exact
// invariant the lockcheck analyzer enforces statically.
func TestProgressConcurrentWithRun(t *testing.T) {
	prog, seeds := campaignTarget(t)
	c, err := NewCampaign(prog, Config{
		Instances: 3,
		SyncEvery: 1000,
		Fuzzer:    fuzzer.Config{Seed: 9, Scheme: fuzzer.SchemeBigMap},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				p := c.Progress()
				if len(p.Execs) != 3 {
					t.Errorf("Progress.Execs has %d entries, want 3", len(p.Execs))
					return
				}
			}
		}()
	}

	if err := c.RunExecs(5000); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	p := c.Progress()
	if p.Rounds == 0 {
		t.Error("Progress.Rounds = 0 after RunExecs, want > 0")
	}
	for i, n := range p.Execs {
		if n < 5000 {
			t.Errorf("Progress.Execs[%d] = %d, want >= 5000", i, n)
		}
	}
	if p.Revivals != 0 || p.Failed != 0 {
		t.Errorf("healthy campaign reports Revivals=%d Failed=%d, want 0/0", p.Revivals, p.Failed)
	}
}

// TestProgressCountsRevivalsAndFailures checks the supervisor paths publish
// into the progress counters.
func TestProgressCountsRevivalsAndFailures(t *testing.T) {
	prog, seeds := campaignTarget(t)
	c, err := NewCampaign(prog, Config{
		Instances:   2,
		SyncEvery:   500,
		MaxRestarts: 2,
		Fuzzer:      fuzzer.Config{Seed: 3, Scheme: fuzzer.SchemeBigMap},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	c.sleep = func(d time.Duration) {}
	// Instance 1 panics on every round: two revivals, then abandonment.
	c.testFaultHook = func(instance int, f *fuzzer.Fuzzer) {
		if instance == 1 {
			panic("injected fault")
		}
	}
	if err := c.RunRounds(4); err != nil {
		t.Fatal(err)
	}
	p := c.Progress()
	if p.Revivals != 2 {
		t.Errorf("Progress.Revivals = %d, want 2", p.Revivals)
	}
	if p.Failed != 1 {
		t.Errorf("Progress.Failed = %d, want 1", p.Failed)
	}
	if p.Rounds != 4 {
		t.Errorf("Progress.Rounds = %d, want 4", p.Rounds)
	}
}
