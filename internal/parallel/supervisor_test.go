package parallel

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/bigmap/bigmap/internal/checkpoint"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/target"
)

// quietCampaign builds a campaign with the sleep hook stubbed out so backoff
// is recorded, not waited for.
func quietCampaign(t *testing.T, cfg Config) (*Campaign, *[]time.Duration) {
	t.Helper()
	prog, seeds := campaignTarget(t)
	c, err := NewCampaign(prog, cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	return c, &slept
}

// TestCampaignSurvivesPanics: a 4-instance campaign in which three instances
// panic mid-round must revive all three from their sync-boundary checkpoints
// and run to completion with no instance abandoned and no corpus loss.
func TestCampaignSurvivesPanics(t *testing.T) {
	c, slept := quietCampaign(t, Config{
		Instances: 4,
		SyncEvery: 1000,
		Fuzzer:    fuzzer.Config{Seed: 7, Scheme: fuzzer.SchemeBigMap},
	})
	before := make([]int, 4)
	for i, f := range c.Instances() {
		before[i] = f.Queue().Len()
	}
	var panicked [4]bool
	c.testFaultHook = func(i int, f *fuzzer.Fuzzer) {
		if i != 0 && !panicked[i] {
			panicked[i] = true
			panic("injected fault")
		}
	}
	if err := c.RunExecs(3000); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if rep.Restarts < 3 {
		t.Errorf("restarts = %d, want >= 3 (one per injected panic)", rep.Restarts)
	}
	if rep.FailedInstances != 0 {
		t.Fatalf("%d instances abandoned: %v", rep.FailedInstances, rep.Errors)
	}
	if len(*slept) < 3 {
		t.Errorf("backoff slept %d times, want >= 3", len(*slept))
	}
	for i, f := range c.Instances() {
		if got := f.Execs(); got < 3000 {
			t.Errorf("instance %d execs = %d, want >= 3000", i, got)
		}
		if got := f.Queue().Len(); got < before[i] {
			t.Errorf("instance %d queue shrank %d -> %d: corpus lost in revival", i, before[i], got)
		}
	}
}

// TestCampaignMarksInstanceFailed: an instance that keeps dying burns its
// restart budget and is abandoned — with its errors aggregated — while the
// rest of the campaign completes normally.
func TestCampaignMarksInstanceFailed(t *testing.T) {
	c, _ := quietCampaign(t, Config{
		Instances:   3,
		SyncEvery:   500,
		MaxRestarts: 2,
		Fuzzer:      fuzzer.Config{Seed: 8},
	})
	c.testFaultHook = func(i int, f *fuzzer.Fuzzer) {
		if i == 1 {
			panic("hopeless instance")
		}
	}
	if err := c.RunExecs(2500); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if rep.FailedInstances != 1 {
		t.Fatalf("FailedInstances = %d, want 1", rep.FailedInstances)
	}
	if rep.Errors[1] == nil || !strings.Contains(rep.Errors[1].Error(), "hopeless") {
		t.Errorf("Errors[1] = %v, want the panic cause", rep.Errors[1])
	}
	if rep.Errors[0] != nil || rep.Errors[2] != nil {
		t.Errorf("healthy instances carry errors: %v", rep.Errors)
	}
	if rep.Restarts != 2 {
		t.Errorf("Restarts = %d, want exactly MaxRestarts", rep.Restarts)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("Failures = %v, want exactly one record", rep.Failures)
	}
	fail := rep.Failures[0]
	if fail.Instance != 1 || fail.Restarts != 2 {
		t.Errorf("Failures[0] = {instance %d, restarts %d}, want {1, 2}", fail.Instance, fail.Restarts)
	}
	if fail.Err == nil || !strings.Contains(fail.Err.Error(), "hopeless") {
		t.Errorf("Failures[0].Err = %v, want the panic cause", fail.Err)
	}
	for _, i := range []int{0, 2} {
		if got := c.Instances()[i].Execs(); got < 2500 {
			t.Errorf("surviving instance %d execs = %d, want >= 2500", i, got)
		}
	}
}

// TestCampaignAllFailed: when every instance is out of restarts the campaign
// itself errors instead of spinning forever.
func TestCampaignAllFailed(t *testing.T) {
	c, _ := quietCampaign(t, Config{
		Instances:   2,
		SyncEvery:   500,
		MaxRestarts: 1,
		Fuzzer:      fuzzer.Config{Seed: 9},
	})
	c.testFaultHook = func(i int, f *fuzzer.Fuzzer) { panic("total loss") }
	err := c.RunExecs(2000)
	if err == nil || !strings.Contains(err.Error(), "all instances failed") {
		t.Fatalf("err = %v, want all-instances-failed", err)
	}
}

// TestCampaignBackoffExponential: revival delays double per restart of the
// same instance, each padded with jitter in [0, base/2] so synchronized
// faults cannot stampede revivals in lockstep.
func TestCampaignBackoffExponential(t *testing.T) {
	c, slept := quietCampaign(t, Config{
		Instances:      2,
		SyncEvery:      500,
		MaxRestarts:    3,
		RestartBackoff: 8 * time.Millisecond,
		Fuzzer:         fuzzer.Config{Seed: 10},
	})
	fails := 0
	c.testFaultHook = func(i int, f *fuzzer.Fuzzer) {
		if i == 1 && fails < 3 {
			fails++
			panic("flaky instance")
		}
	}
	if err := c.RunExecs(3000); err != nil {
		t.Fatal(err)
	}
	bases := []time.Duration{8 * time.Millisecond, 16 * time.Millisecond, 32 * time.Millisecond}
	if len(*slept) != len(bases) {
		t.Fatalf("backoff sequence %v, want %d delays", *slept, len(bases))
	}
	for i, base := range bases {
		got := (*slept)[i]
		if got < base || got > base+base/2 {
			t.Errorf("backoff[%d] = %v, want in [%v, %v] (base + jitter)", i, got, base, base+base/2)
		}
	}
}

// TestCampaignBackoffJitterDeterministic: the jitter stream is seeded from
// the campaign seed, so an identically-configured campaign replays the exact
// same revival delays — supervision is as reproducible as fuzzing.
func TestCampaignBackoffJitterDeterministic(t *testing.T) {
	run := func() []time.Duration {
		c, slept := quietCampaign(t, Config{
			Instances:      2,
			SyncEvery:      500,
			MaxRestarts:    3,
			RestartBackoff: 8 * time.Millisecond,
			Fuzzer:         fuzzer.Config{Seed: 10},
		})
		fails := 0
		c.testFaultHook = func(i int, f *fuzzer.Fuzzer) {
			if i == 1 && fails < 3 {
				fails++
				panic("flaky instance")
			}
		}
		if err := c.RunExecs(3000); err != nil {
			t.Fatal(err)
		}
		return *slept
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("jitter not deterministic: %v vs %v", a, b)
	}
	jittered := false
	for i, d := range a {
		if d != 8*time.Millisecond<<i {
			jittered = true
		}
	}
	if !jittered {
		t.Log("note: every jitter draw was zero for this seed (legal but unusual)")
	}
}

// TestCampaignMidRoundErrorRevives: a plain error return (not a panic) from
// an instance's round takes the same revival path, replacing the fuzzer with
// one resumed from the last boundary.
func TestCampaignMidRoundErrorRevives(t *testing.T) {
	c, slept := quietCampaign(t, Config{
		Instances: 2,
		SyncEvery: 500,
		Fuzzer:    fuzzer.Config{Seed: 11},
	})
	broken := c.Instances()[1]
	err := c.round(func(f *fuzzer.Fuzzer) error {
		if f == broken {
			return errors.New("exec backend hiccup")
		}
		return f.RunExecs(100)
	})
	if err != nil {
		t.Fatalf("round error = %v, want revival instead", err)
	}
	if c.restarts[1] != 1 || c.failed[1] != nil {
		t.Errorf("restarts[1] = %d failed[1] = %v, want one clean revival", c.restarts[1], c.failed[1])
	}
	if c.Instances()[1] == broken {
		t.Error("errored fuzzer not replaced by resumed one")
	}
	if len(*slept) != 1 {
		t.Errorf("slept %d times, want 1", len(*slept))
	}
}

// TestCampaignConstructionErrors covers the instance-construction failure
// paths: a nil program fails instance 0, and a seed set every instance
// rejects fails with ErrNoSeeds.
func TestCampaignConstructionErrors(t *testing.T) {
	prog, seeds := campaignTarget(t)
	if _, err := NewCampaign(nil, Config{Instances: 2}, seeds); err == nil ||
		!strings.Contains(err.Error(), "instance 0") {
		t.Errorf("nil program: err = %v, want instance 0 failure", err)
	}
	if _, err := NewCampaign(prog, Config{Instances: 2}, nil); !errors.Is(err, fuzzer.ErrNoSeeds) {
		t.Errorf("empty seed set: err = %v, want ErrNoSeeds", err)
	}
}

// TestCampaignResumeMatchesUninterrupted: a campaign checkpointed between
// Run calls and resumed through the full campaign codec must reproduce the
// uninterrupted campaign exactly — per-instance stats, coverage, queues —
// including master/secondary deterministic-stage forcing and fault-injected
// targets.
func TestCampaignResumeMatchesUninterrupted(t *testing.T) {
	prog, seeds := campaignTarget(t)
	cfg := Config{
		Instances:           3,
		SyncEvery:           1000,
		MasterDeterministic: true,
		Fuzzer: fuzzer.Config{
			Seed: 12, Scheme: fuzzer.SchemeBigMap, AdaptiveHavoc: true,
			CalibrationRuns: 3, HavocRounds: 64, SpliceRounds: 8,
			Faults: &target.FaultProfile{Seed: 6, FlakyEdgeFraction: 100, DropRate: 250},
		},
	}
	type print struct {
		Stats  []fuzzer.Stats
		Queues [][]uint64
	}
	take := func(c *Campaign) print {
		var p print
		for _, f := range c.Instances() {
			st := f.Stats()
			st.Timings = fuzzer.Timings{}
			p.Stats = append(p.Stats, st)
			var hashes []uint64
			for _, e := range f.Queue().Entries() {
				hashes = append(hashes, e.PathHash)
			}
			p.Queues = append(p.Queues, hashes)
		}
		return p
	}

	ref, err := NewCampaign(prog, cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunRounds(4); err != nil {
		t.Fatal(err)
	}
	want := take(ref)

	a, err := NewCampaign(prog, cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	data := checkpoint.EncodeCampaign(a.Snapshot())
	st, err := checkpoint.DecodeCampaign(data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resume(prog, cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	if got := take(b); !reflect.DeepEqual(got, want) {
		t.Errorf("resumed campaign diverged:\n got %+v\nwant %+v", got, want)
	}

	// Master forcing survives resume: deterministic stages on instance 0
	// and only instance 0.
	if !b.instanceCfg(0).RunDeterministic {
		t.Error("resumed master lost deterministic stages")
	}
	if b.instanceCfg(1).RunDeterministic {
		t.Error("resumed secondary gained deterministic stages")
	}
}

// TestCampaignResumeValidates: structural mismatches are rejected.
func TestCampaignResumeValidates(t *testing.T) {
	prog, seeds := campaignTarget(t)
	c, err := NewCampaign(prog, Config{Instances: 2, Fuzzer: fuzzer.Config{Seed: 13}}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Snapshot()
	if _, err := Resume(prog, Config{Instances: 5}, st); err == nil {
		t.Error("instance count mismatch accepted")
	}
	if _, err := Resume(prog, Config{}, &checkpoint.CampaignState{}); !errors.Is(err, ErrNoInstances) {
		t.Errorf("empty checkpoint: err = %v, want ErrNoInstances", err)
	}
}
