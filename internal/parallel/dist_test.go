package parallel

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/bigmap/bigmap/internal/dist"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
	"github.com/bigmap/bigmap/internal/telemetry"
)

// distTarget mirrors TestCampaignSyncSharesCorpus's target: big and gated
// enough that instances genuinely diverge, so the sync path carries real
// traffic instead of all-duplicate imports.
func distTarget(t *testing.T) (*target.Program, [][]byte) {
	t.Helper()
	prog, err := target.Generate(target.GenSpec{
		Name:              "par-dist",
		Seed:              29,
		NumFuncs:          40,
		BlocksPerFunc:     24,
		InputLen:          128,
		BranchFraction:    0.7,
		MagicCompares:     10,
		MagicWidth:        2,
		BonusBlocks:       8,
		GatedCallFraction: 0.3,
		Switches:          6,
		SwitchFanout:      8,
		CrashSites:        2,
		CrashDepth:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog, prog.SampleSeeds(rng.New(57), 4)
}

// TestSyncerMatchesLegacySync pins the equivalence the Config.Syncer doc
// promises: a hub-synced campaign walks the exact same trajectory as the
// legacy in-memory pairwise exchange. Both run the same round schedule from
// the same seeds; every per-instance stat and the campaign union must agree
// bit for bit, because the hub's push-all-then-pull-all boundary delivers
// the same inputs in the same per-instance order as snapshot-then-import.
// The one permitted difference is exec counts: the hub deduplicates by
// content hash, so an input found by several peers is re-executed once per
// importer instead of once per peer copy — strictly fewer imports, and a
// duplicate import is coverage- and RNG-neutral, so nothing else moves.
func TestSyncerMatchesLegacySync(t *testing.T) {
	prog, seeds := distTarget(t)
	base := Config{
		Instances:    3,
		SyncEvery:    3000,
		Fuzzer:       fuzzer.Config{Seed: 7, Scheme: fuzzer.SchemeBigMap},
		VirginShards: 1,
	}

	legacy, err := NewCampaign(prog, base, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.RunRounds(4); err != nil {
		t.Fatal(err)
	}
	lrep := legacy.Report()

	hub, err := dist.NewHub(64<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Syncer = hub
	distc, err := NewCampaign(prog, cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := distc.RunRounds(4); err != nil {
		t.Fatal(err)
	}
	drep := distc.Report()

	if lrep.UnionEdges == 0 {
		t.Fatal("legacy campaign discovered no union coverage")
	}
	if drep.UnionEdges != lrep.UnionEdges {
		t.Errorf("UnionEdges = %d, legacy %d", drep.UnionEdges, lrep.UnionEdges)
	}
	if drep.TotalExecs > lrep.TotalExecs {
		t.Errorf("TotalExecs = %d, want <= legacy %d (dedup only removes imports)",
			drep.TotalExecs, lrep.TotalExecs)
	}
	if drep.UniqueCrashes != lrep.UniqueCrashes {
		t.Errorf("UniqueCrashes = %d, legacy %d", drep.UniqueCrashes, lrep.UniqueCrashes)
	}
	for i := range lrep.PerInstance {
		ds, ls := drep.PerInstance[i], lrep.PerInstance[i]
		if ds.Execs > ls.Execs {
			t.Errorf("instance %d execs = %d, want <= legacy %d", i, ds.Execs, ls.Execs)
		}
		ds.Execs, ls.Execs = 0, 0
		if ds != ls {
			t.Errorf("instance %d stats diverge:\n dist   %+v\n legacy %+v", i, ds, ls)
		}
	}

	// The hub's union must agree with the campaign's own virgin union.
	st, err := hub.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.UnionDiscovered != lrep.UnionEdges {
		t.Errorf("hub union = %d, campaign union %d", st.UnionDiscovered, lrep.UnionEdges)
	}
	if st.Workers != base.Instances {
		t.Errorf("hub workers = %d, want %d", st.Workers, base.Instances)
	}
}

// errSyncer fails every call after Join, exercising the degraded mode: sync
// errors must never fail the campaign, only log events.
type errSyncer struct{ dist.Syncer }

func (e errSyncer) Push(string, dist.Batch) (dist.Receipt, error) {
	return dist.Receipt{}, errors.New("corpusd unreachable")
}

func (e errSyncer) Pull(string) ([]dist.Pulled, error) {
	return nil, errors.New("corpusd unreachable")
}

func TestSyncerFailureDegradesGracefully(t *testing.T) {
	prog, seeds := campaignTarget(t)
	hub, err := dist.NewHub(64<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	c, err := NewCampaign(prog, Config{
		Instances: 2,
		SyncEvery: 1000,
		Fuzzer:    fuzzer.Config{Seed: 3, Scheme: fuzzer.SchemeBigMap, Telemetry: reg},
		Syncer:    errSyncer{hub},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunRounds(2); err != nil {
		t.Fatalf("sync failures must not fail the campaign: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["campaign_sync_errors_total"]; got != 8 {
		// 2 rounds x 2 instances x (push + pull).
		t.Errorf("campaign_sync_errors_total = %d, want 8", got)
	}
	events, _ := reg.Events().Snapshot()
	found := false
	for _, ev := range events {
		if ev.Name == "sync_error" && strings.Contains(ev.Detail, "corpusd unreachable") {
			found = true
		}
	}
	if !found {
		t.Error("no sync_error event logged")
	}
}

// TestSyncerSurvivesRevival pins the soft-state contract: after an instance
// is revived from checkpoint, its rebuilt dist worker resumes the same name
// and sequence chain, and the campaign keeps syncing through the hub.
func TestSyncerSurvivesRevival(t *testing.T) {
	prog, seeds := campaignTarget(t)
	hub, err := dist.NewHub(64<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCampaign(prog, Config{
		Instances:      2,
		SyncEvery:      1000,
		Fuzzer:         fuzzer.Config{Seed: 5, Scheme: fuzzer.SchemeBigMap},
		Syncer:         hub,
		MaxRestarts:    2,
		RestartBackoff: time.Nanosecond,
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	c.sleep = func(time.Duration) {}
	fired := false
	c.testFaultHook = func(i int, _ *fuzzer.Fuzzer) {
		if i == 1 && !fired {
			fired = true
			panic("injected fault")
		}
	}
	if err := c.RunRounds(3); err != nil {
		t.Fatal(err)
	}
	if got := c.Progress().Revivals; got != 1 {
		t.Fatalf("revivals = %d, want 1", got)
	}
	st, err := hub.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Still exactly two workers (revival reuses the name) and batches from
	// both sides of the fault.
	if st.Workers != 2 {
		t.Errorf("hub workers = %d, want 2", st.Workers)
	}
	if st.Batches < 6 {
		t.Errorf("hub batches = %d, want >= 6", st.Batches)
	}
	if st.Inputs == 0 {
		t.Error("hub stored no inputs")
	}
}
