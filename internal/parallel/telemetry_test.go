package parallel

import (
	"fmt"
	"testing"
	"time"

	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/telemetry"
)

// TestCampaignTelemetry runs a small instrumented campaign and checks the
// campaign-level metrics: shared fuzzer counters aggregate across instances,
// round counts match, and every instance publishes its exec gauge.
func TestCampaignTelemetry(t *testing.T) {
	reg := telemetry.New()
	if reg == nil {
		t.Skip("telemetry compiled out (bigmapnotel)")
	}
	prog, seeds := campaignTarget(t)
	c, err := NewCampaign(prog, Config{
		Instances: 3,
		SyncEvery: 2000,
		Fuzzer:    fuzzer.Config{Seed: 11, Telemetry: reg},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if c.Telemetry() != reg {
		t.Fatal("campaign must expose the configured registry")
	}
	const rounds = 3
	if err := c.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if got := s.Counters["campaign_rounds_total"]; got != rounds {
		t.Errorf("campaign_rounds_total = %d, want %d", got, rounds)
	}
	if got := s.Gauges["campaign_instances"]; got != 3 {
		t.Errorf("campaign_instances = %d, want 3", got)
	}

	rep := c.Report()
	// All instances share the registry, so the execs counter aggregates the
	// whole campaign (dry runs included).
	if got := s.Counters["fuzzer_execs_total"]; got != rep.TotalExecs {
		t.Errorf("fuzzer_execs_total = %d, report says %d", got, rep.TotalExecs)
	}
	for i := 0; i < 3; i++ {
		g := s.Gauges[fmt.Sprintf("campaign_instance_%d_execs", i)]
		if g != int64(rep.PerInstance[i].Execs) {
			t.Errorf("instance %d gauge = %d, stats say %d", i, g, rep.PerInstance[i].Execs)
		}
	}
}

// TestCampaignTelemetryRevivalEvents checks the supervisor's event-log
// integration: a panicking instance bumps campaign_revivals_total and leaves
// an instance_revived event in the ring.
func TestCampaignTelemetryRevivalEvents(t *testing.T) {
	reg := telemetry.New()
	if reg == nil {
		t.Skip("telemetry compiled out (bigmapnotel)")
	}
	prog, seeds := campaignTarget(t)
	c, err := NewCampaign(prog, Config{
		Instances:   2,
		SyncEvery:   500,
		MaxRestarts: 2,
		Fuzzer:      fuzzer.Config{Seed: 13, Telemetry: reg},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	c.sleep = func(time.Duration) {}
	faulted := false
	c.testFaultHook = func(instance int, f *fuzzer.Fuzzer) {
		if instance == 1 && !faulted {
			faulted = true
			panic("injected fault")
		}
	}
	if err := c.RunRounds(2); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if got := s.Counters["campaign_revivals_total"]; got != 1 {
		t.Errorf("campaign_revivals_total = %d, want 1", got)
	}
	found := false
	for _, e := range s.Events {
		if e.Name == "instance_revived" {
			found = true
		}
	}
	if !found {
		t.Errorf("no instance_revived event in %+v", s.Events)
	}
}
