// Package parallel runs multi-instance fuzzing campaigns in the
// master–secondary configuration of the paper's §V-D: one master instance
// (the only one that may run the deterministic stages) plus secondaries, all
// fuzzing the same target with independent coverage maps and seed pools,
// periodically cross-pollinating their corpora.
//
// Instances run concurrently, one goroutine each, so wall-clock throughput
// measurements capture the real scaling behaviour (shared last-level cache
// and memory-bandwidth pressure included — the effect Figure 9 plots).
// Synchronization happens at round boundaries with no instance running,
// which keeps every Fuzzer single-threaded, like AFL's on-disk sync.
//
// The campaign is supervised: an instance that panics or errors mid-round is
// revived from its last sync-boundary checkpoint with exponential backoff,
// and only abandoned (not the whole campaign) once its restart budget is
// exhausted. The campaign itself fails only when every instance has.
//
// When the template fuzzer config carries a telemetry.Registry, every
// instance shares it: fuzzer counters aggregate campaign-wide, each instance
// publishes a campaign_instance_<i>_execs gauge, and supervisor decisions
// (revivals, abandonments) land in the registry's event log. All telemetry
// fields are atomic and nil-safe, so they are deliberately not part of the
// mutex-guarded state.
package parallel

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/bigmap/bigmap/internal/checkpoint"
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/crash"
	"github.com/bigmap/bigmap/internal/dist"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
	"github.com/bigmap/bigmap/internal/telemetry"
)

// ErrNoInstances is returned when a campaign is configured with < 1
// instance.
var ErrNoInstances = errors.New("parallel: campaign needs at least one instance")

// Config parameterizes a campaign.
type Config struct {
	// Instances is the number of concurrent fuzzers (the paper sweeps 1,
	// 4, 8, 12).
	Instances int
	// SyncEvery is the per-instance exec budget of one round; corpora are
	// exchanged between rounds. 0 means 20,000.
	SyncEvery uint64
	// Fuzzer is the per-instance template. Seed is perturbed per instance;
	// RunDeterministic is forced on for the master and off for
	// secondaries, per the standard configuration.
	Fuzzer fuzzer.Config
	// MasterDeterministic enables the deterministic stages on instance 0.
	MasterDeterministic bool
	// MaxRestarts bounds how many times a crashed instance is revived from
	// its last sync-round checkpoint before it is marked failed and the
	// campaign continues without it. 0 means 3.
	MaxRestarts int
	// RestartBackoff is the pause before an instance's first revival; it
	// doubles on every subsequent revival of the same instance. 0 means
	// 10ms.
	RestartBackoff time.Duration
	// Syncer, when set, replaces the in-memory pairwise corpus exchange
	// with the distributed sync boundary (internal/dist): at every round
	// boundary each instance pushes its new queue entries, crash buckets
	// and virgin-map delta to the syncer, then imports what its peers —
	// in this process or on other machines — published. A dist.Hub keeps
	// the campaign in-process with identical union coverage to the legacy
	// exchange (pinned by TestSyncerMatchesLegacySync); a dist.Client
	// shares the campaign through a bigmap-corpusd service. Sync failures
	// degrade the campaign to independent instances (logged as sync_error
	// events) instead of failing it; unacknowledged batches are retried at
	// the next boundary.
	Syncer dist.Syncer
	// Worker prefixes the per-instance worker names registered with
	// Syncer ("<Worker>-<instance>"). Prefixes must be unique among the
	// processes driving one campaign — reusing one resumes that worker's
	// server-side cursors, which is correct after a restart and wrong for
	// a concurrent duplicate. Empty means "local".
	Worker string
	// VirginShards configures the campaign-level virgin union — the
	// cross-instance coverage view merged at round boundaries. 0 disables
	// it (Report.UnionEdges stays 0); 1 uses the single-lock reference
	// implementation; >= 2 uses the sharded lock-free union, letting every
	// instance goroutine fold its virgin map in concurrently at the end of
	// its round slice instead of serializing on one mutex. Both
	// implementations produce identical union state (AND-merges commute),
	// pinned by TestVirginUnionEquivalence and the campaign-level test.
	VirginShards int
}

// Campaign is a running multi-instance fuzzing session.
type Campaign struct {
	prog     *target.Program
	fuzzers  []*fuzzer.Fuzzer
	cfg      Config
	seenUpTo [][]int // seenUpTo[i][j]: how many of j's queue entries i has imported

	// Supervisor state: the last sync-boundary checkpoint per instance
	// (with the matching seenUpTo row), restart counters, and the terminal
	// error of each abandoned instance (nil while alive).
	snaps    []*checkpoint.FuzzerState
	seenSnap [][]int
	restarts []int
	failed   []error

	// sleep is time.Sleep, replaceable in tests so backoff is observable
	// without slowing the suite. testFaultHook, when set, runs at the top
	// of every instance round — tests inject panics through it.
	sleep         func(time.Duration)
	testFaultHook func(instance int, f *fuzzer.Fuzzer)

	// jrng draws revival-backoff jitter. Deterministic in the campaign seed
	// so supervision replays identically, and consumed only on revival, so
	// it is deliberately not part of the checkpointed state: jitter shapes
	// when a revived instance restarts, never what it computes.
	jrng *rng.Source

	// progress holds the live counters behind Progress. Instance
	// goroutines publish into it mid-round, so it is the one piece of
	// campaign state shared across goroutines.
	progress progressState

	// tel is the shared observability registry, taken from the fuzzer
	// template config. The instances record into it directly (they share
	// it through their own configs); the campaign adds round/revival
	// bookkeeping and event-log entries. nil when telemetry is off.
	tel *telemetry.Registry

	// peers are the instances' dist workers when Config.Syncer is set
	// (nil otherwise); peers[i] is recreated alongside fuzzers[i] on
	// revival and resume, since a dist.Worker holds only soft state.
	peers []*dist.Worker

	// union is the campaign-level virgin union (Config.VirginShards);
	// nil when disabled. Instance goroutines merge into it concurrently at
	// the end of their round slice — the union's own synchronization
	// (sharded atomics or the reference lock) is the only coordination.
	union    core.VirginUnion
	telUnion *telemetry.Gauge
}

// progressState is the campaign's live telemetry. Instance goroutines write
// it concurrently during a round and Progress may be called from any
// goroutine at any time, so every counter is published under mu instead of
// being read off the (single-threaded) fuzzers.
type progressState struct {
	mu sync.Mutex

	execs    []uint64 // guarded by mu; per-instance cumulative execs as of the last publish
	rounds   int      // guarded by mu; completed sync rounds
	revivals int      // guarded by mu; instance restarts from checkpoint
	failed   int      // guarded by mu; instances abandoned after exhausting restarts

	// Telemetry mirrors of the counters above. The handles are atomic and
	// nil-safe (nil when telemetry is off), so they sit outside the mutex.
	telExecs    []*telemetry.Gauge
	telRounds   *telemetry.Counter
	telRevivals *telemetry.Counter
	telFailed   *telemetry.Counter
}

func (p *progressState) noteExecs(i int, n uint64) {
	p.mu.Lock()
	p.execs[i] = n
	p.mu.Unlock()
	if i < len(p.telExecs) {
		p.telExecs[i].Set(int64(n))
	}
}

func (p *progressState) noteRound() {
	p.mu.Lock()
	p.rounds++
	p.mu.Unlock()
	p.telRounds.Inc()
}

func (p *progressState) noteRevival() {
	p.mu.Lock()
	p.revivals++
	p.mu.Unlock()
	p.telRevivals.Inc()
}

func (p *progressState) noteFailed() {
	p.mu.Lock()
	p.failed++
	p.mu.Unlock()
	p.telFailed.Inc()
}

// Progress is a point-in-time snapshot of campaign counters. Unlike Report,
// it is safe to take from any goroutine while a round is running: the
// numbers come from counters the instances publish, not from the fuzzers
// themselves.
type Progress struct {
	// Execs holds each instance's cumulative exec count as of its most
	// recent publish (the end of its last round slice).
	Execs []uint64
	// Rounds counts completed sync rounds.
	Rounds int
	// Revivals counts instance restarts from a sync-boundary checkpoint.
	Revivals int
	// Failed counts instances abandoned after exhausting their restart
	// budget.
	Failed int
}

// Progress returns the campaign's live counters. Safe to call concurrently
// with a running Run* call, which Report is not.
func (c *Campaign) Progress() Progress {
	p := &c.progress
	p.mu.Lock()
	defer p.mu.Unlock()
	return Progress{
		Execs:    append([]uint64(nil), p.execs...),
		Rounds:   p.rounds,
		Revivals: p.revivals,
		Failed:   p.failed,
	}
}

func withDefaults(cfg Config) Config {
	if cfg.SyncEvery == 0 {
		cfg.SyncEvery = 20000
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.RestartBackoff == 0 {
		cfg.RestartBackoff = 10 * time.Millisecond
	}
	return cfg
}

// InstanceConfig derives instance i's fuzzer config from the campaign
// template: a per-instance seed perturbation, and deterministic stages on
// the master only. Revival and resume rebuild configs through this same
// function, so a restarted instance is bitwise the campaign's original.
// Exported so out-of-process workers (bigmap-fuzz -join) can derive the
// exact per-instance configuration an in-process campaign would use —
// the differential tests depend on the two matching.
func InstanceConfig(cfg Config, i int) fuzzer.Config {
	fcfg := cfg.Fuzzer
	fcfg.Seed = fcfg.Seed*31 + uint64(i) + 1
	fcfg.RunDeterministic = cfg.MasterDeterministic && i == 0
	return fcfg
}

func (c *Campaign) instanceCfg(i int) fuzzer.Config {
	return InstanceConfig(c.cfg, i)
}

// newUnion builds the campaign virgin union for the configured shard count,
// sized to the fuzzer template's (defaulted) map size. Returns nil when the
// union is disabled or the size is invalid (fuzzer construction will surface
// the size error with proper context).
func newUnion(cfg Config) core.VirginUnion {
	if cfg.VirginShards <= 0 {
		return nil
	}
	size := cfg.Fuzzer.MapSize
	if size == 0 {
		size = core.MapSize64K
	}
	if cfg.VirginShards == 1 {
		u, err := core.NewLockedVirginUnion(size)
		if err != nil {
			return nil
		}
		return u
	}
	u, err := core.NewAtomicVirginUnion(size, cfg.VirginShards)
	if err != nil {
		return nil
	}
	return u
}

func newShell(prog *target.Program, cfg Config) *Campaign {
	n := cfg.Instances
	c := &Campaign{
		prog:     prog,
		fuzzers:  make([]*fuzzer.Fuzzer, n),
		cfg:      cfg,
		seenUpTo: make([][]int, n),
		snaps:    make([]*checkpoint.FuzzerState, n),
		seenSnap: make([][]int, n),
		restarts: make([]int, n),
		failed:   make([]error, n),
		sleep:    time.Sleep,
		jrng:     rng.New(cfg.Fuzzer.Seed ^ 0x6a17_7e5b_ac0f_5eed),
		tel:      cfg.Fuzzer.Telemetry,
		union:    newUnion(cfg),
	}
	c.progress.execs = make([]uint64, n)
	if r := c.tel; r != nil {
		c.progress.telExecs = make([]*telemetry.Gauge, n)
		for i := 0; i < n; i++ {
			c.progress.telExecs[i] = r.Gauge(fmt.Sprintf("campaign_instance_%d_execs", i))
		}
		c.progress.telRounds = r.Counter("campaign_rounds_total")
		c.progress.telRevivals = r.Counter("campaign_revivals_total")
		c.progress.telFailed = r.Counter("campaign_failed_instances_total")
		r.Gauge("campaign_instances").Set(int64(n))
		if c.union != nil {
			c.telUnion = r.Gauge("campaign_union_edges")
		}
	}
	for i := 0; i < n; i++ {
		c.seenUpTo[i] = make([]int, n)
		c.seenSnap[i] = make([]int, n)
	}
	return c
}

// NewCampaign builds the instances and dry-runs the shared seed corpus on
// each.
func NewCampaign(prog *target.Program, cfg Config, seeds [][]byte) (*Campaign, error) {
	if cfg.Instances < 1 {
		return nil, ErrNoInstances
	}
	c := newShell(prog, withDefaults(cfg))
	for i := range c.fuzzers {
		f, err := fuzzer.New(prog, c.instanceCfg(i))
		if err != nil {
			return nil, fmt.Errorf("instance %d: %w", i, err)
		}
		accepted := 0
		for _, s := range seeds {
			if err := f.AddSeed(s); err == nil {
				accepted++
			}
		}
		if accepted == 0 {
			return nil, fmt.Errorf("instance %d: %w", i, fuzzer.ErrNoSeeds)
		}
		c.fuzzers[i] = f
	}
	for i := range c.seenUpTo {
		for j := range c.seenUpTo[i] {
			// Seed entries are already present everywhere.
			c.seenUpTo[i][j] = c.fuzzers[j].Queue().Len()
		}
	}
	if err := c.attachPeers(); err != nil {
		return nil, err
	}
	c.markBoundary()
	return c, nil
}

// unionSize is the campaign's coverage key space: the fuzzer template's
// defaulted map size, shared by the virgin union and the dist workers.
func (c *Campaign) unionSize() int {
	size := c.cfg.Fuzzer.MapSize
	if size == 0 {
		size = core.MapSize64K
	}
	return size
}

// peerName is instance i's campaign-unique dist worker name.
func (c *Campaign) peerName(i int) string {
	prefix := c.cfg.Worker
	if prefix == "" {
		prefix = "local"
	}
	return fmt.Sprintf("%s-%d", prefix, i)
}

// attachPeers creates the per-instance dist workers in syncer mode; no-op
// otherwise. Called once the fuzzers exist (construction and resume).
func (c *Campaign) attachPeers() error {
	if c.cfg.Syncer == nil {
		return nil
	}
	c.peers = make([]*dist.Worker, len(c.fuzzers))
	for i, f := range c.fuzzers {
		if c.failed[i] != nil {
			continue
		}
		w, err := dist.NewWorker(f, c.peerName(i), c.cfg.Syncer, c.unionSize())
		if err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
		c.peers[i] = w
	}
	return nil
}

// Instances returns the per-instance fuzzers (for inspection).
func (c *Campaign) Instances() []*fuzzer.Fuzzer { return c.fuzzers }

// Telemetry returns the campaign's shared observability registry (from the
// fuzzer template config), nil when telemetry is off.
func (c *Campaign) Telemetry() *telemetry.Registry { return c.tel }

// RunExecs fuzzes until every live instance has executed at least
// perInstance test cases, in concurrent rounds of SyncEvery execs with
// corpus exchange in between.
func (c *Campaign) RunExecs(perInstance uint64) error {
	for !c.allReached(perInstance) {
		if err := c.round(func(f *fuzzer.Fuzzer) error {
			if f.Execs() >= perInstance {
				return nil
			}
			need := perInstance - f.Execs()
			if need > c.cfg.SyncEvery {
				need = c.cfg.SyncEvery
			}
			return f.RunExecs(need)
		}); err != nil {
			return err
		}
		c.sync()
		c.markBoundary()
	}
	return nil
}

// RunRounds fuzzes for exactly n sync rounds of SyncEvery additional execs
// per live instance. Unlike RunExecs, the schedule is split-invariant —
// RunRounds(k) followed by RunRounds(n-k) replays the exact same round and
// sync boundaries as RunRounds(n) — which makes it the right unit for
// checkpointed campaigns: a resumed campaign continues the original round
// schedule bit for bit.
func (c *Campaign) RunRounds(n int) error {
	for r := 0; r < n; r++ {
		if err := c.round(func(f *fuzzer.Fuzzer) error {
			return f.RunExecs(c.cfg.SyncEvery)
		}); err != nil {
			return err
		}
		c.sync()
		c.markBoundary()
	}
	return nil
}

// RunFor fuzzes for roughly d of wall-clock time. Rounds are time-sliced
// (at most half a second each) rather than exec-counted so that slow
// configurations cannot overshoot the budget by a whole round, and corpora
// still cross-pollinate between slices.
func (c *Campaign) RunFor(d time.Duration) error {
	deadline := time.Now().Add(d) //bigmap:nondeterministic-ok wall-clock API by contract
	for {
		remaining := time.Until(deadline) //bigmap:nondeterministic-ok wall-clock API by contract
		if remaining <= 0 {
			return nil
		}
		slice := remaining
		if slice > 500*time.Millisecond {
			slice = 500 * time.Millisecond
		}
		if err := c.round(func(f *fuzzer.Fuzzer) error {
			return f.RunFor(slice)
		}); err != nil {
			return err
		}
		c.sync()
		c.markBoundary()
	}
}

// round runs fn concurrently on every live instance, recovering panics.
// Instances that panicked or errored are revived from their last
// sync-boundary checkpoint (losing at most one round of work); an instance
// out of restarts is marked failed and skipped from here on. The returned
// error is non-nil only when no live instance remains.
func (c *Campaign) round(fn func(*fuzzer.Fuzzer) error) error {
	errs := make([]error, len(c.fuzzers))
	var wg sync.WaitGroup
	for i, f := range c.fuzzers {
		if c.failed[i] != nil {
			continue
		}
		wg.Add(1)
		go func(i int, f *fuzzer.Fuzzer) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("instance %d panicked: %v", i, r)
				}
			}()
			if c.testFaultHook != nil {
				c.testFaultHook(i, f)
			}
			errs[i] = fn(f)
			if errs[i] == nil && c.union != nil {
				// Fold this instance's coverage into the campaign union
				// while the other instances are still finishing their
				// slices — with the sharded union the merges proceed
				// lock-free instead of serializing on a mutex.
				f.MergeVirginInto(c.union)
			}
			c.progress.noteExecs(i, f.Execs())
		}(i, f)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			c.reviveOrFail(i, err)
		}
	}
	if err := c.allFailedErr(); err != nil {
		return err
	}
	c.progress.noteRound()
	if c.union != nil {
		c.telUnion.Set(int64(c.union.CountDiscovered()))
	}
	return nil
}

// reviveOrFail restarts instance i from its last checkpoint, backing off
// exponentially per attempt with deterministic jitter — several instances
// felled by the same round-level fault would otherwise sleep the exact same
// doubling sequence and stampede the executor in lockstep forever; when the
// restart budget runs out the instance is abandoned with its accumulated
// errors and the campaign carries on.
func (c *Campaign) reviveOrFail(i int, cause error) {
	for c.restarts[i] < c.cfg.MaxRestarts {
		c.restarts[i]++
		base := c.cfg.RestartBackoff << (c.restarts[i] - 1)
		c.sleep(base + jitter(c.jrng, base))
		f, err := fuzzer.Resume(c.prog, c.instanceCfg(i), c.snaps[i])
		if err == nil && c.peers != nil {
			// A dist.Worker wraps the dead fuzzer; rebuild it around the
			// revived one. Same name, so the syncer resumes this worker's
			// cursor and sequence chain. Failure here is a failed revival
			// attempt like any other.
			var w *dist.Worker
			if w, err = dist.NewWorker(f, c.peerName(i), c.cfg.Syncer, c.unionSize()); err == nil {
				c.peers[i] = w
			}
		}
		if err == nil {
			c.fuzzers[i] = f
			copy(c.seenUpTo[i], c.seenSnap[i])
			c.progress.noteRevival()
			c.progress.noteExecs(i, f.Execs())
			c.tel.Event("instance_revived",
				fmt.Sprintf("instance %d restart %d: %v", i, c.restarts[i], cause))
			return
		}
		cause = errors.Join(cause, fmt.Errorf("restart %d: %w", c.restarts[i], err))
	}
	c.failed[i] = cause
	c.progress.noteFailed()
	c.tel.Event("instance_failed", fmt.Sprintf("instance %d abandoned: %v", i, cause))
}

// jitter draws a uniform delay in [0, base/2] from src, decorrelating
// revivals that would otherwise fire in lockstep. Half the base keeps the
// worst-case pause under 1.5x the documented exponential sequence.
func jitter(src *rng.Source, base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	return time.Duration(src.Uint64() % (uint64(base)/2 + 1))
}

func (c *Campaign) allFailedErr() error {
	for _, err := range c.failed {
		if err == nil {
			return nil
		}
	}
	return fmt.Errorf("parallel: all instances failed: %w", errors.Join(c.failed...))
}

// markBoundary records every live instance's state (and import bookkeeping)
// as the revival point for the next round. Called with no instance running.
func (c *Campaign) markBoundary() {
	for i, f := range c.fuzzers {
		if c.failed[i] != nil {
			continue
		}
		c.snaps[i] = f.Snapshot()
		copy(c.seenSnap[i], c.seenUpTo[i])
	}
}

// sync cross-pollinates: every live instance re-executes the queue entries
// its live peers found since the last exchange and keeps the ones that add
// local coverage, like AFL's sync_fuzzers. In syncer mode the exchange goes
// through Config.Syncer instead — even with a single instance, since its
// peers may live in other processes.
func (c *Campaign) sync() {
	if c.peers != nil {
		c.syncDist()
		return
	}
	if len(c.fuzzers) < 2 {
		return
	}
	// Snapshot peer queues first so imports during this exchange don't
	// cascade within a single round.
	snapshots := make([][][]byte, len(c.fuzzers))
	for j, f := range c.fuzzers {
		if c.failed[j] != nil {
			continue
		}
		entries := f.Queue().Entries()
		inputs := make([][]byte, len(entries))
		for k, e := range entries {
			inputs[k] = e.Input
		}
		snapshots[j] = inputs
	}
	for i, f := range c.fuzzers {
		if c.failed[i] != nil {
			continue
		}
		for j := range c.fuzzers {
			if i == j || c.failed[j] != nil {
				continue
			}
			inputs := snapshots[j]
			for k := c.seenUpTo[i][j]; k < len(inputs); k++ {
				f.ImportInput(inputs[k])
			}
			c.seenUpTo[i][j] = len(inputs)
		}
		// Imports above count as executions; refresh the per-instance gauge
		// so telemetry agrees with Report() at every sync boundary.
		c.progress.noteExecs(i, f.Execs())
	}
}

// syncDist runs the distributed sync boundary: every live instance pushes
// its new queue entries, crash buckets and virgin delta, then pulls and
// imports what its peers published. All pushes land before any pull, so
// within one process the exchange delivers exactly what the legacy pairwise
// sync would (TestSyncerMatchesLegacySync). Failures never kill the
// campaign: the instance fuzzes on independently and the worker's pending
// batch is retried at the next boundary.
func (c *Campaign) syncDist() {
	for i, w := range c.peers {
		if c.failed[i] != nil || w == nil {
			continue
		}
		if _, err := w.Push(); err != nil {
			c.noteSyncError(fmt.Sprintf("instance %d push: %v", i, err))
		}
	}
	for i, w := range c.peers {
		if c.failed[i] != nil || w == nil {
			continue
		}
		if _, err := w.Pull(); err != nil {
			c.noteSyncError(fmt.Sprintf("instance %d pull: %v", i, err))
		}
		// Imports count as executions; refresh the per-instance gauge so
		// telemetry agrees with Report() at every sync boundary.
		c.progress.noteExecs(i, c.fuzzers[i].Execs())
	}
}

func (c *Campaign) noteSyncError(msg string) {
	c.tel.Counter("campaign_sync_errors_total").Inc()
	c.tel.Event("sync_error", msg)
}

func (c *Campaign) allReached(perInstance uint64) bool {
	for i, f := range c.fuzzers {
		if c.failed[i] != nil {
			continue
		}
		if f.Execs() < perInstance {
			return false
		}
	}
	return true
}

// Snapshot captures the whole campaign as a checkpoint struct. Call it only
// between Run calls (no instance mid-round). Failed instances contribute
// their last good checkpoint, so resuming the campaign revives them with a
// fresh restart budget.
func (c *Campaign) Snapshot() *checkpoint.CampaignState {
	n := len(c.fuzzers)
	st := &checkpoint.CampaignState{
		SyncEvery: c.cfg.SyncEvery,
		SeenUpTo:  make([][]uint64, n),
		Instances: make([]checkpoint.FuzzerState, n),
	}
	for i := range c.fuzzers {
		var fs *checkpoint.FuzzerState
		var seen []int
		if c.failed[i] != nil {
			fs, seen = c.snaps[i], c.seenSnap[i]
		} else {
			fs, seen = c.fuzzers[i].Snapshot(), c.seenUpTo[i]
		}
		st.Instances[i] = *fs
		st.SeenUpTo[i] = make([]uint64, n)
		for j, v := range seen {
			st.SeenUpTo[i][j] = uint64(v)
		}
	}
	return st
}

// Resume reconstructs a campaign from a checkpoint. prog and cfg must be the
// campaign's originals (cfg.Instances may be zero to take the count from the
// checkpoint; a non-zero mismatch is an error). Every instance — including
// ones that had been marked failed — comes back live with a fresh restart
// budget, since a process restart is exactly the recovery a stuck instance
// needs.
func Resume(prog *target.Program, cfg Config, st *checkpoint.CampaignState) (*Campaign, error) {
	n := len(st.Instances)
	if n < 1 {
		return nil, ErrNoInstances
	}
	if cfg.Instances == 0 {
		cfg.Instances = n
	}
	if cfg.Instances != n {
		return nil, fmt.Errorf("parallel: resume instance count mismatch: config %d, checkpoint %d",
			cfg.Instances, n)
	}
	if cfg.SyncEvery == 0 && st.SyncEvery != 0 {
		cfg.SyncEvery = st.SyncEvery
	}
	c := newShell(prog, withDefaults(cfg))
	for i := range c.fuzzers {
		f, err := fuzzer.Resume(prog, c.instanceCfg(i), &st.Instances[i])
		if err != nil {
			return nil, fmt.Errorf("instance %d: %w", i, err)
		}
		c.fuzzers[i] = f
	}
	for i := range c.seenUpTo {
		if len(st.SeenUpTo[i]) != n {
			return nil, fmt.Errorf("parallel: malformed checkpoint: seenUpTo[%d] has %d columns, want %d",
				i, len(st.SeenUpTo[i]), n)
		}
		for j, v := range st.SeenUpTo[i] {
			c.seenUpTo[i][j] = int(v)
		}
	}
	if err := c.attachPeers(); err != nil {
		return nil, err
	}
	c.markBoundary()
	return c, nil
}

// Report aggregates campaign-level results.
type Report struct {
	// TotalExecs sums executions across instances.
	TotalExecs uint64
	// PerInstance holds each instance's stats snapshot.
	PerInstance []fuzzer.Stats
	// UniqueCrashes counts Crashwalk buckets across all instances (crash
	// keys are program-level, so the union is exact).
	UniqueCrashes int
	// MaxEdges is the best single-instance edge coverage.
	MaxEdges int
	// UnionEdges is the campaign-level union coverage — edges discovered by
	// any instance, computed from the virgin union (Config.VirginShards).
	// Always >= MaxEdges when the union is enabled; 0 when it is off.
	UnionEdges int
	// Restarts sums instance revivals over the campaign's lifetime.
	Restarts int
	// FailedInstances counts instances abandoned after exhausting their
	// restart budget.
	FailedInstances int
	// Errors holds each instance's terminal error, indexed by instance;
	// nil for instances still live.
	Errors []error
	// Failures details every instance abandoned after exhausting its
	// restart budget: which instance, how many revivals were burned, and
	// the joined error chain. Empty when every instance is live — the
	// structured view of Errors for callers (the serve control plane)
	// that surface per-instance health instead of one campaign error.
	Failures []InstanceFailure
}

// InstanceFailure is one abandoned instance's terminal record.
type InstanceFailure struct {
	// Instance is the instance index within the campaign.
	Instance int
	// Restarts is the number of revivals consumed before abandonment
	// (always the campaign's MaxRestarts — the budget was exhausted).
	Restarts int
	// Err is the joined chain of the original fault and every failed
	// revival attempt.
	Err error
}

// Report snapshots the campaign.
func (c *Campaign) Report() Report {
	rep := Report{
		PerInstance: make([]fuzzer.Stats, len(c.fuzzers)),
		Errors:      append([]error(nil), c.failed...),
	}
	union := crash.NewDeduper()
	for i, f := range c.fuzzers {
		st := f.Stats()
		rep.PerInstance[i] = st
		rep.TotalExecs += st.Execs
		if st.EdgesDiscovered > rep.MaxEdges {
			rep.MaxEdges = st.EdgesDiscovered
		}
		union.Merge(f.Crashes())
		rep.Restarts += c.restarts[i]
		if c.failed[i] != nil {
			rep.FailedInstances++
			rep.Failures = append(rep.Failures, InstanceFailure{
				Instance: i,
				Restarts: c.restarts[i],
				Err:      c.failed[i],
			})
		}
		if c.union != nil && c.failed[i] == nil {
			// Bring the union current with any coverage found since the
			// last round boundary (imports during sync can discover edges).
			f.MergeVirginInto(c.union)
		}
	}
	rep.UniqueCrashes = union.Unique()
	if c.union != nil {
		rep.UnionEdges = c.union.CountDiscovered()
		c.telUnion.Set(int64(rep.UnionEdges))
	}
	return rep
}
