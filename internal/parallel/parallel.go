// Package parallel runs multi-instance fuzzing campaigns in the
// master–secondary configuration of the paper's §V-D: one master instance
// (the only one that may run the deterministic stages) plus secondaries, all
// fuzzing the same target with independent coverage maps and seed pools,
// periodically cross-pollinating their corpora.
//
// Instances run concurrently, one goroutine each, so wall-clock throughput
// measurements capture the real scaling behaviour (shared last-level cache
// and memory-bandwidth pressure included — the effect Figure 9 plots).
// Synchronization happens at round boundaries with no instance running,
// which keeps every Fuzzer single-threaded, like AFL's on-disk sync.
package parallel

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/bigmap/bigmap/internal/crash"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/target"
)

// ErrNoInstances is returned when a campaign is configured with < 1
// instance.
var ErrNoInstances = errors.New("parallel: campaign needs at least one instance")

// Config parameterizes a campaign.
type Config struct {
	// Instances is the number of concurrent fuzzers (the paper sweeps 1,
	// 4, 8, 12).
	Instances int
	// SyncEvery is the per-instance exec budget of one round; corpora are
	// exchanged between rounds. 0 means 20,000.
	SyncEvery uint64
	// Fuzzer is the per-instance template. Seed is perturbed per instance;
	// RunDeterministic is forced on for the master and off for
	// secondaries, per the standard configuration.
	Fuzzer fuzzer.Config
	// MasterDeterministic enables the deterministic stages on instance 0.
	MasterDeterministic bool
}

// Campaign is a running multi-instance fuzzing session.
type Campaign struct {
	fuzzers  []*fuzzer.Fuzzer
	cfg      Config
	seenUpTo [][]int // seenUpTo[i][j]: how many of j's queue entries i has imported
}

// NewCampaign builds the instances and dry-runs the shared seed corpus on
// each.
func NewCampaign(prog *target.Program, cfg Config, seeds [][]byte) (*Campaign, error) {
	if cfg.Instances < 1 {
		return nil, ErrNoInstances
	}
	if cfg.SyncEvery == 0 {
		cfg.SyncEvery = 20000
	}
	fuzzers := make([]*fuzzer.Fuzzer, cfg.Instances)
	for i := range fuzzers {
		fcfg := cfg.Fuzzer
		fcfg.Seed = fcfg.Seed*31 + uint64(i) + 1
		fcfg.RunDeterministic = cfg.MasterDeterministic && i == 0
		f, err := fuzzer.New(prog, fcfg)
		if err != nil {
			return nil, fmt.Errorf("instance %d: %w", i, err)
		}
		accepted := 0
		for _, s := range seeds {
			if err := f.AddSeed(s); err == nil {
				accepted++
			}
		}
		if accepted == 0 {
			return nil, fmt.Errorf("instance %d: %w", i, fuzzer.ErrNoSeeds)
		}
		fuzzers[i] = f
	}
	seen := make([][]int, cfg.Instances)
	for i := range seen {
		seen[i] = make([]int, cfg.Instances)
		for j := range seen[i] {
			// Seed entries are already present everywhere.
			seen[i][j] = fuzzers[j].Queue().Len()
		}
	}
	return &Campaign{fuzzers: fuzzers, cfg: cfg, seenUpTo: seen}, nil
}

// Instances returns the per-instance fuzzers (for inspection).
func (c *Campaign) Instances() []*fuzzer.Fuzzer { return c.fuzzers }

// RunExecs fuzzes until every instance has executed at least perInstance
// test cases, in concurrent rounds of SyncEvery execs with corpus exchange
// in between.
func (c *Campaign) RunExecs(perInstance uint64) error {
	for !c.allReached(perInstance) {
		if err := c.round(func(f *fuzzer.Fuzzer) error {
			if f.Execs() >= perInstance {
				return nil
			}
			need := perInstance - f.Execs()
			if need > c.cfg.SyncEvery {
				need = c.cfg.SyncEvery
			}
			return f.RunExecs(need)
		}); err != nil {
			return err
		}
		c.sync()
	}
	return nil
}

// RunFor fuzzes for roughly d of wall-clock time. Rounds are time-sliced
// (at most half a second each) rather than exec-counted so that slow
// configurations cannot overshoot the budget by a whole round, and corpora
// still cross-pollinate between slices.
func (c *Campaign) RunFor(d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil
		}
		slice := remaining
		if slice > 500*time.Millisecond {
			slice = 500 * time.Millisecond
		}
		if err := c.round(func(f *fuzzer.Fuzzer) error {
			return f.RunFor(slice)
		}); err != nil {
			return err
		}
		c.sync()
	}
}

// round runs fn concurrently on every instance and waits for all.
func (c *Campaign) round(fn func(*fuzzer.Fuzzer) error) error {
	errs := make([]error, len(c.fuzzers))
	var wg sync.WaitGroup
	for i, f := range c.fuzzers {
		wg.Add(1)
		go func(i int, f *fuzzer.Fuzzer) {
			defer wg.Done()
			errs[i] = fn(f)
		}(i, f)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// sync cross-pollinates: every instance re-executes the queue entries its
// peers found since the last exchange and keeps the ones that add local
// coverage, like AFL's sync_fuzzers.
func (c *Campaign) sync() {
	if len(c.fuzzers) < 2 {
		return
	}
	// Snapshot peer queues first so imports during this exchange don't
	// cascade within a single round.
	snapshots := make([][][]byte, len(c.fuzzers))
	for j, f := range c.fuzzers {
		entries := f.Queue().Entries()
		inputs := make([][]byte, len(entries))
		for k, e := range entries {
			inputs[k] = e.Input
		}
		snapshots[j] = inputs
	}
	for i, f := range c.fuzzers {
		for j := range c.fuzzers {
			if i == j {
				continue
			}
			inputs := snapshots[j]
			for k := c.seenUpTo[i][j]; k < len(inputs); k++ {
				f.ImportInput(inputs[k])
			}
			c.seenUpTo[i][j] = len(inputs)
		}
	}
}

func (c *Campaign) allReached(perInstance uint64) bool {
	for _, f := range c.fuzzers {
		if f.Execs() < perInstance {
			return false
		}
	}
	return true
}

// Report aggregates campaign-level results.
type Report struct {
	// TotalExecs sums executions across instances.
	TotalExecs uint64
	// PerInstance holds each instance's stats snapshot.
	PerInstance []fuzzer.Stats
	// UniqueCrashes counts Crashwalk buckets across all instances (crash
	// keys are program-level, so the union is exact).
	UniqueCrashes int
	// MaxEdges is the best single-instance edge coverage.
	MaxEdges int
}

// Report snapshots the campaign.
func (c *Campaign) Report() Report {
	rep := Report{PerInstance: make([]fuzzer.Stats, len(c.fuzzers))}
	union := crash.NewDeduper()
	for i, f := range c.fuzzers {
		st := f.Stats()
		rep.PerInstance[i] = st
		rep.TotalExecs += st.Execs
		if st.EdgesDiscovered > rep.MaxEdges {
			rep.MaxEdges = st.EdgesDiscovered
		}
		union.Merge(f.Crashes())
	}
	rep.UniqueCrashes = union.Unique()
	return rep
}
