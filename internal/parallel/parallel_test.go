package parallel

import (
	"errors"
	"testing"
	"time"

	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

func campaignTarget(t *testing.T) (*target.Program, [][]byte) {
	t.Helper()
	prog, err := target.Generate(target.GenSpec{
		Name:           "par",
		Seed:           17,
		NumFuncs:       6,
		BlocksPerFunc:  16,
		InputLen:       48,
		BranchFraction: 0.6,
		CrashSites:     3,
		CrashDepth:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog, prog.SampleSeeds(rng.New(55), 4)
}

func TestNewCampaignValidates(t *testing.T) {
	prog, seeds := campaignTarget(t)
	if _, err := NewCampaign(prog, Config{Instances: 0}, seeds); !errors.Is(err, ErrNoInstances) {
		t.Errorf("err = %v, want ErrNoInstances", err)
	}
}

func TestCampaignRunsAllInstances(t *testing.T) {
	prog, seeds := campaignTarget(t)
	c, err := NewCampaign(prog, Config{
		Instances: 3,
		SyncEvery: 2000,
		Fuzzer:    fuzzer.Config{Seed: 1, Scheme: fuzzer.SchemeBigMap},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunExecs(4000); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if len(rep.PerInstance) != 3 {
		t.Fatalf("PerInstance = %d", len(rep.PerInstance))
	}
	for i, st := range rep.PerInstance {
		if st.Execs < 4000 {
			t.Errorf("instance %d execs = %d, want >= 4000", i, st.Execs)
		}
	}
	if rep.TotalExecs < 12000 {
		t.Errorf("TotalExecs = %d", rep.TotalExecs)
	}
	if rep.MaxEdges == 0 {
		t.Error("no coverage recorded")
	}
}

func TestCampaignSyncSharesCorpus(t *testing.T) {
	// A larger, partially gated target so two instances explore divergent
	// regions and have something to teach each other; a small sync target
	// converges so fast that every import is redundant.
	prog, err := target.Generate(target.GenSpec{
		Name:              "par-big",
		Seed:              23,
		NumFuncs:          40,
		BlocksPerFunc:     24,
		InputLen:          128,
		BranchFraction:    0.7,
		MagicCompares:     10,
		MagicWidth:        2, // occasionally solvable, so finds differ
		BonusBlocks:       8,
		GatedCallFraction: 0.3,
		Switches:          6,
		SwitchFanout:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	seeds := prog.SampleSeeds(rng.New(56), 4)
	c, err := NewCampaign(prog, Config{
		Instances: 2,
		SyncEvery: 3000,
		Fuzzer:    fuzzer.Config{Seed: 2, Scheme: fuzzer.SchemeBigMap},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunExecs(9000); err != nil {
		t.Fatal(err)
	}
	// After syncing, instances must have imported peer finds: their queues
	// should contain "sync"-provenance entries (unless one instance found
	// literally nothing new, which this target makes implausible).
	syncs := 0
	for _, f := range c.Instances() {
		for _, e := range f.Queue().Entries() {
			if e.FoundBy == "sync" {
				syncs++
			}
		}
	}
	if syncs == 0 {
		t.Error("no cross-pollinated entries after sync rounds")
	}
}

func TestCampaignSingleInstanceNoSync(t *testing.T) {
	prog, seeds := campaignTarget(t)
	c, err := NewCampaign(prog, Config{
		Instances: 1,
		SyncEvery: 2000,
		Fuzzer:    fuzzer.Config{Seed: 3},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunExecs(2000); err != nil {
		t.Fatal(err)
	}
	if got := c.Report().TotalExecs; got < 2000 {
		t.Errorf("TotalExecs = %d", got)
	}
}

func TestCampaignCrashUnion(t *testing.T) {
	prog, seeds := campaignTarget(t)
	c, err := NewCampaign(prog, Config{
		Instances: 2,
		SyncEvery: 10000,
		Fuzzer:    fuzzer.Config{Seed: 4, Scheme: fuzzer.SchemeBigMap},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunExecs(40000); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	best := 0
	for _, st := range rep.PerInstance {
		if st.UniqueCrashes > best {
			best = st.UniqueCrashes
		}
	}
	if rep.UniqueCrashes < best {
		t.Errorf("union %d < best instance %d", rep.UniqueCrashes, best)
	}
}

func TestCampaignMasterRunsDeterministic(t *testing.T) {
	prog, seeds := campaignTarget(t)
	c, err := NewCampaign(prog, Config{
		Instances:           2,
		SyncEvery:           1000,
		MasterDeterministic: true,
		Fuzzer:              fuzzer.Config{Seed: 5, HavocRounds: 4, SpliceRounds: 1},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunExecs(1000); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	// The master burns through deterministic stages, so with tiny havoc
	// budgets it executes far more cases per round than the secondary.
	if rep.PerInstance[0].Execs <= rep.PerInstance[1].Execs {
		t.Errorf("master execs %d <= secondary execs %d; deterministic stage not run",
			rep.PerInstance[0].Execs, rep.PerInstance[1].Execs)
	}
}

func TestCampaignRunFor(t *testing.T) {
	prog, seeds := campaignTarget(t)
	c, err := NewCampaign(prog, Config{
		Instances: 2,
		SyncEvery: 100000, // irrelevant: RunFor time-slices rounds
		Fuzzer:    fuzzer.Config{Seed: 6, Scheme: fuzzer.SchemeBigMap},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.RunFor(700 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 3*time.Second {
		t.Errorf("RunFor(700ms) took %v; time slicing broken", elapsed)
	}
	if got := c.Report().TotalExecs; got == 0 {
		t.Error("RunFor executed nothing")
	}
}

// TestCampaignVirginUnion pins the campaign-level union coverage: the sharded
// lock-free union and the single-lock reference must land on identical union
// state for the same campaign, the union must dominate every instance's own
// coverage, and both schemes' maps must route through the slot translation
// correctly (BigMap instances discover edges in different orders).
func TestCampaignVirginUnion(t *testing.T) {
	prog, seeds := campaignTarget(t)
	for _, scheme := range []fuzzer.Scheme{fuzzer.SchemeAFL, fuzzer.SchemeBigMap} {
		run := func(shards int) Report {
			c, err := NewCampaign(prog, Config{
				Instances:    3,
				SyncEvery:    2000,
				VirginShards: shards,
				Fuzzer:       fuzzer.Config{Seed: 7, Scheme: scheme},
			}, seeds)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.RunExecs(4000); err != nil {
				t.Fatal(err)
			}
			return c.Report()
		}
		locked := run(1)
		sharded := run(8)
		if locked.UnionEdges == 0 {
			t.Fatalf("%s: union recorded no coverage", scheme)
		}
		if locked.UnionEdges != sharded.UnionEdges {
			t.Fatalf("%s: locked union %d edges, sharded %d — implementations diverged",
				scheme, locked.UnionEdges, sharded.UnionEdges)
		}
		if locked.UnionEdges < locked.MaxEdges {
			t.Fatalf("%s: union %d < best instance %d", scheme, locked.UnionEdges, locked.MaxEdges)
		}
		off := run(0)
		if off.UnionEdges != 0 {
			t.Fatalf("%s: union disabled but UnionEdges = %d", scheme, off.UnionEdges)
		}
	}
}
