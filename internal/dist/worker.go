package dist

import (
	"fmt"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/telemetry"
)

// Worker drives one fuzzer instance's side of the sync protocol: it tracks
// what has already been pushed (queue cursor, crash-key set, last published
// virgin state) and turns each sync boundary into one Push and one Pull.
//
// A Worker holds only soft state. After a crash, revival or checkpoint
// resume, recreate it with NewWorker under the same name: the first Push
// re-sends the whole queue (absorbed server-side as duplicates), the first
// delta re-publishes the full virgin state (AND-idempotent), and Join
// resumes the sequence chain where the store left off — nothing about the
// Worker needs to be checkpointed.
//
// Not safe for concurrent use; like the fuzzer it wraps, a Worker belongs
// to one goroutine.
type Worker struct {
	f    *fuzzer.Fuzzer
	name string
	s    Syncer
	size int

	seq           uint64 // next push uses seq+1; advanced only on success
	pushedInputs  int    // queue entries already pushed
	pushedCrashes map[uint64]bool
	last          []byte // virgin state as of the last successful push

	// pending is a built-but-unacknowledged batch. A failed Push leaves it
	// in place and the next Push retries it verbatim under the same
	// sequence number: rebuilding would be unsound, because the store may
	// have accepted the original (response lost) and would answer the
	// replay with the stored receipt — entries added since would be marked
	// pushed without ever reaching the store.
	pending        *Batch
	pendingEntries int    // queue length the pending batch covers
	pendingSnap    []byte // virgin snapshot the pending delta publishes

	telSync    *telemetry.Histogram
	telPushed  *telemetry.Counter
	telDups    *telemetry.Counter
	telImports *telemetry.Counter
	telWords   *telemetry.Counter
	telUnion   *telemetry.Gauge
}

// NewWorker joins the syncer under name and wraps f for sync-boundary
// exchange. size is the campaign's coverage key space (the fuzzer
// template's defaulted map size) — the geometry deltas are published in.
// Telemetry handles come from f's registry and are nil-safe.
func NewWorker(f *fuzzer.Fuzzer, name string, s Syncer, size int) (*Worker, error) {
	if _, err := core.NewLockedVirginUnion(size); err != nil {
		return nil, fmt.Errorf("dist: worker map size %d: %w", size, err)
	}
	info, err := s.Join(name)
	if err != nil {
		return nil, fmt.Errorf("dist: join %q: %w", name, err)
	}
	reg := f.Telemetry()
	return &Worker{
		f:             f,
		name:          name,
		s:             s,
		size:          size,
		seq:           info.LastSeq,
		pushedCrashes: make(map[uint64]bool),
		telSync:       reg.Histogram("dist_sync_ns"),
		telPushed:     reg.Counter("dist_pushed_inputs_total"),
		telDups:       reg.Counter("dist_dup_inputs_total"),
		telImports:    reg.Counter("dist_imports_total"),
		telWords:      reg.Counter("dist_delta_words_total"),
		telUnion:      reg.Gauge("dist_union_edges"),
	}, nil
}

// Name returns the worker's campaign-unique name.
func (w *Worker) Name() string { return w.name }

// Syncer returns the syncer this worker exchanges through (for campaign-wide
// stats queries).
func (w *Worker) Syncer() Syncer { return w.s }

// Push publishes everything new since the last successful push: unseen
// queue entries, unseen crash buckets, and the virgin-delta of coverage
// words that changed. On error nothing is committed locally, so the next
// Push retries the same batch under the same sequence number — which the
// store treats idempotently.
func (w *Worker) Push() (Receipt, error) {
	start := w.telSync.Start()
	if w.pending == nil {
		entries := w.f.Queue().Entries()
		inputs := make([][]byte, 0, len(entries)-w.pushedInputs)
		for _, e := range entries[w.pushedInputs:] {
			inputs = append(inputs, e.Input)
		}
		var crashes []Crash
		for _, rec := range w.f.Crashes().Records() {
			if w.pushedCrashes[rec.Key] {
				continue
			}
			crashes = append(crashes, Crash{
				Key:        rec.Key,
				Site:       rec.Site,
				StackDepth: rec.StackDepth,
				Input:      rec.Input,
			})
		}
		snap := w.virginSnapshot()
		d := core.DiffVirginBytes(w.last, snap)
		var delta []byte
		if len(d.Words) > 0 {
			delta = core.EncodeVirginDelta(d)
		}
		w.pending = &Batch{
			Seq:     w.seq + 1,
			Inputs:  inputs,
			Crashes: crashes,
			Delta:   delta,
		}
		w.pendingEntries = len(entries)
		w.pendingSnap = snap
	}
	rcpt, err := w.s.Push(w.name, *w.pending)
	if err != nil {
		return Receipt{}, err
	}
	w.seq = rcpt.Seq
	w.pushedInputs = w.pendingEntries
	for _, cr := range w.pending.Crashes {
		w.pushedCrashes[cr.Key] = true
	}
	w.last = w.pendingSnap
	w.telPushed.Add(uint64(len(w.pending.Inputs)))
	w.telDups.Add(uint64(rcpt.DupInputs))
	w.telWords.Add(uint64(rcpt.DeltaWords))
	w.telUnion.Set(int64(rcpt.UnionDiscovered))
	w.pending, w.pendingSnap = nil, nil
	w.telSync.Done(start)
	return rcpt, nil
}

// Pull imports every peer input published since the last pull, keeping the
// ones that add local coverage (fuzzer.ImportInput — AFL-style corpus
// sync). Returns how many were kept.
func (w *Worker) Pull() (imported int, err error) {
	start := w.telSync.Start()
	pulled, err := w.s.Pull(w.name)
	if err != nil {
		return 0, err
	}
	for _, p := range pulled {
		if w.f.ImportInput(p.Input) {
			imported++
		}
	}
	w.telImports.Add(uint64(imported))
	w.telSync.Done(start)
	return imported, nil
}

// Sync is one full boundary: Push then Pull.
func (w *Worker) Sync() error {
	if _, err := w.Push(); err != nil {
		return err
	}
	_, err := w.Pull()
	return err
}

// virginSnapshot renders the fuzzer's current coverage as campaign-geometry
// virgin bytes, by folding its map into a fresh single-lock union (the
// CoverageMerger translation from per-instance dense slots to raw keys —
// the same path parallel campaigns use for their local union).
func (w *Worker) virginSnapshot() []byte {
	u, err := core.NewLockedVirginUnion(w.size)
	if err != nil {
		// Size was validated in NewWorker; an error here is unreachable.
		panic(fmt.Sprintf("dist: virgin snapshot: %v", err))
	}
	w.f.MergeVirginInto(u)
	return u.Snapshot()
}
