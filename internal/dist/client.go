package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is the wire Syncer: it speaks the v1 HTTP/JSON protocol to a
// bigmap-corpusd daemon (internal/corpusd). Transport failures, 5xx and 429
// responses are retried with doubling backoff — safe because pushes are
// idempotent under their sequence numbers — while 4xx protocol errors fail
// fast and map back onto the package sentinel errors via WireError.Code.
//
// A Client is safe for concurrent use by multiple workers (it holds no
// per-worker state; cursors live server-side).
type Client struct {
	base     string
	campaign string
	hc       *http.Client

	// Retries is how many times a retryable request is re-sent after the
	// first failure. Backoff is the pause before the first retry, doubling
	// per attempt (a 429's Retry-After, in seconds, overrides it when
	// longer). Both have defaults from NewClient.
	Retries int
	Backoff time.Duration

	sleep func(time.Duration) // time.Sleep, replaceable in tests
}

// NewClient returns a client for one campaign on one corpusd. baseURL is
// the daemon root (e.g. "http://127.0.0.1:7677"); campaign names the
// campaign, created on the daemon with EnsureCampaign.
func NewClient(baseURL, campaign string) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("dist: corpus URL %q: need scheme://host[:port]", baseURL)
	}
	if campaign == "" {
		return nil, fmt.Errorf("dist: empty campaign name")
	}
	return &Client{
		base:     strings.TrimRight(baseURL, "/"),
		campaign: campaign,
		hc:       &http.Client{Timeout: 30 * time.Second},
		Retries:  4,
		Backoff:  100 * time.Millisecond,
		sleep:    time.Sleep,
	}, nil
}

// EnsureCampaign creates the campaign if it does not exist, or verifies the
// existing one has the same map size (mismatch is an error — the daemon
// answers 409).
func (c *Client) EnsureCampaign(mapSize int) error {
	var info CampaignInfo
	return c.do("POST", "/v1/campaigns", CampaignRequest{Name: c.campaign, MapSize: mapSize}, &info)
}

// Join implements Syncer.
func (c *Client) Join(worker string) (JoinInfo, error) {
	var resp JoinResponse
	err := c.do("POST", c.path("join"), JoinRequest{Worker: worker}, &resp)
	if err != nil {
		return JoinInfo{}, err
	}
	return JoinInfo{LastSeq: resp.LastSeq, Cursor: resp.Cursor}, nil
}

// Push implements Syncer.
func (c *Client) Push(worker string, b Batch) (Receipt, error) {
	req := PushRequest{Worker: worker, Seq: b.Seq, Inputs: b.Inputs, Delta: b.Delta}
	for _, cr := range b.Crashes {
		req.Crashes = append(req.Crashes, WireCrash{
			Key: cr.Key, Site: cr.Site, StackDepth: cr.StackDepth, Input: cr.Input,
		})
	}
	var resp PushResponse
	if err := c.do("POST", c.path("push"), req, &resp); err != nil {
		return Receipt{}, err
	}
	return Receipt{
		Seq:             resp.Seq,
		NewInputs:       resp.NewInputs,
		DupInputs:       resp.DupInputs,
		NewCrashes:      resp.NewCrashes,
		DeltaWords:      resp.DeltaWords,
		UnionDiscovered: resp.UnionDiscovered,
	}, nil
}

// Pull implements Syncer.
func (c *Client) Pull(worker string) ([]Pulled, error) {
	var resp PullResponse
	if err := c.do("POST", c.path("pull"), PullRequest{Worker: worker}, &resp); err != nil {
		return nil, err
	}
	var out []Pulled
	for _, p := range resp.Inputs {
		out = append(out, Pulled{Hash: p.Hash, Input: p.Input})
	}
	return out, nil
}

// Stats implements Syncer.
func (c *Client) Stats() (Stats, error) {
	var resp StatsResponse
	if err := c.do("GET", c.path(""), nil, &resp); err != nil {
		return Stats{}, err
	}
	return Stats{
		MapSize:         resp.MapSize,
		Inputs:          resp.Inputs,
		Crashes:         resp.Crashes,
		Workers:         resp.Workers,
		Batches:         resp.Batches,
		DedupHits:       resp.DedupHits,
		DeltaWords:      resp.DeltaWords,
		UnionDiscovered: resp.UnionDiscovered,
	}, nil
}

func (c *Client) path(tail string) string {
	p := "/v1/campaigns/" + url.PathEscape(c.campaign)
	if tail != "" {
		p += "/" + tail
	}
	return p
}

// do sends one JSON request with the retry policy and decodes the 2xx
// response into out.
func (c *Client) do(method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("dist: marshal %s: %w", path, err)
		}
	}
	backoff := c.Backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > c.Retries {
				return fmt.Errorf("dist: %s %s: giving up after %d attempts: %w",
					method, path, attempt, lastErr)
			}
			c.sleep(backoff)
			backoff *= 2
		}
		retryable, retryAfter, err := c.once(method, path, body, out)
		if err == nil {
			return nil
		}
		if !retryable {
			return err
		}
		if retryAfter > backoff {
			backoff = retryAfter
		}
		lastErr = err
	}
}

// once performs a single HTTP exchange. retryable reports whether the
// failure is worth re-sending (transport error, 5xx, 429); retryAfter is
// the server-requested pause from a 429, zero otherwise.
func (c *Client) once(method, path string, body []byte, out any) (retryable bool, retryAfter time.Duration, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return false, 0, fmt.Errorf("dist: %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return true, 0, fmt.Errorf("dist: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close() //bigmap:err-ok response body close on a fully-read body has nothing left to fail
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return true, 0, fmt.Errorf("dist: %s %s: read response: %w", method, path, err)
	}
	if resp.StatusCode/100 == 2 {
		if out == nil {
			return false, 0, nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			return false, 0, fmt.Errorf("dist: %s %s: decode response: %w", method, path, err)
		}
		return false, 0, nil
	}
	var we WireError
	//bigmap:err-ok error bodies may be non-JSON (proxies); the status code alone is actionable
	_ = json.Unmarshal(data, &we)
	msg := we.Error
	if msg == "" {
		msg = strings.TrimSpace(string(data))
	}
	httpErr := fmt.Errorf("dist: %s %s: HTTP %d: %s", method, path, resp.StatusCode, msg)
	switch we.Code {
	case CodeUnknownWorker:
		return false, 0, fmt.Errorf("%w (%s)", ErrUnknownWorker, msg)
	case CodeSeqGap:
		return false, 0, fmt.Errorf("%w (%s)", ErrSeqGap, msg)
	case CodeSizeMismatch:
		return false, 0, fmt.Errorf("%w (%s)", ErrSizeMismatch, msg)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// Retry-After is delay-seconds (documented in docs/CLI.md).
		if secs, perr := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
		return true, retryAfter, httpErr
	}
	return resp.StatusCode/100 == 5, 0, httpErr
}
