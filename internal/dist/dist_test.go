package dist

import (
	"bytes"
	"errors"
	"testing"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

func testDelta(t *testing.T, size int, hits map[int]byte) []byte {
	t.Helper()
	cur := make([]byte, size)
	for i := range cur {
		cur[i] = 0xFF
	}
	for pos, b := range hits {
		cur[pos] &= b
	}
	return core.EncodeVirginDelta(core.DiffVirginBytes(nil, cur))
}

func TestHubDedupAndUnion(t *testing.T) {
	h, err := NewHub(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"a", "b"} {
		info, err := h.Join(w)
		if err != nil || info.LastSeq != 0 || info.Cursor != 0 {
			t.Fatalf("join %s: %+v, %v", w, info, err)
		}
	}
	r1, err := h.Push("a", Batch{
		Seq:     1,
		Inputs:  [][]byte{[]byte("one"), []byte("two")},
		Crashes: []Crash{{Key: 9, Site: 3, StackDepth: 2, Input: []byte("boom")}},
		Delta:   testDelta(t, 64, map[int]byte{0: 0x7F, 5: 0x00}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r1.NewInputs != 2 || r1.DupInputs != 0 || r1.NewCrashes != 1 || r1.UnionDiscovered != 2 {
		t.Fatalf("receipt 1: %+v", r1)
	}
	// b pushes one duplicate, one new input, the same crash bucket, and a
	// delta that overlaps one word and adds another key.
	r2, err := h.Push("b", Batch{
		Seq:     1,
		Inputs:  [][]byte{[]byte("two"), []byte("three")},
		Crashes: []Crash{{Key: 9, Site: 3, StackDepth: 2, Input: []byte("boom")}},
		Delta:   testDelta(t, 64, map[int]byte{5: 0x00, 9: 0xFE}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r2.NewInputs != 1 || r2.DupInputs != 1 || r2.NewCrashes != 0 || r2.UnionDiscovered != 3 {
		t.Fatalf("receipt 2: %+v", r2)
	}
	// a pulls only b's genuinely new input; b pulls a's two.
	gotA, err := h.Pull("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotA) != 1 || string(gotA[0].Input) != "three" || gotA[0].Hash != HashInput([]byte("three")) {
		t.Fatalf("a pulled %+v", gotA)
	}
	gotB, err := h.Pull("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotB) != 2 || string(gotB[0].Input) != "one" || string(gotB[1].Input) != "two" {
		t.Fatalf("b pulled %+v", gotB)
	}
	// Cursors advanced: immediate re-pull is empty.
	if again, _ := h.Pull("a"); len(again) != 0 {
		t.Fatalf("re-pull delivered %d inputs", len(again))
	}
	st, err := h.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want := Stats{MapSize: 64, Inputs: 3, Crashes: 1, Workers: 2,
		Batches: 2, DedupHits: 1, DeltaWords: 3, UnionDiscovered: 3}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
}

func TestHubSeqProtocol(t *testing.T) {
	h, err := NewHub(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Push("ghost", Batch{Seq: 1}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("push before join: %v", err)
	}
	if _, err := h.Pull("ghost"); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("pull before join: %v", err)
	}
	if _, err := h.Join("w"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Push("w", Batch{Seq: 3}); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap: %v", err)
	}
	r1, err := h.Push("w", Batch{Seq: 1, Inputs: [][]byte{[]byte("x")}})
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the accepted sequence returns the stored receipt and does
	// not double-count.
	replay, err := h.Push("w", Batch{Seq: 1, Inputs: [][]byte{[]byte("x")}})
	if err != nil || replay != r1 {
		t.Fatalf("replay: %+v, %v (want %+v)", replay, err, r1)
	}
	st, _ := h.Stats()
	if st.Inputs != 1 || st.Batches != 1 {
		t.Fatalf("replay double-counted: %+v", st)
	}
	// Re-join resumes the chain.
	info, err := h.Join("w")
	if err != nil || info.LastSeq != 1 {
		t.Fatalf("re-join: %+v, %v", info, err)
	}
	// A delta sized for a different map is rejected without burning the seq.
	if _, err := h.Push("w", Batch{Seq: 2, Delta: testDelta(t, 128, map[int]byte{0: 0})}); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("size mismatch: %v", err)
	}
	if _, err := h.Push("w", Batch{Seq: 2}); err != nil {
		t.Fatalf("seq burned by rejected batch: %v", err)
	}
}

func TestHubRejectsCorruptDelta(t *testing.T) {
	h, err := NewHub(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Join("w"); err != nil {
		t.Fatal(err)
	}
	bad := testDelta(t, 64, map[int]byte{1: 0})
	bad[len(bad)-1] ^= 1
	if _, err := h.Push("w", Batch{Seq: 1, Delta: bad}); !errors.Is(err, core.ErrDeltaCorrupt) {
		t.Fatalf("corrupt delta: %v", err)
	}
}

func workerFuzzer(t *testing.T, seed uint64) *fuzzer.Fuzzer {
	t.Helper()
	prog, err := target.Generate(target.GenSpec{
		Name:           "dist",
		Seed:           21,
		NumFuncs:       8,
		BlocksPerFunc:  16,
		InputLen:       48,
		BranchFraction: 0.6,
		CrashSites:     2,
		CrashDepth:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fuzzer.New(prog, fuzzer.Config{Seed: seed, Scheme: fuzzer.SchemeBigMap})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range prog.SampleSeeds(rng.New(55), 4) {
		if err := f.AddSeed(s); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestWorkerSync(t *testing.T) {
	h, err := NewHub(core.MapSize64K, nil)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := workerFuzzer(t, 1), workerFuzzer(t, 2)
	wa, err := NewWorker(fa, "a", h, core.MapSize64K)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := NewWorker(fb, "b", h, core.MapSize64K)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := fa.RunExecs(2000); err != nil {
			t.Fatal(err)
		}
		if err := fb.RunExecs(2000); err != nil {
			t.Fatal(err)
		}
		for _, w := range []*Worker{wa, wb} {
			if _, err := w.Push(); err != nil {
				t.Fatal(err)
			}
		}
		for _, w := range []*Worker{wa, wb} {
			if _, err := w.Pull(); err != nil {
				t.Fatal(err)
			}
		}
	}
	rcpt, err := wa.Push()
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Inputs < fa.Queue().Len() {
		t.Fatalf("store has %d inputs, worker a alone queued %d", st.Inputs, fa.Queue().Len())
	}
	if st.UnionDiscovered < fa.Stats().EdgesDiscovered {
		t.Fatalf("union %d below instance coverage %d", st.UnionDiscovered, fa.Stats().EdgesDiscovered)
	}
	if rcpt.UnionDiscovered != st.UnionDiscovered {
		t.Fatalf("receipt union %d != stats union %d", rcpt.UnionDiscovered, st.UnionDiscovered)
	}
	// The second push of an unchanged worker publishes nothing.
	r2, err := wa.Push()
	if err != nil {
		t.Fatal(err)
	}
	if r2.NewInputs+r2.DupInputs+r2.DeltaWords != 0 {
		t.Fatalf("idle push published %+v", r2)
	}
}

// flakySyncer fails the first Push attempt after the store accepted it
// (lost response), exercising the worker's pending-batch replay path.
type flakySyncer struct {
	*Hub
	failNext bool
}

func (s *flakySyncer) Push(worker string, b Batch) (Receipt, error) {
	rcpt, err := s.Hub.Push(worker, b)
	if err != nil {
		return rcpt, err
	}
	if s.failNext {
		s.failNext = false
		return Receipt{}, errors.New("injected: response lost")
	}
	return rcpt, nil
}

func TestWorkerPushRetryIsLossless(t *testing.T) {
	h, err := NewHub(core.MapSize64K, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := &flakySyncer{Hub: h, failNext: true}
	f := workerFuzzer(t, 3)
	w, err := NewWorker(f, "w", fs, core.MapSize64K)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunExecs(2000); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Push(); err == nil {
		t.Fatal("injected failure did not surface")
	}
	// The retry replays the pending batch; the store answers with the
	// stored receipt and nothing is lost or double-counted.
	rcpt, err := w.Push()
	if err != nil {
		t.Fatal(err)
	}
	st, _ := h.Stats()
	if st.Batches != 1 || st.Inputs != rcpt.NewInputs {
		t.Fatalf("retry diverged: stats %+v, receipt %+v", st, rcpt)
	}
	if rcpt.NewInputs != f.Queue().Len() {
		t.Fatalf("store holds %d of %d queue entries", rcpt.NewInputs, f.Queue().Len())
	}
	// Worker state committed exactly once: an idle re-push is empty.
	r2, err := w.Push()
	if err != nil {
		t.Fatal(err)
	}
	if r2.NewInputs+r2.DupInputs+r2.DeltaWords != 0 {
		t.Fatalf("post-retry push published %+v", r2)
	}
}

func TestHubUnionMatchesDirectMerge(t *testing.T) {
	// Pushing deltas through the hub must land the same union state as
	// merging the workers' virgin maps directly.
	h, err := NewHub(core.MapSize64K, nil)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := workerFuzzer(t, 1), workerFuzzer(t, 2)
	wa, _ := NewWorker(fa, "a", h, core.MapSize64K)
	wb, _ := NewWorker(fb, "b", h, core.MapSize64K)
	for _, f := range []*fuzzer.Fuzzer{fa, fb} {
		if err := f.RunExecs(3000); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range []*Worker{wa, wb} {
		if _, err := w.Push(); err != nil {
			t.Fatal(err)
		}
	}
	direct, err := core.NewLockedVirginUnion(core.MapSize64K)
	if err != nil {
		t.Fatal(err)
	}
	fa.MergeVirginInto(direct)
	fb.MergeVirginInto(direct)
	if !bytes.Equal(h.UnionSnapshot(), direct.Snapshot()) {
		t.Fatal("hub union diverged from direct merge")
	}
	st, _ := h.Stats()
	if st.UnionDiscovered != direct.CountDiscovered() {
		t.Fatalf("union count %d != direct %d", st.UnionDiscovered, direct.CountDiscovered())
	}
}
