// Package dist generalizes the campaign sync boundary across process and
// machine lines. internal/parallel synchronizes goroutines by cross-polling
// queues in memory; this package abstracts that exchange behind a Syncer —
// a content-addressed rendezvous every worker pushes its discoveries into
// and pulls its peers' discoveries out of — with two implementations:
//
//   - Hub: in memory, for single-process campaigns (and as the reference
//     semantics the wire implementation is differentially tested against).
//   - Client: HTTP/JSON against a bigmap-corpusd daemon (internal/corpusd),
//     so N bigmap-fuzz processes on M machines drive one campaign.
//
// The unit of exchange is a Batch: the worker's new queue entries, its new
// crash buckets, and a virgin-map delta (core.VirginDelta — only the 8-byte
// words that changed since the worker's previous publish, not the whole
// map). Inputs and crashes are deduplicated by content hash server-side, so
// the common case of two workers finding the same input costs one stored
// copy and a dedup counter bump. Deltas AND-merge into the campaign union —
// commutative, associative, idempotent — so any interleaving of pushes from
// any set of workers converges to the same union coverage.
//
// Batches carry a per-worker sequence number and pushes are idempotent:
// replaying an already-accepted sequence returns the stored receipt instead
// of double-counting, which makes retry-after-timeout safe and lets a
// restarted worker (fresh local state, same name) re-push its whole corpus
// and have the store absorb it as duplicates. Join returns the server-side
// sequence cursor so the restarted worker continues the chain where it left
// off. The wire store additionally records every accepted batch in a
// hash-chained ledger (see internal/corpusd) so campaign progress is
// tamper-evident and replayable.
package dist

import "errors"

// Syncer is the campaign-wide sync boundary: a rendezvous workers join,
// push discoveries to, and pull peer discoveries from. Implementations must
// be safe for concurrent use by multiple workers.
type Syncer interface {
	// Join registers (or re-attaches) a worker by name and returns its
	// server-side cursors. Worker names must be unique within a campaign:
	// re-joining an existing name resumes that worker's sequence chain and
	// pull cursor, which is the restart path — two live workers sharing a
	// name will trample each other's sequence numbers and fail with
	// ErrSeqGap.
	Join(worker string) (JoinInfo, error)
	// Push submits one batch. b.Seq must be the worker's next sequence
	// number (JoinInfo.LastSeq+1, then +1 per accepted batch). Replaying
	// the last accepted sequence returns its stored receipt; any other gap
	// is ErrSeqGap.
	Push(worker string, b Batch) (Receipt, error)
	// Pull returns every input pushed by other workers since this worker's
	// last pull, in global arrival order, and advances the pull cursor.
	Pull(worker string) ([]Pulled, error)
	// Stats snapshots the campaign-wide store counters.
	Stats() (Stats, error)
}

// Syncer errors. The wire client maps HTTP failure responses back onto
// these, so callers can errors.Is across both implementations.
var (
	// ErrUnknownWorker is returned for Push/Pull from a name that never
	// joined.
	ErrUnknownWorker = errors.New("dist: unknown worker (join first)")
	// ErrSeqGap is returned when a pushed batch's sequence number is
	// neither the next expected one nor a replay of the last accepted one.
	ErrSeqGap = errors.New("dist: batch sequence gap")
	// ErrSizeMismatch is returned when a batch's virgin delta describes a
	// different map geometry than the campaign's.
	ErrSizeMismatch = errors.New("dist: virgin delta size mismatch")
)

// JoinInfo is a worker's server-side resume state.
type JoinInfo struct {
	// LastSeq is the highest batch sequence the store has accepted from
	// this worker (0 for a new worker); the next push must use LastSeq+1.
	LastSeq uint64
	// Cursor is the worker's pull position in the global input log.
	Cursor int
}

// Crash is one crash bucket in a batch, carrying the Crashwalk-style dedup
// key computed by the worker (internal/crash.KeyOf) plus the fields triage
// output needs.
type Crash struct {
	Key        uint64
	Site       uint32
	StackDepth int
	Input      []byte
}

// Batch is one worker's sync-boundary publish.
type Batch struct {
	// Seq is the worker's batch sequence number (1-based, dense).
	Seq uint64
	// Inputs holds the worker's queue entries not yet pushed, in queue
	// order.
	Inputs [][]byte
	// Crashes holds crash buckets not yet pushed.
	Crashes []Crash
	// Delta is an encoded core.VirginDelta carrying the worker's coverage
	// words that changed since its previous push; nil when nothing changed.
	Delta []byte
}

// Receipt is the store's acknowledgement of an accepted (or replayed)
// batch.
type Receipt struct {
	// Seq echoes the accepted batch sequence.
	Seq uint64
	// NewInputs and DupInputs split the batch's inputs into first-seen and
	// content-duplicate.
	NewInputs int
	DupInputs int
	// NewCrashes counts crash buckets first seen in this batch.
	NewCrashes int
	// DeltaWords counts the virgin-delta words merged.
	DeltaWords int
	// UnionDiscovered is the campaign union's discovered-key count after
	// the merge.
	UnionDiscovered int
}

// Pulled is one input delivered by Pull.
type Pulled struct {
	// Hash is the input's content address (hex SHA-256).
	Hash string
	// Input is the input bytes.
	Input []byte
}

// Stats is a point-in-time snapshot of a campaign store.
type Stats struct {
	// MapSize is the campaign's coverage key space.
	MapSize int
	// Inputs is the number of distinct stored inputs.
	Inputs int
	// Crashes is the number of distinct crash buckets.
	Crashes int
	// Workers is the number of joined workers.
	Workers int
	// Batches counts accepted batches (replays excluded).
	Batches int
	// DedupHits counts pushed inputs that were already stored.
	DedupHits uint64
	// DeltaWords counts virgin-delta words merged over the campaign's
	// lifetime.
	DeltaWords uint64
	// UnionDiscovered is the campaign union's discovered-key count.
	UnionDiscovered int
}
