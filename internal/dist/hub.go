package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/telemetry"
)

// HashInput returns an input's content address: lowercase hex SHA-256 of
// its bytes. Both Syncer implementations and the corpusd store use this one
// function, so addresses agree across process lines.
func HashInput(input []byte) string {
	sum := sha256.Sum256(input)
	return hex.EncodeToString(sum[:])
}

// Hub is the in-memory Syncer: the single-process rendezvous for campaign
// instances in one address space, and the reference semantics for the wire
// path (internal/corpusd implements the same contract with persistence and
// a ledger on top). All methods are safe for concurrent use.
type Hub struct {
	mu sync.Mutex

	size       int                     // immutable after New
	inputs     map[string][]byte       // guarded by mu; content hash -> bytes
	order      []pushedInput           // guarded by mu; global arrival order
	crashes    map[uint64]Crash        // guarded by mu; dedup key -> bucket
	union      []byte                  // guarded by mu; campaign virgin bytes
	discovered int                     // guarded by mu; union discovered keys
	workers    map[string]*workerState // guarded by mu
	batches    int                     // guarded by mu; accepted batches
	dedupHits  uint64                  // guarded by mu
	deltaWords uint64                  // guarded by mu

	// Telemetry mirrors; atomic and nil-safe, deliberately outside mu.
	telBatches *telemetry.Counter
	telDedup   *telemetry.Counter
	telWords   *telemetry.Counter
	telUnion   *telemetry.Gauge
}

// pushedInput is one slot of the global arrival log: which input (by hash)
// and which worker pushed it first.
type pushedInput struct {
	hash string
	src  string
}

// workerState is one joined worker's server-side cursors.
type workerState struct {
	cursor      int     // guarded by mu (Hub.mu); pull position in order
	lastSeq     uint64  // guarded by mu (Hub.mu); highest accepted batch seq
	lastReceipt Receipt // guarded by mu (Hub.mu); receipt for lastSeq replays
}

// NewHub creates an in-memory campaign store for the given coverage key
// space. reg may be nil (telemetry off).
func NewHub(size int, reg *telemetry.Registry) (*Hub, error) {
	if _, err := core.NewLockedVirginUnion(size); err != nil {
		return nil, fmt.Errorf("dist: hub map size %d: %w", size, err)
	}
	union := make([]byte, size)
	for i := range union {
		union[i] = 0xFF
	}
	return &Hub{
		size:       size,
		inputs:     make(map[string][]byte),
		crashes:    make(map[uint64]Crash),
		union:      union,
		workers:    make(map[string]*workerState),
		telBatches: reg.Counter("dist_hub_batches_total"),
		telDedup:   reg.Counter("dist_hub_dedup_hits_total"),
		telWords:   reg.Counter("dist_hub_delta_words_total"),
		telUnion:   reg.Gauge("dist_hub_union_edges"),
	}, nil
}

// Join registers worker (or re-attaches to its existing state).
func (h *Hub) Join(worker string) (JoinInfo, error) {
	if worker == "" {
		return JoinInfo{}, fmt.Errorf("dist: empty worker name")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	w := h.workers[worker]
	if w == nil {
		w = &workerState{}
		h.workers[worker] = w
	}
	return JoinInfo{LastSeq: w.lastSeq, Cursor: w.cursor}, nil
}

// Push accepts one batch: dedups inputs and crashes by content, AND-merges
// the virgin delta into the campaign union, and returns the receipt.
// Replaying the last accepted sequence returns its stored receipt.
func (h *Hub) Push(worker string, b Batch) (Receipt, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w := h.workers[worker]
	if w == nil {
		return Receipt{}, fmt.Errorf("%w: %q", ErrUnknownWorker, worker)
	}
	if b.Seq == w.lastSeq && b.Seq != 0 {
		return w.lastReceipt, nil
	}
	if b.Seq != w.lastSeq+1 {
		return Receipt{}, fmt.Errorf("%w: worker %q pushed seq %d, want %d",
			ErrSeqGap, worker, b.Seq, w.lastSeq+1)
	}
	rcpt, err := h.applyLocked(worker, b)
	if err != nil {
		return Receipt{}, err
	}
	w.lastSeq = b.Seq
	w.lastReceipt = rcpt
	return rcpt, nil
}

// applyLocked folds a sequence-validated batch into the store.
func (h *Hub) applyLocked(worker string, b Batch) (Receipt, error) {
	rcpt := Receipt{Seq: b.Seq}
	var d core.VirginDelta
	if len(b.Delta) > 0 {
		var err error
		d, err = core.DecodeVirginDelta(b.Delta)
		if err != nil {
			return Receipt{}, fmt.Errorf("dist: worker %q delta: %w", worker, err)
		}
		if d.Size != h.size {
			return Receipt{}, fmt.Errorf("%w: delta for %d-key map, campaign has %d",
				ErrSizeMismatch, d.Size, h.size)
		}
	}
	for _, in := range b.Inputs {
		hash := HashInput(in)
		if _, ok := h.inputs[hash]; ok {
			rcpt.DupInputs++
			h.dedupHits++
			continue
		}
		h.inputs[hash] = append([]byte(nil), in...)
		h.order = append(h.order, pushedInput{hash: hash, src: worker})
		rcpt.NewInputs++
	}
	for _, cr := range b.Crashes {
		if _, ok := h.crashes[cr.Key]; ok {
			continue
		}
		cr.Input = append([]byte(nil), cr.Input...)
		h.crashes[cr.Key] = cr
		rcpt.NewCrashes++
	}
	if len(d.Words) > 0 {
		disc, err := d.Apply(h.union)
		if err != nil {
			return Receipt{}, fmt.Errorf("dist: worker %q delta: %w", worker, err)
		}
		h.discovered += disc
		h.deltaWords += uint64(len(d.Words))
		rcpt.DeltaWords = len(d.Words)
	}
	h.batches++
	rcpt.UnionDiscovered = h.discovered
	h.telBatches.Inc()
	h.telDedup.Add(uint64(rcpt.DupInputs))
	h.telWords.Add(uint64(rcpt.DeltaWords))
	h.telUnion.Set(int64(h.discovered))
	return rcpt, nil
}

// Pull delivers every input pushed by other workers since this worker's
// last pull, in global arrival order. Inputs first pushed by the puller
// itself are skipped — the puller already has them — which mirrors the
// in-memory campaign's i != j cross-polling.
func (h *Hub) Pull(worker string) ([]Pulled, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w := h.workers[worker]
	if w == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorker, worker)
	}
	var out []Pulled
	for _, p := range h.order[w.cursor:] {
		if p.src == worker {
			continue
		}
		out = append(out, Pulled{
			Hash:  p.hash,
			Input: append([]byte(nil), h.inputs[p.hash]...),
		})
	}
	w.cursor = len(h.order)
	return out, nil
}

// Stats snapshots the store counters.
func (h *Hub) Stats() (Stats, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Stats{
		MapSize:         h.size,
		Inputs:          len(h.inputs),
		Crashes:         len(h.crashes),
		Workers:         len(h.workers),
		Batches:         h.batches,
		DedupHits:       h.dedupHits,
		DeltaWords:      h.deltaWords,
		UnionDiscovered: h.discovered,
	}, nil
}

// UnionSnapshot copies out the campaign union's virgin bytes (0xFF =
// undiscovered), for tests and reporting.
func (h *Hub) UnionSnapshot() []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]byte(nil), h.union...)
}

// Crashes returns the deduplicated crash buckets in unspecified order.
func (h *Hub) Crashes() []Crash {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Crash, 0, len(h.crashes))
	//bigmap:nondeterministic-ok inspection accessor; callers sort if they need stable order
	for _, cr := range h.crashes {
		out = append(out, cr)
	}
	return out
}
