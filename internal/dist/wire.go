package dist

// Wire DTOs for the v1 corpus-service protocol (docs/DISTRIBUTED.md). Both
// the dist.Client and the internal/corpusd server marshal through these
// types, so the two sides cannot drift. encoding/json renders []byte as
// base64, which is the wire form for all input bytes and encoded deltas.

// WireError is the JSON body of every non-2xx response. Code carries a
// stable machine-readable cause that the client maps back onto the package
// sentinel errors.
type WireError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Error codes carried in WireError.Code.
const (
	CodeUnknownWorker = "unknown_worker"
	CodeSeqGap        = "seq_gap"
	CodeSizeMismatch  = "size_mismatch"
)

// CampaignRequest creates (or idempotently re-asserts) a campaign.
type CampaignRequest struct {
	Name    string `json:"name"`
	MapSize int    `json:"map_size"`
}

// CampaignInfo describes one campaign.
type CampaignInfo struct {
	Name    string `json:"name"`
	MapSize int    `json:"map_size"`
	Created bool   `json:"created,omitempty"`
}

// JoinRequest attaches a worker to a campaign.
type JoinRequest struct {
	Worker string `json:"worker"`
}

// JoinResponse is the worker's server-side resume state.
type JoinResponse struct {
	LastSeq uint64 `json:"last_seq"`
	Cursor  int    `json:"cursor"`
}

// WireCrash is one crash bucket on the wire.
type WireCrash struct {
	Key        uint64 `json:"key"`
	Site       uint32 `json:"site"`
	StackDepth int    `json:"stack_depth"`
	Input      []byte `json:"input,omitempty"`
}

// PushRequest submits one batch.
type PushRequest struct {
	Worker  string      `json:"worker"`
	Seq     uint64      `json:"seq"`
	Inputs  [][]byte    `json:"inputs,omitempty"`
	Crashes []WireCrash `json:"crashes,omitempty"`
	Delta   []byte      `json:"delta,omitempty"`
}

// PushResponse is the receipt for an accepted (or replayed) batch.
type PushResponse struct {
	Seq             uint64 `json:"seq"`
	NewInputs       int    `json:"new_inputs"`
	DupInputs       int    `json:"dup_inputs"`
	NewCrashes      int    `json:"new_crashes"`
	DeltaWords      int    `json:"delta_words"`
	UnionDiscovered int    `json:"union_edges"`
}

// PullRequest asks for peer inputs since the worker's cursor.
type PullRequest struct {
	Worker string `json:"worker"`
}

// WirePulled is one delivered input.
type WirePulled struct {
	Hash  string `json:"hash"`
	Input []byte `json:"input"`
}

// PullResponse delivers peer inputs in global arrival order.
type PullResponse struct {
	Inputs []WirePulled `json:"inputs"`
}

// StatsResponse snapshots a campaign store.
type StatsResponse struct {
	MapSize         int    `json:"map_size"`
	Inputs          int    `json:"inputs"`
	Crashes         int    `json:"crashes"`
	Workers         int    `json:"workers"`
	Batches         int    `json:"batches"`
	DedupHits       uint64 `json:"dedup_hits"`
	DeltaWords      uint64 `json:"delta_words"`
	UnionDiscovered int    `json:"union_edges"`
}
