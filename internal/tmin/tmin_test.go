package tmin

import (
	"errors"
	"testing"

	"github.com/bigmap/bigmap/internal/target"
)

// crashProgram crashes iff input[4] == 'X' && input[9] == 'Y'; everything
// else in the input is irrelevant padding.
func crashProgram() *target.Program {
	return &target.Program{
		Name:     "tmin",
		InputLen: 16,
		Funcs: []target.Func{{Blocks: []target.Block{
			{ID: 1, Cost: 1, Node: target.Node{Kind: target.KindCompareByte, Pos: 4, Val: 'X', A: 1, B: 3}},
			{ID: 2, Cost: 1, Node: target.Node{Kind: target.KindCompareByte, Pos: 9, Val: 'Y', A: 2, B: 3}},
			{ID: 3, Cost: 1, Node: target.Node{Kind: target.KindCrash}},
			{ID: 4, Cost: 1, Node: target.Node{Kind: target.KindReturn}},
		}}},
	}
}

func TestMinimizeRejectsBenignInput(t *testing.T) {
	m := New(crashProgram(), 0, 0)
	if _, _, err := m.Minimize(make([]byte, 16)); !errors.Is(err, ErrNotACrash) {
		t.Errorf("err = %v, want ErrNotACrash", err)
	}
}

func TestMinimizeShrinksAndNormalizes(t *testing.T) {
	m := New(crashProgram(), 0, 0)
	input := []byte("qqqqXqqqqYzzzzzz") // crash witness with noise
	out, stats, err := m.Minimize(input)
	if err != nil {
		t.Fatal(err)
	}
	if stats.InLen != 16 {
		t.Errorf("InLen = %d", stats.InLen)
	}
	// Positions 4 and 9 must survive; the minimal witness is 10 bytes
	// (indices 0..9) since trailing bytes are droppable but leading
	// positions shift semantics when removed.
	if stats.OutLen != 10 {
		t.Errorf("OutLen = %d, want 10 (indices 0..9), output %q", stats.OutLen, out)
	}
	if out[4] != 'X' || out[9] != 'Y' {
		t.Errorf("minimized witness lost the crash condition: %q", out)
	}
	// All the other bytes normalize to the filler.
	for i, b := range out {
		if i == 4 || i == 9 {
			continue
		}
		if b != 'A' {
			t.Errorf("byte %d = %q, want normalized 'A'", i, b)
		}
	}
	if stats.NormalizedBytes == 0 {
		t.Error("no bytes normalized")
	}
	// The minimized input must still crash in the same bucket.
	m2 := New(crashProgram(), 0, 0)
	var s2 Stats
	k, ok := m2.crashKey(out, &s2)
	if !ok || k != stats.Key {
		t.Error("minimized input changed the crash bucket")
	}
}

func TestMinimizeRespectsExecBudget(t *testing.T) {
	m := New(crashProgram(), 0, 10)
	input := []byte("qqqqXqqqqYzzzzzz")
	_, stats, err := m.Minimize(input)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Execs > 12 {
		t.Errorf("spent %d execs with a budget of 10", stats.Execs)
	}
}

func TestMinimizeAlreadyMinimal(t *testing.T) {
	m := New(crashProgram(), 0, 0)
	minimal := []byte("AAAAXAAAAY")
	out, stats, err := m.Minimize(minimal)
	if err != nil {
		t.Fatal(err)
	}
	if stats.OutLen != 10 || out[4] != 'X' || out[9] != 'Y' {
		t.Errorf("already-minimal input degraded: %q", out)
	}
}

func TestMinimizePreservesDifferentBuckets(t *testing.T) {
	// Two crash sites; minimization of a site-A witness must not drift to
	// site B.
	prog := &target.Program{
		Name:     "twosites",
		InputLen: 8,
		Funcs: []target.Func{{Blocks: []target.Block{
			{ID: 1, Cost: 1, Node: target.Node{Kind: target.KindCompareByte, Pos: 0, Val: 'a', A: 1, B: 2}},
			{ID: 2, Cost: 1, Node: target.Node{Kind: target.KindCrash}},
			{ID: 3, Cost: 1, Node: target.Node{Kind: target.KindCompareByte, Pos: 1, Val: 'b', A: 3, B: 4}},
			{ID: 4, Cost: 1, Node: target.Node{Kind: target.KindCrash}},
			{ID: 5, Cost: 1, Node: target.Node{Kind: target.KindReturn}},
		}}},
	}
	m := New(prog, 0, 0)
	out, stats, err := m.Minimize([]byte{'z', 'b', 0, 0, 0, 0, 0, 0}) // crashes at site 4
	if err != nil {
		t.Fatal(err)
	}
	// The witness must keep input[1]=='b' and must NOT become input[0]=='a'.
	if len(out) < 2 || out[1] != 'b' {
		t.Errorf("witness lost its bucket condition: %q", out)
	}
	if out[0] == 'a' {
		t.Error("minimization drifted to a different crash site")
	}
	_ = stats
}
