// Package tmin minimizes crashing inputs, the role afl-tmin plays in an AFL
// workflow: shrink and normalize a reproducer while preserving the crash
// bucket (call stack + faulting address), so triage reads a minimal witness
// rather than a havoc-mangled blob.
package tmin

import (
	"errors"

	"github.com/bigmap/bigmap/internal/crash"
	"github.com/bigmap/bigmap/internal/target"
)

// ErrNotACrash is returned when the input to minimize does not crash at all.
var ErrNotACrash = errors.New("tmin: input does not crash")

// DefaultMaxExecs bounds a minimization run.
const DefaultMaxExecs = 4096

// Stats reports what minimization achieved.
type Stats struct {
	// InLen and OutLen are the input sizes before and after.
	InLen, OutLen int
	// NormalizedBytes counts bytes rewritten to the filler value.
	NormalizedBytes int
	// Execs is the number of executions spent.
	Execs int
	// Key identifies the preserved crash bucket.
	Key uint64
}

// Minimizer owns the replay machinery. Not safe for concurrent use.
type Minimizer struct {
	interp   *target.Interp
	budget   uint64
	maxExecs int
}

// New creates a minimizer for prog. budget is the per-execution cycle budget
// (0 = 1<<22); maxExecs bounds the whole minimization (0 = DefaultMaxExecs).
func New(prog *target.Program, budget uint64, maxExecs int) *Minimizer {
	if budget == 0 {
		budget = 1 << 22
	}
	if maxExecs == 0 {
		maxExecs = DefaultMaxExecs
	}
	return &Minimizer{
		interp:   target.NewInterp(prog),
		budget:   budget,
		maxExecs: maxExecs,
	}
}

// crashKey replays input and returns its crash bucket, or ok=false for
// non-crashing inputs.
func (m *Minimizer) crashKey(input []byte, stats *Stats) (uint64, bool) {
	stats.Execs++
	res := m.interp.Run(input, target.NopTracer{}, m.budget)
	if res.Status != target.StatusCrash {
		return 0, false
	}
	return crash.KeyOf(res.CrashSite, res.Stack), true
}

// Minimize shrinks and normalizes a crashing input while preserving its
// crash bucket. The algorithm follows afl-tmin: coarse-to-fine block
// removal, then per-byte normalization to a filler value.
func (m *Minimizer) Minimize(input []byte) ([]byte, Stats, error) {
	var stats Stats
	stats.InLen = len(input)

	key, ok := m.crashKey(input, &stats)
	if !ok {
		return nil, stats, ErrNotACrash
	}
	stats.Key = key

	cur := make([]byte, len(input))
	copy(cur, input)

	// Phase 1: block removal, halving the chunk size each round.
	for chunk := nextPow2(len(cur)) / 2; chunk >= 1 && stats.Execs < m.maxExecs; chunk /= 2 {
		pos := 0
		for pos < len(cur) && stats.Execs < m.maxExecs {
			end := pos + chunk
			if end > len(cur) {
				end = len(cur)
			}
			candidate := append(append([]byte{}, cur[:pos]...), cur[end:]...)
			if len(candidate) == 0 {
				pos += chunk
				continue
			}
			if k, ok := m.crashKey(candidate, &stats); ok && k == key {
				cur = candidate
			} else {
				pos += chunk
			}
		}
	}

	// Phase 2: byte normalization to a constant filler.
	const filler = 'A'
	for i := 0; i < len(cur) && stats.Execs < m.maxExecs; i++ {
		if cur[i] == filler {
			continue
		}
		orig := cur[i]
		cur[i] = filler
		if k, ok := m.crashKey(cur, &stats); ok && k == key {
			stats.NormalizedBytes++
		} else {
			cur[i] = orig
		}
	}

	stats.OutLen = len(cur)
	return cur, stats, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
