package bench

import (
	"github.com/bigmap/bigmap/internal/covreport"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/target"
)

// GridSizes is the map-size sweep of Figures 6, 7 and 8.
var GridSizes = []int{64 << 10, 256 << 10, 2 << 20, 8 << 20}

// GridSchemes compares the two map schemes.
var GridSchemes = []fuzzer.Scheme{fuzzer.SchemeAFL, fuzzer.SchemeBigMap}

// GridResult bundles the shared measurement behind Figures 6, 7 and 8: the
// same grid of runs feeds all three tables, exactly as one campaign per
// configuration feeds all three plots in the paper.
type GridResult struct {
	Cells []Cell
	opts  Options
}

// RunFig678Grid measures the full (benchmark, scheme, size) grid once.
func RunFig678Grid(opts Options) (*GridResult, error) {
	opts = opts.withDefaults()
	profiles, err := selectProfiles(target.Profiles(), opts.Benchmarks)
	if err != nil {
		return nil, err
	}
	cells, err := RunGrid(profiles, GridSchemes, GridSizes, opts)
	if err != nil {
		return nil, err
	}
	return &GridResult{Cells: cells, opts: opts}, nil
}

// cell looks up one measurement.
func (g *GridResult) cell(bench string, scheme fuzzer.Scheme, size int) (Cell, bool) {
	for _, c := range g.Cells {
		if c.Benchmark == bench && c.Scheme == scheme && c.MapSize == size {
			return c, true
		}
	}
	return Cell{}, false
}

func (g *GridResult) benchmarks() []string {
	var names []string
	seen := map[string]bool{}
	for _, c := range g.Cells {
		if !seen[c.Benchmark] {
			seen[c.Benchmark] = true
			names = append(names, c.Benchmark)
		}
	}
	return names
}

// Fig6 renders test-case generation throughput per benchmark and map size
// for both schemes, plus the per-size average speedup line the paper quotes
// (0.98x / 1.4x / 4.5x / 33.1x).
func (g *GridResult) Fig6() *Table {
	t := &Table{
		Title: "Figure 6: test case generation throughput (execs/sec)",
		Notes: []string{
			"paper shape: AFL collapses as the map grows; BigMap stays flat",
		},
		Header: []string{"benchmark", "map", "afl", "bigmap", "speedup"},
	}
	speedups := map[int][]float64{}
	for _, name := range g.benchmarks() {
		for _, size := range GridSizes {
			a, okA := g.cell(name, fuzzer.SchemeAFL, size)
			b, okB := g.cell(name, fuzzer.SchemeBigMap, size)
			if !okA || !okB {
				continue
			}
			speedup := 0.0
			if a.Throughput > 0 {
				speedup = b.Throughput / a.Throughput
			}
			speedups[size] = append(speedups[size], speedup)
			t.AddRow(name, fmtSize(size),
				fmtFloat(a.Throughput, 0), fmtFloat(b.Throughput, 0),
				fmtFloat(speedup, 2)+"x")
		}
	}
	for _, size := range GridSizes {
		if vals := speedups[size]; len(vals) > 0 {
			t.AddRow("AVERAGE", fmtSize(size), "", "", fmtFloat(geoMean(vals), 2)+"x")
		}
	}
	return t
}

// Fig7 renders edge coverage per benchmark, scheme and map size at the
// fixed test-case budget.
func (g *GridResult) Fig7() *Table {
	t := &Table{
		Title: "Figure 7: edge coverage with varying map sizes (fixed exec budget)",
		Notes: []string{
			"paper shape: equal budgets give near-equal coverage; AFL's deficit",
			"appears under a TIME budget, where its large-map throughput collapses",
			"(see fig6 throughput and fig8 crashes)",
		},
		Header: []string{"benchmark", "map", "afl-edges", "bigmap-edges"},
	}
	for _, name := range g.benchmarks() {
		for _, size := range GridSizes {
			a, okA := g.cell(name, fuzzer.SchemeAFL, size)
			b, okB := g.cell(name, fuzzer.SchemeBigMap, size)
			if !okA || !okB {
				continue
			}
			t.AddRow(name, fmtSize(size), fmtInt(a.Edges), fmtInt(b.Edges))
		}
	}
	return t
}

// Fig8 renders unique crashes (Crashwalk buckets) per benchmark, scheme and
// map size.
func (g *GridResult) Fig8() *Table {
	t := &Table{
		Title: "Figure 8: unique crashes with varying map sizes (fixed exec budget)",
		Notes: []string{
			"paper shape: 64k->256k improves via collision relief; AFL's 2M/8M",
			"losses appear under a TIME budget due to throughput collapse",
		},
		Header: []string{"benchmark", "map", "afl-crashes", "bigmap-crashes"},
	}
	for _, name := range g.benchmarks() {
		for _, size := range GridSizes {
			a, okA := g.cell(name, fuzzer.SchemeAFL, size)
			b, okB := g.cell(name, fuzzer.SchemeBigMap, size)
			if !okA || !okB {
				continue
			}
			t.AddRow(name, fmtSize(size), fmtInt(a.UniqueCrashes), fmtInt(b.UniqueCrashes))
		}
	}
	return t
}

// Fig7TimeBudget reruns the coverage comparison under a wall-clock budget
// (as the paper's 24-hour campaigns do): every configuration gets the same
// TIME, so AFL's large-map throughput collapse translates into lost
// coverage and crashes. Returns Figure 7- and Figure 8-shaped tables.
func Fig7TimeBudget(opts Options, secondsPerCell float64) (*Table, *Table, error) {
	opts = opts.withDefaults()
	profiles, err := selectProfiles(target.Profiles(), opts.Benchmarks)
	if err != nil {
		return nil, nil, err
	}
	cov := &Table{
		Title:  "Figure 7 (time budget): edge coverage under equal wall-clock time",
		Header: []string{"benchmark", "map", "afl-edges", "bigmap-edges"},
	}
	crashes := &Table{
		Title:  "Figure 8 (time budget): unique crashes under equal wall-clock time",
		Header: []string{"benchmark", "map", "afl-crashes", "bigmap-crashes"},
	}
	for _, p := range profiles {
		b, err := prepare(p, opts)
		if err != nil {
			return nil, nil, err
		}
		for _, size := range GridSizes {
			stats := map[fuzzer.Scheme]fuzzer.Stats{}
			exact := map[fuzzer.Scheme]int{}
			for _, scheme := range GridSchemes {
				f, err := fuzzer.New(b.prog, fuzzer.Config{
					Scheme: scheme, MapSize: size, Seed: opts.Seed,
					ExecCostFactor: b.costFactor,
				})
				if err != nil {
					return nil, nil, err
				}
				if err := addSeeds(f, b.seeds); err != nil {
					return nil, nil, err
				}
				if err := f.RunFor(secondsToDuration(secondsPerCell)); err != nil {
					return nil, nil, err
				}
				stats[scheme] = f.Stats()
				// The fuzzers' own virgin counts are incomparable across
				// map sizes (collisions merge edges); replay the corpus
				// exactly instead, as the paper does.
				rep := covreport.New(b.prog, 0)
				for _, e := range f.Queue().Entries() {
					rep.Add(e.Input)
				}
				exact[scheme] = rep.Edges()
				opts.progressf("  fig7t %-12s %-7s %-4s exact-edges=%d crashes=%d execs=%d\n",
					p.Name, scheme, fmtSize(size), exact[scheme],
					stats[scheme].UniqueCrashes, stats[scheme].Execs)
			}
			cov.AddRow(p.Name, fmtSize(size),
				fmtInt(exact[fuzzer.SchemeAFL]),
				fmtInt(exact[fuzzer.SchemeBigMap]))
			crashes.AddRow(p.Name, fmtSize(size),
				fmtInt(stats[fuzzer.SchemeAFL].UniqueCrashes),
				fmtInt(stats[fuzzer.SchemeBigMap].UniqueCrashes))
		}
	}
	return cov, crashes, nil
}
