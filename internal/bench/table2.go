package bench

import (
	"github.com/bigmap/bigmap/internal/collision"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/target"
)

// Table2 regenerates Table II: benchmark characteristics. For each profile
// it reports the paper's numbers alongside the synthetic reproduction's
// measured values: static edges of the generated program, edges discovered
// by a BigMap fuzzing run (BigMap so map overhead does not distort the
// discovery budget), and the Equation 1 collision rate those discovered
// edges imply on a 64kB map.
func Table2(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	profiles, err := selectProfiles(target.Profiles(), opts.Benchmarks)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Table II: benchmark characteristics (paper vs this reproduction)",
		Notes: []string{
			"paper columns from the publication; ours measured at scale",
			"collision rate is Equation 1 at a 64kB map over discovered edges",
		},
		Header: []string{
			"benchmark", "seeds",
			"disc-edges(paper)", "disc-edges(ours)",
			"coll%(paper)", "coll%(ours)",
			"static(paper)", "static(ours)",
			"version",
		},
	}

	for _, p := range profiles {
		b, err := prepare(p, opts)
		if err != nil {
			return nil, err
		}
		f, err := fuzzer.New(b.prog, fuzzer.Config{
			Scheme:         fuzzer.SchemeBigMap,
			MapSize:        2 << 20,
			Seed:           opts.Seed,
			ExecCostFactor: b.costFactor,
		})
		if err != nil {
			return nil, err
		}
		if err := addSeeds(f, b.seeds); err != nil {
			return nil, err
		}
		if err := f.RunExecs(opts.ExecsPerRun); err != nil {
			return nil, err
		}
		st := f.Stats()
		rate, err := collision.Rate(64<<10, maxInt(st.EdgesDiscovered, 1))
		if err != nil {
			return nil, err
		}
		t.AddRow(
			p.Name, fmtInt(p.SeedCount),
			fmtInt(p.PaperDiscoveredEdges), fmtInt(st.EdgesDiscovered),
			fmtFloat(p.PaperCollisionRate, 2), fmtFloat(rate*100, 2),
			fmtInt(p.PaperStaticEdges), fmtInt(b.prog.StaticEdges()),
			p.Version,
		)
		opts.progressf("  table2 %-16s done\n", p.Name)
	}
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
