package bench

import (
	"time"

	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/target"
)

// Ablation measures the design choices DESIGN.md calls out:
//
//  1. merged vs split classify+compare (§IV-E: "cuts the cost of
//     (compare + classify) to half")
//  2. BigMap's indirection overhead at AFL's native 64kB map size
//     (paper: 0.98x — i.e. a slight slowdown is acceptable)
//  3. map-size sensitivity of each scheme in isolation
//
// The default benchmark is sqlite3: large enough that its working set
// nearly fills a 64kB map, the regime where the paper says BigMap's extra
// indirection shows.
func Ablation(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	names := opts.Benchmarks
	if len(names) == 0 {
		names = []string{"sqlite3"}
	}
	profiles, err := selectProfiles(target.Profiles(), names)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Ablation: classify+compare merging and BigMap indirection overhead",
		Notes: []string{
			"throughput in execs/sec at a fixed exec budget",
		},
		Header: []string{"benchmark", "scheme", "map", "classify+compare", "execs/s"},
	}

	type variant struct {
		scheme fuzzer.Scheme
		size   int
		split  bool
	}
	variants := []variant{
		{fuzzer.SchemeAFL, 64 << 10, true},
		{fuzzer.SchemeAFL, 64 << 10, false},
		{fuzzer.SchemeAFL, 2 << 20, true},
		{fuzzer.SchemeAFL, 2 << 20, false},
		{fuzzer.SchemeBigMap, 64 << 10, true},
		{fuzzer.SchemeBigMap, 64 << 10, false},
		{fuzzer.SchemeBigMap, 2 << 20, false},
		{fuzzer.SchemeBigMap, 8 << 20, false},
	}

	for _, p := range profiles {
		b, err := prepare(p, opts)
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			f, err := fuzzer.New(b.prog, fuzzer.Config{
				Scheme:               v.scheme,
				MapSize:              v.size,
				Seed:                 opts.Seed,
				ExecCostFactor:       b.costFactor,
				SplitClassifyCompare: v.split,
			})
			if err != nil {
				return nil, err
			}
			if err := addSeeds(f, b.seeds); err != nil {
				return nil, err
			}
			cell, err := timeRun(f, opts.ExecsPerRun)
			if err != nil {
				return nil, err
			}
			mode := "merged"
			if v.split {
				mode = "split"
			}
			t.AddRow(p.Name, string(v.scheme), fmtSize(v.size), mode, fmtFloat(cell, 0))
			opts.progressf("  ablation %-10s %-7s %-4s %-6s %8.0f execs/s\n",
				p.Name, v.scheme, fmtSize(v.size), mode, cell)
		}
	}
	return t, nil
}

// timeRun measures the throughput of one configured fuzzer.
func timeRun(f *fuzzer.Fuzzer, execs uint64) (float64, error) {
	start := time.Now() //bigmap:nondeterministic-ok wall-clock throughput measurement is the product
	if err := f.RunExecs(execs); err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Seconds() //bigmap:nondeterministic-ok wall-clock throughput measurement is the product
	if elapsed <= 0 {
		return 0, nil
	}
	return float64(f.Execs()) / elapsed, nil
}
