package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/parallel"
	"github.com/bigmap/bigmap/internal/target"
)

// ScalingInstances is the instance-count sweep of Figures 9 and 10.
var ScalingInstances = []int{1, 4, 8, 12}

// ScalingMapSize is fixed to 2MB in the paper's scaling experiment.
const ScalingMapSize = 2 << 20

// ScalingDefaultBenchmarks keeps the default scaling sweep affordable.
var ScalingDefaultBenchmarks = []string{"libpng", "sqlite3", "gvn"}

// scalingCell is one (benchmark, scheme, instances) measurement.
type scalingCell struct {
	bench      string
	scheme     fuzzer.Scheme
	instances  int
	totalExecs uint64
	seconds    float64
	crashes    int
}

func (c scalingCell) throughput() float64 {
	if c.seconds <= 0 {
		return 0
	}
	return float64(c.totalExecs) / c.seconds
}

// ScalingResult carries the shared measurements behind Figures 9a, 9b
// and 10.
type ScalingResult struct {
	cells []scalingCell
}

// RunScaling measures parallel campaigns for both schemes across the
// instance sweep, each campaign running for the same wall-clock budget
// (secondsPerCell), master–secondary configuration, 2MB maps — the setup of
// §V-D.
func RunScaling(opts Options, secondsPerCell float64) (*ScalingResult, error) {
	opts = opts.withDefaults()
	names := opts.Benchmarks
	if len(names) == 0 {
		names = ScalingDefaultBenchmarks
	}
	profiles, err := selectProfiles(target.Profiles(), names)
	if err != nil {
		return nil, err
	}

	res := &ScalingResult{}
	for _, p := range profiles {
		b, err := prepare(p, opts)
		if err != nil {
			return nil, err
		}
		for _, scheme := range GridSchemes {
			for _, n := range ScalingInstances {
				camp, err := parallel.NewCampaign(b.prog, parallel.Config{
					Instances:           n,
					SyncEvery:           opts.ExecsPerRun / 4,
					VirginShards:        opts.VirginShards,
					MasterDeterministic: false, // short runs skip deterministic (§V-A1)
					Fuzzer: fuzzer.Config{
						Scheme:         scheme,
						MapSize:        ScalingMapSize,
						Seed:           opts.Seed,
						ExecCostFactor: b.costFactor,
					},
				}, b.seeds)
				if err != nil {
					return nil, err
				}
				start := time.Now() //bigmap:nondeterministic-ok wall-clock throughput measurement is the product
				if err := camp.RunFor(secondsToDuration(secondsPerCell)); err != nil {
					return nil, err
				}
				elapsed := time.Since(start).Seconds() //bigmap:nondeterministic-ok wall-clock throughput measurement is the product
				rep := camp.Report()
				cell := scalingCell{
					bench:      p.Name,
					scheme:     scheme,
					instances:  n,
					totalExecs: rep.TotalExecs,
					seconds:    elapsed,
					crashes:    rep.UniqueCrashes,
				}
				res.cells = append(res.cells, cell)
				opts.progressf("  fig9 %-12s %-7s n=%-2d %10.0f execs/s crashes=%d\n",
					p.Name, scheme, n, cell.throughput(), cell.crashes)
			}
		}
	}
	return res, nil
}

func (r *ScalingResult) cell(bench string, scheme fuzzer.Scheme, n int) (scalingCell, bool) {
	for _, c := range r.cells {
		if c.bench == bench && c.scheme == scheme && c.instances == n {
			return c, true
		}
	}
	return scalingCell{}, false
}

func (r *ScalingResult) benches() []string {
	var names []string
	seen := map[string]bool{}
	for _, c := range r.cells {
		if !seen[c.bench] {
			seen[c.bench] = true
			names = append(names, c.bench)
		}
	}
	return names
}

// Fig9a renders throughput normalized to the single-instance run of the
// same scheme, with the 1:1 ideal for reference.
func (r *ScalingResult) Fig9a() *Table {
	t := &Table{
		Title: "Figure 9(a): normalized throughput vs concurrent instances (2MB map)",
		Notes: []string{
			"paper shape: both sub-linear; BigMap scales much closer to 1:1",
			fmt.Sprintf("host has %d CPU core(s); scaling beyond that is physically impossible", runtime.NumCPU()),
		},
		Header: []string{"benchmark", "instances", "ideal", "afl", "bigmap"},
	}
	for _, name := range r.benches() {
		base := map[fuzzer.Scheme]float64{}
		for _, scheme := range GridSchemes {
			if c, ok := r.cell(name, scheme, 1); ok {
				base[scheme] = c.throughput()
			}
		}
		for _, n := range ScalingInstances {
			norm := func(scheme fuzzer.Scheme) string {
				c, ok := r.cell(name, scheme, n)
				if !ok || base[scheme] <= 0 {
					return "-"
				}
				return fmtFloat(c.throughput()/base[scheme], 2)
			}
			t.AddRow(name, fmtInt(n), fmtFloat(float64(n), 0),
				norm(fuzzer.SchemeAFL), norm(fuzzer.SchemeBigMap))
		}
	}
	return t
}

// Fig9b renders BigMap's speedup over AFL at equal instance counts, the
// ratio of total test cases generated.
func (r *ScalingResult) Fig9b() *Table {
	t := &Table{
		Title: "Figure 9(b): BigMap speedup over AFL vs instances (2MB map)",
		Notes: []string{
			"paper averages: 4.9x/9.2x/13.8x for 4/8/12 instances (super-linear);",
			"super-linearity needs as many physical cores as instances",
			fmt.Sprintf("host has %d CPU core(s)", runtime.NumCPU()),
		},
		Header: []string{"benchmark", "instances", "speedup"},
	}
	avg := map[int][]float64{}
	for _, name := range r.benches() {
		for _, n := range ScalingInstances {
			a, okA := r.cell(name, fuzzer.SchemeAFL, n)
			b, okB := r.cell(name, fuzzer.SchemeBigMap, n)
			if !okA || !okB || a.totalExecs == 0 {
				continue
			}
			s := float64(b.totalExecs) / float64(a.totalExecs)
			avg[n] = append(avg[n], s)
			t.AddRow(name, fmtInt(n), fmtFloat(s, 2)+"x")
		}
	}
	for _, n := range ScalingInstances {
		if vals := avg[n]; len(vals) > 0 {
			t.AddRow("AVERAGE", fmtInt(n), fmtFloat(geoMean(vals), 2)+"x")
		}
	}
	return t
}

// Fig10 renders unique crashes vs instance count.
func (r *ScalingResult) Fig10() *Table {
	t := &Table{
		Title:  "Figure 10: unique crashes vs concurrent instances (2MB map)",
		Notes:  []string{"paper shape: BigMap finds more crashes as instances grow; AFL stalls"},
		Header: []string{"benchmark", "instances", "afl", "bigmap"},
	}
	for _, name := range r.benches() {
		for _, n := range ScalingInstances {
			a, okA := r.cell(name, fuzzer.SchemeAFL, n)
			b, okB := r.cell(name, fuzzer.SchemeBigMap, n)
			if !okA || !okB {
				continue
			}
			t.AddRow(name, fmtInt(n), fmtInt(a.crashes), fmtInt(b.crashes))
		}
	}
	return t
}

// secondsToDuration converts a float seconds value.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
