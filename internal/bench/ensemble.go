package bench

import (
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/covreport"
	"github.com/bigmap/bigmap/internal/ensemble"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/lafintel"
	"github.com/bigmap/bigmap/internal/target"
)

// EnsembleVsStacking runs the comparison the paper names as future research
// (§VI): ensemble fuzzers run multiple instances with different metrics and
// cross-pollinate, but "unlike BigMap, they do not stack the coverage
// metrics together". At an equal total execution budget the experiment
// measures:
//
//	stacked   — ONE instance, laf-intel + 3-gram on a 2MB BigMap (the
//	            paper's §V-C aggressive composition)
//	ensemble  — THREE instances (edge / 3-gram / context) with periodic
//	            corpus sync, each getting a third of the budget; once with
//	            the ensemble's traditional small 64kB maps and once with
//	            2MB BigMaps
//
// Coverage is judged with the bias-free exact coverage build over each
// configuration's final corpus, since the configurations count coverage in
// incomparable key spaces.
func EnsembleVsStacking(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	names := opts.Benchmarks
	if len(names) == 0 {
		names = []string{"gvn"}
	}
	profiles, err := selectProfiles(target.CompositionProfiles(), names)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Ensemble vs stacking (the paper's §VI future-work comparison)",
		Notes: []string{
			"equal TOTAL exec budgets; coverage via the bias-free exact replay",
			"stacked = laf-intel + 3-gram on one 2MB BigMap; ensemble = edge/ngram3/ctx with sync",
		},
		Header: []string{"benchmark", "config", "exact-edges", "crashes", "total-execs"},
	}

	for _, p := range profiles {
		b, err := prepare(p, opts)
		if err != nil {
			return nil, err
		}
		budget := opts.ExecsPerRun

		// Stacked: laf + 3-gram, one instance, full budget.
		lafProg, _ := lafintel.Transform(b.prog, opts.Seed)
		stacked, err := fuzzer.New(lafProg, fuzzer.Config{
			Scheme:         fuzzer.SchemeBigMap,
			MapSize:        2 << 20,
			Seed:           opts.Seed,
			ExecCostFactor: b.costFactor,
			Metric: func(size int) (core.Metric, error) {
				return core.NewNGramMetric(size, 3)
			},
		})
		if err != nil {
			return nil, err
		}
		if err := addSeeds(stacked, b.seeds); err != nil {
			return nil, err
		}
		if err := stacked.RunExecs(budget); err != nil {
			return nil, err
		}
		// Exact coverage of the stacked corpus, replayed on the ORIGINAL
		// program so laf-intel's extra guard blocks don't inflate the
		// comparison.
		cov := covreport.New(b.prog, 0)
		for _, e := range stacked.Queue().Entries() {
			cov.Add(e.Input)
		}
		st := stacked.Stats()
		t.AddRow(p.Name, "stacked", fmtInt(cov.Edges()), fmtInt(st.UniqueCrashes), fmtInt(int(st.Execs)))
		opts.progressf("  ensemble %-10s stacked edges=%d crashes=%d\n", p.Name, cov.Edges(), st.UniqueCrashes)

		// Ensembles at two map configurations.
		for _, variant := range []struct {
			name    string
			scheme  fuzzer.Scheme
			mapSize int
		}{
			{"ensemble/64k", fuzzer.SchemeAFL, 64 << 10},
			{"ensemble/2M-bigmap", fuzzer.SchemeBigMap, 2 << 20},
		} {
			ens, err := ensemble.New(b.prog, ensemble.Config{
				Members:   ensemble.DefaultMembers(),
				SyncEvery: budget / 6,
				Fuzzer: fuzzer.Config{
					Scheme:         variant.scheme,
					MapSize:        variant.mapSize,
					Seed:           opts.Seed,
					ExecCostFactor: b.costFactor,
				},
			}, b.seeds)
			if err != nil {
				return nil, err
			}
			if err := ens.RunExecs(budget / 3); err != nil {
				return nil, err
			}
			rep := ens.Report(b.prog)
			t.AddRow(p.Name, variant.name, fmtInt(rep.UnionExactEdges),
				fmtInt(rep.UniqueCrashes), fmtInt(int(rep.TotalExecs)))
			opts.progressf("  ensemble %-10s %s edges=%d crashes=%d\n",
				p.Name, variant.name, rep.UnionExactEdges, rep.UniqueCrashes)
		}
	}
	return t, nil
}
