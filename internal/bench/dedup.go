package bench

import (
	"fmt"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/crash"
	"github.com/bigmap/bigmap/internal/lafintel"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

// DedupBias demonstrates the paper's §V-A3 justification for using
// Crashwalk: AFL's built-in crash deduplication compares each crash against
// a global crash-coverage bitmap, so the number of "unique" crashes it
// reports depends on the map size — fewer collisions make more crashes
// distinguishable — while Crashwalk buckets (call stack + faulting address)
// are map-independent.
//
// The measurement is controlled: a fixed set of crashing inputs is
// synthesized once (by iteratively solving the target's comparison guards
// with the compare hook), then the SAME set is replayed under every map
// size. Only the counting changes, which isolates the bias the paper calls
// out ("inherently biased towards larger maps").
func DedupBias(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	names := opts.Benchmarks
	if len(names) == 0 {
		names = []string{"gvn"}
	}
	// Prefer the crash-rich Table III composition profiles; fall back to
	// Table II for names that only exist there.
	combined := append(target.Profiles(), target.CompositionProfiles()...)
	profiles, err := selectProfiles(combined, names)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Dedup bias (§V-A3): AFL's coverage-based crash dedup vs Crashwalk",
		Notes: []string{
			"a fixed synthesized crash set is replayed under every map size;",
			"only the dedup method's counting differs — the Crashwalk column is",
			"map-independent by construction, the AFL column inflates with the map",
		},
		Header: []string{"benchmark", "map", "crash-inputs", "unique-crashwalk", "unique-afl"},
	}

	for _, p := range profiles {
		b, err := prepare(p, opts)
		if err != nil {
			return nil, err
		}
		prog, _ := lafintel.Transform(b.prog, opts.Seed)
		crashes := synthesizeCrashes(prog, 200, opts.Seed)
		if len(crashes) == 0 {
			return nil, fmt.Errorf("bench: no crashing inputs synthesizable for %s", p.Name)
		}
		opts.progressf("  dedup %-12s synthesized %d crashing inputs\n", p.Name, len(crashes))

		for _, size := range GridSizes {
			cw, afl, err := countUnique(prog, crashes, size)
			if err != nil {
				return nil, err
			}
			t.AddRow(p.Name, fmtSize(size), fmtInt(len(crashes)), fmtInt(cw), fmtInt(afl))
			opts.progressf("  dedup %-12s %-4s crashwalk=%d afl=%d\n", p.Name, fmtSize(size), cw, afl)
		}
	}
	return t, nil
}

// synthesizeCrashes builds a controlled corpus of crashing inputs with the
// target package's crash-witness generator (randomized branch-solving walks
// that solve crash-guard chains). Deterministic in seed.
func synthesizeCrashes(prog *target.Program, maxInputs int, seed uint64) [][]byte {
	src := rng.New(seed ^ 0xc4a54e5)
	interp := target.NewInterp(prog)
	var out [][]byte
	for attempt := 0; attempt < maxInputs*40 && len(out) < maxInputs; attempt++ {
		witness, ok := prog.SynthesizeCrashWitness(src)
		if !ok {
			continue
		}
		// The walk is an approximation (later writes can clobber earlier
		// constraints); keep only witnesses that actually crash.
		if interp.Run(witness, target.NopTracer{}, 1<<22).Status == target.StatusCrash {
			out = append(out, witness)
		}
	}
	return out
}

// countUnique replays the crash set under one map size and counts unique
// crashes both ways: AFL-style (classify + has_new_bits against a global
// crash-coverage virgin map) and Crashwalk-style (stack+site buckets).
func countUnique(prog *target.Program, crashes [][]byte, mapSize int) (crashwalk, aflStyle int, err error) {
	cov, err := core.NewBigMap(mapSize)
	if err != nil {
		return 0, 0, err
	}
	metric, err := core.NewEdgeMetric(mapSize)
	if err != nil {
		return 0, 0, err
	}
	virginCrash := cov.NewVirgin()
	dedup := crash.NewDeduper()
	interp := target.NewInterp(prog)
	tracer := &dedupTracer{metric: metric, cov: cov}

	for _, input := range crashes {
		cov.Reset()
		metric.Begin()
		res := interp.Run(input, tracer, 1<<22)
		if res.Status != target.StatusCrash {
			continue
		}
		if cov.ClassifyAndCompare(virginCrash) != core.VerdictNone {
			aflStyle++
		}
		dedup.Observe(res.CrashSite, res.Stack, nil)
	}
	return dedup.Unique(), aflStyle, nil
}

// dedupTracer wires metric+map for the replay.
type dedupTracer struct {
	metric core.Metric
	cov    core.Map
}

func (t *dedupTracer) Visit(b uint32)   { t.cov.Add(t.metric.Visit(b)) }
func (t *dedupTracer) EnterCall(uint32) {}
func (t *dedupTracer) LeaveCall()       {}
