package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/bigmap/bigmap/internal/benchjson"
)

func TestParseGridConfigRejects(t *testing.T) {
	cases := []struct {
		name, json, want string
	}{
		{"bad schema", `{"schema":"nope","experiments":[{"name":"fig2"}]}`, "schema"},
		{"no experiments", `{"schema":"bigmap-grid/v1","experiments":[]}`, "no experiments"},
		{"unnamed", `{"schema":"bigmap-grid/v1","experiments":[{}]}`, "no name"},
		{"unknown experiment", `{"schema":"bigmap-grid/v1","experiments":[{"name":"fig99"}]}`, "unknown experiment"},
		{"duplicate", `{"schema":"bigmap-grid/v1","experiments":[{"name":"fig2"},{"name":"fig2"}]}`, "twice"},
		{"negative repeats", `{"schema":"bigmap-grid/v1","experiments":[{"name":"fig2","repeats":-1}]}`, "negative repeats"},
		{"unknown field", `{"schema":"bigmap-grid/v1","experiments":[{"name":"fig2","drop_cols":["x"]}]}`, "unknown field"},
		{"not json", `{"schema":`, "grid config"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseGridConfig([]byte(c.json))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestParseGridConfigAccepts(t *testing.T) {
	cfg, err := ParseGridConfig([]byte(`{
		"schema": "bigmap-grid/v1",
		"defaults": {"scale": 0.02, "execs": 100, "seed": 7, "repeats": 2},
		"experiments": [{"name": "fig2"}, {"name": "collafl", "execs": 50, "drop_columns": ["execs/s"]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	opts, _, repeats := cfg.resolve(cfg.Experiments[0])
	if opts.Scale != 0.02 || opts.ExecsPerRun != 100 || opts.Seed != 7 || repeats != 2 {
		t.Errorf("defaults not inherited: %+v repeats=%d", opts, repeats)
	}
	opts, _, _ = cfg.resolve(cfg.Experiments[1])
	if opts.ExecsPerRun != 50 {
		t.Errorf("override lost: execs=%d", opts.ExecsPerRun)
	}
}

func TestDropColumns(t *testing.T) {
	in := benchjson.TableJSON{
		Title:  "t",
		Header: []string{"a", "b", "c"},
		Rows:   [][]string{{"1", "2", "3"}, {"4", "5", "6"}},
	}
	out, err := dropColumns(in, []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Header) != 2 || out.Header[0] != "a" || out.Header[1] != "c" {
		t.Fatalf("header = %v", out.Header)
	}
	if out.Rows[1][1] != "6" {
		t.Fatalf("rows = %v", out.Rows)
	}
	if _, err := dropColumns(in, []string{"nope"}); err == nil {
		t.Fatal("unknown drop column accepted")
	}
	// No drop list: table passes through untouched.
	same, err := dropColumns(in, nil)
	if err != nil || len(same.Header) != 3 {
		t.Fatalf("nil drop altered table: %v %v", same.Header, err)
	}
}

// TestRunGridConfigEndToEnd runs the cheapest real experiment (fig2 is pure
// math) through the full pipeline twice and checks artifact set, schema
// validity of grid.json, header pinning, and byte-for-byte reproducibility.
func TestRunGridConfigEndToEnd(t *testing.T) {
	cfg, err := ParseGridConfig([]byte(`{
		"schema": "bigmap-grid/v1",
		"experiments": [{"name": "fig2"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	read := func(dir string) map[string]string {
		res, err := RunGridConfig(cfg, dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := benchjson.Validate(res.Report); err != nil {
			t.Fatalf("report invalid: %v", err)
		}
		want := []string{"fig2.txt", "fig2.csv", "grid.json"}
		if len(res.Files) != len(want) {
			t.Fatalf("files = %v, want %v", res.Files, want)
		}
		out := map[string]string{}
		for _, f := range want {
			data, err := os.ReadFile(filepath.Join(dir, f))
			if err != nil {
				t.Fatal(err)
			}
			if len(data) == 0 {
				t.Fatalf("%s is empty", f)
			}
			out[f] = string(data)
		}
		return out
	}
	a := read(t.TempDir())
	b := read(t.TempDir())
	for f := range a {
		if a[f] != b[f] {
			t.Errorf("%s not reproducible across runs", f)
		}
	}
}

// TestRunGridConfigHeaderDrift pins the failure mode: a drifted header must
// error out before any artifact is written.
func TestRunGridConfigHeaderDrift(t *testing.T) {
	cfg, err := ParseGridConfig([]byte(`{
		"schema": "bigmap-grid/v1",
		"experiments": [{"name": "fig2", "expect_headers": [["wrong", "columns"]]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := RunGridConfig(cfg, dir, nil); err == nil || !strings.Contains(err.Error(), "drifted") {
		t.Fatalf("want header-drift error, got %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("drift run left artifacts behind: %v", entries)
	}
}

func TestRegistryLookup(t *testing.T) {
	names := map[string]bool{}
	for _, e := range Registry() {
		if e.Name == "" || e.Run == nil {
			t.Fatalf("malformed registry entry %+v", e)
		}
		if names[e.Name] {
			t.Fatalf("duplicate registry name %q", e.Name)
		}
		names[e.Name] = true
	}
	for _, want := range []string{"fig2", "fig78", "table3", "schedules"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("registry missing %q", want)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("bogus lookup succeeded")
	}
	if _, err := RunExperiment("fig99", Options{}, 0); err == nil {
		t.Error("RunExperiment on unknown name succeeded")
	}
}
