package bench

import (
	"fmt"

	"github.com/bigmap/bigmap/internal/collision"
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/target"
)

// Metrics measures coverage-metric map pressure, the effect the paper's §VI
// related work discusses: more expressive metrics (N-gram, context-sensitive
// edges) generate many more distinct coverage keys than plain edge coverage
// — Angora's context coverage puts "up to eight times more pressure on the
// bitmap" — which is precisely what makes large (BigMap-backed) maps
// necessary. For each metric the experiment reports the distinct keys
// discovered at a fixed budget and the Equation 1 collision rate those keys
// would suffer on a 64kB map.
func Metrics(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	names := opts.Benchmarks
	if len(names) == 0 {
		names = []string{"sqlite3"}
	}
	profiles, err := selectProfiles(target.Profiles(), names)
	if err != nil {
		return nil, err
	}

	type metricDef struct {
		name    string
		factory fuzzer.MetricFactory
	}
	metrics := []metricDef{
		{"edge", func(size int) (core.Metric, error) { return core.NewEdgeMetric(size) }},
		{"ngram2", func(size int) (core.Metric, error) { return core.NewNGramMetric(size, 2) }},
		{"ngram3", func(size int) (core.Metric, error) { return core.NewNGramMetric(size, 3) }},
		{"ngram4", func(size int) (core.Metric, error) { return core.NewNGramMetric(size, 4) }},
		{"ctx-edge", func(size int) (core.Metric, error) { return core.NewContextMetric(size) }},
	}

	t := &Table{
		Title: "Metric map pressure (§VI): distinct coverage keys per metric",
		Notes: []string{
			"all runs BigMap @ 8MB (collisions negligible), equal exec budgets",
			"coll%64k: Equation 1 rate those keys would suffer on AFL's default map",
		},
		Header: []string{"benchmark", "metric", "keys", "pressure", "coll%64k"},
	}

	for _, p := range profiles {
		b, err := prepare(p, opts)
		if err != nil {
			return nil, err
		}
		baseline := 0
		for _, m := range metrics {
			f, err := fuzzer.New(b.prog, fuzzer.Config{
				Scheme:         fuzzer.SchemeBigMap,
				MapSize:        8 << 20,
				Seed:           opts.Seed,
				ExecCostFactor: b.costFactor,
				Metric:         m.factory,
			})
			if err != nil {
				return nil, err
			}
			if err := addSeeds(f, b.seeds); err != nil {
				return nil, err
			}
			if err := f.RunExecs(opts.ExecsPerRun); err != nil {
				return nil, err
			}
			keys := f.Stats().EdgesDiscovered
			if m.name == "edge" {
				baseline = keys
			}
			pressure := "1.00x"
			if baseline > 0 {
				pressure = fmt.Sprintf("%.2fx", float64(keys)/float64(baseline))
			}
			rate, err := collision.Rate(64<<10, maxInt(keys, 1))
			if err != nil {
				return nil, err
			}
			t.AddRow(p.Name, m.name, fmtInt(keys), pressure, fmtFloat(rate*100, 2))
			opts.progressf("  metrics %-10s %-8s keys=%d\n", p.Name, m.name, keys)
		}
	}
	return t, nil
}
