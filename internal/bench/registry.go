package bench

import "fmt"

// Experiment is one runnable paper artifact: a named wrapper around the
// drivers in this package with a uniform signature, so the CLI dispatch, the
// `all` sweep and the declarative grid runner all execute experiments through
// one table instead of three hand-maintained switch statements.
type Experiment struct {
	Name  string
	Title string
	// Timing marks experiments whose measurement columns derive from wall
	// clock (throughput, seconds-per-phase). Their numbers are not
	// reproducible across runs, so the default reproducible grid excludes
	// them and the grid runner warns when a config pulls one in.
	Timing bool
	// Run executes the experiment and returns its tables in paper order.
	// seconds is the per-cell wall-clock budget; only time-budget
	// experiments read it.
	Run func(opts Options, seconds float64) ([]*Table, error)
}

// tables adapts the common one-table driver signature.
func tables(f func(Options) (*Table, error)) func(Options, float64) ([]*Table, error) {
	return func(opts Options, _ float64) ([]*Table, error) {
		t, err := f(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// Registry returns every experiment in paper order. The slice is rebuilt per
// call so callers may not mutate shared state.
func Registry() []Experiment {
	return []Experiment{
		{Name: "fig2", Title: "collision-rate curves (Eq. 1)",
			Run: func(Options, float64) ([]*Table, error) {
				t, err := Fig2()
				if err != nil {
					return nil, err
				}
				return []*Table{t}, nil
			}},
		{Name: "fig3", Title: "runtime composition", Timing: true, Run: tables(Fig3)},
		{Name: "table2", Title: "benchmark characteristics", Run: tables(Table2)},
		{Name: "fig6", Title: "throughput grid", Timing: true,
			Run: func(opts Options, _ float64) ([]*Table, error) {
				grid, err := RunFig678Grid(opts)
				if err != nil {
					return nil, err
				}
				return []*Table{grid.Fig6()}, nil
			}},
		{Name: "fig7", Title: "coverage grid",
			Run: func(opts Options, _ float64) ([]*Table, error) {
				grid, err := RunFig678Grid(opts)
				if err != nil {
					return nil, err
				}
				return []*Table{grid.Fig7()}, nil
			}},
		{Name: "fig8", Title: "crash grid",
			Run: func(opts Options, _ float64) ([]*Table, error) {
				grid, err := RunFig678Grid(opts)
				if err != nil {
					return nil, err
				}
				return []*Table{grid.Fig8()}, nil
			}},
		{Name: "fig78", Title: "coverage and crash grids in one pass",
			Run: func(opts Options, _ float64) ([]*Table, error) {
				grid, err := RunFig678Grid(opts)
				if err != nil {
					return nil, err
				}
				return []*Table{grid.Fig7(), grid.Fig8()}, nil
			}},
		{Name: "fig7t", Title: "coverage and crashes under a time budget", Timing: true,
			Run: func(opts Options, seconds float64) ([]*Table, error) {
				cov, crashes, err := Fig7TimeBudget(opts, seconds)
				if err != nil {
					return nil, err
				}
				return []*Table{cov, crashes}, nil
			}},
		{Name: "table3", Title: "laf-intel + N-gram composition", Run: tables(Table3)},
		{Name: "fig9", Title: "parallel scaling throughput", Timing: true,
			Run: func(opts Options, seconds float64) ([]*Table, error) {
				res, err := RunScaling(opts, seconds)
				if err != nil {
					return nil, err
				}
				return []*Table{res.Fig9a(), res.Fig9b()}, nil
			}},
		{Name: "fig10", Title: "parallel scaling coverage", Timing: true,
			Run: func(opts Options, seconds float64) ([]*Table, error) {
				res, err := RunScaling(opts, seconds)
				if err != nil {
					return nil, err
				}
				return []*Table{res.Fig10()}, nil
			}},
		{Name: "ablation", Title: "design-choice ablations", Timing: true, Run: tables(Ablation)},
		{Name: "dedup", Title: "dedup-bias demonstration", Run: tables(DedupBias)},
		{Name: "collafl", Title: "CollAFL related-work comparison", Run: tables(CollAFL)},
		{Name: "metrics", Title: "metric map-pressure sweep", Run: tables(Metrics)},
		{Name: "roadblocks", Title: "dict vs laf vs cmplog", Run: tables(Roadblocks)},
		{Name: "schedules", Title: "AFLFast power schedules on BigMap", Run: tables(Schedules)},
		{Name: "selective", Title: "selective tracing + batched execution equivalence", Run: tables(Selective)},
		{Name: "ensemble", Title: "ensemble vs stacking", Run: tables(EnsembleVsStacking)},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunExperiment executes a registered experiment by name.
func RunExperiment(name string, opts Options, seconds float64) ([]*Table, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
	return e.Run(opts, seconds)
}
