package bench

import (
	"fmt"

	"github.com/bigmap/bigmap/internal/collision"
)

// Fig2Sizes and Fig2Keys are the axes of the paper's Figure 2.
var (
	Fig2Sizes = []int{64 << 10, 128 << 10, 256 << 10, 512 << 10,
		1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20}
	Fig2Keys = []int{5000, 10000, 20000, 50000, 100000, 200000, 500000, 1000000}
)

// Fig2 regenerates Figure 2: collision rate (percent) as a function of
// bitmap size, one series per key count, straight from Equation 1.
func Fig2() (*Table, error) {
	t := &Table{
		Title: "Figure 2: hash collision rate (%) vs bitmap size (Equation 1)",
		Notes: []string{"rows: number of keys drawn; columns: bitmap size"},
	}
	t.Header = append(t.Header, "keys")
	for _, h := range Fig2Sizes {
		t.Header = append(t.Header, fmtSize(h))
	}
	for _, n := range Fig2Keys {
		row := []string{fmtCount(n)}
		for _, h := range Fig2Sizes {
			rate, err := collision.Rate(h, n)
			if err != nil {
				return nil, fmt.Errorf("rate(%d,%d): %w", h, n, err)
			}
			row = append(row, fmtFloat(rate*100, 2))
		}
		t.AddRow(row...)
	}
	return t, nil
}
