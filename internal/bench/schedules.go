package bench

import (
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/target"
)

// Schedules compares AFLFast power schedules (related work [16]) on top of
// BigMap at equal exec budgets — demonstrating the paper's claim that the
// map scheme is orthogonal to seed scheduling: any schedule composes with
// BigMap, and the map's efficiency is unaffected by the scheduler choice.
func Schedules(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	names := opts.Benchmarks
	if len(names) == 0 {
		names = []string{"libxml2"}
	}
	profiles, err := selectProfiles(target.Profiles(), names)
	if err != nil {
		return nil, err
	}

	schedules := []fuzzer.PowerSchedule{
		fuzzer.ScheduleExploit,
		fuzzer.ScheduleFast,
		fuzzer.ScheduleExplore,
		fuzzer.ScheduleCOE,
		fuzzer.ScheduleLin,
		fuzzer.ScheduleQuad,
	}

	t := &Table{
		Title: "Power schedules (AFLFast family) on BigMap @ 2MB",
		Notes: []string{
			"equal exec budgets; schedules reallocate energy, the map is unaffected",
		},
		Header: []string{"benchmark", "schedule", "edges", "paths", "crashes"},
	}

	for _, p := range profiles {
		b, err := prepare(p, opts)
		if err != nil {
			return nil, err
		}
		for _, s := range schedules {
			f, err := fuzzer.New(b.prog, fuzzer.Config{
				Scheme:         fuzzer.SchemeBigMap,
				MapSize:        2 << 20,
				Seed:           opts.Seed,
				ExecCostFactor: b.costFactor,
				Schedule:       s,
			})
			if err != nil {
				return nil, err
			}
			if err := addSeeds(f, b.seeds); err != nil {
				return nil, err
			}
			if err := f.RunExecs(opts.ExecsPerRun); err != nil {
				return nil, err
			}
			st := f.Stats()
			t.AddRow(p.Name, string(s), fmtInt(st.EdgesDiscovered), fmtInt(st.Paths),
				fmtInt(st.UniqueCrashes))
			opts.progressf("  schedules %-10s %-8s edges=%d paths=%d\n",
				p.Name, s, st.EdgesDiscovered, st.Paths)
		}
	}
	return t, nil
}
