package bench

import (
	"strings"
	"testing"

	"github.com/bigmap/bigmap/internal/fuzzer"
)

// syntheticScaling builds a ScalingResult by hand so the table math can be
// checked without running campaigns.
func syntheticScaling() *ScalingResult {
	mk := func(scheme fuzzer.Scheme, n int, execs uint64, crashes int) scalingCell {
		return scalingCell{
			bench:      "demo",
			scheme:     scheme,
			instances:  n,
			totalExecs: execs,
			seconds:    1.0,
			crashes:    crashes,
		}
	}
	return &ScalingResult{cells: []scalingCell{
		mk(fuzzer.SchemeAFL, 1, 1000, 1),
		mk(fuzzer.SchemeAFL, 4, 2000, 1),
		mk(fuzzer.SchemeBigMap, 1, 10000, 2),
		mk(fuzzer.SchemeBigMap, 4, 38000, 5),
	}}
}

func TestFig9aNormalization(t *testing.T) {
	old := ScalingInstances
	ScalingInstances = []int{1, 4}
	defer func() { ScalingInstances = old }()

	tbl := syntheticScaling().Fig9a()
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// n=1 rows normalize to 1.00 for both schemes.
	if tbl.Rows[0][3] != "1.00" || tbl.Rows[0][4] != "1.00" {
		t.Errorf("n=1 normalization wrong: %v", tbl.Rows[0])
	}
	// n=4: afl 2000/1000 = 2.00; bigmap 38000/10000 = 3.80.
	if tbl.Rows[1][3] != "2.00" || tbl.Rows[1][4] != "3.80" {
		t.Errorf("n=4 normalization wrong: %v", tbl.Rows[1])
	}
}

func TestFig9bSpeedups(t *testing.T) {
	old := ScalingInstances
	ScalingInstances = []int{1, 4}
	defer func() { ScalingInstances = old }()

	tbl := syntheticScaling().Fig9b()
	// demo rows then AVERAGE rows.
	var got []string
	for _, row := range tbl.Rows {
		got = append(got, strings.Join(row, "|"))
	}
	// n=1: 10000/1000 = 10x; n=4: 38000/2000 = 19x.
	if tbl.Rows[0][2] != "10.00x" || tbl.Rows[1][2] != "19.00x" {
		t.Errorf("speedups wrong: %v", got)
	}
}

func TestFig10Counts(t *testing.T) {
	old := ScalingInstances
	ScalingInstances = []int{1, 4}
	defer func() { ScalingInstances = old }()

	tbl := syntheticScaling().Fig10()
	if tbl.Rows[1][2] != "1" || tbl.Rows[1][3] != "5" {
		t.Errorf("crash columns wrong: %v", tbl.Rows)
	}
}

// syntheticGrid exercises the Figure 6/7/8 table builders without runs.
func syntheticGrid() *GridResult {
	mk := func(scheme fuzzer.Scheme, size int, tput float64, edges, crashes int) Cell {
		return Cell{
			Benchmark: "demo", Scheme: scheme, MapSize: size,
			Execs: 1000, Seconds: 1, Throughput: tput,
			Edges: edges, UniqueCrashes: crashes,
		}
	}
	return &GridResult{Cells: []Cell{
		mk(fuzzer.SchemeAFL, 64<<10, 5000, 100, 1),
		mk(fuzzer.SchemeBigMap, 64<<10, 5000, 100, 1),
		mk(fuzzer.SchemeAFL, 2<<20, 500, 98, 0),
		mk(fuzzer.SchemeBigMap, 2<<20, 5000, 101, 2),
	}}
}

func TestFig6TableMath(t *testing.T) {
	old := GridSizes
	GridSizes = []int{64 << 10, 2 << 20}
	defer func() { GridSizes = old }()

	tbl := syntheticGrid().Fig6()
	// demo 64k speedup 1.00x, 2M speedup 10.00x, then AVERAGE rows.
	if tbl.Rows[0][4] != "1.00x" || tbl.Rows[1][4] != "10.00x" {
		t.Errorf("speedups wrong: %v", tbl.Rows)
	}
	foundAvg := false
	for _, row := range tbl.Rows {
		if row[0] == "AVERAGE" && row[1] == "2M" {
			foundAvg = true
			if row[4] != "10.00x" {
				t.Errorf("2M average = %v", row)
			}
		}
	}
	if !foundAvg {
		t.Error("missing AVERAGE rows")
	}
}

func TestFig7Fig8Tables(t *testing.T) {
	old := GridSizes
	GridSizes = []int{64 << 10, 2 << 20}
	defer func() { GridSizes = old }()

	g := syntheticGrid()
	f7 := g.Fig7()
	if f7.Rows[1][2] != "98" || f7.Rows[1][3] != "101" {
		t.Errorf("fig7 rows wrong: %v", f7.Rows)
	}
	f8 := g.Fig8()
	if f8.Rows[1][2] != "0" || f8.Rows[1][3] != "2" {
		t.Errorf("fig8 rows wrong: %v", f8.Rows)
	}
}
