package bench

import (
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/target"
)

// Selective compares the always-traced baseline against selective tracing and
// batched execution at equal exec budgets. The table is a coverage-preserving
// claim, not a throughput one: every mode must report identical edges, paths
// and crashes (the fast paths change how verdicts are computed, never what
// they are — pinned bitwise by FuzzSelectiveEquivalence), while the skipped /
// full-pass columns show how much classify-and-compare work the prefilter
// avoided. Wall-clock effects live in BENCH_3.json (BenchmarkExecLoop*),
// keeping this experiment byte-reproducible for `make results`.
func Selective(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	names := opts.Benchmarks
	if len(names) == 0 {
		names = []string{"libpng"}
	}
	profiles, err := selectProfiles(target.Profiles(), names)
	if err != nil {
		return nil, err
	}

	modes := []struct {
		name      string
		selective bool
		batch     int
	}{
		{"traced", false, 0},
		{"selective", true, 0},
		{"batched", false, 8},
		{"selective+batched", true, 8},
	}

	t := &Table{
		Title: "Selective tracing and batched execution on BigMap @ 2MB",
		Notes: []string{
			"equal exec budgets; identical edges/paths/crashes prove the fast paths preserve coverage",
			"skipped = executions the prefilter spared a classify pass; full = prefilter hits re-classified",
		},
		Header: []string{"benchmark", "mode", "edges", "paths", "crashes", "skipped", "full"},
	}

	for _, p := range profiles {
		b, err := prepare(p, opts)
		if err != nil {
			return nil, err
		}
		for _, m := range modes {
			f, err := fuzzer.New(b.prog, fuzzer.Config{
				Scheme:         fuzzer.SchemeBigMap,
				MapSize:        2 << 20,
				Seed:           opts.Seed,
				ExecCostFactor: b.costFactor,
				Selective:      m.selective,
				BatchSize:      m.batch,
			})
			if err != nil {
				return nil, err
			}
			if err := addSeeds(f, b.seeds); err != nil {
				return nil, err
			}
			if err := f.RunExecs(opts.ExecsPerRun); err != nil {
				return nil, err
			}
			st := f.Stats()
			t.AddRow(p.Name, m.name, fmtInt(st.EdgesDiscovered), fmtInt(st.Paths),
				fmtInt(st.UniqueCrashes), fmtInt(int(st.FilterSkips)), fmtInt(int(st.FilterFulls)))
			opts.progressf("  selective %-10s %-17s edges=%d skipped=%d\n",
				p.Name, m.name, st.EdgesDiscovered, st.FilterSkips)
		}
	}
	return t, nil
}
