// Package bench contains the experiment harness: one runner per table and
// figure of the paper's evaluation (§V), producing aligned-text tables and
// CSV so the repository can regenerate every published artifact. Absolute
// numbers are host- and substrate-specific; EXPERIMENTS.md records
// paper-vs-measured comparisons and the shape criteria each experiment must
// satisfy.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// Title names the experiment ("Figure 6: ...").
	Title string
	// Notes holds free-form context lines printed under the title.
	Notes []string
	// Header and Rows are the tabular payload.
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  %s\n", n); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			// Right-align numeric-looking cells, left-align the rest.
			if looksNumeric(c) {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (no quoting needed: cells are plain).
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '.' || r == '-' || r == '+' || r == '%' || r == 'x' || r == 'k' || r == 'M' || r == '/':
		default:
			return false
		}
	}
	return true
}

// fmtFloat renders a float with sensible precision for tables.
func fmtFloat(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// fmtInt renders an int.
func fmtInt(v int) string { return fmt.Sprintf("%d", v) }

// fmtSize renders a map size as the paper writes it (64k, 256k, 2M, 8M).
func fmtSize(size int) string {
	switch {
	case size >= 1<<20:
		return fmt.Sprintf("%dM", size>>20)
	case size >= 1<<10:
		return fmt.Sprintf("%dk", size>>10)
	default:
		return fmt.Sprintf("%d", size)
	}
}

// fmtCount renders a key count with decimal units, matching the paper's
// Figure 2 legend (5k, 10k, ..., 1M).
func fmtCount(n int) string {
	switch {
	case n >= 1000000 && n%1000000 == 0:
		return fmt.Sprintf("%dM", n/1000000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%dk", n/1000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
