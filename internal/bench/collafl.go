package bench

import (
	"github.com/bigmap/bigmap/internal/collafl"
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/target"
)

// CollAFL is the related-work comparison of §VI: CollAFL eliminates hash
// collisions by assigning static edge IDs, but must size its (flat) bitmap
// to the full static edge count even though only a fraction is ever visited
// — reintroducing the very overhead BigMap removes. The experiment measures
// four configurations at equal exec budgets:
//
//	afl-hash/64k       — vanilla AFL: small map, collisions
//	collafl/flat       — collision-free IDs over a flat map sized to the
//	                     static edge count (CollAFL as published)
//	collafl/bigmap     — the paper's suggested synthesis: collision-free IDs
//	                     over a two-level map (§VI: "can also be used in
//	                     combination")
//	afl-hash/bigmap-2M — BigMap alone with hashed IDs on a large map
func CollAFL(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	names := opts.Benchmarks
	if len(names) == 0 {
		names = []string{"gvn"}
	}
	profiles, err := selectProfiles(target.Profiles(), names)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "CollAFL comparison (§VI related work)",
		Notes: []string{
			"equal exec budgets; throughput in execs/sec",
			"paper point: CollAFL's flat map pays for ALL static edges; BigMap pays for visited ones",
		},
		Header: []string{"benchmark", "config", "map", "execs/s", "edges", "collisions"},
	}

	for _, p := range profiles {
		b, err := prepare(p, opts)
		if err != nil {
			return nil, err
		}
		assign, err := collafl.Assign(b.prog)
		if err != nil {
			return nil, err
		}

		collaflMetric := func(int) (core.Metric, error) { return assign.NewMetric(), nil }
		type config struct {
			name    string
			scheme  fuzzer.Scheme
			mapSize int
			metric  fuzzer.MetricFactory
		}
		configs := []config{
			{name: "afl-hash/64k", scheme: fuzzer.SchemeAFL, mapSize: 64 << 10},
			{name: "collafl/flat", scheme: fuzzer.SchemeAFL, mapSize: assign.MapSize(), metric: collaflMetric},
			{name: "collafl/bigmap", scheme: fuzzer.SchemeBigMap, mapSize: assign.MapSize(), metric: collaflMetric},
			{name: "afl-hash/bigmap-2M", scheme: fuzzer.SchemeBigMap, mapSize: 2 << 20},
		}
		for _, c := range configs {
			cfg := fuzzer.Config{
				Scheme:         c.scheme,
				MapSize:        c.mapSize,
				Seed:           opts.Seed,
				ExecCostFactor: b.costFactor,
				Metric:         c.metric,
			}
			f, err := fuzzer.New(b.prog, cfg)
			if err != nil {
				return nil, err
			}
			if err := addSeeds(f, b.seeds); err != nil {
				return nil, err
			}
			throughput, err := timeRun(f, opts.ExecsPerRun)
			if err != nil {
				return nil, err
			}
			st := f.Stats()
			collisions := "hash"
			if c.metric != nil {
				collisions = "none"
			}
			t.AddRow(p.Name, c.name, fmtSize(c.mapSize),
				fmtFloat(throughput, 0), fmtInt(st.EdgesDiscovered), collisions)
			opts.progressf("  collafl %-10s %-18s %8.0f execs/s edges=%d\n",
				p.Name, c.name, throughput, st.EdgesDiscovered)
		}
	}
	return t, nil
}
