package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/target"
)

// quickOpts keeps test experiment cells small.
func quickOpts() Options {
	return Options{
		Scale:       0.02,
		ExecsPerRun: 1500,
		Seed:        1,
		MaxSeeds:    4,
		CostFactor:  -1, // disable exec-cost simulation: tests check shapes, not calibration
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Notes:  []string{"a note"},
		Header: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1.00")
	tbl.AddRow("beta", "12.50")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a note", "name", "alpha", "12.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "name,value\n") {
		t.Errorf("CSV header wrong: %q", buf.String())
	}
}

func TestFig2MatchesPaperCurve(t *testing.T) {
	tbl, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(Fig2Keys) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(Fig2Keys))
	}
	// Rates must decrease along each row (bigger map, fewer collisions).
	for _, row := range tbl.Rows {
		prev := 101.0
		for _, cell := range row[1:] {
			var v float64
			if _, err := parseFloat(cell, &v); err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v > prev {
				t.Fatalf("collision rate increased along row %v", row)
			}
			prev = v
		}
	}
}

func TestSelectProfiles(t *testing.T) {
	all := target.Profiles()
	got, err := selectProfiles(all, nil)
	if err != nil || len(got) != len(all) {
		t.Errorf("default selection wrong: %v %d", err, len(got))
	}
	got, err = selectProfiles(all, []string{"zlib", "php"})
	if err != nil || len(got) != 2 || got[0].Name != "zlib" {
		t.Errorf("subset selection wrong: %v %v", err, got)
	}
	if _, err := selectProfiles(all, []string{"nope"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunGridSmall(t *testing.T) {
	profiles, err := selectProfiles(target.Profiles(), []string{"zlib"})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := RunGrid(profiles, GridSchemes, []int{64 << 10, 2 << 20}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for _, c := range cells {
		if c.Execs < 1500 {
			t.Errorf("%s/%s/%s: execs = %d", c.Benchmark, c.Scheme, fmtSize(c.MapSize), c.Execs)
		}
		if c.Throughput <= 0 {
			t.Errorf("%s/%s/%s: zero throughput", c.Benchmark, c.Scheme, fmtSize(c.MapSize))
		}
		if c.Edges == 0 {
			t.Errorf("%s/%s/%s: zero edges", c.Benchmark, c.Scheme, fmtSize(c.MapSize))
		}
	}
}

// TestThroughputShape asserts the paper's headline result on a small grid:
// growing the map from 64kB to 2MB collapses the AFL scheme's throughput but
// barely touches BigMap's, so BigMap's relative speedup at 2MB is large.
func TestThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput shape needs a timed run")
	}
	opts := quickOpts()
	opts.ExecsPerRun = 4000
	profiles, err := selectProfiles(target.Profiles(), []string{"libpng"})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := RunGrid(profiles, GridSchemes, []int{64 << 10, 2 << 20}, opts)
	if err != nil {
		t.Fatal(err)
	}
	get := func(s fuzzer.Scheme, size int) Cell {
		for _, c := range cells {
			if c.Scheme == s && c.MapSize == size {
				return c
			}
		}
		t.Fatalf("missing cell %s/%d", s, size)
		return Cell{}
	}
	aflDrop := get(fuzzer.SchemeAFL, 64<<10).Throughput / get(fuzzer.SchemeAFL, 2<<20).Throughput
	bigDrop := get(fuzzer.SchemeBigMap, 64<<10).Throughput / get(fuzzer.SchemeBigMap, 2<<20).Throughput
	if aflDrop < 2 {
		t.Errorf("AFL 64k->2M slowdown = %.2fx, want >= 2x", aflDrop)
	}
	if bigDrop > 2 {
		t.Errorf("BigMap 64k->2M slowdown = %.2fx, want <= 2x", bigDrop)
	}
	if aflDrop <= bigDrop {
		t.Errorf("AFL slowdown %.2fx should exceed BigMap slowdown %.2fx", aflDrop, bigDrop)
	}
}

func TestFig3SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign run")
	}
	opts := quickOpts()
	opts.Benchmarks = []string{"zlib"}
	tbl, err := Fig3(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(Fig3Sizes) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(Fig3Sizes))
	}
	// The total column must grow with map size (AFL scheme).
	var prev float64
	for i, row := range tbl.Rows {
		var total float64
		if _, err := parseFloat(row[len(row)-1], &total); err != nil {
			t.Fatalf("bad total %q", row[len(row)-1])
		}
		if i > 0 && total < prev {
			t.Errorf("total time shrank as map grew: %v", tbl.Rows)
		}
		prev = total
	}
}

func TestTable2SmallRun(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"zlib", "libpng"}
	tbl, err := Table2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "zlib" || tbl.Rows[0][8] != "v1.2.11" {
		t.Errorf("row payload wrong: %v", tbl.Rows[0])
	}
}

func TestTable3SmallRun(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"sccp"}
	tbl, err := Table3(opts)
	if err != nil {
		t.Fatal(err)
	}
	// One benchmark row plus the AVERAGE row.
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	if tbl.Rows[1][0] != "AVERAGE" {
		t.Errorf("missing AVERAGE row: %v", tbl.Rows)
	}
}

func TestScalingSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test runs multi-second campaigns")
	}
	opts := quickOpts()
	opts.Benchmarks = []string{"zlib"}
	opts.ExecsPerRun = 4000
	// Shrink the sweep for the test.
	old := ScalingInstances
	ScalingInstances = []int{1, 2}
	defer func() { ScalingInstances = old }()

	res, err := RunScaling(opts, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.cells) != 4 { // 1 bench x 2 schemes x 2 instance counts
		t.Fatalf("cells = %d, want 4", len(res.cells))
	}
	for _, tbl := range []*Table{res.Fig9a(), res.Fig9b(), res.Fig10()} {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty", tbl.Title)
		}
	}
}

func TestAblationSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign run")
	}
	opts := quickOpts()
	opts.Benchmarks = []string{"zlib"}
	tbl, err := Ablation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 variants", len(tbl.Rows))
	}
}

func TestFmtSize(t *testing.T) {
	tests := map[int]string{
		64 << 10: "64k",
		2 << 20:  "2M",
		8 << 20:  "8M",
		512:      "512",
	}
	for in, want := range tests {
		if got := fmtSize(in); got != want {
			t.Errorf("fmtSize(%d) = %q, want %q", in, got, want)
		}
	}
}

// parseFloat parses a table cell as a float.
func parseFloat(s string, out *float64) (int, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	*out = v
	return 1, nil
}

func TestRunGridTrialsAveraging(t *testing.T) {
	profiles, err := selectProfiles(target.Profiles(), []string{"zlib"})
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	opts.Trials = 2
	opts.ExecsPerRun = 800
	cells, err := RunGrid(profiles, []fuzzer.Scheme{fuzzer.SchemeBigMap}, []int{64 << 10}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Execs < 800 || cells[0].Throughput <= 0 {
		t.Errorf("averaged cell wrong: %+v", cells)
	}
}

func TestFig7TimeBudgetSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("time-budget cells need wall-clock runs")
	}
	opts := quickOpts()
	opts.Benchmarks = []string{"zlib"}
	// Shrink the size sweep for the test.
	old := GridSizes
	GridSizes = []int{64 << 10, 2 << 20}
	defer func() { GridSizes = old }()

	cov, crashes, err := Fig7TimeBudget(opts, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(cov.Rows) != 2 || len(crashes.Rows) != 2 {
		t.Fatalf("rows = %d/%d, want 2/2", len(cov.Rows), len(crashes.Rows))
	}
	// Under a time budget the AFL scheme's 2M coverage must not exceed its
	// 64k coverage by much — its throughput collapse caps exploration.
	var afl64, afl2M float64
	if _, err := parseFloat(cov.Rows[0][2], &afl64); err != nil {
		t.Fatal(err)
	}
	if _, err := parseFloat(cov.Rows[1][2], &afl2M); err != nil {
		t.Fatal(err)
	}
	if afl2M > afl64*1.5 {
		t.Errorf("AFL@2M coverage %v implausibly exceeds AFL@64k %v under a time budget", afl2M, afl64)
	}
}
