package bench

import (
	"github.com/bigmap/bigmap/internal/dictionary"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/lafintel"
	"github.com/bigmap/bigmap/internal/target"
)

// Roadblocks is an extension experiment beyond the paper: it compares the
// three ways this repository can get a fuzzer past multi-byte magic-value
// comparisons, all on a BigMap so map size is never the bottleneck:
//
//	plain    — havoc only (the roadblock stands)
//	dict     — statically harvested comparison operands as dictionary tokens
//	laf      — laf-intel splitting (the paper's §V-C ingredient): feedback
//	           rewards partial matches, at the cost of edge amplification
//	cmplog   — RedQueen-style input-to-state patching (AFL++'s alternative;
//	           the related-work's CompareCoverage [34] family)
//
// The output reports discovered coverage and solved magic gates per
// strategy. laf-intel additionally reports its static-edge amplification —
// the map pressure that motivates BigMap in the first place.
func Roadblocks(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	names := opts.Benchmarks
	if len(names) == 0 {
		names = []string{"libxml2"}
	}
	profiles, err := selectProfiles(target.Profiles(), names)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Roadblocks (extension): strategies against magic-value comparisons",
		Notes: []string{
			"all runs BigMap @ 2MB; equal exec budgets; edge metric",
			"laf amplifies static edges; cmplog and dict leave them unchanged",
		},
		Header: []string{"benchmark", "strategy", "edges", "paths", "static-edges"},
	}

	for _, p := range profiles {
		b, err := prepare(p, opts)
		if err != nil {
			return nil, err
		}
		lafProg, lafStats := lafintel.Transform(b.prog, opts.Seed)
		dict := dictionary.Data(dictionary.Extract(b.prog))

		type strategy struct {
			name string
			prog *target.Program
			cfg  fuzzer.Config
		}
		base := fuzzer.Config{
			Scheme:         fuzzer.SchemeBigMap,
			MapSize:        2 << 20,
			Seed:           opts.Seed,
			ExecCostFactor: b.costFactor,
		}
		withDict := base
		withDict.Dict = dict
		withCmp := base
		withCmp.EnableCmpLog = true

		strategies := []strategy{
			{name: "plain", prog: b.prog, cfg: base},
			{name: "dict", prog: b.prog, cfg: withDict},
			{name: "laf", prog: lafProg, cfg: base},
			{name: "cmplog", prog: b.prog, cfg: withCmp},
		}
		for _, s := range strategies {
			f, err := fuzzer.New(s.prog, s.cfg)
			if err != nil {
				return nil, err
			}
			if err := addSeeds(f, b.seeds); err != nil {
				return nil, err
			}
			if err := f.RunExecs(opts.ExecsPerRun); err != nil {
				return nil, err
			}
			st := f.Stats()
			t.AddRow(p.Name, s.name, fmtInt(st.EdgesDiscovered), fmtInt(st.Paths),
				fmtInt(s.prog.StaticEdges()))
			opts.progressf("  roadblocks %-10s %-7s edges=%d paths=%d\n",
				p.Name, s.name, st.EdgesDiscovered, st.Paths)
		}
		t.Notes = append(t.Notes,
			"laf amplification on "+p.Name+": "+
				fmtInt(lafStats.StaticEdgesBefore)+" -> "+fmtInt(lafStats.StaticEdgesAfter)+" static edges")
	}
	return t, nil
}
