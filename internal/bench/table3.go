package bench

import (
	"fmt"

	"github.com/bigmap/bigmap/internal/collision"
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/covreport"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/lafintel"
	"github.com/bigmap/bigmap/internal/target"
)

// Table3 regenerates the paper's Table III: the aggressive composition of
// laf-intel and 3-gram coverage on the LLVM harnesses, fuzzed with BigMap at
// a 64kB and a 2MB map. Both configurations use BigMap (as in the paper);
// the comparison isolates the effect of collision mitigation on crash
// finding when the metric composition floods a small map.
func Table3(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	profiles, err := selectProfiles(target.CompositionProfiles(), opts.Benchmarks)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Table III: code coverage with laf-intel and 3-gram (both runs BigMap)",
		Notes: []string{
			"paper shape: collision rate collapses small->2M; unique crashes improve ~33%",
			"the small map is chosen per benchmark so keys/slots matches the paper's",
			"~9:1 pressure (603k keys in a 64kB map); at reduced scale a literal 64kB",
			"map would be nearly collision-free and show no effect",
		},
		Header: []string{
			"benchmark", "small-map",
			"coll%small", "coll%2M",
			"edges-small", "edges2M",
			"crash-small", "crash2M",
			"crash64k(paper)", "crash2M(paper)",
		},
	}

	var sum64, sum2M float64
	var smallLabel string
	for _, p := range profiles {
		b, err := prepare(p, opts)
		if err != nil {
			return nil, err
		}
		laf, stats := lafintel.Transform(b.prog, opts.Seed)
		opts.progressf("  table3 %-16s laf: %d -> %d static edges\n",
			p.Name, stats.StaticEdgesBefore, stats.StaticEdgesAfter)

		// run returns the fuzzer stats plus the bias-free edge coverage of
		// the output corpus (§V-A3: "subjected them to a bias-free
		// independent coverage build") — the fuzzer's own virgin count is
		// bounded by its map and useless for cross-size comparison.
		run := func(size int) (fuzzer.Stats, int, error) {
			f, err := fuzzer.New(laf, fuzzer.Config{
				Scheme:         fuzzer.SchemeBigMap,
				MapSize:        size,
				Seed:           opts.Seed,
				ExecCostFactor: b.costFactor,
				Metric: func(mapSize int) (core.Metric, error) {
					return core.NewNGramMetric(mapSize, 3)
				},
			})
			if err != nil {
				return fuzzer.Stats{}, 0, err
			}
			if err := addSeeds(f, b.seeds); err != nil {
				return fuzzer.Stats{}, 0, err
			}
			if err := f.RunExecs(opts.ExecsPerRun); err != nil {
				return fuzzer.Stats{}, 0, err
			}
			cov := covreport.New(laf, 0)
			for _, e := range f.Queue().Entries() {
				cov.Add(e.Input)
			}
			return f.Stats(), cov.Edges(), nil
		}

		// Big map first: its (nearly collision-free) key count calibrates
		// the small map to the paper's ~9:1 keys-to-slots pressure.
		big, bigCov, err := run(2 << 20)
		if err != nil {
			return nil, err
		}
		smallSize := 1 << 10
		for smallSize*9 < big.EdgesDiscovered {
			smallSize <<= 1
		}
		small, smallCov, err := run(smallSize)
		if err != nil {
			return nil, err
		}
		cells := [2]fuzzer.Stats{small, big}
		covEdges := [2]int{smallCov, bigCov}
		sizes := []int{smallSize, 2 << 20}
		smallLabel = fmtSize(smallSize)

		coll := func(keys, size int) float64 {
			r, rerr := collision.Rate(size, maxInt(keys, 1))
			if rerr != nil {
				return 0
			}
			return r * 100
		}
		paper, ok := target.TableIIICrashes[p.Name]
		if !ok {
			return nil, fmt.Errorf("bench: no Table III paper record for %q", p.Name)
		}
		t.AddRow(p.Name, smallLabel,
			fmtFloat(coll(big.EdgesDiscovered, sizes[0]), 1), fmtFloat(coll(big.EdgesDiscovered, sizes[1]), 1),
			fmtInt(covEdges[0]), fmtInt(covEdges[1]),
			fmtInt(cells[0].UniqueCrashes), fmtInt(cells[1].UniqueCrashes),
			fmtInt(paper[0]), fmtInt(paper[1]),
		)
		sum64 += float64(cells[0].UniqueCrashes)
		sum2M += float64(cells[1].UniqueCrashes)
	}
	if n := float64(len(profiles)); n > 0 {
		gain := 0.0
		if sum64 > 0 {
			gain = (sum2M/sum64 - 1) * 100
		}
		t.AddRow("AVERAGE", "", "", "",
			"", "",
			fmtFloat(sum64/n, 1), fmtFloat(sum2M/n, 1),
			"264", "352")
		t.Notes = append(t.Notes, fmt.Sprintf("measured crash gain 64k->2M: %+.0f%% (paper: +33%%)", gain))
	}
	return t, nil
}
