package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/bigmap/bigmap/internal/benchjson"
)

// GridSchema identifies the experiments.json layout; bump on incompatible
// changes. Configs carrying a different schema string are rejected before
// any experiment runs.
const GridSchema = "bigmap-grid/v1"

// GridParams are the tunables an experiments.json can set globally
// (defaults) or per experiment. Zero values mean "inherit": experiment
// inherits from defaults, defaults inherit from the package's own defaults
// (Options.withDefaults).
type GridParams struct {
	// Scale scales benchmark programs vs the paper's static edges.
	Scale float64 `json:"scale,omitempty"`
	// Execs is the test-case budget per configuration cell.
	Execs uint64 `json:"execs,omitempty"`
	// Seed is the campaign seed of the first repeat; repeat i runs with
	// Seed+i.
	Seed uint64 `json:"seed,omitempty"`
	// Repeats reruns the whole experiment with consecutive seeds and
	// aggregates numeric cells to mean±stddev (1 = verbatim single run).
	Repeats int `json:"repeats,omitempty"`
	// Seconds is the per-cell wall-clock budget for time-budget
	// experiments (which are not reproducible; see Experiment.Timing).
	Seconds float64 `json:"seconds,omitempty"`
	// MaxSeeds caps the synthesized seed corpus per benchmark.
	MaxSeeds int `json:"max_seeds,omitempty"`
	// Benchmarks restricts the benchmark set (nil = experiment default).
	Benchmarks []string `json:"benchmarks,omitempty"`
}

// GridExperiment is one experiments.json entry: a registered experiment name
// plus parameter overrides and output shaping.
type GridExperiment struct {
	GridParams
	// Name must match an Experiment in Registry().
	Name string `json:"name"`
	// DropColumns removes columns by header name after the run — the
	// mechanism that keeps wall-clock-derived columns (execs/s) out of
	// otherwise deterministic artifacts.
	DropColumns []string `json:"drop_columns,omitempty"`
	// ExpectHeaders, when set, pins the post-drop header of each emitted
	// table (outer index = table order). Any drift — a renamed, added,
	// removed or reordered column — fails the run, so artifact-consuming
	// scripts break loudly at generation time instead of silently
	// misreading columns.
	ExpectHeaders [][]string `json:"expect_headers,omitempty"`
}

// GridConfig is the parsed experiments.json.
type GridConfig struct {
	Schema      string           `json:"schema"`
	Defaults    GridParams       `json:"defaults"`
	Experiments []GridExperiment `json:"experiments"`
}

// ParseGridConfig decodes and validates an experiments.json. Unknown fields
// are rejected so typos ("drop_cols") fail instead of silently doing
// nothing.
func ParseGridConfig(data []byte) (*GridConfig, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cfg GridConfig
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("grid config: %w", err)
	}
	if cfg.Schema != GridSchema {
		return nil, fmt.Errorf("grid config: schema %q, want %q", cfg.Schema, GridSchema)
	}
	if len(cfg.Experiments) == 0 {
		return nil, fmt.Errorf("grid config: no experiments")
	}
	seen := map[string]bool{}
	for i, e := range cfg.Experiments {
		if e.Name == "" {
			return nil, fmt.Errorf("grid config: experiment %d has no name", i)
		}
		if _, ok := Lookup(e.Name); !ok {
			return nil, fmt.Errorf("grid config: unknown experiment %q", e.Name)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("grid config: experiment %q listed twice", e.Name)
		}
		seen[e.Name] = true
		if e.Repeats < 0 {
			return nil, fmt.Errorf("grid config: experiment %q: negative repeats", e.Name)
		}
	}
	return &cfg, nil
}

// LoadGridConfig reads and parses an experiments.json from disk.
func LoadGridConfig(path string) (*GridConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseGridConfig(data)
}

// resolve merges experiment overrides onto the config defaults and returns
// the bench options, the per-cell seconds budget and the repeat count.
func (c *GridConfig) resolve(e GridExperiment) (Options, float64, int) {
	pick := func(over, def float64) float64 {
		if over != 0 {
			return over
		}
		return def
	}
	opts := Options{
		Scale:       pick(e.Scale, c.Defaults.Scale),
		ExecsPerRun: e.Execs,
		Seed:        e.Seed,
		MaxSeeds:    e.MaxSeeds,
	}
	if opts.ExecsPerRun == 0 {
		opts.ExecsPerRun = c.Defaults.Execs
	}
	if opts.Seed == 0 {
		opts.Seed = c.Defaults.Seed
	}
	if opts.MaxSeeds == 0 {
		opts.MaxSeeds = c.Defaults.MaxSeeds
	}
	opts.Benchmarks = e.Benchmarks
	if opts.Benchmarks == nil {
		opts.Benchmarks = c.Defaults.Benchmarks
	}
	seconds := pick(e.Seconds, c.Defaults.Seconds)
	if seconds == 0 {
		seconds = 2
	}
	repeats := e.Repeats
	if repeats == 0 {
		repeats = c.Defaults.Repeats
	}
	if repeats == 0 {
		repeats = 1
	}
	return opts, seconds, repeats
}

// dropColumns removes the named columns from a table (header and every row).
// Unknown names are an error: a drop list that no longer matches the table
// is exactly the schema drift the grid is supposed to catch.
func dropColumns(t benchjson.TableJSON, drop []string) (benchjson.TableJSON, error) {
	if len(drop) == 0 {
		return t, nil
	}
	unwanted := map[string]bool{}
	for _, d := range drop {
		unwanted[d] = true
	}
	keep := make([]int, 0, len(t.Header))
	for i, h := range t.Header {
		if unwanted[h] {
			delete(unwanted, h)
			continue
		}
		keep = append(keep, i)
	}
	for d := range unwanted {
		return t, fmt.Errorf("drop_columns: column %q not in table %q", d, t.Title)
	}
	out := benchjson.TableJSON{Title: t.Title, Notes: t.Notes}
	for _, i := range keep {
		out.Header = append(out.Header, t.Header[i])
	}
	for _, row := range t.Rows {
		nr := make([]string, 0, len(keep))
		for _, i := range keep {
			if i < len(row) {
				nr = append(nr, row[i])
			}
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// sameHeader reports whether two headers match exactly (order included).
func sameHeader(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// GridRunResult is the outcome of one RunGridConfig call.
type GridRunResult struct {
	// Report aggregates every experiment's tables under the benchjson
	// schema; it is what grid.json holds.
	Report *benchjson.Report
	// Files lists every artifact written, outDir-relative, in order.
	Files []string
}

// RunGridConfig executes every experiment in the config and writes the
// artifacts into outDir: per experiment an aligned-text table (<name>.txt)
// and a CSV (<name>.csv), plus one combined grid.json over the whole run.
// Every table is schema-validated (benchjson.ValidateTable) and checked
// against the config's expected headers before anything is written, so a
// drifted artifact never reaches disk. With fixed seeds and a config
// restricted to deterministic experiments, consecutive runs produce
// byte-identical artifacts.
func RunGridConfig(cfg *GridConfig, outDir string, progress io.Writer) (*GridRunResult, error) {
	logf := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format, args...)
		}
	}
	report := &benchjson.Report{Schema: benchjson.Schema}
	var written []string

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}

	for _, e := range cfg.Experiments {
		exp, _ := Lookup(e.Name) // validated by ParseGridConfig
		opts, seconds, repeats := cfg.resolve(e)
		if exp.Timing {
			logf("grid: warning: %s measures wall clock; its artifacts will not be reproducible\n", e.Name)
		}
		logf("grid: %s (repeats=%d seed=%d execs=%d scale=%g)\n",
			e.Name, repeats, opts.Seed, opts.ExecsPerRun, opts.Scale)

		// One run per repeat, consecutive seeds, each producing the same
		// list of tables.
		perRepeat := make([][]benchjson.TableJSON, repeats)
		baseSeed := opts.Seed
		for r := 0; r < repeats; r++ {
			ropts := opts
			ropts.Seed = baseSeed + uint64(r)
			if ropts.Seed == 0 { // Options.withDefaults treats 0 as unset
				ropts.Seed = 1
			}
			ropts.Progress = progress
			ts, err := exp.Run(ropts, seconds)
			if err != nil {
				return nil, fmt.Errorf("%s (repeat %d): %w", e.Name, r, err)
			}
			for _, t := range ts {
				if t == nil {
					return nil, fmt.Errorf("%s: driver returned a nil table", e.Name)
				}
				tj, err := dropColumns(
					benchjson.FromTable(t.Title, t.Notes, t.Header, t.Rows), e.DropColumns)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", e.Name, err)
				}
				perRepeat[r] = append(perRepeat[r], tj)
			}
			if len(perRepeat[r]) != len(perRepeat[0]) {
				return nil, fmt.Errorf("%s: repeat %d emitted %d tables, repeat 0 emitted %d",
					e.Name, r, len(perRepeat[r]), len(perRepeat[0]))
			}
		}

		// Aggregate table-by-table across repeats.
		var aggregated []benchjson.TableJSON
		for ti := range perRepeat[0] {
			group := make([]benchjson.TableJSON, repeats)
			for r := range perRepeat {
				group[r] = perRepeat[r][ti]
			}
			agg, err := benchjson.AggregateTables(group)
			if err != nil {
				return nil, fmt.Errorf("%s: aggregate table %d: %w", e.Name, ti, err)
			}
			if repeats > 1 {
				agg.Notes = append(agg.Notes, fmt.Sprintf(
					"aggregated over %d repeats (seeds %d..%d); ± is sample stddev",
					repeats, baseSeed, baseSeed+uint64(repeats)-1))
			}
			aggregated = append(aggregated, agg)
		}

		// Schema checks before anything touches disk.
		if e.ExpectHeaders != nil && len(e.ExpectHeaders) != len(aggregated) {
			return nil, fmt.Errorf("%s: expect_headers pins %d tables, experiment emitted %d",
				e.Name, len(e.ExpectHeaders), len(aggregated))
		}
		for ti, t := range aggregated {
			if err := benchjson.ValidateTable(&t); err != nil {
				return nil, fmt.Errorf("%s: table %d: %w", e.Name, ti, err)
			}
			if e.ExpectHeaders != nil && !sameHeader(t.Header, e.ExpectHeaders[ti]) {
				return nil, fmt.Errorf("%s: table %d header drifted:\n  have %q\n  want %q",
					e.Name, ti, t.Header, e.ExpectHeaders[ti])
			}
		}

		files, err := writeExperimentArtifacts(outDir, e.Name, aggregated)
		if err != nil {
			return nil, err
		}
		written = append(written, files...)
		report.Tables = append(report.Tables, aggregated...)
	}

	if err := benchjson.Validate(report); err != nil {
		return nil, fmt.Errorf("grid report failed schema validation: %w", err)
	}
	gridJSON := filepath.Join(outDir, "grid.json")
	f, err := os.Create(gridJSON)
	if err != nil {
		return nil, err
	}
	if err := report.Write(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	written = append(written, "grid.json")
	return &GridRunResult{Report: report, Files: written}, nil
}

// writeExperimentArtifacts renders one experiment's aggregated tables as
// <name>.txt (aligned text, as the CLI prints) and <name>.csv.
func writeExperimentArtifacts(outDir, name string, tables []benchjson.TableJSON) ([]string, error) {
	var txt, csv bytes.Buffer
	for i, tj := range tables {
		t := &Table{Title: tj.Title, Notes: tj.Notes, Header: tj.Header, Rows: tj.Rows}
		if i > 0 {
			txt.WriteByte('\n')
			csv.WriteByte('\n')
		}
		if err := t.Render(&txt); err != nil {
			return nil, err
		}
		if err := t.RenderCSV(&csv); err != nil {
			return nil, err
		}
	}
	var files []string
	for _, out := range []struct {
		file string
		data []byte
	}{
		{name + ".txt", txt.Bytes()},
		{name + ".csv", csv.Bytes()},
	} {
		if err := os.WriteFile(filepath.Join(outDir, out.file), out.data, 0o644); err != nil {
			return nil, err
		}
		files = append(files, out.file)
	}
	return files, nil
}
