package bench

import "testing"

func TestDedupBiasSmallRun(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"gvn"}
	tbl, err := DedupBias(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(GridSizes) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(GridSizes))
	}
	var cw []string
	for _, row := range tbl.Rows {
		if len(row) != 5 {
			t.Fatalf("row shape wrong: %v", row)
		}
		if row[2] == "0" {
			t.Fatalf("no crash inputs synthesized: %v", row)
		}
		cw = append(cw, row[3])
	}
	// The Crashwalk column must be identical across map sizes — it is
	// map-independent by construction.
	for i := 1; i < len(cw); i++ {
		if cw[i] != cw[0] {
			t.Errorf("crashwalk counts vary with map size: %v", cw)
		}
	}
}

func TestRoadblocksSmallRun(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"libxml2"}
	opts.ExecsPerRun = 2500
	tbl, err := Roadblocks(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 strategies", len(tbl.Rows))
	}
}

func TestCollAFLSmallRun(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"libpng"}
	opts.ExecsPerRun = 2000
	tbl, err := CollAFL(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 configs", len(tbl.Rows))
	}
}

func TestMetricsSmallRun(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"zlib"}
	opts.ExecsPerRun = 2000
	tbl, err := Metrics(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 metrics", len(tbl.Rows))
	}
}

func TestEnsembleVsStackingSmallRun(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"sccp"}
	opts.ExecsPerRun = 3000
	tbl, err := EnsembleVsStacking(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 configs", len(tbl.Rows))
	}
}

func TestSchedulesSmallRun(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"zlib"}
	opts.ExecsPerRun = 1500
	tbl, err := Schedules(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 schedules", len(tbl.Rows))
	}
}
