package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

// Options tune experiment cost. Zero values select quick defaults suitable
// for a laptop run; the CLI exposes flags for full-scale sweeps.
type Options struct {
	// Scale scales the generated programs relative to the paper's
	// static-edge counts (default 0.05).
	Scale float64
	// ExecsPerRun is the test-case budget per configuration cell (default
	// 20,000; the paper's Figure 3 normalizes to one million).
	ExecsPerRun uint64
	// Seed drives all randomness (default 1).
	Seed uint64
	// MaxSeeds caps the synthesized seed corpus per benchmark (default 32;
	// Table II corpora reach 2,782 seeds, which quick runs cannot afford).
	MaxSeeds int
	// CostFactor simulates native execution cost per virtual cycle.
	// 0 (the default) auto-calibrates per benchmark so that an average
	// seed execution costs about ExecWorkUnits of CPU work regardless of
	// program scale — restoring the paper's regime where execution
	// dominates map operations at a 64kB map. Negative disables the
	// simulation entirely.
	CostFactor int
	// ExecWorkUnits is the auto-calibration target (default 24,000 work
	// units per execution, roughly 15us of CPU).
	ExecWorkUnits int
	// Trials averages each grid cell over this many runs with different
	// seeds (default 1; the paper uses an average of three runs, §V-B).
	Trials int
	// VirginShards configures campaign-level virgin union sharding for the
	// scaling experiments (fig9/fig10): 0 disables the union, 1 uses the
	// single-lock reference, >=2 merges lock-free across that many shards.
	VirginShards int
	// Benchmarks filters profiles by name (nil = experiment default set).
	Benchmarks []string
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	if o.ExecsPerRun == 0 {
		o.ExecsPerRun = 20000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxSeeds == 0 {
		o.MaxSeeds = 32
	}
	if o.ExecWorkUnits == 0 {
		o.ExecWorkUnits = 24000
	}
	if o.Trials == 0 {
		o.Trials = 1
	}
	return o
}

func (o Options) progressf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format, args...)
	}
}

// selectProfiles returns the requested subset of profiles, defaulting to
// all.
func selectProfiles(all []target.Profile, names []string) ([]target.Profile, error) {
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]target.Profile, len(all))
	for _, p := range all {
		byName[p.Name] = p
	}
	out := make([]target.Profile, 0, len(names))
	for _, n := range names {
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("bench: unknown benchmark %q", n)
		}
		out = append(out, p)
	}
	return out, nil
}

// bencher caches a generated program, its seed corpus, and the calibrated
// execution-cost factor shared by every cell of the benchmark.
type bencher struct {
	profile    target.Profile
	prog       *target.Program
	seeds      [][]byte
	costFactor int
}

// prepare generates the benchmark program, synthesizes its seed corpus, and
// calibrates the simulated execution cost so an average seed execution
// costs opts.ExecWorkUnits of CPU work whatever the program's scale.
func prepare(p target.Profile, opts Options) (*bencher, error) {
	prog, err := target.Generate(p.Spec(opts.Scale))
	if err != nil {
		return nil, fmt.Errorf("generate %s: %w", p.Name, err)
	}
	nSeeds := p.SeedCount
	if nSeeds > opts.MaxSeeds {
		nSeeds = opts.MaxSeeds
	}
	if nSeeds < 1 {
		nSeeds = 1
	}
	src := rng.New(opts.Seed ^ 0x5eed5eed)
	b := &bencher{
		profile: p,
		prog:    prog,
		seeds:   prog.SampleSeeds(src, nSeeds),
	}
	b.costFactor = calibrateCost(prog, b.seeds, opts)
	return b, nil
}

// calibrateCost derives the per-cycle work factor from the average seed
// execution cost.
func calibrateCost(prog *target.Program, seeds [][]byte, opts Options) int {
	switch {
	case opts.CostFactor > 0:
		return opts.CostFactor
	case opts.CostFactor < 0:
		return 0
	}
	ip := target.NewInterp(prog)
	var total uint64
	for _, s := range seeds {
		total += ip.Run(s, target.NopTracer{}, 1<<22).Cycles
	}
	avg := total / uint64(len(seeds))
	if avg == 0 {
		avg = 1
	}
	factor := opts.ExecWorkUnits / int(avg)
	if factor < 1 {
		factor = 1
	}
	return factor
}

// Cell is one measured fuzzing configuration.
type Cell struct {
	Benchmark     string
	Scheme        fuzzer.Scheme
	MapSize       int
	Execs         uint64
	Seconds       float64
	Throughput    float64 // execs per second
	Edges         int
	Paths         int
	UniqueCrashes int
	UsedKeys      int
}

// runCell measures one fuzzing configuration, averaging opts.Trials runs
// with distinct seeds (the paper's three-run averaging, §V-B).
func (b *bencher) runCell(scheme fuzzer.Scheme, mapSize int, opts Options) (Cell, error) {
	var acc Cell
	for trial := 0; trial < opts.Trials; trial++ {
		cell, err := b.runTrial(scheme, mapSize, opts, opts.Seed+uint64(trial)*1009)
		if err != nil {
			return Cell{}, err
		}
		acc.Benchmark = cell.Benchmark
		acc.Scheme = cell.Scheme
		acc.MapSize = cell.MapSize
		acc.Execs += cell.Execs
		acc.Seconds += cell.Seconds
		acc.Throughput += cell.Throughput
		acc.Edges += cell.Edges
		acc.Paths += cell.Paths
		acc.UniqueCrashes += cell.UniqueCrashes
		acc.UsedKeys += cell.UsedKeys
	}
	n := opts.Trials
	acc.Execs /= uint64(n)
	acc.Seconds /= float64(n)
	acc.Throughput /= float64(n)
	acc.Edges /= n
	acc.Paths /= n
	acc.UniqueCrashes /= n
	acc.UsedKeys /= n
	return acc, nil
}

// runTrial runs one fuzzing configuration once for the exec budget and
// measures wall-clock throughput.
func (b *bencher) runTrial(scheme fuzzer.Scheme, mapSize int, opts Options, seed uint64) (Cell, error) {
	f, err := fuzzer.New(b.prog, fuzzer.Config{
		Scheme:         scheme,
		MapSize:        mapSize,
		Seed:           seed,
		ExecCostFactor: b.costFactor,
	})
	if err != nil {
		return Cell{}, err
	}
	accepted := 0
	for _, s := range b.seeds {
		if err := f.AddSeed(s); err == nil {
			accepted++
		}
	}
	if accepted == 0 {
		return Cell{}, fmt.Errorf("bench %s: %w", b.profile.Name, fuzzer.ErrNoSeeds)
	}

	start := time.Now() //bigmap:nondeterministic-ok wall-clock throughput measurement is the product
	if err := f.RunExecs(opts.ExecsPerRun); err != nil {
		return Cell{}, err
	}
	elapsed := time.Since(start).Seconds() //bigmap:nondeterministic-ok wall-clock throughput measurement is the product

	st := f.Stats()
	cell := Cell{
		Benchmark:     b.profile.Name,
		Scheme:        scheme,
		MapSize:       mapSize,
		Execs:         st.Execs,
		Seconds:       elapsed,
		Edges:         st.EdgesDiscovered,
		Paths:         st.Paths,
		UniqueCrashes: st.UniqueCrashes,
		UsedKeys:      st.UsedKeys,
	}
	if elapsed > 0 {
		cell.Throughput = float64(st.Execs) / elapsed
	}
	return cell, nil
}

// RunGrid measures every (benchmark, scheme, map size) combination. The
// same generated program and seed corpus back all cells of a benchmark, so
// only the map configuration varies — the controlled comparison behind
// Figures 6, 7 and 8.
func RunGrid(profiles []target.Profile, schemes []fuzzer.Scheme, sizes []int, opts Options) ([]Cell, error) {
	opts = opts.withDefaults()
	cells := make([]Cell, 0, len(profiles)*len(schemes)*len(sizes))
	for _, p := range profiles {
		b, err := prepare(p, opts)
		if err != nil {
			return nil, err
		}
		for _, scheme := range schemes {
			for _, size := range sizes {
				cell, err := b.runCell(scheme, size, opts)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", p.Name, scheme, fmtSize(size), err)
				}
				opts.progressf("  %-16s %-7s %-5s %8.0f execs/s  edges=%d crashes=%d\n",
					cell.Benchmark, cell.Scheme, fmtSize(cell.MapSize), cell.Throughput,
					cell.Edges, cell.UniqueCrashes)
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// geoMean computes the geometric mean of positive values; zero inputs are
// skipped. Returns 0 for an empty input.
func geoMean(vals []float64) float64 {
	logSum := 0.0
	n := 0
	for _, v := range vals {
		if v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
