package bench

import (
	"fmt"

	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/target"
)

// Fig3Benchmarks is the benchmark set of the paper's Figure 3.
var Fig3Benchmarks = []string{"libpng", "sqlite3", "gvn", "bloaty", "openssl", "php"}

// Fig3Sizes is the map-size sweep of Figure 3.
var Fig3Sizes = []int{64 << 10, 2 << 20, 8 << 20}

// Fig3 regenerates Figure 3: the per-phase runtime composition of a vanilla
// AFL (flat map, split classify/compare) fuzzing run as the map grows. The
// paper reports hours per one million test cases; we run opts.ExecsPerRun
// cases and normalize to the per-million figure.
func Fig3(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	names := opts.Benchmarks
	if len(names) == 0 {
		names = Fig3Benchmarks
	}
	profiles, err := selectProfiles(target.Profiles(), names)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Figure 3: runtime composition with varying bitmap sizes (AFL scheme)",
		Notes: []string{
			fmt.Sprintf("seconds per 1M test cases, measured over %d execs at scale %g",
				opts.ExecsPerRun, opts.Scale),
			"paper shape: map operations dominate for 2M/8M maps",
		},
		Header: []string{"benchmark", "map", "execution", "classify", "compare", "reset", "hash", "total"},
	}

	for _, p := range profiles {
		b, err := prepare(p, opts)
		if err != nil {
			return nil, err
		}
		for _, size := range Fig3Sizes {
			f, err := fuzzer.New(b.prog, fuzzer.Config{
				Scheme:               fuzzer.SchemeAFL,
				MapSize:              size,
				Seed:                 opts.Seed,
				ExecCostFactor:       b.costFactor,
				TrackTimings:         true,
				SplitClassifyCompare: true,
			})
			if err != nil {
				return nil, err
			}
			if err := addSeeds(f, b.seeds); err != nil {
				return nil, err
			}
			if err := f.RunExecs(opts.ExecsPerRun); err != nil {
				return nil, err
			}
			st := f.Stats()
			perM := 1e6 / float64(st.Execs)
			sec := func(d float64) string { return fmtFloat(d*perM, 1) }
			tm := st.Timings
			t.AddRow(p.Name, fmtSize(size),
				sec(tm.Execution.Seconds()),
				sec(tm.Classify.Seconds()),
				sec(tm.Compare.Seconds()),
				sec(tm.Reset.Seconds()),
				sec(tm.Hash.Seconds()),
				sec(tm.Total().Seconds()),
			)
			opts.progressf("  fig3 %-12s %-4s done (%d execs)\n", p.Name, fmtSize(size), st.Execs)
		}
	}
	return t, nil
}

// addSeeds dry-runs a corpus into a fuzzer, requiring at least one usable
// seed.
func addSeeds(f *fuzzer.Fuzzer, seeds [][]byte) error {
	accepted := 0
	for _, s := range seeds {
		if err := f.AddSeed(s); err == nil {
			accepted++
		}
	}
	if accepted == 0 {
		return fuzzer.ErrNoSeeds
	}
	return nil
}
