package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/bigmap/bigmap/internal/selffuzz/seedcorpus"
)

// TestWriteCheckpointCorpus regenerates testdata/fuzz/FuzzCheckpointRoundTrip
// with well-formed encodings plus the classic corruption shapes (bit flip in
// the payload, truncated tail, bare magic) so plain `go test` replays them.
// Gated behind BIGMAP_WRITE_CORPUS=1; see internal/selffuzz for the workflow.
func TestWriteCheckpointCorpus(t *testing.T) {
	if os.Getenv("BIGMAP_WRITE_CORPUS") != "1" {
		t.Skip("set BIGMAP_WRITE_CORPUS=1 to regenerate testdata/fuzz corpora")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	full := EncodeFuzzer(sampleFuzzer())
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x10
	entries := [][]byte{
		full,
		EncodeFuzzer(&FuzzerState{}),
		EncodeCampaign(&CampaignState{
			SyncEvery: 1,
			SeenUpTo:  [][]uint64{{0}},
			Instances: []FuzzerState{*sampleFuzzer()},
		}),
		[]byte(magic),
		{},
		flipped,
		full[:len(full)-3],
	}
	for i, in := range entries {
		name := "seed-" + string(rune('a'+i))
		if err := seedcorpus.WriteFile(dir, name, in); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
