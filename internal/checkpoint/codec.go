package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// File framing: magic | version | kind | payloadLen (uint64 LE) | payload |
// CRC32-IEEE (uint32 LE, over everything before it).
const (
	// Version is the current checkpoint format version. v2 appended the
	// selective-tracing counters (FilterSkips/FilterFulls) to the fuzzer
	// payload tail; v1 files are rejected rather than misread.
	Version = 2

	// KindFuzzer frames a single-instance FuzzerState payload.
	KindFuzzer byte = 1
	// KindCampaign frames a multi-instance CampaignState payload.
	KindCampaign byte = 2

	magic      = "BMCP"
	headerLen  = len(magic) + 1 + 1 + 8 // magic + version + kind + payloadLen
	trailerLen = 4                      // CRC32
)

// Codec errors. ErrCorrupt wraps every integrity failure (bad magic, short
// file, length mismatch, CRC mismatch, malformed payload) so callers can
// distinguish "this checkpoint is damaged" from I/O errors.
var (
	ErrCorrupt     = errors.New("checkpoint: corrupt")
	ErrVersion     = errors.New("checkpoint: unsupported format version")
	ErrKind        = errors.New("checkpoint: unexpected payload kind")
	errShortBuffer = fmt.Errorf("%w: truncated payload", ErrCorrupt)
)

// writer accumulates a payload. All integers are uvarints; byte and slice
// fields are length-prefixed.
type writer struct {
	buf []byte
}

func (w *writer) u64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) int(v int)    { w.u64(uint64(int64(v))) }
func (w *writer) u32(v uint32) { w.u64(uint64(v)) }
func (w *writer) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}
func (w *writer) str(s string) { w.u64(uint64(len(s))); w.buf = append(w.buf, s...) }

func (w *writer) bytes(b []byte) {
	w.u64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) u32s(v []uint32) {
	w.u64(uint64(len(v)))
	for _, x := range v {
		w.u32(x)
	}
}

func (w *writer) u64s(v []uint64) {
	w.u64(uint64(len(v)))
	for _, x := range v {
		w.u64(x)
	}
}

func (w *writer) state(st [4]uint64) {
	for _, x := range st {
		w.u64(x)
	}
}

// reader consumes a payload with sticky-error semantics: after the first
// failure every accessor returns zero values, and the caller checks r.err
// once at the end. Every length is validated against the remaining bytes
// before any allocation, so corrupt counts cannot trigger huge allocations.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errShortBuffer
	}
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) int() int { return int(int64(r.u64())) }

func (r *reader) u32() uint32 {
	v := r.u64()
	if r.err == nil && v > 0xFFFFFFFF {
		r.err = fmt.Errorf("%w: uint32 field out of range", ErrCorrupt)
		return 0
	}
	return uint32(v)
}

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.buf) < 1 {
		r.fail()
		return false
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	if b > 1 {
		r.err = fmt.Errorf("%w: invalid bool byte %#x", ErrCorrupt, b)
		return false
	}
	return b == 1
}

// length reads a count and validates it against the remaining payload,
// assuming each element consumes at least minElem bytes.
func (r *reader) length(minElem int) int {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if minElem < 1 {
		minElem = 1
	}
	if n > uint64(len(r.buf)/minElem) {
		r.fail()
		return 0
	}
	return int(n)
}

func (r *reader) bytes() []byte {
	n := r.length(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[:n])
	r.buf = r.buf[n:]
	return out
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) u32s() []uint32 {
	n := r.length(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.u32()
	}
	return out
}

func (r *reader) u64s() []uint64 {
	n := r.length(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.u64()
	}
	return out
}

func (r *reader) state() [4]uint64 {
	var st [4]uint64
	for i := range st {
		st[i] = r.u64()
	}
	return st
}

// frame wraps a payload in the header/trailer.
func frame(kind byte, payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload)+trailerLen)
	out = append(out, magic...)
	out = append(out, Version, kind)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	sum := crc32.ChecksumIEEE(out)
	return binary.LittleEndian.AppendUint32(out, sum)
}

// unframe validates the header, length and CRC and returns the payload.
func unframe(data []byte, wantKind byte) ([]byte, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := data[len(magic)]
	kind := data[len(magic)+1]
	if version != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, version, Version)
	}
	if kind != wantKind {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrKind, kind, wantKind)
	}
	payloadLen := binary.LittleEndian.Uint64(data[len(magic)+2 : headerLen])
	if payloadLen != uint64(len(data)-headerLen-trailerLen) {
		return nil, fmt.Errorf("%w: payload length %d does not match file size %d",
			ErrCorrupt, payloadLen, len(data))
	}
	body := data[:len(data)-trailerLen]
	want := binary.LittleEndian.Uint32(data[len(data)-trailerLen:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (got %#x, want %#x)", ErrCorrupt, got, want)
	}
	return data[headerLen : len(data)-trailerLen], nil
}

func encodeEntry(w *writer, e *Entry) {
	w.bytes(e.Input)
	w.u64(e.Cycles)
	w.u32s(e.Touched)
	w.u64(e.PathHash)
	w.int(e.Depth)
	w.str(e.FoundBy)
	w.bool(e.Favored)
	w.bool(e.WasFuzzed)
	w.bool(e.WasTrimmed)
	w.int(e.FuzzLevel)
}

func decodeEntry(r *reader) Entry {
	return Entry{
		Input:      r.bytes(),
		Cycles:     r.u64(),
		Touched:    r.u32s(),
		PathHash:   r.u64(),
		Depth:      r.int(),
		FoundBy:    r.str(),
		Favored:    r.bool(),
		WasFuzzed:  r.bool(),
		WasTrimmed: r.bool(),
		FuzzLevel:  r.int(),
	}
}

func encodeCrash(w *writer, c *CrashRecord) {
	w.u64(c.Key)
	w.u32(c.Site)
	w.int(c.StackDepth)
	w.int(c.Count)
	w.bytes(c.Input)
}

func decodeCrash(r *reader) CrashRecord {
	return CrashRecord{
		Key:        r.u64(),
		Site:       r.u32(),
		StackDepth: r.int(),
		Count:      r.int(),
		Input:      r.bytes(),
	}
}

func encodeFuzzerPayload(w *writer, st *FuzzerState) {
	w.str(st.Scheme)
	w.u64(st.MapSize)
	w.state(st.RNG)
	w.state(st.MutRNG)
	w.u64(st.Execs)
	w.u64(st.CyclesDone)
	w.u64(st.QueuePos)
	w.u64(st.TotalCrashes)
	w.u64(st.TotalHangs)
	w.u64(st.AFLUniqueCrash)
	w.u64(st.SumCycles)
	w.u64(st.SumEdges)
	w.u64(st.RejectedSeeds)
	w.u64(st.CalibExecs)
	w.u64(st.SpuriousCrashes)
	w.u64(st.SpuriousHangs)
	w.u64(st.FaultExecs)
	w.u64(st.DroppedKeys)
	w.bytes(st.VirginAll)
	w.bytes(st.VirginCrash)
	w.bytes(st.VirginHang)
	w.u32s(st.SlotKeys)
	w.u32s(st.VarSlots)
	w.u32s(st.TopSlots)
	w.u64s(st.TopEntries)
	w.u64(uint64(len(st.Entries)))
	for i := range st.Entries {
		encodeEntry(w, &st.Entries[i])
	}
	w.u64(uint64(len(st.Crashes)))
	for i := range st.Crashes {
		encodeCrash(w, &st.Crashes[i])
	}
	w.u64(uint64(len(st.Paths)))
	for i := range st.Paths {
		w.u64(st.Paths[i].Hash)
		w.u64(st.Paths[i].Count)
	}
	w.u64s(st.OpUsed)
	w.u64s(st.OpSuccess)
	w.u64s(st.OpPending)
	// Format v2: selective-tracing counters, appended at the payload tail.
	w.u64(st.FilterSkips)
	w.u64(st.FilterFulls)
}

func decodeFuzzerPayload(r *reader) FuzzerState {
	st := FuzzerState{
		Scheme:          r.str(),
		MapSize:         r.u64(),
		RNG:             r.state(),
		MutRNG:          r.state(),
		Execs:           r.u64(),
		CyclesDone:      r.u64(),
		QueuePos:        r.u64(),
		TotalCrashes:    r.u64(),
		TotalHangs:      r.u64(),
		AFLUniqueCrash:  r.u64(),
		SumCycles:       r.u64(),
		SumEdges:        r.u64(),
		RejectedSeeds:   r.u64(),
		CalibExecs:      r.u64(),
		SpuriousCrashes: r.u64(),
		SpuriousHangs:   r.u64(),
		FaultExecs:      r.u64(),
		DroppedKeys:     r.u64(),
		VirginAll:       r.bytes(),
		VirginCrash:     r.bytes(),
		VirginHang:      r.bytes(),
		SlotKeys:        r.u32s(),
		VarSlots:        r.u32s(),
		TopSlots:        r.u32s(),
		TopEntries:      r.u64s(),
	}
	if n := r.length(8); n > 0 {
		st.Entries = make([]Entry, n)
		for i := range st.Entries {
			st.Entries[i] = decodeEntry(r)
		}
	}
	if n := r.length(5); n > 0 {
		st.Crashes = make([]CrashRecord, n)
		for i := range st.Crashes {
			st.Crashes[i] = decodeCrash(r)
		}
	}
	if n := r.length(2); n > 0 {
		st.Paths = make([]PathFreq, n)
		for i := range st.Paths {
			st.Paths[i] = PathFreq{Hash: r.u64(), Count: r.u64()}
		}
	}
	st.OpUsed = r.u64s()
	st.OpSuccess = r.u64s()
	st.OpPending = r.u64s()
	st.FilterSkips = r.u64()
	st.FilterFulls = r.u64()
	return st
}

// EncodeFuzzer serializes a single-instance state into a framed checkpoint.
func EncodeFuzzer(st *FuzzerState) []byte {
	var w writer
	encodeFuzzerPayload(&w, st)
	return frame(KindFuzzer, w.buf)
}

// DecodeFuzzer parses a framed single-instance checkpoint, rejecting
// anything corrupt, truncated, of the wrong kind or the wrong version.
func DecodeFuzzer(data []byte) (*FuzzerState, error) {
	payload, err := unframe(data, KindFuzzer)
	if err != nil {
		return nil, err
	}
	r := reader{buf: payload}
	st := decodeFuzzerPayload(&r)
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after payload", ErrCorrupt, len(r.buf))
	}
	return &st, nil
}

// EncodeCampaign serializes a multi-instance state into a framed checkpoint.
func EncodeCampaign(st *CampaignState) []byte {
	var w writer
	w.u64(st.SyncEvery)
	w.u64(uint64(len(st.SeenUpTo)))
	for _, row := range st.SeenUpTo {
		w.u64s(row)
	}
	w.u64(uint64(len(st.Instances)))
	for i := range st.Instances {
		encodeFuzzerPayload(&w, &st.Instances[i])
	}
	return frame(KindCampaign, w.buf)
}

// DecodeCampaign parses a framed multi-instance checkpoint.
func DecodeCampaign(data []byte) (*CampaignState, error) {
	payload, err := unframe(data, KindCampaign)
	if err != nil {
		return nil, err
	}
	r := reader{buf: payload}
	st := CampaignState{SyncEvery: r.u64()}
	if n := r.length(1); n > 0 {
		st.SeenUpTo = make([][]uint64, n)
		for i := range st.SeenUpTo {
			st.SeenUpTo[i] = r.u64s()
		}
	}
	if n := r.length(1); n > 0 {
		st.Instances = make([]FuzzerState, n)
		for i := range st.Instances {
			st.Instances[i] = decodeFuzzerPayload(&r)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after payload", ErrCorrupt, len(r.buf))
	}
	if len(st.SeenUpTo) != len(st.Instances) {
		return nil, fmt.Errorf("%w: seen-up-to matrix is %d rows for %d instances",
			ErrCorrupt, len(st.SeenUpTo), len(st.Instances))
	}
	for i, row := range st.SeenUpTo {
		if len(row) != len(st.Instances) {
			return nil, fmt.Errorf("%w: seen-up-to row %d has %d columns for %d instances",
				ErrCorrupt, i, len(row), len(st.Instances))
		}
	}
	return &st, nil
}
