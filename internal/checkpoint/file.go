package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// retrySleep is time.Sleep, replaceable in tests so retry backoff is
// observable without slowing the suite.
var retrySleep = time.Sleep

// Save atomically writes a framed checkpoint to path: the bytes go to a
// temp file in the same directory, are synced, are renamed over the
// destination, and the parent directory is synced so the rename itself is
// durable. A crash at any point leaves either the old snapshot or the new
// one — never a torn file, and never a rename sitting only in the page
// cache. The temp file is cleaned up on failure.
func Save(path string, data []byte) error {
	return SaveRetry(path, data, 1, 0)
}

// SaveRetry is Save with bounded retries for daemon use: a transient write
// error (disk pressure, an interrupted syscall, a directory briefly missing
// during rotation) is retried up to attempts times with exponential backoff
// starting at backoff. Every error is treated as retryable — a last-gasp
// checkpoint is exactly the write that should try hardest — and the bounded
// attempt count keeps the caller's shutdown path from hanging. The returned
// error joins every attempt's failure so none is silently lost.
func SaveRetry(path string, data []byte, attempts int, backoff time.Duration) error {
	if attempts < 1 {
		attempts = 1
	}
	var errs []error
	for try := 0; try < attempts; try++ {
		if try > 0 && backoff > 0 {
			retrySleep(backoff << (try - 1))
		}
		err := saveOnce(path, data)
		if err == nil {
			return nil
		}
		errs = append(errs, fmt.Errorf("attempt %d: %w", try+1, err))
	}
	return errors.Join(errs...)
}

func saveOnce(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()        //bigmap:err-ok best-effort teardown of a temp file already being abandoned for an earlier error
		os.Remove(tmpName) //bigmap:err-ok a leaked .tmp file is wasted disk, not wrong state; the write error is what the caller sees
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName) //bigmap:err-ok best-effort cleanup; the close failure is the error that reaches the caller
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName) //bigmap:err-ok best-effort cleanup; the rename failure is the error that reaches the caller
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		// The data file is safely in place; only the directory entry's
		// durability is in doubt. Report it — the caller's retry loop will
		// rewrite, and a crash before then loses at most the rename.
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename inside it survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close() //bigmap:err-ok read-only directory fd; Sync's result below carries the durability verdict
	return d.Sync()
}

// LoadFuzzer reads and decodes a single-instance checkpoint from path.
func LoadFuzzer(path string) (*FuzzerState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	return DecodeFuzzer(data)
}

// LoadCampaign reads and decodes a multi-instance checkpoint from path.
func LoadCampaign(path string) (*CampaignState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	return DecodeCampaign(data)
}

// KindOf sniffs the payload kind of a framed checkpoint without fully
// decoding it, so a resume path can accept either kind from one flag.
func KindOf(data []byte) (byte, error) {
	if len(data) < headerLen+trailerLen {
		return 0, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	return data[len(magic)+1], nil
}
