package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
)

// Save atomically writes a framed checkpoint to path: the bytes go to a
// temp file in the same directory, are synced, and are renamed over the
// destination. A crash at any point leaves either the old snapshot or the
// new one — never a torn file. The temp file is cleaned up on failure.
func Save(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// LoadFuzzer reads and decodes a single-instance checkpoint from path.
func LoadFuzzer(path string) (*FuzzerState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	return DecodeFuzzer(data)
}

// LoadCampaign reads and decodes a multi-instance checkpoint from path.
func LoadCampaign(path string) (*CampaignState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	return DecodeCampaign(data)
}

// KindOf sniffs the payload kind of a framed checkpoint without fully
// decoding it, so a resume path can accept either kind from one flag.
func KindOf(data []byte) (byte, error) {
	if len(data) < headerLen+trailerLen {
		return 0, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	return data[len(magic)+1], nil
}
