package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleFuzzer builds a state exercising every field, including empty and
// nil slices (which must round-trip to nil).
func sampleFuzzer() *FuzzerState {
	return &FuzzerState{
		Scheme:          "bigmap",
		MapSize:         1 << 23,
		RNG:             [4]uint64{1, 2, 3, 4},
		MutRNG:          [4]uint64{5, 6, 7, 8},
		Execs:           123456,
		CyclesDone:      3,
		QueuePos:        17,
		TotalCrashes:    9,
		TotalHangs:      2,
		AFLUniqueCrash:  4,
		SumCycles:       999999,
		SumEdges:        4242,
		RejectedSeeds:   1,
		CalibExecs:      640,
		SpuriousCrashes: 5,
		SpuriousHangs:   6,
		FaultExecs:      123460,
		DroppedKeys:     77,
		VirginAll:       []byte{0xFF, 0x00, 0x7F, 0xFF},
		VirginCrash:     []byte{0xFF, 0xFF, 0xFF, 0xFF},
		VirginHang:      []byte{0xFF, 0xFF, 0xFF, 0xFE},
		SlotKeys:        []uint32{10, 20, 4_000_000_000},
		VarSlots:        []uint32{1, 3},
		Entries: []Entry{
			{
				Input: []byte("seed-one"), Cycles: 100,
				Touched: []uint32{0, 2}, PathHash: 0xdeadbeef,
				Depth: 0, FoundBy: "seed",
				Favored: true, WasFuzzed: true, WasTrimmed: true, FuzzLevel: 2,
			},
			{
				Input: []byte{}, Cycles: 1, Touched: nil,
				PathHash: 1, Depth: 3, FoundBy: "havoc", FuzzLevel: 0,
			},
		},
		Crashes: []CrashRecord{
			{Key: 0xabcdef, Site: 42, StackDepth: 2, Count: 7, Input: []byte("boom")},
		},
		Paths:     []PathFreq{{Hash: 11, Count: 5}, {Hash: 22, Count: 1}},
		OpUsed:    []uint64{1, 0, 3},
		OpSuccess: []uint64{0, 0, 2},
	}
}

func TestFuzzerRoundTrip(t *testing.T) {
	want := sampleFuzzer()
	data := EncodeFuzzer(want)
	got, err := DecodeFuzzer(data)
	if err != nil {
		t.Fatal(err)
	}
	// Empty non-nil slices decode as nil; normalize before comparing.
	want.Entries[1].Input = nil
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestZeroFuzzerRoundTrip(t *testing.T) {
	data := EncodeFuzzer(&FuzzerState{})
	got, err := DecodeFuzzer(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, &FuzzerState{}) {
		t.Fatalf("zero state did not round trip: %+v", got)
	}
}

func TestCampaignRoundTrip(t *testing.T) {
	want := &CampaignState{
		SyncEvery: 20000,
		SeenUpTo:  [][]uint64{{1, 2}, {3, 4}},
		Instances: []FuzzerState{*sampleFuzzer(), {Scheme: "afl", MapSize: 65536}},
	}
	data := EncodeCampaign(want)
	got, err := DecodeCampaign(data)
	if err != nil {
		t.Fatal(err)
	}
	want.Instances[0].Entries[1].Input = nil
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("campaign round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := EncodeFuzzer(sampleFuzzer())

	t.Run("empty", func(t *testing.T) {
		if _, err := DecodeFuzzer(nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xFF
		if _, err := DecodeFuzzer(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[4] = Version + 1
		if _, err := DecodeFuzzer(bad); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})
	t.Run("wrong-kind", func(t *testing.T) {
		data := EncodeCampaign(&CampaignState{})
		if _, err := DecodeFuzzer(data); !errors.Is(err, ErrKind) {
			t.Fatalf("got %v, want ErrKind", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(good); cut += 7 {
			if _, err := DecodeFuzzer(good[:len(good)-cut]); err == nil {
				t.Fatalf("truncation of %d bytes accepted", cut)
			}
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		// Any single corrupted byte must be caught by the CRC.
		for i := 0; i < len(good); i += 3 {
			bad := append([]byte(nil), good...)
			bad[i] ^= 0x40
			if _, err := DecodeFuzzer(bad); err == nil {
				t.Fatalf("bitflip at offset %d accepted", i)
			}
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), good...), 0xAA, 0xBB)
		if _, err := DecodeFuzzer(bad); err == nil {
			t.Fatal("trailing garbage accepted")
		}
	})
}

// TestDecodeHugeCountRejected hand-crafts a payload whose leading length
// claims far more elements than the payload holds: the bounds check must
// reject it without attempting the allocation.
func TestDecodeHugeCountRejected(t *testing.T) {
	var w writer
	w.str("afl")
	w.u64(65536)
	payload := append(w.buf, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)
	data := frame(KindFuzzer, payload)
	if _, err := DecodeFuzzer(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fuzz.ckpt")
	want := sampleFuzzer()

	if err := Save(path, EncodeFuzzer(want)); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second snapshot: rename must replace in place.
	want.Execs = 999
	if err := Save(path, EncodeFuzzer(want)); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFuzzer(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Execs != 999 {
		t.Fatalf("loaded stale snapshot: execs %d", got.Execs)
	}
	// No temp litter left behind.
	matches, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	data := EncodeFuzzer(sampleFuzzer())
	data[len(data)/2] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFuzzer(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestKindOf(t *testing.T) {
	if k, err := KindOf(EncodeFuzzer(&FuzzerState{})); err != nil || k != KindFuzzer {
		t.Fatalf("got (%d, %v), want (KindFuzzer, nil)", k, err)
	}
	if k, err := KindOf(EncodeCampaign(&CampaignState{})); err != nil || k != KindCampaign {
		t.Fatalf("got (%d, %v), want (KindCampaign, nil)", k, err)
	}
	if _, err := KindOf([]byte("nope")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// FuzzCheckpointRoundTrip feeds arbitrary bytes to both decoders: they must
// never panic, and anything they accept must re-encode to semantically equal
// state (decode∘encode = identity on the accepted set). Corrupt or truncated
// checkpoints are rejected, never silently loaded.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(EncodeFuzzer(sampleFuzzer()))
	f.Add(EncodeFuzzer(&FuzzerState{}))
	f.Add(EncodeCampaign(&CampaignState{
		SyncEvery: 1,
		SeenUpTo:  [][]uint64{{0}},
		Instances: []FuzzerState{*sampleFuzzer()},
	}))
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if st, err := DecodeFuzzer(data); err == nil {
			again, err := DecodeFuzzer(EncodeFuzzer(st))
			if err != nil {
				t.Fatalf("re-decode of accepted fuzzer state failed: %v", err)
			}
			if !reflect.DeepEqual(st, again) {
				t.Fatal("fuzzer state not stable under encode/decode")
			}
		}
		if st, err := DecodeCampaign(data); err == nil {
			again, err := DecodeCampaign(EncodeCampaign(st))
			if err != nil {
				t.Fatalf("re-decode of accepted campaign state failed: %v", err)
			}
			if !reflect.DeepEqual(st, again) {
				t.Fatal("campaign state not stable under encode/decode")
			}
		}
	})
}
