// Package checkpoint defines the on-disk campaign snapshot format: the full
// state a fuzzing instance (or a multi-instance campaign) needs to resume
// exactly where it stopped, serialized with a small hand-rolled binary codec.
//
// The format is deliberately self-contained and paranoid. A checkpoint may be
// the only survivor of a crashed 24-hour campaign, so the file carries a
// magic string, a format version, a payload kind, an explicit payload length
// and a CRC32 of everything before it; Decode rejects anything that does not
// check out rather than guessing. Writes go through a temp-file-then-rename
// dance so a crash mid-write can never destroy the previous good snapshot.
//
// The package holds pure data and bytes — it imports nothing from the rest of
// the tree. The fuzzer and parallel packages translate their live state into
// these structs (fuzzer.Snapshot / parallel.Campaign.Snapshot) and back
// (fuzzer.Resume / parallel.Resume); keeping the dependency one-way means the
// format cannot grow accidental ties to in-memory representations.
package checkpoint

// Entry is one serialized corpus entry, mirroring corpus.Entry field for
// field (EdgeCount is len(Touched), not stored).
type Entry struct {
	Input      []byte
	Cycles     uint64
	Touched    []uint32
	PathHash   uint64
	Depth      int
	FoundBy    string
	Favored    bool
	WasFuzzed  bool
	WasTrimmed bool
	FuzzLevel  int
}

// CrashRecord is one serialized crash bucket, mirroring crash.Record.
type CrashRecord struct {
	Key        uint64
	Site       uint32
	StackDepth int
	Count      int
	Input      []byte
}

// PathFreq is one entry of the AFLFast n_fuzz table.
type PathFreq struct {
	Hash  uint64
	Count uint64
}

// FuzzerState is the complete serialized state of one fuzzing instance.
type FuzzerState struct {
	// Scheme and MapSize identify the coverage map configuration the state
	// was captured under; Resume refuses a mismatch.
	Scheme  string
	MapSize uint64

	// RNG and MutRNG are the xoshiro256** states of the scheduling and
	// mutation generators.
	RNG    [4]uint64
	MutRNG [4]uint64

	// Progress counters.
	Execs          uint64
	CyclesDone     uint64
	QueuePos       uint64
	TotalCrashes   uint64
	TotalHangs     uint64
	AFLUniqueCrash uint64
	SumCycles      uint64
	SumEdges       uint64
	RejectedSeeds  uint64

	// Calibration & fault bookkeeping.
	CalibExecs      uint64
	SpuriousCrashes uint64
	SpuriousHangs   uint64
	FaultExecs      uint64
	DroppedKeys     uint64

	// Selective-tracing observability counters (Config.Selective): prefilter
	// skips versus full traversals. Pure bookkeeping — they never influence
	// campaign decisions — but a resumed instance must report the same totals
	// the uninterrupted one would.
	FilterSkips uint64
	FilterFulls uint64

	// Virgin maps (raw bits, one byte per slot).
	VirginAll   []byte
	VirginCrash []byte
	VirginHang  []byte

	// SlotKeys is the BigMap dense-slot assignment in discovery order; nil
	// for the flat AFL scheme.
	SlotKeys []uint32

	// VarSlots lists coverage slots calibration found unstable.
	VarSlots []uint32

	// TopSlots/TopEntries serialize the queue's slot-champion table: slot
	// TopSlots[i] is championed by entry index TopEntries[i]. The table is
	// stored verbatim (not recomputed on resume) because it reflects the
	// original campaign's exact Add/trim interleaving.
	TopSlots   []uint32
	TopEntries []uint64

	// Corpus, crashes and the path-frequency table.
	Entries []Entry
	Crashes []CrashRecord
	Paths   []PathFreq

	// Adaptive-havoc operator counters (nil when adaptive mode is off).
	// OpPending lists operators awaiting reward attribution.
	OpUsed    []uint64
	OpSuccess []uint64
	OpPending []uint64
}

// CampaignState is the serialized state of a multi-instance campaign,
// captured at a sync boundary (no instance mid-round).
type CampaignState struct {
	// SyncEvery pins the round length the campaign ran with.
	SyncEvery uint64
	// SeenUpTo[i][j] is how many of instance j's queue entries instance i
	// had imported at the snapshot.
	SeenUpTo [][]uint64
	// Instances holds each instance's full state, in instance order.
	Instances []FuzzerState
}
