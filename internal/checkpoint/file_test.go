package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// stubSleep swaps the retry sleep for a recorder and restores it on cleanup.
func stubSleep(t *testing.T, fn func(time.Duration)) *[]time.Duration {
	t.Helper()
	var slept []time.Duration
	prev := retrySleep
	retrySleep = func(d time.Duration) {
		slept = append(slept, d)
		if fn != nil {
			fn(d)
		}
	}
	t.Cleanup(func() { retrySleep = prev })
	return &slept
}

// TestSaveRetryHealsTransientError: a save into a directory that appears
// between attempts (the canonical transient failure: a rotation or mount
// race) must succeed once the backoff hook has run, and the saved file must
// decode.
func TestSaveRetryHealsTransientError(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "not-yet")
	path := filepath.Join(missing, "state.bm")
	slept := stubSleep(t, func(time.Duration) {
		if err := os.MkdirAll(missing, 0o755); err != nil {
			t.Fatal(err)
		}
	})
	data := EncodeFuzzer(&FuzzerState{Scheme: "afl", MapSize: 64})
	if err := SaveRetry(path, data, 3, time.Millisecond); err != nil {
		t.Fatalf("SaveRetry = %v, want recovery on second attempt", err)
	}
	if len(*slept) != 1 {
		t.Errorf("slept %d times, want exactly 1 (first retry heals)", len(*slept))
	}
	st, err := LoadFuzzer(path)
	if err != nil {
		t.Fatalf("LoadFuzzer after retried save: %v", err)
	}
	if st.Scheme != "afl" || st.MapSize != 64 {
		t.Errorf("round trip = %+v", st)
	}
}

// TestSaveRetryExhaustsAttempts: a persistently failing save returns after
// exactly attempts tries, with every attempt's error joined in the result.
func TestSaveRetryExhaustsAttempts(t *testing.T) {
	slept := stubSleep(t, nil)
	path := filepath.Join(t.TempDir(), "no-such-dir", "state.bm")
	err := SaveRetry(path, []byte("x"), 3, time.Millisecond)
	if err == nil {
		t.Fatal("SaveRetry into a missing directory succeeded")
	}
	for _, want := range []string{"attempt 1", "attempt 2", "attempt 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
	if len(*slept) != 2 {
		t.Errorf("slept %d times, want 2 (between 3 attempts)", len(*slept))
	}
}

// TestSaveRetryBackoffDoubles: the pause between attempts doubles.
func TestSaveRetryBackoffDoubles(t *testing.T) {
	slept := stubSleep(t, nil)
	path := filepath.Join(t.TempDir(), "gone", "state.bm")
	_ = SaveRetry(path, []byte("x"), 4, 8*time.Millisecond)
	want := []time.Duration{8 * time.Millisecond, 16 * time.Millisecond, 32 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i := range want {
		if (*slept)[i] != want[i] {
			t.Errorf("backoff[%d] = %v, want %v", i, (*slept)[i], want[i])
		}
	}
}

// TestSaveSingleAttemptNeverSleeps: plain Save is SaveRetry with one
// attempt — no backoff machinery on the common path.
func TestSaveSingleAttemptNeverSleeps(t *testing.T) {
	slept := stubSleep(t, nil)
	path := filepath.Join(t.TempDir(), "state.bm")
	if err := Save(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 0 {
		t.Errorf("Save slept %d times, want 0", len(*slept))
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Errorf("read back %q, %v", got, err)
	}
}

// TestSaveLeavesNoTempDebris: both success and failure paths must clean up
// their temp files; a daemon checkpointing on a cadence cannot leak one
// file per save.
func TestSaveLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bm")
	for i := 0; i < 3; i++ {
		if err := Save(path, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.bm" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("directory holds %v, want only state.bm", names)
	}
}
