package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 identical outputs across different seeds", same)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(7)
	property := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := s.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversRange(t *testing.T) {
	s := New(99)
	seen := make([]bool, 8)
	for i := 0; i < 1000; i++ {
		seen[s.Intn(8)] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("value %d never produced in 1000 draws", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestUint32nBounds(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		if v := s.Uint32n(17); v >= 17 {
			t.Fatalf("Uint32n(17) = %d", v)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(11)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 identical outputs across split children", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(11).Split()
	b := New(11).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("split children not reproducible")
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(13)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, 10)
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("duplicate value %d after shuffle", v)
		}
		seen[v] = true
	}
}

func TestBytesFillsAllLengths(t *testing.T) {
	s := New(17)
	for n := 0; n <= 33; n++ {
		p := make([]byte, n)
		s.Bytes(p)
	}
	// Statistical sanity: a long buffer should not be all zeros.
	long := make([]byte, 1024)
	s.Bytes(long)
	zeros := 0
	for _, b := range long {
		if b == 0 {
			zeros++
		}
	}
	if zeros > 100 {
		t.Errorf("%d/1024 zero bytes; generator looks broken", zeros)
	}
}

func TestChanceProbability(t *testing.T) {
	s := New(23)
	hits := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if s.Chance(4) {
			hits++
		}
	}
	// Expect ~2500; allow generous slack.
	if hits < 2000 || hits > 3000 {
		t.Errorf("Chance(4) hit %d/%d times, want ~2500", hits, trials)
	}
}

func TestBoolBalance(t *testing.T) {
	s := New(29)
	trues := 0
	for i := 0; i < 10000; i++ {
		if s.Bool() {
			trues++
		}
	}
	if trues < 4500 || trues > 5500 {
		t.Errorf("Bool true %d/10000 times", trues)
	}
}
