// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the fuzzer. Determinism matters: every
// experiment in the benchmark harness must be reproducible from a single
// campaign seed, so all randomness in the repository flows through a seeded
// Source rather than math/rand's global state.
//
// The generator is xoshiro256** seeded via splitmix64, the combination
// recommended by Blackman & Vigna. It is not cryptographically secure and is
// not meant to be.
package rng

import "math/bits"

// Source is a deterministic xoshiro256** PRNG. The zero value is not usable;
// construct with New. A Source is not safe for concurrent use; give each
// goroutine its own (see Split).
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from the given seed using splitmix64, which
// guarantees a well-mixed non-zero internal state for any seed value.
func New(seed uint64) *Source {
	var s Source
	s.Seed(seed)
	return &s
}

// Seed resets the generator to the state derived from seed.
func (s *Source) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s.s0, s.s1, s.s2, s.s3 = next(), next(), next(), next()
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
func (s *Source) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0,
// matching the math/rand contract; callers in this repository always pass
// positive bounds derived from non-empty containers.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := s.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = s.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Uint32n returns a uniformly distributed uint32 in [0, n). n must be > 0.
func (s *Source) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("rng: Uint32n called with zero n")
	}
	return uint32(s.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Chance returns true with probability 1/n (n > 0). It mirrors AFL's
// UR(n) == 0 idiom used for probabilistic stage skipping.
func (s *Source) Chance(n int) bool {
	return s.Intn(n) == 0
}

// State returns the generator's full internal state, for checkpointing. A
// Source restored with SetState produces exactly the stream the original
// would have produced from this point on.
func (s *Source) State() [4]uint64 {
	return [4]uint64{s.s0, s.s1, s.s2, s.s3}
}

// SetState overwrites the internal state with a snapshot taken by State.
// An all-zero state is invalid for xoshiro256** (the generator would emit
// zeros forever); it is replaced by the state New(0) produces so a corrupt
// checkpoint cannot wedge the stream.
func (s *Source) SetState(st [4]uint64) {
	if st[0]|st[1]|st[2]|st[3] == 0 {
		s.Seed(0)
		return
	}
	s.s0, s.s1, s.s2, s.s3 = st[0], st[1], st[2], st[3]
}

// Split derives an independent child Source. The child's stream is a
// deterministic function of the parent state at the time of the call, so a
// fixed call sequence yields a fixed set of child streams. Use this to give
// each fuzzing instance or benchmark its own generator.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xa0761d6478bd642f)
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Bytes fills p with pseudo-random bytes.
func (s *Source) Bytes(p []byte) {
	i := 0
	for ; i+8 <= len(p); i += 8 {
		v := s.Uint64()
		p[i] = byte(v)
		p[i+1] = byte(v >> 8)
		p[i+2] = byte(v >> 16)
		p[i+3] = byte(v >> 24)
		p[i+4] = byte(v >> 32)
		p[i+5] = byte(v >> 40)
		p[i+6] = byte(v >> 48)
		p[i+7] = byte(v >> 56)
	}
	if i < len(p) {
		v := s.Uint64()
		for ; i < len(p); i++ {
			p[i] = byte(v)
			v >>= 8
		}
	}
}
