package lafintel

import (
	"testing"

	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

func genProgram(t *testing.T) *target.Program {
	t.Helper()
	prog, err := target.Generate(target.GenSpec{
		Name:           "laftest",
		Seed:           99,
		NumFuncs:       6,
		BlocksPerFunc:  16,
		InputLen:       64,
		BranchFraction: 0.5,
		MagicCompares:  8,
		MagicWidth:     4,
		BonusBlocks:    3,
		Switches:       4,
		SwitchFanout:   6,
		Loops:          2,
		LoopMax:        8,
		CrashSites:     2,
		CrashDepth:     2,
		HangSites:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestTransformRemovesWordComparesAndSwitches(t *testing.T) {
	prog := genProgram(t)
	laf, stats := Transform(prog, 1)

	for fi := range laf.Funcs {
		for bi := range laf.Funcs[fi].Blocks {
			switch laf.Funcs[fi].Blocks[bi].Node.Kind {
			case target.KindCompareWord:
				t.Fatalf("CompareWord survived at f%d b%d", fi, bi)
			case target.KindSwitch:
				t.Fatalf("Switch survived at f%d b%d", fi, bi)
			}
		}
	}
	if stats.SplitCompares < 8 {
		t.Errorf("SplitCompares = %d, want >= 8", stats.SplitCompares)
	}
	if stats.SplitSwitches != 4 {
		t.Errorf("SplitSwitches = %d, want 4", stats.SplitSwitches)
	}
	if stats.AddedBlocks == 0 {
		t.Error("no blocks added")
	}
}

func TestTransformAmplifiesStaticEdges(t *testing.T) {
	prog := genProgram(t)
	_, stats := Transform(prog, 1)
	if stats.StaticEdgesAfter <= stats.StaticEdgesBefore {
		t.Errorf("edges %d -> %d: no amplification", stats.StaticEdgesBefore, stats.StaticEdgesAfter)
	}
}

// TestTransformPreservesSemantics is the central property: for any input,
// the transformed program must produce the same outcome (status, crash site,
// call stack, and the same branch decisions) as the original.
func TestTransformPreservesSemantics(t *testing.T) {
	prog := genProgram(t)
	laf, _ := Transform(prog, 1)

	ipOrig := target.NewInterp(prog)
	ipLaf := target.NewInterp(laf)
	src := rng.New(5)

	inputs := make([][]byte, 0, 300)
	for i := 0; i < 200; i++ {
		in := make([]byte, prog.InputLen)
		src.Bytes(in)
		inputs = append(inputs, in)
	}
	// Include seeds, which reach deeper paths.
	inputs = append(inputs, prog.SampleSeeds(src, 100)...)

	for i, in := range inputs {
		a := ipOrig.Run(in, target.NopTracer{}, 1<<22)
		b := ipLaf.Run(in, target.NopTracer{}, 1<<22)
		if a.Status != b.Status {
			t.Fatalf("input %d: status %v vs %v", i, a.Status, b.Status)
		}
		if a.Status == target.StatusCrash {
			if a.CrashSite != b.CrashSite {
				t.Fatalf("input %d: crash site %d vs %d", i, a.CrashSite, b.CrashSite)
			}
			if len(a.Stack) != len(b.Stack) {
				t.Fatalf("input %d: stack depth %d vs %d", i, len(a.Stack), len(b.Stack))
			}
		}
	}
}

func TestTransformWellFormed(t *testing.T) {
	prog := genProgram(t)
	laf, _ := Transform(prog, 1)

	for fi := range laf.Funcs {
		blocks := laf.Funcs[fi].Blocks
		for bi := range blocks {
			nd := &blocks[bi].Node
			check := func(tgt int, what string) {
				t.Helper()
				if tgt <= bi || tgt >= len(blocks) {
					t.Fatalf("f%d b%d: %s target %d out of forward range", fi, bi, what, tgt)
				}
			}
			switch nd.Kind {
			case target.KindJump, target.KindSelfLoop:
				check(nd.A, "A")
			case target.KindCompareByte:
				check(nd.A, "true")
				check(nd.B, "false")
			case target.KindCall:
				check(nd.B, "ret")
				if nd.A <= fi || nd.A >= len(laf.Funcs) {
					t.Fatalf("f%d b%d: call target %d", fi, bi, nd.A)
				}
			}
		}
	}
}

func TestTransformDeterministic(t *testing.T) {
	prog := genProgram(t)
	a, _ := Transform(prog, 7)
	b, _ := Transform(prog, 7)
	if a.NumBlocks() != b.NumBlocks() {
		t.Fatal("non-deterministic block count")
	}
	for fi := range a.Funcs {
		for bi := range a.Funcs[fi].Blocks {
			if a.Funcs[fi].Blocks[bi].ID != b.Funcs[fi].Blocks[bi].ID {
				t.Fatalf("non-deterministic ID at f%d b%d", fi, bi)
			}
		}
	}
}

func TestTransformDoesNotMutateOriginal(t *testing.T) {
	prog := genProgram(t)
	before := prog.StaticEdges()
	nBefore := prog.NumBlocks()
	_, _ = Transform(prog, 3)
	if prog.StaticEdges() != before || prog.NumBlocks() != nBefore {
		t.Error("Transform mutated the input program")
	}
	// Original must still contain its word compares.
	found := false
	for fi := range prog.Funcs {
		for bi := range prog.Funcs[fi].Blocks {
			if prog.Funcs[fi].Blocks[bi].Node.Kind == target.KindCompareWord {
				found = true
			}
		}
	}
	if !found {
		t.Error("original program lost its CompareWord nodes")
	}
}

func TestTransformPreservesCrashSiteIDs(t *testing.T) {
	prog := genProgram(t)
	laf, _ := Transform(prog, 1)
	a := prog.CrashSites()
	b := laf.CrashSites()
	if len(a) != len(b) {
		t.Fatalf("crash site counts differ: %d vs %d", len(a), len(b))
	}
	got := map[uint32]bool{}
	for _, s := range b {
		got[s] = true
	}
	for _, s := range a {
		if !got[s] {
			t.Errorf("crash site %d lost by transformation", s)
		}
	}
}

// TestSplitComparesAreSolvableIncrementally demonstrates the laf-intel
// effect the paper's §V-C composition experiment relies on: after the
// transformation, matching a prefix of a magic value yields new coverage,
// whereas before it does not.
func TestSplitComparesAreSolvableIncrementally(t *testing.T) {
	// A single 4-byte magic compare program.
	prog := &target.Program{
		Name:     "magic",
		InputLen: 8,
		Funcs: []target.Func{{Blocks: []target.Block{
			{ID: 1, Cost: 1, Node: target.Node{Kind: target.KindCompareWord, Pos: 0, Val: 0x44434241, Width: 4, A: 1, B: 2}},
			{ID: 2, Cost: 1, Node: target.Node{Kind: target.KindJump, A: 2}},
			{ID: 3, Cost: 1, Node: target.Node{Kind: target.KindReturn}},
		}}},
	}
	laf, _ := Transform(prog, 1)

	countBlocks := func(p *target.Program, in []byte) int {
		return target.NewInterp(p).Run(in, target.NopTracer{}, 1000).Blocks
	}

	none := []byte{0, 0, 0, 0}
	half := []byte{'A', 'B', 0, 0}
	full := []byte{'A', 'B', 'C', 'D'}

	// Original: half-match looks identical to no match.
	if countBlocks(prog, none) != countBlocks(prog, half) {
		t.Error("original program distinguishes partial matches; expected all-or-nothing")
	}
	// Transformed: half-match reaches deeper than no match, full deeper still.
	if !(countBlocks(laf, none) < countBlocks(laf, half) && countBlocks(laf, half) < countBlocks(laf, full)) {
		t.Errorf("laf program path lengths none=%d half=%d full=%d; want strictly increasing",
			countBlocks(laf, none), countBlocks(laf, half), countBlocks(laf, full))
	}
}
