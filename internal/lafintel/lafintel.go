// Package lafintel implements the laf-intel compiler transformation on the
// synthetic target IR: multi-byte comparisons are split into cascades of
// single-byte comparisons and switch statements are deconstructed into
// if-else chains (the paper's footnote 1 and §V-C).
//
// The point of the transformation is feedback granularity. A 4-byte magic
// compare gives the fuzzer a single all-or-nothing branch, practically
// unsolvable by random mutation (success probability 2^-32 per try). After
// splitting, each matched prefix byte produces a new edge, so coverage
// feedback rewards partial progress and the fuzzer solves the comparison
// byte by byte. The price is more basic blocks and edges — more pressure on
// the coverage map — which is exactly the regime BigMap exists for.
package lafintel

import (
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

// Stats reports what the transformation did.
type Stats struct {
	// SplitCompares is the number of multi-byte comparisons split into
	// byte cascades.
	SplitCompares int
	// SplitSwitches is the number of switch statements deconstructed into
	// if-else chains.
	SplitSwitches int
	// AddedBlocks is the number of new basic blocks introduced.
	AddedBlocks int
	// StaticEdgesBefore and StaticEdgesAfter measure the edge
	// amplification, the quantity that drives map pressure in §V-C.
	StaticEdgesBefore int
	StaticEdgesAfter  int
}

// Transform returns a new program with laf-intel applied. The input program
// is not modified. Retained blocks keep their IDs (so crash sites remain
// identifiable); newly introduced guard blocks receive fresh deterministic
// IDs derived from seed. The transformed program is semantically equivalent:
// any input produces the same execution outcome (status, crash site, call
// stack), only the block-level trace is finer grained.
func Transform(p *target.Program, seed uint64) (*target.Program, Stats) {
	src := rng.New(seed ^ 0x1af1a71e1)
	stats := Stats{StaticEdgesBefore: p.StaticEdges()}

	out := &target.Program{
		Name:     p.Name + "+laf",
		Funcs:    make([]target.Func, len(p.Funcs)),
		InputLen: p.InputLen,
	}

	for fi := range p.Funcs {
		out.Funcs[fi] = transformFunc(&p.Funcs[fi], src, &stats)
	}

	stats.StaticEdgesAfter = out.StaticEdges()
	return out, stats
}

// transformFunc rewrites one function. It computes the new index of every
// original block first (insertions only ever add blocks immediately after
// the block they expand, so all original forward edges stay forward), then
// emits the expanded block list with targets remapped.
func transformFunc(f *target.Func, src *rng.Source, stats *Stats) target.Func {
	// Pass 1: sizes. A CompareWord of width w becomes w blocks; a Switch
	// with k cases becomes k blocks (k >= 1); everything else stays 1.
	remap := make([]int, len(f.Blocks)+1)
	n := 0
	for bi := range f.Blocks {
		remap[bi] = n
		switch nd := &f.Blocks[bi].Node; nd.Kind {
		case target.KindCompareWord:
			n += nd.Width
		case target.KindSwitch:
			k := len(nd.Cases)
			if k == 0 {
				k = 1
			}
			n += k
		default:
			n++
		}
	}
	remap[len(f.Blocks)] = n

	blocks := make([]target.Block, 0, n)
	for bi := range f.Blocks {
		blk := f.Blocks[bi]
		nd := &blk.Node
		switch nd.Kind {
		case target.KindCompareWord:
			// Byte cascade: guard w checks input[Pos+w]; any mismatch
			// exits to the original false target; the last match
			// continues to the original true target.
			for w := 0; w < nd.Width; w++ {
				guard := target.Block{
					ID:   blk.ID,
					Cost: 1,
					Node: target.Node{
						Kind: target.KindCompareByte,
						Pos:  nd.Pos + w,
						Val:  uint64(byte(nd.Val >> (8 * w))),
						A:    remap[bi] + w + 1,
						B:    remap[nd.B],
					},
				}
				if w > 0 {
					guard.ID = src.Uint32()
				}
				if w == nd.Width-1 {
					guard.Node.A = remap[nd.A]
				}
				blocks = append(blocks, guard)
			}
			stats.SplitCompares++
			stats.AddedBlocks += nd.Width - 1

		case target.KindSwitch:
			if len(nd.Cases) == 0 {
				blocks = append(blocks, target.Block{
					ID:   blk.ID,
					Cost: blk.Cost,
					Node: target.Node{Kind: target.KindJump, A: remap[nd.B]},
				})
				continue
			}
			// If-else chain: guard c tests case c's value; mismatch falls
			// to the next guard, the last mismatch goes to the default.
			for c := range nd.Cases {
				guard := target.Block{
					ID:   blk.ID,
					Cost: 1,
					Node: target.Node{
						Kind: target.KindCompareByte,
						Pos:  nd.Pos,
						Val:  uint64(nd.Cases[c].Value),
						A:    remap[nd.Cases[c].Target],
						B:    remap[bi] + c + 1,
					},
				}
				if c > 0 {
					guard.ID = src.Uint32()
				}
				if c == len(nd.Cases)-1 {
					guard.Node.B = remap[nd.B]
				}
				blocks = append(blocks, guard)
			}
			stats.SplitSwitches++
			stats.AddedBlocks += len(nd.Cases) - 1

		default:
			nb := blk
			nnd := &nb.Node
			switch nnd.Kind {
			case target.KindJump, target.KindSelfLoop:
				nnd.A = remap[nnd.A]
			case target.KindCompareByte:
				nnd.A = remap[nnd.A]
				nnd.B = remap[nnd.B]
			case target.KindCall:
				nnd.B = remap[nnd.B] // A is a function index
			case target.KindCrash, target.KindHang, target.KindReturn:
			}
			blocks = append(blocks, nb)
		}
	}
	return target.Func{Blocks: blocks}
}
