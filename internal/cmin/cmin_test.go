package cmin

import (
	"testing"

	"github.com/bigmap/bigmap/internal/covreport"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

func cminTarget(t *testing.T) *target.Program {
	t.Helper()
	prog, err := target.Generate(target.GenSpec{
		Name:           "cmin",
		Seed:           71,
		NumFuncs:       6,
		BlocksPerFunc:  14,
		InputLen:       48,
		BranchFraction: 0.6,
		Switches:       2,
		SwitchFanout:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestMinimizePreservesCoverage(t *testing.T) {
	prog := cminTarget(t)

	// Build a redundant corpus by fuzzing briefly: queue entries plus many
	// duplicated seeds.
	f, err := fuzzer.New(prog, fuzzer.Config{Seed: 1, Scheme: fuzzer.SchemeBigMap})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(2)
	for _, s := range prog.SampleSeeds(src, 6) {
		_ = f.AddSeed(s)
	}
	if err := f.RunExecs(8000); err != nil {
		t.Fatal(err)
	}
	var corpus [][]byte
	for _, e := range f.Queue().Entries() {
		corpus = append(corpus, e.Input)
		corpus = append(corpus, e.Input) // duplicate on purpose
	}

	res := Minimize(prog, corpus, 0)
	if res.EdgesAfter != res.EdgesBefore {
		t.Errorf("coverage lost: %d -> %d edges", res.EdgesBefore, res.EdgesAfter)
	}
	if len(res.Kept) >= len(corpus) {
		t.Errorf("kept %d of %d inputs; nothing minimized", len(res.Kept), len(corpus))
	}
	// No index may repeat.
	seen := map[int]bool{}
	for _, k := range res.Kept {
		if seen[k] {
			t.Fatalf("index %d kept twice", k)
		}
		seen[k] = true
	}

	// Re-measure the kept subset independently.
	cov := covreport.New(prog, 0)
	for _, k := range res.Kept {
		cov.Add(corpus[k])
	}
	if cov.Edges() != res.EdgesBefore {
		t.Errorf("kept subset covers %d edges, want %d", cov.Edges(), res.EdgesBefore)
	}
}

func TestMinimizeDropsExactDuplicates(t *testing.T) {
	prog := cminTarget(t)
	in := make([]byte, 48)
	corpus := [][]byte{in, in, in, in}
	res := Minimize(prog, corpus, 0)
	if len(res.Kept) != 1 {
		t.Errorf("kept %d of 4 identical inputs", len(res.Kept))
	}
}

func TestMinimizeEmptyCorpus(t *testing.T) {
	prog := cminTarget(t)
	res := Minimize(prog, nil, 0)
	if len(res.Kept) != 0 || res.EdgesBefore != 0 {
		t.Errorf("empty corpus minimized to %+v", res)
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	prog := cminTarget(t)
	src := rng.New(9)
	corpus := prog.SampleSeeds(src, 20)
	a := Minimize(prog, corpus, 0)
	b := Minimize(prog, corpus, 0)
	if len(a.Kept) != len(b.Kept) {
		t.Fatal("non-deterministic selection size")
	}
	for i := range a.Kept {
		if a.Kept[i] != b.Kept[i] {
			t.Fatal("non-deterministic selection order")
		}
	}
}

func TestMinimizePrefersSmallInputs(t *testing.T) {
	// Two inputs with identical coverage but different sizes: the smaller
	// must win.
	prog := &target.Program{
		Name:     "small-pref",
		InputLen: 8,
		Funcs: []target.Func{{Blocks: []target.Block{
			{ID: 1, Cost: 1, Node: target.Node{Kind: target.KindJump, A: 1}},
			{ID: 2, Cost: 1, Node: target.Node{Kind: target.KindReturn}},
		}}},
	}
	corpus := [][]byte{make([]byte, 100), make([]byte, 4)}
	res := Minimize(prog, corpus, 0)
	if len(res.Kept) != 1 || res.Kept[0] != 1 {
		t.Errorf("kept %v, want the 4-byte input (index 1)", res.Kept)
	}
}
