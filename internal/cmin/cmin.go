// Package cmin minimizes corpora, the role afl-cmin plays in an AFL
// workflow: reduce a corpus to a small subset that preserves its full edge
// coverage. Smaller corpora make queue cycles faster and cross-instance
// syncing cheaper.
//
// The reduction is the classic greedy set-cover approximation over the
// bias-free exact edge coverage (package covreport): repeatedly keep the
// input covering the most not-yet-covered edges, preferring smaller inputs
// on ties.
package cmin

import (
	"sort"

	"github.com/bigmap/bigmap/internal/covreport"
	"github.com/bigmap/bigmap/internal/target"
)

// Result describes a minimization.
type Result struct {
	// Kept are indices into the original corpus, in selection order.
	Kept []int
	// EdgesBefore and EdgesAfter are the exact edge counts of the full
	// corpus and the kept subset (equal by construction, modulo inputs
	// that crash or hang during replay, whose coverage is still counted).
	EdgesBefore int
	EdgesAfter  int
}

// traceSet is one input's exact edge set.
type traceSet struct {
	idx   int
	edges map[covreport.Edge]struct{}
}

// Minimize selects a coverage-preserving subset of corpus for prog. budget
// is the per-execution cycle budget (0 = default).
func Minimize(prog *target.Program, corpus [][]byte, budget uint64) Result {
	if budget == 0 {
		budget = 1 << 22
	}
	interp := target.NewInterp(prog)

	// Collect each input's exact edge set.
	sets := make([]traceSet, 0, len(corpus))
	union := make(map[covreport.Edge]struct{})
	for i, input := range corpus {
		tr := &edgeSetTracer{edges: make(map[covreport.Edge]struct{})}
		interp.Run(input, tr, budget)
		sets = append(sets, traceSet{idx: i, edges: tr.edges})
		for e := range tr.edges {
			union[e] = struct{}{}
		}
	}

	res := Result{EdgesBefore: len(union)}

	// Greedy set cover: stable processing order (by input size, then
	// index) keeps the result deterministic.
	order := make([]int, len(sets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := len(corpus[order[a]]), len(corpus[order[b]])
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})

	covered := make(map[covreport.Edge]struct{}, len(union))
	for len(covered) < len(union) {
		best, bestGain := -1, 0
		for _, si := range order {
			gain := 0
			for e := range sets[si].edges {
				if _, ok := covered[e]; !ok {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = si, gain
			}
		}
		if best < 0 {
			break // remaining edges unreachable (should not happen)
		}
		res.Kept = append(res.Kept, sets[best].idx)
		for e := range sets[best].edges {
			covered[e] = struct{}{}
		}
	}
	res.EdgesAfter = len(covered)
	return res
}

// edgeSetTracer records one execution's exact edges.
type edgeSetTracer struct {
	edges map[covreport.Edge]struct{}
	prev  uint32
	has   bool
}

var _ target.Tracer = (*edgeSetTracer)(nil)

func (t *edgeSetTracer) Visit(block uint32) {
	if t.has {
		t.edges[covreport.Edge{From: t.prev, To: block}] = struct{}{}
	}
	t.prev = block
	t.has = true
}

func (t *edgeSetTracer) EnterCall(uint32) {}
func (t *edgeSetTracer) LeaveCall()       {}
