package target

// Fault-injecting target wrapper: the synthetic equivalent of a noisy,
// nondeterministic instrumented binary. Real 24-hour campaigns run against
// targets whose coverage is not a pure function of the input — uninitialized
// memory, ASLR-dependent hashes and interrupted syscalls make edges flicker,
// timeouts misfire, and the occasional run dies for reasons unrelated to the
// input. Faulty reproduces those failure modes deterministically: every fault
// decision is a pure function of (profile seed, execution index), so a
// campaign against a Faulty target is exactly reproducible from its seed and
// checkpoint/resume stays bit-identical as long as the execution counter is
// restored (see ExecCount).

// SpuriousCrashSite is the CrashSite reported for injected (fake) crashes.
// No generated program uses this block ID, so triage tooling can recognize
// injected verdicts.
const SpuriousCrashSite = ^uint32(0)

// FaultProfile parameterizes fault injection. The zero value injects
// nothing; each field enables one fault class.
type FaultProfile struct {
	// Seed drives all fault decisions. Two Faulty wrappers with the same
	// profile inject exactly the same faults at the same execution indexes.
	Seed uint64
	// FlakyEdgeFraction is the fraction of basic blocks (per mille, 0-1000)
	// whose Visit events are dropped on some executions — coverage that
	// appears only sometimes, the way racy instrumentation behaves.
	FlakyEdgeFraction int
	// DropRate is the per-execution probability (per mille) that this
	// execution suppresses its flaky blocks.
	DropRate int
	// SpuriousCrashRate is the per-execution probability (per mille) that a
	// clean run is misreported as a crash at SpuriousCrashSite.
	SpuriousCrashRate int
	// SpuriousHangRate is the per-execution probability (per mille) that a
	// clean run is misreported as a budget-exhausting hang.
	SpuriousHangRate int
	// CycleJitterPct perturbs the reported cycle count by up to ±this
	// percentage, simulating scheduling noise in execution-time measurement.
	CycleJitterPct int
}

// enabled reports whether the profile injects anything at all.
func (p FaultProfile) enabled() bool {
	return p.FlakyEdgeFraction > 0 || p.SpuriousCrashRate > 0 ||
		p.SpuriousHangRate > 0 || p.CycleJitterPct > 0
}

// Faulty wraps an interpreter and injects faults per FaultProfile. It
// implements Runner, so it slots into the executor wherever the plain
// interpreter would. Not safe for concurrent use.
type Faulty struct {
	interp *Interp
	prof   FaultProfile
	flaky  map[uint32]bool // block IDs subject to visit dropping
	execs  uint64          // execution index, drives per-exec decisions
	drop   dropTracer      // reusable tracer wrapper
}

var _ Runner = (*Faulty)(nil)

// NewFaulty creates a fault-injecting runner for prog. The flaky block set
// is chosen up front from the profile seed, so it is stable for the lifetime
// of the wrapper (a given edge is either reliable or flaky, as with a real
// racy instrumentation site).
func NewFaulty(prog *Program, prof FaultProfile) *Faulty {
	f := &Faulty{
		interp: NewInterp(prog),
		prof:   prof,
		flaky:  make(map[uint32]bool),
	}
	if prof.FlakyEdgeFraction > 0 {
		for fi := range prog.Funcs {
			for bi := range prog.Funcs[fi].Blocks {
				id := prog.Funcs[fi].Blocks[bi].ID
				if int(splitmix(prof.Seed^uint64(id))%1000) < prof.FlakyEdgeFraction {
					f.flaky[id] = true
				}
			}
		}
	}
	return f
}

// Program returns the wrapped program.
func (f *Faulty) Program() *Program { return f.interp.Program() }

// Profile returns the fault profile in effect.
func (f *Faulty) Profile() FaultProfile { return f.prof }

// FlakyBlocks returns how many block IDs are subject to visit dropping.
func (f *Faulty) FlakyBlocks() int { return len(f.flaky) }

// ExecCount returns the execution index: how many runs this wrapper has
// performed. Checkpoints persist it so fault decisions replay identically
// after a resume.
func (f *Faulty) ExecCount() uint64 { return f.execs }

// SetExecCount restores the execution index from a checkpoint.
func (f *Faulty) SetExecCount(n uint64) { f.execs = n }

// Run executes input, perturbing the run per the fault profile. All
// decisions derive from splitmix64 over (seed, execution index), one
// independent stream per fault class so the classes do not correlate.
func (f *Faulty) Run(input []byte, tracer Tracer, budget uint64) Result {
	n := f.execs
	f.execs++
	if !f.prof.enabled() {
		return f.interp.Run(input, tracer, budget)
	}

	if len(f.flaky) > 0 && f.decide(n, 0x01, f.prof.DropRate) {
		f.drop.inner = tracer
		f.drop.flaky = f.flaky
		tracer = &f.drop
		defer func() { f.drop.inner = nil }()
	}

	res := f.interp.Run(input, tracer, budget)

	if f.prof.CycleJitterPct > 0 && res.Cycles > 0 {
		span := 2*f.prof.CycleJitterPct + 1
		pct := 100 + int(splitmix(f.prof.Seed^n<<8^0x02)%uint64(span)) - f.prof.CycleJitterPct
		res.Cycles = res.Cycles * uint64(pct) / 100
		if res.Cycles == 0 {
			res.Cycles = 1
		}
	}

	if res.Status == StatusOK {
		switch {
		case f.decide(n, 0x03, f.prof.SpuriousCrashRate):
			res.Status = StatusCrash
			res.CrashSite = SpuriousCrashSite
		case f.decide(n, 0x04, f.prof.SpuriousHangRate):
			res.Status = StatusHang
			if budget == 0 {
				budget = DefaultBudget
			}
			res.Cycles = budget
		}
	}
	return res
}

// decide draws one per-mille fault decision for execution n on stream tag.
func (f *Faulty) decide(n uint64, tag uint64, rate int) bool {
	if rate <= 0 {
		return false
	}
	return int(splitmix(f.prof.Seed^n<<8^tag)%1000) < rate
}

// splitmix is splitmix64: one well-mixed 64-bit output per input, used so
// every fault decision is an independent pure function of its inputs.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// dropTracer filters flaky block visits out of the event stream before they
// reach the real tracer. Dropping a Visit also changes the next edge key the
// metric derives (its previous-block state goes stale), which is exactly how
// lost instrumentation events corrupt edge coverage in a real binary.
type dropTracer struct {
	inner   Tracer
	flaky   map[uint32]bool
	scratch []uint32
}

var _ BatchTracer = (*dropTracer)(nil)

func (d *dropTracer) Visit(block uint32) {
	if d.flaky[block] {
		return
	}
	d.inner.Visit(block)
}

// VisitBatch filters the batch into a scratch buffer and forwards it. When
// the inner tracer is not batch-capable the events are replayed one by one,
// preserving the Tracer-only contract.
func (d *dropTracer) VisitBatch(blocks []uint32) {
	kept := d.scratch[:0]
	for _, b := range blocks {
		if !d.flaky[b] {
			kept = append(kept, b) //bigmap:alloc-ok fault-injection wrapper for robustness experiments; scratch reaches ring capacity after the first batch
		}
	}
	d.scratch = kept[:0]
	if len(kept) == 0 {
		return
	}
	if bt, ok := d.inner.(BatchTracer); ok {
		bt.VisitBatch(kept)
		return
	}
	for _, b := range kept {
		d.inner.Visit(b)
	}
}

func (d *dropTracer) EnterCall(site uint32) { d.inner.EnterCall(site) }
func (d *dropTracer) LeaveCall()            { d.inner.LeaveCall() }
