package target_test

import (
	"reflect"
	"testing"

	"github.com/bigmap/bigmap/internal/target"
)

// faultySpec is a slightly larger program than the golden one so flaky-block
// selection has enough blocks to bite.
var faultySpec = target.GenSpec{
	Name: "faulty", Seed: 77, NumFuncs: 4, BlocksPerFunc: 8,
	InputLen: 24, BranchFraction: 0.5,
	Switches: 1, SwitchFanout: 3, Loops: 1, LoopMax: 4,
}

func faultyProgram(t *testing.T) *target.Program {
	t.Helper()
	prog, err := target.Generate(faultySpec)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// runTrace executes input n times against the runner, returning each run's
// visit stream and result.
func runTrace(r target.Runner, input []byte, n int) ([][]uint32, []target.Result) {
	traces := make([][]uint32, n)
	results := make([]target.Result, n)
	for i := 0; i < n; i++ {
		tr := &traceTracer{}
		results[i] = r.Run(input, tr, 0)
		traces[i] = tr.ids
	}
	return traces, results
}

func TestFaultyZeroProfileIsTransparent(t *testing.T) {
	prog := faultyProgram(t)
	input := goldenInput()
	clean := target.NewInterp(prog)
	wantTr := &traceTracer{}
	want := clean.Run(input, wantTr, 0)

	f := target.NewFaulty(prog, target.FaultProfile{})
	traces, results := runTrace(f, input, 5)
	for i := range traces {
		if !reflect.DeepEqual(traces[i], wantTr.ids) || !reflect.DeepEqual(results[i], want) {
			t.Fatalf("run %d: zero-profile Faulty diverged from interpreter", i)
		}
	}
}

func TestFaultyDeterministicAcrossWrappers(t *testing.T) {
	prog := faultyProgram(t)
	prof := target.FaultProfile{
		Seed: 99, FlakyEdgeFraction: 300, DropRate: 500,
		SpuriousCrashRate: 100, SpuriousHangRate: 100, CycleJitterPct: 20,
	}
	input := goldenInput()
	a := target.NewFaulty(prog, prof)
	b := target.NewFaulty(prog, prof)
	ta, ra := runTrace(a, input, 50)
	tb, rb := runTrace(b, input, 50)
	if !reflect.DeepEqual(ta, tb) || !reflect.DeepEqual(ra, rb) {
		t.Fatal("same profile produced different fault sequences")
	}
}

func TestFaultyFlakyEdgesFlicker(t *testing.T) {
	prog := faultyProgram(t)
	prof := target.FaultProfile{Seed: 5, FlakyEdgeFraction: 400, DropRate: 500}
	f := target.NewFaulty(prog, prof)
	if f.FlakyBlocks() == 0 {
		t.Fatal("no flaky blocks chosen at 40% fraction")
	}
	traces, results := runTrace(f, goldenInput(), 40)
	// All runs are OK (no spurious verdicts configured) but the traces must
	// differ across executions: drops fire on some execs only.
	distinct := map[int]bool{}
	for i, tr := range traces {
		if results[i].Status != target.StatusOK {
			t.Fatalf("run %d: unexpected status %v", i, results[i].Status)
		}
		distinct[len(tr)] = true
	}
	short, full := false, false
	for i := 1; i < len(traces); i++ {
		switch {
		case len(traces[i]) < len(traces[0]), len(traces[0]) < len(traces[i]):
			short = true
		case reflect.DeepEqual(traces[i], traces[0]):
			full = true
		}
	}
	if !short || !full {
		t.Fatalf("expected a mix of dropped and clean runs, got trace lengths %v", distinct)
	}
}

func TestFaultySpuriousVerdicts(t *testing.T) {
	prog := faultyProgram(t)
	prof := target.FaultProfile{Seed: 1, SpuriousCrashRate: 200, SpuriousHangRate: 200}
	f := target.NewFaulty(prog, prof)
	_, results := runTrace(f, goldenInput(), 100)
	crashes, hangs := 0, 0
	for _, r := range results {
		switch r.Status {
		case target.StatusCrash:
			crashes++
			if r.CrashSite != target.SpuriousCrashSite {
				t.Fatalf("injected crash reported site %#x, want SpuriousCrashSite", r.CrashSite)
			}
		case target.StatusHang:
			hangs++
			if r.Cycles != target.DefaultBudget {
				t.Fatalf("injected hang reported %d cycles, want full budget", r.Cycles)
			}
		}
	}
	if crashes == 0 || hangs == 0 {
		t.Fatalf("expected both spurious crashes and hangs over 100 runs, got %d/%d", crashes, hangs)
	}
}

func TestFaultyCycleJitter(t *testing.T) {
	prog := faultyProgram(t)
	clean := target.NewInterp(prog)
	base := clean.Run(goldenInput(), target.NopTracer{}, 0).Cycles
	f := target.NewFaulty(prog, target.FaultProfile{Seed: 3, CycleJitterPct: 30})
	_, results := runTrace(f, goldenInput(), 50)
	varied := false
	for _, r := range results {
		lo := base * 70 / 100
		hi := base*130/100 + 1
		if r.Cycles < lo || r.Cycles > hi {
			t.Fatalf("jittered cycles %d outside [%d,%d]", r.Cycles, lo, hi)
		}
		if r.Cycles != base {
			varied = true
		}
	}
	if !varied {
		t.Fatal("cycle jitter never changed the reported cost")
	}
}

func TestFaultyExecCountRestoreReplaysDecisions(t *testing.T) {
	prog := faultyProgram(t)
	prof := target.FaultProfile{
		Seed: 42, FlakyEdgeFraction: 300, DropRate: 400,
		SpuriousCrashRate: 150, SpuriousHangRate: 150, CycleJitterPct: 25,
	}
	input := goldenInput()

	// Uninterrupted reference: 60 runs.
	ref := target.NewFaulty(prog, prof)
	wantTr, wantRes := runTrace(ref, input, 60)

	// Interrupted: 25 runs, then a fresh wrapper restored at exec 25.
	first := target.NewFaulty(prog, prof)
	gotTr, gotRes := runTrace(first, input, 25)
	resumed := target.NewFaulty(prog, prof)
	resumed.SetExecCount(first.ExecCount())
	tr2, res2 := runTrace(resumed, input, 35)
	gotTr = append(gotTr, tr2...)
	gotRes = append(gotRes, res2...)

	if !reflect.DeepEqual(gotTr, wantTr) || !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatal("resumed wrapper diverged from uninterrupted fault sequence")
	}
}
