package target

import (
	"fmt"

	"github.com/bigmap/bigmap/internal/rng"
)

// GenSpec parameterizes program generation. Zero values mean "none" for the
// feature counts and pick conservative defaults for the shape knobs.
type GenSpec struct {
	// Name labels the generated program.
	Name string
	// Seed drives all generation randomness; the same spec always yields
	// the identical program.
	Seed uint64
	// NumFuncs and BlocksPerFunc size the CFG. Functions beyond the first
	// are wired into a DAG call graph with exactly one call site per
	// callee, so every function is reachable and traces stay linear.
	NumFuncs      int
	BlocksPerFunc int
	// InputLen is the natural input length; all comparison positions fall
	// inside it.
	InputLen int
	// BranchFraction is the probability that a filler block is a
	// data-dependent two-way branch rather than a jump.
	BranchFraction float64
	// MagicCompares plants exactly this many multi-byte KindCompareWord
	// roadblocks with random (all-bytes-nonzero) operands of MagicWidth
	// bytes — the laf-intel/cmplog material.
	MagicCompares int
	MagicWidth    int
	// BonusBlocks is coverage reachable only by matching magic compares,
	// split across them: the reward for solving a roadblock.
	BonusBlocks int
	// GatedCallFraction guards this fraction of call sites behind a
	// one-byte compare, hiding whole call subtrees from inputs that miss
	// the byte — the skewed branch reachability rare-branch work needs.
	GatedCallFraction float64
	// Switches plants KindSwitch nodes with SwitchFanout arms each.
	Switches     int
	SwitchFanout int
	// Loops plants KindSelfLoop nodes iterating input-dependent counts up
	// to LoopMax.
	Loops   int
	LoopMax int
	// CrashSites plants KindCrash blocks, each behind a chain of
	// CrashDepth one-byte guards with nonzero wanted values (an all-zero
	// input is always benign). HangSites plants KindHang blocks behind
	// the same guard shape.
	CrashSites int
	CrashDepth int
	HangSites  int
}

// feature kinds the generator embeds into a function's block chain.
const (
	featCall = iota
	featMagic
	featSwitch
	featLoop
	featCrash
	featHang
)

type feature struct {
	kind    int
	callee  int  // featCall: callee function index
	gated   bool // featCall: reachable only past a byte-compare check
	bonus   int  // featMagic: gated bonus blocks
	start   int  // first chain slot (laid out per function)
	special int  // first special-region slot (crash/hang/bonus)
}

// Generate builds a program from spec. Generation is deterministic in the
// spec; structural invariants (relied on across the tree, notably by the
// CollAFL static assignment and the laf-intel transformation):
//
//   - every block ID is globally unique and nonzero;
//   - every intra-function target is a strictly forward block index;
//   - every call site targets a strictly higher function index, and each
//     function above the entry has exactly one call site;
//   - an all-zero input runs to completion (crash, hang and bonus regions
//     sit behind nonzero guard bytes).
func Generate(spec GenSpec) (*Program, error) {
	if spec.NumFuncs < 1 {
		return nil, fmt.Errorf("target: NumFuncs = %d, need >= 1", spec.NumFuncs)
	}
	if spec.BlocksPerFunc < 2 {
		return nil, fmt.Errorf("target: BlocksPerFunc = %d, need >= 2", spec.BlocksPerFunc)
	}
	if spec.InputLen < 1 {
		return nil, fmt.Errorf("target: InputLen = %d, need >= 1", spec.InputLen)
	}
	width := spec.MagicWidth
	if width < 2 {
		width = 4
	}
	if width > 8 {
		width = 8
	}
	if width > spec.InputLen {
		width = spec.InputLen
	}
	fanout := spec.SwitchFanout
	if fanout < 1 {
		fanout = 2
	}
	if fanout > 32 {
		fanout = 32
	}
	loopMax := spec.LoopMax
	if loopMax < 2 {
		loopMax = 8
	}
	if loopMax > 255 {
		loopMax = 255
	}
	depth := spec.CrashDepth
	if depth < 1 {
		depth = 1
	}
	branch := clamp01(spec.BranchFraction)
	gated := clamp01(spec.GatedCallFraction)

	src := rng.New(spec.Seed ^ 0x7a9c0de5eed)
	nf := spec.NumFuncs

	// Assign features to functions. One call site per callee keeps every
	// function reachable exactly once per trace (DAG, linear traces).
	plans := make([][]feature, nf)
	for callee := 1; callee < nf; callee++ {
		caller := src.Intn(callee)
		plans[caller] = append(plans[caller], feature{
			kind:   featCall,
			callee: callee,
			gated:  src.Float64() < gated,
		})
	}
	sprinkle := func(kind, count int) {
		for i := 0; i < count; i++ {
			fi := src.Intn(nf)
			plans[fi] = append(plans[fi], feature{kind: kind})
		}
	}
	sprinkle(featMagic, spec.MagicCompares)
	sprinkle(featSwitch, spec.Switches)
	sprinkle(featLoop, spec.Loops)
	sprinkle(featCrash, spec.CrashSites)
	sprinkle(featHang, spec.HangSites)

	// Split the bonus region across the magic compares, in plan order.
	if spec.MagicCompares > 0 && spec.BonusBlocks > 0 {
		base := spec.BonusBlocks / spec.MagicCompares
		extra := spec.BonusBlocks % spec.MagicCompares
		seen := 0
		for fi := range plans {
			for i := range plans[fi] {
				if plans[fi][i].kind != featMagic {
					continue
				}
				share := base
				if seen < extra {
					share++
				}
				plans[fi][i].bonus = share
				seen++
			}
		}
	}

	prog := &Program{Name: spec.Name, InputLen: spec.InputLen, Funcs: make([]Func, nf)}
	for fi := range plans {
		prog.Funcs[fi] = genFunc(src, spec, plans[fi], branch, width, fanout, loopMax, depth)
	}

	// Globally unique nonzero IDs, spread over the 32-bit space.
	used := map[uint32]bool{0: true}
	for fi := range prog.Funcs {
		for bi := range prog.Funcs[fi].Blocks {
			id := src.Uint32()
			for used[id] {
				id = src.Uint32()
			}
			used[id] = true
			prog.Funcs[fi].Blocks[bi].ID = id
		}
	}
	return prog, nil
}

// genFunc lays out one function: a fall-through chain of filler and feature
// blocks, a bridge jump, the special region (crash/hang blocks and bonus
// chains, reachable only through their guards), and the terminating return.
func genFunc(src *rng.Source, spec GenSpec, feats []feature, branch float64, width, fanout, loopMax, depth int) Func {
	src.Shuffle(len(feats), func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })

	slots := func(f *feature) int {
		switch f.kind {
		case featCall:
			if f.gated {
				return 2
			}
			return 1
		case featCrash, featHang:
			return depth
		default:
			return 1
		}
	}
	needed := 0
	for i := range feats {
		needed += slots(&feats[i])
	}
	fillers := spec.BlocksPerFunc - 2 - needed
	if fillers < 0 {
		fillers = 0
	}

	// Distribute the fillers into the gaps around the features.
	gaps := make([]int, len(feats)+1)
	for i := 0; i < fillers; i++ {
		gaps[src.Intn(len(gaps))]++
	}

	// Layout pass: chain slot of every feature, then the special region.
	idx := 0
	for i := range feats {
		idx += gaps[i]
		feats[i].start = idx
		idx += slots(&feats[i])
	}
	idx += gaps[len(feats)]
	bridge := idx
	chainLen := bridge + 1
	special := chainLen
	for i := range feats {
		switch feats[i].kind {
		case featCrash, featHang:
			feats[i].special = special
			special++
		case featMagic:
			if feats[i].bonus > 0 {
				feats[i].special = special
				special += feats[i].bonus
			}
		}
	}
	ret := special

	blocks := make([]Block, ret+1)
	for i := range blocks {
		blocks[i].Cost = 1
	}

	// fwd picks a strictly forward destination: a later chain slot or the
	// return block — never the guarded special region.
	fwd := func(i int) int {
		j := i + 1 + src.Intn(chainLen-i)
		if j >= chainLen {
			j = ret
		}
		return j
	}
	pos := func() int { return src.Intn(spec.InputLen) }
	guardVal := func() uint64 { return uint64(1 + src.Intn(255)) }

	filler := func(i, next int) Node {
		if src.Float64() < branch {
			return Node{Kind: KindCompareByte, Pos: pos(), Val: guardVal(), A: fwd(i), B: next}
		}
		return Node{Kind: KindJump, A: next}
	}

	// Emission pass, in layout order so the rng stream stays aligned.
	idx = 0
	emitFillers := func(n int) {
		for ; n > 0; n-- {
			blocks[idx].Node = filler(idx, idx+1)
			idx++
		}
	}
	for i := range feats {
		emitFillers(gaps[i])
		f := &feats[i]
		next := f.start + slots(f)
		switch f.kind {
		case featCall:
			if f.gated {
				blocks[idx].Node = Node{Kind: KindCompareByte, Pos: pos(), Val: guardVal(), A: idx + 1, B: next}
				idx++
			}
			blocks[idx].Node = Node{Kind: KindCall, A: f.callee, B: next}
			idx++
		case featMagic:
			val := uint64(0)
			for b := 0; b < width; b++ {
				val |= uint64(1+src.Intn(255)) << (8 * b)
			}
			dest := f.special
			if f.bonus == 0 {
				dest = fwd(idx)
			}
			blocks[idx].Node = Node{
				Kind:  KindCompareWord,
				Pos:   src.Intn(spec.InputLen - width + 1),
				Val:   val,
				Width: width,
				A:     dest,
				B:     next,
			}
			idx++
		case featSwitch:
			values := make(map[byte]bool)
			cases := make([]SwitchCase, 0, fanout)
			for len(cases) < fanout {
				v := byte(1 + src.Intn(255))
				if values[v] {
					continue
				}
				values[v] = true
				cases = append(cases, SwitchCase{Value: v, Target: fwd(idx)})
			}
			blocks[idx].Node = Node{Kind: KindSwitch, Pos: pos(), B: next, Cases: cases}
			idx++
		case featLoop:
			blocks[idx].Node = Node{Kind: KindSelfLoop, Pos: pos(), Val: uint64(loopMax), A: next}
			idx++
		case featCrash, featHang:
			for g := 0; g < depth; g++ {
				hit := idx + 1
				if g == depth-1 {
					hit = f.special
				}
				blocks[idx].Node = Node{Kind: KindCompareByte, Pos: pos(), Val: guardVal(), A: hit, B: next}
				idx++
			}
			kind := KindCrash
			if f.kind == featHang {
				kind = KindHang
			}
			blocks[f.special].Node = Node{Kind: kind}
		}
	}
	emitFillers(gaps[len(feats)])

	blocks[bridge].Node = Node{Kind: KindJump, A: ret}

	// Bonus chains: linear jump runs ending at the return block.
	for i := range feats {
		f := &feats[i]
		if f.kind != featMagic || f.bonus == 0 {
			continue
		}
		for j := 0; j < f.bonus; j++ {
			dest := f.special + j + 1
			if j == f.bonus-1 {
				dest = ret
			}
			blocks[f.special+j].Node = Node{Kind: KindJump, A: dest}
		}
	}

	blocks[ret].Node = Node{Kind: KindReturn}
	return Func{Blocks: blocks}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
