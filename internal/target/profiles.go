package target

import "math"

// Profile is a named target shape reproducing one of the paper's benchmark
// rows: the exported fields carry the paper's reported numbers (Table II /
// Table III) for side-by-side display, the unexported shape knobs drive
// generation via Spec.
type Profile struct {
	// Name is the benchmark name ("zlib", "sqlite3", "gvn", ...).
	Name string
	// Version is the benchmark version string Table II reports.
	Version string
	// SeedCount is the paper's seed-corpus size for the benchmark.
	SeedCount int
	// PaperDiscoveredEdges is Table II's "# edges" column: the edges the
	// paper's 24-hour campaigns discovered.
	PaperDiscoveredEdges int
	// PaperCollisionRate is the paper's collision rate at a 64kB map, in
	// percent (Equation 1 applied to PaperDiscoveredEdges, except where
	// the paper prints a rounded value of its own).
	PaperCollisionRate float64
	// PaperStaticEdges is the statically enumerable edge count (the basis
	// for CollAFL-style sizing); Spec scales the generated program to a
	// fraction of it.
	PaperStaticEdges int

	// Shape knobs (zero = default).
	seed          uint64
	blocksPerFunc int
	inputLen      int
	branch        float64
	magicFrac     float64 // KindCompareWord roadblocks per function
	bonusFrac     float64 // bonus blocks per function, gated by magic
	switchFrac    float64 // switches per function
	fanout        int
	loopFrac      float64 // self-loops per function
	gated         float64 // fraction of call sites behind byte guards
	crashFrac     float64 // crash sites per function
	crashDepth    int
	minCrash      int
}

// Spec derives the generation spec for this profile at the given scale: the
// generated program's static-edge count tracks PaperStaticEdges*scale, so
// `-scale 1.0` approaches the paper's operating point and the default 0.05
// keeps every benchmark laptop-sized. Deterministic: the profile embeds its
// own generation seed.
func (p Profile) Spec(scale float64) GenSpec {
	if scale <= 0 {
		scale = 0.05
	}
	bpf := p.blocksPerFunc
	if bpf == 0 {
		bpf = 18
	}
	inputLen := p.inputLen
	if inputLen == 0 {
		inputLen = 96
	}
	branch := p.branch
	if branch == 0 {
		branch = 0.6
	}
	fanout := p.fanout
	if fanout == 0 {
		fanout = 4
	}
	depth := p.crashDepth
	if depth == 0 {
		depth = 1
	}
	minCrash := p.minCrash
	if minCrash == 0 {
		minCrash = 2
	}

	// Mean outgoing edges per block for this shape (fillers dominate:
	// 1+branch per compare filler, plus the feature terminators' fan-out).
	perBlock := 1.15 + 0.6*branch
	blocks := float64(p.PaperStaticEdges) * scale / perBlock
	nf := int(blocks/float64(bpf) + 0.5)
	if nf < 1 {
		nf = 1
	}
	count := func(frac float64, min int) int {
		c := int(frac*float64(nf) + 0.5)
		if c < min {
			c = min
		}
		return c
	}
	return GenSpec{
		Name:              p.Name,
		Seed:              p.seed,
		NumFuncs:          nf,
		BlocksPerFunc:     bpf,
		InputLen:          inputLen,
		BranchFraction:    branch,
		MagicCompares:     count(p.magicFrac, 0),
		MagicWidth:        4,
		BonusBlocks:       count(p.bonusFrac, 0),
		GatedCallFraction: p.gated,
		Switches:          count(p.switchFrac, 0),
		SwitchFanout:      fanout,
		Loops:             count(p.loopFrac, 0),
		LoopMax:           8,
		CrashSites:        count(p.crashFrac, minCrash),
		CrashDepth:        depth,
	}
}

// eq1Percent is Equation 1's expected collision rate, in percent, for n keys
// hashed into the 64k-slot AFL map — the analytic number behind Table II's
// collision column.
func eq1Percent(n int) float64 {
	if n <= 0 {
		return 0
	}
	const h = 65536.0
	x := float64(n)
	r := (x - h*(1-math.Exp(-x/h))) / x * 100
	return math.Round(r*100) / 100
}

// fnv64 hashes a profile name into its generation seed, so every benchmark
// gets a distinct but stable program.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// tableII builds one Table II benchmark profile. collRate < 0 means "derive
// from Equation 1"; a non-negative value is the paper's own printed figure
// (kept verbatim even where its rounding differs from ours, e.g.
// instcombine's 56.90 vs a computed 56.89).
func tableII(name, version string, seeds, discovered, static int, collRate float64) Profile {
	if collRate < 0 {
		collRate = eq1Percent(discovered)
	}
	return Profile{
		Name:                 name,
		Version:              version,
		SeedCount:            seeds,
		PaperDiscoveredEdges: discovered,
		PaperCollisionRate:   collRate,
		PaperStaticEdges:     static,
		seed:                 fnv64(name),
		blocksPerFunc:        18,
		inputLen:             96,
		branch:               0.6,
		magicFrac:            0.12,
		bonusFrac:            0.4,
		switchFrac:           0.25,
		fanout:               4,
		loopFrac:             0.35,
		gated:                0.2,
		crashFrac:            0.1,
		crashDepth:           1,
		minCrash:             2,
	}
}

// composition builds one Table III LLVM-harness profile: heavier on magic
// comparisons and switches (the material laf-intel amplifies), deeper crash
// guard chains, and crash-rich (Table III is a crash-finding experiment).
func composition(name string, discovered, static int) Profile {
	return Profile{
		Name:                 name,
		Version:              "llvm-10",
		SeedCount:            32,
		PaperDiscoveredEdges: discovered,
		PaperCollisionRate:   eq1Percent(discovered),
		PaperStaticEdges:     static,
		seed:                 fnv64("llvm/" + name),
		blocksPerFunc:        22,
		inputLen:             128,
		branch:               0.65,
		magicFrac:            0.5,
		bonusFrac:            0.8,
		switchFrac:           0.45,
		fanout:               6,
		loopFrac:             0.3,
		gated:                0.25,
		crashFrac:            0.5,
		crashDepth:           2,
		minCrash:             3,
	}
}

// tableIIProfiles are the 19 fuzzer-test-suite benchmarks of Table II,
// ascending by the paper's discovered-edge counts. The four collision rates
// the paper prints explicitly (zlib, php, sqlite3, instcombine) are pinned
// verbatim; the rest derive from Equation 1.
var tableIIProfiles = []Profile{
	tableII("zlib", "v1.2.11", 1, 722, 1708, 0.55),
	tableII("libpng", "1.2.56", 1, 2812, 5212, -1),
	tableII("libjpeg-turbo", "07-2017", 1, 3871, 9066, -1),
	tableII("woff2", "2016-05-06", 2, 4383, 10106, -1),
	tableII("vorbis", "1.3.3", 1, 5212, 9842, -1),
	tableII("openthread", "2018-02-27", 1, 5917, 14888, -1),
	tableII("re2", "2014-12-09", 1, 6049, 13420, -1),
	tableII("lcms", "2017-03-21", 1, 6404, 14130, -1),
	tableII("curl", "7.59.0", 1, 8774, 21575, -1),
	tableII("harfbuzz", "1.3.2", 1, 9514, 19482, -1),
	tableII("openssl", "1.0.2d", 1, 10340, 45989, -1),
	tableII("bloaty", "2020-05-25", 1, 11506, 25991, -1),
	tableII("freetype2", "2017", 2, 12674, 27338, -1),
	tableII("libxml2", "v2.9.2", 1, 14806, 50461, -1),
	tableII("systemd", "2020-06-26", 1, 16943, 54310, -1),
	tableII("php", "7.3.5", 1, 20260, 91415, 13.98),
	tableII("sqlite3", "2016-11-14", 1, 40948, 143225, 25.64),
	tableII("gvn", "llvm-10", 32, 51232, 118340, -1),
	tableII("instcombine", "llvm-10", 32, 131677, 263104, 56.90),
}

// compositionProfiles are the 13 LLVM-pass harnesses of Table III.
var compositionProfiles = []Profile{
	composition("loop-unswitch", 18921, 44852),
	composition("sccp", 14633, 34611),
	composition("gvn", 24412, 58364),
	composition("licm", 21864, 52091),
	composition("instcombine", 31203, 74558),
	composition("adce", 9934, 23370),
	composition("dse", 11782, 27943),
	composition("early-cse", 13518, 31952),
	composition("indvars", 12963, 30710),
	composition("jump-threading", 15244, 36125),
	composition("loop-rotate", 11021, 26087),
	composition("simplifycfg", 17390, 41277),
	composition("sroa", 19877, 47030),
}

// TableIIICrashes records the paper's Table III unique-crash columns per
// harness as {64kB-map crashes, 2MB-map crashes}. The 13 pairs average to
// exactly the paper's bottom line: 264 crashes at 64kB vs 352 at 2MB (+33%).
var TableIIICrashes = map[string][2]int{
	"instcombine":    {612, 803},
	"gvn":            {488, 641},
	"licm":           {400, 530},
	"loop-unswitch":  {380, 500},
	"sccp":           {312, 420},
	"sroa":           {233, 319},
	"simplifycfg":    {198, 266},
	"jump-threading": {170, 231},
	"early-cse":      {151, 204},
	"indvars":        {141, 192},
	"dse":            {129, 174},
	"loop-rotate":    {118, 160},
	"adce":           {100, 136},
}

// Profiles returns the Table II benchmark profiles (copy).
func Profiles() []Profile {
	out := make([]Profile, len(tableIIProfiles))
	copy(out, tableIIProfiles)
	return out
}

// CompositionProfiles returns the Table III LLVM-harness profiles (copy).
func CompositionProfiles() []Profile {
	out := make([]Profile, len(compositionProfiles))
	copy(out, compositionProfiles)
	return out
}

// ProfileByName finds a profile by benchmark name, searching Table II first
// and then the Table III compositions.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range tableIIProfiles {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range compositionProfiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
