package target_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/selffuzz/seedcorpus"
	"github.com/bigmap/bigmap/internal/target"
)

// TestWriteInterpCorpus regenerates testdata/fuzz/FuzzInterp from the same
// program spec the fuzz target uses, so `go test` replays the interpreter's
// known-hard inputs (magic-byte hits, deep seeds, degenerate shapes) without
// -fuzz. Gated behind BIGMAP_WRITE_CORPUS=1; see internal/selffuzz for the
// regeneration workflow.
func TestWriteInterpCorpus(t *testing.T) {
	if os.Getenv("BIGMAP_WRITE_CORPUS") != "1" {
		t.Skip("set BIGMAP_WRITE_CORPUS=1 to regenerate testdata/fuzz corpora")
	}
	prog, err := target.Generate(target.GenSpec{
		Name: "fuzz", Seed: 1234, NumFuncs: 4, BlocksPerFunc: 10,
		InputLen: 32, BranchFraction: 0.6,
		MagicCompares: 2, MagicWidth: 4, BonusBlocks: 4,
		GatedCallFraction: 0.5,
		Switches:          2, SwitchFanout: 4,
		Loops: 2, LoopMax: 8,
		CrashSites: 2, CrashDepth: 1,
		HangSites: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzInterp")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries := [][]byte{
		{},
		make([]byte, 32),
		bytes.Repeat([]byte{0xff}, 64),
		{0x00, 0xff, 0x00, 0xff, 0x80, 0x7f},
	}
	entries = append(entries, prog.SampleSeeds(rng.New(7), 4)...)
	for i, in := range entries {
		name := "seed-" + string(rune('a'+i))
		if err := seedcorpus.WriteFile(dir, name, in); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
