package target

// DefaultBudget is the cycle budget used when Run is given zero — the
// analogue of AFL's default exec timeout.
const DefaultBudget = 1 << 22

// maxCallDepth bounds the synthetic call stack. Generated programs have DAG
// call graphs bounded by their function count; the cap only matters for
// hand-built recursive programs, which are reported as hangs (a stack
// overflow under a timeout) instead of exhausting memory.
const maxCallDepth = 4096

// frame is one suspended caller.
type frame struct {
	fn   int    // caller function index
	cont int    // caller block index to resume at
	site uint32 // call-site block ID (for Result.Stack)
}

// traceRingLen is the capacity of the interpreter's trace ring: big enough
// that a typical execution flushes a handful of times, small enough to stay
// resident in L1 (2kB) while the batch consumer re-walks it.
const traceRingLen = 512

// Interp executes inputs against one program. It is reusable across
// executions and owns no per-run state besides scratch buffers (the call
// stack and the trace ring are allocated once and reused); not safe for
// concurrent use.
type Interp struct {
	prog  *Program
	hook  func(Compare)
	stack []frame
	ring  []uint32 // reusable trace ring for BatchTracer consumers
}

// NewInterp creates an interpreter for prog.
func NewInterp(prog *Program) *Interp {
	return &Interp{prog: prog}
}

// Program returns the interpreted program.
func (ip *Interp) Program() *Program { return ip.prog }

// SetCompareHook installs fn to observe every FAILED comparison (byte and
// word compares, and each switch arm tested before the selected one). This
// is the cmplog/RedQueen channel: successful comparisons are invisible, so
// the hook reports exactly the operands an input still needs. A nil fn
// removes the hook.
func (ip *Interp) SetCompareHook(fn func(Compare)) { ip.hook = fn }

// at reads one input byte; positions past the end observe zero (shorter
// inputs are implicitly zero-padded to the program's natural length).
func at(input []byte, pos int) byte {
	if pos >= 0 && pos < len(input) {
		return input[pos]
	}
	return 0
}

// Run executes input against the program under the given cycle budget
// (0 = DefaultBudget), reporting each executed block to tracer. Every block
// charges its Cost in virtual cycles (minimum one, so zero-cost hand-built
// programs cannot loop for free); exceeding the budget terminates the run
// with StatusHang, exactly like a timeout kill — partial coverage stays
// recorded.
//
// The Visit stream is the ground truth every coverage backend consumes: its
// consecutive pairs are exactly the transitions CollAFL's static assignment
// enumerates (call sites are followed by the callee entry, callee Return
// blocks by the caller's continuation), so a run produces no statically
// unknown edges.
//
// When tracer implements BatchTracer, block IDs are buffered in the
// interpreter's trace ring and delivered through VisitBatch — one virtual
// call per ring's worth of blocks instead of one per block. The ring is
// flushed around call events and before returning, so batch consumers see
// the same event order (see BatchTracer).
//
//bigmap:hotpath the target execution loop itself
func (ip *Interp) Run(input []byte, tracer Tracer, budget uint64) Result {
	if budget == 0 {
		budget = DefaultBudget
	}
	var res Result
	prog := ip.prog
	if len(prog.Funcs) == 0 || len(prog.Funcs[0].Blocks) == 0 {
		return res
	}
	stack := ip.stack[:0]
	var cycles uint64
	fn, bi := 0, 0

	bt, batched := tracer.(BatchTracer)
	if batched && cap(ip.ring) == 0 {
		ip.ring = make([]uint32, 0, traceRingLen) //bigmap:alloc-ok one-time lazy ring allocation, reused across every subsequent run
	}
	ring := ip.ring[:0]
	flushRing := func() {
		if len(ring) > 0 {
			bt.VisitBatch(ring)
			ring = ring[:0]
		}
	}

	charge := func(cost uint64) bool {
		if cost == 0 {
			cost = 1
		}
		cycles += cost
		return cycles <= budget
	}
	finish := func(status Status) Result {
		if batched {
			flushRing()
			ip.ring = ring[:0]
		}
		res.Status = status
		res.Cycles = cycles
		if len(stack) > 0 {
			res.Stack = make([]uint32, len(stack)) //bigmap:alloc-ok abnormal-exit reporting: a clean run ends with an empty call stack
			for i := range stack {
				res.Stack[i] = stack[i].site
			}
		}
		ip.stack = stack[:0]
		return res
	}

	for {
		if fn < 0 || fn >= len(prog.Funcs) {
			return finish(StatusOK)
		}
		blocks := prog.Funcs[fn].Blocks
		if bi < 0 || bi >= len(blocks) {
			return finish(StatusOK)
		}
		blk := &blocks[bi]
		if !charge(blk.Cost) {
			cycles = budget
			return finish(StatusHang)
		}
		if batched {
			if len(ring) == cap(ring) {
				bt.VisitBatch(ring)
				ring = ring[:0]
			}
			ring = append(ring, blk.ID) //bigmap:alloc-ok never reallocates: the ring is flushed at capacity on the line above
		} else {
			tracer.Visit(blk.ID)
		}
		res.Blocks++

		nd := &blk.Node
		switch nd.Kind {
		case KindJump:
			bi = nd.A

		case KindCompareByte:
			if at(input, nd.Pos) == byte(nd.Val) {
				bi = nd.A
			} else {
				if ip.hook != nil {
					ip.hook(Compare{Pos: nd.Pos, Val: uint64(byte(nd.Val)), Width: 1})
				}
				bi = nd.B
			}

		case KindCompareWord:
			w := nd.Width
			if w < 1 {
				w = 1
			} else if w > 8 {
				w = 8
			}
			var got uint64
			for i := 0; i < w; i++ {
				got |= uint64(at(input, nd.Pos+i)) << (8 * i)
			}
			want := nd.Val
			if w < 8 {
				want &= 1<<(8*w) - 1
			}
			if got == want {
				bi = nd.A
			} else {
				if ip.hook != nil {
					ip.hook(Compare{Pos: nd.Pos, Val: want, Width: w})
				}
				bi = nd.B
			}

		case KindSwitch:
			got := at(input, nd.Pos)
			next := nd.B
			for i := range nd.Cases {
				if got == nd.Cases[i].Value {
					next = nd.Cases[i].Target
					break
				}
				if ip.hook != nil {
					ip.hook(Compare{Pos: nd.Pos, Val: uint64(nd.Cases[i].Value), Width: 1})
				}
			}
			bi = next

		case KindSelfLoop:
			// input[Pos] % Val extra iterations of this block: the tight
			// back edge re-visits the same ID, then control exits to A.
			if bound := int64(nd.Val); bound > 0 {
				n := int(int64(at(input, nd.Pos)) % bound)
				for i := 0; i < n; i++ {
					if !charge(blk.Cost) {
						cycles = budget
						return finish(StatusHang)
					}
					if batched {
						if len(ring) == cap(ring) {
							bt.VisitBatch(ring)
							ring = ring[:0]
						}
						ring = append(ring, blk.ID) //bigmap:alloc-ok never reallocates: the ring is flushed at capacity on the line above
					} else {
						tracer.Visit(blk.ID)
					}
					res.Blocks++
				}
			}
			bi = nd.A

		case KindCall:
			callee := nd.A
			if callee < 0 || callee >= len(prog.Funcs) || len(prog.Funcs[callee].Blocks) == 0 {
				bi = nd.B // degenerate call: fall through to the continuation
				break
			}
			if len(stack) >= maxCallDepth {
				cycles = budget
				return finish(StatusHang)
			}
			stack = append(stack, frame{fn: fn, cont: nd.B, site: blk.ID}) //bigmap:alloc-ok bounded by maxCallDepth and reuses ip.stack backing across runs
			if batched {
				flushRing() // keep Visit/EnterCall order for batch consumers
			}
			tracer.EnterCall(blk.ID)
			fn, bi = callee, 0

		case KindCrash:
			res.CrashSite = blk.ID
			return finish(StatusCrash)

		case KindHang:
			// An infinite loop under a timeout: the rest of the budget is
			// consumed with no further coverage.
			cycles = budget
			return finish(StatusHang)

		case KindReturn:
			if len(stack) == 0 {
				return finish(StatusOK)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if batched {
				flushRing() // keep Visit/LeaveCall order for batch consumers
			}
			tracer.LeaveCall()
			fn, bi = top.fn, top.cont

		default:
			return finish(StatusOK)
		}
	}
}
