package target_test

import (
	"testing"

	"github.com/bigmap/bigmap/internal/collafl"
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/covreport"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

// mapTracer feeds the Visit stream through a coverage metric into a map —
// the same wiring the executor uses.
type mapTracer struct {
	metric core.Metric
	cov    core.Map
}

func (t *mapTracer) Visit(b uint32)   { t.cov.Add(t.metric.Visit(b)) }
func (t *mapTracer) EnterCall(uint32) {}
func (t *mapTracer) LeaveCall()       {}

// TestTracerMapAgreesWithCovreport cross-checks the two coverage observers
// of the same Tracer stream: edges accumulated into an AFL-style map under
// CollAFL's collision-free sizing must count exactly what covreport's
// exact-edge replay counts for the same corpus. Any disagreement means a
// backend is seeing a different run than the interpreter performed.
func TestTracerMapAgreesWithCovreport(t *testing.T) {
	p, ok := target.ProfileByName("zlib")
	if !ok {
		t.Fatal("zlib profile missing")
	}
	prog, err := target.Generate(p.Spec(0.05))
	if err != nil {
		t.Fatal(err)
	}

	// A corpus with variety: benign seeds, random inputs, crash witnesses.
	src := rng.New(31337)
	corpus := prog.SampleSeeds(src, 8)
	for i := 0; i < 16; i++ {
		in := make([]byte, prog.InputLen)
		src.Bytes(in)
		corpus = append(corpus, in)
	}
	for attempt := 0; attempt < 500 && len(corpus) < 28; attempt++ {
		if w, ok := prog.SynthesizeCrashWitness(src); ok {
			corpus = append(corpus, w)
		}
	}

	assign, err := collafl.Assign(prog)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := core.NewAFLMap(assign.MapSize())
	if err != nil {
		t.Fatal(err)
	}
	metric := assign.NewMetric()
	ip := target.NewInterp(prog)
	tracer := &mapTracer{metric: metric, cov: cov}

	report := covreport.New(prog, 0)
	// Accumulate the whole corpus into one map without resets: distinct
	// nonzero slots == distinct transitions observed.
	for _, input := range corpus {
		metric.Begin()
		ip.Run(input, tracer, 0)
		report.Add(input)
	}
	if metric.Misses() != 0 {
		t.Fatalf("collision-free assignment missed %d runtime transitions", metric.Misses())
	}
	// The metric additionally keys the sentinel->entry transition, which
	// covreport's pairwise replay by construction does not record.
	if got, want := cov.CountNonZero(), report.Edges()+1; got != want {
		t.Fatalf("AFL-style map saw %d edges, covreport exact replay saw %d (+1 entry edge)", got, want)
	}
	if report.Edges() > prog.StaticEdges() {
		t.Fatalf("observed %d edges exceeds the static enumeration %d", report.Edges(), prog.StaticEdges())
	}
}
