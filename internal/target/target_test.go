package target_test

import (
	"reflect"
	"testing"

	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

// traceTracer records the Visit stream.
type traceTracer struct {
	ids []uint32
}

func (t *traceTracer) Visit(b uint32)   { t.ids = append(t.ids, b) }
func (t *traceTracer) EnterCall(uint32) {}
func (t *traceTracer) LeaveCall()       {}

// goldenSpec is the fixed program every pinning test below runs against.
var goldenSpec = target.GenSpec{
	Name: "golden", Seed: 12, NumFuncs: 2, BlocksPerFunc: 6,
	InputLen: 16, BranchFraction: 0.5,
	MagicCompares: 1, MagicWidth: 2, BonusBlocks: 2,
	Switches: 1, SwitchFanout: 3, Loops: 1, LoopMax: 4,
	CrashSites: 1, CrashDepth: 1,
}

func goldenInput() []byte {
	input := make([]byte, 16)
	for i := range input {
		input[i] = byte(i * 7)
	}
	return input
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := target.Generate(goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := target.Generate(goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec generated different programs")
	}
	spec := goldenSpec
	spec.Seed++
	c, err := target.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical programs")
	}
}

func TestGenerateUniqueNonzeroIDs(t *testing.T) {
	prog, err := target.Generate(goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for fi, f := range prog.Funcs {
		for bi, b := range f.Blocks {
			if b.ID == 0 {
				t.Fatalf("func %d block %d has zero ID", fi, bi)
			}
			if seen[b.ID] {
				t.Fatalf("duplicate block ID %#x", b.ID)
			}
			seen[b.ID] = true
		}
	}
}

func TestInterpDeterministicTrace(t *testing.T) {
	prog, err := target.Generate(goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	ip := target.NewInterp(prog)
	input := goldenInput()
	var first traceTracer
	res1 := ip.Run(input, &first, 0)
	for i := 0; i < 5; i++ {
		var again traceTracer
		res2 := ip.Run(input, &again, 0)
		if !reflect.DeepEqual(res1, res2) {
			t.Fatalf("run %d: result drifted: %+v vs %+v", i, res1, res2)
		}
		if !reflect.DeepEqual(first.ids, again.ids) {
			t.Fatalf("run %d: visit trace drifted", i)
		}
	}
}

// TestGoldenTrace pins the exact interpreter behavior for a fixed generated
// program and input, so future coverage-map work cannot silently change the
// semantics every backend is measured against. If an intentional generator
// or interpreter change lands, regenerate these constants and say so in the
// commit.
func TestGoldenTrace(t *testing.T) {
	prog, err := target.Generate(goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := prog.NumBlocks(), 15; got != want {
		t.Errorf("NumBlocks = %d, want %d", got, want)
	}
	if got, want := prog.StaticEdges(), 22; got != want {
		t.Errorf("StaticEdges = %d, want %d", got, want)
	}
	if got, want := len(prog.CrashSites()), 1; got != want {
		t.Errorf("CrashSites = %d, want %d", got, want)
	}

	coord := map[uint32]string{}
	for fi, f := range prog.Funcs {
		for bi, b := range f.Blocks {
			coord[b.ID] = "f" + itoa(fi) + ".b" + itoa(bi)
		}
	}
	var tr traceTracer
	res := target.NewInterp(prog).Run(goldenInput(), &tr, 0)
	if res.Status != target.StatusOK {
		t.Fatalf("status = %v, want ok", res.Status)
	}
	if res.Cycles != 14 || res.Blocks != 14 {
		t.Errorf("cycles/blocks = %d/%d, want 14/14", res.Cycles, res.Blocks)
	}

	wantCoords := []string{
		"f0.b0", "f1.b0", "f1.b1", "f1.b2", "f1.b3", "f1.b3", "f1.b3",
		"f1.b4", "f1.b6", "f0.b1", "f0.b2", "f0.b3", "f0.b4", "f0.b7",
	}
	var gotCoords []string
	for _, id := range tr.ids {
		gotCoords = append(gotCoords, coord[id])
	}
	if !reflect.DeepEqual(gotCoords, wantCoords) {
		t.Errorf("block trace = %v, want %v", gotCoords, wantCoords)
	}

	// The raw ID stream (hashed) additionally pins the generator's ID
	// assignment, which all coverage keys derive from.
	h := uint64(14695981039346656037)
	for _, id := range tr.ids {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(id >> s))
			h *= 1099511628211
		}
	}
	if want := uint64(0x9481b430616cbb18); h != want {
		t.Errorf("trace hash = %#x, want %#x", h, want)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestCycleBudgetHang hand-builds an infinite loop (a jump to itself) and
// checks the budget terminates it as a hang with the budget fully consumed.
func TestCycleBudgetHang(t *testing.T) {
	prog := &target.Program{
		Name:     "spin",
		InputLen: 4,
		Funcs: []target.Func{{Blocks: []target.Block{
			{ID: 7, Cost: 1, Node: target.Node{Kind: target.KindJump, A: 0}},
		}}},
	}
	var tr traceTracer
	res := target.NewInterp(prog).Run([]byte{1}, &tr, 100)
	if res.Status != target.StatusHang {
		t.Fatalf("status = %v, want hang", res.Status)
	}
	if res.Cycles != 100 {
		t.Errorf("cycles = %d, want the full budget 100", res.Cycles)
	}
	if len(tr.ids) == 0 {
		t.Error("partial coverage before the kill was not reported")
	}
}

// TestHangNodeConsumesBudget: a KindHang block behaves like an infinite loop
// under a timeout — whole budget gone, no further coverage.
func TestHangNodeConsumesBudget(t *testing.T) {
	prog := &target.Program{
		Name:     "hang",
		InputLen: 4,
		Funcs: []target.Func{{Blocks: []target.Block{
			{ID: 3, Cost: 1, Node: target.Node{Kind: target.KindJump, A: 1}},
			{ID: 4, Cost: 1, Node: target.Node{Kind: target.KindHang}},
		}}},
	}
	var tr traceTracer
	res := target.NewInterp(prog).Run(nil, &tr, 5000)
	if res.Status != target.StatusHang {
		t.Fatalf("status = %v, want hang", res.Status)
	}
	if res.Cycles != 5000 {
		t.Errorf("cycles = %d, want 5000", res.Cycles)
	}
	if want := []uint32{3, 4}; !reflect.DeepEqual(tr.ids, want) {
		t.Errorf("trace = %v, want %v", tr.ids, want)
	}
}

func TestCrashStatus(t *testing.T) {
	prog := &target.Program{
		Name:     "boom",
		InputLen: 4,
		Funcs: []target.Func{{Blocks: []target.Block{
			{ID: 11, Cost: 1, Node: target.Node{Kind: target.KindJump, A: 1}},
			{ID: 22, Cost: 1, Node: target.Node{Kind: target.KindCrash}},
		}}},
	}
	res := target.NewInterp(prog).Run(nil, target.NopTracer{}, 0)
	if res.Status != target.StatusCrash {
		t.Fatalf("status = %v, want crash", res.Status)
	}
	if res.CrashSite != 22 {
		t.Errorf("crash site = %d, want 22", res.CrashSite)
	}
	if res.Status.String() != "crash" {
		t.Errorf("status string = %q", res.Status.String())
	}
}

// TestCrashStackReportsCallSites: a crash inside a callee carries the active
// call-site IDs, the bucket key crash dedup uses.
func TestCrashStackReportsCallSites(t *testing.T) {
	prog := &target.Program{
		Name:     "deep",
		InputLen: 4,
		Funcs: []target.Func{
			{Blocks: []target.Block{
				{ID: 1, Cost: 1, Node: target.Node{Kind: target.KindCall, A: 1, B: 1}},
				{ID: 2, Cost: 1, Node: target.Node{Kind: target.KindReturn}},
			}},
			{Blocks: []target.Block{
				{ID: 3, Cost: 1, Node: target.Node{Kind: target.KindCrash}},
			}},
		},
	}
	res := target.NewInterp(prog).Run(nil, target.NopTracer{}, 0)
	if res.Status != target.StatusCrash || res.CrashSite != 3 {
		t.Fatalf("result = %+v, want crash at 3", res)
	}
	if want := []uint32{1}; !reflect.DeepEqual(res.Stack, want) {
		t.Errorf("stack = %v, want %v", res.Stack, want)
	}
}

// TestCompareHookFiresOnlyOnMismatch pins the cmplog observation channel:
// failed comparisons report their wanted operand, successful ones stay
// invisible.
func TestCompareHookFiresOnlyOnMismatch(t *testing.T) {
	prog := &target.Program{
		Name:     "cmp",
		InputLen: 8,
		Funcs: []target.Func{{Blocks: []target.Block{
			{ID: 1, Cost: 1, Node: target.Node{Kind: target.KindCompareByte, Pos: 0, Val: 0x41, A: 1, B: 1}},
			{ID: 2, Cost: 1, Node: target.Node{Kind: target.KindCompareWord, Pos: 1, Val: 0xdeadbeef, Width: 4, A: 2, B: 2}},
			{ID: 3, Cost: 1, Node: target.Node{Kind: target.KindReturn}},
		}}},
	}
	ip := target.NewInterp(prog)
	var seen []target.Compare
	ip.SetCompareHook(func(c target.Compare) { seen = append(seen, c) })

	// Everything mismatches: both compares report.
	ip.Run(make([]byte, 8), target.NopTracer{}, 0)
	want := []target.Compare{
		{Pos: 0, Val: 0x41, Width: 1},
		{Pos: 1, Val: 0xdeadbeef, Width: 4},
	}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("hook observations = %+v, want %+v", seen, want)
	}

	// Everything matches: the hook stays silent.
	seen = nil
	input := []byte{0x41, 0xef, 0xbe, 0xad, 0xde, 0, 0, 0}
	res := ip.Run(input, target.NopTracer{}, 0)
	if res.Status != target.StatusOK {
		t.Fatalf("status = %v", res.Status)
	}
	if len(seen) != 0 {
		t.Fatalf("hook fired on successful compares: %+v", seen)
	}
}

// TestShortInputZeroPadded: reads past the input end observe zero bytes.
func TestShortInputZeroPadded(t *testing.T) {
	prog := &target.Program{
		Name:     "pad",
		InputLen: 8,
		Funcs: []target.Func{{Blocks: []target.Block{
			{ID: 1, Cost: 1, Node: target.Node{Kind: target.KindCompareWord, Pos: 6, Val: 0, Width: 4, A: 1, B: 2}},
			{ID: 2, Cost: 1, Node: target.Node{Kind: target.KindCrash}},
			{ID: 3, Cost: 1, Node: target.Node{Kind: target.KindReturn}},
		}}},
	}
	// One byte of input: positions 6..9 all read zero, so the compare
	// against zero matches and the run avoids the mismatch-side crash.
	res := target.NewInterp(prog).Run([]byte{0xff}, target.NopTracer{}, 0)
	if res.Status != target.StatusCrash {
		t.Fatalf("status = %v, want crash via the zero-match edge", res.Status)
	}
	if res.CrashSite != 2 {
		t.Errorf("crash site = %d, want 2", res.CrashSite)
	}
}

// TestZeroInputBenign: every profile's program must run an all-zero input to
// completion (the generator guards crash/hang regions with nonzero bytes) —
// the property SampleSeeds' fallback and the fuzzer's initial corpus rely on.
func TestZeroInputBenign(t *testing.T) {
	all := append(target.Profiles(), target.CompositionProfiles()...)
	for _, p := range all {
		prog, err := target.Generate(p.Spec(0.01))
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		res := target.NewInterp(prog).Run(make([]byte, prog.InputLen), target.NopTracer{}, 0)
		if res.Status != target.StatusOK {
			t.Errorf("%s: zero input status = %v, want ok", p.Name, res.Status)
		}
	}
}

func TestSampleSeedsBenignAndDeterministic(t *testing.T) {
	p, ok := target.ProfileByName("zlib")
	if !ok {
		t.Fatal("zlib profile missing")
	}
	prog, err := target.Generate(p.Spec(0.05))
	if err != nil {
		t.Fatal(err)
	}
	ip := target.NewInterp(prog)
	seeds := prog.SampleSeeds(rng.New(99), 8)
	if len(seeds) != 8 {
		t.Fatalf("got %d seeds, want 8", len(seeds))
	}
	for i, s := range seeds {
		if res := ip.Run(s, target.NopTracer{}, 0); res.Status != target.StatusOK {
			t.Errorf("seed %d: status = %v, want ok", i, res.Status)
		}
	}
	again := prog.SampleSeeds(rng.New(99), 8)
	if !reflect.DeepEqual(seeds, again) {
		t.Error("SampleSeeds is not deterministic in its rng source")
	}
}

func TestProfileRegistry(t *testing.T) {
	if n := len(target.Profiles()); n != 19 {
		t.Errorf("Table II profiles = %d, want 19", n)
	}
	if n := len(target.CompositionProfiles()); n != 13 {
		t.Errorf("composition profiles = %d, want 13", n)
	}
	if _, ok := target.ProfileByName("zlib"); !ok {
		t.Error("ProfileByName(zlib) missing")
	}
	if _, ok := target.ProfileByName("no-such-benchmark"); ok {
		t.Error("ProfileByName invented a benchmark")
	}
	// Table III paper record must exist for every composition profile and
	// average to the paper's bottom line (264 -> 352 crashes).
	var sumSmall, sumBig int
	for _, p := range target.CompositionProfiles() {
		pair, ok := target.TableIIICrashes[p.Name]
		if !ok {
			t.Errorf("TableIIICrashes missing %q", p.Name)
			continue
		}
		sumSmall += pair[0]
		sumBig += pair[1]
	}
	n := len(target.CompositionProfiles())
	if sumSmall/n != 264 || sumSmall%n != 0 {
		t.Errorf("small-map crash average = %d.%d, want exactly 264", sumSmall/n, sumSmall%n)
	}
	if sumBig/n != 352 || sumBig%n != 0 {
		t.Errorf("big-map crash average = %d.%d, want exactly 352", sumBig/n, sumBig%n)
	}
}

func TestCrashWitnessReachesPlantedCrash(t *testing.T) {
	p, ok := target.ProfileByName("gvn")
	if !ok {
		t.Fatal("gvn profile missing")
	}
	prog, err := target.Generate(p.Spec(0.02))
	if err != nil {
		t.Fatal(err)
	}
	ip := target.NewInterp(prog)
	src := rng.New(5)
	found := 0
	for attempt := 0; attempt < 2000 && found == 0; attempt++ {
		w, ok := prog.SynthesizeCrashWitness(src)
		if !ok {
			continue
		}
		if ip.Run(w, target.NopTracer{}, 0).Status == target.StatusCrash {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no verified crash witness in 2000 attempts")
	}
}
