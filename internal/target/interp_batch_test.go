package target

import (
	"testing"

	"github.com/bigmap/bigmap/internal/rng"
)

// The batched tracing path must be observationally identical to the scalar
// one: same blocks in the same order, with EnterCall/LeaveCall events at the
// same positions, and the same Result. These tests replay generated programs
// under both tracers and compare full event streams.

// traceEvent is one tracer callback, tagged so ordering across the three
// callback kinds is comparable.
type traceEvent struct {
	kind byte // 'v' visit, 'e' enter, 'l' leave
	id   uint32
}

// scalarRecorder records through the plain Tracer interface.
type scalarRecorder struct {
	events []traceEvent
}

func (r *scalarRecorder) Visit(b uint32)     { r.events = append(r.events, traceEvent{'v', b}) }
func (r *scalarRecorder) EnterCall(s uint32) { r.events = append(r.events, traceEvent{'e', s}) }
func (r *scalarRecorder) LeaveCall()         { r.events = append(r.events, traceEvent{'l', 0}) }

// batchRecorder records through BatchTracer; its Visit must never fire.
type batchRecorder struct {
	events  []traceEvent
	batches int
	visits  int
	t       *testing.T
}

func (r *batchRecorder) Visit(uint32) {
	r.t.Error("interpreter used scalar Visit on a BatchTracer")
}

func (r *batchRecorder) VisitBatch(blocks []uint32) {
	r.batches++
	r.visits += len(blocks)
	for _, b := range blocks {
		r.events = append(r.events, traceEvent{'v', b})
	}
}

func (r *batchRecorder) EnterCall(s uint32) { r.events = append(r.events, traceEvent{'e', s}) }
func (r *batchRecorder) LeaveCall()         { r.events = append(r.events, traceEvent{'l', 0}) }

func sameEvents(a, b []traceEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBatchTracerMatchesScalarTracer(t *testing.T) {
	src := rng.New(0xba7c41)
	for _, profile := range Profiles() {
		prog, err := Generate(profile.Spec(0.02))
		if err != nil {
			t.Fatalf("%s: %v", profile.Name, err)
		}
		interpA := NewInterp(prog)
		interpB := NewInterp(prog)
		for trial := 0; trial < 30; trial++ {
			input := make([]byte, src.Intn(64))
			for i := range input {
				input[i] = byte(src.Uint32())
			}
			var sr scalarRecorder
			br := batchRecorder{t: t}
			resA := interpA.Run(input, &sr, 0)
			resB := interpB.Run(input, &br, 0)
			if resA.Status != resB.Status || resA.Cycles != resB.Cycles || resA.Blocks != resB.Blocks {
				t.Fatalf("%s trial %d: results diverged: %+v vs %+v", profile.Name, trial, resA, resB)
			}
			if !sameEvents(sr.events, br.events) {
				t.Fatalf("%s trial %d: event streams diverged (%d vs %d events)",
					profile.Name, trial, len(sr.events), len(br.events))
			}
			if br.visits != resB.Blocks {
				t.Fatalf("%s trial %d: batch delivered %d visits, result says %d blocks",
					profile.Name, trial, br.visits, resB.Blocks)
			}
		}
	}
}

// TestBatchTracerFlushesAcrossRingBoundary forces more visits than the ring
// holds (three chained 255-iteration self-loops, ~769 visits against a
// 512-entry ring), so the mid-run capacity flush is exercised.
func TestBatchTracerFlushesAcrossRingBoundary(t *testing.T) {
	prog := &Program{Funcs: []Func{{Blocks: []Block{
		{ID: 1, Node: Node{Kind: KindSelfLoop, Pos: 0, Val: 256, A: 1}},
		{ID: 2, Node: Node{Kind: KindSelfLoop, Pos: 0, Val: 256, A: 2}},
		{ID: 3, Node: Node{Kind: KindSelfLoop, Pos: 0, Val: 256, A: 3}},
		{ID: 4, Node: Node{Kind: KindReturn}},
	}}}}
	var sr scalarRecorder
	br := batchRecorder{t: t}
	in := []byte{255}
	resA := NewInterp(prog).Run(in, &sr, 0)
	resB := NewInterp(prog).Run(in, &br, 0)
	if resA.Blocks != resB.Blocks || !sameEvents(sr.events, br.events) {
		t.Fatalf("self-loop streams diverged: %d vs %d events", len(sr.events), len(br.events))
	}
	if resB.Blocks <= traceRingLen {
		t.Fatalf("test program too short to cross the ring: %d blocks", resB.Blocks)
	}
	if br.batches < 2 {
		t.Fatalf("expected >= 2 batches for %d visits, got %d", br.visits, br.batches)
	}
}

// TestBatchTracerZeroAllocSteadyState: after the first run warms the ring
// and stack, batched runs must not allocate.
func TestBatchTracerZeroAllocSteadyState(t *testing.T) {
	profile := Profiles()[0]
	prog, err := Generate(profile.Spec(0.02))
	if err != nil {
		t.Fatal(err)
	}
	interp := NewInterp(prog)
	sink := 0
	tr := countingBatchTracer{&sink}
	input := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	interp.Run(input, tr, 0) // warm scratch buffers
	allocs := testing.AllocsPerRun(20, func() {
		interp.Run(input, tr, 0)
	})
	if allocs != 0 {
		t.Errorf("batched Run allocates %.1f per exec, want 0", allocs)
	}
}

// countingBatchTracer is the cheapest possible BatchTracer: it only counts,
// so the alloc test measures the interpreter, not the consumer.
type countingBatchTracer struct{ n *int }

func (c countingBatchTracer) Visit(uint32)           {}
func (c countingBatchTracer) VisitBatch(bs []uint32) { *c.n += len(bs) }
func (c countingBatchTracer) EnterCall(uint32)       {}
func (c countingBatchTracer) LeaveCall()             {}
