// Package target implements the synthetic fuzzing target the whole
// reproduction executes against: a deterministic interpreter over small
// control-flow-graph programs, plus a seeded generator that shapes those
// programs after the paper's benchmarks (Table II) and LLVM-pass harnesses
// (Table III).
//
// The substitution rule (DESIGN.md) is that everything the paper measures
// about coverage maps depends only on the *stream of basic-block events* a
// target emits, not on what the target computes. A program here is a list of
// functions, each a list of blocks; every block carries a globally unique
// nonzero 32-bit ID (standing in for an instrumented basic block address)
// and a typed node describing its terminator. The interpreter walks the CFG
// on an input and reports each executed block to a pluggable Tracer, so an
// AFL-style hashed map, a BigMap, a CollAFL static assignment and the exact
// edge replay of covreport all observe the identical run.
//
// Control flow is deliberately restricted so generated programs terminate by
// construction: intra-function targets are strictly forward block indexes,
// calls go to strictly higher function indexes (a DAG with one call site per
// callee), and self-loops iterate a bounded, input-derived count. The cycle
// budget exists for hand-built or adversarial programs, mirroring AFL's exec
// timeout.
package target

import "sort"

// NodeKind enumerates block terminator types.
type NodeKind uint8

const (
	// KindJump transfers to block index A unconditionally.
	KindJump NodeKind = iota
	// KindCompareByte compares input[Pos] against byte(Val): match goes to
	// A, mismatch to B (and reports the failed compare to the hook).
	KindCompareByte
	// KindCompareWord compares Width little-endian input bytes at Pos
	// against Val: match goes to A, mismatch to B.
	KindCompareWord
	// KindSwitch tests input[Pos] against Cases in order; the first match
	// jumps to its Target, no match falls through to the default B.
	KindSwitch
	// KindSelfLoop re-executes its own block input[Pos] % max(Val,1) times
	// (the tight back edge), then exits to A.
	KindSelfLoop
	// KindCall invokes function A and continues at block index B of the
	// caller once the callee returns.
	KindCall
	// KindCrash terminates the run with StatusCrash at this block.
	KindCrash
	// KindHang consumes the entire remaining cycle budget (an infinite
	// loop under a timeout) and terminates with StatusHang.
	KindHang
	// KindReturn returns to the caller, or ends the run when the call
	// stack is empty.
	KindReturn
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case KindJump:
		return "jump"
	case KindCompareByte:
		return "cmp-byte"
	case KindCompareWord:
		return "cmp-word"
	case KindSwitch:
		return "switch"
	case KindSelfLoop:
		return "self-loop"
	case KindCall:
		return "call"
	case KindCrash:
		return "crash"
	case KindHang:
		return "hang"
	case KindReturn:
		return "return"
	}
	return "unknown"
}

// SwitchCase is one arm of a KindSwitch node.
type SwitchCase struct {
	// Value is the input byte that selects this arm.
	Value byte
	// Target is the block index (same function) the arm jumps to.
	Target int
}

// Node is a block terminator. Field meaning depends on Kind:
//
//	Jump:        A = target block index
//	CompareByte: Pos, Val (one byte), A = match target, B = mismatch target
//	CompareWord: Pos, Val, Width (little-endian bytes), A = match, B = mismatch
//	Switch:      Pos, Cases, B = default target
//	SelfLoop:    Pos, Val = iteration bound, A = exit target
//	Call:        A = callee function index, B = continuation block index
//	Crash/Hang/Return: no fields
type Node struct {
	Kind  NodeKind
	Pos   int
	Val   uint64
	Width int
	A     int
	B     int
	Cases []SwitchCase
}

// Block is one basic block: a unique nonzero coverage ID, a virtual cycle
// cost charged per execution, and the terminator node.
type Block struct {
	ID   uint32
	Cost uint64
	Node Node
}

// Func is an ordered list of blocks; index 0 is the function entry.
type Func struct {
	Blocks []Block
}

// Program is a complete synthetic target. Funcs[0].Blocks[0] is the program
// entry; InputLen is the natural input size (reads past the end of an input
// observe zero bytes, so shorter inputs are implicitly zero-padded).
type Program struct {
	Name     string
	Funcs    []Func
	InputLen int
}

// NumBlocks returns the total basic-block count.
func (p *Program) NumBlocks() int {
	n := 0
	for fi := range p.Funcs {
		n += len(p.Funcs[fi].Blocks)
	}
	return n
}

// StaticEdges counts the statically enumerable control-flow transitions:
// the program entry, every terminator's outgoing edges (two per compare, one
// per switch arm plus the default, the self-loop back edge plus its exit),
// call edges into callee entries, and return edges from every callee Return
// block to the call's continuation. This is the quantity Table II reports as
// "static edges" and the basis CollAFL sizes its map from.
func (p *Program) StaticEdges() int {
	if len(p.Funcs) == 0 {
		return 0
	}
	// Return-terminator count per function, for call-return edge fan-in.
	returns := make([]int, len(p.Funcs))
	for fi := range p.Funcs {
		for bi := range p.Funcs[fi].Blocks {
			if p.Funcs[fi].Blocks[bi].Node.Kind == KindReturn {
				returns[fi]++
			}
		}
	}
	edges := 0
	if len(p.Funcs[0].Blocks) > 0 {
		edges++ // entry edge from the sentinel
	}
	for fi := range p.Funcs {
		for bi := range p.Funcs[fi].Blocks {
			nd := &p.Funcs[fi].Blocks[bi].Node
			switch nd.Kind {
			case KindJump:
				edges++
			case KindCompareByte, KindCompareWord:
				edges += 2
			case KindSwitch:
				edges += 1 + len(nd.Cases)
			case KindSelfLoop:
				edges += 2
			case KindCall:
				if nd.A >= 0 && nd.A < len(p.Funcs) {
					edges++ // call edge into the callee entry
					edges += returns[nd.A]
				}
			case KindCrash, KindHang, KindReturn:
				// No outgoing edges (return edges are charged to calls).
			}
		}
	}
	return edges
}

// CrashSites returns the block IDs of every KindCrash block, ascending.
func (p *Program) CrashSites() []uint32 {
	var sites []uint32
	for fi := range p.Funcs {
		for bi := range p.Funcs[fi].Blocks {
			if p.Funcs[fi].Blocks[bi].Node.Kind == KindCrash {
				sites = append(sites, p.Funcs[fi].Blocks[bi].ID)
			}
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	return sites
}

// Status is the outcome of one execution.
type Status uint8

const (
	// StatusOK: the program ran to completion.
	StatusOK Status = iota
	// StatusCrash: a KindCrash block was reached.
	StatusCrash
	// StatusHang: the cycle budget was exhausted (or a KindHang block
	// consumed it).
	StatusHang
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusCrash:
		return "crash"
	case StatusHang:
		return "hang"
	}
	return "unknown"
}

// Result describes one execution.
type Result struct {
	// Status is the run outcome.
	Status Status
	// Cycles is the virtual cycle cost consumed (the sum of executed
	// block costs; a hang consumes the whole budget).
	Cycles uint64
	// Blocks is the number of block executions (tracer Visit events).
	Blocks int
	// CrashSite is the ID of the crashing block when Status is
	// StatusCrash, zero otherwise.
	CrashSite uint32
	// Stack holds the call-site block IDs active at the end of the run,
	// outermost first — the synthetic call stack crash dedup buckets on.
	Stack []uint32
}

// Compare describes one failed comparison, reported to the compare hook:
// the input position, the operand the comparison wanted, and its byte width
// (1 for byte compares and switch arms). This is the cmplog/RedQueen
// observation channel.
type Compare struct {
	Pos   int
	Val   uint64
	Width int
}

// Runner is anything that can execute inputs against a traced target: the
// interpreter itself, or a wrapper that perturbs its behaviour (see Faulty).
// The executor drives a Runner, so the whole fuzzing stack is agnostic to
// whether the target is the clean interpreter or a fault-injected one.
type Runner interface {
	// Run executes input under the cycle budget, reporting block events to
	// tracer. See Interp.Run for the full contract.
	Run(input []byte, tracer Tracer, budget uint64) Result
	// Program returns the underlying program.
	Program() *Program
}

// Tracer observes an execution. Visit fires once per executed block with the
// block's ID — the exact event stream coverage instrumentation would emit.
// EnterCall/LeaveCall bracket function calls with the call-site block ID, for
// context-sensitive metrics; they carry no edge information of their own
// (call and return transitions appear in the Visit stream).
type Tracer interface {
	Visit(block uint32)
	EnterCall(site uint32)
	LeaveCall()
}

// BatchTracer is an optional Tracer extension. When the tracer passed to
// Interp.Run implements it, the interpreter buffers visited block IDs in a
// reusable trace ring and delivers them through VisitBatch in chunks instead
// of paying one virtual Visit call per executed block — the devirtualization
// half of the batched coverage pipeline (the other half is the coverage
// map's AddBatch).
//
// Ordering contract: the ring is flushed before every EnterCall and
// LeaveCall event and before Run returns, so a BatchTracer observes exactly
// the event sequence a plain Tracer would, with Visit events grouped into
// batches. The slice passed to VisitBatch is only valid for the duration of
// the call; implementations must not retain it.
type BatchTracer interface {
	Tracer
	VisitBatch(blocks []uint32)
}

// NopTracer discards all events.
type NopTracer struct{}

// Visit discards the event.
func (NopTracer) Visit(uint32) {}

// EnterCall discards the event.
func (NopTracer) EnterCall(uint32) {}

// LeaveCall discards the event.
func (NopTracer) LeaveCall() {}
