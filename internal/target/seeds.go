package target

import "github.com/bigmap/bigmap/internal/rng"

// walkPolicy tunes the randomized structural walk used to synthesize inputs.
type walkPolicy struct {
	// matchByte is the probability of satisfying a one-byte compare by
	// writing its operand into the input.
	matchByte float64
	// matchWord is the probability of solving a multi-byte compare (the
	// magic roadblocks) the same way.
	matchWord float64
	// takeCase is the probability of selecting some switch arm instead of
	// the default edge.
	takeCase float64
}

// walk performs one randomized traversal of the program, editing input in
// place so the taken path actually executes: at each data-dependent node it
// flips a biased coin and writes input bytes that realize the chosen edge.
// It reports whether the walk terminated in a KindCrash block. The walk is
// purely structural — it works on any well-formed program, including
// laf-intel-transformed ones — and is step-capped so adversarial CFGs cannot
// spin it forever.
func (p *Program) walk(src *rng.Source, input []byte, pol walkPolicy) bool {
	if len(p.Funcs) == 0 || len(p.Funcs[0].Blocks) == 0 {
		return false
	}
	type ret struct{ fn, cont int }
	var stack []ret
	fn, bi := 0, 0
	maxSteps := 4*p.NumBlocks() + 64

	setByte := func(pos int, v byte) {
		if pos >= 0 && pos < len(input) {
			input[pos] = v
		}
	}
	avoidByte := func(pos int, v byte) {
		if at(input, pos) == v {
			setByte(pos, v+1+byte(src.Intn(254)))
		}
	}

	for step := 0; step < maxSteps; step++ {
		if fn < 0 || fn >= len(p.Funcs) {
			return false
		}
		blocks := p.Funcs[fn].Blocks
		if bi < 0 || bi >= len(blocks) {
			return false
		}
		nd := &blocks[bi].Node
		switch nd.Kind {
		case KindJump:
			bi = nd.A

		case KindCompareByte:
			if src.Float64() < pol.matchByte {
				setByte(nd.Pos, byte(nd.Val))
				bi = nd.A
			} else {
				avoidByte(nd.Pos, byte(nd.Val))
				bi = nd.B
			}

		case KindCompareWord:
			w := nd.Width
			if w < 1 {
				w = 1
			} else if w > 8 {
				w = 8
			}
			if src.Float64() < pol.matchWord {
				for i := 0; i < w; i++ {
					setByte(nd.Pos+i, byte(nd.Val>>(8*i)))
				}
				bi = nd.A
			} else {
				// Guarantee the mismatch edge by perturbing one byte.
				avoidByte(nd.Pos, byte(nd.Val))
				bi = nd.B
			}

		case KindSwitch:
			if n := len(nd.Cases); n > 0 && src.Float64() < pol.takeCase {
				c := nd.Cases[src.Intn(n)]
				setByte(nd.Pos, c.Value)
				bi = c.Target
			} else {
				for i := 0; i < 8; i++ {
					hit := false
					for _, c := range nd.Cases {
						if at(input, nd.Pos) == c.Value {
							hit = true
							break
						}
					}
					if !hit {
						break
					}
					setByte(nd.Pos, byte(src.Intn(256)))
				}
				bi = nd.B
			}

		case KindSelfLoop:
			bi = nd.A

		case KindCall:
			callee := nd.A
			if callee < 0 || callee >= len(p.Funcs) || len(p.Funcs[callee].Blocks) == 0 {
				bi = nd.B
				break
			}
			if len(stack) >= maxCallDepth {
				return false
			}
			stack = append(stack, ret{fn: fn, cont: nd.B})
			fn, bi = callee, 0

		case KindCrash:
			return true

		case KindHang:
			return false

		case KindReturn:
			if len(stack) == 0 {
				return false
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			fn, bi = top.fn, top.cont

		default:
			return false
		}
	}
	return false
}

// SampleSeeds draws n benign seed inputs from src: each is a randomized
// structural walk (mildly branch-taking, never solving multi-byte magic
// compares — those stay as roadblocks for the fuzzer) verified against the
// interpreter, retried until it neither crashes nor hangs. The all-zero
// input — benign on every generated program — is the fallback of last resort,
// so n inputs always come back.
func (p *Program) SampleSeeds(src *rng.Source, n int) [][]byte {
	if n <= 0 {
		return nil
	}
	ln := p.InputLen
	if ln < 1 {
		ln = 1
	}
	ip := NewInterp(p)
	pol := walkPolicy{matchByte: 0.35, matchWord: 0, takeCase: 0.4}
	seeds := make([][]byte, 0, n)
	for len(seeds) < n {
		var input []byte
		found := false
		for attempt := 0; attempt < 24 && !found; attempt++ {
			input = make([]byte, ln)
			src.Bytes(input)
			p.walk(src, input, pol)
			if ip.Run(input, NopTracer{}, 0).Status == StatusOK {
				found = true
			}
		}
		if !found {
			input = make([]byte, ln)
		}
		seeds = append(seeds, input)
	}
	return seeds
}

// SynthesizeCrashWitness attempts to construct an input reaching some planted
// crash site via one aggressive randomized walk. It returns ok=false when the
// walk ends anywhere else; callers draw repeatedly from src and must verify
// the witness against the interpreter (the walk proves reachability of a
// KindCrash block, and the interpreter is the ground truth for the rest of
// the run's semantics).
func (p *Program) SynthesizeCrashWitness(src *rng.Source) ([]byte, bool) {
	ln := p.InputLen
	if ln < 1 {
		ln = 1
	}
	input := make([]byte, ln)
	src.Bytes(input)
	pol := walkPolicy{matchByte: 0.5, matchWord: 0.25, takeCase: 0.35}
	if !p.walk(src, input, pol) {
		return nil, false
	}
	return input, true
}
