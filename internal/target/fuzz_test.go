package target_test

import (
	"bytes"
	"testing"

	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

// FuzzInterp drives the interpreter with arbitrary inputs against a fixed
// generated program (the same CFG shape the benchmarks use: calls, switches,
// self-loops, magic compares, crash and hang sites) and asserts the safety
// contract every caller relies on: no panics, termination within the cycle
// budget, and bit-for-bit determinism.
func FuzzInterp(f *testing.F) {
	prog, err := target.Generate(target.GenSpec{
		Name: "fuzz", Seed: 1234, NumFuncs: 4, BlocksPerFunc: 10,
		InputLen: 32, BranchFraction: 0.6,
		MagicCompares: 2, MagicWidth: 4, BonusBlocks: 4,
		GatedCallFraction: 0.5,
		Switches:          2, SwitchFanout: 4,
		Loops: 2, LoopMax: 8,
		CrashSites: 2, CrashDepth: 1,
		HangSites: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	ip := target.NewInterp(prog)

	f.Add([]byte{})
	f.Add(make([]byte, 32))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	for _, s := range prog.SampleSeeds(rng.New(7), 4) {
		f.Add(s)
	}

	const budget = 1 << 14
	f.Fuzz(func(t *testing.T, input []byte) {
		var first traceTracer
		res := ip.Run(input, &first, budget)
		if res.Cycles > budget {
			t.Fatalf("run consumed %d cycles, budget %d", res.Cycles, budget)
		}
		switch res.Status {
		case target.StatusOK, target.StatusCrash, target.StatusHang:
		default:
			t.Fatalf("impossible status %v", res.Status)
		}
		if res.Status == target.StatusCrash && res.CrashSite == 0 {
			t.Fatal("crash without a crash site")
		}
		if res.Blocks != len(first.ids) {
			t.Fatalf("Result.Blocks = %d but tracer saw %d visits", res.Blocks, len(first.ids))
		}
		var again traceTracer
		res2 := ip.Run(input, &again, budget)
		if res.Status != res2.Status || res.Cycles != res2.Cycles ||
			res.Blocks != res2.Blocks || res.CrashSite != res2.CrashSite {
			t.Fatalf("nondeterministic result: %+v vs %+v", res, res2)
		}
		if !bytes.Equal(idsToBytes(first.ids), idsToBytes(again.ids)) {
			t.Fatal("nondeterministic visit trace")
		}
	})
}

func idsToBytes(ids []uint32) []byte {
	out := make([]byte, 0, 4*len(ids))
	for _, id := range ids {
		out = append(out, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return out
}
