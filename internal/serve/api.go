// Package serve is the fuzzing-as-a-service control plane: a long-running
// daemon that turns one-shot bigmap-fuzz runs into addressable, multi-tenant
// campaign objects behind an HTTP/JSON API.
//
// Clients POST a target profile plus fuzz configuration and get back a
// campaign ID; they can then list, get, pause, resume and cancel campaigns
// and poll stats, new-coverage events and crash buckets. Many concurrent
// campaigns share a bounded worker pool with fair-share scheduling across
// tenants; per-tenant and global quotas shed excess load with 429 and a
// Retry-After hint instead of growing without bound. Tenancy is asserted by
// the client, not authenticated — see SubmitRequest.Tenant for the trust
// model and the proxy deployments that make quotas enforceable.
//
// Robustness is the organizing principle. Every campaign is checkpointed on
// a configurable round cadence through the hardened atomic writer in
// internal/checkpoint, so a worker crash — or a kill -9 of the whole daemon
// — recovers by resuming from the last checkpoint with bitwise-identical
// campaign state (the parallel package's split-invariant RunRounds makes
// the re-run of lost rounds reproduce exactly what the crash destroyed).
// Worker crashes are retried with exponential backoff plus deterministic
// jitter behind a per-campaign max-restarts circuit breaker; request
// deadlines propagate via context; and SIGTERM drains gracefully — every
// campaign is paused at its next round boundary, a last-gasp checkpoint is
// taken, and the state store marks it paused so a restarted daemon offers
// to resume it.
package serve

import (
	"errors"
	"fmt"
	"time"
)

// State is a campaign's position in its lifecycle.
//
// The machine is:
//
//	queued ──► running ──► finished
//	  ▲  ▲        │ ▲          (terminal)
//	  │  │        │ │
//	  │  └────────┘ │   running ──► failed     (terminal; crash budget spent)
//	  │  (yield or  │   any     ──► cancelled  (terminal; operator request)
//	  │   crash+    │
//	  │   backoff)  ▼
//	  └───────── paused
//	    (resume)
//
// queued means runnable and waiting for a worker (including the backoff
// window after a worker crash); running means a worker is executing rounds
// right now; paused is operator- or drain-initiated and survives restarts.
type State string

// Campaign lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StatePaused    State = "paused"
	StateFinished  State = "finished"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether no further execution is possible from s.
func (s State) Terminal() bool {
	return s == StateFinished || s == StateFailed || s == StateCancelled
}

// valid reports whether s is one of the defined states (used when loading
// metadata written by other daemon versions).
func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StatePaused, StateFinished, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Spec is the client-supplied campaign definition: which synthetic target to
// fuzz and how. It is stored verbatim in the state store — a campaign's
// checkpoint holds state, the spec holds configuration, and recovery
// rebuilds the exact original run from the two.
type Spec struct {
	// Bench names the target profile (Table II / Table III benchmark).
	Bench string `json:"bench"`
	// Scale is the benchmark scale relative to the paper's static edge
	// count (default 0.05 — laptop-sized).
	Scale float64 `json:"scale,omitempty"`
	// Scheme picks the coverage map: "afl" or "bigmap" (default bigmap).
	Scheme string `json:"scheme,omitempty"`
	// MapSize is the coverage map size in slots (default 65536).
	MapSize int `json:"map_size,omitempty"`
	// Seed seeds all campaign randomness (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// SeedCorpus is the synthesized seed corpus size (default 16).
	SeedCorpus int `json:"seed_corpus,omitempty"`
	// Instances is the parallel instance count (default 1).
	Instances int `json:"instances,omitempty"`
	// SyncEvery is the per-instance exec budget of one sync round
	// (default 2000). Together with Rounds it fixes the campaign length.
	SyncEvery uint64 `json:"sync_every,omitempty"`
	// Rounds is the campaign budget in sync rounds (required, >= 1). The
	// round — not the exec — is the service's unit of work: rounds are
	// split-invariant, so pausing, crashing and resuming never change what
	// the campaign computes.
	Rounds int `json:"rounds"`
	// MasterDeterministic runs AFL's deterministic stages on instance 0.
	MasterDeterministic bool `json:"master_deterministic,omitempty"`
	// Selective enables the coverage-preserving untraced fast path.
	Selective bool `json:"selective,omitempty"`
	// BatchSize batches the havoc stage when > 1.
	BatchSize int `json:"batch_size,omitempty"`
	// SlotCap bounds BigMap's dense-slot region (0 = unbounded).
	SlotCap int `json:"slot_cap,omitempty"`
}

// SubmitRequest is the body of POST /campaigns.
type SubmitRequest struct {
	// Tenant is the quota domain the campaign bills against. Letters,
	// digits, '-' and '_' only; defaults to "default".
	//
	// The tenant is client-asserted: the daemon performs no authentication,
	// so per-tenant quotas and fair-share scheduling are advisory against a
	// client willing to vary the string per submission — only the global
	// MaxActive cap actually bounds an untrusted client. Deployments that
	// need enforced isolation must put the API behind an authenticating
	// proxy that pins or injects the tenant from verified credentials.
	Tenant string `json:"tenant,omitempty"`
	// Spec defines the campaign.
	Spec Spec `json:"spec"`
}

// CampaignStats is the progress snapshot cached at each round-quantum
// boundary and served by GET /campaigns/{id}/stats. All values are as of the
// most recent boundary — the service never reaches into a running round.
type CampaignStats struct {
	// Execs sums executions across instances.
	Execs uint64 `json:"execs"`
	// Rounds counts completed sync rounds (out of Spec.Rounds).
	Rounds int `json:"rounds"`
	// Paths is the largest single-instance queue size.
	Paths int `json:"paths"`
	// Edges is the best single-instance edge coverage.
	Edges int `json:"edges"`
	// Crashes counts crashing executions; UniqueCrashes counts Crashwalk
	// buckets across all instances.
	Crashes       uint64 `json:"crashes"`
	UniqueCrashes int    `json:"unique_crashes"`
	// Hangs counts budget-exhausted executions.
	Hangs uint64 `json:"hangs"`
	// FailedInstances counts instances the in-campaign supervisor
	// abandoned (distinct from worker crashes, which the daemon retries).
	FailedInstances int `json:"failed_instances,omitempty"`
}

// CrashBucket is one deduplicated crash group, served by
// GET /campaigns/{id}/crashes.
type CrashBucket struct {
	// Key is the Crashwalk-style bucket key (site + stack shape).
	Key uint64 `json:"key"`
	// Site is the crashing block ID.
	Site uint32 `json:"site"`
	// StackDepth is the call depth at the crash.
	StackDepth int `json:"stack_depth"`
	// Count is how many crashing executions fell into this bucket.
	Count int `json:"count"`
	// Input is the first input that reached the bucket.
	Input []byte `json:"input"`
}

// EventRecord is one campaign event (new coverage, new crash bucket,
// revival, checkpoint), served by GET /campaigns/{id}/events.
type EventRecord struct {
	// AtNanos is monotonic nanoseconds since daemon start (the telemetry
	// clock), not wall time.
	AtNanos int64 `json:"at_ns"`
	// Name is the event kind: new_coverage, new_crash, worker_crashed,
	// checkpoint_saved, instance_revived, instance_failed, ...
	Name string `json:"name"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// Info is the full public view of one campaign.
type Info struct {
	// ID addresses the campaign in every endpoint.
	ID string `json:"id"`
	// Tenant is the quota domain.
	Tenant string `json:"tenant"`
	// State is the lifecycle position.
	State State `json:"state"`
	// Spec echoes the submitted definition (after defaulting).
	Spec Spec `json:"spec"`
	// Rounds counts completed sync rounds; CheckpointRounds is how many of
	// them the newest on-disk checkpoint covers (a crash rolls Rounds back
	// to CheckpointRounds).
	Rounds           int `json:"rounds"`
	CheckpointRounds int `json:"checkpoint_rounds"`
	// Restarts counts worker crashes charged against the campaign's
	// circuit breaker (Config.MaxRestarts).
	Restarts int `json:"restarts,omitempty"`
	// Error is the terminal error for failed campaigns.
	Error string `json:"error,omitempty"`
	// Stats is the latest cached progress snapshot, nil before the first
	// completed quantum.
	Stats *CampaignStats `json:"stats,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx API answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Sentinel errors mapped to HTTP statuses by the handler layer.
var (
	// ErrNotFound: no such campaign (404).
	ErrNotFound = errors.New("serve: no such campaign")
	// ErrConflict: the requested transition is not legal from the
	// campaign's current state (409).
	ErrConflict = errors.New("serve: conflicting campaign state")
	// ErrDraining: the daemon is shutting down and accepts no new work
	// (503).
	ErrDraining = errors.New("serve: daemon is draining")
)

// OverloadError rejects a submission that would exceed a quota; the handler
// layer turns it into 429 with a Retry-After header.
type OverloadError struct {
	// Scope is "tenant" or "global".
	Scope string
	// Limit is the quota that would be exceeded.
	Limit int
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: %s quota of %d active campaigns exceeded, retry after %v",
		e.Scope, e.Limit, e.RetryAfter)
}
