package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDrainParksEverything is the SIGTERM-equivalent drill: after Drain
// returns, every non-terminal campaign must be paused in memory AND on disk
// with a loadable checkpoint covering every round the public view claims —
// the state a restarted daemon resumes from with nothing lost.
func TestDrainParksEverything(t *testing.T) {
	cfg := testConfig(t.TempDir())
	d := openTest(t, cfg)

	// One campaign running (single worker), two more waiting in queues.
	ids := []string{
		submit(t, d, "acme", testSpec(1<<18)).ID,
		submit(t, d, "acme", testSpec(1<<18)).ID,
		submit(t, d, "umbrella", testSpec(1<<18)).ID,
	}
	// Wait until every campaign has run at least one round: with a single
	// worker that guarantees at least two of them sit queued *between
	// quanta* at drain time, carrying boundary state ahead of their newest
	// cadence checkpoint — the case where drain itself must take the
	// last-gasp checkpoint.
	for _, id := range ids {
		waitFor(t, d, id, "progress", func(i *Info) bool { return i.Rounds > 0 })
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	for _, id := range ids {
		info, err := d.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if info.State != StatePaused {
			t.Errorf("%s drained to %s, want paused", id, info.State)
		}
		m, err := d.store.loadMeta(id)
		if err != nil {
			t.Fatalf("loadMeta(%s): %v", id, err)
		}
		if m.State != StatePaused {
			t.Errorf("%s persisted as %s, want paused", id, m.State)
		}
		cs, rounds, err := d.store.loadCheckpoint(id)
		if err != nil {
			t.Fatalf("%s has no loadable checkpoint after drain: %v", id, err)
		}
		if cs == nil || len(cs.Instances) == 0 {
			t.Errorf("%s checkpoint is empty", id)
		}
		if rounds != info.Rounds {
			t.Errorf("%s checkpoint covers %d rounds but view claims %d", id, rounds, info.Rounds)
		}
	}

	// A draining daemon accepts no new work and says so.
	if _, err := d.Submit(context.Background(), SubmitRequest{Tenant: "acme", Spec: testSpec(2)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit while draining: %v, want ErrDraining", err)
	}
	if _, err := d.Resume(context.Background(), ids[0]); !errors.Is(err, ErrDraining) {
		t.Fatalf("Resume while draining: %v, want ErrDraining", err)
	}

	// Drain is idempotent.
	if err := d.Drain(ctx); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

// TestDrainConcurrentPause races operator pauses against a drain. Both
// paths may find the same between-quanta campaign (queued with a live
// runtime) and want to park it; exactly one of them may own the runtime
// and take the last-gasp checkpoint — the race detector polices the rest.
func TestDrainConcurrentPause(t *testing.T) {
	cfg := testConfig(t.TempDir())
	d := openTest(t, cfg)
	ids := []string{
		submit(t, d, "acme", testSpec(1<<18)).ID,
		submit(t, d, "acme", testSpec(1<<18)).ID,
		submit(t, d, "umbrella", testSpec(1<<18)).ID,
	}
	// As in TestDrainParksEverything: once every campaign has rounds, the
	// single worker guarantees some of them sit parked between quanta.
	for _, id := range ids {
		waitFor(t, d, id, "progress", func(i *Info) bool { return i.Rounds > 0 })
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if _, err := d.Pause(ctx, id); err != nil {
				t.Errorf("Pause(%s): %v", id, err)
			}
		}(id)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := d.Drain(ctx); err != nil {
			t.Errorf("Drain: %v", err)
		}
	}()
	wg.Wait()

	for _, id := range ids {
		info, err := d.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if info.State != StatePaused {
			t.Errorf("%s ended drain+pause in state %s, want paused", id, info.State)
		}
		if _, rounds, err := d.store.loadCheckpoint(id); err != nil {
			t.Errorf("%s has no loadable checkpoint: %v", id, err)
		} else if rounds != info.Rounds {
			t.Errorf("%s checkpoint covers %d rounds but view claims %d", id, rounds, info.Rounds)
		}
	}
}

// TestDrainThenRestartResumes closes the loop: drained campaigns stay paused
// across a restart (no auto-requeue — pausing was deliberate) and resume on
// request, picking up exactly where the checkpoint left them.
func TestDrainThenRestartResumes(t *testing.T) {
	cfg := testConfig(t.TempDir())
	d := openTest(t, cfg)
	id := submit(t, d, "acme", testSpec(1<<18)).ID
	waitFor(t, d, id, "progress", func(i *Info) bool { return i.Rounds > 0 })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	parked, err := d.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	d.Close()

	d2 := openTest(t, cfg)
	info, err := d2.Get(id)
	if err != nil {
		t.Fatalf("Get after restart: %v", err)
	}
	if info.State != StatePaused {
		t.Fatalf("drained campaign restarted as %s, want paused", info.State)
	}
	if info.Rounds != parked.Rounds {
		t.Fatalf("restart changed round count: %d -> %d", parked.Rounds, info.Rounds)
	}
	if _, err := d2.Resume(context.Background(), id); err != nil {
		t.Fatalf("Resume after restart: %v", err)
	}
	waitFor(t, d2, id, "progress after resume", func(i *Info) bool { return i.Rounds > parked.Rounds })
}
