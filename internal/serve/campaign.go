package serve

import (
	"github.com/bigmap/bigmap/internal/crash"
	"github.com/bigmap/bigmap/internal/parallel"
	"github.com/bigmap/bigmap/internal/target"
	"github.com/bigmap/bigmap/internal/telemetry"
)

// campaign is the daemon's managed view of one submitted campaign: the
// durable identity and lifecycle state, the control flags the API flips and
// the worker honours at round boundaries, and the (transient) materialized
// runtime.
//
// Locking: every field below the mu marker is guarded by the daemon's
// single mutex — campaign metadata is small and transitions are rare, so
// one lock keeps the state machine trivially race-free. The runtime fields
// at the bottom are worker-owned: exactly one worker executes a campaign at
// a time (enforced by the run queue — a campaign is requeued only after the
// owning worker has released it), so they are accessed without the lock.
type campaign struct {
	id     string
	tenant string
	spec   Spec

	// state is the lifecycle position. guarded by mu.
	state State
	// rounds counts completed sync rounds; chkRounds is the round stamp of
	// the newest on-disk checkpoint (rounds rolls back to chkRounds when a
	// worker crash discards uncheckpointed work). Both guarded by mu.
	rounds    int
	chkRounds int
	// restarts counts worker crashes charged against the circuit breaker.
	// guarded by mu.
	restarts int
	// errText is the terminal error of a failed campaign. guarded by mu.
	errText string
	// inQueue marks the campaign as present in a tenant run queue, so a
	// state flip cannot enqueue it twice. guarded by mu.
	inQueue bool
	// wantPause / wantCancel / wantKill are one-shot control requests the
	// owning worker consumes at its next round boundary. wantKill is the
	// chaos hook: it makes the worker simulate its own crash. All guarded
	// by mu.
	wantPause  bool
	wantCancel bool
	wantKill   bool
	// stats and crashes cache the last boundary snapshot for the read
	// endpoints, so polling never touches a running campaign. guarded by
	// mu.
	stats   *CampaignStats
	crashes []CrashBucket

	// reg is the per-campaign telemetry registry (events + metrics under
	// /campaigns/{id}/...). Atomic and nil-safe by the telemetry package's
	// contract, so deliberately not under the mutex.
	reg *telemetry.Registry

	// Worker-owned (see struct comment): the materialized runtime and the
	// generated target program. prog is a pure function of the spec and is
	// kept across crashes as a cache; runtime is dropped on pause and
	// crash and rebuilt from the newest checkpoint.
	runtime *parallel.Campaign
	prog    *target.Program
}

// infoLocked renders the public view. Caller holds the daemon mutex.
func (c *campaign) infoLocked() *Info {
	info := &Info{
		ID:               c.id,
		Tenant:           c.tenant,
		State:            c.state,
		Spec:             c.spec,
		Rounds:           c.rounds,
		CheckpointRounds: c.chkRounds,
		Restarts:         c.restarts,
		Error:            c.errText,
	}
	if c.stats != nil {
		s := *c.stats
		info.Stats = &s
	}
	return info
}

// metaLocked renders the persisted document. Caller holds the daemon mutex.
func (c *campaign) metaLocked() *meta {
	m := &meta{
		ID:       c.id,
		Tenant:   c.tenant,
		State:    c.state,
		Spec:     c.spec,
		Restarts: c.restarts,
		Error:    c.errText,
	}
	if c.stats != nil {
		s := *c.stats
		m.Stats = &s
	}
	return m
}

// statsFromReport condenses a campaign report into the cached snapshot.
func statsFromReport(rounds int, rep parallel.Report) *CampaignStats {
	st := &CampaignStats{
		Execs:           rep.TotalExecs,
		Rounds:          rounds,
		Edges:           rep.MaxEdges,
		UniqueCrashes:   rep.UniqueCrashes,
		FailedInstances: rep.FailedInstances,
	}
	for _, ist := range rep.PerInstance {
		if ist.Paths > st.Paths {
			st.Paths = ist.Paths
		}
		st.Crashes += ist.Crashes
		st.Hangs += ist.Hangs
	}
	return st
}

// bucketsFromRecords converts crash records to the wire shape.
func bucketsFromRecords(recs []*crash.Record) []CrashBucket {
	out := make([]CrashBucket, 0, len(recs))
	for _, r := range recs {
		out = append(out, CrashBucket{
			Key:        r.Key,
			Site:       r.Site,
			StackDepth: r.StackDepth,
			Count:      r.Count,
			Input:      append([]byte(nil), r.Input...),
		})
	}
	return out
}
