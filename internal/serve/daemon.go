package serve

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/bigmap/bigmap/internal/dist"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/telemetry"
)

// Config parameterizes a daemon.
type Config struct {
	// Dir is the state directory: campaign metadata and checkpoints live
	// under Dir/campaigns/<id>/. Required.
	Dir string
	// Workers bounds the pool executing campaign rounds (default 2).
	Workers int
	// QuantumRounds is how many sync rounds a worker runs a campaign for
	// before handing it back to the fair-share queue (default 4). Smaller
	// quanta interleave tenants more finely at slightly higher scheduling
	// cost.
	QuantumRounds int
	// CheckpointEvery is the checkpoint cadence in completed rounds
	// (default 8). A worker crash can lose at most this many rounds of
	// work; the recovery re-runs them bit for bit.
	CheckpointEvery int
	// MaxActive bounds non-terminal campaigns daemon-wide; TenantQuota
	// bounds them per tenant. Submissions beyond either are shed with an
	// OverloadError (HTTP 429 + Retry-After). Defaults 64 and 8.
	MaxActive   int
	TenantQuota int
	// MaxRestarts is the per-campaign circuit breaker: a campaign whose
	// worker crashes more than this many times is marked failed instead of
	// being retried forever (default 3).
	MaxRestarts int
	// RestartBackoff is the pause before a crashed campaign is requeued;
	// it doubles per restart of the same campaign and carries deterministic
	// jitter of up to half the base (default 50ms).
	RestartBackoff time.Duration
	// RetryAfter is the client backoff hint attached to shed submissions
	// (default 2s).
	RetryAfter time.Duration
	// RequestTimeout is the per-request deadline the HTTP handler attaches
	// to every request context (default 30s).
	RequestTimeout time.Duration
	// SaveAttempts and SaveBackoff parameterize the retrying checkpoint
	// writer (defaults 3 and 10ms).
	SaveAttempts int
	SaveBackoff  time.Duration
	// Chaos enables POST /campaigns/{id}/kill, which makes the owning
	// worker simulate its own crash at the next round boundary — the
	// fault-injection hook the recovery tests and the CI smoke drive.
	Chaos bool
	// JitterSeed seeds the restart-jitter stream (default 1). Operational
	// randomness only — it never influences campaign state.
	JitterSeed uint64
	// CorpusURL, when set, attaches every campaign to a bigmap-corpusd
	// corpus service at that base URL: each campaign syncs through a
	// service campaign named after its ID, so workers elsewhere can join it
	// with bigmap-fuzz -join. An unreachable service degrades the campaign
	// to local-only sync (logged as a corpus_unreachable event), never
	// fails it.
	CorpusURL string
	// Telemetry is the daemon-level registry (queue depth, sheds,
	// restarts, lifecycle events). nil disables daemon metrics; campaigns
	// still get their own registries.
	Telemetry *telemetry.Registry
}

func withDefaults(cfg Config) Config {
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.QuantumRounds == 0 {
		cfg.QuantumRounds = 4
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 8
	}
	if cfg.MaxActive == 0 {
		cfg.MaxActive = 64
	}
	if cfg.TenantQuota == 0 {
		cfg.TenantQuota = 8
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.RestartBackoff == 0 {
		cfg.RestartBackoff = 50 * time.Millisecond
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.SaveAttempts == 0 {
		cfg.SaveAttempts = 3
	}
	if cfg.SaveBackoff == 0 {
		cfg.SaveBackoff = 10 * time.Millisecond
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	return cfg
}

// Daemon is the control plane: the campaign registry, the fair-share run
// queue, the worker pool and the recovery machinery, behind the HTTP
// handler in http.go.
type Daemon struct {
	cfg   Config
	store *store
	reg   *telemetry.Registry

	mu sync.Mutex
	// campaigns indexes every known campaign by ID. guarded by mu.
	campaigns map[string]*campaign
	// queues holds each tenant's runnable FIFO and ring fixes the tenant
	// round-robin order (a slice, not map iteration, so scheduling never
	// depends on map order). rrNext is the ring cursor. All guarded by mu.
	queues map[string][]*campaign
	ring   []string
	rrNext int
	// draining and closed are the shutdown latches: draining pauses all
	// work gracefully, closed abandons it (the kill -9 path in tests).
	// stopped records that stopCh is closed. All guarded by mu.
	draining bool
	closed   bool
	stopped  bool
	// nextID feeds campaign ID allocation. guarded by mu.
	nextID int
	// jrng draws restart jitter. guarded by mu.
	jrng *rng.Source

	// cond signals workers when the queue gains work or shutdown starts;
	// it shares mu.
	cond *sync.Cond
	// stopCh wakes backoff timers on shutdown.
	stopCh chan struct{}
	// iomu serializes metadata writes: transitions for a campaign can be
	// requested from API goroutines and the owning worker, and interleaved
	// meta files must never mix two states.
	iomu sync.Mutex
	// wg tracks workers and backoff timers for Drain/Close.
	wg sync.WaitGroup

	telQueueDepth *telemetry.Gauge
	telActive     *telemetry.Gauge
	telShed       *telemetry.Counter
	telRestarts   *telemetry.Counter
	telSubmitted  *telemetry.Counter
	telFinished   *telemetry.Counter
}

// Open loads (or initializes) the state directory, recovers every persisted
// campaign — interrupted ones are requeued to resume from their newest
// checkpoint — and starts the worker pool.
func Open(cfg Config) (*Daemon, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required")
	}
	cfg = withDefaults(cfg)
	st, err := newStore(cfg.Dir, cfg.SaveAttempts, cfg.SaveBackoff)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:       cfg,
		store:     st,
		reg:       cfg.Telemetry,
		campaigns: make(map[string]*campaign),
		queues:    make(map[string][]*campaign),
		jrng:      rng.New(cfg.JitterSeed ^ 0x5e7e_11a5_3d0c_affe),
		stopCh:    make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)
	d.telQueueDepth = d.reg.Gauge("serve_queue_depth")
	d.telActive = d.reg.Gauge("serve_active_campaigns")
	d.telShed = d.reg.Counter("serve_shed_total")
	d.telRestarts = d.reg.Counter("serve_worker_restarts_total")
	d.telSubmitted = d.reg.Counter("serve_submitted_total")
	d.telFinished = d.reg.Counter("serve_finished_total")
	if err := d.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d, nil
}

// recover rebuilds the in-memory registry from the state store. Campaigns
// the previous process left queued or running (a kill -9 mid-round) are
// requeued; paused and terminal ones keep their state. A campaign directory
// that does not load is skipped with a daemon event rather than failing
// startup — one corrupt tenant must not hold the box hostage.
func (d *Daemon) recover() error {
	ids, err := d.store.list()
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, id := range ids {
		// Reserve every on-disk ID — loadable or not — before anything else.
		// If an unloadable directory's ID were re-minted by a later Submit,
		// the new campaign would land in the stale directory and could
		// resume from another campaign's leftover checkpoints.
		if n, ok := parseID(id); ok && n >= d.nextID {
			d.nextID = n + 1
		}
		m, err := d.store.loadMeta(id)
		if err != nil {
			d.reg.Event("recovery_skipped", fmt.Sprintf("%s: %v", id, err))
			continue
		}
		c := &campaign{
			id:       id,
			tenant:   m.Tenant,
			spec:     m.Spec,
			state:    m.State,
			restarts: m.Restarts,
			errText:  m.Error,
			stats:    m.Stats,
			reg:      telemetry.New(),
		}
		// Derive the recovered round count from the newest checkpoint that
		// actually decodes — trusting the newest filename alone would let a
		// corrupt file make Info promise rounds that materialize() must then
		// walk back to an older checkpoint.
		if _, rounds, err := d.store.loadCheckpoint(id); err == nil {
			c.chkRounds = rounds
			c.rounds = rounds
		}
		d.campaigns[id] = c
		switch m.State {
		case StateQueued, StateRunning:
			// Running on disk means the previous daemon died mid-round;
			// the newest checkpoint is the truth, so back to the queue.
			c.state = StateQueued
			d.enqueueLocked(c)
			d.reg.Event("recovered", fmt.Sprintf("%s requeued at round %d", id, c.rounds))
		}
	}
	d.updateGaugesLocked()
	return nil
}

const idPrefix = "c"

func formatID(n int) string { return fmt.Sprintf("%s%06d", idPrefix, n) }

func parseID(id string) (int, bool) {
	if !strings.HasPrefix(id, idPrefix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(id, idPrefix))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Submit validates, persists and enqueues a new campaign, returning its
// public view. Quota violations return *OverloadError; spec problems return
// *SpecError; a draining daemon returns ErrDraining.
func (d *Daemon) Submit(ctx context.Context, req SubmitRequest) (*Info, error) {
	_ = ctx // submissions are short; the HTTP layer enforces the deadline
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	if !tenantRE.MatchString(tenant) {
		return nil, specErrf("tenant %q (want %s)", tenant, tenantRE)
	}
	spec := req.Spec
	if err := spec.normalize(); err != nil {
		return nil, err
	}

	// Reserve the slot under quota before the (comparatively slow) target
	// generation, so concurrent submissions cannot overshoot the limits.
	d.mu.Lock()
	if d.draining || d.closed {
		d.mu.Unlock()
		return nil, ErrDraining
	}
	if total := d.activeLocked(""); total >= d.cfg.MaxActive {
		d.mu.Unlock()
		d.telShed.Inc()
		d.reg.Event("shed", fmt.Sprintf("global quota %d", d.cfg.MaxActive))
		return nil, &OverloadError{Scope: "global", Limit: d.cfg.MaxActive, RetryAfter: d.cfg.RetryAfter}
	}
	if n := d.activeLocked(tenant); n >= d.cfg.TenantQuota {
		d.mu.Unlock()
		d.telShed.Inc()
		d.reg.Event("shed", fmt.Sprintf("tenant %s quota %d", tenant, d.cfg.TenantQuota))
		return nil, &OverloadError{Scope: "tenant", Limit: d.cfg.TenantQuota, RetryAfter: d.cfg.RetryAfter}
	}
	id := formatID(d.nextID)
	d.nextID++
	c := &campaign{id: id, tenant: tenant, spec: spec, state: StateQueued, reg: telemetry.New()}
	d.campaigns[id] = c
	d.updateGaugesLocked()
	d.mu.Unlock()

	created := false
	abort := func(err error) (*Info, error) {
		d.mu.Lock()
		delete(d.campaigns, id)
		d.updateGaugesLocked()
		d.mu.Unlock()
		if created {
			// Leave no half-born directory behind: without a meta.json it
			// could never load again, and recovery would log it as skipped
			// on every subsequent start.
			d.store.remove(id)
		}
		return nil, err
	}
	prog, err := spec.buildProgram()
	if err != nil {
		return abort(err)
	}
	runtime, err := spec.newCampaign(prog, c.reg, d.corpusSyncer(c))
	if err != nil {
		return abort(&SpecError{msg: err.Error()})
	}
	if err := d.store.create(id); err != nil {
		return abort(err)
	}
	created = true
	// Round-0 checkpoint before the campaign is runnable: from here on a
	// drain or a crash always has a valid snapshot to fall back to, and a
	// campaign that never ran still pauses cleanly.
	if err := d.store.saveCheckpoint(id, 0, runtime.Snapshot()); err != nil {
		return abort(err)
	}
	c.prog = prog
	c.runtime = runtime

	// Persist the metadata before the campaign becomes runnable: abort (and
	// its directory removal) must never race with a worker that already owns
	// the runtime.
	d.mu.Lock()
	if d.draining || d.closed {
		// Shutdown won the race with materialization: persist as paused so
		// the next daemon offers the campaign for resumption.
		c.state = StatePaused
	}
	m := c.metaLocked()
	d.mu.Unlock()
	if err := d.writeMeta(m); err != nil {
		return abort(err)
	}
	d.mu.Lock()
	if !d.draining && !d.closed && c.state == StateQueued {
		d.enqueueLocked(c)
	} else if !c.state.Terminal() {
		// Shutdown began between the meta write and here; Drain's sweep has
		// already run, so park the campaign ourselves (the round-0
		// checkpoint above makes the paused state complete).
		c.state = StatePaused
	}
	info := c.infoLocked()
	d.mu.Unlock()
	d.telSubmitted.Inc()
	d.reg.Event("submitted", fmt.Sprintf("%s tenant=%s bench=%s rounds=%d", id, tenant, spec.Bench, spec.Rounds))
	return info, nil
}

// activeLocked counts non-terminal campaigns, optionally for one tenant.
// corpusSyncer builds the campaign's corpus-service attachment: a
// dist.Client on a service campaign named after the serve campaign ID.
// Returns nil — local-only sync — when no CorpusURL is configured or the
// service cannot be reached; the failure is an event, not an error, because
// corpus sharing is an overlay on a campaign that runs fine without it.
// Materialization after a restart calls this again under the same campaign
// ID and worker names, which resumes the service-side cursors exactly.
func (d *Daemon) corpusSyncer(c *campaign) dist.Syncer {
	if d.cfg.CorpusURL == "" {
		return nil
	}
	client, err := dist.NewClient(d.cfg.CorpusURL, c.id)
	if err != nil {
		c.reg.Event("corpus_unreachable", err.Error())
		return nil
	}
	if err := client.EnsureCampaign(c.spec.MapSize); err != nil {
		c.reg.Event("corpus_unreachable", fmt.Sprintf("%s: %v", d.cfg.CorpusURL, err))
		return nil
	}
	c.reg.Event("corpus_attached", fmt.Sprintf("%s campaign %s", d.cfg.CorpusURL, c.id))
	return client
}

func (d *Daemon) activeLocked(tenant string) int {
	n := 0
	for _, c := range d.campaigns {
		if c.state.Terminal() {
			continue
		}
		if tenant == "" || c.tenant == tenant {
			n++
		}
	}
	return n
}

// Get returns one campaign's public view.
func (d *Daemon) Get(id string) (*Info, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.campaigns[id]
	if !ok {
		return nil, ErrNotFound
	}
	return c.infoLocked(), nil
}

// List returns every campaign (optionally one tenant's), sorted by ID.
func (d *Daemon) List(tenant string) []*Info {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Info, 0, len(d.campaigns))
	for _, c := range d.campaigns {
		if tenant != "" && c.tenant != tenant {
			continue
		}
		out = append(out, c.infoLocked())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats returns the latest cached progress snapshot.
func (d *Daemon) Stats(id string) (*CampaignStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.campaigns[id]
	if !ok {
		return nil, ErrNotFound
	}
	if c.stats == nil {
		return &CampaignStats{Rounds: c.rounds}, nil
	}
	s := *c.stats
	return &s, nil
}

// Crashes returns the campaign's deduplicated crash buckets as of the last
// boundary snapshot.
func (d *Daemon) Crashes(id string) ([]CrashBucket, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.campaigns[id]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]CrashBucket(nil), c.crashes...), nil
}

// Events returns the campaign's event ring: new coverage, new crash
// buckets, worker crashes, checkpoints, revivals.
func (d *Daemon) Events(id string) ([]EventRecord, error) {
	d.mu.Lock()
	c, ok := d.campaigns[id]
	d.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	evs, _ := c.reg.Events().Snapshot()
	out := make([]EventRecord, 0, len(evs))
	for _, e := range evs {
		out = append(out, EventRecord{AtNanos: e.AtNanos, Name: e.Name, Detail: e.Detail})
	}
	return out, nil
}

// Registry exposes a campaign's telemetry registry (nil when telemetry is
// compiled out) for the /campaigns/{id}/metrics mount.
func (d *Daemon) Registry(id string) (*telemetry.Registry, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.campaigns[id]
	if !ok {
		return nil, ErrNotFound
	}
	return c.reg, nil
}

// Pause requests a pause. Queued campaigns pause immediately; running ones
// at their next round boundary — the call waits for the acknowledgement
// until ctx expires and returns the then-current view either way (the
// caller distinguishes "paused" from "still pausing" by Info.State).
func (d *Daemon) Pause(ctx context.Context, id string) (*Info, error) {
	d.mu.Lock()
	c, ok := d.campaigns[id]
	if !ok {
		d.mu.Unlock()
		return nil, ErrNotFound
	}
	switch c.state {
	case StatePaused:
		defer d.mu.Unlock()
		return c.infoLocked(), nil
	case StateQueued:
		// Flipping the state first makes any queue entry stale, so no
		// worker can pop the campaign once we let go of the lock.
		c.state = StatePaused
		if c.runtime != nil {
			// Parked between quanta with boundary state possibly ahead of
			// the newest checkpoint; we own the runtime now, so park it
			// properly with a last-gasp checkpoint.
			d.mu.Unlock()
			d.pauseNow(c)
			return d.Get(id)
		}
		m := c.metaLocked()
		info := c.infoLocked()
		d.mu.Unlock()
		if err := d.writeMeta(m); err != nil {
			return nil, err
		}
		c.reg.Event("paused", "paused while queued")
		return info, nil
	case StateRunning:
		c.wantPause = true
		d.mu.Unlock()
		// The flag survives a quantum-end requeue, so waiting for the
		// paused state (or a terminal one, if the round budget ran out
		// first) is correct even when the ack spans two quanta.
		return d.await(ctx, c, func(s State) bool { return s == StatePaused || s.Terminal() })
	default:
		defer d.mu.Unlock()
		return nil, fmt.Errorf("%w: cannot pause a %s campaign", ErrConflict, c.state)
	}
}

// Resume moves a paused campaign back into the run queue.
func (d *Daemon) Resume(ctx context.Context, id string) (*Info, error) {
	_ = ctx
	d.mu.Lock()
	c, ok := d.campaigns[id]
	if !ok {
		d.mu.Unlock()
		return nil, ErrNotFound
	}
	switch c.state {
	case StateQueued, StateRunning:
		defer d.mu.Unlock()
		return c.infoLocked(), nil
	case StatePaused:
		if d.draining || d.closed {
			d.mu.Unlock()
			return nil, ErrDraining
		}
		d.enqueueLocked(c)
		m := c.metaLocked()
		info := c.infoLocked()
		d.mu.Unlock()
		if err := d.writeMeta(m); err != nil {
			return nil, err
		}
		c.reg.Event("resumed", fmt.Sprintf("requeued at round %d", info.Rounds))
		return info, nil
	default:
		defer d.mu.Unlock()
		return nil, fmt.Errorf("%w: cannot resume a %s campaign", ErrConflict, c.state)
	}
}

// Cancel terminates a campaign. Running ones stop at their next round
// boundary; the call waits for the acknowledgement until ctx expires.
func (d *Daemon) Cancel(ctx context.Context, id string) (*Info, error) {
	d.mu.Lock()
	c, ok := d.campaigns[id]
	if !ok {
		d.mu.Unlock()
		return nil, ErrNotFound
	}
	switch c.state {
	case StateCancelled:
		defer d.mu.Unlock()
		return c.infoLocked(), nil
	case StateQueued, StatePaused:
		c.state = StateCancelled
		m := c.metaLocked()
		info := c.infoLocked()
		d.updateGaugesLocked()
		d.mu.Unlock()
		if err := d.writeMeta(m); err != nil {
			return nil, err
		}
		c.reg.Event("cancelled", "cancelled before completion")
		return info, nil
	case StateRunning:
		c.wantCancel = true
		d.mu.Unlock()
		return d.await(ctx, c, func(s State) bool { return s.Terminal() })
	default:
		defer d.mu.Unlock()
		return nil, fmt.Errorf("%w: cannot cancel a %s campaign", ErrConflict, c.state)
	}
}

// Kill is the chaos hook (Config.Chaos): the owning worker simulates its
// own crash at the next round boundary, exercising the full recovery path —
// backoff, requeue, resume from the newest checkpoint, circuit breaker.
func (d *Daemon) Kill(id string) (*Info, error) {
	if !d.cfg.Chaos {
		return nil, ErrNotFound
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.campaigns[id]
	if !ok {
		return nil, ErrNotFound
	}
	if c.state != StateRunning {
		return nil, fmt.Errorf("%w: can only kill a running campaign's worker (state %s)", ErrConflict, c.state)
	}
	c.wantKill = true
	return c.infoLocked(), nil
}

// await polls until done(state) or ctx expires, returning the then-current
// view. The poll period is fine enough that an ack at a round boundary is
// observed promptly without the campaign needing to know who is waiting.
func (d *Daemon) await(ctx context.Context, c *campaign, done func(State) bool) (*Info, error) {
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		d.mu.Lock()
		s := c.state
		info := c.infoLocked()
		d.mu.Unlock()
		if done(s) {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, nil
		case <-ticker.C:
		}
	}
}

// writeMeta persists a metadata document, serialized across writers.
func (d *Daemon) writeMeta(m *meta) error {
	d.iomu.Lock()
	defer d.iomu.Unlock()
	return d.store.saveMeta(m)
}

// updateGaugesLocked refreshes the daemon-level gauges. Caller holds mu.
func (d *Daemon) updateGaugesLocked() {
	depth := 0
	for _, q := range d.queues {
		depth += len(q)
	}
	d.telQueueDepth.Set(int64(depth))
	d.telActive.Set(int64(d.activeLocked("")))
}
