package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// testSpec is a laptop-sized campaign spec: a real Table II target at tiny
// scale, short sync rounds so tests see many round boundaries quickly.
func testSpec(rounds int) Spec {
	return Spec{
		Bench:      "zlib",
		Scale:      0.02,
		MapSize:    1 << 12,
		Seed:       7,
		SeedCorpus: 4,
		SyncEvery:  200,
		Rounds:     rounds,
	}
}

// testConfig is a small, twitchy daemon: one worker so scheduling is easy to
// reason about, short quanta and cadences so every code path fires fast.
func testConfig(dir string) Config {
	return Config{
		Dir:             dir,
		Workers:         1,
		QuantumRounds:   2,
		CheckpointEvery: 3,
		MaxRestarts:     3,
		RestartBackoff:  time.Millisecond,
		RetryAfter:      time.Second,
		Chaos:           true,
	}
}

func openTest(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	d, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// waitFor polls until pred accepts the campaign's view or the deadline
// passes.
func waitFor(t *testing.T, d *Daemon, id string, what string, pred func(*Info) bool) *Info {
	t.Helper()
	var last *Info
	for i := 0; i < 30000; i++ {
		info, err := d.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if pred(info) {
			return info
		}
		last = info
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %q; last view: %+v", id, what, last)
	return nil
}

func submit(t *testing.T, d *Daemon, tenant string, spec Spec) *Info {
	t.Helper()
	info, err := d.Submit(context.Background(), SubmitRequest{Tenant: tenant, Spec: spec})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return info
}

func TestSubmitValidation(t *testing.T) {
	d := openTest(t, testConfig(t.TempDir()))
	cases := []struct {
		name string
		req  SubmitRequest
	}{
		{"unknown bench", SubmitRequest{Spec: Spec{Bench: "no-such-benchmark", Rounds: 1}}},
		{"zero rounds", SubmitRequest{Spec: Spec{Bench: "zlib"}}},
		{"bad scheme", SubmitRequest{Spec: Spec{Bench: "zlib", Rounds: 1, Scheme: "libfuzzer"}}},
		{"bad tenant", SubmitRequest{Tenant: "no/slashes", Spec: testSpec(1)}},
		{"oversized instances", SubmitRequest{Spec: Spec{Bench: "zlib", Rounds: 1, Instances: maxInstances + 1}}},
	}
	for _, tc := range cases {
		_, err := d.Submit(context.Background(), tc.req)
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("%s: want SpecError, got %v", tc.name, err)
		}
	}
	if got := len(d.List("")); got != 0 {
		t.Fatalf("rejected submissions left %d campaigns behind", got)
	}
}

func TestCampaignRunsToCompletion(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, testConfig(dir))
	info := submit(t, d, "acme", testSpec(5))
	if info.State != StateQueued && info.State != StateRunning {
		t.Fatalf("fresh campaign in state %s", info.State)
	}
	final := waitFor(t, d, info.ID, "finished", func(i *Info) bool { return i.State == StateFinished })
	if final.Rounds != 5 || final.CheckpointRounds != 5 {
		t.Fatalf("finished at rounds=%d chk=%d, want 5/5", final.Rounds, final.CheckpointRounds)
	}
	if final.Stats == nil || final.Stats.Execs == 0 || final.Stats.Edges == 0 {
		t.Fatalf("finished campaign has empty stats: %+v", final.Stats)
	}

	// The terminal state must be durable: a fresh daemon over the same
	// directory sees the finished campaign without requeueing it.
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d2 := openTest(t, testConfig(dir))
	again, err := d2.Get(info.ID)
	if err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
	if again.State != StateFinished {
		t.Fatalf("reopened daemon sees state %s, want finished", again.State)
	}
	if again.Stats == nil || again.Stats.Execs != final.Stats.Execs {
		t.Fatalf("stats not durable: %+v vs %+v", again.Stats, final.Stats)
	}
}

func TestPauseResumeCancel(t *testing.T) {
	d := openTest(t, testConfig(t.TempDir()))
	info := submit(t, d, "acme", testSpec(1 << 18))
	waitFor(t, d, info.ID, "progress", func(i *Info) bool { return i.Rounds > 0 })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	paused, err := d.Pause(ctx, info.ID)
	if err != nil {
		t.Fatalf("Pause: %v", err)
	}
	if paused.State != StatePaused {
		t.Fatalf("after Pause state=%s", paused.State)
	}
	// A pause always leaves the frontier on disk: the checkpoint covers
	// every completed round.
	if paused.CheckpointRounds != paused.Rounds {
		t.Fatalf("paused with rounds=%d but checkpoint at %d", paused.Rounds, paused.CheckpointRounds)
	}
	if _, _, err := d.store.loadCheckpoint(info.ID); err != nil {
		t.Fatalf("paused campaign has no loadable checkpoint: %v", err)
	}

	resumed, err := d.Resume(ctx, info.ID)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if resumed.State != StateQueued && resumed.State != StateRunning {
		t.Fatalf("after Resume state=%s", resumed.State)
	}
	waitFor(t, d, info.ID, "more progress", func(i *Info) bool { return i.Rounds > paused.Rounds })

	cancelled, err := d.Cancel(ctx, info.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if cancelled.State != StateCancelled {
		t.Fatalf("after Cancel state=%s", cancelled.State)
	}
	// Terminal states reject further transitions.
	if _, err := d.Resume(ctx, info.ID); !errors.Is(err, ErrConflict) {
		t.Fatalf("Resume of cancelled campaign: %v, want ErrConflict", err)
	}
	if _, err := d.Pause(ctx, info.ID); !errors.Is(err, ErrConflict) {
		t.Fatalf("Pause of cancelled campaign: %v, want ErrConflict", err)
	}
}

func TestUnknownCampaign(t *testing.T) {
	d := openTest(t, testConfig(t.TempDir()))
	if _, err := d.Get("c999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get: %v, want ErrNotFound", err)
	}
	ctx := context.Background()
	if _, err := d.Pause(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Pause: %v, want ErrNotFound", err)
	}
}

// TestQuotaShedsWhileRunning is the overload half of the acceptance
// criterion: submissions beyond the quota are shed with a typed overload
// error while already-admitted campaigns keep making progress.
func TestQuotaShedsWhileRunning(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.TenantQuota = 2
	cfg.MaxActive = 3
	d := openTest(t, cfg)

	a1 := submit(t, d, "acme", testSpec(1<<18))
	submit(t, d, "acme", testSpec(1<<18))

	// Third submission for the same tenant: tenant quota exceeded.
	_, err := d.Submit(context.Background(), SubmitRequest{Tenant: "acme", Spec: testSpec(4)})
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Scope != "tenant" || oe.Limit != 2 {
		t.Fatalf("tenant overflow: got %v, want tenant OverloadError limit 2", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("overload error carries no Retry-After hint: %+v", oe)
	}

	// A different tenant still fits under the global cap...
	submit(t, d, "umbrella", testSpec(1<<18))
	// ...but the next one anywhere trips it.
	_, err = d.Submit(context.Background(), SubmitRequest{Tenant: "wayne", Spec: testSpec(4)})
	if !errors.As(err, &oe) || oe.Scope != "global" || oe.Limit != 3 {
		t.Fatalf("global overflow: got %v, want global OverloadError limit 3", err)
	}

	// The running campaigns are unbothered by the shedding.
	before, err := d.Stats(a1.ID)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	waitFor(t, d, a1.ID, "progress under load", func(i *Info) bool { return i.Rounds > before.Rounds })

	// Retiring a campaign frees its quota slot.
	ctx, cancelCtx := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelCtx()
	if _, err := d.Cancel(ctx, a1.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	waitFor(t, d, a1.ID, "cancelled", func(i *Info) bool { return i.State == StateCancelled })
	if _, err := d.Submit(context.Background(), SubmitRequest{Tenant: "acme", Spec: testSpec(2)}); err != nil {
		t.Fatalf("submit after freeing quota: %v", err)
	}
}

// TestFairShareScheduling drives the queue directly: tenants take turns even
// when one of them has far more queued work.
func TestFairShareScheduling(t *testing.T) {
	d := openTest(t, Config{Dir: t.TempDir(), Workers: 1})
	// Stop the worker from interfering: drain pops nothing because we
	// enqueue below the daemon's nose with the lock held.
	mk := func(id, tenant string) *campaign {
		return &campaign{id: id, tenant: tenant, state: StateQueued}
	}
	a1, a2, a3 := mk("c1", "a"), mk("c2", "a"), mk("c3", "a")
	b1 := mk("c4", "b")
	d.mu.Lock()
	d.enqueueLocked(a1)
	d.enqueueLocked(a2)
	d.enqueueLocked(a3)
	d.enqueueLocked(b1)
	var order []string
	for c := d.popLocked(); c != nil; c = d.popLocked() {
		order = append(order, c.id)
	}
	d.mu.Unlock()
	want := []string{"c1", "c4", "c2", "c3"}
	if len(order) != len(want) {
		t.Fatalf("popped %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("popped %v, want %v (tenant b should interleave)", order, want)
		}
	}
}
