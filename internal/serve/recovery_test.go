package serve

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// finalCheckpoint reads the raw bytes of the checkpoint covering the given
// round count.
func finalCheckpoint(t *testing.T, dir, id string, rounds int) []byte {
	t.Helper()
	path := filepath.Join(dir, "campaigns", id, fmt.Sprintf("chk-%08d.bm", rounds))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read final checkpoint: %v", err)
	}
	return data
}

// runToCompletion submits spec on a fresh daemon over dir and returns the
// finished view.
func runToCompletion(t *testing.T, cfg Config, spec Spec) (*Info, *Daemon) {
	t.Helper()
	d := openTest(t, cfg)
	info := submit(t, d, "acme", spec)
	final := waitFor(t, d, info.ID, "finished", func(i *Info) bool { return i.State == StateFinished })
	return final, d
}

// TestWorkerCrashDifferential is the acceptance criterion: a campaign whose
// worker is killed mid-run and auto-resumed from its last checkpoint must
// produce a final checkpoint bitwise identical to an uninterrupted run of
// the same spec. The split-invariance of sync rounds plus checkpoint/resume
// bitwise-equality make the lost rounds re-run reproduce exactly the state
// the crash destroyed.
func TestWorkerCrashDifferential(t *testing.T) {
	spec := testSpec(10)

	// Control: uninterrupted run.
	dirA := t.TempDir()
	controlInfo, _ := runToCompletion(t, testConfig(dirA), spec)
	want := finalCheckpoint(t, dirA, controlInfo.ID, spec.Rounds)

	// Treatment: same spec, worker chaos-killed mid-campaign.
	dirB := t.TempDir()
	d := openTest(t, testConfig(dirB))
	info := submit(t, d, "acme", spec)
	waitFor(t, d, info.ID, "running", func(i *Info) bool { return i.State == StateRunning && i.Rounds > 0 })
	if _, err := d.Kill(info.ID); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	final := waitFor(t, d, info.ID, "finished after crash", func(i *Info) bool { return i.State == StateFinished })
	if final.Restarts == 0 {
		t.Fatalf("campaign finished without recording the worker crash: %+v", final)
	}
	got := finalCheckpoint(t, dirB, info.ID, spec.Rounds)

	if !bytes.Equal(want, got) {
		t.Fatalf("final checkpoint after crash+recovery differs from uninterrupted run (%d vs %d bytes)", len(want), len(got))
	}
}

// TestDaemonKillRecoveryDifferential kills the whole daemon (hard Close with
// no checkpoint or metadata writes — the in-process kill -9) and proves a
// fresh daemon over the same directory requeues the campaign automatically
// and still converges to the bitwise-identical final checkpoint.
func TestDaemonKillRecoveryDifferential(t *testing.T) {
	spec := testSpec(10)

	dirA := t.TempDir()
	controlInfo, _ := runToCompletion(t, testConfig(dirA), spec)
	want := finalCheckpoint(t, dirA, controlInfo.ID, spec.Rounds)

	dirB := t.TempDir()
	d := openTest(t, testConfig(dirB))
	info := submit(t, d, "acme", spec)
	// Let it make some progress (and likely write a cadence checkpoint),
	// then yank the power cord.
	waitFor(t, d, info.ID, "progress", func(i *Info) bool { return i.Rounds > 0 })
	if err := d.Close(); err != nil {
		t.Fatalf("hard Close: %v", err)
	}

	d2 := openTest(t, testConfig(dirB))
	again, err := d2.Get(info.ID)
	if err != nil {
		t.Fatalf("campaign lost across daemon kill: %v", err)
	}
	if again.State.Terminal() {
		t.Fatalf("campaign already %s right after recovery", again.State)
	}
	final := waitFor(t, d2, info.ID, "finished after daemon kill", func(i *Info) bool { return i.State == StateFinished })
	if final.Rounds != spec.Rounds {
		t.Fatalf("recovered campaign finished at %d rounds, want %d", final.Rounds, spec.Rounds)
	}
	got := finalCheckpoint(t, dirB, info.ID, spec.Rounds)
	if !bytes.Equal(want, got) {
		t.Fatalf("final checkpoint after daemon kill differs from uninterrupted run (%d vs %d bytes)", len(want), len(got))
	}
}

// TestCircuitBreaker crashes a campaign's workers past MaxRestarts and
// expects a durable failed state instead of an infinite retry loop.
func TestCircuitBreaker(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.MaxRestarts = 2
	d := openTest(t, cfg)
	info := submit(t, d, "acme", testSpec(1<<18))
	// Kill the worker every time we catch the campaign running; the kill
	// can race with the campaign's own lifecycle (queued during backoff,
	// already killed), so conflicts are expected — just keep swinging until
	// the breaker trips.
	final := waitFor(t, d, info.ID, "failed", func(i *Info) bool {
		if i.State == StateRunning {
			d.Kill(info.ID)
		}
		return i.State == StateFailed
	})
	if final.Restarts <= cfg.MaxRestarts {
		t.Fatalf("failed after only %d restarts with budget %d", final.Restarts, cfg.MaxRestarts)
	}
	if !strings.Contains(final.Error, "circuit breaker") {
		t.Fatalf("failed campaign error %q does not name the circuit breaker", final.Error)
	}

	// The failure is durable and the breaker state survives restart.
	d.Close()
	d2 := openTest(t, testConfig(cfg.Dir))
	again, err := d2.Get(info.ID)
	if err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
	if again.State != StateFailed || again.Restarts != final.Restarts {
		t.Fatalf("breaker state not durable: %+v vs %+v", again, final)
	}
}

// TestRecoveryRollsBackUncheckpointedRounds pins the rollback semantics: a
// chaos kill discards rounds past the newest checkpoint, and the public
// view never claims rounds the disk cannot back.
func TestRecoveryRollsBackUncheckpointedRounds(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.CheckpointEvery = 1 << 20 // effectively: only the round-0 checkpoint exists
	cfg.MaxRestarts = 1 << 10
	d := openTest(t, cfg)
	info := submit(t, d, "acme", testSpec(1<<18))
	waitFor(t, d, info.ID, "progress", func(i *Info) bool { return i.Rounds >= 2 })
	if _, err := d.Kill(info.ID); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	waitFor(t, d, info.ID, "restart recorded", func(i *Info) bool { return i.Restarts >= 1 })
	got, err := d.Get(info.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.Rounds > got.CheckpointRounds && got.State != StateRunning {
		t.Fatalf("view claims %d rounds but checkpoint covers %d in state %s",
			got.Rounds, got.CheckpointRounds, got.State)
	}
}

// TestRecoveryReservesUnloadableIDs pins the ID allocator against stale
// state: a campaign directory that cannot be loaded (no meta.json — a
// half-born submission or a torn disk) must still reserve its numeric ID,
// or the next Submit would re-mint it, adopt the stale directory and
// resume from another campaign's leftover checkpoints.
func TestRecoveryReservesUnloadableIDs(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "campaigns", "c000041")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatalf("mkdir stale dir: %v", err)
	}
	// The leftover checkpoint is the dangerous part: an ID collision would
	// hand this state to a fresh campaign.
	if err := os.WriteFile(filepath.Join(stale, "chk-00000007.bm"), []byte("stale"), 0o644); err != nil {
		t.Fatalf("write stale checkpoint: %v", err)
	}

	d := openTest(t, testConfig(dir))
	info := submit(t, d, "acme", testSpec(2))
	if n, ok := parseID(info.ID); !ok || n <= 41 {
		t.Fatalf("Submit minted %s, want an ID past the unloadable c000041", info.ID)
	}
	if info.Rounds != 0 || info.CheckpointRounds != 0 {
		t.Fatalf("fresh campaign inherited rounds from stale state: %+v", info)
	}
	waitFor(t, d, info.ID, "finished", func(i *Info) bool { return i.State == StateFinished })
}

// TestSubmitRefusesExistingDir: store.create must not adopt a directory it
// did not make, and the abort path must not delete state it does not own.
func TestSubmitRefusesExistingDir(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, testConfig(dir))
	// The daemon will mint c000000 next; squat on it.
	squat := filepath.Join(dir, "campaigns", "c000000")
	if err := os.MkdirAll(squat, 0o755); err != nil {
		t.Fatalf("mkdir squat dir: %v", err)
	}
	marker := filepath.Join(squat, "chk-00000009.bm")
	if err := os.WriteFile(marker, []byte("not yours"), 0o644); err != nil {
		t.Fatalf("write marker: %v", err)
	}

	if _, err := d.Submit(context.Background(), SubmitRequest{Tenant: "acme", Spec: testSpec(1)}); err == nil {
		t.Fatalf("Submit adopted a pre-existing campaign directory")
	}
	if got := len(d.List("")); got != 0 {
		t.Fatalf("failed submission left %d campaigns behind", got)
	}
	if _, err := os.Stat(marker); err != nil {
		t.Fatalf("abort deleted a directory it did not create: %v", err)
	}

	// The allocator has moved past the collision; submissions recover.
	info := submit(t, d, "acme", testSpec(1))
	if info.ID == "c000000" {
		t.Fatalf("allocator re-minted the squatted ID")
	}
}

// TestRecoveryIgnoresCorruptNewestCheckpoint: the recovered round count must
// come from the newest checkpoint that decodes, not the newest filename, so
// the public view never promises rounds that materialization would have to
// walk back.
func TestRecoveryIgnoresCorruptNewestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(10)
	info, d := runToCompletion(t, testConfig(dir), spec)
	d.Close()

	// Corrupt the newest checkpoint (round 10); its predecessor (round 9,
	// kept by the pruner as insurance) remains valid.
	newest := filepath.Join(dir, "campaigns", info.ID, "chk-00000010.bm")
	if err := os.WriteFile(newest, []byte("garbage"), 0o644); err != nil {
		t.Fatalf("corrupt newest checkpoint: %v", err)
	}

	d2 := openTest(t, testConfig(dir))
	got, err := d2.Get(info.ID)
	if err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
	if got.Rounds != 9 || got.CheckpointRounds != 9 {
		t.Fatalf("recovered view claims rounds=%d chk=%d, want 9/9 (the newest decodable checkpoint)",
			got.Rounds, got.CheckpointRounds)
	}
}

// TestDrainDuringBackoff: draining while a crashed campaign waits out its
// backoff must park it as paused, not lose it.
func TestDrainDuringBackoff(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.RestartBackoff = 30 * time.Second // long enough that drain wins the race
	d := openTest(t, cfg)
	info := submit(t, d, "acme", testSpec(1<<18))
	waitFor(t, d, info.ID, "running", func(i *Info) bool { return i.State == StateRunning })
	if _, err := d.Kill(info.ID); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	waitFor(t, d, info.ID, "in backoff", func(i *Info) bool { return i.State == StateQueued })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	got, err := d.Get(info.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.State != StatePaused {
		t.Fatalf("campaign in backoff drained to %s, want paused", got.State)
	}
	m, err := d.store.loadMeta(info.ID)
	if err != nil {
		t.Fatalf("loadMeta: %v", err)
	}
	if m.State != StatePaused {
		t.Fatalf("disk says %s, want paused", m.State)
	}
}
