package serve

import (
	"fmt"
	"regexp"

	"github.com/bigmap/bigmap/internal/checkpoint"
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/dist"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/parallel"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
	"github.com/bigmap/bigmap/internal/telemetry"
)

// Bounds a single daemon enforces on every spec, so one malicious or
// fat-fingered submission cannot allocate the box away.
const (
	maxInstances  = 16
	maxRounds     = 1 << 20
	maxSyncEvery  = 1 << 20
	maxMapSize    = 8 << 20
	maxSeedCorpus = 1 << 12
)

// tenantRE pins tenant names to path- and header-safe characters.
var tenantRE = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// SpecError marks a rejected submission (HTTP 400).
type SpecError struct{ msg string }

func (e *SpecError) Error() string { return "serve: bad spec: " + e.msg }

func specErrf(format string, args ...any) error {
	return &SpecError{msg: fmt.Sprintf(format, args...)}
}

// normalize fills defaults in place and validates against the daemon
// bounds. The normalized spec is what gets persisted, so a recovered
// campaign rebuilds from explicit values, never from defaulting rules that
// may drift across versions.
func (s *Spec) normalize() error {
	if _, ok := target.ProfileByName(s.Bench); !ok {
		return specErrf("unknown bench %q", s.Bench)
	}
	if s.Scale == 0 {
		s.Scale = 0.05
	}
	if s.Scale < 0 || s.Scale > 1 {
		return specErrf("scale %g out of (0, 1]", s.Scale)
	}
	if s.Scheme == "" {
		s.Scheme = string(fuzzer.SchemeBigMap)
	}
	if s.Scheme != string(fuzzer.SchemeAFL) && s.Scheme != string(fuzzer.SchemeBigMap) {
		return specErrf("unknown scheme %q", s.Scheme)
	}
	if s.MapSize == 0 {
		s.MapSize = core.MapSize64K
	}
	if s.MapSize < 0 || s.MapSize > maxMapSize {
		return specErrf("map_size %d out of (0, %d]", s.MapSize, maxMapSize)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.SeedCorpus == 0 {
		s.SeedCorpus = 16
	}
	if s.SeedCorpus < 0 || s.SeedCorpus > maxSeedCorpus {
		return specErrf("seed_corpus %d out of (0, %d]", s.SeedCorpus, maxSeedCorpus)
	}
	if s.Instances == 0 {
		s.Instances = 1
	}
	if s.Instances < 0 || s.Instances > maxInstances {
		return specErrf("instances %d out of (0, %d]", s.Instances, maxInstances)
	}
	if s.SyncEvery == 0 {
		s.SyncEvery = 2000
	}
	if s.SyncEvery > maxSyncEvery {
		return specErrf("sync_every %d above %d", s.SyncEvery, maxSyncEvery)
	}
	if s.Rounds < 1 || s.Rounds > maxRounds {
		return specErrf("rounds %d out of [1, %d]", s.Rounds, maxRounds)
	}
	if s.BatchSize < 0 {
		return specErrf("batch_size %d negative", s.BatchSize)
	}
	if s.SlotCap < 0 {
		return specErrf("slot_cap %d negative", s.SlotCap)
	}
	return nil
}

// buildProgram generates the spec's synthetic target. Deterministic: the
// profile embeds its own generation seed, so every materialization — fresh
// submit, crash recovery, daemon restart — fuzzes the identical program.
func (s Spec) buildProgram() (*target.Program, error) {
	profile, ok := target.ProfileByName(s.Bench)
	if !ok {
		return nil, specErrf("unknown bench %q", s.Bench)
	}
	prog, err := target.Generate(profile.Spec(s.Scale))
	if err != nil {
		return nil, fmt.Errorf("serve: generate %s: %w", s.Bench, err)
	}
	return prog, nil
}

// seeds synthesizes the campaign's seed corpus, keyed off the campaign seed
// exactly like bigmap-fuzz does.
func (s Spec) seeds(prog *target.Program) [][]byte {
	return prog.SampleSeeds(rng.New(s.Seed^0x5eed), s.SeedCorpus)
}

// campaignConfig derives the parallel.Config this spec runs under. reg is
// the per-campaign telemetry registry and syncer the campaign's corpus
// service attachment, nil when the daemon runs without one (both nil-safe);
// they are attached here rather than stored in the spec because they are
// runtime objects, recreated on every materialization.
func (s Spec) campaignConfig(reg *telemetry.Registry, syncer dist.Syncer) parallel.Config {
	return parallel.Config{
		Instances:           s.Instances,
		SyncEvery:           s.SyncEvery,
		MasterDeterministic: s.MasterDeterministic,
		Syncer:              syncer,
		Worker:              "serve",
		Fuzzer: fuzzer.Config{
			Scheme:    fuzzer.Scheme(s.Scheme),
			MapSize:   s.MapSize,
			Seed:      s.Seed,
			Selective: s.Selective,
			BatchSize: s.BatchSize,
			SlotCap:   s.SlotCap,
			Telemetry: reg,
		},
	}
}

// newCampaign materializes a fresh runtime for the spec.
func (s Spec) newCampaign(prog *target.Program, reg *telemetry.Registry, syncer dist.Syncer) (*parallel.Campaign, error) {
	c, err := parallel.NewCampaign(prog, s.campaignConfig(reg, syncer), s.seeds(prog))
	if err != nil {
		return nil, fmt.Errorf("serve: build campaign: %w", err)
	}
	return c, nil
}

// resumeCampaign materializes a runtime from a checkpoint. The spec must be
// the campaign's original (the store keeps it next to the checkpoint), so
// the resumed runtime is bitwise the interrupted one.
func (s Spec) resumeCampaign(prog *target.Program, st *checkpoint.CampaignState, reg *telemetry.Registry, syncer dist.Syncer) (*parallel.Campaign, error) {
	c, err := parallel.Resume(prog, s.campaignConfig(reg, syncer), st)
	if err != nil {
		return nil, fmt.Errorf("serve: resume campaign: %w", err)
	}
	return c, nil
}
