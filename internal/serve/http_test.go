package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/bigmap/bigmap/internal/telemetry"
)

// httpDaemon boots a daemon behind an httptest server.
func httpDaemon(t *testing.T, cfg Config) (*Daemon, *httptest.Server) {
	t.Helper()
	d := openTest(t, cfg)
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, srv
}

func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode response: %v", method, url, err)
		}
	}
	return resp
}

// TestHTTPSession walks the README quickstart flow end to end over real
// HTTP: submit, inspect, pause, resume, observe, cancel.
func TestHTTPSession(t *testing.T) {
	_, srv := httpDaemon(t, testConfig(t.TempDir()))
	base := srv.URL

	var health map[string]string
	if resp := doJSON(t, "GET", base+"/healthz", nil, &health); resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Submit.
	var info Info
	resp := doJSON(t, "POST", base+"/campaigns", SubmitRequest{Tenant: "acme", Spec: testSpec(1 << 18)}, &info)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/campaigns/"+info.ID {
		t.Fatalf("submit Location %q", loc)
	}

	// List and get.
	var list []Info
	doJSON(t, "GET", base+"/campaigns?tenant=acme", nil, &list)
	if len(list) != 1 || list[0].ID != info.ID {
		t.Fatalf("list: %+v", list)
	}
	var got Info
	if resp := doJSON(t, "GET", base+"/campaigns/"+info.ID, nil, &got); resp.StatusCode != 200 {
		t.Fatalf("get: %d", resp.StatusCode)
	}

	// Wait for progress through the HTTP surface only.
	deadline := 30 * time.Second / time.Millisecond
	var stats CampaignStats
	for i := time.Duration(0); ; i++ {
		doJSON(t, "GET", base+"/campaigns/"+info.ID+"/stats", nil, &stats)
		if stats.Rounds > 0 {
			break
		}
		if i > deadline {
			t.Fatal("campaign never progressed")
		}
		time.Sleep(time.Millisecond)
	}
	if stats.Execs == 0 {
		t.Fatalf("progress with zero execs: %+v", stats)
	}

	// Pause, resume.
	var paused Info
	if resp := doJSON(t, "POST", base+"/campaigns/"+info.ID+"/pause", nil, &paused); resp.StatusCode != 200 {
		t.Fatalf("pause: %d", resp.StatusCode)
	}
	if paused.State != StatePaused {
		t.Fatalf("pause ack state %s", paused.State)
	}
	var resumed Info
	if resp := doJSON(t, "POST", base+"/campaigns/"+info.ID+"/resume", nil, &resumed); resp.StatusCode != 200 {
		t.Fatalf("resume: %d", resp.StatusCode)
	}

	// Observability endpoints. Event content only exists when telemetry is
	// compiled in (the bigmapnotel build serves empty logs).
	var events []EventRecord
	doJSON(t, "GET", base+"/campaigns/"+info.ID+"/events", nil, &events)
	if telemetry.New() != nil {
		seen := map[string]bool{}
		for _, e := range events {
			seen[e.Name] = true
		}
		for _, want := range []string{"paused", "resumed"} {
			if !seen[want] {
				t.Errorf("event log missing %q: have %v", want, seen)
			}
		}
	}
	var buckets []CrashBucket
	doJSON(t, "GET", base+"/campaigns/"+info.ID+"/crashes", nil, &buckets)

	metrics, err := http.Get(base + "/campaigns/" + info.ID + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	if metrics.StatusCode == 200 && !strings.Contains(string(body), "fuzz") {
		t.Errorf("campaign metrics look empty: %.120s", body)
	}

	var ds DaemonStats
	doJSON(t, "GET", base+"/stats", nil, &ds)
	if ds.Workers != 1 || len(ds.Campaigns) == 0 {
		t.Fatalf("daemon stats: %+v", ds)
	}

	// Cancel; further transitions conflict.
	var cancelled Info
	if resp := doJSON(t, "POST", base+"/campaigns/"+info.ID+"/cancel", nil, &cancelled); resp.StatusCode != 200 {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	if cancelled.State != StateCancelled {
		t.Fatalf("cancel ack state %s", cancelled.State)
	}
	var er ErrorResponse
	if resp := doJSON(t, "POST", base+"/campaigns/"+info.ID+"/resume", nil, &er); resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume after cancel: %d, want 409", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.TenantQuota = 1
	cfg.Chaos = false
	d, srv := httpDaemon(t, cfg)
	base := srv.URL

	// Malformed and invalid submissions: 400.
	resp, err := http.Post(base+"/campaigns", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d, want 400", resp.StatusCode)
	}
	var er ErrorResponse
	if resp := doJSON(t, "POST", base+"/campaigns", SubmitRequest{Spec: Spec{Bench: "nope", Rounds: 1}}, &er); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d, want 400", resp.StatusCode)
	}
	if er.Error == "" {
		t.Fatal("error response has empty message")
	}

	// Unknown campaign: 404.
	if resp := doJSON(t, "GET", base+"/campaigns/c424242", nil, &er); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: %d, want 404", resp.StatusCode)
	}

	// Chaos endpoint hidden when disabled: 404.
	var info Info
	doJSON(t, "POST", base+"/campaigns", SubmitRequest{Tenant: "acme", Spec: testSpec(1 << 18)}, &info)
	if resp := doJSON(t, "POST", base+"/campaigns/"+info.ID+"/kill", nil, &er); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("kill without chaos: %d, want 404", resp.StatusCode)
	}

	// Quota exceeded: 429 with a Retry-After hint, while the admitted
	// campaign keeps running.
	resp = doJSON(t, "POST", base+"/campaigns", SubmitRequest{Tenant: "acme", Spec: testSpec(2)}, &er)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over quota: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	var stats CampaignStats
	for i := 0; ; i++ {
		doJSON(t, "GET", base+fmt.Sprintf("/campaigns/%s/stats", info.ID), nil, &stats)
		if stats.Rounds > 0 {
			break
		}
		if i > 30000 {
			t.Fatal("admitted campaign starved while daemon shed load")
		}
		time.Sleep(time.Millisecond)
	}

	// Draining: healthz and submissions answer 503.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	resp = doJSON(t, "POST", base+"/campaigns", SubmitRequest{Tenant: "zed", Spec: testSpec(2)}, &er)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", hresp.StatusCode)
	}
}
