package serve

import (
	"net/http/httptest"
	"testing"

	"github.com/bigmap/bigmap/internal/corpusd"
)

// TestCampaignSyncsThroughCorpusService runs a daemon with CorpusURL pointed
// at a real corpusd behind HTTP: the campaign must attach, push its corpus
// and coverage through the service, and still finish normally.
func TestCampaignSyncsThroughCorpusService(t *testing.T) {
	store, err := corpusd.New("", nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	cfg := testConfig(t.TempDir())
	cfg.CorpusURL = srv.URL
	d := openTest(t, cfg)
	spec := testSpec(4)
	spec.Instances = 2
	info := submit(t, d, "acme", spec)
	waitFor(t, d, info.ID, "finished", func(i *Info) bool { return i.State == StateFinished })

	events, err := d.Events(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	attached := false
	for _, ev := range events {
		if ev.Name == "corpus_attached" {
			attached = true
		}
		if ev.Name == "sync_error" {
			t.Errorf("sync error against a live service: %s", ev.Detail)
		}
	}
	if !attached {
		t.Fatal("no corpus_attached event")
	}

	st, err := store.Stats(info.ID)
	if err != nil {
		t.Fatalf("service has no campaign %s: %v", info.ID, err)
	}
	if st.Workers != 2 {
		t.Errorf("service workers = %d, want 2", st.Workers)
	}
	if st.Batches == 0 || st.Inputs == 0 || st.UnionDiscovered == 0 {
		t.Errorf("service saw no traffic: %+v", st)
	}
}

// TestCorpusServiceUnreachableDegrades pins the overlay contract: a dead
// corpus URL must not fail submissions — the campaign runs local-only with a
// corpus_unreachable event.
func TestCorpusServiceUnreachableDegrades(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.CorpusURL = "http://127.0.0.1:1" // nothing listens on port 1
	d := openTest(t, cfg)
	info := submit(t, d, "acme", testSpec(2))
	waitFor(t, d, info.ID, "finished", func(i *Info) bool { return i.State == StateFinished })

	events, err := d.Events(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	unreachable := false
	for _, ev := range events {
		if ev.Name == "corpus_unreachable" {
			unreachable = true
		}
	}
	if !unreachable {
		t.Fatal("no corpus_unreachable event")
	}
}
