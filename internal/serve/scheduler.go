package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/bigmap/bigmap/internal/crash"
)

// worker is one pool goroutine: pop a runnable campaign, run it for a
// quantum of rounds, hand it back. Exits on drain or close.
func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		c := d.next()
		if c == nil {
			return
		}
		d.runQuantum(c)
	}
}

// next blocks until a campaign is runnable or the daemon is shutting down.
// Popping marks the campaign running; "running" is an in-memory state only —
// on disk the campaign stays queued, so a kill -9 mid-round recovers by
// requeueing it, which is exactly the right outcome.
func (d *Daemon) next() *campaign {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed || d.draining {
			return nil
		}
		if c := d.popLocked(); c != nil {
			c.state = StateRunning
			d.updateGaugesLocked()
			return c
		}
		d.cond.Wait()
	}
}

// popLocked implements fair-share scheduling: tenants take turns in ring
// order, each contributing the head of its FIFO. Entries whose campaign was
// paused or cancelled while waiting are dropped lazily here, and tenants
// whose queues empty out leave the ring. Caller holds mu.
func (d *Daemon) popLocked() *campaign {
	for len(d.ring) > 0 {
		if d.rrNext >= len(d.ring) {
			d.rrNext = 0
		}
		tenant := d.ring[d.rrNext]
		q := d.queues[tenant]
		for len(q) > 0 && (q[0].state != StateQueued || !q[0].inQueue) {
			q[0].inQueue = false
			q = q[1:]
		}
		if len(q) == 0 {
			delete(d.queues, tenant)
			d.ring = append(d.ring[:d.rrNext], d.ring[d.rrNext+1:]...)
			continue
		}
		c := q[0]
		d.queues[tenant] = q[1:]
		c.inQueue = false
		d.rrNext++
		return c
	}
	return nil
}

// enqueueLocked makes a campaign runnable, registering its tenant in the
// round-robin ring on first use. Caller holds mu.
func (d *Daemon) enqueueLocked(c *campaign) {
	c.state = StateQueued
	if c.inQueue {
		return
	}
	c.inQueue = true
	if _, ok := d.queues[c.tenant]; !ok {
		d.ring = append(d.ring, c.tenant)
	}
	d.queues[c.tenant] = append(d.queues[c.tenant], c)
	d.updateGaugesLocked()
	d.cond.Signal()
}

// runQuantum executes up to QuantumRounds sync rounds of one campaign,
// honouring control requests and the checkpoint cadence at every round
// boundary, then either retires the campaign or hands it back to the queue.
func (d *Daemon) runQuantum(c *campaign) {
	if c.runtime == nil {
		if err := d.materialize(c); err != nil {
			d.failNow(c, fmt.Errorf("materialize: %w", err))
			return
		}
	}
	for q := 0; q < d.cfg.QuantumRounds; q++ {
		if !d.control(c) {
			return
		}
		if err := c.runtime.RunRounds(1); err != nil {
			d.workerCrashed(c, err)
			return
		}
		d.mu.Lock()
		c.rounds++
		rounds := c.rounds
		chkDue := rounds-c.chkRounds >= d.cfg.CheckpointEvery
		done := rounds >= c.spec.Rounds
		d.mu.Unlock()
		if done {
			d.finishNow(c)
			return
		}
		if chkDue {
			if err := d.checkpointNow(c, rounds); err != nil {
				// The retrying writer already exhausted its budget; treat
				// unwritable state like a worker crash so the circuit
				// breaker bounds how long a broken disk is hammered.
				d.workerCrashed(c, err)
				return
			}
		}
	}
	d.noteProgress(c)
	d.mu.Lock()
	if d.closed {
		c.runtime = nil
		d.mu.Unlock()
		return
	}
	if d.draining {
		d.mu.Unlock()
		d.pauseNow(c)
		return
	}
	d.enqueueLocked(c)
	d.mu.Unlock()
}

// control consumes any pending control request at a round boundary and acts
// on it. Returns false when the worker must stop executing this campaign.
func (d *Daemon) control(c *campaign) bool {
	d.mu.Lock()
	closed, draining := d.closed, d.draining
	kill, cancel, pause := c.wantKill, c.wantCancel, c.wantPause
	c.wantKill, c.wantCancel, c.wantPause = false, false, false
	d.mu.Unlock()
	switch {
	case closed:
		// Hard stop: abandon without checkpointing, like a real kill -9.
		c.runtime = nil
		return false
	case kill:
		d.workerCrashed(c, errors.New("chaos: worker killed by request"))
		return false
	case cancel:
		d.cancelNow(c)
		return false
	case draining || pause:
		d.pauseNow(c)
		return false
	}
	return true
}

// materialize rebuilds the campaign runtime from the newest on-disk
// checkpoint (the generated target program is cached across rebuilds — it is
// a pure function of the spec). Rounds roll back to what the checkpoint
// covers; the split-invariance of RunRounds makes re-running the difference
// reproduce the lost state bit for bit.
func (d *Daemon) materialize(c *campaign) error {
	if c.prog == nil {
		prog, err := c.spec.buildProgram()
		if err != nil {
			return err
		}
		c.prog = prog
	}
	cs, rounds, err := d.store.loadCheckpoint(c.id)
	if err != nil {
		return err
	}
	rt, err := c.spec.resumeCampaign(c.prog, cs, c.reg, d.corpusSyncer(c))
	if err != nil {
		return err
	}
	c.runtime = rt
	d.mu.Lock()
	c.rounds = rounds
	c.chkRounds = rounds
	d.mu.Unlock()
	c.reg.Event("resumed_from_checkpoint", fmt.Sprintf("round %d", rounds))
	return nil
}

// checkpointNow persists the runtime state as covering the given round
// count.
func (d *Daemon) checkpointNow(c *campaign, rounds int) error {
	if err := d.store.saveCheckpoint(c.id, rounds, c.runtime.Snapshot()); err != nil {
		return err
	}
	d.mu.Lock()
	c.chkRounds = rounds
	d.mu.Unlock()
	c.reg.Event("checkpoint_saved", fmt.Sprintf("round %d", rounds))
	return nil
}

// noteProgress refreshes the campaign's cached stats, crash buckets and
// progress events from the (worker-owned) runtime. Runs only at quantum
// boundaries so the read endpoints never touch a running round.
func (d *Daemon) noteProgress(c *campaign) {
	rep := c.runtime.Report()
	d.mu.Lock()
	rounds := c.rounds
	prev := c.stats
	d.mu.Unlock()
	st := statsFromReport(rounds, rep)

	union := crash.NewDeduper()
	for _, f := range c.runtime.Instances() {
		union.Merge(f.Crashes())
	}
	buckets := bucketsFromRecords(union.Records())

	prevEdges, prevUnique, prevFailed := 0, 0, 0
	if prev != nil {
		prevEdges, prevUnique, prevFailed = prev.Edges, prev.UniqueCrashes, prev.FailedInstances
	}
	if st.Edges > prevEdges {
		c.reg.Event("new_coverage", fmt.Sprintf("%d edges (+%d) at round %d", st.Edges, st.Edges-prevEdges, rounds))
	}
	if st.UniqueCrashes > prevUnique {
		c.reg.Event("new_crash", fmt.Sprintf("%d unique buckets (+%d) at round %d", st.UniqueCrashes, st.UniqueCrashes-prevUnique, rounds))
	}
	if st.FailedInstances > prevFailed {
		for _, f := range rep.Failures {
			c.reg.Event("instance_failed", fmt.Sprintf("instance %d after %d restarts: %v", f.Instance, f.Restarts, f.Err))
		}
	}

	d.mu.Lock()
	c.stats = st
	c.crashes = buckets
	d.mu.Unlock()
}

// finishNow retires a campaign that has completed its round budget: final
// stats, final checkpoint, terminal state.
func (d *Daemon) finishNow(c *campaign) {
	d.noteProgress(c)
	d.mu.Lock()
	rounds := c.rounds
	d.mu.Unlock()
	if err := d.checkpointNow(c, rounds); err != nil {
		c.reg.Event("checkpoint_error", err.Error())
	}
	d.mu.Lock()
	c.state = StateFinished
	c.runtime = nil
	m := c.metaLocked()
	d.updateGaugesLocked()
	d.mu.Unlock()
	if err := d.writeMeta(m); err != nil {
		c.reg.Event("meta_error", err.Error())
	}
	c.reg.Event("finished", fmt.Sprintf("%d rounds complete", rounds))
	d.telFinished.Inc()
	d.reg.Event("finished", c.id)
}

// pauseNow takes a last-gasp checkpoint and parks the campaign. Used for
// operator pauses and for drain; either way the on-disk state is complete
// the moment this returns, so a subsequent crash or restart loses nothing.
func (d *Daemon) pauseNow(c *campaign) {
	d.noteProgress(c)
	d.mu.Lock()
	rounds := c.rounds
	d.mu.Unlock()
	if err := d.checkpointNow(c, rounds); err != nil {
		// Could not persist the frontier: roll the round count back to the
		// newest durable checkpoint so the public view never promises state
		// the disk does not hold.
		c.reg.Event("checkpoint_error", err.Error())
		d.mu.Lock()
		c.rounds = c.chkRounds
		rounds = c.rounds
		d.mu.Unlock()
	}
	d.mu.Lock()
	// A cancel can slip in while we were checkpointing a parked campaign;
	// never demote a terminal state back to paused.
	if !c.state.Terminal() {
		c.state = StatePaused
	}
	c.runtime = nil
	m := c.metaLocked()
	d.updateGaugesLocked()
	d.mu.Unlock()
	if err := d.writeMeta(m); err != nil {
		c.reg.Event("meta_error", err.Error())
	}
	c.reg.Event("paused", fmt.Sprintf("at round %d", rounds))
}

// cancelNow retires a cancelled campaign.
func (d *Daemon) cancelNow(c *campaign) {
	d.noteProgress(c)
	d.mu.Lock()
	c.state = StateCancelled
	c.runtime = nil
	m := c.metaLocked()
	d.updateGaugesLocked()
	d.mu.Unlock()
	if err := d.writeMeta(m); err != nil {
		c.reg.Event("meta_error", err.Error())
	}
	c.reg.Event("cancelled", "cancelled at round boundary")
}

// failNow retires a campaign whose crash budget is spent (or that cannot be
// materialized at all).
func (d *Daemon) failNow(c *campaign, cause error) {
	d.mu.Lock()
	c.state = StateFailed
	c.errText = cause.Error()
	c.runtime = nil
	m := c.metaLocked()
	d.updateGaugesLocked()
	d.mu.Unlock()
	if err := d.writeMeta(m); err != nil {
		c.reg.Event("meta_error", err.Error())
	}
	c.reg.Event("failed", cause.Error())
	d.reg.Event("campaign_failed", fmt.Sprintf("%s: %v", c.id, cause))
}

// workerCrashed handles a worker dying under a campaign (a RunRounds error,
// an unwritable checkpoint, or the chaos kill): uncheckpointed rounds are
// rolled back, the restart is charged against the circuit breaker, and the
// campaign is requeued after an exponential backoff with deterministic
// jitter — or failed once the budget is spent.
func (d *Daemon) workerCrashed(c *campaign, cause error) {
	d.telRestarts.Inc()
	d.mu.Lock()
	c.runtime = nil
	c.rounds = c.chkRounds
	c.restarts++
	restarts := c.restarts
	d.mu.Unlock()
	c.reg.Event("worker_crashed", fmt.Sprintf("restart %d/%d: %v", restarts, d.cfg.MaxRestarts, cause))
	if restarts > d.cfg.MaxRestarts {
		d.failNow(c, fmt.Errorf("circuit breaker: %d worker crashes, last: %w", restarts, cause))
		return
	}
	base := d.cfg.RestartBackoff << (restarts - 1)
	d.mu.Lock()
	delay := base + time.Duration(d.jrng.Uint64()%(uint64(base)/2+1))
	// Queued-but-not-enqueued: runnable once the backoff elapses. Persisted
	// so a kill -9 during the backoff still counts the restart and the next
	// daemon requeues the campaign immediately.
	c.state = StateQueued
	m := c.metaLocked()
	d.mu.Unlock()
	if err := d.writeMeta(m); err != nil {
		c.reg.Event("meta_error", err.Error())
	}
	d.reg.Event("backoff", fmt.Sprintf("%s requeue in %v (restart %d)", c.id, delay, restarts))
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-d.stopCh:
			return
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		if d.closed || d.draining || c.state != StateQueued || c.inQueue {
			return
		}
		d.enqueueLocked(c)
	}()
}

// Drain is the graceful-shutdown entry point (the daemon binary calls it on
// SIGTERM): stop accepting work, pause every queued campaign, let running
// campaigns pause with a last-gasp checkpoint at their next round boundary,
// and wait for the pool to go quiet. After a successful drain every
// non-terminal campaign is on disk as paused with a loadable checkpoint.
func (d *Daemon) Drain(ctx context.Context) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return fmt.Errorf("serve: daemon already closed")
	}
	first := !d.draining
	d.draining = true
	if !d.stopped {
		d.stopped = true
		close(d.stopCh)
	}
	d.cond.Broadcast()
	var metas []*meta
	var park []*campaign
	if first {
		for _, c := range d.campaigns {
			if c.state == StateQueued {
				c.inQueue = false
				if c.runtime != nil {
					// The campaign sits between quanta with boundary state
					// a worker left behind, possibly ahead of its newest
					// checkpoint. Clearing the queues below orphans it from
					// every worker, so this goroutine now owns the runtime
					// and takes the last-gasp checkpoint outside the lock.
					// Flip the state before releasing mu: a concurrent
					// Pause must see an already-paused campaign, or it
					// would call pauseNow on the same runtime this
					// goroutine is about to park.
					c.state = StatePaused
					park = append(park, c)
				} else {
					c.state = StatePaused
					metas = append(metas, c.metaLocked())
				}
			}
		}
		d.queues = make(map[string][]*campaign)
		d.ring = nil
		d.updateGaugesLocked()
	}
	d.mu.Unlock()
	if first {
		d.reg.Event("draining", fmt.Sprintf("%d queued campaigns paused", len(metas)+len(park)))
	}
	var firstErr error
	for _, m := range metas {
		if err := d.writeMeta(m); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, c := range park {
		d.pauseNow(c)
	}
	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return firstErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close hard-stops the daemon: workers abandon their campaigns at the next
// round boundary without checkpointing or metadata writes. This is the
// kill -9 of the in-process world — tests use it to prove recovery — and
// the correct final step after a successful Drain.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	if !d.stopped {
		d.stopped = true
		close(d.stopCh)
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
	return nil
}
