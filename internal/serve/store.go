package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/bigmap/bigmap/internal/checkpoint"
)

// store is the daemon's on-disk state: one directory per campaign holding a
// JSON metadata document and round-stamped campaign checkpoints.
//
//	<root>/campaigns/<id>/meta.json
//	<root>/campaigns/<id>/chk-00000042.bm
//
// The round count lives in the checkpoint's file name, not in meta.json, so
// the two files never need a cross-file atomic commit: a checkpoint is
// self-describing the moment its rename lands, and a crash between writing
// it and updating the metadata loses nothing — recovery always trusts the
// newest checkpoint that decodes. Metadata and checkpoints are both written
// through the checkpoint package's atomic temp+fsync+rename+dirsync path.
type store struct {
	root string
	// saveAttempts/saveBackoff parameterize checkpoint.SaveRetry for every
	// write — a daemon checkpoint is a last line of defense, so transient
	// disk trouble is retried instead of surfaced immediately.
	saveAttempts int
	saveBackoff  time.Duration
}

// meta is the persisted per-campaign metadata document.
type meta struct {
	ID       string         `json:"id"`
	Tenant   string         `json:"tenant"`
	State    State          `json:"state"`
	Spec     Spec           `json:"spec"`
	Restarts int            `json:"restarts,omitempty"`
	Error    string         `json:"error,omitempty"`
	Stats    *CampaignStats `json:"stats,omitempty"`
}

const chkPrefix = "chk-"

func newStore(root string, attempts int, backoff time.Duration) (*store, error) {
	st := &store{root: root, saveAttempts: attempts, saveBackoff: backoff}
	if err := os.MkdirAll(st.campaignsRoot(), 0o755); err != nil {
		return nil, fmt.Errorf("serve: init state dir: %w", err)
	}
	return st, nil
}

func (st *store) campaignsRoot() string { return filepath.Join(st.root, "campaigns") }

func (st *store) dir(id string) string { return filepath.Join(st.campaignsRoot(), id) }

func (st *store) metaPath(id string) string { return filepath.Join(st.dir(id), "meta.json") }

func (st *store) chkPath(id string, rounds int) string {
	return filepath.Join(st.dir(id), fmt.Sprintf("%s%08d.bm", chkPrefix, rounds))
}

// create makes the campaign directory, refusing to adopt one that already
// exists: campaign IDs are never re-minted (recovery reserves every on-disk
// ID, loadable or not), so an existing directory is stale state — reusing it
// could hand a new campaign another campaign's leftover checkpoints.
func (st *store) create(id string) error {
	if err := os.Mkdir(st.dir(id), 0o755); err != nil {
		return fmt.Errorf("serve: create campaign dir: %w", err)
	}
	return nil
}

// remove deletes a campaign directory; Submit uses it to roll back a
// creation that could not be completed. Best-effort — a leftover directory
// costs a recovery_skipped event, not wrong state.
func (st *store) remove(id string) {
	os.RemoveAll(st.dir(id)) //bigmap:err-ok best-effort rollback; a leftover directory costs a recovery_skipped event, not wrong state
}

// saveMeta atomically persists the metadata document.
func (st *store) saveMeta(m *meta) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encode meta: %w", err)
	}
	if err := checkpoint.SaveRetry(st.metaPath(m.ID), data, st.saveAttempts, st.saveBackoff); err != nil {
		return fmt.Errorf("serve: save meta %s: %w", m.ID, err)
	}
	return nil
}

// loadMeta reads and validates a campaign's metadata.
func (st *store) loadMeta(id string) (*meta, error) {
	data, err := os.ReadFile(st.metaPath(id))
	if err != nil {
		return nil, fmt.Errorf("serve: load meta %s: %w", id, err)
	}
	var m meta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("serve: decode meta %s: %w", id, err)
	}
	if m.ID != id {
		return nil, fmt.Errorf("serve: meta %s names id %q", id, m.ID)
	}
	if !m.State.valid() {
		return nil, fmt.Errorf("serve: meta %s has unknown state %q", id, m.State)
	}
	return &m, nil
}

// list returns every campaign ID present on disk, sorted.
func (st *store) list() ([]string, error) {
	entries, err := os.ReadDir(st.campaignsRoot())
	if err != nil {
		return nil, fmt.Errorf("serve: list campaigns: %w", err)
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// saveCheckpoint persists the campaign state covering the given round count
// and prunes older checkpoints, keeping the newest two — the freshly
// written one plus one predecessor as insurance against a corrupt write
// that somehow survived the CRC.
func (st *store) saveCheckpoint(id string, rounds int, cs *checkpoint.CampaignState) error {
	data := checkpoint.EncodeCampaign(cs)
	if err := checkpoint.SaveRetry(st.chkPath(id, rounds), data, st.saveAttempts, st.saveBackoff); err != nil {
		return fmt.Errorf("serve: save checkpoint %s@%d: %w", id, rounds, err)
	}
	st.pruneCheckpoints(id, 2)
	return nil
}

// checkpointRounds lists the round stamps of the campaign's on-disk
// checkpoints, newest first. Files that do not parse are ignored.
func (st *store) checkpointRounds(id string) []int {
	entries, err := os.ReadDir(st.dir(id))
	if err != nil {
		return nil
	}
	var rounds []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, chkPrefix) || !strings.HasSuffix(name, ".bm") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, chkPrefix), ".bm"))
		if err != nil || n < 0 {
			continue
		}
		rounds = append(rounds, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(rounds)))
	return rounds
}

// loadCheckpoint returns the newest checkpoint that decodes, with the round
// count it covers. A corrupt newest file falls back to its predecessor —
// losing one cadence of work beats losing the campaign.
func (st *store) loadCheckpoint(id string) (*checkpoint.CampaignState, int, error) {
	var firstErr error
	for _, rounds := range st.checkpointRounds(id) {
		cs, err := checkpoint.LoadCampaign(st.chkPath(id, rounds))
		if err == nil {
			return cs, rounds, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, 0, fmt.Errorf("serve: no loadable checkpoint for %s: %w", id, firstErr)
	}
	return nil, 0, fmt.Errorf("serve: no checkpoint on disk for %s", id)
}

// pruneCheckpoints removes all but the newest keep checkpoints.
func (st *store) pruneCheckpoints(id string, keep int) {
	rounds := st.checkpointRounds(id)
	for i := keep; i < len(rounds); i++ {
		// Best-effort: a stale checkpoint is wasted disk, not wrong state.
		os.Remove(st.chkPath(id, rounds[i])) //bigmap:err-ok pruning is advisory; the newest checkpoints stay valid either way
	}
}
