package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/bigmap/bigmap/internal/telemetry"
)

// maxBodyBytes bounds request bodies; campaign specs are tiny.
const maxBodyBytes = 1 << 20

// DaemonStats is the daemon-level summary served by GET /stats.
type DaemonStats struct {
	// Campaigns counts campaigns by lifecycle state.
	Campaigns map[State]int `json:"campaigns"`
	// QueueDepth is the number of campaigns waiting for a worker.
	QueueDepth int `json:"queue_depth"`
	// Workers is the configured pool size.
	Workers int `json:"workers"`
	// Draining reports a shutdown in progress.
	Draining bool `json:"draining"`
}

// DaemonStats renders the daemon-level summary.
func (d *Daemon) DaemonStats() DaemonStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	ds := DaemonStats{
		Campaigns: make(map[State]int),
		Workers:   d.cfg.Workers,
		Draining:  d.draining,
	}
	for _, c := range d.campaigns {
		ds.Campaigns[c.state]++
	}
	for _, q := range d.queues {
		ds.QueueDepth += len(q)
	}
	return ds
}

// Handler returns the daemon's HTTP API:
//
//	GET  /healthz                   liveness (200, or 503 while draining)
//	GET  /stats                     daemon summary (DaemonStats)
//	GET  /metrics                   daemon Prometheus metrics
//	POST /campaigns                 submit (SubmitRequest -> Info)
//	GET  /campaigns[?tenant=t]      list
//	GET  /campaigns/{id}            one campaign
//	POST /campaigns/{id}/pause      pause at next round boundary
//	POST /campaigns/{id}/resume     requeue a paused campaign
//	POST /campaigns/{id}/cancel     terminate
//	POST /campaigns/{id}/kill       chaos: crash the owning worker (Config.Chaos)
//	GET  /campaigns/{id}/stats      cached progress snapshot
//	GET  /campaigns/{id}/crashes    deduplicated crash buckets
//	GET  /campaigns/{id}/events     campaign event log
//	GET  /campaigns/{id}/metrics    per-campaign Prometheus metrics
//
// Every request carries a Config.RequestTimeout deadline on its context.
// Errors map to JSON ErrorResponse bodies: 400 bad spec, 404 unknown
// campaign, 409 illegal transition, 429 quota exceeded (with Retry-After),
// 503 draining.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /stats", d.handleDaemonStats)
	mux.HandleFunc("GET /metrics", d.handleDaemonMetrics)
	mux.HandleFunc("POST /campaigns", d.handleSubmit)
	mux.HandleFunc("GET /campaigns", d.handleList)
	mux.HandleFunc("GET /campaigns/{id}", d.handleGet)
	mux.HandleFunc("POST /campaigns/{id}/pause", d.handlePause)
	mux.HandleFunc("POST /campaigns/{id}/resume", d.handleResume)
	mux.HandleFunc("POST /campaigns/{id}/cancel", d.handleCancel)
	mux.HandleFunc("POST /campaigns/{id}/kill", d.handleKill)
	mux.HandleFunc("GET /campaigns/{id}/stats", d.handleStats)
	mux.HandleFunc("GET /campaigns/{id}/crashes", d.handleCrashes)
	mux.HandleFunc("GET /campaigns/{id}/events", d.handleEvents)
	mux.HandleFunc("GET /campaigns/{id}/metrics", d.handleCampaignMetrics)
	return d.withDeadline(mux)
}

// withDeadline attaches the configured request deadline to every context, so
// a stuck transition acknowledgement cannot pin a client connection forever.
func (d *Daemon) withDeadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	draining := d.draining || d.closed
	d.mu.Unlock()
	if draining {
		writeErr(w, ErrDraining)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (d *Daemon) handleDaemonStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, d.DaemonStats())
}

func (d *Daemon) handleDaemonMetrics(w http.ResponseWriter, _ *http.Request) {
	writeMetrics(w, d.reg)
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, specErrf("decode request: %v", err))
		return
	}
	info, err := d.Submit(r.Context(), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/campaigns/"+info.ID)
	writeJSON(w, http.StatusCreated, info)
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.List(r.URL.Query().Get("tenant")))
}

func (d *Daemon) handleGet(w http.ResponseWriter, r *http.Request) {
	info, err := d.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (d *Daemon) handlePause(w http.ResponseWriter, r *http.Request) {
	d.transition(w, r, d.Pause)
}

func (d *Daemon) handleResume(w http.ResponseWriter, r *http.Request) {
	d.transition(w, r, d.Resume)
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	d.transition(w, r, d.Cancel)
}

func (d *Daemon) handleKill(w http.ResponseWriter, r *http.Request) {
	d.transition(w, r, func(_ context.Context, id string) (*Info, error) {
		return d.Kill(id)
	})
}

// transition runs one lifecycle operation and renders the resulting view.
func (d *Daemon) transition(w http.ResponseWriter, r *http.Request,
	op func(context.Context, string) (*Info, error)) {
	info, err := op(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := d.Stats(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (d *Daemon) handleCrashes(w http.ResponseWriter, r *http.Request) {
	buckets, err := d.Crashes(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, buckets)
}

// handleEvents serves the campaign event log. The polling contract: each
// GET returns a snapshot of the most recent events (a fixed-capacity ring,
// currently 256 — older events are evicted, so this is a milestone feed,
// not a durable stream), oldest first, with monotonic at_ns timestamps
// measured from daemon start. There is no cursor parameter and no
// long-poll/SSE mode; clients poll and deduplicate by (at_ns, name,
// detail), which is unique in practice because at_ns has nanosecond
// resolution and events are cold-path. Events never carry campaign state —
// anything a client must not miss (state transitions, stats, crashes) has
// its own endpoint and is re-derivable there.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	evs, err := d.Events(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, evs)
}

func (d *Daemon) handleCampaignMetrics(w http.ResponseWriter, r *http.Request) {
	reg, err := d.Registry(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeMetrics(w, reg)
}

func writeMetrics(w http.ResponseWriter, reg *telemetry.Registry) {
	if reg == nil {
		http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.WritePrometheus(w, reg.Snapshot()) //bigmap:err-ok write error means the scraper hung up; nothing to do server-side
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) //bigmap:err-ok headers are already sent; an encode/write error means the client hung up
}

// writeErr maps a control-plane error to its HTTP shape.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var se *SpecError
	var oe *OverloadError
	switch {
	case errors.As(err, &se):
		code = http.StatusBadRequest
	case errors.As(err, &oe):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(oe.RetryAfter/time.Second)+1))
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		code = http.StatusConflict
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}
