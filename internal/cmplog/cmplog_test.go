package cmplog

import (
	"bytes"
	"testing"

	"github.com/bigmap/bigmap/internal/target"
)

// magicProgram gates a bonus region behind a 4-byte magic compare and a
// switch.
func magicProgram() *target.Program {
	return &target.Program{
		Name:     "cmplog",
		InputLen: 16,
		Funcs: []target.Func{{Blocks: []target.Block{
			{ID: 1, Cost: 1, Node: target.Node{Kind: target.KindCompareWord, Pos: 0, Val: 0x44434241, Width: 4, A: 1, B: 2}},
			{ID: 2, Cost: 1, Node: target.Node{Kind: target.KindJump, A: 2}},
			{ID: 3, Cost: 1, Node: target.Node{Kind: target.KindSwitch, Pos: 8, B: 4, Cases: []target.SwitchCase{
				{Value: 'p', Target: 3},
				{Value: 'q', Target: 4},
			}}},
			{ID: 4, Cost: 1, Node: target.Node{Kind: target.KindJump, A: 4}},
			{ID: 5, Cost: 1, Node: target.Node{Kind: target.KindReturn}},
		}}},
	}
}

func TestCollectReportsFailedCompares(t *testing.T) {
	c := NewCollector(magicProgram(), 0, 0)
	patches := c.Collect(make([]byte, 16))
	// The word compare fails (1 patch) and the switch falls through (2
	// case patches).
	if len(patches) != 3 {
		t.Fatalf("collected %d patches, want 3: %+v", len(patches), patches)
	}
	if patches[0].Pos != 0 || patches[0].Width != 4 || patches[0].Val != 0x44434241 {
		t.Errorf("word patch wrong: %+v", patches[0])
	}
	if patches[1].Pos != 8 || patches[1].Val != 'p' {
		t.Errorf("switch patch wrong: %+v", patches[1])
	}
}

func TestCollectStopsAtSolvedCompares(t *testing.T) {
	c := NewCollector(magicProgram(), 0, 0)
	// Input that already passes the magic compare: only the switch fails.
	in := []byte{'A', 'B', 'C', 'D', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	patches := c.Collect(in)
	if len(patches) != 2 {
		t.Fatalf("collected %d patches, want 2 (switch cases): %+v", len(patches), patches)
	}
}

func TestCollectDeduplicates(t *testing.T) {
	// A self-loop repeating the same failed compare must report it once.
	prog := &target.Program{
		Name:     "dup",
		InputLen: 8,
		Funcs: []target.Func{{Blocks: []target.Block{
			{ID: 1, Cost: 1, Node: target.Node{Kind: target.KindCompareByte, Pos: 0, Val: 'z', A: 1, B: 1}},
			{ID: 2, Cost: 1, Node: target.Node{Kind: target.KindCompareByte, Pos: 0, Val: 'z', A: 2, B: 2}},
			{ID: 3, Cost: 1, Node: target.Node{Kind: target.KindReturn}},
		}}},
	}
	c := NewCollector(prog, 0, 0)
	patches := c.Collect(make([]byte, 8))
	if len(patches) != 1 {
		t.Fatalf("collected %d patches, want 1 deduplicated: %+v", len(patches), patches)
	}
}

func TestCollectRespectsCap(t *testing.T) {
	blocks := make([]target.Block, 0, 40)
	for i := 0; i < 32; i++ {
		blocks = append(blocks, target.Block{
			ID: uint32(i + 1), Cost: 1,
			Node: target.Node{Kind: target.KindCompareByte, Pos: i % 8, Val: uint64(100 + i), A: i + 1, B: i + 1},
		})
	}
	blocks = append(blocks, target.Block{ID: 99, Cost: 1, Node: target.Node{Kind: target.KindReturn}})
	prog := &target.Program{Name: "cap", InputLen: 8, Funcs: []target.Func{{Blocks: blocks}}}

	c := NewCollector(prog, 0, 5)
	if got := len(c.Collect(make([]byte, 8))); got != 5 {
		t.Errorf("collected %d patches with cap 5", got)
	}
}

func TestApply(t *testing.T) {
	in := []byte{1, 2, 3, 4}
	out := Apply(in, Patch{Pos: 1, Val: 0xBBAA, Width: 2})
	if !bytes.Equal(out, []byte{1, 0xAA, 0xBB, 4}) {
		t.Errorf("Apply = %v", out)
	}
	// The original is untouched.
	if !bytes.Equal(in, []byte{1, 2, 3, 4}) {
		t.Error("Apply mutated its input")
	}
	// Patches past the end grow the input.
	out = Apply(in, Patch{Pos: 6, Val: 0xFF, Width: 1})
	if len(out) != 7 || out[6] != 0xFF || out[4] != 0 {
		t.Errorf("growing Apply = %v", out)
	}
}

func TestApplySolvesTheMagic(t *testing.T) {
	prog := magicProgram()
	c := NewCollector(prog, 0, 0)
	in := make([]byte, 16)
	patches := c.Collect(in)
	solved := Apply(in, patches[0])

	// After applying the word patch the compare passes: collecting again
	// must no longer report it.
	again := c.Collect(solved)
	for _, p := range again {
		if p.Pos == 0 && p.Width == 4 {
			t.Fatalf("magic compare still failing after patch: %+v", again)
		}
	}
}
