// Package cmplog implements RedQueen-style input-to-state mutation over the
// synthetic target's compare hook: run an input once while recording every
// failed comparison, then synthesize targeted mutants that patch the wanted
// operand bytes into the input at the compared position.
//
// This is the modern alternative to laf-intel for defeating magic-value
// roadblocks (the paper's related work cites CompareCoverage [34] as another
// source of map pressure; AFL++ ships both approaches). Where laf-intel
// multiplies edges so plain mutation gets incremental feedback, cmplog
// solves the comparison in one shot and leaves the map pressure unchanged —
// the two compose with BigMap equally well, and the roadblocks experiment in
// the bench harness compares all three.
//
// Caveat recorded in DESIGN.md: the synthetic IR exposes the exact input
// position of every comparison, so this package gets perfect "colorization"
// for free; real RedQueen must infer positions by tainting/patterns. The
// strength of the technique is therefore an upper bound here.
package cmplog

import (
	"github.com/bigmap/bigmap/internal/target"
)

// DefaultMaxTargets bounds how many failed comparisons one collection run
// keeps (deduplicated by position+value).
const DefaultMaxTargets = 256

// Patch is one input-to-state candidate mutation: write Width bytes of Val
// (little-endian) at Pos.
type Patch struct {
	Pos   int
	Val   uint64
	Width int
}

// Collector gathers failed comparisons from executions. Not safe for
// concurrent use.
type Collector struct {
	interp *target.Interp
	budget uint64
	max    int
	seen   map[Patch]struct{}
	out    []Patch
}

// NewCollector creates a collector for prog. budget is the per-execution
// cycle budget (0 = 1<<22); maxTargets caps the collected set (0 =
// DefaultMaxTargets).
func NewCollector(prog *target.Program, budget uint64, maxTargets int) *Collector {
	if budget == 0 {
		budget = 1 << 22
	}
	if maxTargets == 0 {
		maxTargets = DefaultMaxTargets
	}
	c := &Collector{
		interp: target.NewInterp(prog),
		budget: budget,
		max:    maxTargets,
		seen:   make(map[Patch]struct{}),
	}
	return c
}

// Collect replays input and returns the deduplicated failed comparisons, in
// first-observed order. The slice is reused by the next Collect call.
func (c *Collector) Collect(input []byte) []Patch {
	c.out = c.out[:0]
	clear(c.seen)
	c.interp.SetCompareHook(func(cmp target.Compare) {
		if len(c.out) >= c.max {
			return
		}
		p := Patch{Pos: cmp.Pos, Val: cmp.Val, Width: cmp.Width}
		if _, dup := c.seen[p]; dup {
			return
		}
		c.seen[p] = struct{}{}
		c.out = append(c.out, p) //bigmap:alloc-ok cmplog harvest is capped at max patches and runs in the dedicated cmplog stage, not the havoc exec loop
	})
	c.interp.Run(input, target.NopTracer{}, c.budget)
	c.interp.SetCompareHook(nil)
	return c.out
}

// Apply materializes a patch as a new input. The input grows if the patch
// extends past its end (a comparison read zero-padding there).
func Apply(input []byte, p Patch) []byte {
	n := len(input)
	if p.Pos+p.Width > n {
		n = p.Pos + p.Width
	}
	out := make([]byte, n)
	copy(out, input)
	for w := 0; w < p.Width; w++ {
		out[p.Pos+w] = byte(p.Val >> (8 * w))
	}
	return out
}
