package selffuzz

import (
	"fmt"

	"github.com/bigmap/bigmap/internal/collision"
	"github.com/bigmap/bigmap/internal/core"
)

// satModel is the reference model for a slot-capped BigMap: an ordered
// first-sight key list, per-key saturating hit counters, and an explicit
// dropped-occurrence counter. It is deliberately the dumbest possible
// implementation of the documented contract.
type satModel struct {
	cap     int
	order   []uint32
	slot    map[uint32]int
	counts  []uint16 // per assigned slot, saturating at 255
	dropped uint64
}

func newSatModel(slotCap int) *satModel {
	return &satModel{cap: slotCap, slot: map[uint32]int{}}
}

func (m *satModel) add(key uint32) {
	s, ok := m.slot[key]
	if !ok {
		if len(m.order) == m.cap {
			m.dropped++
			return
		}
		s = len(m.order)
		m.slot[key] = s
		m.order = append(m.order, key)
		m.counts = append(m.counts, 0)
	}
	if m.counts[s] < 255 {
		m.counts[s]++
	}
}

func (m *satModel) nonZero() int {
	n := 0
	for _, c := range m.counts {
		if c > 0 {
			n++
		}
	}
	return n
}

func (m *satModel) reset() {
	for i := range m.counts {
		m.counts[i] = 0
	}
}

// RunSaturationModel drives a slot-capped BigMap to (and far past) the
// MapSaturated/DroppedKeys boundary with an adversarial key sequence and
// checks it slot-for-slot against the reference model: first-sight assignment
// order, saturating counters, the exact drop count (per occurrence, not per
// key), the Saturated() flip at used==cap, and the key<->slot bijection.
func RunSaturationModel(size, slotCap int, ops []Op) error {
	bm, err := core.NewBigMapSlots(size, slotCap)
	if err != nil {
		return err
	}
	// NewBigMapSlots clamps out-of-range caps to the full size; mirror it.
	model := newSatModel(bm.SlotCap())

	addAll := func(keys []uint32) {
		bm.AddBatch(keys)
		for _, k := range keys {
			model.add(k)
		}
	}
	check := func() error {
		if got, want := bm.UsedKeys(), len(model.order); got != want {
			return fmt.Errorf("used_key=%d, model=%d", got, want)
		}
		if got, want := bm.DroppedKeys(), model.dropped; got != want {
			return fmt.Errorf("dropped=%d, model=%d", got, want)
		}
		if got, want := bm.Saturated(), len(model.order) == model.cap; got != want {
			return fmt.Errorf("saturated=%t, model=%t (used=%d cap=%d)",
				got, want, bm.UsedKeys(), model.cap)
		}
		if got, want := bm.CountNonZero(), model.nonZero(); got != want {
			return fmt.Errorf("nonzero=%d, model=%d", got, want)
		}
		// Bijection: every model key sits in its first-sight slot, and the
		// reverse mapping agrees.
		for s, key := range model.order {
			if got := bm.SlotForKey(key); got != s {
				return fmt.Errorf("key %d in slot %d, model says %d", key, got, s)
			}
			k, ok := bm.KeyForSlot(s)
			if !ok || k != key {
				return fmt.Errorf("slot %d maps to key %d (ok=%t), model says %d", s, k, ok, key)
			}
		}
		// Saturating counters over the trace snapshot.
		trace := bm.Snapshot()
		for s, c := range model.counts {
			want := byte(c)
			if c > 255 {
				want = 255
			}
			if trace[s] != want {
				return fmt.Errorf("slot %d count %d, model %d", s, trace[s], want)
			}
		}
		return nil
	}

	for i, op := range ops {
		switch op.Code {
		case OpAdd:
			k := uint32(op.Key) & uint32(size-1)
			bm.Add(k)
			model.add(k)
		case OpAddBatch:
			keys := make([]uint32, len(op.Keys))
			for j, k := range op.Keys {
				keys[j] = uint32(k) & uint32(size-1)
			}
			addAll(keys)
		case OpColliding:
			addAll(collision.Colliding(size, int(op.N), int(op.Distinct), uint64(op.Seed)))
		case OpFlushMerged, OpFlushSplit:
			if err := check(); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
			bm.Classify()
			bm.Reset()
			model.reset()
		case OpSnapshot, OpRestore:
			// Slot assignments survive Reset by design; a reset here is the
			// closest map-level analogue and keeps the op set total.
			bm.Reset()
			model.reset()
		}
	}
	return check()
}
