package selffuzz

import (
	"bytes"
	"fmt"

	"github.com/bigmap/bigmap/internal/checkpoint"
)

// Corruption op codes — a second tiny total codec, this one describing byte
// surgery on an encoded checkpoint: bit flips, byte stores, truncations and
// region duplications, each positioned by a 2-byte operand taken modulo the
// current file length.
const (
	corrFlipBit byte = iota
	corrSetByte
	corrTruncate
	corrDuplicate
	numCorrOps
)

// maxCorrOps bounds the surgery per fuzz execution.
const maxCorrOps = 64

// applyCorruption decodes script as corruption ops and applies them to a
// copy of data.
func applyCorruption(data []byte, script []byte) []byte {
	out := append([]byte(nil), data...)
	for n := 0; len(script) > 0 && n < maxCorrOps; n++ {
		code := script[0] % numCorrOps
		script = script[1:]
		pos := int(readU16(&script))
		if len(out) == 0 && code != corrDuplicate {
			continue
		}
		switch code {
		case corrFlipBit:
			bit := pos % (len(out) * 8)
			out[bit/8] ^= 1 << (bit % 8)
		case corrSetByte:
			val := readU8(&script)
			out[pos%len(out)] = val
		case corrTruncate:
			out = out[:pos%(len(out)+1)]
		case corrDuplicate:
			if len(out) == 0 {
				continue
			}
			start := pos % len(out)
			ln := int(readU8(&script)) % (len(out) - start + 1)
			out = append(out, out[start:start+ln]...)
		}
	}
	return out
}

// sampleState builds a deterministic, fully populated FuzzerState whose every
// field depends on seed, so corruption lands on different payload regions
// across seeds (varint boundaries shift with the values).
func sampleState(seed uint64) *checkpoint.FuzzerState {
	x := seed
	next := func() uint64 { x = splitmix(x); return x }
	nb := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = byte(next())
		}
		return out
	}
	st := &checkpoint.FuzzerState{
		Scheme:      "bigmap",
		MapSize:     1 << (10 + seed%8),
		RNG:         [4]uint64{next(), next(), next(), next()},
		MutRNG:      [4]uint64{next(), next(), next(), next()},
		Execs:       next(),
		CyclesDone:  next() % (1 << 40),
		QueuePos:    next() % 64,
		VirginAll:   nb(int(16 + seed%64)),
		VirginCrash: nb(8),
		VirginHang:  nb(8),
		SlotKeys:    []uint32{uint32(next()), uint32(next()), uint32(next())},
		TopSlots:    []uint32{1, 2, 3},
		TopEntries:  []uint64{0, 1, next() % 8},
		Paths:       []checkpoint.PathFreq{{Hash: next(), Count: 1 + next()%9}},
		OpUsed:      []uint64{next() % 100, next() % 100},
		OpSuccess:   []uint64{next() % 50, next() % 50},
		OpPending:   []uint64{0, next() % 3},
	}
	for i := 0; i < int(1+seed%4); i++ {
		st.Entries = append(st.Entries, checkpoint.Entry{
			Input:     nb(int(1 + next()%24)),
			Cycles:    next() % (1 << 30),
			Touched:   []uint32{uint32(next() % 4096), uint32(next() % 4096)},
			PathHash:  next(),
			Depth:     int(next() % 12),
			FoundBy:   "havoc",
			Favored:   next()%2 == 0,
			WasFuzzed: next()%3 == 0,
			FuzzLevel: int(next() % 5),
		})
	}
	st.Crashes = append(st.Crashes, checkpoint.CrashRecord{
		Key: next(), Site: uint32(next() % 1024), StackDepth: int(next() % 6),
		Count: int(1 + next()%4), Input: nb(int(1 + next()%16)),
	})
	return st
}

// splitmix is SplitMix64 (duplicated from internal/collision to keep this
// package's dependencies one-way through public API only).
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hammingDistance counts differing bits between two byte strings of possibly
// different lengths (length delta counts as all-bits-differ via a large
// sentinel return).
func hammingDistance(a, b []byte) int {
	if len(a) != len(b) {
		return 1 << 30
	}
	d := 0
	for i := range a {
		x := a[i] ^ b[i]
		for x != 0 {
			d++
			x &= x - 1
		}
	}
	return d
}

// RunCheckpointCorruption encodes a seed-derived campaign state, performs
// script-driven byte surgery on the file, and checks the decoder's paranoia
// contract beyond the round-trip fuzz the codec already has:
//
//   - the decoder never panics (enforced by the fuzzing engine),
//   - an untouched file still decodes and round-trips,
//   - ANY single-bit corruption is rejected (CRC32 detects all 1-bit errors
//     — if this ever passes, someone removed or weakened the checksum),
//   - whatever the decoder does accept must re-encode and re-decode to the
//     same state (no half-parsed garbage escapes).
func RunCheckpointCorruption(seed uint64, script []byte) error {
	original := checkpoint.EncodeFuzzer(sampleState(seed))
	corrupted := applyCorruption(original, script)

	st, err := checkpoint.DecodeFuzzer(corrupted)
	if bytes.Equal(corrupted, original) {
		if err != nil {
			return fmt.Errorf("pristine checkpoint rejected: %w", err)
		}
	} else if hammingDistance(corrupted, original) == 1 {
		if err == nil {
			return fmt.Errorf("single-bit corruption accepted — CRC check is broken")
		}
		return nil
	}
	if err != nil {
		return nil // rejected corruption is the expected outcome
	}
	reencoded := checkpoint.EncodeFuzzer(st)
	again, err := checkpoint.DecodeFuzzer(reencoded)
	if err != nil {
		return fmt.Errorf("re-encode of accepted state does not decode: %w", err)
	}
	if !bytes.Equal(checkpoint.EncodeFuzzer(again), reencoded) {
		return fmt.Errorf("accepted state not stable under encode/decode")
	}
	return nil
}
