// Package seedcorpus writes Go native-fuzzing corpus files (the "go test
// fuzz v1" format that `go test` replays from testdata/fuzz/<FuzzTarget>/).
// The repo checks in seed corpora of known-hard inputs for every fuzz target;
// each owning package has an env-gated regeneration test that rebuilds its
// corpus through this writer, so the files stay reproducible instead of being
// opaque blobs.
package seedcorpus

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// header is the corpus file format marker the testing package expects.
const header = "go test fuzz v1\n"

// Entry encodes one corpus entry: the format header followed by one Go-syntax
// value line per fuzz argument, in declaration order. Supported argument
// types are the ones the repo's fuzz targets use: []byte, string, and the
// fixed-width/platform integers. Types must match the fuzz function's
// signature exactly or `go test` will reject the file.
func Entry(args ...any) ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(header)
	for i, arg := range args {
		switch v := arg.(type) {
		case []byte:
			fmt.Fprintf(&b, "[]byte(%s)\n", strconv.Quote(string(v)))
		case string:
			fmt.Fprintf(&b, "string(%s)\n", strconv.Quote(v))
		case int:
			fmt.Fprintf(&b, "int(%d)\n", v)
		case int64:
			fmt.Fprintf(&b, "int64(%d)\n", v)
		case uint32:
			fmt.Fprintf(&b, "uint32(%d)\n", v)
		case uint64:
			fmt.Fprintf(&b, "uint64(%d)\n", v)
		case bool:
			fmt.Fprintf(&b, "bool(%t)\n", v)
		default:
			return nil, fmt.Errorf("seedcorpus: unsupported argument %d type %T", i, arg)
		}
	}
	return b.Bytes(), nil
}

// WriteFile writes one corpus entry to dir/name, creating dir as needed.
// Conventionally dir is testdata/fuzz/<FuzzTargetName> inside the package
// that declares the target.
func WriteFile(dir, name string, args ...any) error {
	data, err := Entry(args...)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), data, 0o644)
}
