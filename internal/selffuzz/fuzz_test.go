package selffuzz

import (
	"testing"
)

// sizeFor maps an arbitrary selector onto the power-of-two map sizes the
// differential targets sweep. Small sizes keep per-exec cost low while still
// covering the word-kernel boundary cases (sub-word maps, odd word counts).
func sizeFor(sel uint64) int {
	sizes := []int{8, 64, 256, 1 << 10, 1 << 12, 1 << 16}
	return sizes[sel%uint64(len(sizes))]
}

// FuzzSchemeEquivalence is the flagship differential target: arbitrary
// op-codec programs (adds, batches, collision bursts, merged and split
// flushes, snapshot/restore) against both map schemes in lockstep. Any
// observable divergence — verdicts, counts, discovered totals, used_key vs
// the model, restore fidelity — fails.
func FuzzSchemeEquivalence(f *testing.F) {
	for _, s := range schemeEquivalenceSeeds() {
		f.Add(s.sizeSel, s.script)
	}
	f.Fuzz(func(t *testing.T, sizeSel uint64, script []byte) {
		if err := RunSchemeDifferential(sizeFor(sizeSel), DecodeOps(script, maxDiffOps)); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzCollisionSaturation drives a slot-capped BigMap to the
// MapSaturated/DroppedKeys boundary and model-checks every counter against
// the dumb reference implementation.
func FuzzCollisionSaturation(f *testing.F) {
	for _, s := range saturationSeeds() {
		f.Add(s.sizeSel, s.slotCap, s.script)
	}
	f.Fuzz(func(t *testing.T, sizeSel, slotCap uint64, script []byte) {
		size := sizeFor(sizeSel)
		cap := int(slotCap % uint64(size+2)) // sweeps 0 (=unbounded) .. past-size clamp
		if err := RunSaturationModel(size, cap, DecodeOps(script, maxDiffOps)); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzCheckpointCorruption performs adversarial byte surgery on encoded
// checkpoints: single-bit flips must always be rejected (CRC32), and
// anything the decoder accepts must be stable under re-encode.
func FuzzCheckpointCorruption(f *testing.F) {
	for _, s := range corruptionSeeds() {
		f.Add(s.seed, s.script)
	}
	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		if err := RunCheckpointCorruption(seed, script); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzResumeUnderFaults checkpoints a campaign mid-flight — with fault
// injection live — resumes it through the full codec, and demands the final
// campaign state be bitwise identical to the never-interrupted run.
func FuzzResumeUnderFaults(f *testing.F) {
	for _, s := range resumeSeeds() {
		f.Add(s.seed, s.faultBits, s.cut, s.extra)
	}
	f.Fuzz(func(t *testing.T, seed, faultBits, cut, extra uint64) {
		if err := RunResumeDifferential(seed, faultBits, cut, extra); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzCampaignDeterminism runs the same campaign twice (scheme, faults, and
// cut points all fuzzed) and demands bitwise-identical final snapshots — the
// determinism invariant the resume differential and reproducible bench grid
// both stand on.
func FuzzCampaignDeterminism(f *testing.F) {
	for _, s := range campaignSeeds() {
		f.Add(s.seed, s.steps, s.sizeSel)
	}
	f.Fuzz(func(t *testing.T, seed, steps, sizeSel uint64) {
		if err := RunCampaignDeterminism(seed, steps, sizeSel); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzSelectiveEquivalence pins the selective-tracing/batched-execution
// fast paths to the always-traced sequential campaign: same seed, same
// budget, bitwise-identical snapshots (filter bookkeeping zeroed), with
// scheme, map size, batch size and fault injection all fuzzed.
func FuzzSelectiveEquivalence(f *testing.F) {
	for _, s := range selectiveSeeds() {
		f.Add(s.seed, s.steps, s.sizeSel, s.batchSel)
	}
	f.Fuzz(func(t *testing.T, seed, steps, sizeSel, batchSel uint64) {
		if err := RunSelectiveEquivalence(seed, steps, sizeSel, batchSel); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzOpCodecRoundTrip pins the codec's own contract: decoding is total, and
// encode∘decode is the identity on the decoded (canonical) form — the
// property that makes corpus entries readable op lists rather than opaque
// bytes.
func FuzzOpCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(EncodeOps([]Op{{Code: OpAdd, Key: 7}, {Code: OpFlushMerged}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := DecodeOps(data, maxDiffOps)
		enc := EncodeOps(ops)
		again := DecodeOps(enc, maxDiffOps)
		if len(ops) != len(again) {
			t.Fatalf("re-decode has %d ops, want %d", len(again), len(ops))
		}
		for i := range ops {
			a, b := ops[i], again[i]
			if a.Code != b.Code || a.Key != b.Key || a.N != b.N ||
				a.Distinct != b.Distinct || a.Seed != b.Seed || len(a.Keys) != len(b.Keys) {
				t.Fatalf("op %d not stable under encode/decode: %+v vs %+v", i, a, b)
			}
			for j := range a.Keys {
				if a.Keys[j] != b.Keys[j] {
					t.Fatalf("op %d key %d not stable: %d vs %d", i, j, a.Keys[j], b.Keys[j])
				}
			}
		}
		// Canonical encodings are fixed points.
		if got := EncodeOps(again); string(got) != string(enc) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}
