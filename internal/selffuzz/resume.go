package selffuzz

import (
	"bytes"
	"fmt"
	"sync"

	"github.com/bigmap/bigmap/internal/checkpoint"
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

// fuzzProg is the shared adversarial target program: small enough that a few
// fuzzer steps are cheap, rich enough (crashes, hangs, loops, magic bytes)
// that op sequences reach interesting campaign states. Generated once;
// target.Generate is deterministic in the spec.
var (
	fuzzProgOnce sync.Once
	fuzzProgVal  *target.Program
	fuzzProgErr  error
)

func fuzzProg() (*target.Program, error) {
	fuzzProgOnce.Do(func() {
		fuzzProgVal, fuzzProgErr = target.Generate(target.GenSpec{
			Name: "selffuzz", Seed: 99, NumFuncs: 3, BlocksPerFunc: 8,
			InputLen: 24, BranchFraction: 0.6,
			MagicCompares: 1, MagicWidth: 2, BonusBlocks: 2,
			Switches: 1, SwitchFanout: 3,
			Loops: 1, LoopMax: 6,
			CrashSites: 2, CrashDepth: 1,
			HangSites: 1,
		})
	})
	return fuzzProgVal, fuzzProgErr
}

// faultProfile expands a packed fault selector into a FaultProfile. Each
// nibble of bits drives one fault class, so the fuzzing engine can switch
// classes on and off independently while mutating one integer.
func faultProfile(seed, bits uint64) *target.FaultProfile {
	if bits == 0 {
		return nil
	}
	return &target.FaultProfile{
		Seed:              seed,
		FlakyEdgeFraction: int(bits>>0&0xF) * 40,  // 0-600 per mille
		DropRate:          int(bits>>4&0xF) * 40,  // 0-600 per mille
		SpuriousCrashRate: int(bits>>8&0xF) * 10,  // 0-150 per mille
		SpuriousHangRate:  int(bits>>12&0xF) * 10, // 0-150 per mille
		CycleJitterPct:    int(bits >> 16 & 0x1F), // 0-31 %
	}
}

// RunResumeDifferential is the snapshot/resume-under-faults check: one
// campaign runs cut+extra steps uninterrupted; a second runs cut steps, is
// checkpointed through the full binary codec, resumed, and runs the remaining
// extra steps. Their final encoded snapshots must be bitwise identical even
// with fault injection live — the durability claim of DESIGN §9, fuzzed over
// (seed, fault profile, cut point) instead of pinned to four hand-written
// configs.
func RunResumeDifferential(seed, faultBits, cut, extra uint64) error {
	prog, err := fuzzProg()
	if err != nil {
		return err
	}
	cut %= 6
	extra %= 6
	cfg := fuzzer.Config{
		Scheme:      fuzzer.SchemeBigMap,
		MapSize:     core.MapSize64K,
		Seed:        seed,
		HavocRounds: 16,
		Faults:      faultProfile(seed, faultBits),
	}
	if faultBits != 0 {
		cfg.CalibrationRuns = int(2 + faultBits%3)
	}

	seedInputs := prog.SampleSeeds(rng.New(seed^0xc0ffee), 2)
	start := func() (*fuzzer.Fuzzer, error) {
		f, err := fuzzer.New(prog, cfg)
		if err != nil {
			return nil, err
		}
		for _, s := range seedInputs {
			if err := f.AddSeed(s); err != nil {
				return nil, err
			}
		}
		return f, nil
	}
	step := func(f *fuzzer.Fuzzer, n uint64) error {
		for i := uint64(0); i < n; i++ {
			if err := f.Step(); err != nil {
				return err
			}
		}
		return nil
	}

	// Uninterrupted reference.
	ref, err := start()
	if err != nil {
		return err
	}
	if err := step(ref, cut+extra); err != nil {
		return err
	}

	// Interrupted: run to the cut, checkpoint through the codec, resume.
	a, err := start()
	if err != nil {
		return err
	}
	if err := step(a, cut); err != nil {
		return err
	}
	data := checkpoint.EncodeFuzzer(a.Snapshot())
	st, err := checkpoint.DecodeFuzzer(data)
	if err != nil {
		return fmt.Errorf("mid-campaign checkpoint does not decode: %w", err)
	}
	b, err := fuzzer.Resume(prog, cfg, st)
	if err != nil {
		return fmt.Errorf("resume failed: %w", err)
	}
	if err := step(b, extra); err != nil {
		return err
	}

	want := checkpoint.EncodeFuzzer(ref.Snapshot())
	got := checkpoint.EncodeFuzzer(b.Snapshot())
	if !bytes.Equal(want, got) {
		return fmt.Errorf("resumed campaign state diverged from uninterrupted run (cut=%d extra=%d faults=%#x): %d vs %d bytes",
			cut, extra, faultBits, len(want), len(got))
	}
	return nil
}

// RunCampaignDeterminism runs the exact same campaign twice — same scheme,
// seed, map size and budget — and demands the two final encoded snapshots be
// bitwise identical. This is the determinism invariant everything else rests
// on (replayable campaigns, the resume differential, reproducible benches):
// any map-iteration-order leak, stray global RNG draw, or wall-clock
// dependence in the campaign loop shows up here as a byte diff.
//
// Whole-campaign state across SCHEMES is deliberately not compared: queue
// culling iterates coverage slots in slot order, and slot identities differ
// between schemes (raw keys vs dense first-sight assignment), which can
// shuffle which champion is favored first — a divergence the real
// AFL-vs-BigMap pair has too (see TestSchemesProduceEquivalentCampaigns).
// Cross-scheme equality is checked where it is exact: per-operation, in
// RunSchemeDifferential.
func RunCampaignDeterminism(seed, steps, sizeSel uint64) error {
	prog, err := fuzzProg()
	if err != nil {
		return err
	}
	steps = steps%8 + 1
	sizes := []int{1 << 12, 1 << 14, core.MapSize64K, core.MapSize256K}
	mapSize := sizes[sizeSel%uint64(len(sizes))]
	scheme := fuzzer.SchemeAFL
	if sizeSel>>2&1 == 1 {
		scheme = fuzzer.SchemeBigMap
	}

	run := func() ([]byte, error) {
		f, err := fuzzer.New(prog, fuzzer.Config{
			Scheme: scheme, MapSize: mapSize, Seed: seed, HavocRounds: 16,
			Faults: faultProfile(seed, sizeSel>>3),
		})
		if err != nil {
			return nil, err
		}
		for _, s := range prog.SampleSeeds(rng.New(seed^0x5eed), 2) {
			if err := f.AddSeed(s); err != nil {
				return nil, err
			}
		}
		for i := uint64(0); i < steps; i++ {
			if err := f.Step(); err != nil {
				return nil, err
			}
		}
		return checkpoint.EncodeFuzzer(f.Snapshot()), nil
	}

	a, err := run()
	if err != nil {
		return err
	}
	b, err := run()
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("identical campaigns diverged (scheme=%s size=%d steps=%d seed=%d): %d vs %d bytes",
			scheme, mapSize, steps, seed, len(a), len(b))
	}
	return nil
}
