package selffuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/bigmap/bigmap/internal/selffuzz/seedcorpus"
)

// TestWriteSeedCorpora regenerates the checked-in seed corpora under
// testdata/fuzz/ from the seed lists in seeds_test.go. It is gated behind
// BIGMAP_WRITE_CORPUS=1 so a normal test run never rewrites testdata; run
//
//	BIGMAP_WRITE_CORPUS=1 go test ./internal/selffuzz -run TestWriteSeedCorpora
//
// after changing a seed list, and commit the result. Plain `go test` then
// replays every corpus entry through its fuzz target automatically.
func TestWriteSeedCorpora(t *testing.T) {
	if os.Getenv("BIGMAP_WRITE_CORPUS") != "1" {
		t.Skip("set BIGMAP_WRITE_CORPUS=1 to regenerate testdata/fuzz corpora")
	}
	write := func(target string, i int, args ...any) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("seed-%02d", i)
		if err := seedcorpus.WriteFile(dir, name, args...); err != nil {
			t.Fatalf("%s/%s: %v", target, name, err)
		}
	}
	for i, s := range schemeEquivalenceSeeds() {
		write("FuzzSchemeEquivalence", i, s.sizeSel, s.script)
	}
	for i, s := range saturationSeeds() {
		write("FuzzCollisionSaturation", i, s.sizeSel, s.slotCap, s.script)
	}
	for i, s := range corruptionSeeds() {
		write("FuzzCheckpointCorruption", i, s.seed, s.script)
	}
	for i, s := range resumeSeeds() {
		write("FuzzResumeUnderFaults", i, s.seed, s.faultBits, s.cut, s.extra)
	}
	for i, s := range campaignSeeds() {
		write("FuzzCampaignDeterminism", i, s.seed, s.steps, s.sizeSel)
	}
	for i, s := range selectiveSeeds() {
		write("FuzzSelectiveEquivalence", i, s.seed, s.steps, s.sizeSel, s.batchSel)
	}
	write("FuzzOpCodecRoundTrip", 0, []byte{})
	write("FuzzOpCodecRoundTrip", 1, EncodeOps([]Op{
		{Code: OpColliding, N: 10, Distinct: 3, Seed: 1},
		{Code: OpSnapshot}, {Code: OpRestore}, {Code: OpFlushSplit},
	}))
}
