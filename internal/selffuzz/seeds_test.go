package selffuzz

// Hand-picked seed inputs for each fuzz target. Each entry encodes a known-hard
// scenario (collision bursts, snapshot/restore interleavings, saturation
// boundaries, single-bit checkpoint flips, fault-heavy resumes) so that plain
// `go test` replays them as regression tests and `go test -fuzz` starts from
// deep program states instead of empty inputs. The same lists feed the
// checked-in corpora under testdata/fuzz/ (see corpus_write_test.go).

type opSeed struct {
	sizeSel uint64
	script  []byte
}

func schemeEquivalenceSeeds() []opSeed {
	return []opSeed{
		// Single add + merged flush: the minimal interesting program.
		{0, EncodeOps([]Op{{Code: OpAdd, Key: 3}, {Code: OpFlushMerged}})},
		// Batch + split flush on a 64k map.
		{5, EncodeOps([]Op{
			{Code: OpAddBatch, Keys: []uint16{0, 1, 65535, 32767, 32768}},
			{Code: OpFlushSplit},
		})},
		// Collision burst around power-of-two boundaries, then both flush kinds.
		{2, EncodeOps([]Op{
			{Code: OpColliding, N: 200, Distinct: 9, Seed: 7},
			{Code: OpFlushMerged},
			{Code: OpColliding, N: 200, Distinct: 9, Seed: 7},
			{Code: OpFlushSplit},
		})},
		// Snapshot mid-campaign, diverge, restore, diverge again: the resume path.
		{3, EncodeOps([]Op{
			{Code: OpAdd, Key: 11}, {Code: OpFlushMerged},
			{Code: OpSnapshot},
			{Code: OpAddBatch, Keys: []uint16{100, 200, 300}}, {Code: OpFlushMerged},
			{Code: OpRestore},
			{Code: OpAdd, Key: 100}, {Code: OpFlushSplit},
		})},
		// Restore with no snapshot (pristine reset), then rebuild coverage.
		{1, EncodeOps([]Op{
			{Code: OpAdd, Key: 42}, {Code: OpFlushMerged},
			{Code: OpRestore},
			{Code: OpAdd, Key: 42}, {Code: OpFlushMerged},
		})},
		// Double restore from one snapshot: a crash-looping campaign.
		{4, EncodeOps([]Op{
			{Code: OpColliding, N: 50, Distinct: 5, Seed: 3},
			{Code: OpSnapshot}, {Code: OpFlushMerged},
			{Code: OpRestore}, {Code: OpFlushSplit},
			{Code: OpRestore}, {Code: OpAdd, Key: 9}, {Code: OpFlushMerged},
		})},
	}
}

type satSeed struct {
	sizeSel uint64
	slotCap uint64
	script  []byte
}

func saturationSeeds() []satSeed {
	return []satSeed{
		// Exactly at the cap: 4 distinct keys into 4 slots, then one more.
		{1, 4, EncodeOps([]Op{
			{Code: OpAddBatch, Keys: []uint16{1, 2, 3, 4}},
			{Code: OpFlushMerged},
			{Code: OpAdd, Key: 5},
			{Code: OpFlushMerged},
		})},
		// Collision burst far past a tiny cap: per-occurrence drop counting.
		{0, 2, EncodeOps([]Op{
			{Code: OpColliding, N: 120, Distinct: 8, Seed: 1},
			{Code: OpFlushMerged},
		})},
		// Cap 0 decodes as unbounded (clamped to size).
		{0, 0, EncodeOps([]Op{
			{Code: OpColliding, N: 40, Distinct: 6, Seed: 2},
			{Code: OpFlushSplit},
		})},
		// Saturate, reset, re-add the same keys: assignments must survive Reset.
		{2, 3, EncodeOps([]Op{
			{Code: OpAddBatch, Keys: []uint16{7, 8, 9, 10, 11}},
			{Code: OpSnapshot}, // mapped to Reset in the saturation runner
			{Code: OpAddBatch, Keys: []uint16{7, 8, 9, 10, 11}},
			{Code: OpFlushMerged},
		})},
	}
}

type corrSeed struct {
	seed   uint64
	script []byte
}

func corruptionSeeds() []corrSeed {
	return []corrSeed{
		// No-op script: the pristine file must decode.
		{1, nil},
		// Single bit flip near the front (hits the magic/version region).
		{2, []byte{corrFlipBit, 8, 0}},
		// Single bit flip positioned deep into the payload.
		{3, []byte{corrFlipBit, 0x40, 0x01}},
		// Truncate to 3 bytes: shorter than the header.
		{4, []byte{corrTruncate, 3, 0}},
		// Overwrite a length byte then duplicate a tail region.
		{5, []byte{corrSetByte, 9, 0, 0xFF, corrDuplicate, 16, 0, 32}},
	}
}

type resumeSeed struct {
	seed, faultBits, cut, extra uint64
}

func resumeSeeds() []resumeSeed {
	return []resumeSeed{
		{1, 0, 2, 2},       // clean campaign, mid-point cut
		{2, 0, 0, 3},       // checkpoint before the first step
		{3, 0x21, 3, 1},    // flaky edges + dropped coverage
		{4, 0x10512, 1, 4}, // spurious crashes + hangs + jitter
		{7, 0x1F, 5, 0},    // heavy flakiness, checkpoint at the very end
	}
}

type campaignSeed struct {
	seed, steps, sizeSel uint64
}

func campaignSeeds() []campaignSeed {
	return []campaignSeed{
		{1, 3, 0},    // afl scheme, small map: collision pressure
		{2, 7, 6},    // bigmap scheme, 64k map, near the step cap
		{9, 4, 7},    // bigmap scheme, 256k map
		{4, 5, 0x2C}, // bigmap scheme with fault injection live
	}
}

type selectiveSeed struct {
	seed, steps, sizeSel, batchSel uint64
}

func selectiveSeeds() []selectiveSeed {
	return []selectiveSeed{
		{1, 3, 0, 1},     // afl scheme, tiny map, batch 4: collision pressure
		{2, 7, 6, 3},     // bigmap scheme, 64k map, batch 8, near the step cap
		{9, 4, 7, 2},     // bigmap scheme, 256k map, batch 5: odd final batch
		{4, 5, 0x2C, 3},  // bigmap scheme, fault injection live, batch 8
		{3, 6, 0x154, 2}, // afl scheme, spurious crashes+hangs through the batch path
		{5, 2, 1, 0},     // sequential-only: pure selective vs traced
	}
}
