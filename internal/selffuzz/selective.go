package selffuzz

import (
	"bytes"
	"fmt"

	"github.com/bigmap/bigmap/internal/checkpoint"
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/rng"
)

// RunSelectiveEquivalence is the campaign-level soundness check for selective
// tracing and batched execution: four otherwise-identical campaigns — traced
// sequential (the reference), selective sequential, traced batched, and
// selective batched — must all land on bitwise-identical encoded snapshots
// once the filter's own observability counters are zeroed out. The prefilter
// is exact and the batch stage replays the sequential mutant stream, so the
// only permitted difference is how many classify passes were spent getting
// there. Fault injection (flaky edges, spurious crash/hang verdicts, cycle
// jitter) stays live through sizeSel's upper bits, pinning the equivalence on
// the crash- and hang-virgin paths too, not just the happy path.
func RunSelectiveEquivalence(seed, steps, sizeSel, batchSel uint64) error {
	prog, err := fuzzProg()
	if err != nil {
		return err
	}
	steps = steps%8 + 1
	sizes := []int{1 << 12, 1 << 14, core.MapSize64K, core.MapSize256K}
	mapSize := sizes[sizeSel%uint64(len(sizes))]
	scheme := fuzzer.SchemeAFL
	if sizeSel>>2&1 == 1 {
		scheme = fuzzer.SchemeBigMap
	}
	// 0 disables batching; odd sizes exercise the partial final batch.
	batches := []int{0, 4, 5, 8}
	batch := batches[batchSel%uint64(len(batches))]

	run := func(selective bool, batch int) ([]byte, error) {
		f, err := fuzzer.New(prog, fuzzer.Config{
			Scheme: scheme, MapSize: mapSize, Seed: seed, HavocRounds: 16,
			Selective: selective,
			BatchSize: batch,
			Faults:    faultProfile(seed, sizeSel>>3),
		})
		if err != nil {
			return nil, err
		}
		for _, s := range prog.SampleSeeds(rng.New(seed^0x5e1ec7), 2) {
			if err := f.AddSeed(s); err != nil {
				return nil, err
			}
		}
		for i := uint64(0); i < steps; i++ {
			if err := f.Step(); err != nil {
				return nil, err
			}
		}
		st := f.Snapshot()
		// The filter changes how verdicts are computed, never what they are:
		// its skip/re-run totals are the one legitimate difference.
		st.FilterSkips, st.FilterFulls = 0, 0
		return checkpoint.EncodeFuzzer(st), nil
	}

	want, err := run(false, 0)
	if err != nil {
		return err
	}
	for _, tc := range []struct {
		label     string
		selective bool
		batch     int
	}{
		{"selective", true, 0},
		{"batched", false, batch},
		{"selective+batched", true, batch},
	} {
		got, err := run(tc.selective, tc.batch)
		if err != nil {
			return fmt.Errorf("%s: %w", tc.label, err)
		}
		if !bytes.Equal(want, got) {
			return fmt.Errorf("%s campaign diverged from traced sequential (scheme=%s size=%d steps=%d seed=%d batch=%d): %d vs %d bytes",
				tc.label, scheme, mapSize, steps, seed, tc.batch, len(want), len(got))
		}
	}
	return nil
}
