package selffuzz

import (
	"fmt"

	"github.com/bigmap/bigmap/internal/collision"
	"github.com/bigmap/bigmap/internal/core"
)

// maxDiffOps bounds the decoded program length per fuzz execution.
const maxDiffOps = 1 << 12

// schemePair drives the flat AFL map and the two-level BigMap in lockstep,
// with a reference model (the set of keys ever added) checking BigMap's
// used_key accounting. A snapshot captures everything the checkpoint layer
// would persist at the map level; restore rebuilds fresh maps from it, which
// is exactly what a campaign resume does.
type schemePair struct {
	size int
	afl  core.Map
	big  *core.BigMap
	va   *core.Virgin
	vb   *core.Virgin

	seen map[uint32]bool // keys added since creation/restore (model for used_key)

	snap *pairSnapshot
}

type pairSnapshot struct {
	virginA  []byte
	virginB  []byte
	slotKeys []uint32
	dropped  uint64
	seen     map[uint32]bool
}

func newSchemePair(size int) (*schemePair, error) {
	afl, err := core.NewAFLMap(size)
	if err != nil {
		return nil, err
	}
	big, err := core.NewBigMap(size)
	if err != nil {
		return nil, err
	}
	return &schemePair{
		size: size,
		afl:  afl,
		big:  big,
		va:   afl.NewVirgin(),
		vb:   big.NewVirgin(),
		seen: map[uint32]bool{},
	}, nil
}

// RunSchemeDifferential executes an op sequence against both map schemes and
// returns an error on the first observable divergence: per-flush verdicts,
// non-zero counts, touched-slot counts, discovered totals, used_key vs the
// reference model, hash determinism, and snapshot/restore fidelity. This is
// the paper's core semantic claim — the two-level map is a drop-in for the
// flat map — checked under arbitrary adversarial interleavings.
func RunSchemeDifferential(size int, ops []Op) error {
	p, err := newSchemePair(size)
	if err != nil {
		return err
	}
	for i, op := range ops {
		if err := p.apply(op); err != nil {
			return fmt.Errorf("op %d (%d): %w", i, op.Code, err)
		}
	}
	// Trailing un-flushed trace: flush once more so every program ends with
	// a full invariant check, then compare global coverage.
	if err := p.flush(true); err != nil {
		return fmt.Errorf("final flush: %w", err)
	}
	if p.va.CountDiscovered() != p.vb.CountDiscovered() {
		return fmt.Errorf("final discovered diverged: afl=%d bigmap=%d",
			p.va.CountDiscovered(), p.vb.CountDiscovered())
	}
	return nil
}

func (p *schemePair) apply(op Op) error {
	switch op.Code {
	case OpAdd:
		k := uint32(op.Key) & uint32(p.size-1)
		p.afl.Add(k)
		p.big.Add(k)
		p.seen[k] = true
	case OpAddBatch:
		keys := make([]uint32, len(op.Keys))
		for i, k := range op.Keys {
			keys[i] = uint32(k) & uint32(p.size-1)
			p.seen[keys[i]] = true
		}
		p.afl.AddBatch(keys)
		p.big.AddBatch(keys)
	case OpFlushMerged:
		return p.flush(true)
	case OpFlushSplit:
		return p.flush(false)
	case OpColliding:
		keys := collision.Colliding(p.size, int(op.N), int(op.Distinct), uint64(op.Seed))
		for _, k := range keys {
			p.seen[k] = true
		}
		p.afl.AddBatch(keys)
		p.big.AddBatch(keys)
	case OpSnapshot:
		seen := make(map[uint32]bool, len(p.seen))
		for k := range p.seen {
			seen[k] = true
		}
		p.snap = &pairSnapshot{
			virginA:  p.va.Bits(),
			virginB:  p.vb.Bits(),
			slotKeys: p.big.SlotKeys(),
			dropped:  p.big.DroppedKeys(),
			seen:     seen,
		}
	case OpRestore:
		return p.restore()
	}
	return nil
}

// flush ends an execution on both maps — merged (ClassifyAndCompare) or
// split (Classify then CompareWith) traversal — and checks every observable
// the fuzzer consumes at an execution boundary.
func (p *schemePair) flush(merged bool) error {
	if nza, nzb := p.afl.CountNonZero(), p.big.CountNonZero(); nza != nzb {
		return fmt.Errorf("CountNonZero diverged pre-flush: afl=%d bigmap=%d", nza, nzb)
	}
	if used, model := p.big.UsedKeys(), len(p.seen); used != model {
		return fmt.Errorf("bigmap used_key=%d, reference model has %d distinct keys", used, model)
	}
	ta := p.afl.AppendTouched(nil)
	tb := p.big.AppendTouched(nil)
	if len(ta) != len(tb) {
		return fmt.Errorf("touched count diverged: afl=%d bigmap=%d", len(ta), len(tb))
	}
	// The selective-tracing prefilter reads the raw (unclassified) trace, so
	// it must be queried before Classify runs below. Both schemes must agree,
	// and the answer must be exact — true iff the full classify-and-compare
	// pass would return a verdict (checked after the verdicts are known).
	ma := p.afl.MaybeNew(p.va)
	mb := p.big.MaybeNew(p.vb)
	if ma != mb {
		return fmt.Errorf("MaybeNew diverged: afl=%t bigmap=%t", ma, mb)
	}
	var ga, gb core.Verdict
	if merged {
		ga = p.afl.ClassifyAndCompare(p.va)
		gb = p.big.ClassifyAndCompare(p.vb)
	} else {
		p.afl.Classify()
		p.big.Classify()
		ga = p.afl.CompareWith(p.va)
		gb = p.big.CompareWith(p.vb)
	}
	if ga != gb {
		return fmt.Errorf("verdicts diverged (merged=%t): afl=%v bigmap=%v", merged, ga, gb)
	}
	if ma != (ga != core.VerdictNone) {
		return fmt.Errorf("MaybeNew=%t is not exact: verdict=%v", ma, ga)
	}
	if ha, hb := p.afl.Hash(), p.big.Hash(); ha != p.afl.Hash() || hb != p.big.Hash() {
		return fmt.Errorf("hash not deterministic on classified trace")
	}
	if da, db := p.va.CountDiscovered(), p.vb.CountDiscovered(); da != db {
		return fmt.Errorf("discovered diverged post-flush: afl=%d bigmap=%d", da, db)
	}
	p.afl.Reset()
	p.big.Reset()
	return nil
}

// restore rebuilds both schemes from the last snapshot (or pristine state),
// the way a campaign resume rebuilds its maps from a checkpoint: fresh maps,
// virgin bits replayed via SetBits, and the BigMap slot table re-established
// through RestoreAssignments.
func (p *schemePair) restore() error {
	fresh, err := newSchemePair(p.size)
	if err != nil {
		return err
	}
	if s := p.snap; s != nil {
		if err := fresh.va.SetBits(s.virginA); err != nil {
			return fmt.Errorf("restore afl virgin: %w", err)
		}
		if err := fresh.vb.SetBits(s.virginB); err != nil {
			return fmt.Errorf("restore bigmap virgin: %w", err)
		}
		if err := fresh.big.RestoreAssignments(s.slotKeys, s.dropped); err != nil {
			return fmt.Errorf("restore slot table: %w", err)
		}
		seen := make(map[uint32]bool, len(s.seen))
		for k := range s.seen {
			seen[k] = true
		}
		fresh.seen = seen
		if fresh.big.UsedKeys() != len(s.slotKeys) {
			return fmt.Errorf("restored used_key=%d, snapshot had %d slots",
				fresh.big.UsedKeys(), len(s.slotKeys))
		}
		// Slot assignment must survive the round trip verbatim: same key,
		// same dense slot.
		for slot, key := range s.slotKeys {
			if got := fresh.big.SlotForKey(key); got != slot {
				return fmt.Errorf("key %d restored to slot %d, was %d", key, got, slot)
			}
		}
	}
	p.afl, p.big = fresh.afl, fresh.big
	p.va, p.vb = fresh.va, fresh.vb
	p.seen = fresh.seen
	// The snapshot survives: a second OpRestore replays it again, like a
	// crash-loop resuming from the same checkpoint twice.
	return nil
}
