// Package selffuzz turns the fuzzer on itself: adversarial `go test -fuzz`
// targets that attack the coverage maps, codecs and campaign state machinery
// the way a hostile workload would, instead of the way the unit tests expect.
// Every target is differential or model-checked — two implementations (or an
// implementation and a reference model) must agree bit for bit — and every
// target ships a seed corpus under testdata/fuzz/ so plain `go test` replays
// the known-hard inputs as regression tests.
//
// The map-attacking targets are driven by a compact op-codec (this file): a
// fuzz input is a byte string decoded into a sequence of map operations
// (add, batch-add, collision bursts, execution-boundary flushes, snapshot and
// restore). The codec is total — every byte string decodes to a valid op
// sequence — so the fuzzing engine never wastes executions on parse failures,
// and it is compact (1 opcode byte + fixed-width operands) so minimized
// counterexamples stay human-readable.
package selffuzz

import "encoding/binary"

// Op codes. Decode folds arbitrary bytes onto this set modulo NumOps, so any
// input is a valid program.
const (
	// OpAdd records one coverage key (2-byte little-endian operand, masked
	// into the map's key space).
	OpAdd byte = iota
	// OpAddBatch records a run of keys through AddBatch (1-byte count, then
	// 2 bytes per key).
	OpAddBatch
	// OpFlushMerged ends an execution: ClassifyAndCompare against the virgin
	// map (the §IV-E merged traversal), invariant checks, then Reset.
	OpFlushMerged
	// OpFlushSplit ends an execution via the split Classify-then-CompareWith
	// path. Mixing the two flush flavours inside one op sequence is itself a
	// differential check: merged and split traversals must yield identical
	// verdicts and virgin state.
	OpFlushSplit
	// OpColliding injects an adversarial collision burst from
	// collision.Colliding (operands: count, distinct, seed — 1 byte each).
	OpColliding
	// OpSnapshot captures the virgin maps and the BigMap slot assignment.
	OpSnapshot
	// OpRestore rebuilds fresh maps from the last snapshot (mid-campaign
	// checkpoint/resume at the map layer). Without a prior OpSnapshot it
	// restores the pristine initial state.
	OpRestore
	// NumOps is the opcode modulus.
	NumOps
)

// Op is one decoded operation.
type Op struct {
	Code byte
	// Key is OpAdd's operand.
	Key uint16
	// Keys are OpAddBatch's operands.
	Keys []uint16
	// N, Distinct, Seed are OpColliding's operands.
	N, Distinct, Seed byte
}

// DecodeOps decodes a byte string into an op sequence. The codec is total:
// opcodes wrap modulo NumOps and truncated operands read as zero, so every
// input — including every mutation the fuzzing engine produces — is a valid
// program. maxOps bounds the decoded length (0 means no bound) so hostile
// inputs cannot turn one fuzz execution into millions of map operations.
func DecodeOps(data []byte, maxOps int) []Op {
	var ops []Op
	for len(data) > 0 && (maxOps <= 0 || len(ops) < maxOps) {
		code := data[0] % NumOps
		data = data[1:]
		op := Op{Code: code}
		switch code {
		case OpAdd:
			op.Key = readU16(&data)
		case OpAddBatch:
			n := int(readU8(&data))
			op.Keys = make([]uint16, 0, n)
			for i := 0; i < n; i++ {
				op.Keys = append(op.Keys, readU16(&data))
			}
		case OpColliding:
			op.N = readU8(&data)
			op.Distinct = readU8(&data)
			op.Seed = readU8(&data)
		}
		ops = append(ops, op)
	}
	return ops
}

// EncodeOps is DecodeOps' inverse on canonical sequences: it produces the
// byte string that decodes back to exactly ops. Used to build seed corpus
// entries from readable op lists (and by the codec round-trip fuzz target).
// Operand invariants of the canonical form: opcodes < NumOps, and batch
// lengths fit a byte (longer batches are truncated).
func EncodeOps(ops []Op) []byte {
	var out []byte
	for _, op := range ops {
		out = append(out, op.Code%NumOps)
		switch op.Code % NumOps {
		case OpAdd:
			out = binary.LittleEndian.AppendUint16(out, op.Key)
		case OpAddBatch:
			keys := op.Keys
			if len(keys) > 255 {
				keys = keys[:255]
			}
			out = append(out, byte(len(keys)))
			for _, k := range keys {
				out = binary.LittleEndian.AppendUint16(out, k)
			}
		case OpColliding:
			out = append(out, op.N, op.Distinct, op.Seed)
		}
	}
	return out
}

// readU8 consumes one byte, reading zero past the end.
func readU8(data *[]byte) byte {
	if len(*data) == 0 {
		return 0
	}
	b := (*data)[0]
	*data = (*data)[1:]
	return b
}

// readU16 consumes a little-endian uint16, zero-filling a truncated tail.
func readU16(data *[]byte) uint16 {
	d := *data
	switch len(d) {
	case 0:
		return 0
	case 1:
		*data = nil
		return uint16(d[0])
	default:
		*data = d[2:]
		return binary.LittleEndian.Uint16(d)
	}
}
