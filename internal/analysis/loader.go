package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of a module.
type Package struct {
	// Path is the import path (module path + relative directory).
	Path string
	// Dir is the absolute directory.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module loads and type-checks packages of one Go module without invoking
// the go tool: module-internal imports resolve against the module tree,
// standard-library imports through the compiler's source importer. It is not
// a general build system — no vendoring, no external module dependencies —
// which is exactly the shape of this repository.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string

	fset   *token.FileSet
	std    types.Importer
	cache  map[cacheKey]*Package
	active map[string]bool // import-cycle guard
}

type cacheKey struct {
	path  string
	tests bool
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// LoadModule prepares a loader for the module rooted at root.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	path := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			path = strings.TrimSpace(rest)
			break
		}
	}
	if path == "" {
		return nil, fmt.Errorf("analysis: %s/go.mod has no module directive", root)
	}
	fset := token.NewFileSet()
	return &Module{
		Root:   root,
		Path:   path,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  make(map[cacheKey]*Package),
		active: make(map[string]bool),
	}, nil
}

// Fset returns the module's shared file set.
func (m *Module) Fset() *token.FileSet { return m.fset }

// LoadDir loads the package in the given directory (absolute, or relative to
// the module root). When tests is true, in-package _test.go files are
// included; external (package foo_test) files are always skipped.
func (m *Module) LoadDir(dir string, tests bool) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(m.Root, dir)
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, m.Root)
	}
	path := m.Path
	if rel != "." {
		path = m.Path + "/" + filepath.ToSlash(rel)
	}
	return m.load(path, tests)
}

// Import implements types.Importer for the type-checker: module-internal
// paths load (without tests) from the module tree, everything else from the
// standard library.
func (m *Module) Import(path string) (*types.Package, error) {
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		pkg, err := m.load(path, false)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

func (m *Module) load(path string, tests bool) (*Package, error) {
	key := cacheKey{path, tests}
	if pkg, ok := m.cache[key]; ok {
		return pkg, nil
	}
	if m.active[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	m.active[path] = true
	defer delete(m.active, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, m.Path), "/")
	dir := filepath.Join(m.Root, filepath.FromSlash(rel))
	files, err := m.parseDir(dir, tests)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: m}
	tpkg, err := conf.Check(path, m.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: m.fset, Files: files, Types: tpkg, Info: info}
	m.cache[key] = pkg
	return pkg, nil
}

// parseDir parses the buildable Go files of one directory: release build
// tags only (custom tags like bigmapdbg evaluate false), in-package test
// files only when tests is set.
func (m *Module) parseDir(dir string, tests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !tests {
			continue
		}
		if !fileNameMatchesPlatform(name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var files []*ast.File
	basePkg := ""
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if !buildConstraintSatisfied(src) {
			continue
		}
		f, err := parser.ParseFile(m.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkgName := f.Name.Name
		if strings.HasSuffix(name, "_test.go") {
			// External test packages (package foo_test) are a separate
			// compilation unit; the invariant checkers only need
			// in-package tests.
			if strings.HasSuffix(pkgName, "_test") {
				continue
			}
		} else if basePkg == "" {
			basePkg = pkgName
		} else if pkgName != basePkg {
			return nil, fmt.Errorf("analysis: %s: found packages %s and %s", dir, basePkg, pkgName)
		}
		files = append(files, f)
	}
	return files, nil
}

// buildConstraintSatisfied evaluates a file's //go:build line for a release
// build on the current platform; unknown tags (bigmapdbg and friends) are
// false.
func buildConstraintSatisfied(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return false
		}
		return expr.Eval(func(tag string) bool {
			switch {
			case tag == runtime.GOOS || tag == runtime.GOARCH:
				return true
			case tag == "unix":
				return runtime.GOOS == "linux" || runtime.GOOS == "darwin"
			case strings.HasPrefix(tag, "go1."):
				return true
			}
			return false
		})
	}
	return true
}

// fileNameMatchesPlatform applies the _GOOS/_GOARCH file-name convention.
func fileNameMatchesPlatform(name string) bool {
	base := strings.TrimSuffix(strings.TrimSuffix(name, ".go"), "_test")
	parts := strings.Split(base, "_")
	for _, part := range parts[1:] {
		if knownGOOS[part] && part != runtime.GOOS {
			return false
		}
		if knownGOARCH[part] && part != runtime.GOARCH {
			return false
		}
	}
	return true
}

var knownGOOS = map[string]bool{
	"linux": true, "darwin": true, "windows": true, "freebsd": true,
	"netbsd": true, "openbsd": true, "plan9": true, "solaris": true,
	"js": true, "wasip1": true, "aix": true, "android": true, "ios": true,
}

var knownGOARCH = map[string]bool{
	"amd64": true, "arm64": true, "386": true, "arm": true, "wasm": true,
	"ppc64": true, "ppc64le": true, "mips": true, "mipsle": true,
	"mips64": true, "mips64le": true, "riscv64": true, "s390x": true,
	"loong64": true,
}

// ExpandPatterns resolves package arguments to module-relative directories:
// a plain directory stands for itself, "dir/..." (or "./...") for every
// package directory beneath it. testdata, hidden and _-prefixed directories
// are skipped, as the go tool does.
func ExpandPatterns(root string, args []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) error {
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return fmt.Errorf("analysis: package %s is outside module root %s", path, root)
		}
		rel = filepath.ToSlash(rel)
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
		return nil
	}
	for _, arg := range args {
		base, recursive := strings.CutSuffix(arg, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" {
			base = "."
		}
		// Relative patterns resolve against the working directory, like the
		// go tool's package patterns; root only anchors the returned
		// module-relative paths. (Joining them to root instead would
		// double the path whenever root was itself discovered from the
		// pattern.)
		dir, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		if !recursive {
			if hasGoFiles(dir) {
				if err := add(dir); err != nil {
					return nil, err
				}
				continue
			}
			return nil, fmt.Errorf("no Go files in %s", dir)
		}
		err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				return add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
