package determinism

import (
	"testing"

	"github.com/bigmap/bigmap/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "determ")
}
