// Package determ exercises the determinism analyzer: wall-clock reads,
// global RNG draws, map-order dependence in serialization-shaped functions,
// and goroutine-identity tricks, plus audited (suppressed) variants of each.
package determ

import (
	"math/rand"
	"runtime"
	"sort"
	"time"
)

// clockBase mirrors the telemetry package's audited monotonic clock base:
// the one allowed package-level wall-clock read, whose readings feed metrics
// only (never resume-relevant state), so the annotation suppresses it.
var clockBase = time.Now() //bigmap:nondeterministic-ok telemetry-style clock base; readings feed metrics only

// startupStamp is the same init-time read without an audit note: flagged.
var startupStamp = time.Now() // want "time.Now reads the wall clock"

// telemetryNow is the in-function half of the telemetry clock pattern.
func telemetryNow() int64 {
	return int64(time.Since(clockBase)) //bigmap:nondeterministic-ok monotonic metric timestamps, never resume-relevant
}

// wallClock trips the time.Now and time.Since checks.
func wallClock() time.Duration {
	t0 := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(t0) // want "time.Since reads the wall clock"
}

// deadlineAPI is an audited wall-clock site: suppressed, no diagnostics.
func deadlineAPI(d time.Duration) time.Time {
	return time.Now().Add(d) //bigmap:nondeterministic-ok wall-clock deadline API by contract
}

// globalRNG trips the math/rand check.
func globalRNG() int {
	return rand.Intn(6) // want "draws from the global RNG"
}

// localRNG is fine: the stream is owned and seedable.
func localRNG(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}

// snapshotKeys ranges over a map in a serialization-shaped function.
func snapshotKeys(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m { // want "map iteration order is randomized"
		out = append(out, k)
	}
	return out
}

// encodeSorted is the audited pattern: the range feeds a sort, so the
// serialized order is deterministic after all.
func encodeSorted(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	//bigmap:nondeterministic-ok order restored by the sort below
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// tallyCounts ranges over a map outside any serialization path: fine.
func tallyCounts(m map[uint32]int) int {
	total := 0
	for _, n := range m {
		total += n
	}
	return total
}

// snapshotScheduler trips the goroutine-identity check.
func snapshotScheduler() int {
	return runtime.NumGoroutine() // want "goroutine identity/scheduling"
}
