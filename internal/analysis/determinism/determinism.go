// Package determinism flags sources of nondeterminism in packages whose
// behaviour must be bitwise reproducible across a checkpoint/resume cycle
// (TestResumeMatchesUninterrupted). One stray wall-clock read or global RNG
// call in the fuzzing loop silently breaks the resume guarantee long before
// any test notices; this analyzer turns the contract into a build failure.
//
// Flagged:
//
//   - time.Now / time.Since / time.Until — wall-clock reads. Deadline APIs
//     and stats timing are legitimately wall-clock; audited sites carry
//     //bigmap:nondeterministic-ok.
//   - package-level math/rand and math/rand/v2 functions — the global RNG is
//     unseeded (and seeded differently per process); deterministic code must
//     draw from an internal/rng stream captured by checkpoints.
//   - range over a Go map inside serialization-shaped functions (Snapshot,
//     encode*, hash*, …) — map iteration order is randomized per run, so
//     bytes produced from it differ between the original and the resumed
//     process unless the output is sorted afterwards. Sites that sort are
//     annotated.
//   - runtime.Stack / runtime.NumGoroutine outside crash reporting —
//     goroutine identity leaks schedule-dependent values into the run.
//
// Package-level variable initializers are checked like function bodies: an
// init-time wall-clock read is as resume-hostile as one in the loop. The
// telemetry package's clock base (`var clockBase = time.Now()`) is the
// audited exemplar — observability readings feed metrics only, never
// resume-relevant state, so both of its clock sites carry the annotation.
//
// Test files are exempt: tests may time themselves freely.
package determinism

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"github.com/bigmap/bigmap/internal/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name:      "determinism",
	Doc:       "flags wall-clock reads, global RNG use, map-order dependence and goroutine-identity tricks in replay/resume-relevant packages",
	Directive: "nondeterministic-ok",
	Run:       run,
}

// serializationShaped matches function names whose output feeds bytes that a
// resume must reproduce: snapshots, encoders, hashes, checkpoint writers.
var serializationShaped = regexp.MustCompile(`(?i)(snapshot|checkpoint|encode|marshal|serial|digest|hash|save|write)`)

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					checkFunc(pass, d)
				}
			case *ast.GenDecl:
				checkVarInit(pass, d)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			checkRange(pass, fn, n)
		}
		return true
	})
}

// checkVarInit applies the call checks to package-level variable
// initializers, which run before main and feed whatever reads them for the
// whole process lifetime (e.g. a clock base captured at startup).
func checkVarInit(pass *analysis.Pass, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			ast.Inspect(v, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkCall(pass, call)
				}
				return true
			})
		}
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name := analysis.CalleePkgFunc(pass.Info, call)
	switch pkg {
	case "time":
		if wallClockFuncs[name] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; resume-relevant state must not depend on it (annotate //bigmap:nondeterministic-ok if this site is audited wall-clock API/stats timing)", name)
		}
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewSource, NewPCG, …) build owned streams and
		// are fine; everything else at package level draws from the global
		// RNG.
		if !strings.HasPrefix(name, "New") {
			pass.Reportf(call.Pos(),
				"%s.%s draws from the global RNG, which is not captured by checkpoints; use an internal/rng stream owned by the component", pkg, name)
		}
	case "runtime":
		if name == "Stack" || name == "NumGoroutine" {
			pass.Reportf(call.Pos(),
				"runtime.%s exposes goroutine identity/scheduling, which varies across runs", name)
		}
	}
}

func checkRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	if !serializationShaped.MatchString(fn.Name.Name) {
		return
	}
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is randomized per process, but %s looks like a serialization path; sort the keys (and annotate //bigmap:nondeterministic-ok) or iterate a slice", fn.Name.Name)
}
