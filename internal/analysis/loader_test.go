package analysis

import (
	"path/filepath"
	"testing"
)

func TestLoadDirTypeChecksWithInternalImports(t *testing.T) {
	mod, err := LoadModule("testdata")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if mod.Path != "tinymod" {
		t.Fatalf("module path = %q, want tinymod", mod.Path)
	}
	pkg, err := mod.LoadDir("deps", false)
	if err != nil {
		t.Fatalf("LoadDir(deps): %v", err)
	}
	if pkg.Path != "tinymod/deps" {
		t.Errorf("package path = %q, want tinymod/deps", pkg.Path)
	}
	if pkg.Types.Scope().Lookup("Biggest") == nil {
		t.Errorf("Biggest not found in type-checked scope")
	}
}

func TestLoaderExcludesUnknownBuildTags(t *testing.T) {
	mod, err := LoadModule("testdata")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	pkg, err := mod.LoadDir("tiny", false)
	if err != nil {
		// A duplicate Sorted from tagged.go would surface here.
		t.Fatalf("LoadDir(tiny): %v", err)
	}
	for _, f := range pkg.Files {
		name := filepath.Base(pkg.Fset.Position(f.Package).Filename)
		if name == "tagged.go" {
			t.Errorf("tagged.go (build tag sometag) was loaded in a release parse")
		}
	}
}

func TestExpandPatterns(t *testing.T) {
	root, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns(root, []string{"testdata/..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	want := map[string]bool{"deps": false, "tiny": false}
	for _, d := range dirs {
		if _, ok := want[d]; ok {
			want[d] = true
		}
	}
	for d, seen := range want {
		if !seen {
			t.Errorf("pattern testdata/... missed %s (got %v)", d, dirs)
		}
	}
}
