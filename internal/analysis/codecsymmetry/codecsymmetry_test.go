package codecsymmetry

import (
	"testing"

	"github.com/bigmap/bigmap/internal/analysis/analysistest"
)

func TestCodecSymmetry(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "codec")
}
