// Package codecsymmetry checks that every encodeX/decodeX pair in a binary
// codec reads and writes the same fields in the same order. The checkpoint
// payload format (internal/checkpoint) is a flat field sequence with no
// per-field tags, so a field appended to the encoder but not the decoder —
// or two fields swapped on one side only — produces checkpoints that decode
// into silently shifted state. The CRC cannot catch this: the bytes are
// intact, the interpretation is wrong.
//
// The analyzer abstracts each codec function into its token sequence:
//
//   - a call to a method of the `writer` type contributes its method name
//     (u64, int, u32, bool, str, bytes, u32s, u64s, state, …);
//   - a call to a method of the `reader` type contributes its method name,
//     with `length` normalized to `u64` (a length read matches the length
//     prefix the encoder wrote with u64);
//   - a call to another encode*/decode* function contributes sub:<suffix>,
//     so nested records match by structure.
//
// Functions pair by name: encodeFoo ↔ decodeFoo, EncodeFoo ↔ DecodeFoo
// (suffix match is case-insensitive). Loops are linearized — a repeated
// group contributes its tokens once on both sides, which matches because
// both sides drive their loops from the same length prefix.
package codecsymmetry

import (
	"go/ast"
	"strings"

	"github.com/bigmap/bigmap/internal/analysis"
)

// Analyzer is the codec-symmetry checker.
var Analyzer = &analysis.Analyzer{
	Name:      "codecsymmetry",
	Doc:       "encodeX/decodeX pairs must read and write fields in mirrored order and count",
	Directive: "codec-ok",
	Run:       run,
}

const (
	writerType = "writer"
	readerType = "reader"
)

func run(pass *analysis.Pass) error {
	encoders := make(map[string]*ast.FuncDecl) // lowercase suffix -> decl
	decoders := make(map[string]*ast.FuncDecl)
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv != nil {
				continue
			}
			if suffix, ok := codecSuffix(fn.Name.Name, "encode"); ok {
				encoders[suffix] = fn
			} else if suffix, ok := codecSuffix(fn.Name.Name, "decode"); ok {
				decoders[suffix] = fn
			}
		}
	}

	for suffix, enc := range encoders {
		dec, ok := decoders[suffix]
		if !ok {
			pass.Reportf(enc.Pos(), "%s has no matching decoder; every codec field sequence needs both directions", enc.Name.Name)
			continue
		}
		wTokens := tokens(pass, enc, writerType, "encode")
		rTokens := tokens(pass, dec, readerType, "decode")
		comparePair(pass, enc, dec, wTokens, rTokens)
	}
	for suffix, dec := range decoders {
		if _, ok := encoders[suffix]; !ok {
			pass.Reportf(dec.Pos(), "%s has no matching encoder; every codec field sequence needs both directions", dec.Name.Name)
		}
	}
	return nil
}

func comparePair(pass *analysis.Pass, enc, dec *ast.FuncDecl, wTokens, rTokens []string) {
	n := len(wTokens)
	if len(rTokens) < n {
		n = len(rTokens)
	}
	for i := 0; i < n; i++ {
		if wTokens[i] != rTokens[i] {
			pass.Reportf(dec.Pos(),
				"codec drift at field #%d: %s writes %s but %s reads %s (sequences %v vs %v)",
				i+1, enc.Name.Name, wTokens[i], dec.Name.Name, rTokens[i], wTokens, rTokens)
			return
		}
	}
	if len(wTokens) != len(rTokens) {
		pass.Reportf(dec.Pos(),
			"codec drift: %s writes %d fields %v but %s reads %d fields %v",
			enc.Name.Name, len(wTokens), wTokens, dec.Name.Name, len(rTokens), rTokens)
	}
}

// codecSuffix matches a codec function name against the encode/decode
// prefix, case-insensitively, and returns the lowercased suffix.
func codecSuffix(name, prefix string) (string, bool) {
	if len(name) <= len(prefix) || !strings.EqualFold(name[:len(prefix)], prefix) {
		return "", false
	}
	return strings.ToLower(name[len(prefix):]), true
}

// tokens linearizes fn's body into its codec token sequence.
func tokens(pass *analysis.Pass, fn *ast.FuncDecl, recvType, subPrefix string) []string {
	var out []string
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if named, method := analysis.ReceiverNamed(pass.Info, call); named != nil &&
			named.Obj().Pkg() == pass.Pkg && named.Obj().Name() == recvType {
			if tok := normalize(method); tok != "" {
				out = append(out, tok)
			}
			return true
		}
		if pkg, callee := analysis.CalleePkgFunc(pass.Info, call); pkg == pass.Pkg.Path() {
			if suffix, ok := codecSuffix(callee, subPrefix); ok {
				out = append(out, "sub:"+suffix)
			}
		}
		return true
	})
	return out
}

// normalize maps receiver method names to tokens; bookkeeping methods that
// move no payload bytes are dropped.
func normalize(method string) string {
	switch method {
	case "length":
		return "u64" // a length read consumes the uvarint length prefix
	case "fail", "err":
		return ""
	}
	return method
}
