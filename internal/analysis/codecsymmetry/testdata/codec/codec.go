// Package codec exercises the codec-symmetry analyzer: a matched pair, a
// nested pair driven by a length prefix, order drift, count drift, orphaned
// halves, and an audited (suppressed) legacy pair.
package codec

type writer struct{ buf []byte }

func (w *writer) u64(v uint64)   { _ = v }
func (w *writer) str(s string)   { _ = s }
func (w *writer) bytes(b []byte) { _ = b }

type reader struct {
	buf []byte
	err error
}

func (r *reader) u64() uint64        { return 0 }
func (r *reader) str() string        { return "" }
func (r *reader) bytes() []byte      { return nil }
func (r *reader) length(min int) int { _ = min; return 0 }

// Rec is the record the pairs below serialize.
type Rec struct {
	A uint64
	B string
}

// encodeRec/decodeRec match: u64 then str.
func encodeRec(w *writer, rec *Rec) {
	w.u64(rec.A)
	w.str(rec.B)
}

func decodeRec(r *reader) Rec {
	return Rec{A: r.u64(), B: r.str()}
}

// encodeList/decodeList match through the length prefix and the nested
// sub-codec: [u64 sub:rec] on both sides.
func encodeList(w *writer, recs []Rec) {
	w.u64(uint64(len(recs)))
	for i := range recs {
		encodeRec(w, &recs[i])
	}
}

func decodeList(r *reader) []Rec {
	n := r.length(1)
	out := make([]Rec, n)
	for i := range out {
		out[i] = decodeRec(r)
	}
	return out
}

// encodeDrift/decodeDrift read fields in swapped order.
func encodeDrift(w *writer, rec *Rec) {
	w.u64(rec.A)
	w.str(rec.B)
}

func decodeDrift(r *reader) Rec { // want "codec drift at field #1"
	return Rec{B: r.str(), A: r.u64()}
}

// encodeShort/decodeShort disagree on the field count.
func encodeShort(w *writer, rec *Rec) {
	w.u64(rec.A)
}

func decodeShort(r *reader) Rec { // want "codec drift: encodeShort writes 1 fields"
	return Rec{A: r.u64(), B: r.str()}
}

func encodeOrphan(w *writer, rec *Rec) { // want "no matching decoder"
	w.u64(rec.A)
}

func decodeWidow(r *reader) uint64 { // want "no matching encoder"
	return r.u64()
}

// encodeLegacy/decodeLegacy drift too, but the site is audited.
func encodeLegacy(w *writer, rec *Rec) {
	w.u64(rec.A)
}

//bigmap:codec-ok legacy decoder tolerates the reserved trailing field
func decodeLegacy(r *reader) Rec {
	return Rec{A: r.u64(), B: r.str()}
}
