// Package tiny is loader-test fixture code.
package tiny

import "sort"

// Value is exported so the dependent package below can use it.
type Value struct {
	N int
}

// Sorted returns a sorted copy.
func Sorted(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
