//go:build sometag

package tiny

// This file must be excluded by the loader: the sometag build tag is not a
// release tag. If it were included, the duplicate Sorted would fail
// type-checking.
func Sorted(xs []int) []int { return xs }
