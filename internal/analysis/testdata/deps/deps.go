// Package deps imports a module-internal sibling, so loading it exercises
// the loader's recursive import resolution.
package deps

import "tinymod/tiny"

// Biggest returns the largest value.
func Biggest(vs []tiny.Value) int {
	best := 0
	for _, v := range vs {
		if v.N > best {
			best = v.N
		}
	}
	return best
}
