// Package analysistest runs an analyzer over a testdata module and checks
// its diagnostics against expectations written in the source, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the in-repo
// framework.
//
// Expectations are comments of the form
//
//	code() // want "regexp"
//
// every line carrying a want comment must produce at least one diagnostic
// whose message matches the regexp, and every diagnostic must land on a line
// that wants it. Lines silenced with a //bigmap:<directive> comment simply
// produce no diagnostic, so a suppressed case is a violation line with a
// directive and no want.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/bigmap/bigmap/internal/analysis"
)

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads each named package directory (relative to the testdata module
// root dir, which must contain a go.mod), applies the analyzer with test
// files included, and reports mismatches against the want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	mod, err := analysis.LoadModule(dir)
	if err != nil {
		t.Fatalf("loading testdata module %s: %v", dir, err)
	}
	for _, rel := range pkgs {
		pkg, err := mod.LoadDir(rel, true)
		if err != nil {
			t.Fatalf("loading %s: %v", rel, err)
		}
		diags, err := analysis.Run(a, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, rel, err)
		}
		checkExpectations(t, pkg, diags)
	}
}

// RunModule loads every named package directory of the testdata module
// (without test files, so cross-package object identities are consistent),
// applies one interprocedural analyzer to the whole set, and checks want
// comments across all of the packages' files.
func RunModule(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	mod, err := analysis.LoadModule(dir)
	if err != nil {
		t.Fatalf("loading testdata module %s: %v", dir, err)
	}
	var loaded []*analysis.Package
	for _, rel := range pkgs {
		pkg, err := mod.LoadDir(rel, false)
		if err != nil {
			t.Fatalf("loading %s: %v", rel, err)
		}
		loaded = append(loaded, pkg)
	}
	diags, err := analysis.RunModule(a, loaded)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, pkg := range loaded {
		var own []analysis.Diagnostic
		for _, d := range diags {
			if strings.HasPrefix(d.Pos.Filename, pkg.Dir+string(filepath.Separator)) {
				own = append(own, d)
			}
		}
		checkExpectations(t, pkg, own)
	}
}

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pat, err := unquoteWant(m[1])
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), m[1], err)
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: pat})
				}
			}
		}
	}
	for _, d := range diags {
		if d.Suppressed {
			// A suppressed case is a violation line with a directive and no
			// want; the framework reports it flagged and tests ignore it.
			continue
		}
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// unquoteWant undoes the \" escaping the want syntax allows inside its
// double-quoted pattern.
func unquoteWant(s string) (*regexp.Regexp, error) {
	return regexp.Compile(strings.ReplaceAll(s, `\"`, `"`))
}
