package errdrop_test

import (
	"testing"

	"github.com/bigmap/bigmap/internal/analysis/analysistest"
	"github.com/bigmap/bigmap/internal/analysis/errdrop"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata", errdrop.Analyzer, "drop")
}
