module errtest

go 1.22
