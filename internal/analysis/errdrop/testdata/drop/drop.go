// Package drop exercises the errdrop discard shapes.
package drop

import "os"

type closer struct{}

func (closer) Close() error       { return nil }
func (closer) Count() int         { return 0 }
func (closer) Both() (int, error) { return 0, nil }

func statements(c closer) {
	c.Close()       // want "call to c.Close discards its error"
	os.Remove("x")  // want "call to os.Remove discards its error"
	c.Both()        // want "call to c.Both discards its error"
	c.Count()       // non-error results are fine
	defer c.Close() // want "deferred call to c.Close discards its error"
	go c.Close()    // want "spawned call to c.Close discards its error"
}

func blanks(c closer) {
	_ = c.Close()    // want "error from c.Close is assigned to _"
	n, _ := c.Both() // want "error from c.Both is assigned to _"
	_ = n
	v, err := c.Both() // reading the error is fine
	_, _ = v, err
}

func audited(c closer) {
	c.Close() //bigmap:err-ok testdata best-effort cleanup
	//bigmap:err-ok testdata directive above the line also audits
	os.Remove("y")
}

func handled(c closer) error {
	if err := c.Close(); err != nil {
		return err
	}
	return nil
}
