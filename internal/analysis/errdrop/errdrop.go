// Package errdrop flags discarded error returns. The checkpoint and serve
// layers are durability code — a dropped error from a file write, fsync,
// rename or store mutation is a silent corruption vector — so every call
// whose error result is thrown away must either handle it or carry an
// audited justification:
//
//	//bigmap:err-ok <why the error is safe to drop>
//
// Three discard shapes are reported: a call used as a bare statement whose
// (last) result is an error, a deferred such call, and an error result
// assigned to the blank identifier.
package errdrop

import (
	"go/ast"
	"go/types"

	"github.com/bigmap/bigmap/internal/analysis"
)

// Analyzer reports discarded error returns.
var Analyzer = &analysis.Analyzer{
	Name:      "errdrop",
	Doc:       "report discarded error returns from calls in durability-critical packages",
	Directive: "err-ok",
	Run:       run,
}

var errorType = types.Universe.Lookup("error").Type()

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(node ast.Node) bool {
			switch n := node.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					checkDiscard(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDiscard(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				// A goroutine's return value is always discarded by the
				// language; flag it like any other discard.
				checkDiscard(pass, n.Call, "spawned ")
			case *ast.AssignStmt:
				checkBlank(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscard reports a call statement whose sole or last result is an
// error nobody reads.
func checkDiscard(pass *analysis.Pass, call *ast.CallExpr, how string) {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.IsType() {
		return
	}
	returnsError := false
	switch t := tv.Type.(type) {
	case *types.Tuple:
		returnsError = t.Len() > 0 && types.Identical(t.At(t.Len()-1).Type(), errorType)
	default:
		returnsError = types.Identical(tv.Type, errorType)
	}
	if returnsError {
		pass.Reportf(call.Pos(), "%scall to %s discards its error", how, types.ExprString(call.Fun))
	}
}

// checkBlank reports an error result assigned to the blank identifier.
func checkBlank(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	tv, ok := pass.Info.Types[call]
	if !ok {
		return
	}
	resultAt := func(i int) types.Type {
		if t, ok := tv.Type.(*types.Tuple); ok {
			if i < t.Len() {
				return t.At(i).Type()
			}
			return nil
		}
		if i == 0 {
			return tv.Type
		}
		return nil
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if t := resultAt(i); t != nil && types.Identical(t, errorType) {
			pass.Reportf(id.Pos(), "error from %s is assigned to _", types.ExprString(call.Fun))
		}
	}
}
