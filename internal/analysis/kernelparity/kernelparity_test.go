package kernelparity

import (
	"testing"

	"github.com/bigmap/bigmap/internal/analysis/analysistest"
)

func TestKernelParity(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "kern")
}
