// Package kern exercises the kernel-parity analyzer: a properly pinned
// word/scalar pair, a kernel with no scalar reference, a pair no fuzz target
// reaches, and an audited (suppressed) kernel.
package kern

func loadWord(p []byte) uint64 {
	return uint64(p[0])
}

func storeWord(p []byte, w uint64) {
	p[0] = byte(w)
}

// fooRegion/fooScalar is the healthy case: both reached by FuzzFoo.
func fooRegion(p []byte) {
	for i := 0; i+8 <= len(p); i += 8 {
		storeWord(p[i:], loadWord(p[i:]))
	}
}

func fooScalar(p []byte) {
	for i := range p {
		p[i] = p[i]
	}
}

func barRegion(p []byte) uint64 { // want "no scalar reference barScalar"
	return loadWord(p)
}

// bazRegion has its scalar, but no fuzz target exercises either.
func bazRegion(p []byte) uint64 { // want "not reached by any Fuzz target"
	return loadWord(p)
}

func bazScalar(p []byte) uint64 {
	return uint64(p[0])
}

//bigmap:kernel-ok audited: qux is pinned exhaustively by table-driven unit tests
func quxRegion(p []byte) uint64 {
	return loadWord(p)
}
