package kern

import "testing"

// FuzzFoo pins fooRegion against fooScalar through a helper, which the
// analyzer must follow (reachability, not direct calls).
func FuzzFoo(f *testing.F) {
	f.Fuzz(func(t *testing.T, p []byte) {
		checkFoo(p)
	})
}

func checkFoo(p []byte) {
	fooRegion(p)
	fooScalar(p)
}
