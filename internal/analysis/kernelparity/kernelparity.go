// Package kernelparity enforces the word-kernel contract of internal/core:
// every word-level map kernel must keep its scalar reference alive and both
// must be pinned by a differential fuzz target, so the two can never drift
// apart silently (the property BigMap §IV rests on — the word-level fast
// paths must be byte-for-byte equivalent to the obvious per-byte loops).
//
// Detection is by convention, the same one kernels.go documents:
//
//   - a word-level kernel is a package-level function (outside test files)
//     that calls loadWord or storeWord — the 8-byte accessors every word
//     traversal goes through;
//   - its scalar reference is the function named after it with the "Region"
//     suffix replaced by "Scalar" (classifyRegion → classifyScalar,
//     lastNonZero → lastNonZeroScalar);
//   - both must be statically reachable from a Fuzz* function in the
//     package's test files (directly or through helpers), which is what
//     "pinned by the differential fuzzer" means.
//
// loadWord/storeWord themselves and *Scalar functions are exempt from
// kernel detection.
package kernelparity

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/bigmap/bigmap/internal/analysis"
)

// Analyzer is the kernel-parity checker.
var Analyzer = &analysis.Analyzer{
	Name:      "kernelparity",
	Doc:       "every word-level kernel (calls loadWord/storeWord) needs a <name>Scalar reference and a fuzz target reaching both",
	Directive: "kernel-ok",
	Run:       run,
}

func run(pass *analysis.Pass) error {
	decls := make(map[types.Object]*ast.FuncDecl) // package-level funcs, incl. test helpers
	var kernels []*ast.FuncDecl
	byName := make(map[string]types.Object)
	var fuzzRoots []types.Object

	for _, f := range pass.Files {
		test := pass.IsTestFile(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv != nil {
				continue
			}
			obj := pass.Info.Defs[fn.Name]
			if obj == nil {
				continue
			}
			decls[obj] = fn
			byName[fn.Name.Name] = obj
			if test && strings.HasPrefix(fn.Name.Name, "Fuzz") {
				fuzzRoots = append(fuzzRoots, obj)
			}
			if !test && isKernel(pass, fn) {
				kernels = append(kernels, fn)
			}
		}
	}

	reach := reachableFrom(pass, decls, fuzzRoots)

	for _, fn := range kernels {
		name := fn.Name.Name
		scalarName := strings.TrimSuffix(name, "Region") + "Scalar"
		scalar, ok := byName[scalarName]
		if !ok {
			pass.Reportf(fn.Pos(),
				"word-level kernel %s has no scalar reference %s; add the byte-at-a-time ground truth (kernels_scalar.go) so the differential fuzzer can pin it", name, scalarName)
			continue
		}
		obj := pass.Info.Defs[fn.Name]
		switch {
		case !reach[obj] && !reach[scalar]:
			pass.Reportf(fn.Pos(),
				"kernel %s and its scalar reference %s are not reached by any Fuzz target; wire both into the differential fuzzer", name, scalarName)
		case !reach[obj]:
			pass.Reportf(fn.Pos(),
				"kernel %s is not reached by any Fuzz target; wire it into the differential fuzzer", name)
		case !reach[scalar]:
			pass.Reportf(fn.Pos(),
				"scalar reference %s is not reached by any Fuzz target, so kernel %s is compared against nothing", scalarName, name)
		}
	}
	return nil
}

// isKernel reports whether fn calls the word accessors loadWord/storeWord
// (and is not itself one of them or a scalar reference).
func isKernel(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	if name == "loadWord" || name == "storeWord" || strings.HasSuffix(name, "Scalar") {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, callee := analysis.CalleePkgFunc(pass.Info, call)
		if pkg == pass.Pkg.Path() && (callee == "loadWord" || callee == "storeWord") {
			found = true
		}
		return !found
	})
	return found
}

// reachableFrom walks the static reference graph (any identifier use of a
// package-level function, not just direct calls) from the fuzz roots.
func reachableFrom(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, roots []types.Object) map[types.Object]bool {
	edges := make(map[types.Object][]types.Object)
	for obj, fn := range decls {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			used, ok := pass.Info.Uses[id]
			if ok {
				if _, isFunc := decls[used]; isFunc {
					edges[obj] = append(edges[obj], used)
				}
			}
			return true
		})
	}
	reach := make(map[types.Object]bool)
	var visit func(types.Object)
	visit = func(obj types.Object) {
		if reach[obj] {
			return
		}
		reach[obj] = true
		for _, next := range edges[obj] {
			visit(next)
		}
	}
	for _, root := range roots {
		visit(root)
	}
	return reach
}
