package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
)

// ReportVersion is the schema version of the machine-readable diagnostics
// report. Bump only on incompatible changes; consumers (CI artifact readers,
// the schema round-trip test) reject versions they do not know.
const ReportVersion = 1

// Report is the stable machine-readable output of a bigmap-vet run
// (cmd/bigmap-vet -json). Every diagnostic the analyzers produced is listed,
// audited (suppressed) sites included, so the artifact is a complete census
// of both violations and their written justifications.
type Report struct {
	// Version is the schema version (ReportVersion).
	Version int `json:"version"`
	// Module is the module path the run analyzed.
	Module string `json:"module"`
	// Analyzers names every analyzer that ran, sorted.
	Analyzers []string `json:"analyzers"`
	// Diagnostics holds every finding in position order. Empty slice (never
	// null) when the run was clean.
	Diagnostics []ReportDiagnostic `json:"diagnostics"`
	// Unsuppressed counts diagnostics with Suppressed == false — the number
	// that fails the vet gate.
	Unsuppressed int `json:"unsuppressed"`
	// Suppressed counts audited diagnostics.
	Suppressed int `json:"suppressed"`
}

// ReportDiagnostic is one finding. File is module-root-relative with forward
// slashes, so artifacts are comparable across machines.
type ReportDiagnostic struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// NewReport assembles a Report from raw diagnostics, relativizing file names
// against the module root.
func NewReport(modulePath, root string, analyzers []string, diags []Diagnostic) Report {
	r := Report{
		Version:     ReportVersion,
		Module:      modulePath,
		Analyzers:   append([]string(nil), analyzers...),
		Diagnostics: make([]ReportDiagnostic, 0, len(diags)),
	}
	sort.Strings(r.Analyzers)
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil {
			file = rel
		}
		r.Diagnostics = append(r.Diagnostics, ReportDiagnostic{
			Analyzer:   d.Analyzer,
			File:       filepath.ToSlash(file),
			Line:       d.Pos.Line,
			Column:     d.Pos.Column,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		})
		if d.Suppressed {
			r.Suppressed++
		} else {
			r.Unsuppressed++
		}
	}
	return r
}

// Validate checks the report against its schema: known version, non-empty
// module and analyzer names, every diagnostic well-formed (named analyzer
// from the Analyzers list, slash-separated relative file, positive position,
// non-empty message), and counts consistent with the diagnostic list.
func (r *Report) Validate() error {
	if r.Version != ReportVersion {
		return fmt.Errorf("report: unknown schema version %d (want %d)", r.Version, ReportVersion)
	}
	if r.Module == "" {
		return fmt.Errorf("report: empty module path")
	}
	known := make(map[string]bool, len(r.Analyzers))
	for i, name := range r.Analyzers {
		if name == "" {
			return fmt.Errorf("report: empty analyzer name at index %d", i)
		}
		if i > 0 && r.Analyzers[i-1] >= name {
			return fmt.Errorf("report: analyzers not sorted/unique at %q", name)
		}
		known[name] = true
	}
	if r.Diagnostics == nil {
		return fmt.Errorf("report: diagnostics must be an empty list, not null")
	}
	sup, unsup := 0, 0
	for i, d := range r.Diagnostics {
		if !known[d.Analyzer] {
			return fmt.Errorf("report: diagnostic %d names unknown analyzer %q", i, d.Analyzer)
		}
		if d.File == "" || filepath.IsAbs(d.File) {
			return fmt.Errorf("report: diagnostic %d has file %q (want module-relative)", i, d.File)
		}
		if d.Line <= 0 || d.Column <= 0 {
			return fmt.Errorf("report: diagnostic %d has position %d:%d", i, d.Line, d.Column)
		}
		if d.Message == "" {
			return fmt.Errorf("report: diagnostic %d has no message", i)
		}
		if d.Suppressed {
			sup++
		} else {
			unsup++
		}
	}
	if sup != r.Suppressed || unsup != r.Unsuppressed {
		return fmt.Errorf("report: counts (%d suppressed, %d unsuppressed) disagree with diagnostics (%d, %d)",
			r.Suppressed, r.Unsuppressed, sup, unsup)
	}
	return nil
}

// DecodeReport parses and validates a JSON report, rejecting unknown fields —
// the strict half of the schema round-trip contract.
func DecodeReport(data []byte) (Report, error) {
	var r Report
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Report{}, fmt.Errorf("report: decode: %w", err)
	}
	if err := r.Validate(); err != nil {
		return Report{}, err
	}
	return r, nil
}
