package allocfree_test

import (
	"testing"

	"github.com/bigmap/bigmap/internal/analysis/allocfree"
	"github.com/bigmap/bigmap/internal/analysis/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.RunModule(t, "testdata", allocfree.Analyzer, "dep", "hot")
}
