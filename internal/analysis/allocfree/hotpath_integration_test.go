package allocfree_test

import (
	"path/filepath"
	"testing"

	"github.com/bigmap/bigmap/internal/analysis"
	"github.com/bigmap/bigmap/internal/analysis/callgraph"
)

// execLoopFunctions names every function the steady-state loop of
// internal/executor's TestExecLoopZeroAllocs executes: reset the map, run the
// input through the interpreter and the batch tracer, then classify and
// compare against virgin. The zero-allocs guard proves this loop does not
// allocate at run time; this test proves the same loop is inside the
// allocfree analyzer's net, i.e. every one of these functions is reachable
// from a //bigmap:hotpath root in the real call graph. If a refactor detaches
// one of them (say, a new indirection the graph cannot see through), the
// analyzer would silently stop checking it — this test turns that silence
// into a failure.
var execLoopFunctions = []string{
	// Per-iteration pipeline driven by the test body.
	"(*github.com/bigmap/bigmap/internal/core.BigMap).Reset",
	"(*github.com/bigmap/bigmap/internal/executor.Executor).Execute",
	"(*github.com/bigmap/bigmap/internal/core.BigMap).ClassifyAndCompare",
	// Inside Execute: metric reset, target run, trace delivery, map fill.
	"(*github.com/bigmap/bigmap/internal/core.EdgeMetric).Begin",
	"(*github.com/bigmap/bigmap/internal/target.Interp).Run",
	"(*github.com/bigmap/bigmap/internal/executor.mapTracer).VisitBatch",
	"(*github.com/bigmap/bigmap/internal/executor.mapTracer).flush",
	"(*github.com/bigmap/bigmap/internal/core.EdgeMetric).Visit",
	"(*github.com/bigmap/bigmap/internal/core.BigMap).AddBatch",
	// Call events: the generated program has calls, so the tracer relays
	// them to the metric.
	"(*github.com/bigmap/bigmap/internal/executor.mapTracer).EnterCall",
	"(*github.com/bigmap/bigmap/internal/executor.mapTracer).LeaveCall",
	"(*github.com/bigmap/bigmap/internal/core.EdgeMetric).EnterCall",
	"(*github.com/bigmap/bigmap/internal/core.EdgeMetric).LeaveCall",
	// The merged word-level kernel behind ClassifyAndCompare.
	"github.com/bigmap/bigmap/internal/core.classifyCompareRegion",
}

// TestExecLoopIsCoveredByHotpathRoots builds the call graph over the real
// module and asserts every function in execLoopFunctions is reachable from a
// //bigmap:hotpath root. Skipped in -short mode: it type-checks four real
// packages.
func TestExecLoopIsCoveredByHotpathRoots(t *testing.T) {
	if testing.Short() {
		t.Skip("real-module call-graph build skipped in -short mode")
	}
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*analysis.Package
	for _, dir := range []string{"internal/core", "internal/target", "internal/executor", "internal/telemetry"} {
		pkg, err := mod.LoadDir(dir, false)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	g := callgraph.Build(pkgs)

	roots := g.FuncsWithDirective("hotpath")
	if len(roots) == 0 {
		t.Fatal("no //bigmap:hotpath roots found in internal/core, internal/target, internal/executor, internal/telemetry")
	}
	parents := g.Reachable(roots)

	for _, name := range execLoopFunctions {
		node := g.Lookup(name)
		if node == nil {
			t.Errorf("function %s is not in the call graph (renamed or removed? update execLoopFunctions)", name)
			continue
		}
		if _, ok := parents[node]; !ok {
			t.Errorf("%s executes in the zero-allocs loop but is not reachable from any //bigmap:hotpath root", name)
		}
	}
}
