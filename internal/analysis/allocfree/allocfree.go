// Package allocfree is the interprocedural hot-path allocation analyzer:
// the compile-time counterpart of the runtime zero-alloc benchmarks
// (TestExecLoopZeroAllocs*). Functions annotated
//
//	//bigmap:hotpath <what makes this hot>
//
// in their doc comment are roots. The analyzer builds the module call graph
// (package callgraph) and reports every allocation site in every function
// reachable from a root:
//
//   - make and new
//   - append (may grow the backing array)
//   - string concatenation (+ / +=) and string<->[]byte/[]rune conversions
//   - map and slice composite literals, and &composite (may escape)
//   - interface boxing: a non-pointer-shaped concrete value passed to an
//     interface parameter
//   - variadic calls that materialize their argument slice
//   - fmt.* calls (always allocate via their ...any signature)
//   - escaping closures and bound method values
//   - go statements (a goroutine allocates its stack)
//
// A site that is deliberate — amortized growth, cold error paths behind a
// crash verdict — is audited in place with //bigmap:alloc-ok <why>. The
// analyzer is deliberately stricter than the compiler's escape analysis:
// it cannot prove a &T{} stays on the stack, so it asks for an audit
// instead. Reachability limits (what the graph can and cannot resolve) are
// documented in package callgraph and DESIGN §15.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"github.com/bigmap/bigmap/internal/analysis"
	"github.com/bigmap/bigmap/internal/analysis/callgraph"
)

// HotpathDirective marks a root function's doc comment.
const HotpathDirective = "hotpath"

// Analyzer reports allocation sites reachable from //bigmap:hotpath roots.
var Analyzer = &analysis.Analyzer{
	Name:      "allocfree",
	Doc:       "report allocation sites reachable from //bigmap:hotpath functions",
	Directive: "alloc-ok",
	RunModule: run,
}

func run(pass *analysis.ModulePass) error {
	g := callgraph.Build(pass.Packages)
	roots := g.FuncsWithDirective(HotpathDirective)
	if len(roots) == 0 {
		return nil
	}
	parents := g.Reachable(roots)
	for _, n := range g.Nodes {
		if _, ok := parents[n]; !ok {
			continue
		}
		check(pass, n, rootOf(parents, n))
	}
	return nil
}

func rootOf(parents map[*callgraph.Node]*callgraph.Node, n *callgraph.Node) *callgraph.Node {
	path := callgraph.PathTo(parents, n)
	if len(path) == 0 {
		return n
	}
	return path[0]
}

type checker struct {
	pass *analysis.ModulePass
	node *callgraph.Node
	root *callgraph.Node
	info *types.Info

	// calleePos holds expressions in call position (the Fun of a call),
	// so function references elsewhere count as escaping values.
	calleePos map[ast.Expr]bool
	// localLits maps a function literal to the local variable it is
	// assigned to with :=, the one non-escaping store shape recognized.
	localLits map[*ast.FuncLit]types.Object
}

func check(pass *analysis.ModulePass, n *callgraph.Node, root *callgraph.Node) {
	body := n.Body()
	if body == nil {
		return
	}
	c := &checker{
		pass:      pass,
		node:      n,
		root:      root,
		info:      n.Pkg.Info,
		calleePos: make(map[ast.Expr]bool),
		localLits: make(map[*ast.FuncLit]types.Object),
	}
	c.prescan(body)
	ast.Inspect(body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.FuncLit:
			if e != n.Lit && c.litEscapes(body, e) {
				c.report(e.Pos(), "closure escapes to the heap")
			}
			return false // the literal's body is its own graph node
		case *ast.CallExpr:
			c.checkCall(e)
		case *ast.BinaryExpr:
			if tv := c.info.Types[e]; e.Op == token.ADD && tv.Value == nil && isString(tv.Type) {
				c.report(e.OpPos, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isString(c.info.Types[e.Lhs[0]].Type) {
				c.report(e.TokPos, "string concatenation allocates")
			}
		case *ast.CompositeLit:
			switch typeUnder(c.info.Types[e].Type).(type) {
			case *types.Map:
				c.report(e.Pos(), "map literal allocates")
			case *types.Slice:
				c.report(e.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					c.report(e.Pos(), "address of composite literal may escape to the heap")
				}
			}
		case *ast.SelectorExpr:
			if !c.calleePos[e] {
				if sel, ok := c.info.Selections[e]; ok && sel.Kind() == types.MethodVal {
					c.report(e.Pos(), "bound method value allocates a closure")
				}
			}
		case *ast.GoStmt:
			c.report(e.Pos(), "go statement allocates a goroutine")
		}
		return true
	})
}

func (c *checker) report(pos token.Pos, what string) {
	c.pass.Reportf(pos, "%s in %s, reachable from //bigmap:hotpath %s", what, c.node.Name(), c.root.Name())
}

// prescan records which expressions occupy call position.
func (c *checker) prescan(body ast.Node) {
	ast.Inspect(body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			if as, ok := node.(*ast.AssignStmt); ok && as.Tok == token.DEFINE && len(as.Lhs) == len(as.Rhs) {
				for i := range as.Lhs {
					lit, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit)
					if !ok {
						continue
					}
					if id, ok := as.Lhs[i].(*ast.Ident); ok {
						if obj := c.info.Defs[id]; obj != nil {
							c.localLits[lit] = obj
						}
					}
				}
			}
			return true
		}
		fun := ast.Unparen(call.Fun)
		c.calleePos[fun] = true
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			c.calleePos[sel.Sel] = true
		}
		return true
	})
}

// litEscapes reports whether a function literal's value outlives the
// statement creating it: anything but an immediate call or a := binding to
// a local used only in call position counts as escaping.
func (c *checker) litEscapes(body ast.Node, lit *ast.FuncLit) bool {
	if c.calleePos[lit] {
		return false // immediately invoked: func(){...}()
	}
	obj, ok := c.localLits[lit]
	if !ok {
		return true // passed, stored, or returned
	}
	escapes := false
	ast.Inspect(body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok || c.info.Uses[id] != obj {
			return true
		}
		if !c.calleePos[id] {
			escapes = true
		}
		return true
	})
	return escapes
}

func (c *checker) checkCall(call *ast.CallExpr) {
	info := c.info
	// Conversions: only the string<->byte/rune-slice shapes copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		to, from := tv.Type, info.Types[call.Args[0]].Type
		switch {
		case isString(to) && isByteOrRuneSlice(from):
			c.report(call.Pos(), "conversion to string allocates")
		case isByteOrRuneSlice(to) && isString(from):
			c.report(call.Pos(), "conversion from string allocates")
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := info.Uses[id].(*types.Builtin); ok {
			switch bi.Name() {
			case "make":
				c.report(call.Pos(), "make allocates")
			case "new":
				c.report(call.Pos(), "new allocates")
			case "append":
				c.report(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}
	// fmt.* always allocates through its ...any signature.
	if pkg, fn := analysis.CalleePkgFunc(info, call); pkg == "fmt" {
		c.report(call.Pos(), fmt.Sprintf("fmt.%s allocates", fn))
		return
	}
	sig, ok := typeUnder(info.Types[call.Fun].Type).(*types.Signature)
	if !ok {
		return
	}
	// A variadic call with arguments materializes a slice unless it spreads
	// an existing one with ... .
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len() {
		c.report(call.Pos(), "variadic call allocates its argument slice")
	}
	// Interface boxing at the call boundary: a concrete non-pointer-shaped
	// argument passed to an interface parameter is heap-boxed.
	fixed := sig.Params().Len()
	if sig.Variadic() {
		fixed--
	}
	for i := 0; i < len(call.Args) && i < fixed; i++ {
		param := sig.Params().At(i).Type()
		if !types.IsInterface(typeUnder(param)) {
			continue
		}
		arg := info.Types[call.Args[i]].Type
		if arg == nil || types.IsInterface(typeUnder(arg)) || pointerShaped(arg) || isUntypedNil(arg) {
			continue
		}
		c.report(call.Args[i].Pos(), fmt.Sprintf("passing %s as %s boxes into an interface", arg, param))
	}
}

func isString(t types.Type) bool {
	b, ok := typeUnder(t).(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := typeUnder(t).(*types.Slice)
	if !ok {
		return false
	}
	e, ok := typeUnder(s.Elem()).(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of t fit an interface word without a
// heap box: pointers, channels, maps, funcs and unsafe pointers. Slices,
// strings, structs and scalars all copy to the heap when boxed.
func pointerShaped(t types.Type) bool {
	switch u := typeUnder(t).(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}
