// Package dep pins cross-package reachability: hot.Root calls Far, so its
// allocation is reported even though no root lives in this package.
package dep

// Far is reached cross-package from hot.Root.
func Far(n int) {
	buf := make([]byte, n) // want "make allocates"
	_ = buf
}
