module alloctest

go 1.22
