// Package hot exercises the allocfree allocation taxonomy: every reachable
// allocation shape is flagged, audited sites are suppressed, and functions
// outside the hot region stay silent.
package hot

import (
	"fmt"

	"alloctest/dep"
)

// Sink is dispatched through by Root; (*box).Emit becomes hot via the
// interface edge.
type Sink interface{ Emit(int) }

type box struct{ n int }

func (b *box) Emit(v int) {
	b.n = v
	grow(v)
}

type loop struct {
	cb func(int) // devirtualized callback, set once below
}

func (l *loop) run(v int) { l.cb(v) }

// Root is the analyzer's root: everything reachable from here is checked.
//
//bigmap:hotpath testdata root
func Root(s Sink, n int) {
	s.Emit(n)
	l := loop{cb: step}
	l.run(n)
	dep.Far(n)
	audited(n)
	closures(n)
	boxing(n)
	variadic(n)
	logf(n)
	spawn(n)
}

func step(v int) {
	m := make([]byte, v) // want "make allocates"
	_ = m
	p := new(int) // want "new allocates"
	_ = p
}

func grow(v int) {
	var s []int
	s = append(s, v) // want "append may grow its backing array"
	_ = s
	var buf []byte
	name := string(buf) // want "conversion to string allocates"
	bs := []byte(name)  // want "conversion from string allocates"
	name += "!"         // want "string concatenation allocates"
	two := name + name  // want "string concatenation allocates"
	_, _ = bs, two
	m := map[int]int{} // want "map literal allocates"
	_ = m
	sl := []int{1, 2} // want "slice literal allocates"
	_ = sl
	bp := &box{} // want "address of composite literal may escape"
	_ = bp
}

// audited shows a justified suppression: flagged, silenced, no want.
func audited(n int) {
	buf := make([]byte, n) //bigmap:alloc-ok testdata audited amortized growth
	_ = buf
}

func closures(v int) {
	f := func(x int) { _ = x } // local and only ever called: no report
	f(v)
	g := func(x int) { _ = x } // want "closure escapes to the heap"
	use(g)
	func() {}() // immediately invoked: no report
	h := step   // a declared function used as a value does not allocate
	h(v)
	b := &box{}  //bigmap:alloc-ok testdata audited receiver setup
	b.n = v      // spacer: a directive also covers the line directly below it
	mv := b.Emit // want "bound method value allocates a closure"
	mv(v)
}

func use(fn func(int)) { fn(0) }

func boxing(v int) {
	sinkAny(v)  // want "boxes into an interface"
	sinkAny(&v) // pointers fit the interface word: no report
}

func sinkAny(x interface{}) { _ = x }

func variadic(v int) {
	many(v, v)       // want "variadic call allocates its argument slice"
	many()           // zero variadic arguments pass nil: no report
	vals := []int{9} // want "slice literal allocates"
	many(vals...)    // spreading an existing slice: no report
}

func many(xs ...int) { _ = xs }

func logf(v int) {
	fmt.Println(v) // want "fmt.Println allocates"
}

func spawn(v int) {
	go step(v) // want "go statement allocates a goroutine"
}

// Cold is unreachable from any root: its allocation is not reported.
func Cold() []byte { return make([]byte, 1) }
