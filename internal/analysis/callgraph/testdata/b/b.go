// Package b exercises every call shape the graph builder resolves:
// recursion, cross-package statics, interface dispatch, function-valued
// fields, argument-to-parameter flow, literals, and the signature fallback.
package b

import "graphtest/a"

type engine struct {
	cb func(int) // function-valued field, set once at construction
}

func step(v int) { _ = v }

// New flows step into the cb field through a composite literal.
func New() *engine {
	return &engine{cb: step}
}

// Drive devirtualizes the field call: the graph must resolve cb to step.
//
//bigmap:hotpath testdata root for FuncsWithDirective
func (e *engine) Drive(v int) {
	e.cb(v)
}

// Loop is self-recursive and calls cross-package.
func Loop(n int) int {
	if n == 0 {
		return a.Helper()
	}
	return Loop(n - 1)
}

// Dispatch triggers interface dispatch inside package a.
func Dispatch() {
	a.Use(a.Console{}, 1)
}

// Closure calls a tracked local function literal.
func Closure() {
	f := func(v int) { step(v) }
	f(2)
}

// Param receives a callback and calls it; Caller binds step to it.
func Param(cb func(int)) { cb(3) }

// Caller flows step into Param's parameter.
func Caller() { Param(step) }

// handlers holds step behind a slice element, which value flow does not
// track: calls through it resolve by the address-taken signature fallback.
var handlers = []func(int){step}

// Fallback calls through a slice element.
func Fallback() {
	handlers[0](4)
}
