module graphtest

go 1.22
