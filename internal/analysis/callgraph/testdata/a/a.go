// Package a is the callee side of the callgraph testdata module: an
// interface with two implementations and a plain cross-package helper.
package a

// Sink is dispatched through by b's callers.
type Sink interface{ Emit(int) }

// Console implements Sink with a value receiver.
type Console struct{}

func (Console) Emit(int) {}

// Ring implements Sink with a pointer receiver.
type Ring struct{ n int }

func (r *Ring) Emit(v int) { r.n += v }

// Use calls through the interface: the graph must edge to both Emit
// implementations.
func Use(s Sink, v int) { s.Emit(v) }

// Helper is a cross-package static callee.
func Helper() int { return 1 }
