// Package callgraph builds a static call graph over the type-checked
// packages of an analysis.Module, for the interprocedural analyzers
// (allocfree). The constructor resolves four call shapes:
//
//   - Direct calls of package-level functions and concrete methods,
//     including method expressions (T.M) and promoted methods.
//   - Interface method calls, bounded by in-module implementations: an
//     i.M() call adds one edge per named type in the analyzed packages
//     whose method set satisfies the interface.
//   - Calls through function values (fields, variables, parameters) — the
//     shape the executor's devirtualized hot loop uses for callbacks like
//     the ExecuteBatch visit function. A flow-insensitive, field-sensitive
//     propagation tracks which functions are assigned into each object
//     (direct assignment, composite-literal field, argument-to-parameter
//     binding) to a fixpoint.
//   - Function literals, which are first-class nodes: a closure passed into
//     a hot function is reachable even when its enclosing function is not.
//
// When a dynamic call's value flow resolves to nothing (the value came
// through a channel, a map, a slice element or a function return), the
// builder falls back to linking every address-taken function of identical
// signature — imprecise but bounded, and sound for the shapes the
// repository uses.
//
// Soundness limits (documented contract, see DESIGN §15): function values
// returned from calls, stored in or loaded from containers (maps, slices,
// channels), and reflection are resolved only by the signature fallback;
// calls into the standard library are not edges (std code cannot call back
// into module code except through a passed function value, which the
// fallback covers when its address is taken in module code). Test files are
// never part of the graph.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/bigmap/bigmap/internal/analysis"
)

// EdgeKind classifies how a call site was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call of a known function or concrete method.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is an interface method call, resolved to one in-module
	// implementation per edge.
	EdgeInterface
	// EdgeFuncValue is a call through a function-valued expression, resolved
	// by value-flow tracking or the signature fallback.
	EdgeFuncValue
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	case EdgeFuncValue:
		return "funcvalue"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge is one resolved call: the enclosing function calls Callee at Site.
type Edge struct {
	Callee *Node
	Site   token.Pos
	Kind   EdgeKind
}

// Node is one function in the graph: a declared function or method
// (Func/Decl set) or a function literal (Lit set).
type Node struct {
	// Func is the declared function or method object; nil for literals.
	Func *types.Func
	// Decl is the declaration syntax; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal syntax; nil for declared functions.
	Lit *ast.FuncLit
	// Pkg is the package the function's body lives in.
	Pkg *analysis.Package
	// Out lists the node's resolved call sites in source order.
	Out []Edge

	name string
}

// Name returns a stable human-readable identifier: the object's FullName
// for declared functions ("(*pkg.T).M", "pkg.F"), or the enclosing
// function's name with a $N suffix for literals ("pkg.F$1").
func (n *Node) Name() string { return n.name }

// Pos returns the function's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Body returns the function body, nil for bodyless declarations.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Graph is the module call graph.
type Graph struct {
	// Nodes lists every function in deterministic (package, file, position)
	// order.
	Nodes []*Node

	fset   *token.FileSet
	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node
}

// NodeFor returns the node of a declared function or method, nil if the
// function has no body in the analyzed packages.
func (g *Graph) NodeFor(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.byFunc[origin(fn)]
}

// LitNode returns the node of a function literal, nil if unknown.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Lookup finds a declared node by its Name() string, nil if absent.
func (g *Graph) Lookup(name string) *Node {
	for _, n := range g.Nodes {
		if n.name == name {
			return n
		}
	}
	return nil
}

// Reachable runs a breadth-first traversal from roots and returns, for every
// reachable node, the node it was first discovered from (roots map to nil).
// The parent chain reconstructs one concrete call path for diagnostics.
func (g *Graph) Reachable(roots []*Node) map[*Node]*Node {
	parents := make(map[*Node]*Node, len(roots))
	queue := make([]*Node, 0, len(roots))
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, ok := parents[r]; ok {
			continue
		}
		parents[r] = nil
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if _, ok := parents[e.Callee]; ok {
				continue
			}
			parents[e.Callee] = n
			queue = append(queue, e.Callee)
		}
	}
	return parents
}

// PathTo reconstructs the root→…→n call chain from a Reachable parent map.
func PathTo(parents map[*Node]*Node, n *Node) []*Node {
	var rev []*Node
	for cur := n; cur != nil; cur = parents[cur] {
		rev = append(rev, cur)
		if len(rev) > len(parents)+1 {
			break // defensive: corrupt parent map
		}
	}
	path := make([]*Node, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path
}

// FuncsWithDirective returns the declared nodes whose doc comment carries
// the //bigmap:<directive> marker (justification text optional — the marker
// declares a property, unlike a suppression, which audits one).
func (g *Graph) FuncsWithDirective(directive string) []*Node {
	want := analysis.DirectivePrefix + directive
	var out []*Node
	for _, n := range g.Nodes {
		if n.Decl == nil || n.Decl.Doc == nil {
			continue
		}
		for _, c := range n.Decl.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == want || strings.HasPrefix(text, want+" ") {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// origin normalizes generic instantiations to their declared object.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}
