package callgraph_test

import (
	"path/filepath"
	"testing"

	"github.com/bigmap/bigmap/internal/analysis"
	"github.com/bigmap/bigmap/internal/analysis/callgraph"
)

func buildTestGraph(t *testing.T) *callgraph.Graph {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := analysis.LoadModule(dir)
	if err != nil {
		t.Fatalf("loading testdata module: %v", err)
	}
	var pkgs []*analysis.Package
	for _, rel := range []string{"a", "b"} {
		pkg, err := mod.LoadDir(rel, false)
		if err != nil {
			t.Fatalf("loading %s: %v", rel, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return callgraph.Build(pkgs)
}

// edge reports whether the graph has an edge from→to, optionally of a
// specific kind (pass -1 to accept any).
func edge(t *testing.T, g *callgraph.Graph, from, to string, kind int) bool {
	t.Helper()
	n := g.Lookup(from)
	if n == nil {
		t.Fatalf("no node named %q", from)
	}
	for _, e := range n.Out {
		if e.Callee.Name() == to && (kind < 0 || int(e.Kind) == kind) {
			return true
		}
	}
	return false
}

func wantEdge(t *testing.T, g *callgraph.Graph, from, to string, kind callgraph.EdgeKind) {
	t.Helper()
	if !edge(t, g, from, to, int(kind)) {
		t.Errorf("missing %s edge %s -> %s", kind, from, to)
	}
}

func TestStaticAndRecursiveEdges(t *testing.T) {
	g := buildTestGraph(t)
	wantEdge(t, g, "graphtest/b.Loop", "graphtest/b.Loop", callgraph.EdgeStatic)
	wantEdge(t, g, "graphtest/b.Loop", "graphtest/a.Helper", callgraph.EdgeStatic)
	wantEdge(t, g, "graphtest/b.Dispatch", "graphtest/a.Use", callgraph.EdgeStatic)
}

func TestInterfaceDispatchBoundedByImplementations(t *testing.T) {
	g := buildTestGraph(t)
	wantEdge(t, g, "graphtest/a.Use", "(graphtest/a.Console).Emit", callgraph.EdgeInterface)
	wantEdge(t, g, "graphtest/a.Use", "(*graphtest/a.Ring).Emit", callgraph.EdgeInterface)
	// No spurious interface edges to unrelated functions.
	if edge(t, g, "graphtest/a.Use", "graphtest/b.step", -1) {
		t.Errorf("interface call must not edge to non-implementations")
	}
}

func TestFunctionValuedFieldDevirtualizes(t *testing.T) {
	g := buildTestGraph(t)
	// step flowed into the cb field via a composite literal in New; the
	// field call in Drive must resolve to it precisely (no fallback).
	wantEdge(t, g, "(*graphtest/b.engine).Drive", "graphtest/b.step", callgraph.EdgeFuncValue)
}

func TestArgumentToParameterFlow(t *testing.T) {
	g := buildTestGraph(t)
	wantEdge(t, g, "graphtest/b.Caller", "graphtest/b.Param", callgraph.EdgeStatic)
	wantEdge(t, g, "graphtest/b.Param", "graphtest/b.step", callgraph.EdgeFuncValue)
}

func TestClosureNodesAndCalls(t *testing.T) {
	g := buildTestGraph(t)
	wantEdge(t, g, "graphtest/b.Closure", "graphtest/b.Closure$1", callgraph.EdgeFuncValue)
	wantEdge(t, g, "graphtest/b.Closure$1", "graphtest/b.step", callgraph.EdgeStatic)
}

func TestSignatureFallbackForUntrackedValues(t *testing.T) {
	g := buildTestGraph(t)
	// handlers[0](4): the slice element is untracked, so the call links to
	// every address-taken func(int) — step among them.
	wantEdge(t, g, "graphtest/b.Fallback", "graphtest/b.step", callgraph.EdgeFuncValue)
}

func TestReachableAndPath(t *testing.T) {
	g := buildTestGraph(t)
	root := g.Lookup("graphtest/b.Caller")
	parents := g.Reachable([]*callgraph.Node{root})
	step := g.Lookup("graphtest/b.step")
	if _, ok := parents[step]; !ok {
		t.Fatalf("step not reachable from Caller")
	}
	path := callgraph.PathTo(parents, step)
	if len(path) != 3 || path[0] != root || path[2] != step {
		names := make([]string, len(path))
		for i, n := range path {
			names[i] = n.Name()
		}
		t.Fatalf("unexpected path: %v", names)
	}
	// Unreachable nodes are absent.
	if _, ok := parents[g.Lookup("graphtest/b.Fallback")]; ok {
		t.Errorf("Fallback must not be reachable from Caller")
	}
}

func TestFuncsWithDirective(t *testing.T) {
	g := buildTestGraph(t)
	roots := g.FuncsWithDirective("hotpath")
	if len(roots) != 1 || roots[0].Name() != "(*graphtest/b.engine).Drive" {
		names := make([]string, len(roots))
		for i, n := range roots {
			names[i] = n.Name()
		}
		t.Fatalf("hotpath roots = %v, want [(*graphtest/b.engine).Drive]", names)
	}
}
