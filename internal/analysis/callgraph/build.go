package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"github.com/bigmap/bigmap/internal/analysis"
)

// Build constructs the call graph of the given type-checked packages. The
// packages should come from one Module loaded without test files, so that
// cross-package object identities agree (the loader resolves imports to the
// tests=false variant of each package).
func Build(pkgs []*analysis.Package) *Graph {
	b := &builder{
		g: &Graph{
			byFunc: make(map[*types.Func]*Node),
			byLit:  make(map[*ast.FuncLit]*Node),
		},
		sources:   make(map[types.Object]map[*Node]bool),
		flowsInto: make(map[types.Object][]types.Object),
		addrTaken: make(map[*Node]bool),
	}
	if len(pkgs) > 0 {
		b.g.fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		b.collectNodes(pkg)
		b.collectNamedTypes(pkg)
	}
	for _, pkg := range pkgs {
		for _, f := range b.moduleFiles(pkg) {
			b.collectFlows(pkg, f)
		}
	}
	b.propagate()
	for _, n := range b.g.Nodes {
		b.buildEdges(n)
	}
	return b.g
}

type builder struct {
	g *Graph

	// namedTypes lists every non-interface named type declared in the
	// analyzed packages, candidates for interface dispatch.
	namedTypes []*types.Named

	// sources maps a function-typed object (var, field, parameter) to the
	// set of function nodes whose values are assigned into it.
	sources map[types.Object]map[*Node]bool
	// flowsInto records object-to-object copies: targets of the key flow
	// into each listed object during propagation.
	flowsInto map[types.Object][]types.Object
	// addrTaken marks functions whose value is used outside call position —
	// the candidate set for the signature fallback.
	addrTaken map[*Node]bool
}

// moduleFiles returns the package's non-test files. Packages loaded without
// tests contain none, but the guard keeps the graph honest if a caller hands
// over a tests=true load.
func (b *builder) moduleFiles(pkg *analysis.Package) []*ast.File {
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	return files
}

// collectNodes creates one node per declared function with a body and one
// per function literal, naming literals after their enclosing function.
func (b *builder) collectNodes(pkg *analysis.Package) {
	for _, f := range b.moduleFiles(pkg) {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
				if fn == nil || d.Body == nil {
					continue
				}
				n := &Node{Func: fn, Decl: d, Pkg: pkg, name: fn.FullName()}
				b.g.Nodes = append(b.g.Nodes, n)
				b.g.byFunc[fn] = n
				b.collectLits(pkg, d.Body, n.name)
			case *ast.GenDecl:
				// Function literals in package-level initializers (var
				// handlers = ...) are callable through value flow.
				b.collectLits(pkg, d, pkg.Path+".init")
			}
		}
	}
}

// collectLits registers every function literal under root as a node, with
// $1, $2, ... suffixes in source order (nested literals recurse with their
// own name as the new prefix).
func (b *builder) collectLits(pkg *analysis.Package, root ast.Node, prefix string) {
	count := 0
	ast.Inspect(root, func(node ast.Node) bool {
		if node == root {
			return true
		}
		lit, ok := node.(*ast.FuncLit)
		if !ok {
			return true
		}
		count++
		n := &Node{Lit: lit, Pkg: pkg, name: prefix + "$" + strconv.Itoa(count)}
		b.g.Nodes = append(b.g.Nodes, n)
		b.g.byLit[lit] = n
		b.collectLits(pkg, lit.Body, n.name)
		return false // children handled by the recursive call
	})
}

func (b *builder) collectNamedTypes(pkg *analysis.Package) {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		b.namedTypes = append(b.namedTypes, named)
	}
}

// --- value flow collection -------------------------------------------------

// collectFlows walks one file recording every way a function value can move
// into an object: assignments, var initializers, composite-literal fields,
// and call-argument-to-parameter binding. It also marks address-taken
// functions (any value use outside call position) for the fallback.
func (b *builder) collectFlows(pkg *analysis.Package, f *ast.File) {
	info := pkg.Info
	// calleePos holds the expressions occupying call position (the Fun of
	// some call); function references elsewhere are address-taken.
	calleePos := make(map[ast.Expr]bool)
	ast.Inspect(f, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		calleePos[fun] = true
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			calleePos[sel.Sel] = true
		}
		return true
	})

	ast.Inspect(f, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					b.flowInto(pkg, b.lhsObject(info, n.Lhs[i]), n.Rhs[i])
				}
			}
			// Tuple assignment from a call: function-valued results are a
			// documented soundness limit (signature fallback covers them).
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					b.flowInto(pkg, info.Defs[n.Names[i]], n.Values[i])
				}
			}
		case *ast.CompositeLit:
			b.flowCompositeLit(pkg, n)
		case *ast.CallExpr:
			b.flowCallArgs(pkg, n)
		case *ast.ReturnStmt:
			// Returned function values: soundness limit, fallback only.
		case *ast.Ident:
			if calleePos[n] {
				return true
			}
			if fn, ok := info.Uses[n].(*types.Func); ok {
				if target := b.g.NodeFor(fn); target != nil {
					b.addrTaken[target] = true
				}
			}
		case *ast.SelectorExpr:
			if calleePos[n] {
				return true
			}
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				if target := b.g.NodeFor(sel.Obj().(*types.Func)); target != nil {
					b.addrTaken[target] = true
				}
				// Keep descending: the receiver expression may hold calls
				// and further references (re-marking via Sel is idempotent).
			}
		case *ast.FuncLit:
			if !calleePos[n] {
				if target := b.g.byLit[n]; target != nil {
					b.addrTaken[target] = true
				}
			}
		}
		return true
	})
}

// lhsObject resolves an assignment target to its object: a variable ident or
// a struct field selector. Index and dereference targets return nil
// (container element flow is a documented soundness limit).
func (b *builder) lhsObject(info *types.Info, lhs ast.Expr) types.Object {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := info.Defs[l]; obj != nil {
			return obj
		}
		return info.Uses[l]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[l]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return info.Uses[l.Sel] // qualified package-level var
	}
	return nil
}

// flowInto records that the value of rhs flows into obj.
func (b *builder) flowInto(pkg *analysis.Package, obj types.Object, rhs ast.Expr) {
	if obj == nil {
		return
	}
	targets, from := b.valueSources(pkg, rhs)
	for _, t := range targets {
		b.addSource(obj, t)
	}
	if from != nil && from != obj {
		b.flowsInto[from] = append(b.flowsInto[from], obj)
	}
}

// valueSources resolves an expression to the function nodes it directly
// denotes and/or the object whose contents it copies.
func (b *builder) valueSources(pkg *analysis.Package, e ast.Expr) (targets []*Node, from types.Object) {
	info := pkg.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		switch obj := info.Uses[e].(type) {
		case *types.Func:
			if n := b.g.NodeFor(obj); n != nil {
				return []*Node{n}, nil
			}
		case *types.Var:
			return nil, obj
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				if n := b.g.NodeFor(sel.Obj().(*types.Func)); n != nil {
					return []*Node{n}, nil
				}
			case types.FieldVal:
				return nil, sel.Obj()
			}
			return nil, nil
		}
		// Qualified reference: pkg.F or pkg.Var.
		switch obj := info.Uses[e.Sel].(type) {
		case *types.Func:
			if n := b.g.NodeFor(obj); n != nil {
				return []*Node{n}, nil
			}
		case *types.Var:
			return nil, obj
		}
	case *ast.FuncLit:
		if n := b.g.byLit[e]; n != nil {
			return []*Node{n}, nil
		}
	case *ast.TypeAssertExpr:
		return b.valueSources(pkg, e.X)
	}
	return nil, nil
}

func (b *builder) addSource(obj types.Object, n *Node) {
	set := b.sources[obj]
	if set == nil {
		set = make(map[*Node]bool)
		b.sources[obj] = set
	}
	set[n] = true
}

// flowCompositeLit binds composite-literal elements to struct fields, so
// Fuzzer{batchVisit: f.visitBatched}-style construction is tracked.
func (b *builder) flowCompositeLit(pkg *analysis.Package, lit *ast.CompositeLit) {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return
	}
	st, ok := typeUnder(tv.Type).(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if field, ok := pkg.Info.Uses[key].(*types.Var); ok {
				b.flowInto(pkg, field, kv.Value)
			}
			continue
		}
		if i < st.NumFields() {
			b.flowInto(pkg, st.Field(i), elt)
		}
	}
}

// flowCallArgs binds call arguments to the parameters of statically known
// callees, which is how a callback passed into ExecuteBatch reaches the
// dynamic call inside it.
func (b *builder) flowCallArgs(pkg *analysis.Package, call *ast.CallExpr) {
	sig := b.staticCalleeSig(pkg, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param *types.Var
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			param = params.At(i)
		case params.Len() > 0:
			param = params.At(params.Len() - 1) // variadic tail
		}
		if param != nil {
			b.flowInto(pkg, param, arg)
		}
	}
}

// staticCalleeSig returns the signature of a call whose callee resolves to a
// declared module function or a function literal — the cases where parameter
// objects are part of the analyzed syntax.
func (b *builder) staticCalleeSig(pkg *analysis.Package, call *ast.CallExpr) *types.Signature {
	info := pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok && b.g.NodeFor(fn) != nil {
			return fn.Type().(*types.Signature)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok && b.g.NodeFor(fn) != nil {
				return fn.Type().(*types.Signature)
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && b.g.NodeFor(fn) != nil {
			return fn.Type().(*types.Signature)
		}
	case *ast.FuncLit:
		if tv, ok := info.Types[fun]; ok {
			if sig, ok := tv.Type.(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

// propagate runs the object-to-object copy relation to a fixpoint, so
// sources assigned into a field reach the parameters it is later passed to.
func (b *builder) propagate() {
	work := make([]types.Object, 0, len(b.sources))
	for obj := range b.sources {
		work = append(work, obj)
	}
	for len(work) > 0 {
		obj := work[len(work)-1]
		work = work[:len(work)-1]
		for _, dst := range b.flowsInto[obj] {
			changed := false
			for n := range b.sources[obj] {
				if set := b.sources[dst]; set == nil || !set[n] {
					b.addSource(dst, n)
					changed = true
				}
			}
			if changed {
				work = append(work, dst)
			}
		}
	}
}

// --- edge construction -----------------------------------------------------

// buildEdges resolves every call in the node's own body (nested literals are
// their own nodes and are skipped).
func (b *builder) buildEdges(n *Node) {
	body := n.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			// A literal in call position still produces an edge from this
			// node (handled at its CallExpr); its body belongs to its own
			// node either way.
			_ = lit
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok {
			b.resolveCall(n, call)
			// Keep descending: arguments may contain further calls. The
			// callee literal, if any, is cut off by the FuncLit case above.
		}
		return true
	})
}

func (b *builder) addEdge(n *Node, callee *Node, site token.Pos, kind EdgeKind) {
	if callee == nil {
		return
	}
	n.Out = append(n.Out, Edge{Callee: callee, Site: site, Kind: kind})
}

func (b *builder) resolveCall(n *Node, call *ast.CallExpr) {
	info := n.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	fun := ast.Unparen(call.Fun)
	// Generic instantiation syntax: f[T](...) — resolve through the index.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if tv, ok := info.Types[idx.X]; ok {
			if _, isSig := typeUnder(tv.Type).(*types.Signature); isSig {
				fun = ast.Unparen(idx.X)
			}
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}

	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Builtin:
			return
		case *types.Func:
			b.addEdge(n, b.g.NodeFor(obj), call.Pos(), EdgeStatic)
			return
		case *types.Var:
			b.dynamicCall(n, call, obj)
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn := sel.Obj().(*types.Func)
				if iface, ok := typeUnder(sel.Recv()).(*types.Interface); ok {
					b.interfaceCall(n, call, iface, fn.Name())
					return
				}
				b.addEdge(n, b.g.NodeFor(fn), call.Pos(), EdgeStatic)
				return
			case types.FieldVal:
				b.dynamicCall(n, call, sel.Obj())
				return
			}
			return
		}
		// Qualified: pkg.F(...) or pkg.Var(...).
		switch obj := info.Uses[f.Sel].(type) {
		case *types.Func:
			b.addEdge(n, b.g.NodeFor(obj), call.Pos(), EdgeStatic)
			return
		case *types.Var:
			b.dynamicCall(n, call, obj)
			return
		}
	case *ast.FuncLit:
		b.addEdge(n, b.g.byLit[f], call.Pos(), EdgeStatic)
		return
	}
	// Anything else — a call of a call's result, an indexed function slice,
	// a received channel value — resolves by signature fallback.
	b.signatureFallback(n, call)
}

// dynamicCall links a call through a function-valued object to its tracked
// sources, or falls back to signature matching when tracking found nothing.
func (b *builder) dynamicCall(n *Node, call *ast.CallExpr, obj types.Object) {
	if set := b.sources[obj]; len(set) > 0 {
		for _, callee := range sortedNodes(set) {
			b.addEdge(n, callee, call.Pos(), EdgeFuncValue)
		}
		return
	}
	b.signatureFallback(n, call)
}

// interfaceCall links an interface method call to the matching method of
// every in-module named type that satisfies the interface.
func (b *builder) interfaceCall(n *Node, call *ast.CallExpr, iface *types.Interface, method string) {
	for _, named := range b.namedTypes {
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			ptr := types.NewPointer(named)
			if !types.Implements(ptr, iface) {
				continue
			}
			recv = ptr
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			b.addEdge(n, b.g.NodeFor(fn), call.Pos(), EdgeInterface)
		}
	}
}

// signatureFallback links the call to every address-taken function whose
// signature is identical to the callee expression's type — the conservative
// answer for values the flow tracking cannot follow.
func (b *builder) signatureFallback(n *Node, call *ast.CallExpr) {
	tv, ok := n.Pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := typeUnder(tv.Type).(*types.Signature)
	if !ok {
		return
	}
	for _, cand := range b.g.Nodes {
		if !b.addrTaken[cand] {
			continue
		}
		if sigCompatible(nodeSignature(cand), sig) {
			b.addEdge(n, cand, call.Pos(), EdgeFuncValue)
		}
	}
}

func nodeSignature(n *Node) *types.Signature {
	if n.Func != nil {
		return n.Func.Type().(*types.Signature)
	}
	if tv, ok := n.Pkg.Info.Types[n.Lit]; ok {
		if sig, ok := tv.Type.(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// sigCompatible compares parameter and result types, ignoring receivers (a
// bound method value has the receiver folded away).
func sigCompatible(a, b *types.Signature) bool {
	if a == nil || b == nil {
		return false
	}
	if a.Variadic() != b.Variadic() ||
		a.Params().Len() != b.Params().Len() ||
		a.Results().Len() != b.Results().Len() {
		return false
	}
	for i := 0; i < a.Params().Len(); i++ {
		if !types.Identical(a.Params().At(i).Type(), b.Params().At(i).Type()) {
			return false
		}
	}
	for i := 0; i < a.Results().Len(); i++ {
		if !types.Identical(a.Results().At(i).Type(), b.Results().At(i).Type()) {
			return false
		}
	}
	return true
}

// sortedNodes returns the set's nodes in graph order for deterministic edges.
func sortedNodes(set map[*Node]bool) []*Node {
	out := make([]*Node, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	// Insertion sort on Name(): sets are tiny (devirtualized callbacks have
	// one or two sources).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].name > out[j].name; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}
