// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface, just large enough to host the
// repository's invariant checkers (bigmap-vet). The build environment has no
// module proxy access, so the framework is built on the standard library
// alone: go/parser for syntax, go/types for semantics, and the "source"
// importer for the standard library.
//
// The API deliberately mirrors x/tools so the analyzers could be ported to
// the real framework by swapping imports: an Analyzer bundles a name, a doc
// string and a Run function; Run receives a Pass holding one type-checked
// package and reports Diagnostics.
//
// Suppression. Every analyzer names a directive (e.g. "nondeterministic-ok").
// A comment of the form
//
//	//bigmap:nondeterministic-ok <why>
//
// on the offending line, or on a line by itself directly above it, suppresses
// that analyzer's diagnostics for the line. The <why> justification is
// mandatory: a bare directive with no text does not suppress, so every
// audited site carries its reasoning in the source. The framework applies
// suppression centrally in Pass.Report, so analyzers just report every
// violation they see; audited sites stay visible (and greppable) in the
// source instead of disappearing into a config file.
//
// Two analyzer shapes exist. Run analyzers inspect one package at a time
// (the x/tools unit of work). RunModule analyzers are interprocedural: they
// receive every loaded package at once through a ModulePass, which is how
// the call-graph-based checkers (allocfree) see across package boundaries.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DirectivePrefix introduces a suppression comment: //bigmap:<directive>.
const DirectivePrefix = "bigmap:"

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run flags.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Directive is the suppression directive (without the bigmap: prefix)
	// that silences this analyzer on an audited line, e.g.
	// "nondeterministic-ok". Empty means the analyzer cannot be suppressed.
	Directive string
	// Run inspects one package and reports violations via pass.Report.
	// Exactly one of Run and RunModule must be set.
	Run func(pass *Pass) error
	// RunModule inspects every loaded package at once — the interprocedural
	// analyzer shape. Exactly one of Run and RunModule must be set.
	RunModule func(pass *ModulePass) error
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks a diagnostic silenced by an audited (justified)
	// //bigmap:<directive> comment. Suppressed diagnostics never fail a vet
	// run; they are retained so machine-readable output can account for
	// every audited site.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds every syntax file of the package, including in-package
	// _test.go files when the package was loaded with tests.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Report receives one diagnostic; the framework wraps it with
	// suppression handling before it reaches the sink.
	report func(Diagnostic)

	// suppressed counts diagnostics silenced by a directive, for -verbose
	// style accounting.
	suppressed int

	// directives maps file name -> set of lines carrying this analyzer's
	// suppression directive. Built lazily.
	directives map[string]map[int]bool
}

// IsTestFile reports whether f is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// Reportf reports a violation at pos. When the line (or the line above it)
// carries the analyzer's suppression directive with a justification, the
// diagnostic is recorded with Suppressed set instead of being dropped, so
// sinks that account for audited sites (the -json report) still see it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	d := Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)}
	if p.suppressedAt(position) {
		p.suppressed++
		d.Suppressed = true
	}
	p.report(d)
}

// Suppressed returns how many diagnostics the pass silenced via directives.
func (p *Pass) Suppressed() int { return p.suppressed }

func (p *Pass) suppressedAt(pos token.Position) bool {
	if p.Analyzer.Directive == "" {
		return false
	}
	if p.directives == nil {
		p.directives = collectDirectives(p.Fset, p.Files, p.Analyzer.Directive)
	}
	lines := p.directives[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// collectDirectives finds every line carrying //bigmap:<directive> in the
// given files. Only directives followed by free-form justification text
// count: a bare directive is not an audit, so it suppresses nothing.
func collectDirectives(fset *token.FileSet, files []*ast.File, directive string) map[string]map[int]bool {
	want := DirectivePrefix + directive
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, want+" ")
				if !ok || strings.TrimSpace(rest) == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = true
			}
		}
	}
	return out
}

// Run applies one analyzer to one loaded package and returns its diagnostics
// sorted by position. Suppressed (audited) diagnostics are included with
// their Suppressed flag set; callers that only act on violations filter with
// d.Suppressed.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	if a.Run == nil {
		return nil, fmt.Errorf("analysis: %s is a module analyzer; use RunModule", a.Name)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// ModulePass carries every loaded package through one interprocedural
// analyzer. Suppression works as for Pass, with directives collected from
// all files of all packages.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Packages holds every loaded package, in load order. Cross-package
	// object identities are consistent: the loader resolves module-internal
	// imports to the same type-checked packages listed here.
	Packages []*Package

	report     func(Diagnostic)
	suppressed int
	directives map[string]map[int]bool
}

// Reportf reports a violation at pos, applying the analyzer's suppression
// directive as Pass.Reportf does.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	d := Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)}
	if p.suppressedAt(position) {
		p.suppressed++
		d.Suppressed = true
	}
	p.report(d)
}

// Suppressed returns how many diagnostics the pass silenced via directives.
func (p *ModulePass) Suppressed() int { return p.suppressed }

func (p *ModulePass) suppressedAt(pos token.Position) bool {
	if p.Analyzer.Directive == "" {
		return false
	}
	if p.directives == nil {
		p.directives = make(map[string]map[int]bool)
		for _, pkg := range p.Packages {
			for file, lines := range collectDirectives(p.Fset, pkg.Files, p.Analyzer.Directive) {
				p.directives[file] = lines
			}
		}
	}
	lines := p.directives[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// RunModule applies one interprocedural analyzer to a set of loaded packages
// and returns its diagnostics sorted by position, suppressed ones included
// (as in Run).
func RunModule(a *Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	if a.RunModule == nil {
		return nil, fmt.Errorf("analysis: %s is a per-package analyzer; use Run", a.Name)
	}
	if len(pkgs) == 0 {
		return nil, nil
	}
	var diags []Diagnostic
	pass := &ModulePass{
		Analyzer: a,
		Fset:     pkgs[0].Fset,
		Packages: pkgs,
		report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.RunModule(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// CalleePkgFunc resolves a call expression to (package path, function name)
// when the callee is a package-level function of some package — either a
// plain identifier (same package) or pkg.Func selector. Method calls and
// calls through variables return ("", "").
func CalleePkgFunc(info *types.Info, call *ast.CallExpr) (string, string) {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return "", ""
	}
	obj, ok := info.Uses[id].(*types.Func)
	if !ok || obj.Type().(*types.Signature).Recv() != nil {
		return "", ""
	}
	if obj.Pkg() == nil {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

// ReceiverNamed returns the named type of a method call's receiver
// expression (dereferencing one pointer), or nil: for w.u64(x) with w of
// type *writer it returns the named type "writer".
func ReceiverNamed(info *types.Info, call *ast.CallExpr) (*types.Named, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil, ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	return named, sel.Sel.Name
}
