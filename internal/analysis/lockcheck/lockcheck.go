// Package lockcheck is a heuristic checker for documented lock protocols: a
// struct field whose comment says "guarded by <mu>" may only be touched with
// that mutex held. The heuristic is deliberately simple — it matches how the
// repository writes concurrent code (lock at the top of a short method,
// defer unlock) rather than attempting a full happens-before analysis:
//
// an access to a guarded field is accepted when, in the enclosing function,
//
//   - a Lock/RLock call on a selector ending in the guard's name appears
//     earlier (by source position), or
//   - the function's name ends in "Locked" (the caller-holds-the-lock
//     convention), or
//   - the function is a constructor (name starts with new/New) — the value
//     under construction is not yet shared.
//
// Everything else is reported. False positives at audited call sites carry
// //bigmap:lock-ok. Test files are skipped: tests routinely poke fields
// single-threaded.
//
// The guard name "atomics" selects a second protocol for lock-free code: a
// field whose comment says "guarded by atomics" may only be touched inside a
// sync/atomic operation — positionally contained in a call whose callee
// resolves to the sync/atomic package (atomic.LoadUint64(&s.words[i]),
// s.disc[i].Add(1), ...). Two shapes are exempt because they read only the
// slice header, which is immutable after construction, never the elements
// the atomics protect: len/cap calls and the expression of a range clause
// (the loop body still needs atomics for element access). Constructors are
// exempt as with mutexes; the *Locked naming convention is not, since there
// is no lock to hold.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"github.com/bigmap/bigmap/internal/analysis"
)

// Analyzer is the lock-protocol checker.
var Analyzer = &analysis.Analyzer{
	Name:      "lockcheck",
	Doc:       "fields documented as 'guarded by <mu>' must only be accessed with the lock held ('guarded by atomics': only through sync/atomic)",
	Directive: "lock-ok",
	Run:       run,
}

// atomicsGuard is the reserved guard name selecting the lock-free protocol.
const atomicsGuard = "atomics"

var guardedBy = regexp.MustCompile(`guarded by (\w+)`)

// guard names one protected field.
type guard struct {
	field types.Object // the field's object identity
	mu    string       // name of the guarding mutex field
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			if strings.HasPrefix(name, "new") || strings.HasPrefix(name, "New") {
				continue
			}
			// The *Locked convention exempts mutex guards (the caller holds
			// the lock) but not atomics guards — there is no lock to hold.
			checkFunc(pass, fn, guards, strings.HasSuffix(name, "Locked"))
		}
	}
	return nil
}

// collectGuards finds struct fields annotated "guarded by <mu>".
func collectGuards(pass *analysis.Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardName(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedBy.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// span is a half-open source region within which an atomics-guarded access
// is sanctioned.
type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return s.lo <= p && p < s.hi }

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guards map[types.Object]string, lockedExempt bool) {
	// Positions where each mutex name is acquired in this function.
	acquires := make(map[string][]token.Pos)
	// Regions where atomics-guarded accesses are sanctioned: sync/atomic
	// call extents (the full call, so method receivers like s.ctr.Add(1)
	// count), len/cap argument lists, and range-clause expressions.
	var atomicSpans []span
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			atomicSpans = append(atomicSpans, span{n.X.Pos(), n.X.End()})
		case *ast.CallExpr:
			if isAtomicCall(pass, n) || isLenOrCap(pass, n) {
				atomicSpans = append(atomicSpans, span{n.Pos(), n.End()})
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			if mu := lastSelectorName(sel.X); mu != "" {
				acquires[mu] = append(acquires[mu], n.Pos())
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		mu, guarded := guards[selection.Obj()]
		if !guarded {
			return true
		}
		if mu == atomicsGuard {
			for _, s := range atomicSpans {
				if s.contains(sel.Pos()) {
					return true
				}
			}
			pass.Reportf(sel.Pos(),
				"%s.%s is documented as guarded by atomics, but %s accesses it outside a sync/atomic operation",
				exprString(sel.X), sel.Sel.Name, fn.Name.Name)
			return true
		}
		if lockedExempt {
			return true
		}
		for _, pos := range acquires[mu] {
			if pos < sel.Pos() {
				return true
			}
		}
		pass.Reportf(sel.Pos(),
			"%s.%s is documented as guarded by %s, but %s accesses it without acquiring the lock first",
			exprString(sel.X), sel.Sel.Name, mu, fn.Name.Name)
		return true
	})
}

// isAtomicCall reports whether the callee resolves to the sync/atomic
// package — a package-level function (atomic.LoadUint64) or a method on one
// of its types (atomic.Int64.Add).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return false
	}
	obj, ok := pass.Info.Uses[id].(*types.Func)
	return ok && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isLenOrCap reports whether the call is the len or cap builtin: on a slice
// field these read only the immutable header, never the guarded elements.
func isLenOrCap(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && (b.Name() == "len" || b.Name() == "cap")
}

// lastSelectorName returns the final identifier of a selector chain
// (p.mu -> "mu", mu -> "mu").
func lastSelectorName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "?"
}
