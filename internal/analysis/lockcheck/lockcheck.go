// Package lockcheck is a heuristic checker for documented lock protocols: a
// struct field whose comment says "guarded by <mu>" may only be touched with
// that mutex held. The heuristic is deliberately simple — it matches how the
// repository writes concurrent code (lock at the top of a short method,
// defer unlock) rather than attempting a full happens-before analysis:
//
// an access to a guarded field is accepted when, in the enclosing function,
//
//   - a Lock/RLock call on a selector ending in the guard's name appears
//     earlier (by source position), or
//   - the function's name ends in "Locked" (the caller-holds-the-lock
//     convention), or
//   - the function is a constructor (name starts with new/New) — the value
//     under construction is not yet shared.
//
// Everything else is reported. False positives at audited call sites carry
// //bigmap:lock-ok. Test files are skipped: tests routinely poke fields
// single-threaded.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"github.com/bigmap/bigmap/internal/analysis"
)

// Analyzer is the lock-protocol checker.
var Analyzer = &analysis.Analyzer{
	Name:      "lockcheck",
	Doc:       "fields documented as 'guarded by <mu>' must only be accessed with the lock held",
	Directive: "lock-ok",
	Run:       run,
}

var guardedBy = regexp.MustCompile(`guarded by (\w+)`)

// guard names one protected field.
type guard struct {
	field types.Object // the field's object identity
	mu    string       // name of the guarding mutex field
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			if strings.HasSuffix(name, "Locked") ||
				strings.HasPrefix(name, "new") || strings.HasPrefix(name, "New") {
				continue
			}
			checkFunc(pass, fn, guards)
		}
	}
	return nil
}

// collectGuards finds struct fields annotated "guarded by <mu>".
func collectGuards(pass *analysis.Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardName(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedBy.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guards map[types.Object]string) {
	// Positions where each mutex name is acquired in this function.
	acquires := make(map[string][]token.Pos)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if mu := lastSelectorName(sel.X); mu != "" {
			acquires[mu] = append(acquires[mu], call.Pos())
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		mu, guarded := guards[selection.Obj()]
		if !guarded {
			return true
		}
		for _, pos := range acquires[mu] {
			if pos < sel.Pos() {
				return true
			}
		}
		pass.Reportf(sel.Pos(),
			"%s.%s is documented as guarded by %s, but %s accesses it without acquiring the lock first",
			exprString(sel.X), sel.Sel.Name, mu, fn.Name.Name)
		return true
	})
}

// lastSelectorName returns the final identifier of a selector chain
// (p.mu -> "mu", mu -> "mu").
func lastSelectorName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "?"
}
