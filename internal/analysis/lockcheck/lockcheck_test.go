package lockcheck

import (
	"testing"

	"github.com/bigmap/bigmap/internal/analysis/analysistest"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "locks")
}
