// Package locks exercises the lockcheck analyzer: guarded fields accessed
// with and without the documented mutex, the *Locked naming convention,
// constructor exemption, an audited (suppressed) access, and the lock-free
// "guarded by atomics" protocol (sync/atomic call containment, len/cap and
// range-header exemptions, no *Locked exemption).
package locks

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // guarded by mu

	label string // unguarded: never reported
}

// newCounter initializes guarded fields before the value is shared.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// inc holds the lock: fine.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.m++
}

// get reads a guarded field lock-free.
func (c *counter) get() int {
	return c.n // want "guarded by mu, but get accesses it"
}

// sumLocked relies on the caller-holds-the-lock convention.
func (c *counter) sumLocked() int {
	return c.n + c.m
}

// rename touches only the unguarded field.
func (c *counter) rename(s string) {
	c.label = s
}

// reset is an audited single-threaded phase.
func (c *counter) reset() {
	c.n = 0 //bigmap:lock-ok setup phase runs before any goroutine starts
}

type sharded struct {
	// words packs the shared state 8 bytes per word. guarded by atomics:
	// every access outside construction goes through sync/atomic.
	words []uint64
	// disc counts discoveries per shard. guarded by atomics.
	disc []atomic.Int64
}

// newSharded initializes guarded words before the value is shared.
func newSharded(n int) *sharded {
	s := &sharded{words: make([]uint64, n), disc: make([]atomic.Int64, 4)}
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	return s
}

// merge stays inside sync/atomic calls: fine, including the CAS loop and the
// method-form counter whose receiver is the guarded slice's element.
func (s *sharded) merge(i int, mask uint64) {
	for {
		old := atomic.LoadUint64(&s.words[i])
		if old&mask == old {
			return
		}
		if atomic.CompareAndSwapUint64(&s.words[i], old, old&mask) {
			s.disc[0].Add(1)
			return
		}
	}
}

// size reads only the immutable slice headers: len/cap and range-clause
// expressions are exempt, element access inside the loop body is not.
func (s *sharded) size() int {
	total := cap(s.words) - len(s.words)
	for range s.disc {
		total++
	}
	return total
}

// peek reads a guarded word without going through sync/atomic.
func (s *sharded) peek(i int) uint64 {
	return s.words[i] // want "guarded by atomics, but peek accesses it outside a sync/atomic operation"
}

// drainLocked shows the *Locked convention does not exempt atomics guards:
// there is no lock a caller could hold.
func (s *sharded) drainLocked() uint64 {
	return s.words[0] // want "guarded by atomics, but drainLocked accesses it"
}

// snapshot is an audited single-threaded read (campaign teardown).
func (s *sharded) snapshot() uint64 {
	return s.words[0] //bigmap:lock-ok teardown runs after every merger has quiesced
}
