// Package locks exercises the lockcheck analyzer: guarded fields accessed
// with and without the documented mutex, the *Locked naming convention,
// constructor exemption, and an audited (suppressed) access.
package locks

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // guarded by mu

	label string // unguarded: never reported
}

// newCounter initializes guarded fields before the value is shared.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// inc holds the lock: fine.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.m++
}

// get reads a guarded field lock-free.
func (c *counter) get() int {
	return c.n // want "guarded by mu, but get accesses it"
}

// sumLocked relies on the caller-holds-the-lock convention.
func (c *counter) sumLocked() int {
	return c.n + c.m
}

// rename touches only the unguarded field.
func (c *counter) rename(s string) {
	c.label = s
}

// reset is an audited single-threaded phase.
func (c *counter) reset() {
	c.n = 0 //bigmap:lock-ok setup phase runs before any goroutine starts
}
