package collafl

import (
	"testing"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

func genProgram(t *testing.T) *target.Program {
	t.Helper()
	prog, err := target.Generate(target.GenSpec{
		Name:           "collafl",
		Seed:           41,
		NumFuncs:       6,
		BlocksPerFunc:  14,
		InputLen:       48,
		BranchFraction: 0.6,
		Switches:       3,
		SwitchFanout:   5,
		Loops:          3,
		LoopMax:        8,
		MagicCompares:  2,
		MagicWidth:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestAssignCoversStaticEdges(t *testing.T) {
	prog := genProgram(t)
	a, err := Assign(prog)
	if err != nil {
		t.Fatal(err)
	}
	// The assignment size tracks the static edge count but is not equal to
	// it: distinct CFG arcs with identical (from, to) endpoints (e.g. a
	// compare whose both arms fall through) deduplicate to one ID, while
	// entry and per-callsite return edges add IDs the static count omits.
	static := prog.StaticEdges()
	if a.Edges() < static*6/10 || a.Edges() > static*3/2 {
		t.Errorf("assigned %d IDs, implausible against %d static edges", a.Edges(), static)
	}
	if a.MapSize() < a.Edges() {
		t.Errorf("map size %d cannot hold %d IDs", a.MapSize(), a.Edges())
	}
	if a.MapSize()&(a.MapSize()-1) != 0 {
		t.Errorf("map size %d not a power of two", a.MapSize())
	}
}

func TestAssignedIDsAreUnique(t *testing.T) {
	prog := genProgram(t)
	a, err := Assign(prog)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]bool, len(a.table))
	for _, id := range a.table {
		if seen[id] {
			t.Fatal("duplicate static edge ID")
		}
		seen[id] = true
		if int(id) >= a.MapSize() {
			t.Fatalf("ID %d outside map of %d", id, a.MapSize())
		}
	}
}

// TestRuntimeTransitionsAllResolve is the key soundness property: every
// transition an actual execution produces must be found in the static
// table (zero fallback misses).
func TestRuntimeTransitionsAllResolve(t *testing.T) {
	prog := genProgram(t)
	a, err := Assign(prog)
	if err != nil {
		t.Fatal(err)
	}
	metric := a.NewMetric()
	cov, err := core.NewBigMap(a.MapSize())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	ip := target.NewInterp(prog)
	inputs := prog.SampleSeeds(src, 50)
	for i := 0; i < 200; i++ {
		in := make([]byte, 48)
		src.Bytes(in)
		inputs = append(inputs, in)
	}
	for _, in := range inputs {
		metric.Begin()
		ip.Run(in, &metricTracer{m: metric, cov: cov}, 1<<22)
	}
	if metric.Misses() != 0 {
		t.Errorf("%d runtime transitions missed the static table", metric.Misses())
	}
}

// TestCollAFLIsCollisionFree: distinct traversed edges always map to
// distinct coverage keys, so the empirical collision rate is exactly zero —
// CollAFL's whole point.
func TestCollAFLIsCollisionFree(t *testing.T) {
	prog := genProgram(t)
	a, err := Assign(prog)
	if err != nil {
		t.Fatal(err)
	}
	metric := a.NewMetric()
	ip := target.NewInterp(prog)
	src := rng.New(6)

	keyOf := make(map[transition]uint32)
	rec := &recordingTracer{metric: metric, keyOf: keyOf}
	for i := 0; i < 100; i++ {
		in := make([]byte, 48)
		src.Bytes(in)
		metric.Begin()
		rec.prevSet = false
		ip.Run(in, rec, 1<<22)
		if rec.conflict {
			t.Fatal("same transition produced different keys")
		}
	}
	// Invert: no two distinct transitions share a key.
	used := make(map[uint32]transition, len(keyOf))
	for p, k := range keyOf {
		if other, dup := used[k]; dup && other != p {
			t.Fatalf("transitions %v and %v collided on key %d", p, other, k)
		}
		used[k] = p
	}
}

func TestMetricName(t *testing.T) {
	prog := genProgram(t)
	a, err := Assign(prog)
	if err != nil {
		t.Fatal(err)
	}
	if a.NewMetric().Name() != "collafl" {
		t.Error("wrong metric name")
	}
}

// TestFuzzerIntegration runs a full campaign with the CollAFL metric over a
// BigMap — the paper's suggested combination.
func TestFuzzerIntegration(t *testing.T) {
	prog := genProgram(t)
	a, err := Assign(prog)
	if err != nil {
		t.Fatal(err)
	}
	f, err := newFuzzer(prog, a)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	ok := 0
	for _, s := range prog.SampleSeeds(src, 4) {
		if err := f.AddSeed(s); err == nil {
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("no seeds")
	}
	if err := f.RunExecs(5000); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.EdgesDiscovered == 0 {
		t.Error("no coverage via collafl metric")
	}
	if st.EdgesDiscovered > a.Edges() {
		t.Errorf("discovered %d > %d assigned IDs", st.EdgesDiscovered, a.Edges())
	}
}

// metricTracer drives metric+map like the executor does.
type metricTracer struct {
	m   core.Metric
	cov core.Map
}

func (t *metricTracer) Visit(b uint32)   { t.cov.Add(t.m.Visit(b)) }
func (t *metricTracer) EnterCall(uint32) {}
func (t *metricTracer) LeaveCall()       {}

// transition is a (from, to) block pair observed at runtime.
type transition struct{ from, to uint32 }

// recordingTracer checks key stability per transition.
type recordingTracer struct {
	metric   *Metric
	keyOf    map[transition]uint32
	prev     uint32
	prevSet  bool
	conflict bool
}

func (t *recordingTracer) Visit(b uint32) {
	key := t.metric.Visit(b)
	if t.prevSet {
		p := transition{t.prev, b}
		if old, ok := t.keyOf[p]; ok && old != key {
			t.conflict = true
		}
		t.keyOf[p] = key
	}
	t.prev = b
	t.prevSet = true
}
func (t *recordingTracer) EnterCall(uint32) {}
func (t *recordingTracer) LeaveCall()       {}
