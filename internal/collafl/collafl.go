// Package collafl implements the CollAFL-style static edge-ID assignment
// the paper compares against in its related work (§VI): instead of hashing
// block IDs at runtime, a link-time analysis walks the CFG and gives every
// statically known edge a unique coverage key, eliminating collisions
// outright.
//
// The paper's two criticisms are both reproducible here:
//
//  1. CollAFL must size the bitmap to fit ALL statically assigned IDs, even
//     though only a fraction of static edges is ever visited (Table II), so
//     a flat bitmap inflates exactly like a naively enlarged AFL map; and
//  2. the technique is tied to edge coverage — it cannot key N-gram or
//     context-sensitive metrics, which have no static enumeration.
//
// It also reproduces the paper's suggested synthesis: a CollAFL assignment
// used as the Metric with a BigMap as the Map combines zero collisions with
// used-region-only map operations ("It can also be used in combination with
// CollAFL", §VI). The bench harness's collafl experiment measures all of
// this.
//
// Real CollAFL must approximate indirect branch targets; our synthetic IR
// has fully static control flow, so the assignment here is exact — noted in
// DESIGN.md as a fidelity caveat in CollAFL's favour.
package collafl

import (
	"errors"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/target"
)

// ErrTooManyEdges is returned when a program has more static edges than the
// 32-bit key space can index (cannot happen for realistic programs).
var ErrTooManyEdges = errors.New("collafl: static edge count exceeds key space")

// pairKey packs a (from block ID, to block ID) runtime transition.
func pairKey(from, to uint32) uint64 {
	return uint64(from)<<32 | uint64(to)
}

// entrySentinel is the "previous block" of the very first block executed,
// mirroring AFL's prev_loc = 0 start state.
const entrySentinel = 0

// Assignment is a static, collision-free edge-ID table for one program.
type Assignment struct {
	table   map[uint64]uint32
	edges   int
	mapSize int
}

// Assign statically enumerates every possible runtime block transition of
// prog — intra-procedural edges, call edges, return edges, self-loop back
// edges and the program entry — and assigns each a unique coverage key.
// The required map size is the edge count rounded up to a power of two,
// exactly how CollAFL "expands the bitmap to fit all the statically
// assigned IDs".
func Assign(prog *target.Program) (*Assignment, error) {
	a := &Assignment{table: make(map[uint64]uint32)}

	add := func(from, to uint32) {
		key := pairKey(from, to)
		if _, dup := a.table[key]; dup {
			return // two block-ID pairs collided; keep the first assignment
		}
		a.table[key] = uint32(len(a.table))
	}

	// Program entry edge.
	if len(prog.Funcs) > 0 && len(prog.Funcs[0].Blocks) > 0 {
		add(entrySentinel, prog.Funcs[0].Blocks[0].ID)
	}

	// returnBlocks caches each function's Return-terminator block IDs for
	// return-edge enumeration.
	returnBlocks := make([][]uint32, len(prog.Funcs))
	for fi := range prog.Funcs {
		for bi := range prog.Funcs[fi].Blocks {
			if prog.Funcs[fi].Blocks[bi].Node.Kind == target.KindReturn {
				returnBlocks[fi] = append(returnBlocks[fi], prog.Funcs[fi].Blocks[bi].ID)
			}
		}
	}

	for fi := range prog.Funcs {
		blocks := prog.Funcs[fi].Blocks
		idOf := func(bi int) uint32 { return blocks[bi].ID }
		for bi := range blocks {
			from := blocks[bi].ID
			nd := &blocks[bi].Node
			switch nd.Kind {
			case target.KindJump:
				add(from, idOf(nd.A))
			case target.KindCompareByte, target.KindCompareWord:
				add(from, idOf(nd.A))
				add(from, idOf(nd.B))
			case target.KindSwitch:
				add(from, idOf(nd.B))
				for _, c := range nd.Cases {
					add(from, idOf(c.Target))
				}
			case target.KindSelfLoop:
				add(from, from) // the tight back edge
				add(from, idOf(nd.A))
			case target.KindCall:
				callee := prog.Funcs[nd.A]
				if len(callee.Blocks) > 0 {
					add(from, callee.Blocks[0].ID)
				}
				// Return edges: every Return block of the callee can
				// transfer to this call's continuation.
				for _, r := range returnBlocks[nd.A] {
					add(r, idOf(nd.B))
				}
			case target.KindCrash, target.KindHang, target.KindReturn:
				// No outgoing transitions (returns are handled above).
			}
		}
	}

	a.edges = len(a.table)
	if a.edges > 1<<31 {
		return nil, ErrTooManyEdges
	}
	a.mapSize = 1
	for a.mapSize < a.edges {
		a.mapSize <<= 1
	}
	if a.mapSize < 8 {
		a.mapSize = 8
	}
	return a, nil
}

// Edges returns the number of statically assigned edge IDs.
func (a *Assignment) Edges() int { return a.edges }

// MapSize returns the coverage-map size CollAFL requires: the smallest power
// of two holding every assigned ID.
func (a *Assignment) MapSize() int { return a.mapSize }

// NewMetric creates a runtime metric resolving transitions through the
// static table. Transitions outside the table (possible only if two block-ID
// pairs aliased during assignment) fall back to AFL's hash, masked into the
// same map — CollAFL's hash-table fallback path.
func (a *Assignment) NewMetric() *Metric {
	return &Metric{
		assign: a,
		mask:   uint32(a.mapSize - 1),
	}
}

// Metric is the CollAFL coverage metric. Not safe for concurrent use.
type Metric struct {
	assign *Assignment
	mask   uint32
	prev   uint32
	has    bool
	misses uint64
}

var _ core.Metric = (*Metric)(nil)

// Name returns "collafl".
func (m *Metric) Name() string { return "collafl" }

// Begin resets the transition state.
func (m *Metric) Begin() {
	m.prev = entrySentinel
	m.has = false
}

// Visit resolves the (previous, current) transition to its static ID.
func (m *Metric) Visit(block uint32) uint32 {
	key := pairKey(m.prev, block)
	if !m.has {
		key = pairKey(entrySentinel, block)
		m.has = true
	}
	m.prev = block
	if id, ok := m.assign.table[key]; ok {
		return id
	}
	m.misses++
	return ((m.prev >> 1) ^ block) & m.mask
}

// EnterCall is a no-op: call transitions are plain block transitions here.
func (m *Metric) EnterCall(uint32) {}

// LeaveCall is a no-op.
func (m *Metric) LeaveCall() {}

// Misses reports how many runtime transitions missed the static table
// (zero for well-formed programs; the fallback hash handled them).
func (m *Metric) Misses() uint64 { return m.misses }
