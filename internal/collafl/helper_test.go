package collafl

import (
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/target"
)

// newFuzzer builds a BigMap fuzzer keyed by the CollAFL assignment.
func newFuzzer(prog *target.Program, a *Assignment) (*fuzzer.Fuzzer, error) {
	return fuzzer.New(prog, fuzzer.Config{
		Scheme:  fuzzer.SchemeBigMap,
		MapSize: a.MapSize(),
		Seed:    11,
		Metric: func(int) (core.Metric, error) {
			return a.NewMetric(), nil
		},
	})
}
