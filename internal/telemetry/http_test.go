package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	r := newTestRegistry(t)
	r.Counter("execs_total").Add(42)
	r.Histogram("exec_ns").Observe(100)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "bigmap_execs_total 42") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	code, body := get("/stats")
	if code != 200 {
		t.Fatalf("/stats = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/stats is not JSON: %v\n%s", err, body)
	}
	if snap.Counters["execs_total"] != 42 {
		t.Fatalf("/stats counters = %+v", snap.Counters)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d:\n%s", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	for path, want := range map[string]int{
		"/metrics":             http.StatusServiceUnavailable,
		"/stats":               http.StatusServiceUnavailable,
		"/debug/pprof/cmdline": http.StatusOK,
		"/":                    http.StatusOK,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}
