package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every histogram: bucket i counts
// values whose bit length is i, i.e. bucket 0 holds exactly 0, and bucket
// i >= 1 holds [2^(i-1), 2^i - 1]. Covering the full uint64 range takes 65
// buckets; the array is fixed at construction so recording never allocates
// and the bucket layout is identical across runs (deterministic output,
// trivially mergeable).
const NumBuckets = 65

// Histogram is a log2-bucketed distribution recorder sized for nanosecond
// durations (sub-ns to ~580 years in 65 buckets). Recording is three atomic
// adds and no allocation; Min/Max are maintained with CAS loops. The zero
// value is ready to use; a nil *Histogram ignores all writes and — the
// important half of the contract — never reads the clock, so instrumented
// call sites cost two nil checks when telemetry is off.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // value+1, so 0 means "no observation yet"
	max     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one value.
//
//bigmap:hotpath per-exec latency sample
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
	for {
		cur := h.min.Load()
		if cur != 0 && cur-1 <= v {
			break
		}
		if h.min.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= v {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Start begins timing a region: it returns the current monotonic reading,
// or 0 without touching the clock when the histogram is nil. Pair with Done.
//
//bigmap:hotpath per-exec timing start
func (h *Histogram) Start() int64 {
	if h == nil {
		return 0
	}
	return Now()
}

// Done records the duration since start (a value returned by Start on the
// same histogram). On a nil histogram it is a no-op, matching Start's 0.
//
//bigmap:hotpath per-exec timing stop
func (h *Histogram) Done(start int64) {
	if h == nil {
		return
	}
	d := Now() - start
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is the plain-data view of a histogram. Buckets holds all
// NumBuckets cumulative-free counts (bucket i = values with bit length i);
// consumers that want Prometheus-style cumulative buckets accumulate.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	P50     uint64   `json:"p50"`
	P90     uint64   `json:"p90"`
	P99     uint64   `json:"p99"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// snapshot reads the histogram's atomics. Concurrent recorders make the
// numbers approximately consistent (count/sum/buckets may be mid-update
// relative to each other), which is acceptable for observability output.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if m := h.min.Load(); m > 0 {
		s.Min = m - 1
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	s.Buckets = make([]uint64, NumBuckets)
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.P50 = quantile(s.Buckets, s.Count, 0.50)
	s.P90 = quantile(s.Buckets, s.Count, 0.90)
	s.P99 = quantile(s.Buckets, s.Count, 0.99)
	return s
}

// bucketUpper returns the largest value bucket i can hold: 0 for bucket 0,
// 2^i - 1 otherwise.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// quantile estimates the q-quantile from log2 bucket counts: it walks to the
// bucket where the cumulative count crosses q*total and interpolates linearly
// inside it. With power-of-two buckets the estimate is within 2x of the true
// value, which is the deal fixed log-scale buckets buy: no allocation, no
// sampling, no lock.
func quantile(buckets []uint64, total uint64, q float64) uint64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		if rank < cum+n {
			lo := uint64(0)
			if i > 0 {
				lo = 1 << uint(i-1)
			}
			hi := bucketUpper(i)
			// Linear interpolation inside the bucket.
			frac := float64(rank-cum) / float64(n)
			return lo + uint64(frac*float64(hi-lo))
		}
		cum += n
	}
	return bucketUpper(len(buckets) - 1)
}
