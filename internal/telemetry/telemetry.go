package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// clockBase anchors Now: readings are monotonic nanoseconds since process
// start, so timestamps are compact, unaffected by wall-clock steps, and
// carry no absolute time into metrics output.
var clockBase = time.Now() //bigmap:nondeterministic-ok telemetry is the audited wall-clock sink; readings never feed resume-relevant state

// Now returns monotonic nanoseconds since process start. It is the package's
// only clock read; every span, histogram timing and event timestamp flows
// through it, which keeps the determinism audit surface a single line.
func Now() int64 {
	return int64(time.Since(clockBase)) //bigmap:nondeterministic-ok telemetry is the audited wall-clock sink; readings never feed resume-relevant state
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter ignores all writes, which is how disabled
// telemetry costs only a nil check on the hot path.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//bigmap:hotpath per-event counter bump
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
//
//bigmap:hotpath per-event counter bump
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue length, edges discovered).
// A nil *Gauge ignores all writes.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
//
//bigmap:hotpath per-sample gauge store
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
//
//bigmap:hotpath per-sample gauge adjust
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named metrics and the event log. Metric handles are
// get-or-create: the first lookup of a name allocates the metric, later
// lookups (from any goroutine, any instance) return the same one, so
// parallel campaign instances sharing a registry aggregate naturally.
//
// Lookups take a lock and may allocate; hot paths resolve their handles once
// at setup and record through the returned pointers, which is lock-free.
// A nil *Registry hands out nil handles everywhere, so "telemetry off" is a
// nil registry and nothing else.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	events     *EventLog
}

// New creates an empty registry. Under the bigmapnotel build tag it returns
// nil instead, hard-disabling the telemetry layer for the whole binary.
func New() *Registry {
	if !Enabled {
		return nil
	}
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		events:     newEventLog(eventLogSize),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Events returns the registry's event log (nil on a nil registry).
func (r *Registry) Events() *EventLog {
	if r == nil {
		return nil
	}
	return r.events
}

// Event appends a named event to the ring buffer — a convenience for cold
// paths (checkpoint written, instance revived) that do not keep handles.
func (r *Registry) Event(name, detail string) {
	if r == nil {
		return
	}
	r.events.Add(name, detail)
}

// sortedKeys returns the map's keys in sorted order — the deterministic
// iteration every snapshot path uses.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	//bigmap:nondeterministic-ok iteration feeds the sort below; snapshot layout is deterministic
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
