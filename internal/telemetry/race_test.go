package telemetry

import (
	"sync"
	"testing"
)

// TestSnapshotUnderConcurrentRecording hammers Snapshot (and the Prometheus
// renderer) while recorder goroutines write every metric kind. Run under
// -race this proves the lock discipline: registration under the registry
// mutex, metric updates lock-free atomics, event log under its own mutex.
func TestSnapshotUnderConcurrentRecording(t *testing.T) {
	r := newTestRegistry(t)
	const (
		recorders = 8
		iters     = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(recorders)
	for g := 0; g < recorders; g++ {
		go func(g int) {
			defer wg.Done()
			c := r.Counter("execs_total")
			h := r.Histogram("exec_ns")
			gauge := r.Gauge("queue_paths")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(uint64(g*iters + i))
				gauge.Set(int64(i))
				if i%256 == 0 {
					// Cold-path writes: new registrations, events, spans.
					r.Counter("late_total").Inc()
					r.Event("tick", "")
					r.StartSpan("op").End("")
				}
			}
		}(g)
	}

	// Concurrent readers: snapshots and renders must never race or crash.
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = WritePrometheus(discard{}, r.Snapshot())
			}
		}
	}()

	wg.Wait()
	close(stop)
	readers.Wait()

	s := r.Snapshot()
	if want := uint64(recorders * iters); s.Counters["execs_total"] != want {
		t.Fatalf("execs_total = %d, want %d", s.Counters["execs_total"], want)
	}
	if s.Histograms["exec_ns"].Count != uint64(recorders*iters) {
		t.Fatalf("exec_ns count = %d, want %d", s.Histograms["exec_ns"].Count, recorders*iters)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
