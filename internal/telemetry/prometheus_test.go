package telemetry

import (
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := newTestRegistry(t)
	r.Counter("fuzzer_execs_total").Add(100)
	r.Gauge("fuzzer_queue_paths").Set(12)
	h := r.Histogram("exec_ns")
	h.Observe(3) // bucket 2 (le=3)
	h.Observe(3)
	h.Observe(6) // bucket 3 (le=7)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE bigmap_uptime_seconds gauge\n",
		"# TYPE bigmap_fuzzer_execs_total counter\nbigmap_fuzzer_execs_total 100\n",
		"# TYPE bigmap_fuzzer_queue_paths gauge\nbigmap_fuzzer_queue_paths 12\n",
		"# TYPE bigmap_exec_ns histogram\n",
		// Buckets are cumulative: 2 observations at le=3, 3 at le=7.
		"bigmap_exec_ns_bucket{le=\"3\"} 2\n",
		"bigmap_exec_ns_bucket{le=\"7\"} 3\n",
		"bigmap_exec_ns_bucket{le=\"+Inf\"} 3\n",
		"bigmap_exec_ns_sum 12\n",
		"bigmap_exec_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusDeterministicOrder(t *testing.T) {
	r := newTestRegistry(t)
	r.Counter("zebra_total").Inc()
	r.Counter("alpha_total").Inc()
	r.Gauge("mid").Set(1)

	var a, b strings.Builder
	if err := WritePrometheus(&a, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Strip the uptime lines (the only time-varying part) before comparing.
	trim := func(s string) string {
		lines := strings.Split(s, "\n")
		out := lines[:0]
		for _, l := range lines {
			if strings.Contains(l, "uptime_seconds") {
				continue
			}
			out = append(out, l)
		}
		return strings.Join(out, "\n")
	}
	if trim(a.String()) != trim(b.String()) {
		t.Fatalf("consecutive renders differ:\n%s\n---\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "bigmap_alpha_total") {
		t.Fatal("missing sorted counter")
	}
	if strings.Index(a.String(), "alpha_total") > strings.Index(a.String(), "zebra_total") {
		t.Fatal("counters not in sorted order")
	}
}

func TestPromNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"exec_ns":       "bigmap_exec_ns",
		"span_save/1":   "bigmap_span_save_1",
		"weird name-x":  "bigmap_weird_name_x",
		"9starts_digit": "bigmap__9starts_digit",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBucketUpper(t *testing.T) {
	if bucketUpper(0) != 0 {
		t.Fatal("bucket 0 upper must be 0")
	}
	if bucketUpper(1) != 1 || bucketUpper(4) != 15 {
		t.Fatalf("bucket uppers wrong: %d %d", bucketUpper(1), bucketUpper(4))
	}
	if bucketUpper(64) != ^uint64(0) || bucketUpper(NumBuckets-1) != ^uint64(0) {
		t.Fatal("top bucket must saturate at MaxUint64")
	}
}
