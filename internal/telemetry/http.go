package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves the observability surface for one registry:
//
//	/metrics        Prometheus text exposition format
//	/stats          the full Snapshot as JSON
//	/debug/pprof/   the standard net/http/pprof profiles
//	/               a plain-text index of the above
//
// With a nil registry (telemetry disabled, or a bigmapnotel build) /metrics
// and /stats answer 503 while the pprof endpoints keep working — profiling a
// telemetry-free binary is still useful.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if r == nil {
			http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		if r == nil {
			http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("bigmap observability\n\n" +
			"  /metrics       Prometheus text format\n" +
			"  /stats         JSON snapshot (counters, gauges, histograms, events)\n" +
			"  /debug/pprof/  Go runtime profiles\n"))
	})
	return mux
}
