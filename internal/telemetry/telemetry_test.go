package telemetry

import (
	"strings"
	"testing"
)

// newTestRegistry returns a live registry or skips the test under the
// bigmapnotel build tag, where New returns nil by contract.
func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := New()
	if r == nil {
		t.Skip("telemetry compiled out (bigmapnotel)")
	}
	return r
}

func TestNilHandlesAreInert(t *testing.T) {
	// The disabled state is all-nil handles; every method must be a no-op
	// rather than a nil-pointer dereference.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d, want 0", c.Value())
	}
	var g *Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d, want 0", g.Value())
	}
	var h *Histogram
	h.Observe(42)
	h.Done(h.Start())
	if h.Count() != 0 {
		t.Fatalf("nil histogram count = %d, want 0", h.Count())
	}
	if got := h.Start(); got != 0 {
		t.Fatalf("nil histogram Start = %d, want 0 (no clock read)", got)
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	r.Event("e", "detail")
	r.StartSpan("s").End("detail")
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Events) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := newTestRegistry(t)
	c := r.Counter("execs_total")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if r.Counter("execs_total") != c {
		t.Fatal("Counter must be get-or-create: same name, same handle")
	}

	g := r.Gauge("queue_paths")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}
	if r.Gauge("queue_paths") != g {
		t.Fatal("Gauge must be get-or-create: same name, same handle")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Bucket i holds values with bit length i: 0 -> bucket 0, 1 -> bucket 1,
	// 2..3 -> bucket 2, 4..7 -> bucket 3, ...
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1 << 40} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if want := uint64(0 + 1 + 2 + 3 + 4 + 7 + 8 + 1<<40); s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
	if s.Min != 0 || s.Max != 1<<40 {
		t.Fatalf("min/max = %d/%d, want 0/%d", s.Min, s.Max, uint64(1)<<40)
	}
	wantBuckets := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 41: 1}
	for i, n := range s.Buckets {
		if n != wantBuckets[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, wantBuckets[i])
		}
	}
}

func TestHistogramMinTracksZero(t *testing.T) {
	// Min uses value+1 encoding so an observed 0 is distinguishable from "no
	// observations yet".
	var h Histogram
	h.Observe(100)
	if s := h.snapshot(); s.Min != 100 {
		t.Fatalf("min = %d, want 100", s.Min)
	}
	h.Observe(0)
	if s := h.snapshot(); s.Min != 0 {
		t.Fatalf("min after observing 0 = %d, want 0", s.Min)
	}
}

func TestQuantileWithin2x(t *testing.T) {
	// Log2 buckets guarantee estimates within 2x of the true value.
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.snapshot()
	checks := []struct {
		got  uint64
		true uint64
	}{{s.P50, 500}, {s.P90, 900}, {s.P99, 990}}
	for _, c := range checks {
		if c.got < c.true/2 || c.got > c.true*2 {
			t.Fatalf("quantile estimate %d not within 2x of %d", c.got, c.true)
		}
	}
}

func TestHistogramStartDone(t *testing.T) {
	r := newTestRegistry(t)
	h := r.Histogram("op_ns")
	t0 := h.Start()
	h.Done(t0)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1 after Start/Done", h.Count())
	}
}

func TestSnapshotContents(t *testing.T) {
	r := newTestRegistry(t)
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(-7)
	r.Histogram("c_ns").Observe(16)
	r.Event("milestone", "detail text")

	s := r.Snapshot()
	if s.Counters["a_total"] != 3 {
		t.Fatalf("snapshot counter = %d, want 3", s.Counters["a_total"])
	}
	if s.Gauges["b"] != -7 {
		t.Fatalf("snapshot gauge = %d, want -7", s.Gauges["b"])
	}
	h := s.Histograms["c_ns"]
	if h.Count != 1 || h.Sum != 16 || len(h.Buckets) != NumBuckets {
		t.Fatalf("snapshot histogram = %+v", h)
	}
	if len(s.Events) != 1 || s.Events[0].Name != "milestone" || s.EventsTotal != 1 {
		t.Fatalf("snapshot events = %+v (total %d)", s.Events, s.EventsTotal)
	}
	if s.UptimeNanos < 0 {
		t.Fatalf("uptime = %d, want >= 0", s.UptimeNanos)
	}
}

func TestEventLogRingWraps(t *testing.T) {
	r := newTestRegistry(t)
	for i := 0; i < eventLogSize+10; i++ {
		r.Event("e", strings.Repeat("x", i%3))
	}
	events, total := r.Events().Snapshot()
	if total != eventLogSize+10 {
		t.Fatalf("total = %d, want %d", total, eventLogSize+10)
	}
	if len(events) != eventLogSize {
		t.Fatalf("retained = %d, want %d", len(events), eventLogSize)
	}
	// Oldest-first: timestamps must be non-decreasing across the seam.
	for i := 1; i < len(events); i++ {
		if events[i].AtNanos < events[i-1].AtNanos {
			t.Fatalf("events out of order at %d: %d < %d", i, events[i].AtNanos, events[i-1].AtNanos)
		}
	}
}

func TestSpan(t *testing.T) {
	r := newTestRegistry(t)
	sp := r.StartSpan("checkpoint_save")
	sp.End("1234 bytes")
	s := r.Snapshot()
	if s.Histograms["span_checkpoint_save_ns"].Count != 1 {
		t.Fatal("span duration not recorded")
	}
	if len(s.Events) != 1 || s.Events[0].Name != "checkpoint_save" {
		t.Fatalf("span event not logged: %+v", s.Events)
	}
}

func TestMapOps(t *testing.T) {
	r := newTestRegistry(t)
	ops := NewMapOps(r, "bigmap")
	ops.Reset.Done(ops.Reset.Start())
	if r.Histogram("map_bigmap_reset_ns").Count() != 1 {
		t.Fatal("MapOps.Reset not wired to map_bigmap_reset_ns")
	}
	// A nil registry yields the all-nil (disabled) bundle.
	off := NewMapOps(nil, "afl")
	if off.Reset != nil || off.Hash != nil {
		t.Fatal("NewMapOps(nil, ...) must return the zero MapOps")
	}
}

func TestNowIsMonotonicNonNegative(t *testing.T) {
	a := Now()
	b := Now()
	if a < 0 || b < a {
		t.Fatalf("Now not monotone: %d then %d", a, b)
	}
}

func TestObserveZeroAllocs(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v allocs/op, want 0", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Done(nilH.Start()) }); n != 0 {
		t.Fatalf("nil Start/Done allocates %v allocs/op, want 0", n)
	}
	var c Counter
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v allocs/op, want 0", n)
	}
}
