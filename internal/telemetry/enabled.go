//go:build !bigmapnotel

package telemetry

// Enabled reports whether the telemetry layer is compiled in. In default
// builds it is true and telemetry is a runtime choice (a nil registry is
// "off"); building with -tags bigmapnotel flips it to false, making New
// return nil unconditionally so no registry — and therefore no clock read or
// atomic add — can exist anywhere in the binary.
const Enabled = true
