//go:build bigmapnotel

package telemetry

// Enabled is false under the bigmapnotel build tag: New returns nil, every
// handle is nil, and all record calls reduce to a nil check. See enabled.go.
const Enabled = false
