package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// namePrefix namespaces every exported metric, per Prometheus convention.
const namePrefix = "bigmap_"

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative le-labeled buckets with _sum and _count. Metric names are
// sanitized to [a-zA-Z0-9_:] and prefixed with "bigmap_". Output order is
// the snapshot's sorted order, so consecutive scrapes diff cleanly.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "# TYPE %suptime_seconds gauge\n%suptime_seconds %g\n",
		namePrefix, namePrefix, float64(s.UptimeNanos)/1e9)

	for _, name := range sortedSnapKeys(s.Counters) {
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name])
	}
	for _, name := range sortedSnapKeys(s.Gauges) {
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[name])
	}
	for _, name := range sortedSnapKeys(s.Histograms) {
		writePromHistogram(bw, promName(name), s.Histograms[name])
	}
	return bw.err
}

func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bucketUpper(i), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// promName sanitizes a metric name for the exposition format and applies the
// namespace prefix. Internal names are already snake_case ASCII; this guards
// the odd dynamic name (span histograms include caller-supplied span names).
func promName(name string) string {
	var b strings.Builder
	b.WriteString(namePrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sortedSnapKeys sorts a snapshot map's keys. Snapshot maps are plain data
// handed to the renderer, so order is (re)established here rather than
// trusted from the caller.
func sortedSnapKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// errWriter latches the first write error so the render loop stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, nil
}
