// Package telemetry is the live observability layer: a standard-library-only
// metrics registry (atomic counters, gauges, and fixed-bucket log-scale
// histograms) plus a lightweight span/event tracer, designed so that the
// fuzzing hot path can be instrumented without giving up its two core
// properties — zero allocations per execution and bitwise-deterministic
// resume.
//
// # Design constraints
//
// Recording is allocation-free and lock-free: counters and gauges are single
// atomics, and a histogram is a fixed array of atomic bucket counters indexed
// by the value's bit length (log2 buckets), so Observe never allocates, never
// takes a lock, and costs a handful of atomic adds. Snapshot readers race
// benignly with recorders — each atomic is read individually, so a snapshot
// is approximately-consistent, which is all a stats endpoint needs.
//
// Telemetry is opt-in at two levels. At runtime, everything hangs off a
// *Registry; a nil registry (and the nil Counter/Gauge/Histogram handles it
// hands out) turns every record call into a nil-check-and-return, so the
// instrumented hot paths cost nothing measurable when telemetry is off — in
// particular, no clock is read. At build time, the bigmapnotel build tag
// makes New return nil unconditionally, collapsing the whole layer to the
// disabled fast path for environments that want the guarantee in the binary.
//
// # Determinism
//
// Telemetry observes the wall clock by design (that is its job), which is
// exactly what the determinism vet analyzer exists to flag. The package
// confines clock reads to a single function, Now, whose annotated call sites
// are the audited exemption; readings flow only into metrics and events,
// never into fuzzing decisions or checkpointed state, so a campaign run with
// telemetry on resumes bitwise-identically to one run with it off
// (TestResumeMatchesUninterrupted holds either way).
//
// # Exposure
//
// Registry.Snapshot returns a plain-data Snapshot (JSON-marshalable, sorted,
// deterministic layout); WritePrometheus renders it in the Prometheus text
// exposition format; Handler serves /metrics, /stats and net/http/pprof from
// one http.Handler — the surface behind bigmap-fuzz's -http flag.
package telemetry
