package telemetry

// Snapshot is a point-in-time, plain-data view of a registry: every metric
// by name, the retained events, and the process uptime. The layout is
// deterministic (names sorted, fixed bucket geometry) so two snapshots diff
// cleanly; the struct marshals directly to the /stats JSON endpoint.
type Snapshot struct {
	UptimeNanos int64                        `json:"uptime_ns"`
	Counters    map[string]uint64            `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Events      []Event                      `json:"events,omitempty"`
	EventsTotal uint64                       `json:"events_total,omitempty"`
}

// Snapshot captures the registry's current state. It is safe to call from
// any goroutine while recorders are running: metric reads are individual
// atomic loads, so the result is approximately consistent — fine for stats,
// never used for fuzzing decisions. A nil registry yields a zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	snap := Snapshot{UptimeNanos: Now()}

	// The name->metric maps are copied under the registry lock (registration
	// is cheap and rare); the metric values themselves are read lock-free.
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	//bigmap:nondeterministic-ok map copy; the output maps are rendered via sorted keys
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	//bigmap:nondeterministic-ok map copy; the output maps are rendered via sorted keys
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	//bigmap:nondeterministic-ok map copy; the output maps are rendered via sorted keys
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	if len(counters) > 0 {
		snap.Counters = make(map[string]uint64, len(counters))
		for _, name := range sortedKeys(counters) {
			snap.Counters[name] = counters[name].Value()
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(gauges))
		for _, name := range sortedKeys(gauges) {
			snap.Gauges[name] = gauges[name].Value()
		}
	}
	if len(histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(histograms))
		for _, name := range sortedKeys(histograms) {
			snap.Histograms[name] = histograms[name].snapshot()
		}
	}
	snap.Events, snap.EventsTotal = r.events.Snapshot()
	return snap
}

// MapOps bundles the per-operation histograms of one coverage-map scheme —
// the paper's cost breakdown (reset, classify, compare, merged
// classify+compare, hash) measured per execution rather than estimated. The
// zero value (all nil) is the disabled state: a map instrumented with it
// pays two nil checks per operation and reads no clock.
type MapOps struct {
	Reset           *Histogram
	Classify        *Histogram
	Compare         *Histogram
	ClassifyCompare *Histogram
	MaybeNew        *Histogram
	Hash            *Histogram
}

// NewMapOps resolves the map-operation histograms for a scheme ("afl",
// "bigmap"), named map_<scheme>_<op>_ns. Multiple maps of the same scheme
// (parallel campaign instances) share histograms and aggregate.
func NewMapOps(r *Registry, scheme string) MapOps {
	if r == nil {
		return MapOps{}
	}
	p := "map_" + scheme + "_"
	return MapOps{
		Reset:           r.Histogram(p + "reset_ns"),
		Classify:        r.Histogram(p + "classify_ns"),
		Compare:         r.Histogram(p + "compare_ns"),
		ClassifyCompare: r.Histogram(p + "classify_compare_ns"),
		MaybeNew:        r.Histogram(p + "maybe_new_ns"),
		Hash:            r.Histogram(p + "hash_ns"),
	}
}
