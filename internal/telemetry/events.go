package telemetry

import "sync"

// eventLogSize is the ring capacity: enough to hold a long campaign's cold
// milestones (checkpoints, revivals, saturation, signals) without growing.
const eventLogSize = 256

// Event is one timestamped campaign milestone. AtNanos is monotonic
// nanoseconds since process start (see Now), not wall-clock time.
type Event struct {
	AtNanos int64  `json:"at_ns"`
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
}

// EventLog is a fixed-capacity ring buffer of events. Add is cheap but takes
// a mutex — events are cold-path by design (a checkpoint save, an instance
// revival), never per-execution. A nil *EventLog ignores writes.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

func newEventLog(capacity int) *EventLog {
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// Add appends an event, evicting the oldest once the ring is full.
func (l *EventLog) Add(name, detail string) {
	if l == nil {
		return
	}
	e := Event{AtNanos: Now(), Name: name, Detail: detail}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
		return
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
}

// Snapshot returns the retained events oldest-first and the total number
// ever recorded (which exceeds len(events) once the ring has wrapped).
func (l *EventLog) Snapshot() ([]Event, uint64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out, l.total
}

// Span measures one named operation from StartSpan to End. The zero Span
// (from a nil registry) is inert. Spans are for cold, coarse operations —
// checkpoint saves, calibration sweeps — where a map lookup per span and an
// event log entry are noise; hot paths use pre-resolved Histogram handles.
type Span struct {
	r     *Registry
	name  string
	start int64
}

// StartSpan begins a span. Its duration lands in histogram "span_<name>_ns"
// and its completion is appended to the event log.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, start: Now()}
}

// End closes the span, recording its duration and logging the event. detail
// is free-form context for the event log ("1.4 MiB", "instance 3").
func (s Span) End(detail string) {
	if s.r == nil {
		return
	}
	d := Now() - s.start
	if d < 0 {
		d = 0
	}
	s.r.Histogram("span_" + s.name + "_ns").Observe(uint64(d))
	s.r.events.Add(s.name, detail)
}
