package core

// AFL converts exact edge hit counts into coarse buckets before comparing a
// trace against the global coverage state. The buckets are [1], [2], [3],
// [4-7], [8-15], [16-31], [32-127], [128-255]; each maps to a distinct bit so
// that the virgin-map compare can detect "same edge, new bucket" with a
// bitwise AND. classifyLookup is AFL's count_class_lookup8 table.
var classifyLookup = buildClassifyLookup()

func buildClassifyLookup() [256]byte {
	var t [256]byte
	set := func(lo, hi int, v byte) {
		for i := lo; i <= hi; i++ {
			t[i] = v
		}
	}
	t[0] = 0
	t[1] = 1
	t[2] = 2
	t[3] = 4
	set(4, 7, 8)
	set(8, 15, 16)
	set(16, 31, 32)
	set(32, 127, 64)
	set(128, 255, 128)
	return t
}

// ClassifyByte maps an exact hit count (saturated at 255) to its AFL bucket
// bit. Exposed for tests and for the documentation example in the paper's
// §II-A.
func ClassifyByte(count byte) byte {
	return classifyLookup[count]
}

// BucketRanges reports the inclusive hit-count ranges of the AFL buckets in
// ascending order, for documentation and reporting.
func BucketRanges() [][2]int {
	return [][2]int{{1, 1}, {2, 2}, {3, 3}, {4, 7}, {8, 15}, {16, 31}, {32, 127}, {128, 255}}
}
