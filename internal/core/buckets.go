package core

// AFL converts exact edge hit counts into coarse buckets before comparing a
// trace against the global coverage state. The buckets are [1], [2], [3],
// [4-7], [8-15], [16-31], [32-127], [128-255]; each maps to a distinct bit so
// that the virgin-map compare can detect "same edge, new bucket" with a
// bitwise AND. classifyLookup is AFL's count_class_lookup8 table.
var classifyLookup = buildClassifyLookup()

func buildClassifyLookup() [256]byte {
	var t [256]byte
	set := func(lo, hi int, v byte) {
		for i := lo; i <= hi; i++ {
			t[i] = v
		}
	}
	t[0] = 0
	t[1] = 1
	t[2] = 2
	t[3] = 4
	set(4, 7, 8)
	set(8, 15, 16)
	set(16, 31, 32)
	set(32, 127, 64)
	set(128, 255, 128)
	return t
}

// classifyLookup16 is the halfword variant of classifyLookup (AFL++'s
// count_class_lookup16): one table access classifies two adjacent counters,
// so classifyWord turns a 64-bit load into four lookups instead of eight
// byte lookups with a branch each. The array type lets the compiler drop
// bounds checks for &0xFFFF-masked indices. 128kB, built once at init.
var classifyLookup16 = buildClassifyLookup16()

func buildClassifyLookup16() *[1 << 16]uint16 {
	var t [1 << 16]uint16
	for hi := 0; hi < 256; hi++ {
		for lo := 0; lo < 256; lo++ {
			t[hi<<8|lo] = uint16(classifyLookup[hi])<<8 | uint16(classifyLookup[lo])
		}
	}
	return &t
}

// classifyWord classifies eight packed hit counters in one step. The packing
// is the little-endian order loadWord/storeWord use, and the halfword table
// is position-independent, so the result is identical to classifying each
// byte through classifyLookup.
func classifyWord(w uint64) uint64 {
	return uint64(classifyLookup16[w&0xFFFF]) |
		uint64(classifyLookup16[(w>>16)&0xFFFF])<<16 |
		uint64(classifyLookup16[(w>>32)&0xFFFF])<<32 |
		uint64(classifyLookup16[w>>48])<<48
}

// ClassifyByte maps an exact hit count (saturated at 255) to its AFL bucket
// bit. Exposed for tests and for the documentation example in the paper's
// §II-A.
func ClassifyByte(count byte) byte {
	return classifyLookup[count]
}

// BucketRanges reports the inclusive hit-count ranges of the AFL buckets in
// ascending order, for documentation and reporting.
func BucketRanges() [][2]int {
	return [][2]int{{1, 1}, {2, 2}, {3, 3}, {4, 7}, {8, 15}, {16, 31}, {32, 127}, {128, 255}}
}
