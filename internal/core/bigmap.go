package core

// BigMap is the paper's adaptive two-level coverage bitmap (§IV). An index
// bitmap maps each coverage key to a densely packed slot in the coverage
// bitmap; slots are assigned on first sight from the used_key counter. All
// per-testcase operations except the update itself traverse only the used
// region [0..used_key), so their cost depends on how many distinct coverage
// keys the target has produced rather than on the map's size — the map can be
// made arbitrarily large to suppress hash collisions at negligible cost.
//
// The only full-map work is the one-time initialization of the index bitmap
// to "unassigned" when the map is created.
type BigMap struct {
	index    []int32  // key -> dense slot, -1 when unassigned
	coverage []byte   // dense hit counters, valid in [0..used)
	slotKey  []uint32 // dense slot -> key (diagnostic reverse mapping)
	used     int
}

var _ Map = (*BigMap)(nil)

// NewBigMap creates a two-level coverage map with the given hash-space size,
// which must be a positive power of two (e.g. MapSize8M).
func NewBigMap(size int) (*BigMap, error) {
	if !validSize(size) {
		return nil, ErrBadMapSize
	}
	m := &BigMap{
		index:    make([]int32, size),
		coverage: make([]byte, size),
	}
	for i := range m.index {
		m.index[i] = -1
	}
	return m, nil
}

// Size returns the hash space size.
func (m *BigMap) Size() int { return len(m.index) }

// Scheme returns "bigmap".
func (m *BigMap) Scheme() string { return "bigmap" }

// UsedKeys returns used_key: how many distinct coverage keys have been
// observed since the map was created.
func (m *BigMap) UsedKeys() int { return m.used }

// Add performs the two-level update from the paper's Listing 2: look the key
// up in the index bitmap, assigning the next free dense slot on first sight,
// then increment the dense hit counter (saturating at 255).
func (m *BigMap) Add(key uint32) {
	k := m.index[key]
	if k < 0 {
		k = int32(m.used)
		m.index[key] = k
		m.slotKey = append(m.slotKey, key)
		m.used++
	}
	b := m.coverage[k]
	if b < 255 {
		m.coverage[k] = b + 1
	}
}

// Reset wipes only the used region of the coverage bitmap. The index bitmap
// is deliberately untouched: slot assignments persist for the whole campaign
// so the same edge always lands in the same slot.
func (m *BigMap) Reset() {
	clear(m.coverage[:m.used])
}

// Classify converts exact hit counts to bucket bits in place over the used
// region only.
func (m *BigMap) Classify() {
	cov := m.coverage[:m.used]
	for i, b := range cov {
		if b != 0 {
			cov[i] = classifyLookup[b]
		}
	}
}

// CompareWith implements has_new_bits over the used region. The virgin map
// shares the dense slot space (slot assignments are stable and monotonic), so
// comparing [0..used) observes exactly the keys ever seen.
func (m *BigMap) CompareWith(virgin *Virgin) Verdict {
	verdict := VerdictNone
	cov := m.coverage[:m.used]
	vb := virgin.bits
	for i, t := range cov {
		if t == 0 {
			continue
		}
		v := vb[i]
		if t&v == 0 {
			continue
		}
		if v == 0xFF {
			verdict = VerdictNewEdges
		} else if verdict < VerdictNewCounts {
			verdict = VerdictNewCounts
		}
		vb[i] = v &^ t
	}
	return verdict
}

// ClassifyAndCompare performs the merged classify+compare traversal (§IV-E)
// over the used region.
func (m *BigMap) ClassifyAndCompare(virgin *Virgin) Verdict {
	verdict := VerdictNone
	cov := m.coverage[:m.used]
	vb := virgin.bits
	for i, b := range cov {
		if b == 0 {
			continue
		}
		t := classifyLookup[b]
		cov[i] = t
		v := vb[i]
		if t&v == 0 {
			continue
		}
		if v == 0xFF {
			verdict = VerdictNewEdges
		} else if verdict < VerdictNewCounts {
			verdict = VerdictNewCounts
		}
		vb[i] = v &^ t
	}
	return verdict
}

// Hash digests the coverage bitmap up to the last non-zero slot (§IV-D).
// Hashing a fixed [0..used) prefix would make the digest of a path depend on
// how many edges other test cases had discovered by the time it ran; clipping
// at the last non-zero value keeps the digest a function of the path alone.
func (m *BigMap) Hash() uint64 {
	cov := m.coverage[:m.used]
	last := -1
	for i := len(cov) - 1; i >= 0; i-- {
		if cov[i] != 0 {
			last = i
			break
		}
	}
	return hashBytes(cov[:last+1])
}

// CountNonZero counts dense slots with non-zero hit counts.
func (m *BigMap) CountNonZero() int {
	n := 0
	for _, b := range m.coverage[:m.used] {
		if b != 0 {
			n++
		}
	}
	return n
}

// AppendTouched appends the dense slot indices with non-zero hit counts.
// Slot identity is stable across executions because the index mapping never
// changes once assigned.
func (m *BigMap) AppendTouched(dst []uint32) []uint32 {
	for i, b := range m.coverage[:m.used] {
		if b != 0 {
			dst = append(dst, uint32(i))
		}
	}
	return dst
}

// NewVirgin allocates a virgin map with one slot per possible dense slot.
func (m *BigMap) NewVirgin() *Virgin {
	return newVirgin(len(m.coverage))
}

// KeyForSlot returns the coverage key that was assigned the given dense slot.
// It is a diagnostic aid for tests and triage tooling; the fuzzing hot path
// never needs it.
func (m *BigMap) KeyForSlot(slot int) (uint32, bool) {
	if slot < 0 || slot >= m.used {
		return 0, false
	}
	return m.slotKey[slot], true
}

// SlotForKey returns the dense slot assigned to key, or -1 if the key has
// never been observed.
func (m *BigMap) SlotForKey(key uint32) int {
	return int(m.index[key])
}

// Snapshot returns a copy of the used region of the coverage bitmap.
func (m *BigMap) Snapshot() []byte {
	out := make([]byte, m.used)
	copy(out, m.coverage[:m.used])
	return out
}
