package core

import (
	"errors"
	"fmt"

	"github.com/bigmap/bigmap/internal/telemetry"
)

// initialSlotCap is the dense-slot capacity preallocated at construction.
// Table II targets discover thousands of keys, so one up-front allocation
// covers a whole campaign's discovery bursts; maps smaller than this cap at
// their own size. Growth beyond the preallocation doubles (see growSlotKey).
const initialSlotCap = 4096

// BigMap is the paper's adaptive two-level coverage bitmap (§IV). An index
// bitmap maps each coverage key to a densely packed slot in the coverage
// bitmap; slots are assigned on first sight from the used_key counter. All
// per-testcase operations except the update itself traverse only the used
// region [0..used_key), so their cost depends on how many distinct coverage
// keys the target has produced rather than on the map's size — the map can be
// made arbitrarily large to suppress hash collisions at negligible cost.
//
// Two refinements tighten that bound further. The traversals use the shared
// word-level kernels (kernels.go), so the per-slot constant matches AFL's
// u64* loops. And Add maintains a high-water mark: the highest dense slot
// touched since the last Reset. Slots above it are guaranteed zero, so
// classify, compare, hash, count and reset all clip at the mark — their cost
// follows the current trace's footprint, which is never larger than (and
// after the discovery phase typically equal to) the used region.
//
// The only full-map work is the one-time initialization of the index bitmap
// to "unassigned" when the map is created.
type BigMap struct {
	index    []int32  // key -> dense slot, -1 when unassigned
	coverage []byte   // dense hit counters, valid in [0..used)
	slotKey  []uint32 // dense slot -> key (diagnostic reverse mapping)
	used     int
	hw       int    // highest slot touched since Reset, -1 when trace is clean
	dropped  uint64 // first-sight keys seen after the slot space filled

	// tel holds the optional per-operation telemetry histograms. The zero
	// value (all nil) is the disabled fast path: each timed operation pays
	// two nil checks and never reads the clock.
	tel telemetry.MapOps
}

var (
	_ Map            = (*BigMap)(nil)
	_ Saturable      = (*BigMap)(nil)
	_ Instrumented   = (*BigMap)(nil)
	_ CoverageMerger = (*BigMap)(nil)
)

// NewBigMap creates a two-level coverage map with the given hash-space size,
// which must be a positive power of two (e.g. MapSize8M). The dense slot
// region spans the full hash space, so the map can never saturate.
func NewBigMap(size int) (*BigMap, error) {
	return NewBigMapSlots(size, size)
}

// NewBigMapSlots creates a two-level map with a bounded dense slot region:
// at most slotCap distinct coverage keys can be assigned slots (slotCap == 0
// or >= size means unbounded). This is the configuration the paper's design
// actually targets — a huge hash space backed by a small dense bitmap — and
// it introduces a saturation state: once used_key reaches slotCap, further
// first-sight keys are counted in DroppedKeys and produce no coverage,
// rather than silently corrupting existing slots. slotCap need not be a
// power of two.
func NewBigMapSlots(size, slotCap int) (*BigMap, error) {
	if !validSize(size) {
		return nil, ErrBadMapSize
	}
	if slotCap <= 0 || slotCap > size {
		slotCap = size
	}
	reserve := initialSlotCap
	if slotCap < reserve {
		reserve = slotCap
	}
	m := &BigMap{
		index:    make([]int32, size),
		coverage: make([]byte, slotCap),
		slotKey:  make([]uint32, 0, reserve),
		hw:       -1,
	}
	for i := range m.index {
		m.index[i] = -1
	}
	return m, nil
}

// Instrument installs telemetry histograms for the per-testcase operations.
// Timings are observability output only; they never influence fuzzing
// decisions, so an instrumented campaign replays identically to a bare one.
func (m *BigMap) Instrument(ops telemetry.MapOps) { m.tel = ops }

// Size returns the hash space size.
func (m *BigMap) Size() int { return len(m.index) }

// Scheme returns "bigmap".
func (m *BigMap) Scheme() string { return "bigmap" }

// UsedKeys returns used_key: how many distinct coverage keys have been
// observed since the map was created.
func (m *BigMap) UsedKeys() int { return m.used }

// trace returns the region the per-testcase operations must traverse: every
// slot touched since the last Reset lies below the high-water mark, and all
// slots above it are zero.
func (m *BigMap) trace() []byte {
	return m.coverage[:m.hw+1]
}

// Add performs the two-level update from the paper's Listing 2: look the key
// up in the index bitmap, assigning the next free dense slot on first sight,
// then increment the dense hit counter (saturating at 255).
//
//bigmap:hotpath per-visit map update
func (m *BigMap) Add(key uint32) {
	k := m.index[key]
	if k < 0 {
		if m.used == len(m.coverage) {
			// Slot space saturated: drop the key explicitly rather than
			// aliasing it onto an existing slot.
			m.dropped++
			return
		}
		k = int32(m.used)
		m.index[key] = k
		m.growSlotKey()
		m.slotKey = append(m.slotKey, key) //bigmap:alloc-ok never reallocates: growSlotKey on the line above guarantees spare capacity
		m.used++
	}
	if int(k) > m.hw {
		m.hw = int(k)
	}
	b := m.coverage[k]
	if b < 255 {
		m.coverage[k] = b + 1
	}
	m.debugCheckCounters()
}

// AddBatch records a whole buffered trace in one call — the flush half of
// the batched tracing pipeline. The semantics are exactly len(keys)
// applications of Listing 2's update: hit counts saturate identically and
// slots are assigned in first-sight order within the batch, so the dense
// layout is the same one per-edge Adds would have produced. One interface
// call per execution replaces one virtual Add per edge event, and the
// high-water mark is folded through a register instead of memory.
//
//bigmap:hotpath per-flush batched map update
func (m *BigMap) AddBatch(keys []uint32) {
	hw := m.hw
	for _, key := range keys {
		k := m.index[key]
		if k < 0 {
			if m.used == len(m.coverage) {
				m.dropped++
				continue
			}
			k = int32(m.used)
			m.index[key] = k
			m.growSlotKey()
			m.slotKey = append(m.slotKey, key) //bigmap:alloc-ok never reallocates: growSlotKey on the line above guarantees spare capacity
			m.used++
		}
		if int(k) > hw {
			hw = int(k)
		}
		b := m.coverage[k]
		if b < 255 {
			m.coverage[k] = b + 1
		}
	}
	m.hw = hw
	m.debugCheckCounters()
}

// growSlotKey doubles slotKey's capacity when it is full, keeping slot
// assignment allocation-free during discovery bursts: for n discoveries past
// the preallocation the map performs O(log n) allocations, and none at all
// while used_key stays within initialSlotCap (see the regression test).
func (m *BigMap) growSlotKey() {
	if len(m.slotKey) < cap(m.slotKey) {
		return
	}
	grown := make([]uint32, len(m.slotKey), 2*cap(m.slotKey)) //bigmap:alloc-ok amortized doubling: O(log used_key) allocations per campaign, none within initialSlotCap
	copy(grown, m.slotKey)
	m.slotKey = grown
}

// Reset wipes the touched region of the coverage bitmap — everything past
// the high-water mark is already zero. The index bitmap is deliberately
// untouched: slot assignments persist for the whole campaign so the same
// edge always lands in the same slot.
//
//bigmap:hotpath per-exec map clear
func (m *BigMap) Reset() {
	t0 := m.tel.Reset.Start()
	m.debugCheckTraceClean()
	clear(m.trace())
	m.hw = -1
	m.tel.Reset.Done(t0)
}

// Classify converts exact hit counts to bucket bits in place over the
// touched region only.
//
//bigmap:hotpath per-exec bucket classification
func (m *BigMap) Classify() {
	t0 := m.tel.Classify.Start()
	classifyRegion(m.trace())
	m.tel.Classify.Done(t0)
}

// CompareWith implements has_new_bits over the touched region. The virgin
// map shares the dense slot space (slot assignments are stable and
// monotonic), so comparing the region the current trace touched observes
// exactly the keys this execution hit; untouched slots are zero and can
// never contribute a verdict.
//
//bigmap:hotpath per-exec virgin comparison
func (m *BigMap) CompareWith(virgin *Virgin) Verdict {
	t0 := m.tel.Compare.Start()
	verdict, newEdges := compareRegion(m.trace(), virgin.bits)
	virgin.discovered += newEdges
	m.tel.Compare.Done(t0)
	return verdict
}

// ClassifyAndCompare performs the merged classify+compare traversal (§IV-E)
// over the touched region.
//
//bigmap:hotpath per-exec merged classify+compare
func (m *BigMap) ClassifyAndCompare(virgin *Virgin) Verdict {
	t0 := m.tel.ClassifyCompare.Start()
	verdict, newEdges := classifyCompareRegion(m.trace(), virgin.bits)
	virgin.discovered += newEdges
	m.tel.ClassifyCompare.Done(t0)
	return verdict
}

// MaybeNew is the read-only selective-tracing prefilter over the touched
// region: true iff ClassifyAndCompare(virgin) would return a non-VerdictNone
// verdict. Neither the trace nor the virgin map is modified, so a false
// result lets the caller skip the classify-store and virgin-update work of
// the full traversal for this execution.
//
//bigmap:hotpath per-exec selective-trace prefilter
func (m *BigMap) MaybeNew(virgin *Virgin) bool {
	t0 := m.tel.MaybeNew.Start()
	hit := maybeNewRegion(m.trace(), virgin.bits)
	m.tel.MaybeNew.Done(t0)
	return hit
}

// Hash digests the coverage bitmap up to the last non-zero slot (§IV-D).
// Hashing a fixed [0..used) prefix would make the digest of a path depend on
// how many edges other test cases had discovered by the time it ran; clipping
// at the last non-zero value keeps the digest a function of the path alone.
// The high-water mark already bounds the scan — the backward word-level
// search only walks the (usually empty) zero gap below it.
//
//bigmap:hotpath per-discovery trace digest
func (m *BigMap) Hash() uint64 {
	t0 := m.tel.Hash.Start()
	last := lastNonZero(m.trace())
	h := hashBytes(m.coverage[:last+1])
	m.tel.Hash.Done(t0)
	return h
}

// CountNonZero counts dense slots with non-zero hit counts.
func (m *BigMap) CountNonZero() int {
	return countNonZeroRegion(m.trace())
}

// AppendTouched appends the dense slot indices with non-zero hit counts.
// Slot identity is stable across executions because the index mapping never
// changes once assigned.
func (m *BigMap) AppendTouched(dst []uint32) []uint32 {
	return appendTouchedRegion(dst, m.trace())
}

// NewVirgin allocates a virgin map with one slot per possible dense slot.
func (m *BigMap) NewVirgin() *Virgin {
	return newVirgin(len(m.coverage))
}

// KeyForSlot returns the coverage key that was assigned the given dense slot.
// It is a diagnostic aid for tests and triage tooling; the fuzzing hot path
// never needs it.
func (m *BigMap) KeyForSlot(slot int) (uint32, bool) {
	if slot < 0 || slot >= m.used {
		return 0, false
	}
	return m.slotKey[slot], true
}

// SlotForKey returns the dense slot assigned to key, or -1 if the key has
// never been observed.
func (m *BigMap) SlotForKey(key uint32) int {
	return int(m.index[key])
}

// Snapshot returns a copy of the used region of the coverage bitmap.
func (m *BigMap) Snapshot() []byte {
	out := make([]byte, m.used)
	copy(out, m.coverage[:m.used])
	return out
}

// SlotCap returns the dense slot capacity: how many distinct coverage keys
// the map can track before saturating.
func (m *BigMap) SlotCap() int { return len(m.coverage) }

// Saturated reports whether every dense slot has been assigned. A saturated
// map keeps working — established slots record coverage normally — but keys
// never seen before are dropped (and counted) instead of assigned.
func (m *BigMap) Saturated() bool { return m.used == len(m.coverage) }

// DroppedKeys counts the first-sight keys observed after saturation. Non-zero
// means coverage feedback is incomplete and the campaign should be re-run
// with a larger slot region.
func (m *BigMap) DroppedKeys() uint64 { return m.dropped }

// MergeVirginInto folds an instance virgin map into a campaign-level union,
// translating each dense slot to its raw coverage key through the live
// slot-to-key table (no copy; the union reads it during the call only).
func (m *BigMap) MergeVirginInto(u VirginUnion, v *Virgin) {
	u.MergeVirgin(v, m.slotKey[:m.used])
}

// SlotKeys returns a copy of the dense-slot-to-key assignment table, in slot
// order. Together with the drop counter this is the map's entire persistent
// state (hit counters are per-execution), which is what a checkpoint stores.
func (m *BigMap) SlotKeys() []uint32 {
	out := make([]uint32, m.used)
	copy(out, m.slotKey[:m.used])
	return out
}

// RestoreAssignments rebuilds the index from a checkpointed SlotKeys table
// (plus the saturation drop counter), so every previously seen edge lands in
// the same dense slot it had before the checkpoint — the property that keeps
// corpus Touched lists, virgin maps and path hashes valid across a resume.
// The map must be freshly created with identical geometry.
func (m *BigMap) RestoreAssignments(slotKeys []uint32, dropped uint64) error {
	if m.used != 0 {
		return errors.New("core: RestoreAssignments on a used map")
	}
	if len(slotKeys) > len(m.coverage) {
		return fmt.Errorf("core: checkpoint has %d slots, map capacity is %d",
			len(slotKeys), len(m.coverage))
	}
	for slot, key := range slotKeys {
		if int(key) >= len(m.index) {
			return fmt.Errorf("core: checkpoint key %d out of range (map size %d)", key, len(m.index))
		}
		if m.index[key] >= 0 {
			return fmt.Errorf("core: checkpoint assigns key %d twice", key)
		}
		m.index[key] = int32(slot)
	}
	m.slotKey = append(m.slotKey[:0], slotKeys...)
	m.used = len(slotKeys)
	m.dropped = dropped
	m.debugCheckCounters()
	m.debugCheckBijection()
	return nil
}
