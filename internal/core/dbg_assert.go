package core

import "fmt"

// This file is the executable form of BigMap's structural invariants
// (§IV): the counters that make the used-region bound sound, the
// guaranteed-zero region above the high-water mark that makes clipping
// sound, and the index↔slot bijection that makes dense slots stable. Each
// helper early-returns on the debugAssertions constant, so release builds
// (no bigmapdbg tag) compile the calls away entirely; under -tags
// bigmapdbg a violated invariant panics at the operation that broke it
// rather than surfacing later as silently wrong coverage.

// debugCheckCounters verifies the O(1) per-update invariants: the slot-key
// table tracks used_key exactly, used_key never exceeds the slot capacity,
// and the high-water mark stays inside [-1, used_key).
func (m *BigMap) debugCheckCounters() {
	if !debugAssertions {
		return
	}
	if len(m.slotKey) != m.used {
		panic(fmt.Sprintf("core: slotKey length %d diverged from used_key %d", len(m.slotKey), m.used)) //bigmap:alloc-ok panic message on a violated invariant; bigmapdbg builds only and the process is dying
	}
	if m.used > len(m.coverage) {
		panic(fmt.Sprintf("core: used_key %d exceeds slot capacity %d", m.used, len(m.coverage))) //bigmap:alloc-ok panic message on a violated invariant; bigmapdbg builds only and the process is dying
	}
	if m.hw < -1 || m.hw >= m.used {
		panic(fmt.Sprintf("core: high-water mark %d outside [-1, used_key %d)", m.hw, m.used)) //bigmap:alloc-ok panic message on a violated invariant; bigmapdbg builds only and the process is dying
	}
}

// debugCheckTraceClean verifies that every slot above the high-water mark
// is zero — the invariant that lets classify, compare, hash, count and
// reset clip their traversals at the mark.
func (m *BigMap) debugCheckTraceClean() {
	if !debugAssertions {
		return
	}
	if last := lastNonZero(m.coverage[:m.used]); last > m.hw {
		panic(fmt.Sprintf("core: slot %d non-zero above high-water mark %d", last, m.hw)) //bigmap:alloc-ok panic message on a violated invariant; bigmapdbg builds only and the process is dying
	}
}

// debugCheckBijection verifies that index and slotKey are mutual inverses
// over the used region: every assigned slot's key points back at that
// slot. O(used_key), so it runs at restore boundaries, not per update.
func (m *BigMap) debugCheckBijection() {
	if !debugAssertions {
		return
	}
	for slot, key := range m.slotKey[:m.used] {
		if got := m.index[key]; int(got) != slot {
			panic(fmt.Sprintf("core: index[%d] = %d, but slotKey assigns slot %d", key, got, slot))
		}
	}
}
