//go:build bigmapdbg

package core

import (
	"strings"
	"testing"
)

// mustPanic runs fn and fails unless it panics with a message containing
// want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one mentioning %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want message mentioning %q", r, want)
		}
	}()
	fn()
}

func debugMap(t *testing.T) *BigMap {
	t.Helper()
	m, err := NewBigMap(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDebugAssertionsQuietOnHealthyMap exercises the full operation surface
// with assertions enabled; none may fire.
func TestDebugAssertionsQuietOnHealthyMap(t *testing.T) {
	m := debugMap(t)
	for i := uint32(0); i < 300; i++ {
		m.Add(i * 7 % 1024)
	}
	m.AddBatch([]uint32{1, 9, 9, 512, 1023})
	m.Classify()
	_ = m.Hash()
	m.Reset()

	fresh := debugMap(t)
	if err := fresh.RestoreAssignments(m.SlotKeys(), 0); err != nil {
		t.Fatal(err)
	}
}

func TestDebugAssertSlotKeyDrift(t *testing.T) {
	m := debugMap(t)
	m.Add(3)
	m.slotKey = m.slotKey[:0] // corrupt: table no longer tracks used_key
	mustPanic(t, "slotKey length", func() { m.Add(3) })
}

func TestDebugAssertHighWaterMark(t *testing.T) {
	m := debugMap(t)
	m.Add(3)
	m.hw = m.used + 5 // corrupt: mark points past the used region
	mustPanic(t, "high-water mark", func() { m.Add(3) })
}

func TestDebugAssertTraceCleanAboveMark(t *testing.T) {
	m := debugMap(t)
	m.Add(3)
	m.Add(4)
	m.Reset()
	m.Add(3)          // hw = 0
	m.coverage[1] = 7 // corrupt: non-zero slot above the mark
	mustPanic(t, "non-zero above high-water mark", m.Reset)
}

func TestDebugAssertBijection(t *testing.T) {
	m := debugMap(t)
	m.Add(3)
	m.Add(9)
	fresh := debugMap(t)
	keys := m.SlotKeys()
	if err := fresh.RestoreAssignments(keys, 0); err != nil {
		t.Fatal(err)
	}
	fresh.index[keys[0]] = 1 // corrupt: two keys claim slot 1
	mustPanic(t, "slotKey assigns", fresh.debugCheckBijection)
}
