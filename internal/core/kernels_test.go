package core

import (
	"bytes"
	"testing"

	"github.com/bigmap/bigmap/internal/rng"
)

// The word-level kernels must be byte-for-byte equivalent to the scalar
// references on every input: same classified bitmap, same verdict, same
// virgin mutation, same counts and scan indices. These tests pin that down
// with a go test -fuzz differential fuzzer (seeded so plain `go test` still
// exercises the corners), a testing/quick property, and exhaustive
// single-word cases around the alignment and bucket boundaries.

// checkKernelEquivalence runs every kernel pair on one trace/virgin input
// and fails the test on the first divergence. virgin is stretched or
// truncated to the trace length with undiscovered (0xFF) padding.
func checkKernelEquivalence(t *testing.T, trace, virgin []byte) {
	t.Helper()
	virgin = append([]byte(nil), virgin...)
	for len(virgin) < len(trace) {
		virgin = append(virgin, 0xFF)
	}
	virgin = virgin[:len(trace)]

	// Classify.
	gotTrace := append([]byte(nil), trace...)
	wantTrace := append([]byte(nil), trace...)
	classifyRegion(gotTrace)
	classifyScalar(wantTrace)
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Fatalf("classify diverged\n trace %x\n word  %x\n scalar %x", trace, gotTrace, wantTrace)
	}

	// Compare (on the classified trace, as the split pipeline runs it).
	gotVirgin := append([]byte(nil), virgin...)
	wantVirgin := append([]byte(nil), virgin...)
	gotVerdict, gotNew := compareRegion(gotTrace, gotVirgin)
	wantVerdict, wantNew := compareScalar(wantTrace, wantVirgin, VerdictNone, 0)
	if gotVerdict != wantVerdict {
		t.Fatalf("compare verdict diverged: word %v scalar %v (trace %x virgin %x)", gotVerdict, wantVerdict, gotTrace, virgin)
	}
	if gotNew != wantNew {
		t.Fatalf("compare newEdges diverged: word %d scalar %d", gotNew, wantNew)
	}
	if !bytes.Equal(gotVirgin, wantVirgin) {
		t.Fatalf("compare virgin diverged\n word  %x\n scalar %x", gotVirgin, wantVirgin)
	}

	// Read-only prefilter, from the raw counts and the untouched virgin.
	preTrace := append([]byte(nil), trace...)
	preVirgin := append([]byte(nil), virgin...)
	gotMaybe := maybeNewRegion(preTrace, preVirgin)
	wantMaybe := maybeNewScalar(preTrace, preVirgin)
	if gotMaybe != wantMaybe {
		t.Fatalf("maybeNew diverged: word %v scalar %v (trace %x virgin %x)", gotMaybe, wantMaybe, trace, virgin)
	}
	if !bytes.Equal(preTrace, trace) || !bytes.Equal(preVirgin, virgin) {
		t.Fatalf("maybeNew mutated its inputs\n trace %x -> %x\n virgin %x -> %x", trace, preTrace, virgin, preVirgin)
	}

	// Merged classify+compare, from the raw counts.
	gotTrace = append([]byte(nil), trace...)
	wantTrace = append([]byte(nil), trace...)
	gotVirgin = append([]byte(nil), virgin...)
	wantVirgin = append([]byte(nil), virgin...)
	gotVerdict, gotNew = classifyCompareRegion(gotTrace, gotVirgin)
	wantVerdict, wantNew = classifyCompareScalar(wantTrace, wantVirgin, VerdictNone, 0)
	if gotVerdict != wantVerdict {
		t.Fatalf("merged verdict diverged: word %v scalar %v", gotVerdict, wantVerdict)
	}
	if gotNew != wantNew {
		t.Fatalf("merged newEdges diverged: word %d scalar %d", gotNew, wantNew)
	}
	// The incremental count must agree with the byte definition: newly
	// discovered slots are exactly the virgin bytes that left 0xFF.
	wantTransitions := 0
	for i := range virgin {
		if virgin[i] == 0xFF && gotVirgin[i] != 0xFF {
			wantTransitions++
		}
	}
	if gotNew != wantTransitions {
		t.Fatalf("newEdges %d != %d observed 0xFF transitions", gotNew, wantTransitions)
	}
	if !bytes.Equal(gotTrace, wantTrace) || !bytes.Equal(gotVirgin, wantVirgin) {
		t.Fatalf("merged bitmaps diverged\n trace word %x scalar %x\n virgin word %x scalar %x",
			gotTrace, wantTrace, gotVirgin, wantVirgin)
	}
	// The prefilter must be exact: true iff the merged traversal finds
	// anything. This is the soundness contract selective tracing rests on.
	if gotMaybe != (gotVerdict != VerdictNone) {
		t.Fatalf("maybeNew %v disagrees with merged verdict %v (trace %x virgin %x)",
			gotMaybe, gotVerdict, trace, virgin)
	}

	// Counting and scanning.
	if got, want := countNonZeroRegion(trace), countNonZeroScalar(trace); got != want {
		t.Fatalf("countNonZero diverged: word %d scalar %d (trace %x)", got, want, trace)
	}
	if got, want := lastNonZero(trace), lastNonZeroScalar(trace); got != want {
		t.Fatalf("lastNonZero diverged: word %d scalar %d (trace %x)", got, want, trace)
	}
	var gotIdx, wantIdx []uint32
	gotIdx = appendTouchedRegion(gotIdx, trace)
	wantIdx = appendTouchedScalar(wantIdx, trace)
	if len(gotIdx) != len(wantIdx) {
		t.Fatalf("appendTouched length diverged: word %d scalar %d", len(gotIdx), len(wantIdx))
	}
	for i := range gotIdx {
		if gotIdx[i] != wantIdx[i] {
			t.Fatalf("appendTouched index %d diverged: word %d scalar %d", i, gotIdx[i], wantIdx[i])
		}
	}
}

// FuzzKernelEquivalence is the differential fuzzer: arbitrary trace/virgin
// byte pairs through every scalar/word kernel pair. Run with
// `go test -fuzz FuzzKernelEquivalence ./internal/core`.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1}, []byte{0xFF})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1}, []byte{0xFF})
	f.Add(bytes.Repeat([]byte{3}, 17), bytes.Repeat([]byte{0x55}, 17))
	f.Add(bytes.Repeat([]byte{255}, 32), bytes.Repeat([]byte{0}, 32))
	f.Add([]byte{0, 1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 127, 128, 255}, []byte{0xFF, 0xFE, 1, 0, 0x80, 0x0F})
	f.Fuzz(func(t *testing.T, trace, virgin []byte) {
		if len(trace) > 1<<12 {
			trace = trace[:1<<12]
		}
		checkKernelEquivalence(t, trace, virgin)
	})
}

// TestKernelEquivalenceRandom sweeps random dense and sparse trace/virgin
// pairs of awkward lengths through the differential check; the sparse cases
// exercise the zero-word skip paths, the dense ones the per-byte fallbacks.
func TestKernelEquivalenceRandom(t *testing.T) {
	src := rng.New(0xdead)
	for iter := 0; iter < 500; iter++ {
		n := src.Intn(200)
		trace := make([]byte, n)
		virgin := make([]byte, n)
		density := 1 + src.Intn(100) // percent of non-zero trace bytes
		for i := range trace {
			if src.Intn(100) < density {
				trace[i] = byte(1 + src.Intn(255))
			}
			switch src.Intn(4) {
			case 0:
				virgin[i] = 0xFF // undiscovered
			case 1:
				virgin[i] = 0x00 // fully discovered
			default:
				virgin[i] = byte(src.Uint32()) // partially discovered
			}
		}
		checkKernelEquivalence(t, trace, virgin)
	}
}

// TestKernelEquivalenceBoundaries walks every bucket-boundary count through
// every byte lane and alignment so the halfword packing cannot hide a
// lane-swap bug, with a virgin byte sweep that covers all discovery states.
func TestKernelEquivalenceBoundaries(t *testing.T) {
	counts := []byte{0, 1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 127, 128, 255}
	virgins := []byte{0xFF, 0xFE, 0x80, 0x0F, 0x01, 0x00}
	for size := 1; size <= 24; size++ {
		for lane := 0; lane < size; lane++ {
			for _, c := range counts {
				for _, v := range virgins {
					trace := make([]byte, size)
					trace[lane] = c
					virgin := bytes.Repeat([]byte{v}, size)
					checkKernelEquivalence(t, trace, virgin)
				}
			}
		}
	}
}

func TestClassifyWordMatchesLookup(t *testing.T) {
	src := rng.New(7)
	buf := make([]byte, 8)
	want := make([]byte, 8)
	for iter := 0; iter < 10000; iter++ {
		for i := range buf {
			buf[i] = byte(src.Uint32())
		}
		copy(want, buf)
		for i, b := range want {
			want[i] = classifyLookup[b]
		}
		storeWord(buf, classifyWord(loadWord(buf)))
		if !bytes.Equal(buf, want) {
			t.Fatalf("classifyWord diverged: got %x want %x", buf, want)
		}
	}
}

// TestAddBatchMatchesAdd pins AddBatch to its contract: exactly a loop of
// Adds, including slot-assignment order and saturation, for both schemes.
func TestAddBatchMatchesAdd(t *testing.T) {
	const size = 512
	src := rng.New(11)
	for _, scheme := range []string{"afl", "bigmap"} {
		single, err := newSchemeMap(scheme, size)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := newSchemeMap(scheme, size)
		if err != nil {
			t.Fatal(err)
		}
		vs, vb := single.NewVirgin(), batched.NewVirgin()
		for step := 0; step < 200; step++ {
			keys := make([]uint32, src.Intn(600))
			for i := range keys {
				keys[i] = uint32(src.Intn(size))
			}
			single.Reset()
			batched.Reset()
			for _, k := range keys {
				single.Add(k)
			}
			batched.AddBatch(keys)
			if g, w := batched.CountNonZero(), single.CountNonZero(); g != w {
				t.Fatalf("%s step %d: nonzero %d != %d", scheme, step, g, w)
			}
			single.Classify()
			if g, w := batched.ClassifyAndCompare(vb), single.CompareWith(vs); g != w {
				t.Fatalf("%s step %d: verdict %v != %v", scheme, step, g, w)
			}
			if g, w := batched.Hash(), single.Hash(); g != w {
				t.Fatalf("%s step %d: hash %#x != %#x", scheme, step, g, w)
			}
			if g, w := batched.UsedKeys(), single.UsedKeys(); g != w {
				t.Fatalf("%s step %d: used %d != %d", scheme, step, g, w)
			}
		}
	}
}

func newSchemeMap(scheme string, size int) (Map, error) {
	if scheme == "afl" {
		return NewAFLMap(size)
	}
	return NewBigMap(size)
}

// TestBigMapHighWaterMark checks the invariant the clipped traversals rely
// on: every slot above the mark is zero, and the mark tracks the maximum
// touched slot, not the most recent one.
func TestBigMapHighWaterMark(t *testing.T) {
	m := mustBig(t, 256)
	if m.hw != -1 {
		t.Fatalf("fresh map hw = %d, want -1", m.hw)
	}
	m.Add(10) // slot 0
	m.Add(20) // slot 1
	m.Add(30) // slot 2
	if m.hw != 2 {
		t.Fatalf("hw = %d after three discoveries, want 2", m.hw)
	}
	m.Reset()
	if m.hw != -1 {
		t.Fatalf("hw = %d after reset, want -1", m.hw)
	}
	m.Add(20) // existing slot 1; slots 0 and 2 stay zero
	if m.hw != 1 {
		t.Fatalf("hw = %d, want 1", m.hw)
	}
	m.Add(10) // lower slot must not move the mark down
	if m.hw != 1 {
		t.Fatalf("hw = %d after touching lower slot, want 1", m.hw)
	}
	for _, b := range m.coverage[m.hw+1 : m.used] {
		if b != 0 {
			t.Fatal("slot above high-water mark is non-zero")
		}
	}
	if got := m.CountNonZero(); got != 2 {
		t.Fatalf("CountNonZero = %d, want 2", got)
	}
	if got := m.AppendTouched(nil); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("AppendTouched = %v, want [0 1]", got)
	}
}

// TestBigMapAddAllocs is the allocation regression test for slot-key
// preallocation: discovering up to initialSlotCap keys must not allocate at
// all, and a full 16x overshoot must cost only the geometric growth steps.
func TestBigMapAddAllocs(t *testing.T) {
	m := mustBig(t, MapSize64K)
	allocs := testing.AllocsPerRun(5, func() {
		m.Reset()
		for k := uint32(0); k < initialSlotCap; k++ {
			m.Add(k)
		}
	})
	if allocs != 0 {
		t.Errorf("Add within preallocated capacity: %.1f allocs/run, want 0", allocs)
	}

	fresh := mustBig(t, MapSize64K)
	grow := testing.AllocsPerRun(1, func() {
		for k := uint32(0); k < 16*initialSlotCap; k++ {
			fresh.Add(k)
		}
	})
	// 4096 -> 8192 -> 16384 -> 32768 -> 65536: four doublings.
	if grow > 4 {
		t.Errorf("Add across 16x capacity overshoot: %.1f allocs/run, want <= 4 (geometric growth)", grow)
	}
}

// TestAddBatchAllocs: flushing batches through AddBatch must never allocate
// once slots fit in capacity.
func TestAddBatchAllocs(t *testing.T) {
	m := mustBig(t, MapSize64K)
	keys := make([]uint32, 2048)
	for i := range keys {
		keys[i] = uint32(i * 3)
	}
	allocs := testing.AllocsPerRun(5, func() {
		m.Reset()
		m.AddBatch(keys)
	})
	if allocs != 0 {
		t.Errorf("AddBatch: %.1f allocs/run, want 0", allocs)
	}
}

// TestBigMapResetClearsOnlyTouchedRegion: after a sparse execution, Reset
// must still leave the whole used region clean (the clipped clear may not
// strand stale counts above the mark).
func TestBigMapResetClearsOnlyTouchedRegion(t *testing.T) {
	m := mustBig(t, 256)
	for k := uint32(0); k < 100; k++ {
		m.Add(k)
	}
	m.Reset()
	m.Add(5) // slot 5 only; hw = 5
	m.Reset()
	for i, b := range m.coverage[:m.used] {
		if b != 0 {
			t.Fatalf("slot %d = %d after reset, want 0", i, b)
		}
	}
	if m.Hash() != hashBytes(nil) {
		t.Fatal("empty-trace hash wrong after clipped reset")
	}
}
