package core

import "fmt"

// Metric translates a stream of basic-block events produced by an
// instrumented target into coverage keys for a Map. The paper's point is
// that BigMap works with any metric that records into a bitmap; the fuzzer
// therefore takes a Metric and a Map independently and composes them.
//
// Metrics hold per-execution state (the previous block, the N-gram window,
// the calling context) and must be reset with Begin before every execution.
// A Metric is not safe for concurrent use.
type Metric interface {
	// Name identifies the metric for reporting ("edge", "ngram3", ...).
	Name() string
	// Begin resets per-execution state. Call before each test case.
	Begin()
	// Visit consumes entry into the basic block with the given compile-time
	// ID and returns the coverage key to record.
	Visit(block uint32) uint32
	// EnterCall and LeaveCall inform context-sensitive metrics about the
	// call stack. Other metrics ignore them.
	EnterCall(callsite uint32)
	LeaveCall()
}

// EdgeMetric is AFL's classic edge hit-count key: E_XY = (B_X >> 1) ^ B_Y,
// masked into the map's hash space (paper Listing 1). The shift preserves
// edge directionality and distinguishes tight self-loops.
type EdgeMetric struct {
	mask uint32
	prev uint32
}

var _ Metric = (*EdgeMetric)(nil)

// NewEdgeMetric creates an edge metric for a map of the given size (a power
// of two).
func NewEdgeMetric(mapSize int) (*EdgeMetric, error) {
	if !validSize(mapSize) {
		return nil, ErrBadMapSize
	}
	return &EdgeMetric{mask: uint32(mapSize - 1)}, nil
}

// Name returns "edge".
func (m *EdgeMetric) Name() string { return "edge" }

// Begin resets the previous-block state to the program entry sentinel.
//
//bigmap:hotpath per-exec metric reset
func (m *EdgeMetric) Begin() { m.prev = 0 }

// Visit returns (prev>>1)^cur as in AFL's instrumentation.
//
//bigmap:hotpath per-visit edge key derivation
func (m *EdgeMetric) Visit(block uint32) uint32 {
	key := (m.prev ^ block) & m.mask
	m.prev = block >> 1
	return key
}

// EnterCall is a no-op for the edge metric.
func (m *EdgeMetric) EnterCall(uint32) {}

// LeaveCall is a no-op for the edge metric.
func (m *EdgeMetric) LeaveCall() {}

// NGramMetric hashes the IDs of the last N basic blocks into the coverage
// key, yielding partial path coverage (Wang et al., RAID'19; paper §V-C uses
// N = 3). Larger N is more expressive and puts more pressure on the map.
type NGramMetric struct {
	mask   uint32
	n      int
	window []uint32
	pos    int
	filled int
}

var _ Metric = (*NGramMetric)(nil)

// NewNGramMetric creates an N-gram metric for a map of the given size. n must
// be at least 2 (n == 1 would be plain block coverage; use EdgeMetric or a
// dedicated block metric instead).
func NewNGramMetric(mapSize, n int) (*NGramMetric, error) {
	if !validSize(mapSize) {
		return nil, ErrBadMapSize
	}
	if n < 2 {
		return nil, fmt.Errorf("core: ngram size %d out of range (need >= 2)", n)
	}
	return &NGramMetric{
		mask:   uint32(mapSize - 1),
		n:      n,
		window: make([]uint32, n),
	}, nil
}

// Name returns "ngramN".
func (m *NGramMetric) Name() string { return fmt.Sprintf("ngram%d", m.n) }

// Begin clears the block window.
//
//bigmap:hotpath per-exec metric reset
func (m *NGramMetric) Begin() {
	clear(m.window)
	m.pos = 0
	m.filled = 0
}

// Visit pushes the block into the window and returns the hash of the last N
// blocks.
//
//bigmap:hotpath per-visit ngram key derivation
func (m *NGramMetric) Visit(block uint32) uint32 {
	m.window[m.pos] = block
	m.pos++
	if m.pos == m.n {
		m.pos = 0
	}
	if m.filled < m.n {
		m.filled++
	}
	h := uint64(0x9747b28c)
	// Fold the window oldest-to-newest so the key depends on order.
	for i := 0; i < m.filled; i++ {
		idx := m.pos - m.filled + i
		if idx < 0 {
			idx += m.n
		}
		h = hashCombine(h, uint64(m.window[idx]))
	}
	return uint32(h) & m.mask
}

// EnterCall is a no-op for the N-gram metric.
func (m *NGramMetric) EnterCall(uint32) {}

// LeaveCall is a no-op for the N-gram metric.
func (m *NGramMetric) LeaveCall() {}

// ContextMetric is Angora-style context-sensitive edge coverage: the AFL edge
// key XORed with a hash of the current call stack, so the same edge reached
// through different calling contexts yields distinct keys.
type ContextMetric struct {
	mask  uint32
	prev  uint32
	ctx   uint32
	stack []uint32
}

var _ Metric = (*ContextMetric)(nil)

// NewContextMetric creates a context-sensitive edge metric for a map of the
// given size.
func NewContextMetric(mapSize int) (*ContextMetric, error) {
	if !validSize(mapSize) {
		return nil, ErrBadMapSize
	}
	return &ContextMetric{mask: uint32(mapSize - 1)}, nil
}

// Name returns "ctx-edge".
func (m *ContextMetric) Name() string { return "ctx-edge" }

// Begin resets the edge state and call stack.
//
//bigmap:hotpath per-exec metric reset
func (m *ContextMetric) Begin() {
	m.prev = 0
	m.ctx = 0
	m.stack = m.stack[:0]
}

// Visit returns the context-xored edge key.
//
//bigmap:hotpath per-visit context key derivation
func (m *ContextMetric) Visit(block uint32) uint32 {
	key := (m.prev ^ block ^ m.ctx) & m.mask
	m.prev = block >> 1
	return key
}

// EnterCall folds the callsite into the context hash.
//
//bigmap:hotpath per-call context push
func (m *ContextMetric) EnterCall(callsite uint32) {
	m.stack = append(m.stack, m.ctx) //bigmap:alloc-ok call-depth stack reaches the target's max depth in the first executions, then reuses its backing
	m.ctx = uint32(hashCombine(uint64(m.ctx), uint64(callsite)))
}

// LeaveCall restores the context of the caller.
//
//bigmap:hotpath per-call context pop
func (m *ContextMetric) LeaveCall() {
	if n := len(m.stack); n > 0 {
		m.ctx = m.stack[n-1]
		m.stack = m.stack[:n-1]
	}
}
