package core

import "testing"

func TestClassifyByte(t *testing.T) {
	tests := []struct {
		name     string
		count    byte
		wantBits byte
	}{
		{"zero", 0, 0},
		{"one", 1, 1},
		{"two", 2, 2},
		{"three", 3, 4},
		{"four", 4, 8},
		{"seven", 7, 8},
		{"eight", 8, 16},
		{"fifteen", 15, 16},
		{"sixteen", 16, 32},
		{"thirtyone", 31, 32},
		{"thirtytwo", 32, 64},
		{"onetwentyseven", 127, 64},
		{"onetwentyeight", 128, 128},
		{"max", 255, 128},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClassifyByte(tt.count); got != tt.wantBits {
				t.Errorf("ClassifyByte(%d) = %#x, want %#x", tt.count, got, tt.wantBits)
			}
		})
	}
}

func TestClassifyBucketsArePowersOfTwo(t *testing.T) {
	// Each non-zero bucket must map to a single distinct bit so the virgin
	// compare can detect bucket transitions with a bitwise AND.
	seen := map[byte]bool{}
	for c := 1; c < 256; c++ {
		v := ClassifyByte(byte(c))
		if v == 0 {
			t.Fatalf("ClassifyByte(%d) = 0 for non-zero count", c)
		}
		if v&(v-1) != 0 {
			t.Fatalf("ClassifyByte(%d) = %#x is not a power of two", c, v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("expected 8 distinct buckets, got %d", len(seen))
	}
}

func TestClassifyMonotoneOverRanges(t *testing.T) {
	// Counts within the same paper bucket must classify identically.
	for _, r := range BucketRanges() {
		want := ClassifyByte(byte(r[0]))
		for c := r[0]; c <= r[1]; c++ {
			if got := ClassifyByte(byte(c)); got != want {
				t.Fatalf("count %d in range %v classified %#x, want %#x", c, r, got, want)
			}
		}
	}
}
