package core

import (
	"errors"
	"testing"
)

func TestNewAFLMapRejectsBadSizes(t *testing.T) {
	for _, size := range []int{0, -1, 3, 100, 1<<16 + 1} {
		if _, err := NewAFLMap(size); !errors.Is(err, ErrBadMapSize) {
			t.Errorf("NewAFLMap(%d) err = %v, want ErrBadMapSize", size, err)
		}
	}
}

func mustAFL(t *testing.T, size int) *AFLMap {
	t.Helper()
	m, err := NewAFLMap(size)
	if err != nil {
		t.Fatalf("NewAFLMap(%d): %v", size, err)
	}
	return m
}

func TestAFLMapAddAndSaturation(t *testing.T) {
	m := mustAFL(t, 64)
	for i := 0; i < 300; i++ {
		m.Add(5)
	}
	if got := m.Snapshot()[5]; got != 255 {
		t.Errorf("counter = %d, want saturation at 255", got)
	}
	if got := m.CountNonZero(); got != 1 {
		t.Errorf("CountNonZero = %d, want 1", got)
	}
}

func TestAFLMapResetClearsEverything(t *testing.T) {
	m := mustAFL(t, 64)
	m.Add(1)
	m.Add(63)
	m.Reset()
	if got := m.CountNonZero(); got != 0 {
		t.Errorf("CountNonZero after Reset = %d, want 0", got)
	}
}

func TestAFLMapClassify(t *testing.T) {
	m := mustAFL(t, 64)
	for i := 0; i < 5; i++ {
		m.Add(7)
	}
	m.Add(9)
	m.Classify()
	snap := m.Snapshot()
	if snap[7] != 8 {
		t.Errorf("slot 7 = %#x, want bucket 8 (count 5)", snap[7])
	}
	if snap[9] != 1 {
		t.Errorf("slot 9 = %#x, want bucket 1 (count 1)", snap[9])
	}
}

func TestAFLMapCompareVerdicts(t *testing.T) {
	m := mustAFL(t, 64)
	virgin := m.NewVirgin()

	// First sighting of an edge: new edges.
	m.Add(3)
	m.Classify()
	if v := m.CompareWith(virgin); v != VerdictNewEdges {
		t.Fatalf("first compare = %v, want new-edges", v)
	}

	// Same edge, same bucket: nothing new.
	m.Reset()
	m.Add(3)
	m.Classify()
	if v := m.CompareWith(virgin); v != VerdictNone {
		t.Fatalf("repeat compare = %v, want none", v)
	}

	// Same edge, higher bucket: new counts.
	m.Reset()
	for i := 0; i < 4; i++ {
		m.Add(3)
	}
	m.Classify()
	if v := m.CompareWith(virgin); v != VerdictNewCounts {
		t.Fatalf("bucket-change compare = %v, want new-counts", v)
	}

	// New edge while old edge also present: new edges wins.
	m.Reset()
	m.Add(3)
	m.Add(10)
	m.Classify()
	if v := m.CompareWith(virgin); v != VerdictNewEdges {
		t.Fatalf("mixed compare = %v, want new-edges", v)
	}

	if got := virgin.CountDiscovered(); got != 2 {
		t.Errorf("discovered = %d, want 2", got)
	}
}

func TestAFLMapMergedMatchesSplit(t *testing.T) {
	seq := [][]uint32{
		{1, 1, 1, 2},
		{1, 2, 3},
		{3, 3, 3, 3, 3, 3, 3, 3, 3},
		{1},
	}
	split := mustAFL(t, 64)
	merged := mustAFL(t, 64)
	vs := split.NewVirgin()
	vm := merged.NewVirgin()
	for i, keys := range seq {
		split.Reset()
		merged.Reset()
		for _, k := range keys {
			split.Add(k)
			merged.Add(k)
		}
		split.Classify()
		got1 := split.CompareWith(vs)
		got2 := merged.ClassifyAndCompare(vm)
		if got1 != got2 {
			t.Fatalf("step %d: split verdict %v != merged verdict %v", i, got1, got2)
		}
		if split.Hash() != merged.Hash() {
			t.Fatalf("step %d: classified traces diverged", i)
		}
	}
}

func TestAFLMapHashDistinguishesPaths(t *testing.T) {
	m := mustAFL(t, 64)
	m.Add(1)
	m.Classify()
	h1 := m.Hash()

	m.Reset()
	m.Add(2)
	m.Classify()
	h2 := m.Hash()

	if h1 == h2 {
		t.Error("different single-edge paths hashed equal")
	}

	m.Reset()
	m.Add(1)
	m.Classify()
	if got := m.Hash(); got != h1 {
		t.Error("identical path did not reproduce hash")
	}
}

func TestAFLMapAppendTouched(t *testing.T) {
	m := mustAFL(t, 64)
	m.Add(5)
	m.Add(60)
	m.Add(5)
	got := m.AppendTouched(nil)
	if len(got) != 2 || got[0] != 5 || got[1] != 60 {
		t.Errorf("AppendTouched = %v, want [5 60]", got)
	}
}

func TestAFLMapUsedKeysIsFullSize(t *testing.T) {
	m := mustAFL(t, 128)
	if m.UsedKeys() != 128 {
		t.Errorf("UsedKeys = %d, want 128", m.UsedKeys())
	}
	if m.Scheme() != "afl" {
		t.Errorf("Scheme = %q", m.Scheme())
	}
}
