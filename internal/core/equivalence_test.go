package core

import (
	"testing"
	"testing/quick"

	"github.com/bigmap/bigmap/internal/rng"
)

// The two schemes must be semantically interchangeable: for any sequence of
// executions (each a sequence of coverage keys), both must report identical
// verdicts, identical touched-edge counts, and identical discovered-edge
// totals. Only the layout of the statistics differs. These property tests
// pin that equivalence down with testing/quick.

const equivMapSize = 256

// runExecutions feeds the executions through a fresh map of the given scheme
// and records per-execution (verdict, nonZero) pairs plus the final
// discovered count.
func runExecutions(m Map, execs [][]uint32) (verdicts []Verdict, nonZero []int, discovered int) {
	virgin := m.NewVirgin()
	for _, keys := range execs {
		m.Reset()
		for _, k := range keys {
			m.Add(k % equivMapSize)
		}
		m.Classify()
		verdicts = append(verdicts, m.CompareWith(virgin))
		nonZero = append(nonZero, m.CountNonZero())
	}
	return verdicts, nonZero, virgin.CountDiscovered()
}

func TestSchemesEquivalentUnderQuick(t *testing.T) {
	property := func(raw [][]uint32) bool {
		afl, err := NewAFLMap(equivMapSize)
		if err != nil {
			return false
		}
		big, err := NewBigMap(equivMapSize)
		if err != nil {
			return false
		}
		v1, n1, d1 := runExecutions(afl, raw)
		v2, n2, d2 := runExecutions(big, raw)
		if d1 != d2 {
			return false
		}
		for i := range v1 {
			if v1[i] != v2[i] || n1[i] != n2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSchemesEquivalentOnDenseWorkload(t *testing.T) {
	// A longer adversarial run: many executions reusing overlapping key sets
	// with counts crossing bucket boundaries.
	src := rng.New(0xb16b00b5)
	afl, err := NewAFLMap(equivMapSize)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewBigMap(equivMapSize)
	if err != nil {
		t.Fatal(err)
	}
	va := afl.NewVirgin()
	vb := big.NewVirgin()

	for step := 0; step < 500; step++ {
		afl.Reset()
		big.Reset()
		nKeys := 1 + src.Intn(40)
		for i := 0; i < nKeys; i++ {
			key := uint32(src.Intn(equivMapSize))
			reps := 1 + src.Intn(200)
			for r := 0; r < reps; r++ {
				afl.Add(key)
				big.Add(key)
			}
		}
		afl.Classify()
		big.Classify()
		ga := afl.CompareWith(va)
		gb := big.CompareWith(vb)
		if ga != gb {
			t.Fatalf("step %d: verdicts diverged afl=%v bigmap=%v", step, ga, gb)
		}
		if afl.CountNonZero() != big.CountNonZero() {
			t.Fatalf("step %d: nonzero counts diverged", step)
		}
		if va.CountDiscovered() != vb.CountDiscovered() {
			t.Fatalf("step %d: discovered counts diverged", step)
		}
	}
}

func TestBigMapHashPaddingInvariance(t *testing.T) {
	// Property (the paper's §IV-D guarantee, generalized): within one
	// campaign, re-executing a path after other executions have grown
	// used_key must reproduce the path's original digest, because slots
	// assigned later stay zero and the hash clips at the last non-zero
	// slot. Discovery order before the path first runs MAY change the
	// digest (slot layout differs) — that is fine, digests only ever
	// compare within one map.
	property := func(path []uint32, extras []uint32) bool {
		if len(path) == 0 {
			path = []uint32{1}
		}
		m, err := NewBigMap(equivMapSize)
		if err != nil {
			return false
		}
		run := func(keys []uint32) uint64 {
			m.Reset()
			for _, k := range keys {
				m.Add(k % equivMapSize)
			}
			m.Classify()
			return m.Hash()
		}
		h1 := run(path)
		run(extras) // unrelated executions grow used_key
		h3 := run(path)
		return h1 == h3
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRepeatedCompareYieldsNone(t *testing.T) {
	// Property: once a trace has been compared into the virgin map,
	// comparing the exact same trace again must report nothing new, for
	// both schemes.
	property := func(keys []uint32) bool {
		if len(keys) == 0 {
			keys = []uint32{17}
		}
		for _, mk := range []func() (Map, error){
			func() (Map, error) { return NewAFLMap(equivMapSize) },
			func() (Map, error) { return NewBigMap(equivMapSize) },
		} {
			m, err := mk()
			if err != nil {
				return false
			}
			virgin := m.NewVirgin()
			run := func() Verdict {
				m.Reset()
				for _, k := range keys {
					m.Add(k % equivMapSize)
				}
				m.Classify()
				return m.CompareWith(virgin)
			}
			if run() != VerdictNewEdges {
				return false
			}
			if run() != VerdictNone {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestHashReproducibleAcrossRuns(t *testing.T) {
	// Property: re-executing the same key sequence after a reset reproduces
	// the same digest, for both schemes.
	property := func(keys []uint32) bool {
		for _, mk := range []func() (Map, error){
			func() (Map, error) { return NewAFLMap(equivMapSize) },
			func() (Map, error) { return NewBigMap(equivMapSize) },
		} {
			m, err := mk()
			if err != nil {
				return false
			}
			run := func() uint64 {
				m.Reset()
				for _, k := range keys {
					m.Add(k % equivMapSize)
				}
				m.Classify()
				return m.Hash()
			}
			if run() != run() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
