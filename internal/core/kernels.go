package core

import "math/bits"

// Word-level map kernels. Every per-testcase map operation shares these
// traversals: load 8 hit counters as one little-endian word, decide the
// common case (all zero, or nothing new) from the word alone, and fall back
// to the retained scalar kernels (kernels_scalar.go) only for the rare words
// that need per-byte work. Both AFLMap and BigMap call the same kernels —
// AFLMap over its whole bitmap, BigMap over its used region — so the schemes
// cannot drift apart and the differential fuzzer in kernels_test.go pins
// word and scalar variants byte-for-byte against each other.

// classifyRegion converts exact hit counts to AFL bucket bits in place,
// skipping zero words and classifying non-zero words with two halfword
// lookups per load (classifyWord).
//
//bigmap:hotpath shared classify kernel
func classifyRegion(p []byte) {
	i := 0
	for ; i+8 <= len(p); i += 8 {
		w := loadWord(p[i:])
		if w == 0 {
			continue
		}
		storeWord(p[i:], classifyWord(w))
	}
	if i < len(p) {
		classifyScalar(p[i:])
	}
}

// compareRegion applies has_new_bits to an already classified trace span:
// discovered bucket bits are cleared out of virgin, the verdict reports
// whether any edge or count bucket was new, and newEdges counts the slots
// discovered for the first time (so callers can maintain the discovered
// count without re-walking the virgin map). Two word-level early outs cover
// the hot cases: an untouched span (trace word zero) and an already known
// span (no trace bit still virgin).
//
//bigmap:hotpath shared compare kernel
func compareRegion(trace, virgin []byte) (verdict Verdict, newEdges int) {
	i := 0
	for ; i+8 <= len(trace); i += 8 {
		tw := loadWord(trace[i:])
		if tw == 0 || tw&loadWord(virgin[i:]) == 0 {
			continue
		}
		verdict, newEdges = compareScalar(trace[i:i+8], virgin[i:i+8], verdict, newEdges)
	}
	if i < len(trace) {
		verdict, newEdges = compareScalar(trace[i:], virgin[i:], verdict, newEdges)
	}
	return verdict, newEdges
}

// classifyCompareRegion is the merged single-pass classify+compare (§IV-E):
// each non-zero word is classified and stored, then compared against virgin
// with the same word-level early out as compareRegion. The per-byte fallback
// receives the already classified span, so it only performs the compare step.
//
//bigmap:hotpath shared merged kernel
func classifyCompareRegion(trace, virgin []byte) (verdict Verdict, newEdges int) {
	i := 0
	for ; i+8 <= len(trace); i += 8 {
		w := loadWord(trace[i:])
		if w == 0 {
			continue
		}
		cw := classifyWord(w)
		storeWord(trace[i:], cw)
		if cw&loadWord(virgin[i:]) == 0 {
			continue
		}
		verdict, newEdges = compareScalar(trace[i:i+8], virgin[i:i+8], verdict, newEdges)
	}
	if i < len(trace) {
		verdict, newEdges = classifyCompareScalar(trace[i:], virgin[i:], verdict, newEdges)
	}
	return verdict, newEdges
}

// maybeNewRegion is the read-only coverage prefilter behind Map.MaybeNew: it
// reports whether classifying trace and comparing it against virgin would
// yield any verdict at all, without mutating either buffer. The predicate is
// exact, not conservative — per word it computes the same classified bits the
// merged classify+compare would store and tests them against virgin, returning
// at the first word with a surviving bit. Non-discovering executions (the vast
// majority) therefore pay one read-only early-exit scan instead of the
// classify-store plus virgin-update traversal.
//
//bigmap:hotpath shared prefilter kernel
func maybeNewRegion(trace, virgin []byte) bool {
	i := 0
	for ; i+8 <= len(trace); i += 8 {
		w := loadWord(trace[i:])
		if w == 0 {
			continue
		}
		if classifyWord(w)&loadWord(virgin[i:]) != 0 {
			return true
		}
	}
	for ; i < len(trace); i++ {
		b := trace[i]
		if b != 0 && classifyLookup[b]&virgin[i] != 0 {
			return true
		}
	}
	return false
}

// countNonZeroRegion counts non-zero hit counters, skipping zero words and
// popcounting the occupancy mask of non-zero words.
//
//bigmap:hotpath shared density kernel
func countNonZeroRegion(p []byte) int {
	n := 0
	i := 0
	for ; i+8 <= len(p); i += 8 {
		w := loadWord(p[i:])
		if w == 0 {
			continue
		}
		n += countNonZeroWord(w)
	}
	for ; i < len(p); i++ {
		if p[i] != 0 {
			n++
		}
	}
	return n
}

// countNonZeroWord counts the non-zero bytes of w: fold each byte's bits
// into its bit 0 (the folds never pull bit 0 from a neighbouring byte), mask
// to one occupancy bit per byte, popcount.
func countNonZeroWord(w uint64) int {
	w |= w >> 4
	w |= w >> 2
	w |= w >> 1
	return bits.OnesCount64(w & 0x0101010101010101)
}

// appendTouchedRegion appends the index of every non-zero hit counter in p
// to dst, skipping zero words.
//
//bigmap:hotpath shared touched-slot kernel
func appendTouchedRegion(dst []uint32, p []byte) []uint32 {
	i := 0
	for ; i+8 <= len(p); i += 8 {
		if loadWord(p[i:]) == 0 {
			continue
		}
		for j := i; j < i+8; j++ {
			if p[j] != 0 {
				dst = append(dst, uint32(j)) //bigmap:alloc-ok appends into the caller's reusable scratch, which reaches steady-state capacity after warm-up
			}
		}
	}
	for ; i < len(p); i++ {
		if p[i] != 0 {
			dst = append(dst, uint32(i)) //bigmap:alloc-ok appends into the caller's reusable scratch, which reaches steady-state capacity after warm-up
		}
	}
	return dst
}

// lastNonZero returns the index of the last non-zero byte of p, or -1 if p
// is all zero. The scan is backward and word-wise: one load rejects 8 zero
// slots at a time, and the byte walk only runs inside the first non-zero
// word found.
func lastNonZero(p []byte) int {
	i := len(p)
	for i%8 != 0 {
		if p[i-1] != 0 {
			return i - 1
		}
		i--
	}
	for i >= 8 {
		if loadWord(p[i-8:]) != 0 {
			for j := i - 1; ; j-- {
				if p[j] != 0 {
					return j
				}
			}
		}
		i -= 8
	}
	return -1
}
