package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/selffuzz/seedcorpus"
)

// virginPairAt builds prev/cur virgin byte maps of the given size with cur
// strictly more discovered (monotonic), deterministic in the mutation list.
func discoverBytes(size int, prevHits, curHits map[int]byte) (prev, cur []byte) {
	prev = make([]byte, size)
	cur = make([]byte, size)
	for i := range prev {
		prev[i] = 0xFF
		cur[i] = 0xFF
	}
	for pos, b := range prevHits {
		prev[pos] &= b
		cur[pos] &= b
	}
	for pos, b := range curHits {
		cur[pos] &= b
	}
	return prev, cur
}

func TestDiffApplyRoundTrip(t *testing.T) {
	for _, size := range []int{8, 64, 4096, MapSize64K} {
		prev, cur := discoverBytes(size,
			map[int]byte{0: 0xFE, 7: 0x7F, size - 1: 0xDF},
			map[int]byte{1: 0xFB, 7: 0x3F, size / 2: 0x00, size - 2: 0xEF})
		d := DiffVirginBytes(prev, cur)
		if len(d.Words) == 0 {
			t.Fatalf("size %d: empty delta for a real change", size)
		}
		got := append([]byte(nil), prev...)
		disc, err := d.Apply(got)
		if err != nil {
			t.Fatalf("size %d: apply: %v", size, err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatalf("size %d: apply(prev) != cur", size)
		}
		// Newly discovered bytes: positions that were 0xFF in prev and are
		// not in cur.
		want := 0
		for i := range cur {
			if prev[i] == 0xFF && cur[i] != 0xFF {
				want++
			}
		}
		if disc != want {
			t.Fatalf("size %d: discovered %d, want %d", size, disc, want)
		}
		// Idempotence: applying again discovers nothing and changes nothing.
		again := append([]byte(nil), got...)
		disc2, err := d.Apply(again)
		if err != nil || disc2 != 0 || !bytes.Equal(again, got) {
			t.Fatalf("size %d: re-apply not a no-op (disc=%d err=%v)", size, disc2, err)
		}
	}
}

func TestDiffNilBaseline(t *testing.T) {
	_, cur := discoverBytes(64, nil, map[int]byte{3: 0x0F, 40: 0xFE})
	d := DiffVirginBytes(nil, cur)
	fresh := make([]byte, 64)
	for i := range fresh {
		fresh[i] = 0xFF
	}
	if _, err := d.Apply(fresh); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, cur) {
		t.Fatal("nil-baseline delta does not reconstruct cur on a fresh map")
	}
	if n := len(DiffVirginBytes(nil, fresh).Words); n != len(d.Words) {
		t.Fatalf("re-diff of reconstruction has %d words, want %d", n, len(d.Words))
	}
}

// TestDiffVirginBytesMatchesScalar pins the word-level diff walk against the
// byte-at-a-time reference on random pairs, covering nil baselines, ragged
// tails and both monotonic and arbitrary (non-virgin-shaped) byte patterns.
func TestDiffVirginBytesMatchesScalar(t *testing.T) {
	src := rng.New(91)
	for _, size := range []int{0, 1, 7, 8, 9, 63, 64, 65, 4096} {
		for trial := 0; trial < 50; trial++ {
			cur := make([]byte, size)
			prev := make([]byte, size)
			for i := range cur {
				cur[i] = byte(src.Uint64())
				prev[i] = byte(src.Uint64())
			}
			for _, p := range [][]byte{nil, prev} {
				got := DiffVirginBytes(p, cur)
				want := DiffVirginBytesScalar(p, cur)
				if got.Size != want.Size || len(got.Words) != len(want.Words) {
					t.Fatalf("size %d: diff shape %d/%d words, scalar %d/%d",
						size, got.Size, len(got.Words), want.Size, len(want.Words))
				}
				for i := range got.Words {
					if got.Words[i] != want.Words[i] {
						t.Fatalf("size %d word %d: %+v != scalar %+v",
							size, i, got.Words[i], want.Words[i])
					}
				}
			}
		}
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	prev, cur := discoverBytes(4096,
		map[int]byte{100: 0x7F},
		map[int]byte{0: 0x00, 101: 0xF7, 4095: 0x01})
	d := DiffVirginBytes(prev, cur)
	enc := EncodeVirginDelta(d)
	dec, err := DecodeVirginDelta(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Size != d.Size || len(dec.Words) != len(d.Words) {
		t.Fatalf("decoded shape %d/%d, want %d/%d", dec.Size, len(dec.Words), d.Size, len(d.Words))
	}
	for i := range d.Words {
		if dec.Words[i] != d.Words[i] {
			t.Fatalf("word %d: %+v != %+v", i, dec.Words[i], d.Words[i])
		}
	}
	if !bytes.Equal(EncodeVirginDelta(dec), enc) {
		t.Fatal("re-encode of decode is not bit-identical")
	}
}

func TestDeltaCodecEmpty(t *testing.T) {
	enc := EncodeVirginDelta(VirginDelta{Size: MapSize64K})
	dec, err := DecodeVirginDelta(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Size != MapSize64K || len(dec.Words) != 0 {
		t.Fatalf("empty delta decoded as %+v", dec)
	}
}

func TestDeltaCodecRejectsCorruption(t *testing.T) {
	prev, cur := discoverBytes(64, nil, map[int]byte{5: 0x0F, 63: 0xFE})
	enc := EncodeVirginDelta(DiffVirginBytes(prev, cur))
	// Every single-bit corruption must be rejected: the frame is CRC'd, so
	// a flipped bit either breaks the CRC or (if it lands in the CRC
	// trailer) mismatches the body.
	for i := range enc {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), enc...)
			bad[i] ^= 1 << bit
			if _, err := DecodeVirginDelta(bad); err == nil {
				t.Fatalf("byte %d bit %d: corruption accepted", i, bit)
			}
		}
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte("BMVD")},
		{"truncated", enc[:len(enc)-5]},
		{"trailing", append(append([]byte(nil), enc...), 0)},
	} {
		if _, err := DecodeVirginDelta(tc.data); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

func TestDeltaApplySizeMismatch(t *testing.T) {
	d := VirginDelta{Size: 64}
	if _, err := d.Apply(make([]byte, 32)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// TestWriteVirginDeltaCorpus regenerates the FuzzVirginDeltaCodec seed
// corpus: valid encodings at several sizes (empty, dense, sparse, tail
// word), plus truncations and near-miss frames that exercise every decoder
// rejection path. Gated behind BIGMAP_WRITE_CORPUS=1 like the other
// corpus writers (see internal/selffuzz).
func TestWriteVirginDeltaCorpus(t *testing.T) {
	if os.Getenv("BIGMAP_WRITE_CORPUS") != "1" {
		t.Skip("set BIGMAP_WRITE_CORPUS=1 to regenerate testdata/fuzz corpora")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzVirginDeltaCodec")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var seeds [][]byte
	// Valid frames.
	seeds = append(seeds, EncodeVirginDelta(VirginDelta{Size: 8}))
	_, cur := discoverBytes(64, nil, map[int]byte{0: 0x00, 9: 0x7F, 63: 0xFE})
	seeds = append(seeds, EncodeVirginDelta(DiffVirginBytes(nil, cur)))
	prev2, cur2 := discoverBytes(4096, map[int]byte{8: 0x0F}, map[int]byte{8: 0x03, 100: 0x55, 4095: 0x00})
	seeds = append(seeds, EncodeVirginDelta(DiffVirginBytes(prev2, cur2)))
	dense := make([]byte, 128)
	for i := range dense {
		dense[i] = byte(i)
	}
	seeds = append(seeds, EncodeVirginDelta(DiffVirginBytes(nil, dense)))
	// Rejection paths: bad magic, bad version, bad size, truncation.
	good := seeds[1]
	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'
	badVersion := append([]byte(nil), good...)
	badVersion[4] = 99
	seeds = append(seeds, badMagic, badVersion, good[:len(good)-3], []byte("BMVD"))
	for i, s := range seeds {
		name := "seed-" + string(rune('a'+i))
		if err := seedcorpus.WriteFile(dir, name, s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
