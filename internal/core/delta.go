package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Virgin-map deltas: the wire unit of the distributed campaign layer.
//
// A campaign-wide coverage union only ever loses virgin bits (0xFF =
// untouched; bits clear as buckets are discovered), so the state one worker
// has to ship at a sync boundary is not its whole virgin map but the 8-byte
// words that changed since its previous publish. DiffVirginBytes computes
// that word set with the same word-at-a-time walk the hot-path kernels use,
// VirginDelta.Apply AND-merges it into a union byte map (commutative,
// associative, idempotent — any interleaving of deltas from any set of
// workers converges to the serialized merge), and Encode/DecodeVirginDelta
// give the set a checksummed, corruption-rejecting wire form next to the
// checkpoint codec.
//
// The encoding is canonical: word indexes strictly ascending (gap-coded),
// no all-0xFF words (a no-op under AND has no business on the wire), exact
// trailing length, CRC32 over everything before the trailer. Canonical form
// makes the codec a fixed point — Encode(Decode(b)) == b for every accepted
// b — which FuzzVirginDeltaCodec pins.

// DeltaWord is one changed 8-byte word of a virgin byte map: the word index
// (byte offset / 8) and the new word value in the loadWord layout
// (little-endian byte packing).
type DeltaWord struct {
	Index uint32
	Word  uint64
}

// VirginDelta is a sparse update to a virgin-shaped byte map of the given
// key-space size. Words are ordered by strictly ascending Index; no Word is
// all-0xFF (such a word would be an AND no-op and is rejected on decode).
type VirginDelta struct {
	// Size is the key space of the map the delta describes (the union's
	// Size), so appliers can reject a delta aimed at a different geometry.
	Size int
	// Words holds the changed words, ascending by Index.
	Words []DeltaWord
}

// Delta codec errors. ErrDeltaCorrupt wraps every integrity failure so
// callers can distinguish damage from I/O errors, mirroring the checkpoint
// codec's ErrCorrupt.
var (
	ErrDeltaCorrupt = errors.New("core: virgin delta corrupt")
	ErrDeltaVersion = errors.New("core: unsupported virgin delta version")
)

const (
	deltaMagic   = "BMVD"
	deltaVersion = 1
)

// DiffVirginBytes returns the delta that carries cur's state relative to
// prev: every 8-byte word where the two differ, with cur's value. prev may
// be nil, meaning the all-0xFF baseline (the delta then carries the whole
// discovered state — what a worker publishes on its first sync, and what a
// resumed worker republishes to re-establish its baseline). When prev is
// non-nil it must be the same length as cur. Ragged tails (length not a
// multiple of 8) are compared as if padded with 0xFF.
//
// For monotonic inputs — prev a snapshot of the same virgin map at an
// earlier time — no emitted word can be all-0xFF, so the result is always
// encodable. Size is set to len(cur).
func DiffVirginBytes(prev, cur []byte) VirginDelta {
	d := VirginDelta{Size: len(cur)}
	n := len(cur)
	i := 0
	for ; i+8 <= n; i += 8 {
		cw := loadWord(cur[i:])
		if prev != nil && loadWord(prev[i:]) == cw {
			continue
		}
		if prev == nil && cw == ^uint64(0) {
			continue
		}
		d.Words = append(d.Words, DeltaWord{Index: uint32(i >> 3), Word: cw})
	}
	if i < n {
		cw := padWord(cur[i:n])
		pw := ^uint64(0)
		if prev != nil {
			pw = padWord(prev[i:n])
		}
		if cw != pw {
			d.Words = append(d.Words, DeltaWord{Index: uint32(i >> 3), Word: cw})
		}
	}
	return d
}

// padWord loads up to 7 trailing bytes as a word padded with 0xFF, so tail
// comparisons and merges leave the padding untouched under AND.
func padWord(p []byte) uint64 {
	w := ^uint64(0)
	for j, b := range p {
		shift := uint(j) * 8
		w = w&^(uint64(0xFF)<<shift) | uint64(b)<<shift
	}
	return w
}

// Apply AND-merges the delta into dst, a virgin byte map of exactly
// d.Size bytes, and returns how many bytes transitioned from 0xFF
// (undiscovered) to below it — the newly discovered key count, matching the
// accounting of the VirginUnion implementations. Applying the same delta
// twice is a no-op the second time.
func (d VirginDelta) Apply(dst []byte) (discovered int, err error) {
	if len(dst) != d.Size {
		return 0, fmt.Errorf("core: virgin delta for size %d applied to %d bytes", d.Size, len(dst))
	}
	nwords := (d.Size + 7) / 8
	for _, dw := range d.Words {
		if int(dw.Index) >= nwords {
			return discovered, fmt.Errorf("%w: word index %d beyond %d-byte map", ErrDeltaCorrupt, dw.Index, d.Size)
		}
		base := int(dw.Index) * 8
		end := base + 8
		if end > d.Size {
			end = d.Size
		}
		for pos := base; pos < end; pos++ {
			b := byte(dw.Word >> (uint(pos-base) * 8))
			old := dst[pos]
			merged := old & b
			if merged == old {
				continue
			}
			if old == 0xFF {
				discovered++
			}
			dst[pos] = merged
		}
	}
	return discovered, nil
}

// EncodeVirginDelta serializes a delta into its framed wire form:
//
//	"BMVD" | version | size (uvarint) | count (uvarint) |
//	count x (index gap uvarint, word uint64 LE) | CRC32-IEEE (LE, over all
//	preceding bytes)
//
// The first word's gap is its index; each subsequent gap is
// index - previousIndex - 1, so ascending order costs one byte per word in
// the common dense case. Words must already satisfy the canonical-form
// invariants (ascending indexes, no all-0xFF words) — DiffVirginBytes
// output always does.
func EncodeVirginDelta(d VirginDelta) []byte {
	buf := make([]byte, 0, len(deltaMagic)+1+10+10+len(d.Words)*9+4)
	buf = append(buf, deltaMagic...)
	buf = append(buf, deltaVersion)
	buf = binary.AppendUvarint(buf, uint64(d.Size))
	buf = binary.AppendUvarint(buf, uint64(len(d.Words)))
	prev := -1
	for _, dw := range d.Words {
		buf = binary.AppendUvarint(buf, uint64(int(dw.Index)-prev-1))
		buf = binary.LittleEndian.AppendUint64(buf, dw.Word)
		prev = int(dw.Index)
	}
	sum := crc32.ChecksumIEEE(buf)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// DecodeVirginDelta parses a framed delta, rejecting anything corrupt:
// bad magic or version, CRC mismatch, truncation or trailing bytes, an
// invalid map size, word indexes out of range or out of order, all-0xFF
// words. Accepted inputs round-trip bit for bit through EncodeVirginDelta
// (the codec fixed point, pinned by FuzzVirginDeltaCodec).
func DecodeVirginDelta(data []byte) (VirginDelta, error) {
	var d VirginDelta
	if len(data) < len(deltaMagic)+1+4 {
		return d, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrDeltaCorrupt, len(data))
	}
	if string(data[:len(deltaMagic)]) != deltaMagic {
		return d, fmt.Errorf("%w: bad magic", ErrDeltaCorrupt)
	}
	if v := data[len(deltaMagic)]; v != deltaVersion {
		return d, fmt.Errorf("%w: got %d, want %d", ErrDeltaVersion, v, deltaVersion)
	}
	body := data[: len(data)-4 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return d, fmt.Errorf("%w: CRC mismatch (got %#x, want %#x)", ErrDeltaCorrupt, got, want)
	}
	rest := body[len(deltaMagic)+1:]
	size, n := minimalUvarint(rest)
	if n <= 0 {
		return d, fmt.Errorf("%w: bad size varint", ErrDeltaCorrupt)
	}
	rest = rest[n:]
	if size > uint64(1<<31) || !validSize(int(size)) {
		return d, fmt.Errorf("%w: invalid map size %d", ErrDeltaCorrupt, size)
	}
	d.Size = int(size)
	nwords := (d.Size + 7) / 8
	count, n := minimalUvarint(rest)
	if n <= 0 {
		return d, fmt.Errorf("%w: bad word count varint", ErrDeltaCorrupt)
	}
	rest = rest[n:]
	if count > uint64(nwords) {
		return d, fmt.Errorf("%w: %d delta words for a %d-word map", ErrDeltaCorrupt, count, nwords)
	}
	if count > 0 {
		d.Words = make([]DeltaWord, 0, count)
	}
	prev := -1
	for i := uint64(0); i < count; i++ {
		gap, n := minimalUvarint(rest)
		if n <= 0 {
			return VirginDelta{}, fmt.Errorf("%w: bad word %d gap varint", ErrDeltaCorrupt, i)
		}
		rest = rest[n:]
		idx := uint64(prev+1) + gap
		if idx >= uint64(nwords) {
			return VirginDelta{}, fmt.Errorf("%w: word index %d beyond %d-word map", ErrDeltaCorrupt, idx, nwords)
		}
		if len(rest) < 8 {
			return VirginDelta{}, fmt.Errorf("%w: truncated word %d value", ErrDeltaCorrupt, i)
		}
		w := binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
		if w == ^uint64(0) {
			return VirginDelta{}, fmt.Errorf("%w: all-0xFF word %d is a merge no-op", ErrDeltaCorrupt, i)
		}
		d.Words = append(d.Words, DeltaWord{Index: uint32(idx), Word: w})
		prev = int(idx)
	}
	if len(rest) != 0 {
		return VirginDelta{}, fmt.Errorf("%w: %d trailing bytes after payload", ErrDeltaCorrupt, len(rest))
	}
	return d, nil
}

// minimalUvarint is binary.Uvarint restricted to minimal encodings:
// redundant forms (0x80 0x00 for zero, and friends) are rejected with
// n = 0. binary.AppendUvarint only emits minimal forms, so requiring them
// on decode is what makes the wire form canonical and the codec a fixed
// point — without it a padded varint would decode fine but fail to
// round-trip bit for bit.
func minimalUvarint(data []byte) (uint64, int) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0
	}
	if n > 1 && v < 1<<uint(7*(n-1)) {
		return 0, 0
	}
	return v, n
}
