package core

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters. AFL hashes its
// trace bitmap with a 32-bit MurmurHash derivative; any fast, stable digest
// serves the same purpose (rapid path comparison), so we use FNV-1a 64,
// which needs no lookup tables and is trivially verifiable in tests.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// loadWord reads 8 bytes of a bitmap as one little-endian word so the map
// operations can skip zero regions 8 slots at a time, as AFL does with its
// u64* traversals. p must have at least 8 bytes.
func loadWord(p []byte) uint64 {
	_ = p[7] // bounds-check hint
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
}

// storeWord writes w back as 8 little-endian bytes, the inverse of loadWord.
// p must have at least 8 bytes.
func storeWord(p []byte, w uint64) {
	_ = p[7] // bounds-check hint
	p[0] = byte(w)
	p[1] = byte(w >> 8)
	p[2] = byte(w >> 16)
	p[3] = byte(w >> 24)
	p[4] = byte(w >> 32)
	p[5] = byte(w >> 40)
	p[6] = byte(w >> 48)
	p[7] = byte(w >> 56)
}

// hashBytes returns the FNV-1a 64-bit digest of p.
func hashBytes(p []byte) uint64 {
	h := uint64(fnvOffset)
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// HashBytes exposes the trace digest for packages that need to hash coverage
// snapshots the same way the maps do (e.g. crash bucketing in tests).
func HashBytes(p []byte) uint64 { return hashBytes(p) }

// hashCombine mixes v into h, used by the N-gram and context metrics to fold
// block IDs together. It is a splitmix64-style finalizer step: cheap and
// well distributed.
func hashCombine(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
