package core

// AFLMap is the single-level coverage bitmap used by vanilla AFL: one byte of
// hit-count storage per coverage key. Updates are O(1) but every other map
// operation (reset, classify, compare, hash) must traverse the entire bitmap,
// which is what makes large maps expensive (paper §III-A).
type AFLMap struct {
	bits []byte
}

var _ Map = (*AFLMap)(nil)

// NewAFLMap creates a flat coverage map with the given hash-space size, which
// must be a positive power of two (e.g. MapSize64K).
func NewAFLMap(size int) (*AFLMap, error) {
	if !validSize(size) {
		return nil, ErrBadMapSize
	}
	return &AFLMap{bits: make([]byte, size)}, nil
}

// Size returns the hash space size.
func (m *AFLMap) Size() int { return len(m.bits) }

// Scheme returns "afl".
func (m *AFLMap) Scheme() string { return "afl" }

// UsedKeys returns Size(): the flat scheme has no notion of a used region,
// every operation touches all slots.
func (m *AFLMap) UsedKeys() int { return len(m.bits) }

// Add increments the hit count for key, saturating at 255 so that a wrapped
// counter cannot masquerade as "edge not hit".
func (m *AFLMap) Add(key uint32) {
	b := m.bits[key]
	if b < 255 {
		m.bits[key] = b + 1
	}
}

// Reset wipes the whole bitmap. This is the memset AFL performs before every
// test case.
func (m *AFLMap) Reset() {
	clear(m.bits)
}

// Classify converts exact hit counts to bucket bits in place, traversing the
// full map. Like AFL's classify_counts, it skips zero regions a word at a
// time: the map is sparse, so most iterations are a single 8-byte load and
// compare.
func (m *AFLMap) Classify() {
	bits := m.bits
	i := 0
	for ; i+8 <= len(bits); i += 8 {
		if loadWord(bits[i:]) == 0 {
			continue
		}
		for j := i; j < i+8; j++ {
			if b := bits[j]; b != 0 {
				bits[j] = classifyLookup[b]
			}
		}
	}
	for ; i < len(bits); i++ {
		if b := bits[i]; b != 0 {
			bits[i] = classifyLookup[b]
		}
	}
}

// CompareWith implements AFL's has_new_bits over the full map: any trace byte
// that still has bits set in the virgin map is new coverage; hitting a fully
// virgin byte (0xFF) means a brand-new edge rather than just a new bucket.
func (m *AFLMap) CompareWith(virgin *Virgin) Verdict {
	verdict := VerdictNone
	bits, vb := m.bits, virgin.bits
	i := 0
	for ; i+8 <= len(bits); i += 8 {
		if loadWord(bits[i:]) == 0 {
			continue
		}
		verdict = compareBytes(bits[i:i+8], vb[i:i+8], verdict)
	}
	if i < len(bits) {
		verdict = compareBytes(bits[i:], vb[i:], verdict)
	}
	return verdict
}

// compareBytes applies the per-byte has_new_bits step to a small span and
// folds the result into verdict.
func compareBytes(trace, virgin []byte, verdict Verdict) Verdict {
	for j, t := range trace {
		if t == 0 {
			continue
		}
		v := virgin[j]
		if t&v == 0 {
			continue
		}
		if v == 0xFF {
			verdict = VerdictNewEdges
		} else if verdict < VerdictNewCounts {
			verdict = VerdictNewCounts
		}
		virgin[j] = v &^ t
	}
	return verdict
}

// ClassifyAndCompare performs the merged classify+compare traversal (§IV-E):
// one pass over the full map instead of two.
func (m *AFLMap) ClassifyAndCompare(virgin *Virgin) Verdict {
	verdict := VerdictNone
	bits, vb := m.bits, virgin.bits
	i := 0
	for ; i+8 <= len(bits); i += 8 {
		if loadWord(bits[i:]) == 0 {
			continue
		}
		verdict = classifyCompareBytes(bits[i:i+8], vb[i:i+8], verdict)
	}
	if i < len(bits) {
		verdict = classifyCompareBytes(bits[i:], vb[i:], verdict)
	}
	return verdict
}

// classifyCompareBytes classifies a small span in place and folds its
// has_new_bits result into verdict.
func classifyCompareBytes(trace, virgin []byte, verdict Verdict) Verdict {
	for j, b := range trace {
		if b == 0 {
			continue
		}
		t := classifyLookup[b]
		trace[j] = t
		v := virgin[j]
		if t&v == 0 {
			continue
		}
		if v == 0xFF {
			verdict = VerdictNewEdges
		} else if verdict < VerdictNewCounts {
			verdict = VerdictNewCounts
		}
		virgin[j] = v &^ t
	}
	return verdict
}

// Hash digests the full bitmap.
func (m *AFLMap) Hash() uint64 {
	return hashBytes(m.bits)
}

// CountNonZero counts keys with non-zero hit counts (AFL's count_bytes),
// skipping zero words.
func (m *AFLMap) CountNonZero() int {
	bits := m.bits
	n := 0
	i := 0
	for ; i+8 <= len(bits); i += 8 {
		if loadWord(bits[i:]) == 0 {
			continue
		}
		for j := i; j < i+8; j++ {
			if bits[j] != 0 {
				n++
			}
		}
	}
	for ; i < len(bits); i++ {
		if bits[i] != 0 {
			n++
		}
	}
	return n
}

// AppendTouched appends the raw keys with non-zero hit counts.
func (m *AFLMap) AppendTouched(dst []uint32) []uint32 {
	bits := m.bits
	i := 0
	for ; i+8 <= len(bits); i += 8 {
		if loadWord(bits[i:]) == 0 {
			continue
		}
		for j := i; j < i+8; j++ {
			if bits[j] != 0 {
				dst = append(dst, uint32(j))
			}
		}
	}
	for ; i < len(bits); i++ {
		if bits[i] != 0 {
			dst = append(dst, uint32(i))
		}
	}
	return dst
}

// NewVirgin allocates a full-size virgin map.
func (m *AFLMap) NewVirgin() *Virgin {
	return newVirgin(len(m.bits))
}

// Snapshot returns a copy of the raw bitmap, for tests and debugging.
func (m *AFLMap) Snapshot() []byte {
	out := make([]byte, len(m.bits))
	copy(out, m.bits)
	return out
}
