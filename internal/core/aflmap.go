package core

import "github.com/bigmap/bigmap/internal/telemetry"

// AFLMap is the single-level coverage bitmap used by vanilla AFL: one byte of
// hit-count storage per coverage key. Updates are O(1) but every other map
// operation (reset, classify, compare, hash) must traverse the entire bitmap,
// which is what makes large maps expensive (paper §III-A). The traversals use
// the shared word-level kernels (kernels.go), as AFL's u64* loops do, so the
// per-slot constant is as small as the scheme allows — the cost that remains
// is the full-map iteration itself, which is the paper's point.
type AFLMap struct {
	bits []byte

	// tel holds the optional per-operation telemetry histograms; the zero
	// value is the disabled fast path (nil checks, no clock reads).
	tel telemetry.MapOps
}

var (
	_ Map            = (*AFLMap)(nil)
	_ Instrumented   = (*AFLMap)(nil)
	_ CoverageMerger = (*AFLMap)(nil)
)

// Instrument installs telemetry histograms for the per-testcase operations.
func (m *AFLMap) Instrument(ops telemetry.MapOps) { m.tel = ops }

// NewAFLMap creates a flat coverage map with the given hash-space size, which
// must be a positive power of two (e.g. MapSize64K).
func NewAFLMap(size int) (*AFLMap, error) {
	if !validSize(size) {
		return nil, ErrBadMapSize
	}
	return &AFLMap{bits: make([]byte, size)}, nil
}

// Size returns the hash space size.
func (m *AFLMap) Size() int { return len(m.bits) }

// Scheme returns "afl".
func (m *AFLMap) Scheme() string { return "afl" }

// UsedKeys returns Size(): the flat scheme has no notion of a used region,
// every operation touches all slots.
func (m *AFLMap) UsedKeys() int { return len(m.bits) }

// Add increments the hit count for key, saturating at 255 so that a wrapped
// counter cannot masquerade as "edge not hit".
//
//bigmap:hotpath per-visit map update
func (m *AFLMap) Add(key uint32) {
	b := m.bits[key]
	if b < 255 {
		m.bits[key] = b + 1
	}
}

// AddBatch records a whole buffered trace in one call — the flush half of the
// batched tracing pipeline. One interface call per execution replaces one
// virtual Add per edge event; the loop body is the same saturating increment.
//
//bigmap:hotpath per-flush batched map update
func (m *AFLMap) AddBatch(keys []uint32) {
	bits := m.bits
	for _, key := range keys {
		b := bits[key]
		if b < 255 {
			bits[key] = b + 1
		}
	}
}

// Reset wipes the whole bitmap. This is the memset AFL performs before every
// test case.
//
//bigmap:hotpath per-exec map clear
func (m *AFLMap) Reset() {
	t0 := m.tel.Reset.Start()
	clear(m.bits)
	m.tel.Reset.Done(t0)
}

// Classify converts exact hit counts to bucket bits in place, traversing the
// full map. Like AFL++'s classify_counts, it skips zero words and classifies
// non-zero words with halfword lookups.
//
//bigmap:hotpath per-exec bucket classification
func (m *AFLMap) Classify() {
	t0 := m.tel.Classify.Start()
	classifyRegion(m.bits)
	m.tel.Classify.Done(t0)
}

// CompareWith implements AFL's has_new_bits over the full map: any trace byte
// that still has bits set in the virgin map is new coverage; hitting a fully
// virgin byte (0xFF) means a brand-new edge rather than just a new bucket.
//
//bigmap:hotpath per-exec virgin comparison
func (m *AFLMap) CompareWith(virgin *Virgin) Verdict {
	t0 := m.tel.Compare.Start()
	verdict, newEdges := compareRegion(m.bits, virgin.bits)
	virgin.discovered += newEdges
	m.tel.Compare.Done(t0)
	return verdict
}

// ClassifyAndCompare performs the merged classify+compare traversal (§IV-E):
// one pass over the full map instead of two.
//
//bigmap:hotpath per-exec merged classify+compare
func (m *AFLMap) ClassifyAndCompare(virgin *Virgin) Verdict {
	t0 := m.tel.ClassifyCompare.Start()
	verdict, newEdges := classifyCompareRegion(m.bits, virgin.bits)
	virgin.discovered += newEdges
	m.tel.ClassifyCompare.Done(t0)
	return verdict
}

// MaybeNew is the read-only selective-tracing prefilter over the full map:
// true iff ClassifyAndCompare(virgin) would return a non-VerdictNone verdict.
// Neither the trace nor the virgin map is modified.
//
//bigmap:hotpath per-exec selective-trace prefilter
func (m *AFLMap) MaybeNew(virgin *Virgin) bool {
	t0 := m.tel.MaybeNew.Start()
	hit := maybeNewRegion(m.bits, virgin.bits)
	m.tel.MaybeNew.Done(t0)
	return hit
}

// Hash digests the full bitmap.
//
//bigmap:hotpath per-discovery trace digest
func (m *AFLMap) Hash() uint64 {
	t0 := m.tel.Hash.Start()
	h := hashBytes(m.bits)
	m.tel.Hash.Done(t0)
	return h
}

// CountNonZero counts keys with non-zero hit counts (AFL's count_bytes),
// skipping zero words.
func (m *AFLMap) CountNonZero() int {
	return countNonZeroRegion(m.bits)
}

// AppendTouched appends the raw keys with non-zero hit counts.
func (m *AFLMap) AppendTouched(dst []uint32) []uint32 {
	return appendTouchedRegion(dst, m.bits)
}

// NewVirgin allocates a full-size virgin map.
func (m *AFLMap) NewVirgin() *Virgin {
	return newVirgin(len(m.bits))
}

// MergeVirginInto folds an instance virgin map into a campaign-level union.
// The flat scheme's virgin is already indexed by raw key, so no translation
// table is needed.
func (m *AFLMap) MergeVirginInto(u VirginUnion, v *Virgin) {
	u.MergeVirgin(v, nil)
}

// Snapshot returns a copy of the raw bitmap, for tests and debugging.
func (m *AFLMap) Snapshot() []byte {
	out := make([]byte, len(m.bits))
	copy(out, m.bits)
	return out
}
