package core

import (
	"errors"
	"fmt"

	"github.com/bigmap/bigmap/internal/telemetry"
)

// Common coverage map sizes from the paper's evaluation. Sizes must be powers
// of two so coverage keys can be masked into range, matching AFL.
const (
	MapSize64K  = 1 << 16
	MapSize256K = 1 << 18
	MapSize2M   = 1 << 21
	MapSize8M   = 1 << 23
)

// ErrBadMapSize is returned when a requested map size is not a positive power
// of two.
var ErrBadMapSize = errors.New("core: map size must be a positive power of two")

// Verdict is the result of comparing a classified trace against a virgin map,
// with AFL's has_new_bits semantics. The zero value means "nothing new".
type Verdict int

const (
	// VerdictNone means the trace revealed no new coverage.
	VerdictNone Verdict = 0
	// VerdictNewCounts means a previously seen edge hit a new count bucket.
	VerdictNewCounts Verdict = 1
	// VerdictNewEdges means at least one never-before-seen edge was hit.
	VerdictNewEdges Verdict = 2
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictNone:
		return "none"
	case VerdictNewCounts:
		return "new-counts"
	case VerdictNewEdges:
		return "new-edges"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Map records per-testcase coverage statistics keyed by a coverage metric and
// exposes the per-testcase operations the paper analyses: reset, update
// (Add), classify, compare, and hash. Implementations are not safe for
// concurrent use; each fuzzing instance owns its maps.
type Map interface {
	// Size returns the hash space H: the number of distinct coverage keys
	// the map accepts. Keys passed to Add must be < Size.
	Size() int

	// Add increments the hit count associated with key, saturating at 255.
	// This is the instrumentation-side "bitmap update" operation.
	Add(key uint32)

	// AddBatch applies Add to every key in order. Semantically it is
	// exactly a loop of Adds (same saturation, same first-sight slot
	// assignment order for the two-level scheme); it exists so a batched
	// tracer can flush a whole buffered trace through one interface call
	// instead of paying a virtual Add per edge event.
	AddBatch(keys []uint32)

	// Reset clears all hit counts recorded since the previous Reset. The
	// flat scheme must wipe the whole bitmap; the two-level scheme only
	// wipes the used region.
	Reset()

	// Classify converts exact hit counts into AFL bucket bits in place.
	Classify()

	// CompareWith compares the (already classified) trace against virgin,
	// clears the discovered bits out of virgin, and reports whether the
	// trace contained new edges or new count buckets. virgin must have
	// been created by NewVirgin on a map of identical scheme and size.
	CompareWith(virgin *Virgin) Verdict

	// ClassifyAndCompare performs Classify and CompareWith in a single
	// traversal, the merged optimization from the paper's §IV-E.
	ClassifyAndCompare(virgin *Virgin) Verdict

	// MaybeNew reports whether ClassifyAndCompare(virgin) would return a
	// non-VerdictNone result, without mutating the trace or the virgin map.
	// The predicate is exact (true iff the merged traversal would find a
	// new edge or count bucket), which makes it a sound selective-tracing
	// filter: callers may skip classify+compare entirely when it is false
	// and run the full traversal on the recorded trace when it is true.
	MaybeNew(virgin *Virgin) bool

	// Hash returns a hash of the classified trace, used to deduplicate
	// execution paths. For the two-level scheme the hash covers the slots
	// up to the last non-zero value so that it is invariant under
	// used_key growth (§IV-D).
	Hash() uint64

	// CountNonZero returns the number of keys with a non-zero hit count in
	// the current trace (AFL's count_bytes over trace_bits).
	CountNonZero() int

	// AppendTouched appends the identities of all slots with non-zero hit
	// counts to dst and returns the extended slice. Identities are stable
	// for the lifetime of the map (raw keys for the flat scheme, dense
	// slot indices for the two-level scheme) and are used by the queue
	// culling logic to track which entry "owns" each piece of coverage.
	AppendTouched(dst []uint32) []uint32

	// NewVirgin allocates a global-coverage companion map compatible with
	// this map's scheme and size.
	NewVirgin() *Virgin

	// UsedKeys reports how many distinct slots the map has ever assigned:
	// Size() for the flat scheme, used_key for the two-level scheme.
	UsedKeys() int

	// Scheme names the implementation ("afl" or "bigmap") for reporting.
	Scheme() string
}

// Instrumented is the optional interface of maps that can time their
// per-testcase operations into telemetry histograms. Both schemes implement
// it; the fuzzer instruments its map when a telemetry registry is configured.
// Instrumenting with the zero MapOps (all-nil histograms) is the disabled
// state and costs two nil checks per operation — no clock reads.
type Instrumented interface {
	// Instrument installs the per-operation histograms. Call before fuzzing
	// starts; maps are single-owner, so this is not synchronized.
	Instrument(ops telemetry.MapOps)
}

// Saturable is the optional interface of maps whose dense slot space can
// fill up (BigMap with a bounded slot region). Saturation is an explicit,
// observable state: keys seen after the last slot is assigned are counted and
// dropped, never silently aliased onto existing slots.
type Saturable interface {
	// Saturated reports whether every dense slot has been assigned.
	Saturated() bool
	// DroppedKeys counts first-sight keys that could not be assigned a slot.
	DroppedKeys() uint64
}

// Virgin is the global coverage state a trace is compared against. AFL keeps
// three of these per fuzzer: overall coverage, crash coverage and hang
// coverage. Bytes start at 0xFF (every bucket bit still undiscovered) and
// discovered bucket bits are cleared by Map.CompareWith, which also keeps the
// discovered-slot count current so stats polling never re-walks the map.
type Virgin struct {
	bits       []byte
	discovered int
}

func newVirgin(n int) *Virgin {
	v := &Virgin{bits: make([]byte, n)}
	for i := range v.bits {
		v.bits[i] = 0xFF
	}
	return v
}

// CountDiscovered returns the number of slots with at least one discovered
// bucket bit — the fuzzer's "edges covered so far" statistic. The count is
// maintained incrementally on the has_new_bits path, so this is O(1) and
// safe to poll every stats or checkpoint tick.
func (v *Virgin) CountDiscovered() int { return v.discovered }

// recountDiscovered re-derives the discovered count from the raw bits — the
// walk CountDiscovered used to perform. It runs only when the bits are
// replaced wholesale (SetBits) and in tests cross-checking the incremental
// counter. Undiscovered regions are all-0xFF words, skipped 8 at a time.
func (v *Virgin) recountDiscovered() int {
	bits := v.bits
	n := 0
	i := 0
	for ; i+8 <= len(bits); i += 8 {
		if loadWord(bits[i:]) == ^uint64(0) {
			continue
		}
		for j := i; j < i+8; j++ {
			if bits[j] != 0xFF {
				n++
			}
		}
	}
	for ; i < len(bits); i++ {
		if bits[i] != 0xFF {
			n++
		}
	}
	return n
}

// Len returns the virgin map's capacity in slots.
func (v *Virgin) Len() int { return len(v.bits) }

// Suppress marks a slot as fully discovered (all bucket bits cleared), so it
// can never again contribute to a has_new_bits verdict. The calibration stage
// uses this to exclude unstable edges from coverage feedback: an edge that
// appears only on some executions of the same input would otherwise keep
// producing spurious "new coverage" and flood the queue.
func (v *Virgin) Suppress(slot uint32) {
	if int(slot) >= len(v.bits) {
		return
	}
	if v.bits[slot] == 0xFF {
		v.discovered++
	}
	v.bits[slot] = 0
}

// Bits returns a copy of the raw virgin bytes, for checkpointing.
func (v *Virgin) Bits() []byte {
	out := make([]byte, len(v.bits))
	copy(out, v.bits)
	return out
}

// SetBits replaces the virgin state with a checkpointed snapshot. The length
// must match the map geometry the virgin was created for.
func (v *Virgin) SetBits(bits []byte) error {
	if len(bits) != len(v.bits) {
		return fmt.Errorf("core: virgin snapshot is %d slots, map has %d", len(bits), len(v.bits))
	}
	copy(v.bits, bits)
	v.discovered = v.recountDiscovered()
	return nil
}

func validSize(size int) bool {
	return size > 0 && size&(size-1) == 0
}
