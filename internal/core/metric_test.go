package core

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEdgeMetricDirectionality(t *testing.T) {
	m, err := NewEdgeMetric(MapSize64K)
	if err != nil {
		t.Fatal(err)
	}
	// E_XY must differ from E_YX (paper §II-A2): the >>1 shift breaks the
	// XOR symmetry.
	const bx, by = 0x1234, 0x4321

	m.Begin()
	m.Visit(bx)
	exy := m.Visit(by)

	m.Begin()
	m.Visit(by)
	eyx := m.Visit(bx)

	if exy == eyx {
		t.Errorf("E_XY == E_YX == %#x; directionality lost", exy)
	}
}

func TestEdgeMetricDistinguishesSelfLoops(t *testing.T) {
	m, err := NewEdgeMetric(MapSize64K)
	if err != nil {
		t.Fatal(err)
	}
	const bx, by = 0x1111, 0x2222

	m.Begin()
	m.Visit(bx)
	exx := m.Visit(bx)

	m.Begin()
	m.Visit(by)
	eyy := m.Visit(by)

	if exx == eyy {
		t.Errorf("E_XX == E_YY == %#x; self-loops indistinct", exx)
	}
	if exx == 0 || eyy == 0 {
		t.Error("self-loop edge key is 0; would alias the entry edge")
	}
}

func TestEdgeMetricMasksIntoMap(t *testing.T) {
	const size = 256
	m, err := NewEdgeMetric(size)
	if err != nil {
		t.Fatal(err)
	}
	property := func(blocks []uint32) bool {
		m.Begin()
		for _, b := range blocks {
			if m.Visit(b) >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, nil); err != nil {
		t.Error(err)
	}
}

func TestEdgeMetricDeterministicPerPath(t *testing.T) {
	m, err := NewEdgeMetric(MapSize64K)
	if err != nil {
		t.Fatal(err)
	}
	path := []uint32{5, 9, 5, 5, 100, 9}
	run := func() []uint32 {
		m.Begin()
		out := make([]uint32, 0, len(path))
		for _, b := range path {
			out = append(out, m.Visit(b))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("key %d diverged across runs: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestNGramMetricRejectsBadArgs(t *testing.T) {
	if _, err := NewNGramMetric(100, 3); !errors.Is(err, ErrBadMapSize) {
		t.Errorf("bad size err = %v", err)
	}
	if _, err := NewNGramMetric(256, 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestNGramMetricWindowOrderMatters(t *testing.T) {
	m, err := NewNGramMetric(MapSize64K, 3)
	if err != nil {
		t.Fatal(err)
	}

	keyOf := func(blocks ...uint32) uint32 {
		m.Begin()
		var last uint32
		for _, b := range blocks {
			last = m.Visit(b)
		}
		return last
	}

	if keyOf(1, 2, 3) == keyOf(3, 2, 1) {
		t.Error("ngram key ignores block order")
	}
	if keyOf(1, 2, 3) == keyOf(1, 2, 4) {
		t.Error("ngram key ignores final block")
	}
	// The window is bounded at N: only the last 3 blocks matter.
	if keyOf(9, 1, 2, 3) != keyOf(7, 1, 2, 3) {
		t.Error("ngram key depends on blocks older than the window")
	}
}

func TestNGramMetricDistinguishesMoreThanEdges(t *testing.T) {
	// Two different 3-block paths ending in the same edge must produce
	// different ngram keys while producing the same AFL edge key.
	ng, err := NewNGramMetric(MapSize64K, 3)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := NewEdgeMetric(MapSize64K)
	if err != nil {
		t.Fatal(err)
	}
	lastKey := func(m Metric, blocks ...uint32) uint32 {
		m.Begin()
		var last uint32
		for _, b := range blocks {
			last = m.Visit(b)
		}
		return last
	}
	if lastKey(ed, 10, 2, 3) != lastKey(ed, 11, 2, 3) {
		t.Skip("edge keys differ already; pick different block IDs")
	}
	if lastKey(ng, 10, 2, 3) == lastKey(ng, 11, 2, 3) {
		t.Error("ngram failed to distinguish prefix paths")
	}
}

func TestContextMetricDistinguishesCallingContexts(t *testing.T) {
	m, err := NewContextMetric(MapSize64K)
	if err != nil {
		t.Fatal(err)
	}

	// Same edge (5 -> 6) visited under two different callsites.
	m.Begin()
	m.EnterCall(111)
	m.Visit(5)
	k1 := m.Visit(6)
	m.LeaveCall()

	m.Begin()
	m.EnterCall(222)
	m.Visit(5)
	k2 := m.Visit(6)
	m.LeaveCall()

	if k1 == k2 {
		t.Error("context metric conflated different calling contexts")
	}
}

func TestContextMetricLeaveRestoresContext(t *testing.T) {
	m, err := NewContextMetric(MapSize64K)
	if err != nil {
		t.Fatal(err)
	}

	record := func(withNestedCall bool) uint32 {
		m.Begin()
		m.Visit(1)
		if withNestedCall {
			m.EnterCall(99)
			m.Visit(50)
			m.LeaveCall()
		}
		// Restore edge chain state to an identical point.
		m.Visit(1)
		return m.Visit(2)
	}

	if record(false) != record(true) {
		t.Error("LeaveCall did not restore the caller's context")
	}
}

func TestContextMetricLeaveOnEmptyStackIsSafe(t *testing.T) {
	m, err := NewContextMetric(MapSize64K)
	if err != nil {
		t.Fatal(err)
	}
	m.Begin()
	m.LeaveCall() // must not panic
	m.Visit(3)
}

func TestMetricNames(t *testing.T) {
	ed, _ := NewEdgeMetric(256)
	ng, _ := NewNGramMetric(256, 4)
	cx, _ := NewContextMetric(256)
	if ed.Name() != "edge" {
		t.Errorf("edge name = %q", ed.Name())
	}
	if ng.Name() != "ngram4" {
		t.Errorf("ngram name = %q", ng.Name())
	}
	if cx.Name() != "ctx-edge" {
		t.Errorf("ctx name = %q", cx.Name())
	}
}
