package core

// Scalar reference kernels: the straightforward byte-at-a-time definitions
// of classify, has_new_bits, and the merged classify+compare. The word-level
// kernels in kernels.go fall back to these for unaligned tails and for the
// rare words that need per-byte work, and the differential fuzzer in
// kernels_test.go requires the word kernels to be byte-for-byte equivalent
// to these on arbitrary trace/virgin pairs. They are the semantic ground
// truth; any future kernel (SIMD, batched, whatever) must match them.

// classifyScalar converts exact hit counts to AFL bucket bits in place,
// one byte at a time.
func classifyScalar(p []byte) {
	for i, b := range p {
		if b != 0 {
			p[i] = classifyLookup[b]
		}
	}
}

// compareScalar applies the per-byte has_new_bits step to a classified span
// and folds the result into verdict, clearing discovered bits out of virgin.
// newEdges accumulates the number of virgin slots discovered for the first
// time (byte transitions from 0xFF), which is how Virgin maintains its
// discovered-edge count incrementally instead of re-walking the map.
func compareScalar(trace, virgin []byte, verdict Verdict, newEdges int) (Verdict, int) {
	for j, t := range trace {
		if t == 0 {
			continue
		}
		v := virgin[j]
		if t&v == 0 {
			continue
		}
		if v == 0xFF {
			verdict = VerdictNewEdges
			newEdges++
		} else if verdict < VerdictNewCounts {
			verdict = VerdictNewCounts
		}
		virgin[j] = v &^ t
	}
	return verdict, newEdges
}

// classifyCompareScalar classifies a span in place and folds its
// has_new_bits result into verdict, one byte at a time. newEdges accumulates
// first-time slot discoveries, as in compareScalar.
func classifyCompareScalar(trace, virgin []byte, verdict Verdict, newEdges int) (Verdict, int) {
	for j, b := range trace {
		if b == 0 {
			continue
		}
		t := classifyLookup[b]
		trace[j] = t
		v := virgin[j]
		if t&v == 0 {
			continue
		}
		if v == 0xFF {
			verdict = VerdictNewEdges
			newEdges++
		} else if verdict < VerdictNewCounts {
			verdict = VerdictNewCounts
		}
		virgin[j] = v &^ t
	}
	return verdict, newEdges
}

// maybeNewScalar is the byte-at-a-time reference for the read-only coverage
// prefilter: true iff classifying trace and comparing against virgin would
// produce a non-VerdictNone result. Neither buffer is mutated.
func maybeNewScalar(trace, virgin []byte) bool {
	for i, b := range trace {
		if b == 0 {
			continue
		}
		if classifyLookup[b]&virgin[i] != 0 {
			return true
		}
	}
	return false
}

// appendTouchedScalar is the byte-at-a-time touched-index reference.
func appendTouchedScalar(dst []uint32, p []byte) []uint32 {
	for i, b := range p {
		if b != 0 {
			dst = append(dst, uint32(i))
		}
	}
	return dst
}

// countNonZeroScalar is the byte-at-a-time CountNonZero reference.
func countNonZeroScalar(p []byte) int {
	n := 0
	for _, b := range p {
		if b != 0 {
			n++
		}
	}
	return n
}

// DiffVirginBytesScalar is the byte-at-a-time DiffVirginBytes reference: it
// assembles every 8-byte word one byte at a time (missing prev = 0xFF
// baseline, ragged tails padded with 0xFF) and emits the word iff any byte
// differs. The differential tests require the word-level walk to produce an
// identical delta on arbitrary prev/cur pairs.
func DiffVirginBytesScalar(prev, cur []byte) VirginDelta {
	d := VirginDelta{Size: len(cur)}
	nwords := (len(cur) + 7) / 8
	for wi := 0; wi < nwords; wi++ {
		var cw uint64
		differ := false
		for j := 0; j < 8; j++ {
			pos := wi*8 + j
			cb, pb := byte(0xFF), byte(0xFF)
			if pos < len(cur) {
				cb = cur[pos]
				if prev != nil {
					pb = prev[pos]
				}
			}
			cw |= uint64(cb) << (uint(j) * 8)
			differ = differ || cb != pb
		}
		if differ {
			d.Words = append(d.Words, DeltaWord{Index: uint32(wi), Word: cw})
		}
	}
	return d
}

// lastNonZeroScalar is the byte-at-a-time backward-scan reference.
func lastNonZeroScalar(p []byte) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}
