package core

import "testing"

// FuzzSchemeEquivalence drives both map schemes with an arbitrary byte
// string interpreted as a key sequence (with embedded "reset" markers) and
// asserts they never diverge on verdicts, counts, or discovered totals.
// Run with `go test -fuzz FuzzSchemeEquivalence ./internal/core`.
func FuzzSchemeEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 0xFF, 4, 5})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Add(make([]byte, 300))

	f.Fuzz(func(t *testing.T, script []byte) {
		const size = 256
		afl, err := NewAFLMap(size)
		if err != nil {
			t.Fatal(err)
		}
		big, err := NewBigMap(size)
		if err != nil {
			t.Fatal(err)
		}
		va, vb := afl.NewVirgin(), big.NewVirgin()

		flush := func() {
			afl.Classify()
			big.Classify()
			ga := afl.CompareWith(va)
			gb := big.CompareWith(vb)
			if ga != gb {
				t.Fatalf("verdicts diverged: %v vs %v", ga, gb)
			}
			if afl.CountNonZero() != big.CountNonZero() {
				t.Fatalf("nonzero diverged: %d vs %d", afl.CountNonZero(), big.CountNonZero())
			}
			afl.Reset()
			big.Reset()
		}

		for _, b := range script {
			if b == 0xFF {
				// Execution boundary: classify, compare, reset.
				flush()
				continue
			}
			afl.Add(uint32(b))
			big.Add(uint32(b))
		}
		flush()
		if va.CountDiscovered() != vb.CountDiscovered() {
			t.Fatalf("discovered diverged: %d vs %d", va.CountDiscovered(), vb.CountDiscovered())
		}
	})
}

// FuzzBigMapHashStability asserts the §IV-D digest property under arbitrary
// interleavings: a path's digest never changes once the path has run,
// regardless of what other executions do to used_key afterwards.
func FuzzBigMapHashStability(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{9, 8})
	f.Add([]byte{}, []byte{1})
	f.Fuzz(func(t *testing.T, path, noise []byte) {
		if len(path) == 0 {
			path = []byte{7}
		}
		m, err := NewBigMap(256)
		if err != nil {
			t.Fatal(err)
		}
		run := func(keys []byte) uint64 {
			m.Reset()
			for _, k := range keys {
				m.Add(uint32(k))
			}
			m.Classify()
			return m.Hash()
		}
		h1 := run(path)
		run(noise)
		if run(path) != h1 {
			t.Fatal("digest changed after unrelated executions")
		}
	})
}
