package core

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Campaign-level union coverage. Each parallel fuzzing instance owns a
// private virgin map, so "edges the campaign as a whole has discovered" used
// to be unanswerable without stopping every instance. A VirginUnion is the
// shared answer: a virgin-shaped map indexed by raw coverage key that
// instances merge their private virgin state into at sync boundaries.
//
// Virgin bytes only ever lose bits (0xFF = untouched, bits clear as buckets
// are discovered), so the union of instance coverage is the bitwise AND of
// their virgin bytes. AND is commutative, associative and idempotent, which
// is what makes the lock-free implementation below deterministic: any
// interleaving of merges, including torn ones that retry, converges to the
// same final bytes as a serialized merge.
//
// The union is keyed by raw coverage key rather than dense slot because
// BigMap instances assign dense slots in private first-sight order — slot 7
// on instance A and slot 7 on instance B are usually different edges. Flat
// (AFL) maps pass slotKeys == nil and merge word-at-a-time; BigMap passes its
// slot-to-key table and each slot's byte is routed to its raw key.
type VirginUnion interface {
	// MergeVirgin folds one instance's virgin map into the union. slotKeys
	// is nil for the flat scheme (v is indexed by raw key) or the dense
	// slot-to-key table for the two-level scheme (v is indexed by slot).
	MergeVirgin(v *Virgin, slotKeys []uint32)

	// CountDiscovered returns the number of keys with at least one
	// discovered bucket bit across all merged instances.
	CountDiscovered() int

	// Snapshot returns a copy of the union's virgin bytes, indexed by raw
	// coverage key. Concurrent merges may land between words; each 8-byte
	// word is internally consistent.
	Snapshot() []byte

	// Size returns the key space the union covers.
	Size() int
}

// CoverageMerger is the optional map interface that routes an instance's
// virgin state into a VirginUnion with the right indexing: the flat scheme
// merges by raw key, the two-level scheme translates dense slots through its
// slot-to-key table. Both schemes implement it.
type CoverageMerger interface {
	// MergeVirginInto folds v (a virgin created by this map's NewVirgin)
	// into u. The map itself is read-only during the call.
	MergeVirginInto(u VirginUnion, v *Virgin)
}

// AtomicVirginUnion is the lock-free sharded implementation: the byte space
// is packed into uint64 words merged with a compare-and-swap AND loop, so
// concurrent instances never serialize on a lock. Words are grouped into
// shards only for bookkeeping — each shard keeps its own discovered counter,
// so the hot CAS path touches one counter cache line per shard rather than a
// single global contention point.
//
// The zero-cost determinism argument: a successful CAS replaces old with
// old&mask, and AND-merges commute, so the final word value is independent of
// merge order; a byte's 0xFF->discovered transition happens in exactly one
// successful CAS, so the per-shard counters are exact, not approximate.
type AtomicVirginUnion struct {
	// words holds the virgin bytes packed 8 per uint64 (little-endian, the
	// loadWord layout). guarded by atomics: every access outside
	// construction goes through sync/atomic Load/CompareAndSwap.
	words []uint64

	// disc counts discovered keys per shard. guarded by atomics: the
	// atomic.Int64 methods are the only access path.
	disc []atomic.Int64

	size          int
	wordsPerShard int
}

var _ VirginUnion = (*AtomicVirginUnion)(nil)

// NewAtomicVirginUnion creates a lock-free union over a key space of the
// given size (the map's Size for flat schemes, the slot capacity's key space
// for two-level schemes) with the given shard count. shards is clamped to
// [1, number of words].
func NewAtomicVirginUnion(size, shards int) (*AtomicVirginUnion, error) {
	if !validSize(size) {
		return nil, ErrBadMapSize
	}
	nwords := (size + 7) / 8
	if shards < 1 {
		shards = 1
	}
	if shards > nwords {
		shards = nwords
	}
	u := &AtomicVirginUnion{
		words:         make([]uint64, nwords),
		disc:          make([]atomic.Int64, shards),
		size:          size,
		wordsPerShard: (nwords + shards - 1) / shards,
	}
	for i := range u.words {
		u.words[i] = ^uint64(0)
	}
	return u, nil
}

// Size returns the key space the union covers.
func (u *AtomicVirginUnion) Size() int { return u.size }

// Shards returns the shard count.
func (u *AtomicVirginUnion) Shards() int { return len(u.disc) }

func (u *AtomicVirginUnion) shardFor(word int) int {
	s := word / u.wordsPerShard
	if s >= len(u.disc) {
		s = len(u.disc) - 1
	}
	return s
}

// andWord CAS-ANDs mask into word wi and charges any 0xFF->discovered byte
// transitions to the word's shard counter. The loop retries only when another
// instance merged into the same word between the load and the swap.
func (u *AtomicVirginUnion) andWord(wi int, mask uint64) {
	for {
		old := atomic.LoadUint64(&u.words[wi])
		merged := old & mask
		if merged == old {
			return
		}
		if atomic.CompareAndSwapUint64(&u.words[wi], old, merged) {
			if d := newlyDiscovered(old, merged); d != 0 {
				u.disc[u.shardFor(wi)].Add(int64(d))
			}
			return
		}
	}
}

// newlyDiscovered counts the bytes that were 0xFF in old and are not in
// merged: fold each byte of the complement into an occupancy bit (non-zero
// complement = byte below 0xFF) and count the bits that appeared.
func newlyDiscovered(old, merged uint64) int {
	before := foldByteOccupancy(^old)
	after := foldByteOccupancy(^merged)
	return bits.OnesCount64(after &^ before)
}

// foldByteOccupancy folds each byte's bits into bit 0 and masks to one
// occupancy bit per byte (the countNonZeroWord trick).
func foldByteOccupancy(w uint64) uint64 {
	w |= w >> 4
	w |= w >> 2
	w |= w >> 1
	return w & 0x0101010101010101
}

// MergeVirgin implements VirginUnion. The flat path skips all-0xFF words (the
// instance discovered nothing there, AND is a no-op); the keyed path routes
// each discovered dense slot's byte to its raw key with a one-byte AND mask.
func (u *AtomicVirginUnion) MergeVirgin(v *Virgin, slotKeys []uint32) {
	if slotKeys != nil {
		bits := v.bits
		for slot, key := range slotKeys {
			b := bits[slot]
			if b == 0xFF || int(key) >= u.size {
				continue
			}
			shift := uint(key&7) * 8
			mask := ^(uint64(0xFF) << shift) | uint64(b)<<shift
			u.andWord(int(key>>3), mask)
		}
		return
	}
	bits := v.bits
	n := len(bits)
	if n > u.size {
		n = u.size
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		w := loadWord(bits[i:])
		if w == ^uint64(0) {
			continue
		}
		u.andWord(i>>3, w)
	}
	if i < n {
		// Partial tail word: pad the bytes past the virgin with 0xFF so the
		// AND leaves them untouched.
		w := ^uint64(0)
		for j := i; j < n; j++ {
			shift := uint(j-i) * 8
			w = ^(uint64(0xFF) << shift) & w | uint64(bits[j])<<shift
		}
		if w != ^uint64(0) {
			u.andWord(i>>3, w)
		}
	}
}

// CountDiscovered sums the per-shard counters; O(shards), no map scan.
func (u *AtomicVirginUnion) CountDiscovered() int {
	total := int64(0)
	for i := range u.disc {
		total += u.disc[i].Load()
	}
	return int(total)
}

// Snapshot copies the union bytes out with atomic word reads.
func (u *AtomicVirginUnion) Snapshot() []byte {
	out := make([]byte, len(u.words)*8)
	for i := range u.words {
		storeWord(out[i*8:], atomic.LoadUint64(&u.words[i]))
	}
	return out[:u.size]
}

// LockedVirginUnion is the reference implementation: one mutex, plain byte
// loops. It exists for the same reason the scalar kernels do — it is the
// obviously correct semantics the lock-free implementation is equivalence-
// pinned against (virginunion_test.go merges arbitrary instance states into
// both and requires identical bytes and counts).
type LockedVirginUnion struct {
	mu         sync.Mutex
	bits       []byte // guarded by mu
	discovered int    // guarded by mu
}

var _ VirginUnion = (*LockedVirginUnion)(nil)

// NewLockedVirginUnion creates the single-lock reference union.
func NewLockedVirginUnion(size int) (*LockedVirginUnion, error) {
	if !validSize(size) {
		return nil, ErrBadMapSize
	}
	u := &LockedVirginUnion{bits: make([]byte, size)}
	for i := range u.bits {
		u.bits[i] = 0xFF
	}
	return u, nil
}

// Size returns the key space the union covers.
func (u *LockedVirginUnion) Size() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.bits)
}

// MergeVirgin implements VirginUnion under the single lock.
func (u *LockedVirginUnion) MergeVirgin(v *Virgin, slotKeys []uint32) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if slotKeys != nil {
		for slot, key := range slotKeys {
			b := v.bits[slot]
			if b == 0xFF || int(key) >= len(u.bits) {
				continue
			}
			u.andByteLocked(int(key), b)
		}
		return
	}
	n := len(v.bits)
	if n > len(u.bits) {
		n = len(u.bits)
	}
	for i := 0; i < n; i++ {
		b := v.bits[i]
		if b == 0xFF {
			continue
		}
		u.andByteLocked(i, b)
	}
}

func (u *LockedVirginUnion) andByteLocked(key int, b byte) {
	old := u.bits[key]
	merged := old & b
	if merged == old {
		return
	}
	if old == 0xFF {
		u.discovered++
	}
	u.bits[key] = merged
}

// CountDiscovered returns the number of discovered keys.
func (u *LockedVirginUnion) CountDiscovered() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.discovered
}

// Snapshot copies the union bytes out.
func (u *LockedVirginUnion) Snapshot() []byte {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]byte, len(u.bits))
	copy(out, u.bits)
	return out
}
