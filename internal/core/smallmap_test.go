package core

import "testing"

// The word-at-a-time fast paths need a byte-tail fallback for maps smaller
// than 8 slots; these tests cover it.

func TestTinyMapsWork(t *testing.T) {
	for _, size := range []int{2, 4} {
		afl, err := NewAFLMap(size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		big, err := NewBigMap(size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		for _, m := range []Map{afl, big} {
			virgin := m.NewVirgin()
			m.Add(0)
			m.Add(uint32(size - 1))
			m.Classify()
			if v := m.CompareWith(virgin); v != VerdictNewEdges {
				t.Errorf("%s size %d: verdict %v", m.Scheme(), size, v)
			}
			if m.CountNonZero() != 2 {
				t.Errorf("%s size %d: nonzero %d", m.Scheme(), size, m.CountNonZero())
			}
			if got := len(m.AppendTouched(nil)); got != 2 {
				t.Errorf("%s size %d: touched %d", m.Scheme(), size, got)
			}
			m.Reset()
			if m.CountNonZero() != 0 {
				t.Errorf("%s size %d: reset failed", m.Scheme(), size)
			}
		}
	}
}

func TestNonMultipleOfEightTail(t *testing.T) {
	// Size 16 map with only the tail region touched exercises both the
	// word loop (zero words skipped) and the per-byte work.
	m, err := NewAFLMap(16)
	if err != nil {
		t.Fatal(err)
	}
	virgin := m.NewVirgin()
	m.Add(15)
	m.Add(8)
	if v := m.ClassifyAndCompare(virgin); v != VerdictNewEdges {
		t.Fatalf("verdict %v", v)
	}
	if virgin.CountDiscovered() != 2 {
		t.Errorf("discovered %d", virgin.CountDiscovered())
	}
	if virgin.Len() != 16 {
		t.Errorf("virgin len %d", virgin.Len())
	}
}

func TestHashBytesStability(t *testing.T) {
	// The exported digest must be the documented FNV-1a 64.
	if HashBytes(nil) != 0xcbf29ce484222325 {
		t.Error("empty digest is not the FNV offset basis")
	}
	if HashBytes([]byte{0}) == HashBytes([]byte{1}) {
		t.Error("single-byte digests collide")
	}
}

func TestVerdictStrings(t *testing.T) {
	if VerdictNone.String() != "none" ||
		VerdictNewCounts.String() != "new-counts" ||
		VerdictNewEdges.String() != "new-edges" {
		t.Error("verdict labels wrong")
	}
	if Verdict(42).String() == "" {
		t.Error("unknown verdict has empty label")
	}
}

func TestBigMapSnapshotIsCopy(t *testing.T) {
	m, err := NewBigMap(64)
	if err != nil {
		t.Fatal(err)
	}
	m.Add(5)
	snap := m.Snapshot()
	snap[0] = 99
	if m.Snapshot()[0] == 99 {
		t.Error("Snapshot exposed internal storage")
	}
}

func TestAFLMapSnapshotIsCopy(t *testing.T) {
	m, err := NewAFLMap(64)
	if err != nil {
		t.Fatal(err)
	}
	m.Add(5)
	snap := m.Snapshot()
	snap[5] = 99
	if m.Snapshot()[5] == 99 {
		t.Error("Snapshot exposed internal storage")
	}
}
