//go:build !bigmapdbg

package core

// debugAssertions is false in release builds: every debugCheck* call body
// is statically dead and the compiler removes it, so the hot path pays
// nothing for the assertions in dbg_assert.go.
const debugAssertions = false
