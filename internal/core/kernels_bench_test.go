package core

import (
	"fmt"
	"testing"
)

// Kernel benchmarks: scalar reference vs word-level implementation on the
// exact region shapes the fuzzer produces. The "bigmap" cases run over a
// BigMap used region (dense slots, the Fig. 3 load of 4096 discovered keys
// on an 8M hash space); the "afl" cases run the same load scattered over the
// full flat 8M bitmap. `make bench` records these in BENCH_2.json; the PR's
// acceptance bar is word >= 2x scalar on the 8M BigMap classify+compare.

const benchKernelLoad = 4096

// benchBigMapRegion builds a BigMap with the Fig. 3 load and returns it with
// its touched region and a virgin map that has already absorbed the trace —
// the steady state where almost every compare finds nothing new.
func benchBigMapRegion(b *testing.B, size int) (*BigMap, []byte, *Virgin) {
	b.Helper()
	m, err := NewBigMap(size)
	if err != nil {
		b.Fatal(err)
	}
	step := uint32(size / benchKernelLoad)
	for i := 0; i < benchKernelLoad; i++ {
		m.Add(uint32(i) * step)
	}
	virgin := m.NewVirgin()
	m.Classify()
	m.CompareWith(virgin)
	// Rebuild raw counts: classification replaced them in place.
	m.Reset()
	for i := 0; i < benchKernelLoad; i++ {
		m.Add(uint32(i) * step)
	}
	return m, m.trace(), virgin
}

func BenchmarkClassifyKernel(b *testing.B) {
	for _, size := range []int{MapSize2M, MapSize8M} {
		m, region, _ := benchBigMapRegion(b, size)
		_ = m
		b.Run(fmt.Sprintf("scalar/bigmap/%s", benchSizeLabel(size)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				classifyScalar(region)
			}
		})
		b.Run(fmt.Sprintf("word/bigmap/%s", benchSizeLabel(size)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				classifyRegion(region)
			}
		})
	}
}

func BenchmarkCompareKernel(b *testing.B) {
	for _, size := range []int{MapSize2M, MapSize8M} {
		_, region, virgin := benchBigMapRegion(b, size)
		classifyRegion(region)
		b.Run(fmt.Sprintf("scalar/bigmap/%s", benchSizeLabel(size)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if v, _ := compareScalar(region, virgin.bits, VerdictNone, 0); v != VerdictNone {
					b.Fatal("steady-state compare found new bits")
				}
			}
		})
		b.Run(fmt.Sprintf("word/bigmap/%s", benchSizeLabel(size)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if v, _ := compareRegion(region, virgin.bits); v != VerdictNone {
					b.Fatal("steady-state compare found new bits")
				}
			}
		})
	}
}

func BenchmarkClassifyCompareKernel(b *testing.B) {
	for _, size := range []int{MapSize2M, MapSize8M} {
		_, region, virgin := benchBigMapRegion(b, size)
		b.Run(fmt.Sprintf("scalar/bigmap/%s", benchSizeLabel(size)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				classifyCompareScalar(region, virgin.bits, VerdictNone, 0)
			}
		})
		b.Run(fmt.Sprintf("word/bigmap/%s", benchSizeLabel(size)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				classifyCompareRegion(region, virgin.bits)
			}
		})
	}
}

// BenchmarkHashKernel isolates the §IV-D digest: the high-water mark plus
// the word-level backward scan bound the work to the trace footprint.
func BenchmarkHashKernel(b *testing.B) {
	for _, size := range []int{MapSize2M, MapSize8M} {
		m, _, _ := benchBigMapRegion(b, size)
		b.Run(fmt.Sprintf("word/bigmap/%s", benchSizeLabel(size)), func(b *testing.B) {
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= m.Hash()
			}
			_ = sink
		})
	}
}

// BenchmarkAddBatchKernel compares per-edge virtual updates against one
// batched flush for the same 4096-edge trace.
func BenchmarkAddBatchKernel(b *testing.B) {
	for _, scheme := range []string{"afl", "bigmap"} {
		m, err := newSchemeMap(scheme, MapSize8M)
		if err != nil {
			b.Fatal(err)
		}
		keys := make([]uint32, benchKernelLoad)
		step := uint32(MapSize8M / benchKernelLoad)
		for i := range keys {
			keys[i] = uint32(i) * step
		}
		m.AddBatch(keys) // assign slots up front; counters saturate, so no reset needed
		b.Run("add/"+scheme+"/8M", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, k := range keys {
					m.Add(k)
				}
			}
		})
		b.Run("addbatch/"+scheme+"/8M", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.AddBatch(keys)
			}
		})
	}
}

func benchSizeLabel(size int) string {
	if size >= 1<<20 {
		return fmt.Sprintf("%dM", size>>20)
	}
	return fmt.Sprintf("%dk", size>>10)
}
