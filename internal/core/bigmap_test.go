package core

import (
	"errors"
	"testing"
)

func mustBig(t *testing.T, size int) *BigMap {
	t.Helper()
	m, err := NewBigMap(size)
	if err != nil {
		t.Fatalf("NewBigMap(%d): %v", size, err)
	}
	return m
}

func TestNewBigMapRejectsBadSizes(t *testing.T) {
	for _, size := range []int{0, -7, 6, 1000} {
		if _, err := NewBigMap(size); !errors.Is(err, ErrBadMapSize) {
			t.Errorf("NewBigMap(%d) err = %v, want ErrBadMapSize", size, err)
		}
	}
}

func TestBigMapAssignsDenseSlotsInDiscoveryOrder(t *testing.T) {
	m := mustBig(t, 1024)
	// Mirrors the paper's Figure 4(b): scattered keys condense in order.
	for _, key := range []uint32{1023, 7, 512, 7, 1023, 0} {
		m.Add(key)
	}
	if m.UsedKeys() != 4 {
		t.Fatalf("used_key = %d, want 4", m.UsedKeys())
	}
	wantSlots := map[uint32]int{1023: 0, 7: 1, 512: 2, 0: 3}
	for key, slot := range wantSlots {
		if got := m.SlotForKey(key); got != slot {
			t.Errorf("SlotForKey(%d) = %d, want %d", key, got, slot)
		}
		back, ok := m.KeyForSlot(slot)
		if !ok || back != key {
			t.Errorf("KeyForSlot(%d) = %d,%v, want %d,true", slot, back, ok, key)
		}
	}
	snap := m.Snapshot()
	want := []byte{2, 2, 1, 1}
	for i, b := range want {
		if snap[i] != b {
			t.Errorf("slot %d count = %d, want %d", i, snap[i], b)
		}
	}
}

func TestBigMapResetPreservesIndex(t *testing.T) {
	m := mustBig(t, 256)
	m.Add(100)
	m.Add(200)
	m.Reset()
	if m.CountNonZero() != 0 {
		t.Fatal("Reset did not clear used region")
	}
	if m.UsedKeys() != 2 {
		t.Fatalf("used_key = %d after reset, want 2", m.UsedKeys())
	}
	// Re-observing an edge must land in its original slot.
	m.Add(200)
	if got := m.SlotForKey(200); got != 1 {
		t.Errorf("slot for key 200 = %d after reset, want 1", got)
	}
}

// TestBigMapHashConsistency reproduces the P1/P2/P3 example from the paper's
// §IV-D: executing A→B→C, then A→B→C→D, then A→B→C again must give P1 and P3
// identical hashes even though used_key grew in between. This holds because
// the hash is computed up to the last non-zero slot, not up to used_key.
func TestBigMapHashConsistency(t *testing.T) {
	m := mustBig(t, 256)

	run := func(keys ...uint32) uint64 {
		m.Reset()
		for _, k := range keys {
			m.Add(k)
		}
		m.Classify()
		return m.Hash()
	}

	// Edge keys: AB=10, BC=20, CD=30.
	h1 := run(10, 20)
	h2 := run(10, 20, 30)
	h3 := run(10, 20)

	if h1 != h3 {
		t.Errorf("P1 hash %#x != P3 hash %#x: used_key growth leaked into the digest", h1, h3)
	}
	if h1 == h2 {
		t.Errorf("P1 and P2 hashed equal (%#x) despite different paths", h1)
	}
}

func TestBigMapHashOfEmptyTrace(t *testing.T) {
	m := mustBig(t, 64)
	h0 := m.Hash()
	m.Add(5)
	m.Reset()
	if got := m.Hash(); got != h0 {
		t.Errorf("empty-trace hash changed after reset: %#x != %#x", got, h0)
	}
}

func TestBigMapCompareUsesStableSlots(t *testing.T) {
	m := mustBig(t, 256)
	virgin := m.NewVirgin()

	m.Add(42)
	m.Classify()
	if v := m.CompareWith(virgin); v != VerdictNewEdges {
		t.Fatalf("first compare = %v, want new-edges", v)
	}

	// A second execution hitting the same edge via the same key must not be
	// "new" even though other edges were discovered in between.
	m.Reset()
	m.Add(7) // new edge, assigned a later slot
	m.Add(42)
	m.Classify()
	if v := m.CompareWith(virgin); v != VerdictNewEdges {
		t.Fatalf("second compare = %v, want new-edges (key 7)", v)
	}

	m.Reset()
	m.Add(42)
	m.Classify()
	if v := m.CompareWith(virgin); v != VerdictNone {
		t.Fatalf("third compare = %v, want none", v)
	}
	if got := virgin.CountDiscovered(); got != 2 {
		t.Errorf("discovered = %d, want 2", got)
	}
}

func TestBigMapMergedMatchesSplit(t *testing.T) {
	seqs := [][]uint32{
		{9, 9, 9, 4},
		{4, 9},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{9},
	}
	split := mustBig(t, 64)
	merged := mustBig(t, 64)
	vs := split.NewVirgin()
	vm := merged.NewVirgin()
	for i, keys := range seqs {
		split.Reset()
		merged.Reset()
		for _, k := range keys {
			split.Add(k)
			merged.Add(k)
		}
		split.Classify()
		got1 := split.CompareWith(vs)
		got2 := merged.ClassifyAndCompare(vm)
		if got1 != got2 {
			t.Fatalf("step %d: split %v != merged %v", i, got1, got2)
		}
		if split.Hash() != merged.Hash() {
			t.Fatalf("step %d: traces diverged", i)
		}
	}
}

func TestBigMapSaturation(t *testing.T) {
	m := mustBig(t, 64)
	for i := 0; i < 1000; i++ {
		m.Add(1)
	}
	if got := m.Snapshot()[0]; got != 255 {
		t.Errorf("counter = %d, want 255", got)
	}
}

func TestBigMapKeyForSlotOutOfRange(t *testing.T) {
	m := mustBig(t, 64)
	m.Add(1)
	if _, ok := m.KeyForSlot(-1); ok {
		t.Error("KeyForSlot(-1) reported ok")
	}
	if _, ok := m.KeyForSlot(1); ok {
		t.Error("KeyForSlot(1) reported ok with used_key == 1")
	}
}

func TestBigMapAppendTouchedReturnsDenseSlots(t *testing.T) {
	m := mustBig(t, 1024)
	m.Add(900)
	m.Add(3)
	got := m.AppendTouched(nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("AppendTouched = %v, want [0 1]", got)
	}
}
