//go:build bigmapdbg

package core

// debugAssertions enables the runtime invariant checks in dbg_assert.go.
// Build or test with -tags bigmapdbg to turn them on.
const debugAssertions = true
