package core

import (
	"bytes"
	"testing"
)

// FuzzVirginDeltaCodec pins the virgin-delta wire codec's two contracts
// under arbitrary inputs:
//
//  1. Corruption rejection: DecodeVirginDelta never panics and never
//     over-allocates on garbage; whatever it rejects, it rejects with an
//     error, not a crash.
//  2. Fixed point: every accepted input re-encodes bit for bit
//     (EncodeVirginDelta(DecodeVirginDelta(b)) == b), every accepted delta
//     applies cleanly to a fresh map of its declared size, and re-diffing
//     the applied result against the all-0xFF baseline reproduces the
//     decoded delta exactly — decode, apply and diff agree on what the
//     delta means.
func FuzzVirginDeltaCodec(f *testing.F) {
	f.Add(EncodeVirginDelta(VirginDelta{Size: 8}))
	cur := make([]byte, 64)
	for i := range cur {
		cur[i] = 0xFF
	}
	cur[3] = 0x0F
	cur[40] = 0x00
	f.Add(EncodeVirginDelta(DiffVirginBytes(nil, cur)))
	f.Add([]byte("BMVD"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeVirginDelta(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeVirginDelta(d), data) {
			t.Fatalf("accepted input is not a codec fixed point (%d bytes)", len(data))
		}
		fresh := make([]byte, d.Size)
		for i := range fresh {
			fresh[i] = 0xFF
		}
		disc, err := d.Apply(fresh)
		if err != nil {
			t.Fatalf("accepted delta failed to apply: %v", err)
		}
		nonVirgin := 0
		for _, b := range fresh {
			if b != 0xFF {
				nonVirgin++
			}
		}
		if disc != nonVirgin {
			t.Fatalf("apply reported %d discovered, map shows %d", disc, nonVirgin)
		}
		rediff := DiffVirginBytes(nil, fresh)
		if len(rediff.Words) != len(d.Words) {
			t.Fatalf("re-diff has %d words, decoded delta %d", len(rediff.Words), len(d.Words))
		}
		for i := range d.Words {
			if rediff.Words[i] != d.Words[i] {
				t.Fatalf("re-diff word %d: %+v != %+v", i, rediff.Words[i], d.Words[i])
			}
		}
		// Kernel parity: the word-level diff must match the byte-at-a-time
		// reference on the applied state.
		scalar := DiffVirginBytesScalar(nil, fresh)
		if len(scalar.Words) != len(rediff.Words) {
			t.Fatalf("scalar diff has %d words, word-level %d", len(scalar.Words), len(rediff.Words))
		}
		for i := range scalar.Words {
			if scalar.Words[i] != rediff.Words[i] {
				t.Fatalf("scalar diff word %d: %+v != %+v", i, scalar.Words[i], rediff.Words[i])
			}
		}
	})
}
