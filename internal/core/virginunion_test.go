package core

import (
	"bytes"
	"sync"
	"testing"

	"github.com/bigmap/bigmap/internal/rng"
)

// The lock-free sharded union must be equivalence-pinned to the single-lock
// reference the same way the word kernels are pinned to the scalar ones:
// arbitrary instance virgin states, merged in arbitrary orders and from
// arbitrary goroutine interleavings, must produce identical union bytes and
// identical discovered counts.

// randomVirgin builds an instance virgin of n slots with roughly the given
// percentage of discovered (non-0xFF) bytes.
func randomVirgin(src *rng.Source, n, density int) *Virgin {
	v := newVirgin(n)
	for i := range v.bits {
		if src.Intn(100) < density {
			v.bits[i] = byte(src.Uint32()) // any value below full-virgin
			if v.bits[i] == 0xFF {
				v.bits[i] = 0
			}
		}
	}
	v.discovered = v.recountDiscovered()
	return v
}

// randomSlotKeys builds a plausible slot-to-key table: distinct keys in the
// union's key space, one per slot.
func randomSlotKeys(src *rng.Source, slots, size int) []uint32 {
	seen := make(map[uint32]bool, slots)
	keys := make([]uint32, 0, slots)
	for len(keys) < slots {
		k := uint32(src.Intn(size))
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
	}
	return keys
}

type mergeOp struct {
	v        *Virgin
	slotKeys []uint32 // nil for the flat path
}

func randomMergeOps(src *rng.Source, size, n int) []mergeOp {
	ops := make([]mergeOp, n)
	for i := range ops {
		if src.Intn(2) == 0 {
			ops[i] = mergeOp{v: randomVirgin(src, size, 1+src.Intn(40))}
		} else {
			slots := 1 + src.Intn(size/2)
			ops[i] = mergeOp{
				v:        randomVirgin(src, slots, 1+src.Intn(60)),
				slotKeys: randomSlotKeys(src, slots, size),
			}
		}
	}
	return ops
}

// modelUnion is the in-test scalar model both implementations are checked
// against: plain byte ANDs into a slice.
func modelUnion(size int, ops []mergeOp) ([]byte, int) {
	bits := bytes.Repeat([]byte{0xFF}, size)
	for _, op := range ops {
		if op.slotKeys == nil {
			for i, b := range op.v.bits {
				if i < size {
					bits[i] &= b
				}
			}
			continue
		}
		for slot, key := range op.slotKeys {
			bits[key] &= op.v.bits[slot]
		}
	}
	discovered := 0
	for _, b := range bits {
		if b != 0xFF {
			discovered++
		}
	}
	return bits, discovered
}

// TestVirginUnionEquivalence pins the atomic implementation (at several shard
// counts) and the locked reference against the scalar model on random merge
// programs over both merge paths.
func TestVirginUnionEquivalence(t *testing.T) {
	src := rng.New(0xbeef)
	for iter := 0; iter < 60; iter++ {
		size := []int{8, 64, 256, 1024}[src.Intn(4)]
		ops := randomMergeOps(src, size, 1+src.Intn(6))
		wantBits, wantDisc := modelUnion(size, ops)

		locked, err := NewLockedVirginUnion(size)
		if err != nil {
			t.Fatal(err)
		}
		unions := []VirginUnion{locked}
		for _, shards := range []int{1, 3, 8} {
			au, err := NewAtomicVirginUnion(size, shards)
			if err != nil {
				t.Fatal(err)
			}
			unions = append(unions, au)
		}
		for ui, u := range unions {
			for _, op := range ops {
				u.MergeVirgin(op.v, op.slotKeys)
			}
			if got := u.Snapshot(); !bytes.Equal(got, wantBits) {
				t.Fatalf("iter %d union %d: snapshot diverged from model\n got  %x\n want %x", iter, ui, got, wantBits)
			}
			if got := u.CountDiscovered(); got != wantDisc {
				t.Fatalf("iter %d union %d: discovered %d, model %d", iter, ui, got, wantDisc)
			}
			if got := u.Size(); got != size {
				t.Fatalf("iter %d union %d: size %d, want %d", iter, ui, got, size)
			}
		}
	}
}

// TestVirginUnionMergeOrderIrrelevant re-merges the same ops in reversed and
// duplicated order: AND-merges are commutative and idempotent, so the result
// must not move.
func TestVirginUnionMergeOrderIrrelevant(t *testing.T) {
	src := rng.New(0x5eed)
	const size = 256
	ops := randomMergeOps(src, size, 5)

	forward, _ := NewAtomicVirginUnion(size, 4)
	backward, _ := NewAtomicVirginUnion(size, 4)
	for _, op := range ops {
		forward.MergeVirgin(op.v, op.slotKeys)
	}
	for i := len(ops) - 1; i >= 0; i-- {
		backward.MergeVirgin(ops[i].v, ops[i].slotKeys)
		backward.MergeVirgin(ops[i].v, ops[i].slotKeys) // idempotent
	}
	if !bytes.Equal(forward.Snapshot(), backward.Snapshot()) {
		t.Fatal("merge order changed the union bytes")
	}
	if forward.CountDiscovered() != backward.CountDiscovered() {
		t.Fatalf("merge order changed the discovered count: %d vs %d",
			forward.CountDiscovered(), backward.CountDiscovered())
	}
}

// TestVirginUnionConcurrentMatchesSequential runs the same merge set from
// many goroutines and sequentially; the lock-free result must be identical —
// the determinism property the parallel campaign's sync boundary relies on.
func TestVirginUnionConcurrentMatchesSequential(t *testing.T) {
	src := rng.New(0xc0ffee)
	const size = 1024
	ops := randomMergeOps(src, size, 16)

	sequential, _ := NewAtomicVirginUnion(size, 8)
	for _, op := range ops {
		sequential.MergeVirgin(op.v, op.slotKeys)
	}

	for round := 0; round < 20; round++ {
		concurrent, _ := NewAtomicVirginUnion(size, 8)
		var wg sync.WaitGroup
		for _, op := range ops {
			wg.Add(1)
			go func(op mergeOp) {
				defer wg.Done()
				concurrent.MergeVirgin(op.v, op.slotKeys)
			}(op)
		}
		wg.Wait()
		if !bytes.Equal(concurrent.Snapshot(), sequential.Snapshot()) {
			t.Fatalf("round %d: concurrent merge diverged from sequential", round)
		}
		if concurrent.CountDiscovered() != sequential.CountDiscovered() {
			t.Fatalf("round %d: concurrent discovered %d, sequential %d",
				round, concurrent.CountDiscovered(), sequential.CountDiscovered())
		}
	}
}

// TestVirginUnionRace hammers concurrent shard merges against Snapshot and
// CountDiscovered readers. Its job is to run under `go test -race` (the CI
// race job): any unsynchronized access in the CAS loop or the snapshot reader
// is a hard failure there.
func TestVirginUnionRace(t *testing.T) {
	src := rng.New(0xace)
	const size = 2048
	ops := randomMergeOps(src, size, 12)

	u, _ := NewAtomicVirginUnion(size, 6)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: snapshot + count in a tight loop until the writers finish.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := u.Snapshot()
				if len(snap) != size {
					t.Errorf("snapshot length %d, want %d", len(snap), size)
					return
				}
				_ = u.CountDiscovered()
			}
		}()
	}
	// Writers: every op merged repeatedly from its own goroutine.
	var writers sync.WaitGroup
	for _, op := range ops {
		writers.Add(1)
		go func(op mergeOp) {
			defer writers.Done()
			for i := 0; i < 50; i++ {
				u.MergeVirgin(op.v, op.slotKeys)
			}
		}(op)
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	want, wantDisc := modelUnion(size, ops)
	if got := u.Snapshot(); !bytes.Equal(got, want) {
		t.Fatal("post-hammer union bytes diverged from model")
	}
	if got := u.CountDiscovered(); got != wantDisc {
		t.Fatalf("post-hammer discovered %d, model %d", got, wantDisc)
	}
}

// TestCoverageMergerSlotTranslation checks the map-side adapters: a BigMap
// merge routes dense slots through the slot-to-key table, an AFLMap merge is
// the identity mapping, and two BigMap instances with different assignment
// histories land their shared edges on the same union keys.
func TestCoverageMergerSlotTranslation(t *testing.T) {
	const size = 256
	a := mustBig(t, size)
	b := mustBig(t, size)
	// Same edges, opposite discovery order: dense slots differ.
	for _, k := range []uint32{10, 20, 30} {
		a.Add(k)
	}
	for _, k := range []uint32{30, 20, 10} {
		b.Add(k)
	}
	va, vb := a.NewVirgin(), b.NewVirgin()
	a.ClassifyAndCompare(va)
	b.ClassifyAndCompare(vb)

	u, _ := NewAtomicVirginUnion(size, 2)
	a.MergeVirginInto(u, va)
	snapA := u.Snapshot()
	b.MergeVirginInto(u, vb)
	if !bytes.Equal(snapA, u.Snapshot()) {
		t.Fatal("identical coverage from a second instance changed the union: slot translation is broken")
	}
	if got := u.CountDiscovered(); got != 3 {
		t.Fatalf("discovered %d, want 3", got)
	}

	flat, err := NewAFLMap(size)
	if err != nil {
		t.Fatal(err)
	}
	flat.Add(10)
	flat.Add(99)
	vf := flat.NewVirgin()
	flat.ClassifyAndCompare(vf)
	flat.MergeVirginInto(u, vf)
	if got := u.CountDiscovered(); got != 4 {
		t.Fatalf("discovered %d after flat merge, want 4 (key 10 shared, key 99 new)", got)
	}
	if snap := u.Snapshot(); snap[99] == 0xFF {
		t.Fatal("flat merge did not land on raw key 99")
	}
}
